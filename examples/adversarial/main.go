// Adversarial example — why the surrogate choice matters.
//
// Each uncertain point splits its probability mass between two modes far
// apart (a vehicle that is either at the depot or at the worksite, a user
// who is either at home or at the office). The expected point P̄ lands
// mid-gap, in empty space; the 1-center P̃ commits to the heavier mode.
// This is the regime that separates the paper's two surrogates and where
// mode/sample baselines are brittle.
//
//	go run ./examples/adversarial
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	ukc "repro"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	const (
		n   = 60
		k   = 2
		sep = 40.0 // distance between each point's two modes
	)

	pts := make([]ukc.Point, n)
	for i := range pts {
		// Mode A near the left cluster, mode B at distance sep.
		ax := rng.NormFloat64() * 2
		ay := rng.NormFloat64() * 2
		w := 0.35 + 0.3*rng.Float64() // mass of mode A in [0.35, 0.65]
		p, err := ukc.NewPoint(
			[]ukc.Vec{
				{ax, ay},
				{ax + sep, ay},
			},
			[]float64{w, 1 - w},
		)
		if err != nil {
			log.Fatal(err)
		}
		pts[i] = p
	}

	ctx := context.Background()
	inst := ukc.NewEuclideanInstance(pts)

	type row struct {
		name string
		run  func() (ukc.Result, error)
	}
	rows := []row{
		{"expected point surrogate (EP rule)", func() (ukc.Result, error) {
			return ukc.NewSolver[ukc.Vec](
				ukc.WithSurrogate(ukc.SurrogateExpectedPoint), ukc.WithRule(ukc.RuleEP),
			).Solve(ctx, inst, k)
		}},
		{"1-center surrogate (OC rule)", func() (ukc.Result, error) {
			return ukc.NewSolver[ukc.Vec](
				ukc.WithSurrogate(ukc.SurrogateOneCenter), ukc.WithRule(ukc.RuleOC),
			).Solve(ctx, inst, k)
		}},
		{"mode baseline", func() (ukc.Result, error) {
			return ukc.SolveBaseline(pts, k, ukc.BaselineMode, ukc.BaselineOptions{})
		}},
		{"best-of-8 samples baseline", func() (ukc.Result, error) {
			return ukc.SolveBaseline(pts, k, ukc.BaselineSample,
				ukc.BaselineOptions{Rng: rng, Samples: 8})
		}},
	}

	fmt.Printf("n=%d uncertain points, two modes %.0f apart, k=%d\n\n", n, sep, k)
	fmt.Printf("%-38s %12s %14s %16s\n", "method", "E[max] asgn", "E[max] unasgn", "center x-coords")
	for _, r := range rows {
		res, err := r.run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s %12.3f %14.3f %16s\n", r.name, res.Ecost, res.EcostUnassigned, centerXs(res))
	}

	fmt.Println(`
Reading the output: the two cost columns tell opposite stories, and that is
the point of this example.

Under the paper's ASSIGNED semantics each point is pinned to one center
before the world realizes. Mode-pair centers (1-center surrogate, mode
baseline) then pay ~sep whenever a point realizes at its other mode — with
many points, some point almost surely does, so E[max] ≈ sep. Mid-gap
centers (expected point) hedge: every realization is ~sep/2 away, which
halves the assigned cost. This is why the expected-point pipeline carries
the better proven factor (3+eps/4 vs 5+2eps).

Under UNASSIGNED semantics each realization snaps to the nearest center,
so mode-pair centers are nearly free while mid-gap centers still pay
~sep/2. Pick the surrogate to match the semantics your application needs.
All costs above are exact (O(N log N) sweep), not sampled.`)
}

func centerXs(res ukc.Result) string {
	out := ""
	for i, c := range res.Centers {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%.1f", c[0])
	}
	return out
}
