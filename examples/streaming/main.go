// Streaming example — one-pass uncertain k-center over a data stream, the
// database setting the paper's introduction motivates: events arrive with
// location uncertainty and we maintain k centers in O(k) memory, never
// storing the stream.
//
// The sketch composes the paper's O(z) expected-point surrogate with the
// doubling algorithm for incremental k-center, and the example compares the
// final sketch against the batch pipeline on the full (retained here only
// for evaluation) stream.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	ukc "repro"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	const (
		streamLen = 5000
		k         = 4
		readings  = 3
	)

	ctx := context.Background()
	sketch, err := ukc.NewStreamKCenter(k)
	if err != nil {
		log.Fatal(err)
	}
	var one ukc.Stream1Center

	// The stream: events from 4 drifting sources, each event reported as 3
	// noisy candidate positions.
	sources := [][2]float64{{0, 0}, {50, 10}, {20, 60}, {70, 70}}
	all := make([]ukc.Point, 0, streamLen) // retained ONLY to evaluate at the end
	fed := 0                               // prefix of `all` already fed to the 1-center sketch
	for i := 0; i < streamLen; i++ {
		s := sources[rng.Intn(len(sources))]
		// Sources drift slowly.
		s[0] += rng.NormFloat64() * 0.01
		s[1] += rng.NormFloat64() * 0.01
		locs := make([]ukc.Vec, readings)
		probs := make([]float64, readings)
		for j := range locs {
			locs[j] = ukc.Vec{s[0] + rng.NormFloat64()*2, s[1] + rng.NormFloat64()*2}
			probs[j] = 1.0 / readings
		}
		p, err := ukc.NewPoint(locs, probs)
		if err != nil {
			log.Fatal(err)
		}
		if err := sketch.Push(p); err != nil {
			log.Fatal(err)
		}
		all = append(all, p)

		if (i+1)%1000 == 0 {
			// The 1-center sketch absorbs the stream in ctx-cancelable
			// batches (PushSet); the k-center sketch above shows the
			// per-event path.
			if err := one.PushSet(ctx, all[fed:]); err != nil {
				log.Fatal(err)
			}
			fed = len(all)
			fmt.Printf("after %5d events: %d centers held\n", i+1, len(sketch.Centers()))
		}
	}
	// Flush the tail batch so every event reaches the 1-center sketch.
	if err := one.PushSet(ctx, all[fed:]); err != nil {
		log.Fatal(err)
	}

	// Evaluate the sketch against the batch pipeline with the Solver API;
	// the worker pool speeds up the exact cost evaluation on this 5000-point
	// stream without changing a single bit of the result.
	solver := ukc.NewSolver[ukc.Vec](ukc.WithRule(ukc.RuleEP), ukc.WithParallelism(-1))
	inst := ukc.NewEuclideanInstance(all)

	streamCenters := sketch.Centers()
	streamCost, err := solver.EcostUnassigned(ctx, inst, streamCenters)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := solver.Solve(ctx, inst, k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-34s %12s %s\n", "method", "E[max dist]", "memory")
	fmt.Printf("%-34s %12.3f O(k) — %d centers, no stream stored\n",
		"streaming sketch (doubling alg.)", streamCost, len(streamCenters))
	fmt.Printf("%-34s %12.3f O(n·z) — full stream\n",
		"batch pipeline (paper, factor 4)", batch.EcostUnassigned)
	fmt.Printf("\nstreaming 1-center estimate: %v (events seen: %d)\n", one.Center(), one.N())
}
