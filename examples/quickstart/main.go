// Quickstart: build a handful of uncertain points, solve the k-center
// problem with the paper's recommended pipeline through the Instance/Solver
// API, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	ukc "repro"
)

func main() {
	ctx := context.Background()

	// Three "measurement clusters": each uncertain point is a sensor whose
	// position is known only up to a few candidate readings.
	mk := func(locs []ukc.Vec, probs []float64) ukc.Point {
		p, err := ukc.NewPoint(locs, probs)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	pts := []ukc.Point{
		mk([]ukc.Vec{{0.0, 0.1}, {0.2, 0.0}, {0.1, 0.3}}, []float64{0.5, 0.3, 0.2}),
		mk([]ukc.Vec{{0.4, 0.2}, {0.3, 0.1}}, []float64{0.6, 0.4}),
		mk([]ukc.Vec{{5.0, 5.2}, {5.3, 4.9}}, []float64{0.5, 0.5}),
		mk([]ukc.Vec{{5.1, 5.0}, {4.8, 5.1}, {5.2, 5.3}}, []float64{0.4, 0.4, 0.2}),
		mk([]ukc.Vec{{10.0, 0.0}, {10.2, 0.3}}, []float64{0.7, 0.3}),
		mk([]ukc.Vec{{9.9, 0.2}, {10.1, -0.1}}, []float64{0.5, 0.5}),
	}
	inst := ukc.NewEuclideanInstance(pts)

	// The zero-option solver is the paper's O(nz + n log k) pipeline on a
	// Euclidean instance: expected-point surrogates + Gonzalez +
	// expected-point assignment, guaranteeing cost ≤ 4 × the
	// restricted-assigned optimum.
	solver := ukc.NewSolver[ukc.Vec]()
	res, err := solver.Solve(ctx, inst, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("centers:")
	for i, c := range res.Centers {
		fmt.Printf("  c%d = %v\n", i, c)
	}
	fmt.Println("assignment (point -> center):", res.Assign)
	fmt.Printf("exact expected cost (assigned):   %.4f\n", res.Ecost)
	fmt.Printf("exact expected cost (unassigned): %.4f\n", res.EcostUnassigned)

	// The (1+ε) solver trades time for a 3+ε guarantee; options configure a
	// solver once and it is reusable across instances and goroutines.
	precise, err := ukc.NewSolver[ukc.Vec](
		ukc.WithRule(ukc.RuleEP),
		ukc.WithCertainSolver(ukc.SolverEps),
		ukc.WithEps(0.25),
	).Solve(ctx, inst, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(1+eps) pipeline cost:            %.4f (eps certified %.2f)\n",
		precise.Ecost, precise.EffectiveEps)

	// The uncertain 1-center (Theorem 2.1): any expected point is within
	// factor 2 of optimal.
	c1, cost1, err := ukc.OneCenter(pts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1-center at %v, expected cost %.4f (guaranteed ≤ 2×OPT)\n", c1, cost1)
}
