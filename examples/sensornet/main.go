// Sensor network example — the workload the paper's introduction motivates:
// sensors report noisy positions (several candidate readings each, with
// confidence weights), and we must place k gateways so that the expected
// worst-case sensor-to-gateway distance is small.
//
// The example compares the paper's pipeline against the practitioner
// baseline (trust the most probable reading) and quantifies the gap with
// the exact expected-cost evaluator.
//
//	go run ./examples/sensornet
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	ukc "repro"
)

const (
	numSensors  = 120
	numGateways = 4
	readings    = 5 // candidate position readings per sensor
)

func main() {
	rng := rand.New(rand.NewSource(7))
	pts := make([]ukc.Point, numSensors)

	// Sensors cluster around 4 facilities in a 100m × 100m field. Each
	// sensor's readings jitter by a few meters; one reading in ten is a
	// multipath outlier tens of meters away.
	anchors := [][2]float64{{20, 20}, {80, 25}, {25, 75}, {75, 80}}
	for i := range pts {
		a := anchors[rng.Intn(len(anchors))]
		tx := a[0] + rng.NormFloat64()*6
		ty := a[1] + rng.NormFloat64()*6
		locs := make([]ukc.Vec, readings)
		probs := make([]float64, readings)
		var sum float64
		for j := 0; j < readings; j++ {
			noise := 2.0
			weight := 1.0
			if rng.Float64() < 0.1 { // multipath outlier
				noise = 30
				weight = 0.2
			}
			locs[j] = ukc.Vec{tx + rng.NormFloat64()*noise, ty + rng.NormFloat64()*noise}
			probs[j] = weight
			sum += weight
		}
		for j := range probs {
			probs[j] /= sum
		}
		p, err := ukc.NewPoint(locs, probs)
		if err != nil {
			log.Fatal(err)
		}
		pts[i] = p
	}

	// Paper pipeline: expected-point surrogates, factor-4 guarantee, with
	// the hot loops (surrogates, assignment, exact costs) on 4 workers —
	// bit-identical to the sequential run.
	solver := ukc.NewSolver[ukc.Vec](ukc.WithRule(ukc.RuleEP), ukc.WithParallelism(4))
	paper, err := solver.Solve(context.Background(), ukc.NewEuclideanInstance(pts), numGateways)
	if err != nil {
		log.Fatal(err)
	}
	// Practitioner baseline: cluster the most probable readings.
	naive, err := ukc.SolveBaseline(pts, numGateways, ukc.BaselineMode, ukc.BaselineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Monte-Carlo style baseline: best of 8 sampled worlds.
	sampled, err := ukc.SolveBaseline(pts, numGateways, ukc.BaselineSample,
		ukc.BaselineOptions{Rng: rng, Samples: 8})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %12s\n", "method", "E[max dist]")
	fmt.Printf("%-28s %12.3f\n", "paper (P-bar + Gonzalez)", paper.Ecost)
	fmt.Printf("%-28s %12.3f\n", "mode baseline", naive.Ecost)
	fmt.Printf("%-28s %12.3f\n", "best-of-8-samples baseline", sampled.Ecost)

	fmt.Println("\ngateways (paper pipeline):")
	for i, c := range paper.Centers {
		fmt.Printf("  g%d = (%.1f, %.1f)\n", i, c[0], c[1])
	}
	fmt.Printf("\ncertain k-center radius on surrogates: %.3f\n", paper.CertainRadius)
	fmt.Printf("every cost above is exact (O(N log N) sweep), not sampled.\n")
}
