// Road network example — the general-metric setting (Theorems 2.6/2.7):
// service vehicles move on a road network, their last known positions are
// uncertain (a handful of nearby intersections each), and we must choose k
// depot locations among the intersections minimizing the expected worst
// vehicle-to-depot travel distance.
//
// Euclidean surrogates do not exist here; the paper's 1-center surrogate P̃
// does. The example also shows that depots must be actual intersections.
//
//	go run ./examples/roadnetwork
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	ukc "repro"
)

const (
	intersections = 80
	vehicles      = 30
	depots        = 3
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Build a road network: random planar-ish geometric graph, edges
	// weighted by length.
	g := ukc.NewGraph(intersections)
	pos := make([][2]float64, intersections)
	for i := range pos {
		pos[i] = [2]float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	for i := 0; i < intersections; i++ {
		for j := i + 1; j < intersections; j++ {
			dx, dy := pos[i][0]-pos[j][0], pos[i][1]-pos[j][1]
			if d := dx*dx + dy*dy; d < 2.2 { // connect near intersections
				if err := g.AddEdge(i, j, d); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if !g.Connected() {
		// Guarantee connectivity with a ring road.
		for i := 0; i < intersections; i++ {
			_ = g.AddEdge(i, (i+1)%intersections, 5)
		}
	}
	space, err := g.Metric()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Vehicles: last GPS fix snapped to 3 nearby intersections with
	// confidence weights.
	pts := make([]ukc.FinitePoint, vehicles)
	for v := range pts {
		base := rng.Intn(intersections)
		// The three closest intersections to the base (by road distance).
		best := []int{base}
		for len(best) < 3 {
			cand, candD := -1, 1e18
			for u := 0; u < intersections; u++ {
				if contains(best, u) {
					continue
				}
				if d := space.Dist(base, u); d < candD {
					cand, candD = u, d
				}
			}
			best = append(best, cand)
		}
		p, err := ukc.NewFinitePoint(best, []float64{0.6, 0.25, 0.15})
		if err != nil {
			log.Fatal(err)
		}
		pts[v] = p
	}

	// The generic Instance/Solver API: the SAME pipeline that serves
	// Euclidean instances runs here over the road metric — only the
	// surrogate construction changes (no expected points exist on a graph,
	// so the solver defaults to the 1-center surrogate P̃).
	inst := ukc.NewFiniteInstance(space, pts, nil)

	// Paper pipeline with the 1-center rule: factor 5+2ε vs the unrestricted
	// optimum (ε = 1 for Gonzalez here).
	oc, err := ukc.NewSolver[int](ukc.WithRule(ukc.RuleOC)).Solve(ctx, inst, depots)
	if err != nil {
		log.Fatal(err)
	}
	// Same pipeline, expected-distance assignment (factor 7+2ε).
	ed, err := ukc.NewSolver[int](ukc.WithRule(ukc.RuleED)).Solve(ctx, inst, depots)
	if err != nil {
		log.Fatal(err)
	}
	// Exact certain k-center on the surrogates (ε = 0 — the best the
	// reduction can do on a finite space), with the hot loops on 4 workers
	// (bit-identical to the sequential run).
	exact, err := ukc.NewSolver[int](
		ukc.WithRule(ukc.RuleOC),
		ukc.WithCertainSolver(ukc.SolverExactDiscrete),
		ukc.WithParallelism(4),
	).Solve(ctx, inst, depots)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-36s %10s %s\n", "method", "E[max]", "depots")
	fmt.Printf("%-36s %10.3f %v\n", "OC rule + Gonzalez (5+2eps)", oc.Ecost, oc.Centers)
	fmt.Printf("%-36s %10.3f %v\n", "ED rule + Gonzalez (7+2eps)", ed.Ecost, ed.Centers)
	fmt.Printf("%-36s %10.3f %v\n", "OC rule + exact surrogate k-center", exact.Ecost, exact.Centers)

	fmt.Println("\nvehicle -> depot assignment (OC rule):")
	for v := 0; v < 6; v++ {
		fmt.Printf("  vehicle %d (likely at node %d) -> depot node %d\n",
			v, pts[v].Locs[0], oc.Centers[oc.Assign[v]])
	}
	fmt.Println("  ...")
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
