// Serving: run a sharded serve.Server over several compiled instances —
// the production-shaped layer above Instance/Solver/Batch. Registration
// compiles (and therefore validates) each instance once; concurrent
// requests then share the compiled arena and the memoized caches, with
// admission control, per-request deadlines and a byte-budget LRU keeping
// memory bounded.
//
//	go run ./examples/serving
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	ukc "repro"
	"repro/internal/gen"
	"repro/serve"
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))

	// A 2-shard server: each shard has its own worker pool, bounded queue
	// and its own full cache budget (a process-wide ceiling of S × budget),
	// so one hot instance cannot stall the rest. The 256 KiB per-shard
	// budget is deliberately tight — watch the eviction counters below.
	solver := ukc.NewSolver[ukc.Vec](ukc.WithMaxIter(4))
	srv, err := serve.New(solver,
		serve.WithShards(2),
		serve.WithWorkersPerShard(2),
		serve.WithQueueDepth(128),
		serve.WithCacheBudget(256<<10),
		serve.WithDefaultDeadline(5*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Register a small fleet of instances ("sensor grids" of different
	// sizes). Register compiles: an invalid model is rejected here, never
	// at request time.
	for i := 0; i < 6; i++ {
		pts, err := gen.GaussianClusters(rng, 60+20*i, 4, 2, 3, 1, 0.4)
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("grid-%d", i)
		if err := srv.Register(ctx, name, ukc.NewEuclideanInstance(pts)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("registered:", srv.Names())

	// Mixed concurrent traffic: full pipeline solves, exact cost queries
	// and the unassigned local search, from 8 client goroutines.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var solves, costs, rejected int
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				name := fmt.Sprintf("grid-%d", (g+i)%6)
				var err error
				if i%3 == 0 {
					var resp serve.SolveResponse[ukc.Vec]
					resp, err = srv.Solve(ctx, serve.SolveRequest{Instance: name, K: 3})
					if err == nil {
						mu.Lock()
						solves++
						mu.Unlock()
						_ = resp.Result.Ecost
					}
				} else {
					var resp serve.EcostResponse
					resp, err = srv.Ecost(ctx, serve.EcostRequest[ukc.Vec]{
						Instance: name,
						Centers:  []ukc.Vec{{0, 0}, {3, 3}, {-2, 4}},
					})
					if err == nil {
						mu.Lock()
						costs++
						mu.Unlock()
						_ = resp.Ecost
					}
				}
				if errors.Is(err, serve.ErrOverloaded) {
					// Admission control sheds load instead of queueing
					// unboundedly; a real client would back off and retry.
					mu.Lock()
					rejected++
					mu.Unlock()
				} else if err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	wg.Wait()
	fmt.Printf("traffic: %d solves, %d cost queries, %d shed by admission control\n", solves, costs, rejected)

	// A request-level deadline: this one is allowed 1ns, so it fails with
	// context.DeadlineExceeded — without poisoning the shard.
	_, err = srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "grid-0", K: 3, Deadline: time.Nanosecond})
	fmt.Printf("1ns-deadline request: %v\n", err)

	// The unassigned local search builds the dominant cache: the 12·m·N
	// distance-RV evaluator (~690 KB for grid-0) — well over the 256 KiB
	// budget, so the byte-budget LRU drops caches right after the request
	// completes. The answer is unaffected; a repeat rebuilds lazily.
	un, err := srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "grid-0", K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unassigned solve on grid-0: ecost %.4f (evaluator built, then evicted by the budget)\n", un.Ecost)

	// The metrics snapshot: queue occupancy, cache accounting against the
	// budget, warm-cache hit rate and latency quantiles, per shard.
	for _, m := range srv.Metrics().Shards {
		fmt.Printf("shard %d: %d instances, cache %d/%d bytes, %d completed, hit rate %.2f, %d evictions, p50 %v\n",
			m.Shard, m.Instances, m.CacheBytes, m.CacheBudget, m.Completed, m.HitRate(), m.Evictions, m.LatencyP50.Round(10*time.Microsecond))
	}
	tot := srv.Metrics().Totals()
	fmt.Printf("total: %d completed, %d expired, hit rate %.2f, %d evictions\n",
		tot.Completed, tot.Expired, tot.HitRate(), tot.Evictions)
}
