// Package ukc is the public API of this repository: a Go implementation of
//
//	Alipour & Jafari, "Improvements on the k-center problem for uncertain
//	data", PODS 2018 (arXiv:1708.09180)
//
// — constant-factor approximation algorithms for the k-center problem when
// every input point is a discrete probability distribution over possible
// locations.
//
// # Model
//
// An uncertain point is a finite distribution over locations; a realization
// draws one location per point independently. The cost of k centers is the
// expected maximum distance over realizations, either with a fixed per-point
// assignment (assigned versions) or with each realization snapping to its
// nearest center (unassigned version). See DESIGN.md for the full problem
// statement and the per-theorem guarantees.
//
// # Quick start
//
//	pts := []ukc.Point{ /* uncertain points in R^d */ }
//	solver := ukc.NewSolver[ukc.Vec](ukc.WithRule(ukc.RuleEP), ukc.WithParallelism(8))
//	res, err := solver.Solve(ctx, ukc.NewEuclideanInstance(pts), 3)
//	// res.Centers, res.Assign, res.Ecost (exact expected cost)
//
// The primary API is generic: an Instance[P] bundles uncertain points, a
// metric Space[P] and a candidate set, and a Solver[P] — configured once
// with functional options — runs one unified pipeline over any space, with
// Euclidean space as a specialization rather than a parallel code path
// (finite/graph metrics use the 1-center surrogate in place of the expected
// point). Every solve takes a context.Context and aborts mid-solve on
// cancellation; WithParallelism(n) fans the hot loops out over a worker
// pool with bit-identical results, and Batch solves many instances
// concurrently on a shared bounded pool.
//
// The flat functions below (SolveEuclidean, SolveMetric, Assign, Ecost, …)
// are the legacy surface, kept as thin deprecated wrappers over the Solver
// API; DESIGN.md carries the migration table.
//
// The subpackages under internal/ hold the substrates (geometry, metric
// spaces, graph shortest paths, the exact E[max] evaluator, deterministic
// k-center solvers, brute-force oracles, workload generators and the
// experiment harness); this package re-exports the surface a downstream
// user needs.
package ukc

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/arena"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataio"
	"repro/internal/geom"
	"repro/internal/graphmetric"
	"repro/internal/metricspace"
	"repro/internal/onedim"
	"repro/internal/uncertain"
)

// Vec is a point in R^d.
type Vec = geom.Vec

// Point is an uncertain point in Euclidean space: a discrete distribution
// over location vectors.
type Point = uncertain.Point[geom.Vec]

// FinitePoint is an uncertain point over the vertices of a finite metric
// space.
type FinitePoint = uncertain.Point[int]

// FiniteSpace is an explicit finite metric space (distance matrix).
type FiniteSpace = metricspace.Finite

// Graph is a weighted undirected graph whose shortest-path metric can serve
// as the finite space of SolveMetric.
type Graph = graphmetric.Graph

// Result is the output of the solvers: centers, assignment, and exact
// expected costs.
type Result = core.Result[geom.Vec]

// FiniteResult is Result over a finite metric space.
type FiniteResult = core.Result[int]

// Assignment rules (the paper's three restricted-assigned variants).
const (
	RuleED = core.RuleED // expected distance
	RuleEP = core.RuleEP // expected point (Euclidean only)
	RuleOC = core.RuleOC // 1-center
)

// Surrogate constructions.
const (
	SurrogateExpectedPoint = core.SurrogateExpectedPoint
	SurrogateOneCenter     = core.SurrogateOneCenter
)

// Deterministic k-center solvers for the surrogate step.
const (
	SolverGonzalez      = core.SolverGonzalez
	SolverEps           = core.SolverEps
	SolverExactDiscrete = core.SolverExactDiscrete
)

// EuclideanOptions configures SolveEuclidean; the zero value is the paper's
// O(nz + n log k) pipeline with the factor-4 guarantee (expected-point
// surrogate, Gonzalez, EP assignment).
type EuclideanOptions = core.EuclideanOptions

// MetricOptions configures SolveMetric; the zero value is Gonzalez with the
// ED assignment (factor 7+2ε against the unrestricted optimum).
type MetricOptions = core.MetricOptions

// NewPoint validates and constructs an uncertain point from locations and
// probabilities (which must sum to 1).
func NewPoint(locs []Vec, probs []float64) (Point, error) {
	return uncertain.New(locs, probs)
}

// NewUniformPoint constructs an uncertain point uniform over locs.
func NewUniformPoint(locs []Vec) (Point, error) {
	return uncertain.NewUniform(locs)
}

// NewDeterministicPoint wraps a certain location as an uncertain point.
func NewDeterministicPoint(loc Vec) Point {
	return uncertain.NewDeterministic(loc)
}

// NewFinitePoint constructs an uncertain point over vertex indices.
func NewFinitePoint(locs []int, probs []float64) (FinitePoint, error) {
	return uncertain.New(locs, probs)
}

// NewGraph returns an empty weighted graph on n vertices; add edges with
// AddEdge, then derive its metric with (*Graph).Metric.
func NewGraph(n int) *Graph { return graphmetric.New(n) }

// SolveEuclidean runs the paper's Euclidean surrogate pipeline
// (Theorems 2.1–2.5). See EuclideanOptions for the factor/runtime menu.
//
// Deprecated: use NewSolver[Vec] with functional options and Solve, which
// adds context cancellation and worker-pool parallelism:
//
//	solver := ukc.NewSolver[ukc.Vec](ukc.WithRule(opts.Rule), ...)
//	res, err := solver.Solve(ctx, ukc.NewEuclideanInstance(pts), k)
func SolveEuclidean(pts []Point, k int, opts EuclideanOptions) (Result, error) {
	// core.SolveEuclidean owns the legacy option mapping and is itself a
	// wrapper over the same unified core.Solve that Solver.Solve calls.
	return core.SolveEuclidean(pts, k, opts)
}

// SolveMetric runs the general-metric pipeline (Theorems 2.6–2.7) over a
// finite metric space; candidates is the center/surrogate search space,
// typically space.Points().
//
// Deprecated: use NewSolver[int] with functional options and Solve over a
// NewFiniteInstance (or NewGraphInstance), which adds context cancellation
// and worker-pool parallelism.
func SolveMetric(space *FiniteSpace, pts []FinitePoint, candidates []int, k int, opts MetricOptions) (FiniteResult, error) {
	return core.SolveMetric[int](space, pts, candidates, k, opts)
}

// OneCenter returns the Theorem 2.1 uncertain 1-center: an expected point
// with exact cost at most twice the optimum.
func OneCenter(pts []Point) (Vec, float64, error) {
	return core.OneCenterApprox(pts)
}

// Optimal1Center numerically computes the true optimal Euclidean uncertain
// 1-center (the cost function is convex); tol is relative to the instance
// diameter.
func Optimal1Center(pts []Point, tol float64) (Vec, float64, error) {
	return core.Optimal1CenterEuclidean(pts, tol)
}

// Ecost returns the exact assigned expected cost of (centers, assign).
//
// Deprecated: use Solver.Ecost, which adds context cancellation and
// worker-pool parallelism.
func Ecost(pts []Point, centers []Vec, assign []int) (float64, error) {
	return core.EcostAssigned[geom.Vec](metricspace.Euclidean{}, pts, centers, assign)
}

// EcostUnassigned returns the exact unassigned expected cost of centers.
//
// Deprecated: use Solver.EcostUnassigned, which adds context cancellation
// and worker-pool parallelism.
func EcostUnassigned(pts []Point, centers []Vec) (float64, error) {
	return core.EcostUnassigned[geom.Vec](metricspace.Euclidean{}, pts, centers)
}

// Assign computes the named assignment rule for a center set.
//
// Deprecated: use Solver.Assign, which adds context cancellation and
// worker-pool parallelism.
func Assign(pts []Point, centers []Vec, rule core.Rule) ([]int, error) {
	return core.AssignEuclidean(pts, centers, rule)
}

// ExpectedPoint returns P̄ = Σ p_j·P_j of one uncertain point.
func ExpectedPoint(p Point) Vec { return uncertain.ExpectedPoint(p) }

// PointOneCenter returns P̃, the weighted 1-median of a point's own
// distribution (Weiszfeld).
func PointOneCenter(p Point) Vec { return uncertain.OneCenterEuclidean(p) }

// Solve1D solves the 1D max-of-expectations k-center exactly (certified
// bisection), the Wang–Zhang setting behind Table 1 row 8.
func Solve1D(pts []Point, k int, tol float64) (onedim.Result, error) {
	return onedim.Solve(pts, k, tol)
}

// Solve1DEmax minimizes the paper's E[max] objective in 1D with a certified
// lower bound.
func Solve1DEmax(pts []Point, k int, tol float64) (onedim.Result, error) {
	return onedim.SolveEmax(pts, k, tol)
}

// Baseline methods for comparison experiments.
const (
	BaselineMode           = baseline.MethodMode
	BaselineSample         = baseline.MethodSample
	BaselineMedianLocation = baseline.MethodMedianLocation
)

// BaselineOptions configures SolveBaseline.
type BaselineOptions = baseline.Options

// SolveBaseline runs one of the representative-point baselines.
func SolveBaseline(pts []Point, k int, method baseline.Method, opts BaselineOptions) (Result, error) {
	return baseline.Solve[geom.Vec](metricspace.Euclidean{}, pts, k, method, opts)
}

// WriteInstance serializes a Euclidean instance as JSON.
func WriteInstance(w io.Writer, pts []Point) error {
	return dataio.WriteEuclidean(w, pts)
}

// ReadInstance parses and validates a Euclidean instance.
func ReadInstance(r io.Reader) ([]Point, error) {
	return dataio.ReadEuclidean(r)
}

// ReadCompiledInstance parses a Euclidean instance straight into a
// ready-to-solve Instance whose compiled representation is already built:
// the dataset is decoded, validated, pruned and flattened in a single pass,
// and every later solve reuses that model — the loader for serving systems
// that read once and solve many times.
func ReadCompiledInstance(r io.Reader) (Instance[Vec], error) {
	c, err := dataio.ReadEuclideanCompiled(r)
	if err != nil {
		return Instance[Vec]{}, err
	}
	return newCompiledInstance(c), nil
}

// ReadCompiledFiniteInstance is ReadCompiledInstance for finite-space
// datasets; the candidate set defaults to all space points.
func ReadCompiledFiniteInstance(r io.Reader) (Instance[int], error) {
	_, c, err := dataio.ReadFiniteCompiled(r)
	if err != nil {
		return Instance[int]{}, err
	}
	return newCompiledInstance(c), nil
}

// OpenSnapshotInstance opens a Euclidean ".ukc" snapshot (written by
// package store or cmd/ukfreeze) as a ready-to-solve Instance whose
// compiled representation aliases the snapshot bytes zero-copy: no JSON
// decode, no validation of individual atoms, no recompilation — open cost
// is one bounds/CRC sweep. The underlying mapping stays open for the
// process lifetime; use package store directly when the snapshot's
// lifecycle must be managed explicitly.
func OpenSnapshotInstance(path string) (Instance[Vec], error) {
	f, err := arena.Open(context.Background(), path, arena.Options{})
	if err != nil {
		return Instance[Vec]{}, err
	}
	c, err := f.Euclidean()
	if err != nil {
		f.Close()
		return Instance[Vec]{}, fmt.Errorf("ukc: %s: %w", path, err)
	}
	return newCompiledInstance(c), nil
}

// OpenSnapshotFiniteInstance is OpenSnapshotInstance for finite-kind
// snapshots.
func OpenSnapshotFiniteInstance(path string) (Instance[int], error) {
	f, err := arena.Open(context.Background(), path, arena.Options{})
	if err != nil {
		return Instance[int]{}, err
	}
	c, err := f.Finite()
	if err != nil {
		f.Close()
		return Instance[int]{}, fmt.Errorf("ukc: %s: %w", path, err)
	}
	return newCompiledInstance(c), nil
}

// SamplePoint draws one realization from an uncertain point.
func SamplePoint(p Point, rng *rand.Rand) Vec { return p.Sample(rng) }
