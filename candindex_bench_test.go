package ukc_test

// The PR-9 acceptance benchmark: the n = m = 1000 swap-scan wall, measured
// with the candidate index off (the PR-3 oracle), pruning (bit-identical,
// must skip ≥ 50% of candidate evaluations here), and approximate
// (neighborhood-restricted, cost ratio reported). `make bench-index` records
// this into BENCH_PR9.json; the reported metrics are
//
//	ns/scan     — wall time per scan position (the per-scan old-vs-new axis)
//	prune_rate  — pruned / scanned candidate evaluations
//	cost_ratio  — final E-cost vs the exact trajectory's (1.0 for off/prune)
//
// so one file carries the whole quality/speed story.

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	ukc "repro"
	"repro/internal/gen"
	"repro/obs"
)

// benchIndexInstance is the acceptance instance: 1000 uncertain points,
// 1000 candidate locations.
func benchIndexInstance(b *testing.B) ukc.Instance[ukc.Vec] {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	pts, err := gen.GaussianClusters(rng, 1000, 3, 2, 8, 1, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	locs := make([]ukc.Vec, 0, 1000)
	for _, p := range pts {
		for _, loc := range p.Locs {
			if len(locs) == cap(locs) {
				break
			}
			locs = append(locs, loc)
		}
	}
	return ukc.NewInstance[ukc.Vec](ukc.Euclidean{}, pts, locs)
}

// scanCounter tallies descent positions and prune outcomes from the solver's
// ls.iter / ls.prune spans.
type scanCounter struct {
	mu        sync.Mutex
	positions int64 // scan positions completed (k per completed swap round)
	scanned   int64
	pruned    int64
}

func (s *scanCounter) Span(name, _ string, _ time.Time, _ time.Duration, attrs []obs.Attr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch name {
	case "ls.descent":
		var k, iters int64
		for _, a := range attrs {
			switch a.Key {
			case "k":
				k = a.Val
			case "iters":
				iters = a.Val
			}
		}
		s.positions += k * iters
	case "ls.prune":
		for _, a := range attrs {
			switch a.Key {
			case "scanned":
				s.scanned += a.Val
			case "pruned":
				s.pruned += a.Val
			}
		}
	}
}

// BenchmarkCandIndexScan is the off/prune/approx sweep on the n = m = 1000
// instance. Sub-bench names are stable identifiers for BENCH_PR9.json.
func BenchmarkCandIndexScan(b *testing.B) {
	const k = 8
	ctx := context.Background()
	inst := benchIndexInstance(b)

	// Exact-trajectory cost, computed once, anchors every cost_ratio.
	exactSolver := ukc.NewSolver[ukc.Vec](ukc.WithParallelism(1))
	_, exactCost, err := exactSolver.SolveUnassignedMode(ctx, inst, k, ukc.CandIndexOff)
	if err != nil {
		b.Fatal(err)
	}

	for _, bc := range []struct {
		name string
		mode ukc.CandidateIndexMode
	}{
		{"off", ukc.CandIndexOff},
		{"prune", ukc.CandIndexPrune},
		{"approx", ukc.CandIndexApprox},
	} {
		b.Run(bc.name, func(b *testing.B) {
			sc := &scanCounter{}
			solver := ukc.NewSolver[ukc.Vec](ukc.WithParallelism(1), ukc.WithTracer(sc))
			var cost float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, c, err := solver.SolveUnassignedMode(ctx, inst, k, bc.mode)
				if err != nil {
					b.Fatal(err)
				}
				cost = c
			}
			b.StopTimer()
			if sc.positions > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(sc.positions), "ns/scan")
			}
			if sc.scanned > 0 {
				rate := float64(sc.pruned) / float64(sc.scanned)
				b.ReportMetric(rate, "prune_rate")
				if bc.mode == ukc.CandIndexPrune && rate < 0.5 {
					b.Fatalf("prune_rate = %.3f, acceptance floor is 0.50", rate)
				}
			}
			b.ReportMetric(cost/exactCost, "cost_ratio")
			if bc.mode != ukc.CandIndexApprox && cost != exactCost {
				b.Fatalf("mode %v cost %g != exact %g (trajectory diverged)", bc.mode, cost, exactCost)
			}
		})
	}
}
