package ukc_test

// Godoc examples: runnable documentation with verified output.

import (
	"fmt"

	ukc "repro"
)

func ExampleSolveEuclidean() {
	// Two well-separated uncertain points and one center each.
	a, _ := ukc.NewPoint([]ukc.Vec{{0, 0}, {0, 2}}, []float64{0.5, 0.5})
	b, _ := ukc.NewPoint([]ukc.Vec{{10, 0}, {10, 2}}, []float64{0.5, 0.5})
	res, _ := ukc.SolveEuclidean([]ukc.Point{a, b}, 2, ukc.EuclideanOptions{})
	fmt.Printf("k=%d centers, assignment %v, Ecost %.0f\n",
		len(res.Centers), res.Assign, res.Ecost)
	// Output: k=2 centers, assignment [0 1], Ecost 1
}

func ExampleOneCenter() {
	// Theorem 2.1: the expected point is a 2-approximate uncertain 1-center.
	p, _ := ukc.NewPoint([]ukc.Vec{{0}, {4}}, []float64{0.5, 0.5})
	c, cost, _ := ukc.OneCenter([]ukc.Point{p})
	fmt.Printf("center %v, expected cost %.0f\n", c, cost)
	// Output: center (2), expected cost 2
}

func ExampleExpectedPoint() {
	p, _ := ukc.NewPoint([]ukc.Vec{{0, 0}, {4, 8}}, []float64{0.75, 0.25})
	fmt.Println(ukc.ExpectedPoint(p))
	// Output: (1, 2)
}

func ExampleSolve1D() {
	pts := []ukc.Point{
		ukc.NewDeterministicPoint(ukc.Vec{0}),
		ukc.NewDeterministicPoint(ukc.Vec{10}),
		ukc.NewDeterministicPoint(ukc.Vec{100}),
	}
	res, _ := ukc.Solve1D(pts, 2, 0)
	fmt.Printf("cost %.0f with %d centers\n", res.Cost, len(res.Centers))
	// Output: cost 5 with 2 centers
}

func ExampleEcostUnassigned() {
	// A certain point at distance 3 from the only center.
	p := ukc.NewDeterministicPoint(ukc.Vec{3, 0})
	cost, _ := ukc.EcostUnassigned([]ukc.Point{p}, []ukc.Vec{{0, 0}})
	fmt.Printf("%.0f\n", cost)
	// Output: 3
}
