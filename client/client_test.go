package client

// Deterministic retry/breaker contract tests: every test drives the
// client's injected clock and sleep hooks, so no test ever sleeps for
// real or depends on wall-clock timing.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// testClient builds a client against url with a fake clock and a recording
// sleep hook that never actually sleeps.
func testClient(t *testing.T, url string, opts ...Option) (*Client, *[]time.Duration, *time.Time) {
	t.Helper()
	c, err := New(url, opts...)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1700000000, 0)
	var waits []time.Duration
	c.now = func() time.Time { return clock }
	c.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		clock = clock.Add(d)
		return ctx.Err()
	}
	return c, &waits, &clock
}

func jsonHandler(status int, body string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(body))
	}
}

func TestRetryOn503ThenSuccess(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			jsonHandler(http.StatusServiceUnavailable, `{"error":"draining"}`)(w, r)
			return
		}
		jsonHandler(http.StatusOK, `{"ecost": 4.5, "stats": {"shard": 1}}`)(w, r)
	}))
	defer ts.Close()

	c, waits, _ := testClient(t, ts.URL)
	resp, err := c.Ecost(context.Background(), "a", []int{0}, nil, 0)
	if err != nil {
		t.Fatalf("Ecost: %v", err)
	}
	if resp.Ecost != 4.5 || resp.Stats.Shard != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	// Two retries, exponential envelope with jitter in [d/2, d): first in
	// [25ms, 50ms), second in [50ms, 100ms).
	if len(*waits) != 2 {
		t.Fatalf("waits = %v, want 2 entries", *waits)
	}
	if (*waits)[0] < 25*time.Millisecond || (*waits)[0] >= 50*time.Millisecond {
		t.Fatalf("first backoff %v outside [25ms, 50ms)", (*waits)[0])
	}
	if (*waits)[1] < 50*time.Millisecond || (*waits)[1] >= 100*time.Millisecond {
		t.Fatalf("second backoff %v outside [50ms, 100ms)", (*waits)[1])
	}
}

func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			jsonHandler(http.StatusTooManyRequests, `{"error":"queue full"}`)(w, r)
			return
		}
		jsonHandler(http.StatusOK, `{"ecost": 1}`)(w, r)
	}))
	defer ts.Close()

	c, waits, _ := testClient(t, ts.URL)
	if _, err := c.Ecost(context.Background(), "a", []int{0}, nil, 0); err != nil {
		t.Fatalf("Ecost: %v", err)
	}
	// The server asked for 3s; the jittered backoff (< 50ms) must lose to it.
	if len(*waits) != 1 || (*waits)[0] != 3*time.Second {
		t.Fatalf("waits = %v, want exactly [3s]", *waits)
	}
}

func TestOverloadedExhaustsAttempts(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		jsonHandler(http.StatusTooManyRequests, `{"error":"queue full"}`)(w, r)
	}))
	defer ts.Close()

	c, _, _ := testClient(t, ts.URL, WithMaxAttempts(3))
	_, err := c.Solve(context.Background(), "a", 2, 0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests || se.Message != "queue full" {
		t.Fatalf("StatusError not recoverable from %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want all 3 attempts", calls.Load())
	}
	// 429 means the host answered: it must never trip the breaker.
	if c.BreakerState() != BreakerClosed {
		t.Fatalf("breaker = %d after 429s, want closed", c.BreakerState())
	}
}

func TestPermanentErrorsNotRetried(t *testing.T) {
	cases := []struct {
		status int
		body   string
		want   error
	}{
		{http.StatusNotFound, `{"error":"no such instance"}`, ErrNotFound},
		{http.StatusGatewayTimeout, `{"error":"deadline"}`, ErrRemoteDeadline},
		{http.StatusUnprocessableEntity, `{"error":"bad request"}`, nil},
	}
	for _, tc := range cases {
		var calls atomic.Int32
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			jsonHandler(tc.status, tc.body)(w, r)
		}))
		c, waits, _ := testClient(t, ts.URL)
		_, err := c.Solve(context.Background(), "a", 2, 0)
		ts.Close()
		if err == nil {
			t.Fatalf("status %d: err = nil", tc.status)
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Fatalf("status %d: err = %v, want %v", tc.status, err, tc.want)
		}
		if calls.Load() != 1 || len(*waits) != 0 {
			t.Fatalf("status %d: calls = %d waits = %v, want a single attempt", tc.status, calls.Load(), *waits)
		}
		if c.BreakerState() != BreakerClosed {
			t.Fatalf("status %d: breaker tripped by a permanent client error", tc.status)
		}
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	var mode atomic.Int32 // 0: fail 500, 1: succeed
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if mode.Load() == 0 {
			jsonHandler(http.StatusInternalServerError, `{"error":"boom"}`)(w, r)
			return
		}
		jsonHandler(http.StatusOK, `{"ecost": 2}`)(w, r)
	}))
	defer ts.Close()

	// threshold 3 with 3 attempts per call: one call opens the circuit.
	c, _, clock := testClient(t, ts.URL, WithMaxAttempts(3), WithBreaker(3, 5*time.Second))
	if _, err := c.Ecost(context.Background(), "a", []int{0}, nil, 0); err == nil {
		t.Fatal("err = nil, want failure")
	}
	if c.BreakerState() != BreakerOpen {
		t.Fatalf("breaker = %d after %d consecutive 500s, want open", c.BreakerState(), calls.Load())
	}
	if g := c.BreakerGauge().Load(); g != BreakerOpen {
		t.Fatalf("gauge = %d, want %d", g, BreakerOpen)
	}

	// Open circuit: fail fast, no network I/O.
	before := calls.Load()
	if _, err := c.Ecost(context.Background(), "a", []int{0}, nil, 0); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker still hit the network")
	}

	// Past the cooldown the next call is the half-open probe; the host has
	// recovered, so the probe closes the circuit.
	mode.Store(1)
	*clock = clock.Add(6 * time.Second)
	if _, err := c.Ecost(context.Background(), "a", []int{0}, nil, 0); err != nil {
		t.Fatalf("probe call: %v", err)
	}
	if c.BreakerState() != BreakerClosed {
		t.Fatalf("breaker = %d after successful probe, want closed", c.BreakerState())
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	ts := httptest.NewServer(jsonHandler(http.StatusInternalServerError, `{"error":"boom"}`))
	defer ts.Close()

	c, _, clock := testClient(t, ts.URL, WithMaxAttempts(1), WithBreaker(1, 5*time.Second))
	c.Ecost(context.Background(), "a", []int{0}, nil, 0) // opens on first failure
	if c.BreakerState() != BreakerOpen {
		t.Fatalf("breaker = %d, want open", c.BreakerState())
	}
	*clock = clock.Add(6 * time.Second)
	if _, err := c.Ecost(context.Background(), "a", []int{0}, nil, 0); err == nil {
		t.Fatal("probe against a dead host succeeded")
	}
	// The failed probe reopens immediately — no threshold re-count.
	if c.BreakerState() != BreakerOpen {
		t.Fatalf("breaker = %d after failed probe, want open", c.BreakerState())
	}
	if _, err := c.Ecost(context.Background(), "a", []int{0}, nil, 0); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen before next cooldown", err)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(1, time.Second, func() time.Time { return time.Unix(1700000010, 0) })
	b.mu.Lock()
	b.set(BreakerOpen)
	b.openedAt = time.Unix(1700000000, 0)
	b.mu.Unlock()
	if !b.allow() {
		t.Fatal("first caller past the cooldown must be admitted as the probe")
	}
	if b.current() != BreakerHalfOpen {
		t.Fatalf("state = %d, want half-open", b.current())
	}
	if b.allow() {
		t.Fatal("second caller admitted while the probe is in flight")
	}
}

func TestPerAttemptTimeout(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first attempt hangs past its per-attempt timeout
			return
		}
		jsonHandler(http.StatusOK, `{"ecost": 7}`)(w, r)
	}))
	defer ts.Close()
	defer close(release)

	c, _, _ := testClient(t, ts.URL, WithAttemptTimeout(50*time.Millisecond))
	resp, err := c.Ecost(context.Background(), "a", []int{0}, nil, 0)
	if err != nil {
		t.Fatalf("Ecost: %v", err)
	}
	if resp.Ecost != 7 || calls.Load() != 2 {
		t.Fatalf("resp=%+v calls=%d: hung attempt was not abandoned and retried", resp, calls.Load())
	}
}

func TestCallerContextBoundsRetries(t *testing.T) {
	ts := httptest.NewServer(jsonHandler(http.StatusServiceUnavailable, `{"error":"down"}`))
	defer ts.Close()

	c, _, _ := testClient(t, ts.URL, WithMaxAttempts(10))
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	c.sleep = func(sctx context.Context, d time.Duration) error {
		calls++
		cancel() // the deadline lands while backing off
		return sctx.Err()
	}
	_, err := c.Solve(ctx, "a", 2, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want the last 503 preserved in the chain", err)
	}
	if calls != 1 {
		t.Fatalf("kept retrying after the context died: %d sleeps", calls)
	}
}

func TestWireShapes(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req workloadRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding request: %v", err)
		}
		switch r.URL.Path {
		case "/v1/solve":
			if req.Instance != "eu" || req.K != 3 || req.DeadlineMS != 250 {
				t.Errorf("solve request = %+v", req)
			}
			jsonHandler(http.StatusOK, `{"centers": [[1,2],[3,4]], "assign": [0,1], "ecost": 9.5,
				"stats": {"shard": 2, "queue_ms": 0.5, "exec_ms": 1.5, "cache_hit": true}}`)(w, r)
		case "/v1/assign":
			var got [][]float64
			if err := json.Unmarshal(req.Centers, &got); err != nil || len(got) != 2 {
				t.Errorf("assign centers = %s (%v)", req.Centers, err)
			}
			jsonHandler(http.StatusOK, `{"assign": [1,0]}`)(w, r)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	defer ts.Close()

	c, _, _ := testClient(t, ts.URL)
	solve, err := c.Solve(context.Background(), "eu", 3, 250*time.Millisecond)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	centers, err := DecodeCenters[[2]float64](solve.Centers)
	if err != nil {
		t.Fatalf("DecodeCenters: %v", err)
	}
	if len(centers) != 2 || centers[1] != [2]float64{3, 4} {
		t.Fatalf("centers = %v", centers)
	}
	if solve.Ecost != 9.5 || !solve.Stats.CacheHit || solve.Stats.Shard != 2 {
		t.Fatalf("solve = %+v", solve)
	}
	assign, err := c.Assign(context.Background(), "eu", [][]float64{{0, 0}, {5, 5}}, 0)
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if len(assign.Assign) != 2 || assign.Assign[0] != 1 {
		t.Fatalf("assign = %+v", assign)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"-1", 0},
		{"garbage", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Fatal("New(\"\") succeeded")
	}
	c, err := New("http://example.test/")
	if err != nil {
		t.Fatal(err)
	}
	if c.base != "http://example.test" {
		t.Fatalf("base = %q, trailing slash kept", c.base)
	}
}
