package client

// trace.go is the client's side of the correlation contract: every call
// carries an X-Request-ID (generated, or caller-supplied via WithRequestID)
// that the gateway echoes and logs, and a W3C traceparent naming the trace
// the call belongs to — an ambient one from the caller's context, or a
// fresh root so even an untraced caller's retries correlate server-side.
// With a flight recorder installed (WithFlightRecorder) the call becomes a
// trace participant: each attempt is a child span carrying the attempt
// number and HTTP status, and circuit-breaker state transitions are
// recorded as zero-duration marker spans.

import (
	"context"
	"time"

	"repro/obs"
)

// ResponseMeta is the correlation metadata attached to every workload
// response: the request ID the call carried (echoed by the gateway), for
// joining client-side results to gateway request logs and retained traces.
type ResponseMeta struct {
	RequestID string `json:"-"`
}

// setRequestID is the hook attempt uses to stamp decoded responses.
func (m *ResponseMeta) setRequestID(id string) { m.RequestID = id }

type requestIDSetter interface{ setRequestID(string) }

// requestIDKey carries a caller-supplied request ID through a context.
type requestIDKey struct{}

// WithRequestID returns ctx carrying an explicit request ID: every attempt
// of every call under it sends `id` as X-Request-ID instead of a generated
// one. Use it to thread an upstream system's correlation ID through the
// gateway's logs.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// requestIDFrom extracts a caller-supplied request ID, or "".
func requestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID returns a fresh 16-hex-char request ID (the same shape the
// gateway generates when a caller sends none).
func newRequestID() string { return obs.NewSpanID().String() }

// callTrace is the per-call trace state do() threads through its attempts.
type callTrace struct {
	tc     obs.TraceContext // the trace every attempt's traceparent names
	at     *obs.ActiveTrace // nil without a recorder
	parent obs.SpanID       // parent for attempt/breaker spans
}

// startCallTrace roots the call's trace: the ambient trace context when the
// caller has one, a fresh trace otherwise — propagation works with or
// without a recorder; the recorder only decides whether the client keeps
// its own copy of the spans.
func (c *Client) startCallTrace(ctx context.Context, name string) callTrace {
	tc := obs.TraceFromContext(ctx)
	if !tc.Valid() {
		tc = obs.TraceContext{TraceID: obs.NewTraceID()}
	}
	ct := callTrace{tc: tc, parent: tc.SpanID}
	if at := c.cfg.recorder.Start(tc, name, ""); at != nil {
		ct.at = at
		ct.parent = at.RootID()
	}
	return ct
}

// attemptSpan records one attempt as a child span: its number and the HTTP
// status it ended with (0 for transport errors, 200 for success).
func (ct callTrace) attemptSpan(id obs.SpanID, attempt, status int, start time.Time) {
	ct.at.Record(id, ct.parent, "client.attempt", "", start, time.Since(start),
		obs.Int("attempt", attempt), obs.Int("status", status))
}

// breakerSpan records a circuit-breaker state transition observed during
// this call as a zero-duration marker span.
func (c *Client) breakerSpan(ct callTrace, prev int) {
	if ct.at == nil {
		return
	}
	if cur := c.br.current(); cur != prev {
		ct.at.Record(obs.NewSpanID(), ct.parent, "client.breaker", "", time.Now(), 0,
			obs.Int("from", prev), obs.Int("to", cur))
	}
}

// statusOf maps an attempt outcome to the status attribute: the HTTP status
// for server responses, 200 for success, 0 for transport-level failures.
func statusOf(err error) int {
	if err == nil {
		return 200
	}
	if se, ok := err.(*StatusError); ok {
		return se.Status
	}
	return 0
}
