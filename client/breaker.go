package client

import (
	"sync"
	"time"

	"repro/obs"
)

// Circuit-breaker states, exported on the obs gauge (see Client.BreakerGauge)
// so operators can alert on an open circuit.
const (
	BreakerClosed   = 0 // requests flow; consecutive failures are counted
	BreakerOpen     = 1 // requests fail fast with ErrCircuitOpen until the cooldown elapses
	BreakerHalfOpen = 2 // one probe request is in flight; its outcome decides
)

// breaker is a per-host circuit breaker: closed → open after `threshold`
// consecutive breaker-class failures (transport errors and 5xx responses
// that indicate the host itself is unhealthy — see classify), open →
// half-open after `cooldown`, half-open → closed on a successful probe or
// back to open on a failed one. While half-open exactly one request is let
// through; concurrent requests fail fast like open, so a recovering host
// sees a single probe rather than a thundering herd.
//
// The clock is injected (the Client's now hook) so tests drive transitions
// deterministically.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    int
	failures int       // consecutive breaker-class failures while closed
	openedAt time.Time // when the breaker last opened
	gauge    obs.Gauge // mirrors state for export
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

func (b *breaker) set(state int) {
	b.state = state
	b.gauge.Set(int64(state))
}

// allow reports whether a request may proceed. In the open state it flips to
// half-open once the cooldown has elapsed, admitting the caller as the
// single probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.set(BreakerHalfOpen)
			return true
		}
		return false
	default: // BreakerHalfOpen: the probe is already out
		return false
	}
}

// onSuccess records a non-breaker-class outcome: the host answered, so the
// failure streak resets and a half-open probe closes the circuit.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state != BreakerClosed {
		b.set(BreakerClosed)
	}
}

// onFailure records a breaker-class failure: a failed half-open probe
// reopens immediately; in closed state the streak counts toward the
// threshold.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.openedAt = b.now()
		b.set(BreakerOpen)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.now()
			b.set(BreakerOpen)
		}
	}
}

// current returns the state for tests and BreakerState.
func (b *breaker) current() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
