// Package client is the Go HTTP client for cmd/ukserver: typed workload
// calls (solve, assign, ecost, sweep, unassigned) and registry operations
// over the gateway's JSON API, wrapped in the retry contract the serving
// layer's admission control assumes callers implement.
//
// Every call runs under the caller's context with per-attempt timeouts
// layered beneath it: one slow attempt is abandoned and retried rather than
// consuming the whole deadline. Retries back off exponentially with seeded
// jitter, honor Retry-After on 429/503 responses (cmd/ukserver derives the
// header from live queue depth and latency), and flow through a per-host
// circuit breaker: after a run of transport errors or 5xx responses the
// circuit opens and calls fail fast with ErrCircuitOpen until a cooldown
// probe succeeds, so a dead replica costs nanoseconds instead of timeouts.
// The breaker state is exported on an obs gauge (BreakerGauge) — the future
// replica router is a thin loop over a []*Client, routing around open
// circuits.
//
// Workload requests are deterministic and idempotent on the server, so
// retrying them is always safe; Register retries are safe too (a duplicate
// registration fails 409, which is permanent and not retried).
//
// Failures are typed: errors.Is(err, client.ErrOverloaded) matches a 429
// regardless of which attempt produced it, ErrNotFound a 404, ErrUnavailable
// a 503, ErrRemoteDeadline a 504; errors.As(err, *StatusError) recovers the
// raw status, server message and Retry-After.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/obs"
)

// Typed failure sentinels; match with errors.Is. StatusError carries the
// underlying response detail.
var (
	// ErrCircuitOpen is returned without any network I/O while the host's
	// circuit breaker is open (or a half-open probe is already in flight).
	ErrCircuitOpen = errors.New("client: circuit breaker open")
	// ErrNotFound matches a 404 — the named instance is not registered.
	ErrNotFound = errors.New("client: instance not found")
	// ErrOverloaded matches a 429 — the shard queue was full on every
	// attempt; the server's Retry-After was honored between attempts.
	ErrOverloaded = errors.New("client: server overloaded")
	// ErrUnavailable matches a 503 — the server is draining or closed.
	ErrUnavailable = errors.New("client: server unavailable")
	// ErrRemoteDeadline matches a 504 — the request's deadline expired
	// inside the server. Not retried: the deadline travels with the request,
	// so a retry would expire the same way.
	ErrRemoteDeadline = errors.New("client: deadline exceeded on server")
)

// StatusError is a non-2xx response: the status code, the server's error
// message, the parsed Retry-After (0 when absent), and the request ID the
// failing attempt carried (echoed by the gateway — grep its logs for it).
// Its Is method maps the well-known statuses onto the package sentinels.
type StatusError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
	RequestID  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

func (e *StatusError) Is(target error) bool {
	switch target {
	case ErrNotFound:
		return e.Status == http.StatusNotFound
	case ErrOverloaded:
		return e.Status == http.StatusTooManyRequests
	case ErrUnavailable:
		return e.Status == http.StatusServiceUnavailable
	case ErrRemoteDeadline:
		return e.Status == http.StatusGatewayTimeout
	}
	return false
}

// config is the resolved client configuration.
type config struct {
	httpClient       *http.Client
	attemptTimeout   time.Duration
	maxAttempts      int
	backoffBase      time.Duration
	backoffMax       time.Duration
	seed             int64
	breakerThreshold int
	breakerCooldown  time.Duration
	recorder         *obs.FlightRecorder
}

func defaultConfig() config {
	return config{
		httpClient:       http.DefaultClient,
		attemptTimeout:   10 * time.Second,
		maxAttempts:      4,
		backoffBase:      50 * time.Millisecond,
		backoffMax:       2 * time.Second,
		seed:             1,
		breakerThreshold: 5,
		breakerCooldown:  5 * time.Second,
	}
}

// Option configures a Client.
type Option func(*config)

// WithHTTPClient substitutes the underlying *http.Client (default
// http.DefaultClient). Per-attempt timeouts are applied via context, so the
// replacement needs no Timeout of its own.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *config) {
		if hc != nil {
			c.httpClient = hc
		}
	}
}

// WithAttemptTimeout bounds each individual attempt (default 10s; 0
// disables). The caller's context still bounds the call as a whole — an
// attempt runs under whichever expires first.
func WithAttemptTimeout(d time.Duration) Option {
	return func(c *config) { c.attemptTimeout = d }
}

// WithMaxAttempts caps the attempts per call, first try included (default
// 4; minimum 1).
func WithMaxAttempts(n int) Option {
	return func(c *config) {
		if n >= 1 {
			c.maxAttempts = n
		}
	}
}

// WithBackoff sets the exponential backoff's base and cap (defaults 50ms
// and 2s): retry n waits a jittered duration in [base·2ⁿ/2, base·2ⁿ],
// clamped to max — or longer if the server's Retry-After asks for it.
func WithBackoff(base, max time.Duration) Option {
	return func(c *config) {
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// WithSeed seeds the backoff jitter (default 1): two clients with different
// seeds that fail simultaneously retry at different moments, which is the
// point of jitter; one client with a fixed seed retries reproducibly, which
// is the point of seeding it.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithBreaker tunes the circuit breaker: the circuit opens after threshold
// consecutive breaker-class failures (transport errors, 500/502/503) and
// probes again after cooldown (defaults 5 and 5s). threshold <= 0 keeps the
// default.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *config) {
		if threshold > 0 {
			c.breakerThreshold = threshold
		}
		if cooldown > 0 {
			c.breakerCooldown = cooldown
		}
	}
}

// WithFlightRecorder installs a flight recorder on the client: every call
// becomes a trace participant whose attempts are child spans (attempt
// number and HTTP status as attributes) and whose breaker transitions are
// marker spans, retained under the recorder's tail-sampling policy. When
// client and server share one recorder in-process, client and server spans
// assemble into a single trace. Nil (the default) records nothing; the
// traceparent and X-Request-ID headers are sent regardless.
func WithFlightRecorder(f *obs.FlightRecorder) Option {
	return func(c *config) { c.recorder = f }
}

// Client is a ukserver API client for one base URL. It is goroutine-safe;
// construct once per host and share.
type Client struct {
	base string
	cfg  config
	br   *breaker

	rngMu sync.Mutex
	rng   *rand.Rand

	// Test hooks: the clock the breaker and Retry-After math read, and the
	// interruptible sleep between attempts.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a client for the ukserver at baseURL (e.g.
// "http://localhost:8080"); a trailing slash is tolerated.
func New(baseURL string, opts ...Option) (*Client, error) {
	if baseURL == "" {
		return nil, errors.New("client: empty base URL")
	}
	if baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	c := &Client{
		base:  baseURL,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.seed)),
		now:   time.Now,
		sleep: sleepCtx,
	}
	c.br = newBreaker(cfg.breakerThreshold, cfg.breakerCooldown, func() time.Time { return c.now() })
	return c, nil
}

// BreakerState returns the circuit breaker's current state: BreakerClosed,
// BreakerOpen or BreakerHalfOpen.
func (c *Client) BreakerState() int { return c.br.current() }

// BreakerGauge returns the obs gauge mirroring the breaker state (0 closed,
// 1 open, 2 half-open) for export alongside the caller's other metrics.
func (c *Client) BreakerGauge() *obs.Gauge { return &c.br.gauge }

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff returns the jittered wait before retry n (0-based): uniform in
// [base·2ⁿ/2, base·2ⁿ], clamped to the configured max.
func (c *Client) backoff(n int) time.Duration {
	d := c.cfg.backoffBase << uint(n)
	if d <= 0 || d > c.cfg.backoffMax {
		d = c.cfg.backoffMax
	}
	c.rngMu.Lock()
	u := c.rng.Float64()
	c.rngMu.Unlock()
	return d/2 + time.Duration(u*float64(d/2))
}

// classify sorts one attempt's failure: retryable decides whether another
// attempt may help, breakerFail whether the failure indicts the host
// (transport errors and 500/502/503) rather than the request (4xx, 504) or
// its load class (429 — the host is healthy, just full).
func classify(err error) (retryable, breakerFail bool) {
	var se *StatusError
	if !errors.As(err, &se) {
		// Transport-level: connection refused/reset, per-attempt timeout.
		return true, true
	}
	switch {
	case se.Status == http.StatusTooManyRequests:
		return true, false
	case se.Status == http.StatusServiceUnavailable:
		return true, true
	case se.Status == http.StatusGatewayTimeout:
		return false, false // the deadline travels with the request; a retry expires identically
	case se.Status >= 500:
		return true, true
	default:
		return false, false
	}
}

// do runs one API call through the retry loop: breaker gate, per-attempt
// timeout, classification, jittered backoff honoring Retry-After. On
// success the response body is decoded into out (when non-nil). Every
// attempt carries the call's X-Request-ID and a traceparent naming this
// attempt's span; with a recorder installed, attempts and breaker
// transitions are recorded as spans and the call's trace is finished (and
// tail-sampled) on return.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) (err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	reqID := requestIDFrom(ctx)
	if reqID == "" {
		reqID = newRequestID()
	}
	ct := c.startCallTrace(ctx, "client.call")
	defer func() { ct.at.Finish(err) }()

	var lastErr error
	for attempt := 0; attempt < c.cfg.maxAttempts; attempt++ {
		if attempt > 0 {
			wait := c.backoff(attempt - 1)
			var se *StatusError
			if errors.As(lastErr, &se) && se.RetryAfter > wait {
				wait = se.RetryAfter
			}
			if err := c.sleep(ctx, wait); err != nil {
				return fmt.Errorf("%w (after %d attempts, last: %w)", err, attempt, lastErr)
			}
		}
		prevState := c.br.current()
		allowed := c.br.allow()
		c.breakerSpan(ct, prevState)
		if !allowed {
			if lastErr != nil {
				return fmt.Errorf("%w (last: %w)", ErrCircuitOpen, lastErr)
			}
			return ErrCircuitOpen
		}
		attemptID := obs.NewSpanID()
		start := time.Now()
		err := c.attempt(ctx, method, path, body, out, attemptHeaders{
			requestID:   reqID,
			traceparent: obs.TraceContext{TraceID: ct.tc.TraceID, SpanID: attemptID}.Traceparent(),
		})
		ct.attemptSpan(attemptID, attempt, statusOf(err), start)
		prevState = c.br.current()
		if err == nil {
			c.br.onSuccess()
			c.breakerSpan(ct, prevState)
			return nil
		}
		retryable, breakerFail := classify(err)
		if breakerFail {
			c.br.onFailure()
		} else {
			c.br.onSuccess()
		}
		c.breakerSpan(ct, prevState)
		if !retryable {
			return err
		}
		lastErr = err
		if ctx.Err() != nil {
			return fmt.Errorf("%w (after %d attempts, last: %w)", ctx.Err(), attempt+1, lastErr)
		}
	}
	return fmt.Errorf("client: %d attempts failed: %w", c.cfg.maxAttempts, lastErr)
}

// attemptHeaders is the correlation metadata one attempt sends.
type attemptHeaders struct {
	requestID   string
	traceparent string
}

// attempt performs one HTTP round trip under the per-attempt timeout.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any, hdr attemptHeaders) error {
	actx := ctx
	if c.cfg.attemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.attemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("X-Request-ID", hdr.requestID)
	req.Header.Set("traceparent", hdr.traceparent)
	resp, err := c.cfg.httpClient.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: reading response: %w", err)
	}
	// The gateway echoes the request ID it served under; fall back to the
	// one sent if the peer is an older or non-echoing server.
	echoed := resp.Header.Get("X-Request-ID")
	if echoed == "" {
		echoed = hdr.requestID
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		se := &StatusError{
			Status:     resp.StatusCode,
			Message:    errorMessage(raw),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), c.now()),
			RequestID:  echoed,
		}
		return se
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	if s, ok := out.(requestIDSetter); ok {
		s.setRequestID(echoed)
	}
	return nil
}

// errorMessage extracts the gateway's {"error": "..."} body, falling back
// to the raw bytes.
func errorMessage(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := string(bytes.TrimSpace(raw))
	if len(s) > 200 {
		s = s[:200] + "…"
	}
	return s
}

// parseRetryAfter handles both Retry-After forms: delay-seconds and an HTTP
// date. Unparseable or absent values yield 0.
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// Stats is the per-request telemetry block every workload response carries.
type Stats struct {
	Shard    int     `json:"shard"`
	QueueMS  float64 `json:"queue_ms"`
	ExecMS   float64 `json:"exec_ms"`
	CacheHit bool    `json:"cache_hit"`
}

// workloadRequest mirrors the gateway's wire shape.
type workloadRequest struct {
	Instance   string          `json:"instance"`
	K          int             `json:"k,omitempty"`
	Centers    json.RawMessage `json:"centers,omitempty"`
	Assign     []int           `json:"assign,omitempty"`
	DeadlineMS int64           `json:"deadline_ms,omitempty"`
}

func deadlineMS(d time.Duration) int64 { return int64(d / time.Millisecond) }

// SolveResponse is a full solve: centers (raw — decode with DecodeCenters
// against the instance's kind), the assignment, both E-costs and the
// certain-solver telemetry.
type SolveResponse struct {
	ResponseMeta
	Centers         json.RawMessage `json:"centers"`
	Assign          []int           `json:"assign"`
	Ecost           float64         `json:"ecost"`
	EcostUnassigned float64         `json:"ecost_unassigned"`
	CertainRadius   float64         `json:"certain_radius"`
	EffectiveEps    float64         `json:"effective_eps"`
	Stats           Stats           `json:"stats"`
}

// AssignResponse is an assignment of every point to one of the given centers.
type AssignResponse struct {
	ResponseMeta
	Assign []int `json:"assign"`
	Stats  Stats `json:"stats"`
}

// EcostResponse is one expected-cost evaluation.
type EcostResponse struct {
	ResponseMeta
	Ecost float64 `json:"ecost"`
	Stats Stats   `json:"stats"`
}

// SweepResponse is the full swap-neighborhood E-cost matrix.
type SweepResponse struct {
	ResponseMeta
	Sweep   [][]float64     `json:"sweep"`
	Snapped json.RawMessage `json:"snapped"`
	Stats   Stats           `json:"stats"`
}

// UnassignedResponse is an unassigned-semantics local-search solve.
type UnassignedResponse struct {
	ResponseMeta
	Centers json.RawMessage `json:"centers"`
	Ecost   float64         `json:"ecost"`
	Stats   Stats           `json:"stats"`
}

// DecodeCenters decodes a raw centers column against the instance kind's
// point type: []ukc.Vec for euclidean instances, []int for finite ones.
func DecodeCenters[P any](raw json.RawMessage) ([]P, error) {
	if len(raw) == 0 {
		return nil, errors.New("client: response carries no centers")
	}
	var out []P
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("client: decoding centers: %w", err)
	}
	return out, nil
}

// Solve runs a full solve of instance with k centers. deadline (0 = server
// default) travels with the request and bounds queue wait plus execution on
// the server.
func (c *Client) Solve(ctx context.Context, instance string, k int, deadline time.Duration) (*SolveResponse, error) {
	body, _ := json.Marshal(workloadRequest{Instance: instance, K: k, DeadlineMS: deadlineMS(deadline)})
	var out SolveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/solve", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Assign assigns every point of instance to one of centers (marshaled as the
// instance kind's point JSON: [][2]float64-style rows for euclidean, vertex
// indices for finite).
func (c *Client) Assign(ctx context.Context, instance string, centers any, deadline time.Duration) (*AssignResponse, error) {
	raw, err := json.Marshal(centers)
	if err != nil {
		return nil, fmt.Errorf("client: marshaling centers: %w", err)
	}
	body, _ := json.Marshal(workloadRequest{Instance: instance, Centers: raw, DeadlineMS: deadlineMS(deadline)})
	var out AssignResponse
	if err := c.do(ctx, http.MethodPost, "/v1/assign", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ecost evaluates the expected cost of centers over instance; assign may be
// nil for unassigned semantics.
func (c *Client) Ecost(ctx context.Context, instance string, centers any, assign []int, deadline time.Duration) (*EcostResponse, error) {
	raw, err := json.Marshal(centers)
	if err != nil {
		return nil, fmt.Errorf("client: marshaling centers: %w", err)
	}
	body, _ := json.Marshal(workloadRequest{Instance: instance, Centers: raw, Assign: assign, DeadlineMS: deadlineMS(deadline)})
	var out EcostResponse
	if err := c.do(ctx, http.MethodPost, "/v1/ecost", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sweep computes the swap-neighborhood E-cost matrix around centers.
func (c *Client) Sweep(ctx context.Context, instance string, centers any, deadline time.Duration) (*SweepResponse, error) {
	raw, err := json.Marshal(centers)
	if err != nil {
		return nil, fmt.Errorf("client: marshaling centers: %w", err)
	}
	body, _ := json.Marshal(workloadRequest{Instance: instance, Centers: raw, DeadlineMS: deadlineMS(deadline)})
	var out SweepResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sweep", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Unassigned runs the unassigned-semantics local-search solve.
func (c *Client) Unassigned(ctx context.Context, instance string, k int, deadline time.Duration) (*UnassignedResponse, error) {
	body, _ := json.Marshal(workloadRequest{Instance: instance, K: k, DeadlineMS: deadlineMS(deadline)})
	var out UnassignedResponse
	if err := c.do(ctx, http.MethodPost, "/v1/unassigned", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Instance is one registry listing row.
type Instance struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// List returns the registered instances of both kinds.
func (c *Client) List(ctx context.Context) ([]Instance, error) {
	var out struct {
		Instances []Instance `json:"instances"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/instances", nil, &out); err != nil {
		return nil, err
	}
	return out.Instances, nil
}

// Register uploads a cmd/datagen JSON instance document (internal/dataio
// schema; its "kind" field routes it) under name. A duplicate name fails
// with a 409 StatusError and is not retried.
func (c *Client) Register(ctx context.Context, name string, document []byte) error {
	return c.do(ctx, http.MethodPut, "/v1/instances/"+name, document, nil)
}

// Unregister removes the named instance from the registry.
func (c *Client) Unregister(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/instances/"+name, nil, nil)
}

// Freeze writes the named instance's zero-copy snapshot into the server's
// snapshot directory, returning the path and byte size.
func (c *Client) Freeze(ctx context.Context, name string) (path string, bytes int64, err error) {
	var out struct {
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/instances/"+name+"/freeze", nil, &out); err != nil {
		return "", 0, err
	}
	return out.Path, out.Bytes, nil
}
