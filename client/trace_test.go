package client

// Correlation-contract tests: X-Request-ID on every attempt, echoed IDs in
// StatusError and response metadata, traceparent propagation, and the
// client's flight-recorder spans (attempts, breaker transitions).

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/obs"
)

// headerLog records the correlation headers of every request a test server
// receives.
type headerLog struct {
	mu      sync.Mutex
	reqIDs  []string
	parents []string
}

func (h *headerLog) record(r *http.Request) {
	h.mu.Lock()
	h.reqIDs = append(h.reqIDs, r.Header.Get("X-Request-ID"))
	h.parents = append(h.parents, r.Header.Get("traceparent"))
	h.mu.Unlock()
}

func TestRequestIDSentAndEchoed(t *testing.T) {
	var log headerLog
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		log.record(r)
		w.Header().Set("X-Request-ID", r.Header.Get("X-Request-ID"))
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ecost": 1.5, "stats": {"shard": 0}}`))
	}))
	defer ts.Close()
	c, _, _ := testClient(t, ts.URL)

	resp, err := c.Ecost(context.Background(), "a", []int{0}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.reqIDs) != 1 || len(log.reqIDs[0]) != 16 {
		t.Fatalf("generated request ID not sent: %q", log.reqIDs)
	}
	if resp.RequestID != log.reqIDs[0] {
		t.Fatalf("response RequestID %q, want echoed %q", resp.RequestID, log.reqIDs[0])
	}
	if _, err := obs.ParseTraceparent(log.parents[0]); err != nil {
		t.Fatalf("attempt carried a malformed traceparent %q: %v", log.parents[0], err)
	}
}

func TestRequestIDCallerSuppliedSharedAcrossAttempts(t *testing.T) {
	var log headerLog
	var n int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		log.record(r)
		n++
		if n < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ecost": 1}`))
	}))
	defer ts.Close()
	c, _, _ := testClient(t, ts.URL)

	ctx := WithRequestID(context.Background(), "caller-chosen-id")
	if _, err := c.Ecost(ctx, "a", []int{0}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if len(log.reqIDs) != 3 {
		t.Fatalf("saw %d attempts, want 3", len(log.reqIDs))
	}
	for i, id := range log.reqIDs {
		if id != "caller-chosen-id" {
			t.Fatalf("attempt %d sent request ID %q, want caller's", i, id)
		}
	}
	// Retries share a trace but each attempt is its own span: same trace ID,
	// distinct parent IDs.
	first, err := obs.ParseTraceparent(log.parents[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range log.parents[1:] {
		tc, err := obs.ParseTraceparent(p)
		if err != nil {
			t.Fatal(err)
		}
		if tc.TraceID != first.TraceID {
			t.Fatalf("attempt %d left the call's trace", i+1)
		}
		if tc.SpanID == first.SpanID {
			t.Fatalf("attempt %d reused the first attempt's span ID", i+1)
		}
	}
}

func TestStatusErrorCarriesRequestID(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-ID", r.Header.Get("X-Request-ID"))
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"no such instance"}`))
	}))
	defer ts.Close()
	c, _, _ := testClient(t, ts.URL)

	ctx := WithRequestID(context.Background(), "find-me-in-the-logs")
	_, err := c.Ecost(ctx, "missing", []int{0}, nil, 0)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StatusError", err)
	}
	if se.RequestID != "find-me-in-the-logs" {
		t.Fatalf("StatusError.RequestID = %q", se.RequestID)
	}
}

func TestAmbientTraceContextPropagates(t *testing.T) {
	var log headerLog
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		log.record(r)
		w.Write([]byte(`{"ecost": 1}`))
	}))
	defer ts.Close()
	c, _, _ := testClient(t, ts.URL)

	caller := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	if _, err := c.Ecost(obs.ContextWithTrace(context.Background(), caller), "a", []int{0}, nil, 0); err != nil {
		t.Fatal(err)
	}
	tc, err := obs.ParseTraceparent(log.parents[0])
	if err != nil {
		t.Fatal(err)
	}
	if tc.TraceID != caller.TraceID {
		t.Fatalf("attempt traceparent %s not in the caller's trace %s", tc.TraceID, caller.TraceID)
	}
}

func TestClientRecorderAttemptSpans(t *testing.T) {
	var n int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n++
		if n < 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ecost": 1}`))
	}))
	defer ts.Close()
	fr := obs.NewFlightRecorder(obs.FlightConfig{Reservoir: -1, Threshold: time.Nanosecond})
	c, _, _ := testClient(t, ts.URL, WithFlightRecorder(fr))

	if _, err := c.Ecost(context.Background(), "a", []int{0}, nil, 0); err != nil {
		t.Fatal(err)
	}
	traces := fr.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	tr := traces[0]
	root, ok := tr.Span("client.call")
	if !ok {
		t.Fatalf("no client.call root span: %+v", tr.Spans)
	}
	var attempts []obs.TraceSpan
	for _, sp := range tr.Spans {
		if sp.Name == "client.attempt" {
			if sp.ParentID != root.SpanID {
				t.Fatalf("attempt span misparented: %+v", sp)
			}
			attempts = append(attempts, sp)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("recorded %d attempt spans, want 2", len(attempts))
	}
	wantStatus := []int64{503, 200}
	for i, sp := range attempts {
		var gotAttempt, gotStatus int64 = -1, -1
		for _, a := range sp.Attrs {
			switch a.Key {
			case "attempt":
				gotAttempt = a.Val
			case "status":
				gotStatus = a.Val
			}
		}
		if gotAttempt != int64(i) || gotStatus != wantStatus[i] {
			t.Fatalf("attempt %d attrs: attempt=%d status=%d, want %d/%d", i, gotAttempt, gotStatus, i, wantStatus[i])
		}
	}
}

func TestClientRecorderBreakerSpans(t *testing.T) {
	ts := httptest.NewServer(jsonHandler(http.StatusInternalServerError, `{"error":"boom"}`))
	defer ts.Close()
	fr := obs.NewFlightRecorder(obs.FlightConfig{Reservoir: -1, Threshold: time.Nanosecond})
	c, _, _ := testClient(t, ts.URL, WithFlightRecorder(fr), WithBreaker(2, time.Second), WithMaxAttempts(3))

	_, err := c.Ecost(context.Background(), "a", []int{0}, nil, 0)
	if err == nil {
		t.Fatal("want failure")
	}
	var transition obs.TraceSpan
	found := false
	for _, tr := range fr.Traces() {
		if sp, ok := tr.Span("client.breaker"); ok {
			transition, found = sp, true
		}
	}
	if !found {
		t.Fatal("no client.breaker transition span recorded")
	}
	attrs := map[string]int64{}
	for _, a := range transition.Attrs {
		attrs[a.Key] = a.Val
	}
	if attrs["from"] != BreakerClosed || attrs["to"] != BreakerOpen {
		t.Fatalf("breaker transition attrs %v, want closed→open", attrs)
	}
}
