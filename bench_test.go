package ukc_test

// One benchmark per Table 1 row (the paper's entire evaluation artifact),
// plus the runtime-scaling benches backing the O(z) / O(nz + n log k)
// claims, the exact-vs-Monte-Carlo evaluator comparison (A3), and the
// baseline comparison (C1). EXPERIMENTS.md records representative outputs.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	ukc "repro"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graphmetric"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

func benchEuclidean(b *testing.B, n, z, dim int) []ukc.Point {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	pts, err := gen.GaussianClusters(rng, n, z, dim, 4, 1, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	return pts
}

// BenchmarkTable1Row1 — 1-center, Euclidean, O(z) construction + exact cost.
func BenchmarkTable1Row1(b *testing.B) {
	pts := benchEuclidean(b, 200, 5, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.OneCenterFirstExpectedPoint(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Row2 — restricted assigned, expected distance, Gonzalez
// (factor 6, O(nz + n log k)).
func BenchmarkTable1Row2(b *testing.B) {
	pts := benchEuclidean(b, 500, 5, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ukc.SolveEuclidean(pts, 5, ukc.EuclideanOptions{
			Rule: ukc.RuleED, Solver: ukc.SolverGonzalez,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Row3 — restricted assigned, expected distance, (1+ε)
// (factor 5+ε).
func BenchmarkTable1Row3(b *testing.B) {
	pts := benchEuclidean(b, 60, 4, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ukc.SolveEuclidean(pts, 2, ukc.EuclideanOptions{
			Rule: ukc.RuleED, Solver: ukc.SolverEps, Eps: 0.5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Row4 — restricted assigned, expected point, Gonzalez
// (factor 4).
func BenchmarkTable1Row4(b *testing.B) {
	pts := benchEuclidean(b, 500, 5, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ukc.SolveEuclidean(pts, 5, ukc.EuclideanOptions{
			Rule: ukc.RuleEP, Solver: ukc.SolverGonzalez,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Row5 — restricted assigned, expected point, (1+ε)
// (factor 3+ε).
func BenchmarkTable1Row5(b *testing.B) {
	pts := benchEuclidean(b, 60, 4, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ukc.SolveEuclidean(pts, 2, ukc.EuclideanOptions{
			Rule: ukc.RuleEP, Solver: ukc.SolverEps, Eps: 0.5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Row6 — unassigned/unrestricted objective: multi-start
// single-swap local search over a snapped candidate set (all point
// locations) on the exact evaluator, via SolveUnassignedLS behind
// Solver.SolveUnassigned. The paper defines this version but gives no
// algorithm; sizes are modest because each swap round scans the whole
// candidate neighborhood.
func BenchmarkTable1Row6(b *testing.B) {
	ctx := context.Background()
	pts := benchEuclidean(b, 60, 3, 2)
	inst := ukc.NewEuclideanInstance(pts)
	solver := ukc.NewSolver[ukc.Vec](ukc.WithMaxIter(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := solver.SolveUnassigned(ctx, inst, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Row7 — unrestricted assigned, (1+ε) pipeline (factor 3+ε).
func BenchmarkTable1Row7(b *testing.B) {
	pts := benchEuclidean(b, 60, 4, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ukc.SolveEuclidean(pts, 2, ukc.EuclideanOptions{
			Rule: ukc.RuleEP, Solver: ukc.SolverEps, Eps: 0.5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Row8 — R^1, exact restricted-ED solver (Wang–Zhang
// setting), O(zn log zn · log 1/δ).
func BenchmarkTable1Row8(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts, err := gen.Mixture1D(rng, 500, 5, 4, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ukc.Solve1D(pts, 4, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Row9 — general metric space, 1-center surrogate pipeline
// (factor 5+2ε with OC).
func BenchmarkTable1Row9(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g, _, err := graphmetric.RandomGeometric(100, 0.2, rng)
	if err != nil {
		b.Fatal(err)
	}
	space, err := g.Metric()
	if err != nil {
		b.Fatal(err)
	}
	pts, err := gen.OnVerticesLocal(rng, space, 50, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ukc.SolveMetric(space, pts, space.Points(), 4, ukc.MetricOptions{Rule: ukc.RuleOC}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpectedPointScaling — the O(z) claim for P̄ construction.
func BenchmarkExpectedPointScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for _, z := range []int{4, 16, 64, 256} {
		locs := make([]geom.Vec, z)
		probs := make([]float64, z)
		for j := range locs {
			locs[j] = geom.Vec{rng.NormFloat64(), rng.NormFloat64()}
			probs[j] = 1 / float64(z)
		}
		p, err := uncertain.New(locs, probs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("z=%d", z), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				uncertain.ExpectedPoint(p)
			}
		})
	}
}

// BenchmarkPipelineScalingN — pipeline time vs n (linear expected).
func BenchmarkPipelineScalingN(b *testing.B) {
	for _, n := range []int{500, 1000, 2000, 4000} {
		pts := benchEuclidean(b, n, 4, 2)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ukc.SolveEuclidean(pts, 8, ukc.EuclideanOptions{Rule: ukc.RuleEP}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineScalingZ — pipeline time vs z (linear expected).
func BenchmarkPipelineScalingZ(b *testing.B) {
	for _, z := range []int{2, 4, 8, 16} {
		pts := benchEuclidean(b, 1000, z, 2)
		b.Run(fmt.Sprintf("z=%d", z), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ukc.SolveEuclidean(pts, 8, ukc.EuclideanOptions{Rule: ukc.RuleEP}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineScalingK — pipeline time vs k (Gonzalez is O(nk)).
func BenchmarkPipelineScalingK(b *testing.B) {
	pts := benchEuclidean(b, 1000, 4, 2)
	for _, k := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ukc.SolveEuclidean(pts, k, ukc.EuclideanOptions{Rule: ukc.RuleEP}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEcostEvaluators — A3: exact sweep vs Monte-Carlo estimation.
func BenchmarkEcostEvaluators(b *testing.B) {
	pts := benchEuclidean(b, 200, 5, 2)
	res, err := ukc.SolveEuclidean(pts, 4, ukc.EuclideanOptions{Rule: ukc.RuleEP})
	if err != nil {
		b.Fatal(err)
	}
	space := metricspace.Euclidean{}
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.EcostAssigned[geom.Vec](space, pts, res.Centers, res.Assign); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("montecarlo-10k", func(b *testing.B) {
		rng := rand.New(rand.NewSource(5))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.EcostMonteCarlo[geom.Vec](space, pts, res.Centers, res.Assign, 10000, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEpsSweep — A4: the (1+ε) solver's quality/time knob.
func BenchmarkEpsSweep(b *testing.B) {
	pts := benchEuclidean(b, 40, 3, 2)
	for _, eps := range []float64{1, 0.5, 0.25} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ukc.SolveEuclidean(pts, 2, ukc.EuclideanOptions{
					Rule: ukc.RuleEP, Solver: ukc.SolverEps, Eps: eps,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSurrogateAblation — A1: expected point vs 1-center surrogate
// construction cost (the Weiszfeld iteration is the difference).
func BenchmarkSurrogateAblation(b *testing.B) {
	pts := benchEuclidean(b, 500, 8, 2)
	b.Run("expected-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ukc.SolveEuclidean(pts, 4, ukc.EuclideanOptions{
				Surrogate: ukc.SurrogateExpectedPoint, Rule: ukc.RuleEP,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("one-center", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ukc.SolveEuclidean(pts, 4, ukc.EuclideanOptions{
				Surrogate: ukc.SurrogateOneCenter, Rule: ukc.RuleOC,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCoresetPipeline — the coreset pre-step pays off when the certain
// solver is super-linear: here the (1+ε) grid solver sees 40 coreset points
// instead of 300 surrogates. (With Gonzalez the coreset is pure overhead —
// the solver is already O(nk); see internal/core.EuclideanOptions docs.)
func BenchmarkCoresetPipeline(b *testing.B) {
	pts := benchEuclidean(b, 300, 4, 2)
	opts := ukc.EuclideanOptions{Rule: ukc.RuleEP, Solver: ukc.SolverEps, Eps: 0.5}
	b.Run("direct-eps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ukc.SolveEuclidean(pts, 3, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	withCS := opts
	withCS.CoresetEps = 0.3
	withCS.CoresetMaxSize = 40
	b.Run("coreset-eps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ukc.SolveEuclidean(pts, 3, withCS); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkUncertainKMeans — X1 extension: the exact k-means reduction.
func BenchmarkUncertainKMeans(b *testing.B) {
	pts := benchEuclidean(b, 1000, 4, 2)
	rng := rand.New(rand.NewSource(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := ukc.SolveKMeans(pts, 8, rng, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamPush — one-pass sketch throughput.
func BenchmarkStreamPush(b *testing.B) {
	pts := benchEuclidean(b, 4096, 3, 2)
	sk, err := ukc.NewStreamKCenter(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sk.Push(pts[i%len(pts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEcostParallel — sequential vs worker-pool exact E-cost
// evaluation (the assigned expected-max sweep) across n. The parallel path
// is bit-identical to the sequential one; this records the speedup curve
// for BENCH_*.json.
func BenchmarkEcostParallel(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{500, 2000, 8000} {
		pts := benchEuclidean(b, n, 5, 2)
		inst := ukc.NewEuclideanInstance(pts)
		res, err := ukc.NewSolver[ukc.Vec]().Solve(ctx, inst, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 4, 8} {
			solver := ukc.NewSolver[ukc.Vec](ukc.WithParallelism(workers))
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := solver.Ecost(ctx, inst, res.Centers, res.Assign); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSolveParallel — full unified-pipeline solves across an n/k grid,
// sequential vs worker pool: surrogate construction, assignment and both
// exact cost evaluations all run on the pool.
func BenchmarkSolveParallel(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{1000, 4000} {
		pts := benchEuclidean(b, n, 4, 2)
		inst := ukc.NewEuclideanInstance(pts)
		for _, k := range []int{4, 16} {
			for _, workers := range []int{1, 8} {
				solver := ukc.NewSolver[ukc.Vec](ukc.WithRule(ukc.RuleEP), ukc.WithParallelism(workers))
				b.Run(fmt.Sprintf("n=%d/k=%d/workers=%d", n, k, workers), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := solver.Solve(ctx, inst, k); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkUnassignedParallel — the local-search neighborhood scan is the
// most expensive loop in the repository (one exact O(N log N) evaluation
// per candidate per swap); this measures the worker-pool speedup.
func BenchmarkUnassignedParallel(b *testing.B) {
	ctx := context.Background()
	pts := benchEuclidean(b, 24, 3, 2)
	inst := ukc.NewEuclideanInstance(pts)
	for _, workers := range []int{1, 4, 8} {
		solver := ukc.NewSolver[ukc.Vec](ukc.WithParallelism(workers), ukc.WithMaxIter(3))
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.SolveUnassigned(ctx, inst, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSink keeps the compiler from eliding benchmark evaluations.
var benchSink float64

// BenchmarkSwapIncremental — the tentpole old-vs-new pair: one full
// neighborhood scan (every candidate evaluated as a swap at one position)
// on the exact unassigned objective, from-scratch versus through the
// incremental SwapEvaluator. n=200, m=200, k=8, z=4, single worker, so the
// gap is algorithmic (no parallelism): the scratch path pays O(n·z·k)
// metric calls + an O(nz log nz) event sort per candidate, the incremental
// path a single O(nz) merge of presorted streams. The evaluator build is
// outside the timed loop — it is paid once per solve and amortizes over
// k·m·rounds evaluations. ReportAllocs pins the incremental path's O(1)
// allocations per swap evaluation (the per-position PrepareBase sort is the
// only allocator, amortized over the m-candidate scan).
func BenchmarkSwapIncremental(b *testing.B) {
	ctx := context.Background()
	pts := benchEuclidean(b, 200, 4, 2)
	rng := rand.New(rand.NewSource(9))
	cands := make([]geom.Vec, 200)
	for i := range cands {
		cands[i] = geom.Vec{rng.NormFloat64() * 4, rng.NormFloat64() * 4}
	}
	space := metricspace.Euclidean{}
	k := 8
	chosen := make([]int, k)
	for i := range chosen {
		chosen[i] = i * len(cands) / k
	}
	b.Run("scratch", func(b *testing.B) {
		centers := make([]geom.Vec, k)
		for i, c := range chosen {
			centers[i] = cands[c]
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pos := i % k
			for c := range cands {
				centers[pos] = cands[c]
				cost, err := core.EcostUnassigned[geom.Vec](space, pts, centers)
				if err != nil {
					b.Fatal(err)
				}
				benchSink += cost
			}
			centers[pos] = cands[chosen[pos]]
		}
	})
	b.Run("incremental", func(b *testing.B) {
		ev, err := core.NewSwapEvaluator[geom.Vec](ctx, space, pts, cands, 1)
		if err != nil {
			b.Fatal(err)
		}
		base, scratch := ev.NewBase(), ev.NewScratch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.PrepareBase(base, chosen, i%k)
			for c := range cands {
				benchSink += ev.EvalSwap(base, scratch, c)
			}
		}
	})
}

// BenchmarkRepeatedSolve — the PR-4 tentpole's amortization claim: solving
// one instance repeatedly with varying k. "compiled" reuses one instance
// (the compiled flat model, the memoized 1-center surrogates and the
// distance-RV evaluator are built once, then shared by every solve);
// "fresh" rebuilds a new instance per solve — the old per-call path. The
// second-and-later solves of the compiled instance must be strictly faster.
func BenchmarkRepeatedSolve(b *testing.B) {
	ctx := context.Background()
	pts := benchEuclidean(b, 150, 4, 2)
	ks := []int{2, 4, 8, 6}
	solver := ukc.NewSolver[ukc.Vec](
		ukc.WithSurrogate(ukc.SurrogateOneCenter),
		ukc.WithRule(ukc.RuleOC),
	)
	run := func(b *testing.B, inst func(i int) ukc.Instance[ukc.Vec]) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := solver.Solve(ctx, inst(i), ks[i%len(ks)])
			if err != nil {
				b.Fatal(err)
			}
			benchSink += res.Ecost
		}
	}
	b.Run("compiled", func(b *testing.B) {
		shared := ukc.NewEuclideanInstance(pts)
		if _, err := shared.Compile(ctx); err != nil { // warm: pay compilation once, outside the loop
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, func(int) ukc.Instance[ukc.Vec] { return shared })
	})
	b.Run("fresh", func(b *testing.B) {
		run(b, func(int) ukc.Instance[ukc.Vec] { return ukc.NewEuclideanInstance(pts) })
	})
	// The unassigned objective is where the shared evaluator pays most: one
	// n×m distance-RV build per instance lifetime instead of per solve.
	b.Run("unassigned-compiled", func(b *testing.B) {
		shared := ukc.NewEuclideanInstance(pts)
		if _, err := shared.Compile(ctx); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, cost, err := solver.SolveUnassigned(ctx, shared, 2+i%3)
			if err != nil {
				b.Fatal(err)
			}
			benchSink += cost
		}
	})
	b.Run("unassigned-fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, cost, err := solver.SolveUnassigned(ctx, ukc.NewEuclideanInstance(pts), 2+i%3)
			if err != nil {
				b.Fatal(err)
			}
			benchSink += cost
		}
	})
}

// BenchmarkBatchThroughput — the serving primitive: many instances through
// one shared bounded pool vs a sequential drain of the same work.
func BenchmarkBatchThroughput(b *testing.B) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	insts := make([]ukc.Instance[ukc.Vec], 16)
	for i := range insts {
		pts, err := gen.GaussianClusters(rng, 200, 4, 2, 4, 1, 0.4)
		if err != nil {
			b.Fatal(err)
		}
		insts[i] = ukc.NewEuclideanInstance(pts)
	}
	solver := ukc.NewSolver[ukc.Vec](ukc.WithRule(ukc.RuleEP))
	for _, workers := range []int{1, 4, 8} {
		batch, err := ukc.NewBatch(solver, workers)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range batch.SolveAll(ctx, insts, 4) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkBaselineComparison — C1: paper pipeline vs baselines, same
// instance.
func BenchmarkBaselineComparison(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	pts, err := gen.BimodalAdversarial(rng, 200, 4, 2, 25)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("paper-EP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ukc.SolveEuclidean(pts, 4, ukc.EuclideanOptions{Rule: ukc.RuleEP}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("paper-OC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ukc.SolveEuclidean(pts, 4, ukc.EuclideanOptions{
				Surrogate: ukc.SurrogateOneCenter, Rule: ukc.RuleOC,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline-mode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ukc.SolveBaseline(pts, 4, ukc.BaselineMode, ukc.BaselineOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline-sample8", func(b *testing.B) {
		srng := rand.New(rand.NewSource(7))
		for i := 0; i < b.N; i++ {
			if _, err := ukc.SolveBaseline(pts, 4, ukc.BaselineSample, ukc.BaselineOptions{Rng: srng, Samples: 8}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
