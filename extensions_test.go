package ukc_test

import (
	"math"
	"math/rand"
	"testing"

	ukc "repro"
	"repro/internal/gen"
	"repro/internal/uncertain"
)

func TestFacadeKMedian(t *testing.T) {
	pts := demoPoints(t)
	cands := uncertain.AllLocations(pts)
	centers, assign, cost, err := ukc.SolveKMedian(pts, cands, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 3 || len(assign) != len(pts) {
		t.Fatal("malformed result")
	}
	c2, err := ukc.EMedianCost(pts, centers, assign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-c2) > 1e-9 {
		t.Errorf("reported %g, recomputed %g", cost, c2)
	}
}

func TestFacadeKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := demoPoints(t)
	centers, assign, cost, floor, err := ukc.SolveKMeans(pts, 3, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 3 || len(assign) != len(pts) {
		t.Fatal("malformed result")
	}
	if cost < floor-1e-9 {
		t.Errorf("cost %g below variance floor %g", cost, floor)
	}
	c2, err := ukc.EMeansCost(pts, centers, assign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-c2) > 1e-9*(1+cost) {
		t.Errorf("reported %g, recomputed %g", cost, c2)
	}
	// Variance floor is the sum of point variances.
	var sum float64
	for _, p := range pts {
		sum += ukc.PointVariance(p)
	}
	if math.Abs(sum-floor) > 1e-9*(1+sum) {
		t.Errorf("floor %g, sum of variances %g", floor, sum)
	}
}

func TestFacadeStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts, err := gen.GaussianClusters(rng, 40, 3, 2, 2, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var one ukc.Stream1Center
	for _, p := range pts {
		if err := one.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	if one.N() != 40 || !one.Center().IsFinite() {
		t.Error("stream 1-center malformed")
	}

	sk, err := ukc.NewStreamKCenter(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := sk.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	centers := sk.Centers()
	if len(centers) == 0 || len(centers) > 2 {
		t.Fatalf("stream centers = %d", len(centers))
	}
	// The streaming result is a usable center set: exact cost is finite and
	// within a constant of the batch pipeline.
	streamCost, err := ukc.EcostUnassigned(pts, centers)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ukc.SolveEuclidean(pts, 2, ukc.EuclideanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if batch.EcostUnassigned > 0 && streamCost > 10*batch.EcostUnassigned {
		t.Errorf("stream cost %g vs batch %g", streamCost, batch.EcostUnassigned)
	}
}
