package ukc_test

import (
	"testing"

	ukc "repro"
	"repro/internal/uncertain"
)

func TestFacadeSolveUnassigned(t *testing.T) {
	pts := demoPoints(t)
	cands := append(uncertain.AllLocations(pts), ukc.ExpectedPoint(pts[0]))
	centers, cost, err := ukc.SolveUnassigned(pts, cands, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) == 0 || len(centers) > 3 {
		t.Fatalf("centers = %d", len(centers))
	}
	// Reported cost matches re-evaluation.
	got, err := ukc.EcostUnassigned(pts, centers)
	if err != nil {
		t.Fatal(err)
	}
	if d := got - cost; d > 1e-9 || d < -1e-9 {
		t.Errorf("reported %g, recomputed %g", cost, got)
	}
	// Optimizing the unassigned objective directly never loses to the
	// pipeline's unassigned cost when given its centers' building blocks.
	pipe, err := ukc.SolveEuclidean(pts, 3, ukc.EuclideanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cost > pipe.EcostUnassigned*1.5+1e-9 {
		t.Errorf("local search %g vs pipeline unassigned %g", cost, pipe.EcostUnassigned)
	}
}

func TestFacadeSolveUnassignedMetric(t *testing.T) {
	g := ukc.NewGraph(5)
	for v := 0; v < 4; v++ {
		if err := g.AddEdge(v, v+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	space, err := g.Metric()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := ukc.NewFinitePoint([]int{0, 1}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ukc.NewFinitePoint([]int{3, 4}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	centers, cost, err := ukc.SolveUnassignedMetric(space, []ukc.FinitePoint{p1, p2}, space.Points(), 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 2 {
		t.Fatalf("centers = %v", centers)
	}
	// Two centers on a 5-path with endpoints-pair points: cost ≤ 1.
	if cost > 1+1e-9 {
		t.Errorf("cost = %g, want ≤ 1", cost)
	}
}
