package ukc_test

import (
	"context"
	"testing"

	ukc "repro"
	"repro/internal/uncertain"
)

func TestFacadeSolveUnassigned(t *testing.T) {
	pts := demoPoints(t)
	cands := append(uncertain.AllLocations(pts), ukc.ExpectedPoint(pts[0]))
	centers, cost, err := ukc.SolveUnassigned(pts, cands, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) == 0 || len(centers) > 3 {
		t.Fatalf("centers = %d", len(centers))
	}
	// Reported cost matches re-evaluation.
	got, err := ukc.EcostUnassigned(pts, centers)
	if err != nil {
		t.Fatal(err)
	}
	if d := got - cost; d > 1e-9 || d < -1e-9 {
		t.Errorf("reported %g, recomputed %g", cost, got)
	}
	// Optimizing the unassigned objective directly never loses to the
	// pipeline's unassigned cost when given its centers' building blocks.
	pipe, err := ukc.SolveEuclidean(pts, 3, ukc.EuclideanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cost > pipe.EcostUnassigned*1.5+1e-9 {
		t.Errorf("local search %g vs pipeline unassigned %g", cost, pipe.EcostUnassigned)
	}
}

func TestFacadeSolveUnassignedMetric(t *testing.T) {
	g := ukc.NewGraph(5)
	for v := 0; v < 4; v++ {
		if err := g.AddEdge(v, v+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	space, err := g.Metric()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := ukc.NewFinitePoint([]int{0, 1}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ukc.NewFinitePoint([]int{3, 4}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	centers, cost, err := ukc.SolveUnassignedMetric(space, []ukc.FinitePoint{p1, p2}, space.Points(), 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 2 {
		t.Fatalf("centers = %v", centers)
	}
	// Two centers on a 5-path with endpoints-pair points: cost ≤ 1.
	if cost > 1+1e-9 {
		t.Errorf("cost = %g, want ≤ 1", cost)
	}
}

// TestSolverEcostSweep: the public neighborhood-sweep API snaps centers to
// candidates, its diagonal entries equal the snapped set's exact cost, and
// WithParallelism leaves the matrix bit-identical.
func TestSolverEcostSweep(t *testing.T) {
	ctx := context.Background()
	pts := demoPoints(t)
	inst := ukc.NewEuclideanInstance(pts)
	solver := ukc.NewSolver[ukc.Vec]()
	centers, _, err := solver.SolveUnassigned(ctx, inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	sweep, snapped, err := solver.EcostSweep(ctx, inst, centers)
	if err != nil {
		t.Fatal(err)
	}
	cands := uncertain.AllLocations(pts)
	if len(sweep) != len(centers) || len(snapped) != len(centers) {
		t.Fatalf("sweep %d rows, snapped %d, want %d", len(sweep), len(snapped), len(centers))
	}
	snappedSet := make([]ukc.Vec, len(snapped))
	for i, c := range snapped {
		if c < 0 || c >= len(cands) {
			t.Fatalf("snapped[%d] = %d out of range", i, c)
		}
		snappedSet[i] = cands[c]
	}
	want, err := solver.EcostUnassigned(ctx, inst, snappedSet)
	if err != nil {
		t.Fatal(err)
	}
	for pos := range sweep {
		if len(sweep[pos]) != len(cands) {
			t.Fatalf("row %d has %d entries, want %d", pos, len(sweep[pos]), len(cands))
		}
		diag := sweep[pos][snapped[pos]]
		if d := (diag - want) / (1 + want); d > 1e-12 || d < -1e-12 {
			t.Errorf("row %d diagonal %g, set cost %g", pos, diag, want)
		}
	}
	par, _, err := ukc.NewSolver[ukc.Vec](ukc.WithParallelism(4)).EcostSweep(ctx, inst, centers)
	if err != nil {
		t.Fatal(err)
	}
	for pos := range sweep {
		for c := range sweep[pos] {
			if par[pos][c] != sweep[pos][c] {
				t.Fatalf("parallel sweep[%d][%d] = %g != %g", pos, c, par[pos][c], sweep[pos][c])
			}
		}
	}
}

// TestWithSwapCacheEquivalence: the escape hatch returns the same centers
// and cost as the default cached path through the public Solver.
func TestWithSwapCacheEquivalence(t *testing.T) {
	ctx := context.Background()
	pts := demoPoints(t)
	inst := ukc.NewEuclideanInstance(pts)
	cachedC, cachedCost, err := ukc.NewSolver[ukc.Vec]().SolveUnassigned(ctx, inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	oracleC, oracleCost, err := ukc.NewSolver[ukc.Vec](ukc.WithSwapCache(false)).SolveUnassigned(ctx, inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := (cachedCost - oracleCost) / (1 + oracleCost); d > 1e-12 || d < -1e-12 {
		t.Fatalf("cached cost %g, oracle cost %g", cachedCost, oracleCost)
	}
	if len(cachedC) != len(oracleC) {
		t.Fatalf("%d centers vs %d", len(cachedC), len(oracleC))
	}
	for i := range cachedC {
		for d := range cachedC[i] {
			if cachedC[i][d] != oracleC[i][d] {
				t.Fatalf("center %d differs: %v vs %v", i, cachedC[i], oracleC[i])
			}
		}
	}
}
