package ukc_test

// Tests for the generic Instance/Solver/Batch API: equivalence with the
// deprecated flat functions, bit-identical parallelism, and context
// cancellation semantics.

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	ukc "repro"
	"repro/internal/gen"
	"repro/internal/graphmetric"
)

func euclideanInstance(t testing.TB, seed int64, n, z int) ukc.Instance[ukc.Vec] {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts, err := gen.GaussianClusters(rng, n, z, 2, 4, 1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	return ukc.NewEuclideanInstance(pts)
}

func finiteInstance(t testing.TB, seed int64, vertices, n, z int) ukc.Instance[int] {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, _, err := graphmetric.RandomGeometric(vertices, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	space, err := g.Metric()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := gen.OnVerticesLocal(rng, space, n, z)
	if err != nil {
		t.Fatal(err)
	}
	return ukc.NewFiniteInstance(space, pts, nil)
}

// TestSolverMatchesDeprecatedEuclidean pins the redesign's compatibility
// contract: the flat SolveEuclidean is a wrapper over Solver.Solve, so both
// surfaces must return the same result bit for bit.
func TestSolverMatchesDeprecatedEuclidean(t *testing.T) {
	inst := euclideanInstance(t, 7, 40, 3)
	ctx := context.Background()
	cases := []struct {
		name string
		opts ukc.EuclideanOptions
		sopt []ukc.Option
	}{
		{"default-ep", ukc.EuclideanOptions{Rule: ukc.RuleEP},
			[]ukc.Option{ukc.WithRule(ukc.RuleEP)}},
		{"ed-rule", ukc.EuclideanOptions{Rule: ukc.RuleED},
			[]ukc.Option{ukc.WithRule(ukc.RuleED)}},
		{"oc-surrogate", ukc.EuclideanOptions{Surrogate: ukc.SurrogateOneCenter, Rule: ukc.RuleOC},
			[]ukc.Option{ukc.WithSurrogate(ukc.SurrogateOneCenter), ukc.WithRule(ukc.RuleOC)}},
		{"exact-discrete", ukc.EuclideanOptions{Rule: ukc.RuleEP, Solver: ukc.SolverExactDiscrete},
			[]ukc.Option{ukc.WithRule(ukc.RuleEP), ukc.WithCertainSolver(ukc.SolverExactDiscrete)}},
		{"coreset", ukc.EuclideanOptions{Rule: ukc.RuleEP, CoresetEps: 0.3, CoresetMaxSize: 20},
			[]ukc.Option{ukc.WithRule(ukc.RuleEP), ukc.WithCoreset(0.3, 20)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old, err := ukc.SolveEuclidean(inst.Points, 3, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ukc.NewSolver[ukc.Vec](tc.sopt...).Solve(ctx, inst, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(old, res) {
				t.Fatalf("flat and Solver results differ:\nflat:   %+v\nsolver: %+v", old, res)
			}
		})
	}
}

// TestSolverMatchesDeprecatedMetric is the finite-metric counterpart.
func TestSolverMatchesDeprecatedMetric(t *testing.T) {
	inst := finiteInstance(t, 9, 30, 20, 3)
	space := inst.Space.(*ukc.FiniteSpace)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		opts ukc.MetricOptions
		sopt []ukc.Option
	}{
		{"ed", ukc.MetricOptions{Rule: ukc.RuleED}, []ukc.Option{ukc.WithRule(ukc.RuleED)}},
		{"oc", ukc.MetricOptions{Rule: ukc.RuleOC}, []ukc.Option{ukc.WithRule(ukc.RuleOC)}},
		{"exact", ukc.MetricOptions{Rule: ukc.RuleOC, Solver: ukc.SolverExactDiscrete},
			[]ukc.Option{ukc.WithRule(ukc.RuleOC), ukc.WithCertainSolver(ukc.SolverExactDiscrete)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			old, err := ukc.SolveMetric(space, inst.Points, space.Points(), 3, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ukc.NewSolver[int](tc.sopt...).Solve(ctx, inst, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(old, res) {
				t.Fatalf("flat and Solver results differ:\nflat:   %+v\nsolver: %+v", old, res)
			}
		})
	}
}

// TestParallelismBitIdentical is the WithParallelism contract: for n ∈
// {1, 4, 8} the centers, assignments and costs must be EXACTLY equal —
// not approximately — on fixed-seed instances, across spaces and rules.
func TestParallelismBitIdentical(t *testing.T) {
	ctx := context.Background()
	t.Run("euclidean", func(t *testing.T) {
		inst := euclideanInstance(t, 11, 80, 4)
		for _, k := range []int{2, 5} {
			for _, rule := range []ukc.Rule{ukc.RuleED, ukc.RuleEP, ukc.RuleOC} {
				base, err := ukc.NewSolver[ukc.Vec](ukc.WithRule(rule), ukc.WithParallelism(1)).Solve(ctx, inst, k)
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{4, 8} {
					res, err := ukc.NewSolver[ukc.Vec](ukc.WithRule(rule), ukc.WithParallelism(par)).Solve(ctx, inst, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(base, res) {
						t.Fatalf("k=%d rule=%v parallelism=%d deviates from sequential", k, rule, par)
					}
				}
			}
		}
	})
	t.Run("finite", func(t *testing.T) {
		inst := finiteInstance(t, 13, 40, 25, 3)
		base, err := ukc.NewSolver[int](ukc.WithParallelism(1)).Solve(ctx, inst, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{4, 8} {
			res, err := ukc.NewSolver[int](ukc.WithParallelism(par)).Solve(ctx, inst, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, res) {
				t.Fatalf("parallelism=%d deviates from sequential", par)
			}
		}
	})
	t.Run("unassigned-local-search", func(t *testing.T) {
		inst := euclideanInstance(t, 17, 12, 3)
		var wantC []ukc.Vec
		var wantCost float64
		for i, par := range []int{1, 4, 8} {
			c, cost, err := ukc.NewSolver[ukc.Vec](ukc.WithParallelism(par)).SolveUnassigned(ctx, inst, 2)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				wantC, wantCost = c, cost
				continue
			}
			if cost != wantCost || !reflect.DeepEqual(wantC, c) {
				t.Fatalf("parallelism=%d: got cost %v centers %v, want %v %v", par, cost, c, wantCost, wantC)
			}
		}
	})
	t.Run("kmedian", func(t *testing.T) {
		inst := euclideanInstance(t, 19, 15, 3)
		bc, ba, bcost, err := ukc.NewSolver[ukc.Vec](ukc.WithParallelism(1)).SolveKMedian(ctx, inst, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{4, 8} {
			c, a, cost, err := ukc.NewSolver[ukc.Vec](ukc.WithParallelism(par)).SolveKMedian(ctx, inst, 3)
			if err != nil {
				t.Fatal(err)
			}
			if cost != bcost || !reflect.DeepEqual(bc, c) || !reflect.DeepEqual(ba, a) {
				t.Fatalf("parallelism=%d deviates from sequential", par)
			}
		}
	})
}

// TestContextCancellation: every solve entry point must notice a canceled
// context and surface ctx.Err().
func TestContextCancellation(t *testing.T) {
	inst := euclideanInstance(t, 23, 60, 4)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	solver := ukc.NewSolver[ukc.Vec]()

	if _, err := solver.Solve(canceled, inst, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("Solve: got %v, want context.Canceled", err)
	}
	if _, _, err := solver.SolveUnassigned(canceled, inst, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveUnassigned: got %v, want context.Canceled", err)
	}
	if _, _, _, err := solver.SolveKMedian(canceled, inst, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveKMedian: got %v, want context.Canceled", err)
	}
	if _, _, _, _, err := solver.SolveKMeans(canceled, inst, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveKMeans: got %v, want context.Canceled", err)
	}
	if _, err := solver.Ecost(canceled, inst, []ukc.Vec{{0, 0}}, make([]int, inst.N())); !errors.Is(err, context.Canceled) {
		t.Fatalf("Ecost: got %v, want context.Canceled", err)
	}
	if _, err := solver.EcostUnassigned(canceled, inst, []ukc.Vec{{0, 0}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("EcostUnassigned: got %v, want context.Canceled", err)
	}
}

// TestContextCancellationMidSolve arms a deadline that expires while a
// large local search is grinding through its swap neighborhood; the solve
// must abort with ctx.Err() long before running to completion.
func TestContextCancellationMidSolve(t *testing.T) {
	// 480 candidate locations: with the candidate index pruning by default
	// the whole solve still takes >100ms, so a 20ms deadline reliably lands
	// mid-descent rather than after completion.
	inst := euclideanInstance(t, 29, 120, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := ukc.NewSolver[ukc.Vec]().SolveUnassigned(ctx, inst, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, not mid-solve", elapsed)
	}
}

// TestBatch: the batch layer must reproduce solo solves in order, isolate
// per-item failures, and drain on cancellation.
func TestBatch(t *testing.T) {
	ctx := context.Background()
	solver := ukc.NewSolver[ukc.Vec](ukc.WithRule(ukc.RuleEP))
	batch, err := ukc.NewBatch(solver, 4)
	if err != nil {
		t.Fatal(err)
	}

	insts := make([]ukc.Instance[ukc.Vec], 6)
	for i := range insts {
		insts[i] = euclideanInstance(t, int64(100+i), 20+3*i, 3)
	}
	results := batch.SolveAll(ctx, insts, 3)
	if len(results) != len(insts) {
		t.Fatalf("got %d results for %d instances", len(results), len(insts))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		solo, err := solver.Solve(ctx, insts[i], 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(solo, r.Result) {
			t.Fatalf("item %d: batch result differs from solo solve", i)
		}
	}

	t.Run("error-isolation", func(t *testing.T) {
		items := []ukc.BatchItem[ukc.Vec]{
			{Instance: insts[0], K: 3},
			{Instance: insts[1], K: 0}, // invalid k: must fail alone
			{Instance: insts[2], K: 3},
		}
		res := batch.Solve(ctx, items)
		if res[0].Err != nil || res[2].Err != nil {
			t.Fatalf("healthy items failed: %v, %v", res[0].Err, res[2].Err)
		}
		if res[1].Err == nil {
			t.Fatal("k=0 item did not fail")
		}
	})

	t.Run("canceled", func(t *testing.T) {
		canceled, cancel := context.WithCancel(ctx)
		cancel()
		res := batch.SolveAll(canceled, insts, 3)
		for i, r := range res {
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("item %d: got %v, want context.Canceled", i, r.Err)
			}
		}
	})
}

// TestSolverSpaceDefaults: the zero-option solver must pick the paper's
// recommended pipeline per space — EP/expected-point on Euclidean
// instances, ED/1-center on finite ones — and both must go through the one
// generic pipeline.
func TestSolverSpaceDefaults(t *testing.T) {
	ctx := context.Background()

	eInst := euclideanInstance(t, 31, 30, 3)
	eRes, err := ukc.NewSolver[ukc.Vec]().Solve(ctx, eInst, 3)
	if err != nil {
		t.Fatal(err)
	}
	eWant, err := ukc.SolveEuclidean(eInst.Points, 3, ukc.EuclideanOptions{
		Surrogate: ukc.SurrogateExpectedPoint, Rule: ukc.RuleEP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eWant, eRes) {
		t.Fatal("Euclidean default is not the EP/expected-point pipeline")
	}

	fInst := finiteInstance(t, 37, 25, 15, 3)
	fRes, err := ukc.NewSolver[int]().Solve(ctx, fInst, 3)
	if err != nil {
		t.Fatal(err)
	}
	fSpace := fInst.Space.(*ukc.FiniteSpace)
	fWant, err := ukc.SolveMetric(fSpace, fInst.Points, fSpace.Points(), 3, ukc.MetricOptions{Rule: ukc.RuleED})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fWant, fRes) {
		t.Fatal("finite default is not the ED/1-center pipeline")
	}
}

// TestInstanceConstructors covers the instance helpers and validation.
func TestInstanceConstructors(t *testing.T) {
	inst := euclideanInstance(t, 41, 10, 3)
	if !inst.IsEuclidean() {
		t.Fatal("Euclidean instance not recognized")
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.N() != 10 || inst.MaxZ() != 3 || inst.TotalLocations() != 30 {
		t.Fatalf("N/MaxZ/TotalLocations = %d/%d/%d", inst.N(), inst.MaxZ(), inst.TotalLocations())
	}

	g := ukc.NewGraph(4)
	for i := 0; i < 4; i++ {
		if err := g.AddEdge(i, (i+1)%4, 1); err != nil {
			t.Fatal(err)
		}
	}
	p, err := ukc.NewFinitePoint([]int{0, 2}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	gInst, err := ukc.NewGraphInstance(g, []ukc.FinitePoint{p})
	if err != nil {
		t.Fatal(err)
	}
	if gInst.IsEuclidean() {
		t.Fatal("graph instance claims to be Euclidean")
	}
	if len(gInst.Candidates) != 4 {
		t.Fatalf("graph instance candidates = %d, want all 4 vertices", len(gInst.Candidates))
	}
	if _, err := ukc.NewSolver[int]().Solve(context.Background(), gInst, 2); err != nil {
		t.Fatal(err)
	}

	bad := ukc.Instance[ukc.Vec]{}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty instance validated")
	}
}

// TestSolveKMeansRequiresEuclidean pins the one capability that cannot be
// generic: expected points need linear structure.
func TestSolveKMeansRequiresEuclidean(t *testing.T) {
	inst := finiteInstance(t, 43, 15, 10, 2)
	if _, _, _, _, err := ukc.NewSolver[int]().SolveKMeans(context.Background(), inst, 2); err == nil {
		t.Fatal("SolveKMeans accepted a finite-metric instance")
	}
}

// TestSolveKMeansSeeded: WithSeed must make the k-means++ seeding
// reproducible through the Solver API.
func TestSolveKMeansSeeded(t *testing.T) {
	inst := euclideanInstance(t, 47, 40, 3)
	ctx := context.Background()
	c1, a1, cost1, floor1, err := ukc.NewSolver[ukc.Vec](ukc.WithSeed(5)).SolveKMeans(ctx, inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	c2, a2, cost2, floor2, err := ukc.NewSolver[ukc.Vec](ukc.WithSeed(5)).SolveKMeans(ctx, inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cost1 != cost2 || floor1 != floor2 || !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(a1, a2) {
		t.Fatal("same seed produced different k-means results")
	}
}

// TestExactDiscreteEpsCertificate: restricting centers to a discrete
// candidate set certifies ε = 0 only in a finite space; in continuous
// Euclidean space it is at best a 2-approximation (ε = 1), with or without
// an explicit candidate set.
func TestExactDiscreteEpsCertificate(t *testing.T) {
	ctx := context.Background()
	eInst := euclideanInstance(t, 53, 15, 3)
	withCands := ukc.NewInstance[ukc.Vec](ukc.Euclidean{}, eInst.Points, eInst.Points[0].Locs)
	for name, inst := range map[string]ukc.Instance[ukc.Vec]{"no-candidates": eInst, "explicit-candidates": withCands} {
		res, err := ukc.NewSolver[ukc.Vec](ukc.WithCertainSolver(ukc.SolverExactDiscrete)).Solve(ctx, inst, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.EffectiveEps != 1 {
			t.Fatalf("%s: Euclidean exact-discrete certified eps=%v, want 1", name, res.EffectiveEps)
		}
	}

	fInst := finiteInstance(t, 59, 20, 12, 2)
	res, err := ukc.NewSolver[int](ukc.WithCertainSolver(ukc.SolverExactDiscrete)).Solve(ctx, fInst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveEps != 0 {
		t.Fatalf("finite exact-discrete over all points certified eps=%v, want 0", res.EffectiveEps)
	}
}
