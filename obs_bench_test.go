package ukc_test

// BenchmarkObsOverhead pins the tentpole claim of the observability layer:
// with no tracer installed the instrumented hot paths cost nothing — same
// allocs/op and ≤1% time vs the uninstrumented baseline recorded in
// BENCH_PR5.json — and even a live tracer adds only span-proportional
// work, not per-atom work. Recorded into BENCH_PR6.json by `make
// bench-json`.

import (
	"context"
	"testing"
	"time"

	ukc "repro"
	"repro/obs"
)

// nopTracer is the cheapest possible live tracer: the spans are produced
// (clock reads, attr copies) but go nowhere, isolating the producer-side
// overhead from any consumer cost.
type nopTracer struct{}

func (nopTracer) Span(string, string, time.Time, time.Duration, []obs.Attr) {}

func BenchmarkObsOverhead(b *testing.B) {
	ctx := context.Background()
	pts := benchEuclidean(b, 150, 4, 2)

	solveLoop := func(solver *ukc.Solver[ukc.Vec]) func(b *testing.B) {
		return func(b *testing.B) {
			shared := ukc.NewEuclideanInstance(pts)
			if _, err := shared.Compile(ctx); err != nil {
				b.Fatal(err)
			}
			if _, err := solver.Solve(ctx, shared, 4); err != nil { // warm every memoized cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := solver.Solve(ctx, shared, 4)
				if err != nil {
					b.Fatal(err)
				}
				benchSink += res.Ecost
			}
		}
	}
	unassignedLoop := func(solver *ukc.Solver[ukc.Vec]) func(b *testing.B) {
		return func(b *testing.B) {
			shared := ukc.NewEuclideanInstance(pts)
			if _, _, err := solver.SolveUnassigned(ctx, shared, 3); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, cost, err := solver.SolveUnassigned(ctx, shared, 3)
				if err != nil {
					b.Fatal(err)
				}
				benchSink += cost
			}
		}
	}

	b.Run("solve-off", solveLoop(ukc.NewSolver[ukc.Vec]()))
	b.Run("solve-on", solveLoop(ukc.NewSolver[ukc.Vec](ukc.WithTracer(nopTracer{}))))
	b.Run("unassigned-off", unassignedLoop(ukc.NewSolver[ukc.Vec]()))
	b.Run("unassigned-on", unassignedLoop(ukc.NewSolver[ukc.Vec](ukc.WithTracer(nopTracer{}))))
}
