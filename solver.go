package ukc

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/clusterx"
	"repro/internal/core"
	"repro/obs"
)

// ResultOf is the generic solve result: centers, assignment, exact expected
// costs (assigned and unassigned), the surrogates the pipeline clustered,
// the deterministic radius achieved on them, and the certified ε.
type ResultOf[P any] = core.Result[P]

// Solver runs the paper's surrogate pipelines over instances of one
// location type P, configured once with functional options and reusable
// across instances and goroutines (a Solver is immutable after NewSolver).
//
// One generic pipeline serves both regimes: Euclidean instances are a
// specialization detected from the instance's space, not a separate code
// path. Every entry point takes a context and aborts mid-solve with
// ctx.Err() when it is canceled; WithParallelism(n) fans the hot loops out
// over a worker pool with bit-identical results.
//
// Every method compiles its instance implicitly on first use (see
// Instance.Compile): the validated flat model, both surrogate kinds and the
// distance-RV swap evaluator are built once per instance and shared by all
// later calls — from this solver, another solver, or a Batch pool — so
// repeated solves of one instance pay only the k-dependent stages.
//
//	solver := ukc.NewSolver[ukc.Vec](ukc.WithRule(ukc.RuleEP), ukc.WithParallelism(8))
//	res, err := solver.Solve(ctx, ukc.NewEuclideanInstance(pts), 3)
type Solver[P any] struct {
	cfg solverConfig
}

// NewSolver builds a solver from functional options. The zero-option solver
// is the paper's recommended pipeline for the space it meets: expected-point
// surrogates + Gonzalez + EP assignment in Euclidean space (factor 4,
// O(nz + n log k)), 1-center surrogates + Gonzalez + ED assignment in
// general metric spaces (factor 7+2ε).
func NewSolver[P any](opts ...Option) *Solver[P] {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return &Solver[P]{cfg: cfg}
}

// resolve fills the per-space defaults for options not set explicitly.
func (s *Solver[P]) resolve(eu bool) core.Options {
	opts := s.cfg.opts
	if !s.cfg.surrogateSet {
		if eu {
			opts.Surrogate = SurrogateExpectedPoint
		} else {
			opts.Surrogate = SurrogateOneCenter
		}
	}
	if !s.cfg.ruleSet {
		if eu {
			opts.Rule = RuleEP
		} else {
			opts.Rule = RuleED
		}
	}
	return opts
}

// compile checks the instance shape and returns its compiled representation
// (cached in the instance after the first call).
func (s *Solver[P]) compile(ctx context.Context, inst Instance[P]) (*Compiled[P], error) {
	if inst.Space == nil {
		return nil, fmt.Errorf("ukc: instance with nil space")
	}
	return inst.Compile(ctx)
}

// obsCtx threads the solver's tracer into the request context, merging with
// any tracer the caller's context already carries (the serving layer
// installs one per executed request) so both see every span. With no solver
// tracer the context passes through untouched — the common case stays
// allocation-free.
func (s *Solver[P]) obsCtx(ctx context.Context) context.Context {
	if s.cfg.tracer == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if ambient := obs.FromContext(ctx); ambient != nil {
		return obs.NewContext(ctx, obs.Multi(ambient, s.cfg.tracer))
	}
	return obs.NewContext(ctx, s.cfg.tracer)
}

// Solve runs the uncertain k-center pipeline (Theorems 2.1–2.7) on one
// instance: surrogate construction (memoized per instance), optional
// coreset, deterministic k-center on the surrogates, rule-based assignment,
// and exact expected costs on the compiled flat model.
func (s *Solver[P]) Solve(ctx context.Context, inst Instance[P], k int) (ResultOf[P], error) {
	ctx = s.obsCtx(ctx)
	c, err := s.compile(ctx, inst)
	if err != nil {
		return ResultOf[P]{}, err
	}
	return core.SolveCompiled(ctx, c, k, s.resolve(c.IsEuclidean()))
}

// SolveUnassigned optimizes the paper's unassigned objective
// E[max_i min_j d(X_i, c_j)] directly by multi-start single-swap local
// search over the candidate set on the exact cost evaluator (the paper
// defines this version but gives no algorithm; see
// core.SolveUnassignedLS). Centers are drawn from the instance's candidate
// set, defaulting to all point locations (including zero-probability ones —
// pruning removes probability mass, not center sites). The distance-RV
// cache behind the fast path and the candidate index pruning the scan
// (WithCandidateIndex; safe pruning by default) are memoized in the
// instance, so repeated calls rebuild nothing.
func (s *Solver[P]) SolveUnassigned(ctx context.Context, inst Instance[P], k int) ([]P, float64, error) {
	return s.SolveUnassignedMode(ctx, inst, k, CandIndexDefault)
}

// SolveUnassignedMode is SolveUnassigned with a per-call candidate-index
// mode: CandIndexDefault defers to the solver's WithCandidateIndex option
// (itself defaulting to CandIndexPrune), any other value overrides it for
// this call only. The serving layer's per-request Index field routes here.
func (s *Solver[P]) SolveUnassignedMode(ctx context.Context, inst Instance[P], k int, mode CandidateIndexMode) ([]P, float64, error) {
	ctx = s.obsCtx(ctx)
	c, err := s.compile(ctx, inst)
	if err != nil {
		return nil, 0, err
	}
	if mode == CandIndexDefault {
		mode = s.cfg.candIndex
	}
	return core.SolveUnassignedLSCompiled(ctx, c, k, core.LocalSearchOptions{
		MaxIter:          s.cfg.maxIter,
		Parallelism:      s.cfg.opts.Parallelism,
		DisableSwapCache: s.cfg.noSwapCache,
		CandidateIndex:   mode,
	})
}

// EcostSweep evaluates the full single-swap neighborhood of a center set on
// the exact unassigned objective. Each center is snapped to its nearest
// candidate in the instance's candidate set (defaulting to all point
// locations); the returned matrix has
// sweep[pos][c] = the exact E-cost of the snapped set with position pos
// replaced by candidate c, and sweep[pos][snapped[pos]] is the cost of the
// snapped set itself. The instance's memoized distance-RV cache serves all
// k·m evaluations — one build per instance lifetime, shared with
// SolveUnassigned — unless WithSwapCache(false) selected the from-scratch
// path; the scans run on the solver's worker pool with bit-identical
// results and honor ctx.
func (s *Solver[P]) EcostSweep(ctx context.Context, inst Instance[P], centers []P) (sweep [][]float64, snapped []int, err error) {
	if len(centers) == 0 {
		return nil, nil, fmt.Errorf("ukc: EcostSweep with no centers")
	}
	ctx = s.obsCtx(ctx)
	c, err := s.compile(ctx, inst)
	if err != nil {
		return nil, nil, err
	}
	snapped = c.SnapToCandidates(centers)
	sweep, err = core.EcostSweepCompiled(ctx, c, snapped, core.Options{Parallelism: s.cfg.opts.Parallelism}.Workers(), s.cfg.noSwapCache)
	if err != nil {
		return nil, nil, err
	}
	return sweep, snapped, nil
}

// SolveKMedian solves the uncertain k-median (expected sum of distances)
// with the surrogate reduction: 1-center surrogates, discrete local-search
// k-median over the candidate set (defaulting to all point locations),
// expected-distance assignment. The returned cost is the exact expected
// k-median cost of the assignment.
func (s *Solver[P]) SolveKMedian(ctx context.Context, inst Instance[P], k int) ([]P, []int, float64, error) {
	ctx = s.obsCtx(ctx)
	c, err := s.compile(ctx, inst)
	if err != nil {
		return nil, nil, 0, err
	}
	return clusterx.SolveUncertainKMedianCtx(ctx, c.Space(), c.Points(), c.CandidatesOrLocations(), k, core.Options{Parallelism: s.cfg.opts.Parallelism}.Workers())
}

// SolveKMeans solves the uncertain k-means by the exact reduction (Lloyd on
// the expected points; the uncertain cost equals the certain cost plus the
// irreducible variance floor Σ Var(P_i), which is also returned). It is
// Euclidean-only: expected points do not exist in general metric spaces.
// The k-means++ seeding draws from WithSeed's generator; WithMaxIter bounds
// the Lloyd rounds.
func (s *Solver[P]) SolveKMeans(ctx context.Context, inst Instance[P], k int) (centers []P, assign []int, cost, varianceFloor float64, err error) {
	eu, ok := any(inst.Points).([]Point)
	if !ok || !inst.IsEuclidean() {
		return nil, nil, 0, 0, fmt.Errorf("ukc: SolveKMeans requires a Euclidean instance")
	}
	rng := rand.New(rand.NewSource(s.cfg.seed))
	c, a, cost, floor, err := clusterx.SolveUncertainKMeansCtx(ctx, eu, k, rng, s.cfg.maxIter)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return any(c).([]P), a, cost, floor, nil
}

// Ecost returns the exact assigned expected cost of (centers, assign) on
// the instance, using the solver's worker pool over the compiled flat
// model.
func (s *Solver[P]) Ecost(ctx context.Context, inst Instance[P], centers []P, assign []int) (float64, error) {
	ctx = s.obsCtx(ctx)
	c, err := s.compile(ctx, inst)
	if err != nil {
		return 0, err
	}
	return c.EcostAssigned(ctx, centers, assign, core.Options{Parallelism: s.cfg.opts.Parallelism}.Workers())
}

// EcostUnassigned returns the exact unassigned expected cost of centers on
// the instance, using the solver's worker pool over the compiled flat
// model.
func (s *Solver[P]) EcostUnassigned(ctx context.Context, inst Instance[P], centers []P) (float64, error) {
	ctx = s.obsCtx(ctx)
	c, err := s.compile(ctx, inst)
	if err != nil {
		return 0, err
	}
	return c.EcostUnassigned(ctx, centers, core.Options{Parallelism: s.cfg.opts.Parallelism}.Workers())
}

// Assign computes the solver's assignment rule for an existing center set
// on the instance (the rule defaults per-space exactly as in Solve). The
// EP and OC rules reuse the instance's memoized surrogates.
func (s *Solver[P]) Assign(ctx context.Context, inst Instance[P], centers []P) ([]int, error) {
	ctx = s.obsCtx(ctx)
	c, err := s.compile(ctx, inst)
	if err != nil {
		return nil, err
	}
	opts := s.resolve(c.IsEuclidean())
	return core.AssignCompiled(ctx, c, centers, opts.Rule, c.PipelineCandidates(), opts.Workers())
}
