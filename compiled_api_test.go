package ukc_test

// Tests for the public compiled-instance surface: Instance.Compile caching
// (including concurrent first compile), implicit compilation by every
// Solver method with bit-identical cached vs fresh results, the compiled
// dataset loaders, and the streaming sketches' compiled feed.

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	ukc "repro"
	"repro/internal/gen"
)

// TestInstanceCompileCached pins the cache identity contract: repeated
// Compile calls — on the instance or any copy of it — return one pointer.
func TestInstanceCompileCached(t *testing.T) {
	inst := euclideanInstance(t, 71, 30, 3)
	ctx := context.Background()
	c1, err := inst.Compile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := inst.Compile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("second Compile returned a different compiled model")
	}
	cp := inst // value copy shares the cache cell
	c3, err := cp.Compile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c3 != c1 {
		t.Fatal("a copy of the instance compiled a second model")
	}
	if c1.NumPoints() != inst.N() {
		t.Fatalf("compiled NumPoints = %d, instance N = %d", c1.NumPoints(), inst.N())
	}
}

// TestInstanceConcurrentFirstCompile races many goroutines into the first
// compilation (run under -race by make check): exactly one model must be
// built and every caller must receive it.
func TestInstanceConcurrentFirstCompile(t *testing.T) {
	inst := euclideanInstance(t, 72, 50, 4)
	ctx := context.Background()
	const goroutines = 32
	var wg sync.WaitGroup
	got := make([]*ukc.Compiled[ukc.Vec], goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g], errs[g] = inst.Compile(ctx)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if got[g] != got[0] {
			t.Fatalf("goroutine %d received a different compiled model", g)
		}
	}
}

// TestCompileRejectsInvalidInstance: the compile boundary surfaces the
// validation errors Validate used to.
func TestCompileRejectsInvalidInstance(t *testing.T) {
	bad, err := ukc.NewPoint([]ukc.Vec{{0, 0}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	het := ukc.NewEuclideanInstance([]ukc.Point{
		bad,
		{Locs: []ukc.Vec{{1, 2, 3}}, Probs: []float64{1}},
	})
	if _, err := het.Compile(context.Background()); err == nil {
		t.Error("heterogeneous dimensions compiled")
	}
	if err := het.Validate(); err == nil {
		t.Error("heterogeneous dimensions validated")
	}
	empty := ukc.NewEuclideanInstance(nil)
	if _, err := empty.Compile(context.Background()); err == nil {
		t.Error("empty instance compiled")
	}
}

// TestSolverCachedVsFreshBitIdentical is the public-surface version of the
// tentpole contract, for workers ∈ {1, 4, 8}: a second (and third) solve of
// one instance — warm caches — returns results bit-identical to solving a
// fresh instance over the same points, across Solve, SolveUnassigned,
// EcostSweep, Ecost/EcostUnassigned and Assign.
func TestSolverCachedVsFreshBitIdentical(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(73))
	pts, err := gen.GaussianClusters(rng, 36, 3, 2, 3, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		solver := ukc.NewSolver[ukc.Vec](
			ukc.WithSurrogate(ukc.SurrogateOneCenter),
			ukc.WithRule(ukc.RuleOC),
			ukc.WithParallelism(workers),
		)
		warmInst := ukc.NewEuclideanInstance(pts)
		for _, k := range []int{2, 3, 2} { // revisit k=2 with warm caches
			warm, err := solver.Solve(ctx, warmInst, k)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := solver.Solve(ctx, ukc.NewEuclideanInstance(pts), k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(warm, fresh) {
				t.Fatalf("workers=%d k=%d: warm solve differs from fresh solve", workers, k)
			}

			warmC, warmCost, err := solver.SolveUnassigned(ctx, warmInst, k)
			if err != nil {
				t.Fatal(err)
			}
			freshC, freshCost, err := solver.SolveUnassigned(ctx, ukc.NewEuclideanInstance(pts), k)
			if err != nil {
				t.Fatal(err)
			}
			if warmCost != freshCost || !reflect.DeepEqual(warmC, freshC) {
				t.Fatalf("workers=%d k=%d: warm SolveUnassigned differs from fresh", workers, k)
			}

			warmSweep, warmSnap, err := solver.EcostSweep(ctx, warmInst, warm.Centers)
			if err != nil {
				t.Fatal(err)
			}
			freshSweep, freshSnap, err := solver.EcostSweep(ctx, ukc.NewEuclideanInstance(pts), warm.Centers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(warmSnap, freshSnap) || !reflect.DeepEqual(warmSweep, freshSweep) {
				t.Fatalf("workers=%d k=%d: warm EcostSweep differs from fresh", workers, k)
			}

			warmE, err := solver.Ecost(ctx, warmInst, warm.Centers, warm.Assign)
			if err != nil {
				t.Fatal(err)
			}
			freshE, err := solver.Ecost(ctx, ukc.NewEuclideanInstance(pts), warm.Centers, warm.Assign)
			if err != nil {
				t.Fatal(err)
			}
			if warmE != freshE {
				t.Fatalf("workers=%d k=%d: warm Ecost %g != fresh %g", workers, k, warmE, freshE)
			}

			warmA, err := solver.Assign(ctx, warmInst, warm.Centers)
			if err != nil {
				t.Fatal(err)
			}
			freshA, err := solver.Assign(ctx, ukc.NewEuclideanInstance(pts), warm.Centers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(warmA, freshA) {
				t.Fatalf("workers=%d k=%d: warm Assign differs from fresh", workers, k)
			}
		}
	}
}

// TestSolveWithZeroProbabilityAtoms pins compile-time pruning at the public
// surface: an instance containing p = 0 atoms solves to the same result as
// the manually pruned instance.
func TestSolveWithZeroProbabilityAtoms(t *testing.T) {
	ctx := context.Background()
	withZero := []ukc.Point{
		{Locs: []ukc.Vec{{0, 0}, {50, 50}, {1, 1}}, Probs: []float64{0.6, 0, 0.4}},
		{Locs: []ukc.Vec{{5, 5}}, Probs: []float64{1}},
		{Locs: []ukc.Vec{{-2, 3}, {9, 9}}, Probs: []float64{0.5, 0.5}},
	}
	pruned := []ukc.Point{
		{Locs: []ukc.Vec{{0, 0}, {1, 1}}, Probs: []float64{0.6, 0.4}},
		{Locs: []ukc.Vec{{5, 5}}, Probs: []float64{1}},
		{Locs: []ukc.Vec{{-2, 3}, {9, 9}}, Probs: []float64{0.5, 0.5}},
	}
	solver := ukc.NewSolver[ukc.Vec]()
	a, err := solver.Solve(ctx, ukc.NewEuclideanInstance(withZero), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := solver.Solve(ctx, ukc.NewEuclideanInstance(pruned), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ecost != b.Ecost || a.EcostUnassigned != b.EcostUnassigned {
		t.Fatalf("zero-atom instance costs (%g, %g) != pruned (%g, %g)",
			a.Ecost, a.EcostUnassigned, b.Ecost, b.EcostUnassigned)
	}
	if !reflect.DeepEqual(a.Assign, b.Assign) {
		t.Fatal("zero-atom instance assignment differs from pruned")
	}
}

// TestReadCompiledInstance round-trips a dataset through the compiled
// loader and pins solve equality with the plain loader.
func TestReadCompiledInstance(t *testing.T) {
	ctx := context.Background()
	inst := euclideanInstance(t, 74, 25, 3)
	var buf bytes.Buffer
	if err := ukc.WriteInstance(&buf, inst.Points); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	compiled, err := ukc.ReadCompiledInstance(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// The loader pre-populates the cache: Compile must not rebuild.
	c1, err := compiled.Compile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := compiled.Compile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("compiled loader did not pre-populate the cache")
	}

	pts, err := ukc.ReadInstance(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	solver := ukc.NewSolver[ukc.Vec]()
	a, err := solver.Solve(ctx, compiled, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := solver.Solve(ctx, ukc.NewEuclideanInstance(pts), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("compiled-loader solve differs from plain-loader solve")
	}
}

// TestStreamPushCompiled pins the sketches' compiled feed against the
// per-point Push path.
func TestStreamPushCompiled(t *testing.T) {
	ctx := context.Background()
	inst := euclideanInstance(t, 75, 60, 3)
	c, err := inst.Compile(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var one, oneCompiled ukc.Stream1Center
	if err := one.PushSet(ctx, inst.Points); err != nil {
		t.Fatal(err)
	}
	if err := oneCompiled.PushCompiled(ctx, c); err != nil {
		t.Fatal(err)
	}
	if got, want := oneCompiled.Center(), one.Center(); !reflect.DeepEqual(got, want) {
		t.Fatalf("1-center compiled feed center %v, per-point %v", got, want)
	}

	kc, err := ukc.NewStreamKCenter(3)
	if err != nil {
		t.Fatal(err)
	}
	kcCompiled, err := ukc.NewStreamKCenter(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := kc.PushSet(ctx, inst.Points); err != nil {
		t.Fatal(err)
	}
	if err := kcCompiled.PushCompiled(ctx, c); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kcCompiled.Centers(), kc.Centers()) {
		t.Fatal("k-center compiled feed centers differ from per-point feed")
	}
}
