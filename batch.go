package ukc

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/par"
)

// BatchItem is one unit of batch work: an instance and its k.
type BatchItem[P any] struct {
	Instance Instance[P]
	K        int
}

// BatchResult pairs one item's solve result with its error; exactly one of
// the two is meaningful. Results keep the order of the submitted items.
type BatchResult[P any] struct {
	Result ResultOf[P]
	Err    error
}

// Batch solves many instances concurrently on a shared bounded worker pool —
// the one-shot serving primitive: a request handler or offline job submits
// a slice of instances and gets per-instance results and errors back in
// order, with a hard cap on concurrent solves and cooperative cancellation
// of everything in flight.
//
// The pool bounds INSTANCE-level concurrency; combine with the solver's own
// WithParallelism to split cores between inter- and intra-instance
// parallelism (e.g. 4 batch workers × 2 solve workers on 8 cores).
//
// Compilation is shared across the pool: items holding copies of the same
// Instance (the SolveAll one-instance-many-k pattern, or repeated
// submissions of one instance) alias one compiled model, so validation,
// flattening and the surrogate caches are built once no matter how many
// workers solve it concurrently.
//
// # Batch versus serve.Server
//
// Batch deliberately stays the minimal pool: it drains one known slice of
// work and bounds only concurrency — it has no admission control, no
// per-request deadlines and NO WAY TO BOUND MEMORY: every compiled model
// and cache submitted through it stays live until the caller drops the
// instances. Long-lived processes serving open-ended traffic should use
// the serve package instead, which layers exactly those controls — a named
// registry, hash-sharded worker pools, bounded queues with ErrOverloaded,
// deadline plumbing, and byte-budget LRU eviction of the caches
// (Compiled.CacheBytes/DropCaches) — over the same Solver and compiled
// core, so results are bit-identical between the two pools
// (TestServeBatchEquivalence pins this; DESIGN.md §7 has the migration
// table). A single-shard Server with a large queue is the drop-in
// managed replacement for a Batch:
//
//	batch.SolveAll(ctx, insts, k)            // one-shot, unmanaged
//
//	srv, _ := serve.New(solver)              // long-lived, managed
//	srv.Register(ctx, "inst-i", insts[i])    // once
//	srv.Solve(ctx, serve.SolveRequest{Instance: "inst-i", K: k})
//
// Both run the identical pipeline; Batch remains the right tool for
// "solve these N instances now and exit".
type Batch[P any] struct {
	solver  *Solver[P]
	workers int
}

// NewBatch wraps a solver in a batch layer with the given worker count,
// following the same convention as WithParallelism: 0 or 1 drains items
// serially, n > 1 uses n workers, and a negative n uses one worker per
// logical CPU.
func NewBatch[P any](solver *Solver[P], workers int) (*Batch[P], error) {
	if solver == nil {
		return nil, fmt.Errorf("ukc: NewBatch with nil solver")
	}
	return &Batch[P]{solver: solver, workers: core.Options{Parallelism: workers}.Workers()}, nil
}

// Workers reports the pool size.
func (b *Batch[P]) Workers() int { return b.workers }

// Solve runs Solver.Solve on every item, at most Workers() at a time, and
// returns one BatchResult per item in submission order. Item failures are
// isolated: one bad instance reports its own error without affecting the
// rest. When ctx is canceled, in-flight solves abort mid-solve and every
// unfinished item reports ctx.Err().
func (b *Batch[P]) Solve(ctx context.Context, items []BatchItem[P]) []BatchResult[P] {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult[P], len(items))
	done := make([]bool, len(items))
	// par.For's error is ctx.Err(); per-item errors land in out[i].Err.
	_ = par.For(ctx, len(items), b.workers, func(i int) {
		res, err := b.solver.Solve(ctx, items[i].Instance, items[i].K)
		out[i] = BatchResult[P]{Result: res, Err: err}
		done[i] = true
	})
	if err := ctx.Err(); err != nil {
		for i := range out {
			if !done[i] {
				out[i].Err = err
			}
		}
	}
	return out
}

// SolveAll is Solve for the common serving case of one k across many
// instances (each instance's compiled model is built once and shared by
// whichever worker solves it).
func (b *Batch[P]) SolveAll(ctx context.Context, insts []Instance[P], k int) []BatchResult[P] {
	items := make([]BatchItem[P], len(insts))
	for i, in := range insts {
		items[i] = BatchItem[P]{Instance: in, K: k}
	}
	return b.Solve(ctx, items)
}
