package serve_test

// The fault-tolerance acceptance suite: a seeded fault-injection soak
// (mixed panics/errors/latency at 10% rates each, 3 shards, 32 goroutines)
// during which the process survives every injected panic, every clean
// response stays bit-identical to a direct Solver call, and the request
// counters reconcile exactly. Run under -race via make test-race.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	ukc "repro"
	"repro/internal/faults"
	"repro/serve"
)

// TestServeFaultInjectionSoak is the PR-8 acceptance scenario.
func TestServeFaultInjectionSoak(t *testing.T) {
	const (
		nInst      = 6
		k          = 3
		goroutines = 32
		perG       = 32 // 1024 requests total
	)
	faults.Enable(faults.Plan{Seed: 2024, Rules: map[string]faults.Rule{
		"serve.exec": {Panic: 0.1, Error: 0.1, Latency: 0.1, Delay: 200 * time.Microsecond},
	}})
	defer faults.Disable()

	solver := ukc.NewSolver[ukc.Vec](ukc.WithMaxIter(3))
	insts := testInstances(t, nInst)
	want := directAnswers(t, solver, insts, k)

	srv := newTestServer(t, solver, insts,
		serve.WithShards(3),
		serve.WithWorkersPerShard(2),
		serve.WithQueueDepth(4*goroutines*perG), // deep enough that nothing is rejected
	)

	ctx := context.Background()
	var sawPanics, sawInjected atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(9000 + g)))
			for it := 0; it < perG; it++ {
				i := rng.Intn(nInst)
				name := fmt.Sprintf("inst-%d", i)
				var err error
				var check func() error
				switch it % 3 {
				case 0:
					var resp serve.SolveResponse[ukc.Vec]
					resp, err = srv.Solve(ctx, serve.SolveRequest{Instance: name, K: k})
					check = func() error {
						if resp.Result.Ecost != want[i].solve.Ecost ||
							!sameVecs(resp.Result.Centers, want[i].solve.Centers) ||
							!sameInts(resp.Result.Assign, want[i].solve.Assign) {
							return fmt.Errorf("Solve(%s) diverged from direct call under faults", name)
						}
						return nil
					}
				case 1:
					var resp serve.UnassignedResponse[ukc.Vec]
					resp, err = srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: name, K: k})
					check = func() error {
						if resp.Ecost != want[i].unassCost || !sameVecs(resp.Centers, want[i].unassigned) {
							return fmt.Errorf("SolveUnassigned(%s) diverged from direct call under faults", name)
						}
						return nil
					}
				case 2:
					var resp serve.EcostResponse
					resp, err = srv.Ecost(ctx, serve.EcostRequest[ukc.Vec]{Instance: name, Centers: want[i].solve.Centers, Assign: want[i].assign})
					check = func() error {
						if resp.Ecost != want[i].ecost {
							return fmt.Errorf("Ecost(%s) diverged from direct call under faults", name)
						}
						return nil
					}
				}
				switch {
				case err == nil:
					// A clean response must be bit-identical to the direct
					// Solver call — injected latency and sibling panics must
					// never perturb a surviving request's answer.
					if cerr := check(); cerr != nil {
						errs <- cerr
						return
					}
				case errors.Is(err, serve.ErrPanicked):
					// The typed panic response: the concrete *PanicError
					// carries the injected payload and a stack.
					var pe *serve.PanicError
					if !errors.As(err, &pe) {
						errs <- fmt.Errorf("ErrPanicked response is not a *PanicError: %v", err)
						return
					}
					if _, ok := pe.Value.(faults.Panic); !ok {
						errs <- fmt.Errorf("recovered value %v is not the injected faults.Panic", pe.Value)
						return
					}
					if len(pe.Stack) == 0 {
						errs <- fmt.Errorf("PanicError carries no stack")
						return
					}
					sawPanics.Add(1)
				case errors.Is(err, faults.ErrInjected):
					sawInjected.Add(1)
				default:
					errs <- fmt.Errorf("unexpected error under faults: %v", err)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The seeded 10% rates must actually have fired — a soak that injected
	// nothing proves nothing.
	if sawPanics.Load() == 0 || sawInjected.Load() == 0 {
		t.Fatalf("soak injected panics=%d errors=%d, want both > 0", sawPanics.Load(), sawInjected.Load())
	}

	// Counter reconciliation: every admitted request is accounted to exactly
	// one outcome, and the counters agree with what the callers saw.
	m := srv.Metrics().Totals()
	total := uint64(goroutines * perG)
	if m.Admitted != total || m.Rejected != 0 {
		t.Fatalf("admitted=%d rejected=%d, want %d/0", m.Admitted, m.Rejected, total)
	}
	if sum := m.Completed + m.Failed + m.Expired + m.Canceled + m.Panicked; sum != m.Admitted {
		t.Fatalf("counters do not reconcile: completed=%d + failed=%d + expired=%d + canceled=%d + panicked=%d = %d != admitted=%d",
			m.Completed, m.Failed, m.Expired, m.Canceled, m.Panicked, sum, m.Admitted)
	}
	if m.Panicked != sawPanics.Load() {
		t.Fatalf("Panicked counter = %d, callers saw %d", m.Panicked, sawPanics.Load())
	}
	if m.Failed != sawInjected.Load() {
		t.Fatalf("Failed counter = %d, callers saw %d injected errors", m.Failed, sawInjected.Load())
	}

	// The workers survived every panic: the full pool still serves, and a
	// fault-free request after Disable is clean.
	faults.Disable()
	for i := 0; i < nInst; i++ {
		resp, err := srv.Solve(ctx, serve.SolveRequest{Instance: fmt.Sprintf("inst-%d", i), K: k})
		if err != nil {
			t.Fatalf("post-soak Solve(inst-%d): %v", i, err)
		}
		if resp.Result.Ecost != want[i].solve.Ecost {
			t.Fatalf("post-soak Solve(inst-%d) diverged", i)
		}
	}
}

// TestServePanicIsolation pins the single-panic contract without
// probabilities: a rule that always panics yields ErrPanicked with the
// stack attached, the panicked counter increments, and the very next
// request on the same worker succeeds bit-identically.
func TestServePanicIsolation(t *testing.T) {
	solver := ukc.NewSolver[ukc.Vec](ukc.WithMaxIter(3))
	insts := testInstances(t, 1)
	want := directAnswers(t, solver, insts, 2)
	srv := newTestServer(t, solver, insts, serve.WithWorkersPerShard(1))

	faults.Enable(faults.Plan{Seed: 1, Rules: map[string]faults.Rule{
		"serve.exec": {Panic: 1},
	}})
	_, err := srv.Solve(context.Background(), serve.SolveRequest{Instance: "inst-0", K: 2})
	faults.Disable()
	if !errors.Is(err, serve.ErrPanicked) {
		t.Fatalf("err = %v, want ErrPanicked", err)
	}
	var pe *serve.PanicError
	if !errors.As(err, &pe) || len(pe.Stack) == 0 {
		t.Fatalf("panic response carries no *PanicError with stack: %v", err)
	}
	if got := srv.Metrics().Totals().Panicked; got != 1 {
		t.Fatalf("Panicked = %d, want 1", got)
	}

	resp, err := srv.Solve(context.Background(), serve.SolveRequest{Instance: "inst-0", K: 2})
	if err != nil {
		t.Fatalf("request after panic: %v", err)
	}
	if resp.Result.Ecost != want[0].solve.Ecost || !sameVecs(resp.Result.Centers, want[0].solve.Centers) {
		t.Fatal("post-panic solve diverged from direct call")
	}
}
