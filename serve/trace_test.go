package serve_test

// Trace participation, the in-flight request table, and the panicked-path
// latency split: the serving layer's side of the flight-recorder contract.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	ukc "repro"
	"repro/obs"
	"repro/serve"
)

// retainAll is a recorder configuration under which every completed trace
// is retained as "slow" — deterministic retention for tests.
func retainAll() *obs.FlightRecorder {
	return obs.NewFlightRecorder(obs.FlightConfig{Reservoir: -1, Threshold: time.Nanosecond})
}

// TestServeTracePropagation drives SolveUnassigned through a recorder-backed
// server with an incoming trace context and asserts the retained trace is
// the full tree: the server root parented on the caller's span, the
// queue-wait and exec spans under it, and the solver's local-search spans
// under exec — all sharing the propagated trace ID.
func TestServeTracePropagation(t *testing.T) {
	fr := retainAll()
	solver := ukc.NewSolver[ukc.Vec](ukc.WithMaxIter(3))
	srv := newTestServer(t, solver, testInstances(t, 1), serve.WithFlightRecorder(fr))

	caller := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	ctx := obs.ContextWithTrace(context.Background(), caller)
	if _, err := srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "inst-0", K: 2}); err != nil {
		t.Fatal(err)
	}

	traces := fr.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID != caller.TraceID {
		t.Fatalf("trace ID %s, want propagated %s", tr.TraceID, caller.TraceID)
	}
	root, ok := tr.Span("serve.request")
	if !ok || root.ParentID != caller.SpanID || root.Instance != "inst-0" {
		t.Fatalf("server root not parented on caller span: %+v", root)
	}
	queue, ok := tr.Span("serve.queue")
	if !ok || queue.ParentID != root.SpanID {
		t.Fatalf("queue span missing or misparented: %+v", queue)
	}
	exec, ok := tr.Span("serve.exec")
	if !ok || exec.ParentID != root.SpanID {
		t.Fatalf("exec span missing or misparented: %+v", exec)
	}
	var ls int
	for _, sp := range tr.Spans {
		if strings.HasPrefix(sp.Name, "ls.") {
			if sp.ParentID != exec.SpanID {
				t.Fatalf("solver span %q not parented under exec: %+v", sp.Name, sp)
			}
			ls++
		}
	}
	if ls == 0 {
		t.Fatalf("no ls.* solver spans assembled; got %d spans", len(tr.Spans))
	}
}

// TestServeTraceFastNotRetained pins tail sampling at the serving layer: a
// clean request below the latency threshold leaves nothing behind.
func TestServeTraceFastNotRetained(t *testing.T) {
	fr := obs.NewFlightRecorder(obs.FlightConfig{Reservoir: -1, Threshold: time.Hour})
	solver := ukc.NewSolver[ukc.Vec](ukc.WithMaxIter(3))
	srv := newTestServer(t, solver, testInstances(t, 1), serve.WithFlightRecorder(fr))
	if _, err := srv.SolveUnassigned(context.Background(), serve.UnassignedRequest{Instance: "inst-0", K: 2}); err != nil {
		t.Fatal(err)
	}
	if traces := fr.Traces(); len(traces) != 0 {
		t.Fatalf("fast clean request retained %d traces: %+v", len(traces), traces)
	}
	if st := fr.Stats(); st.Completed != 1 || st.Sampled != 1 {
		t.Fatalf("stats %+v, want 1 completed/1 sampled", st)
	}
}

// panicSpace sleeps, then panics, on every distance call — a workload whose
// execution is both measurably long and fatally broken, for pinning that
// the latency ring and the trace keep the queue/exec split of panicked
// requests.
type panicSpace struct{ delay time.Duration }

func (p panicSpace) Dist(a, b ukc.Vec) float64 {
	time.Sleep(p.delay)
	panic("panicSpace: injected")
}

// TestServePanickedLatencySplit is the regression test for the panicked
// path's latency accounting: a request that panics mid-execution must still
// record both its queue-wait and execution components — in the caller's
// RequestStats, in the shard latency ring, and in the retained trace.
func TestServePanickedLatencySplit(t *testing.T) {
	const delay = 5 * time.Millisecond
	fr := retainAll()
	srv := newTestServer(t, ukc.NewSolver[ukc.Vec](), nil, serve.WithFlightRecorder(fr))
	inst := ukc.NewInstance[ukc.Vec](panicSpace{delay: delay}, []ukc.Point{
		{Locs: []ukc.Vec{{0, 0}}, Probs: []float64{1}},
	}, nil)
	if err := srv.Register(context.Background(), "boom", inst); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Ecost(context.Background(), serve.EcostRequest[ukc.Vec]{
		Instance: "boom", Centers: []ukc.Vec{{1, 1}}, Assign: []int{0},
	})
	if !errors.Is(err, serve.ErrPanicked) {
		t.Fatalf("err = %v, want ErrPanicked", err)
	}
	if resp.Stats.Exec < delay {
		t.Fatalf("panicked request's Exec = %v, want ≥ %v", resp.Stats.Exec, delay)
	}

	m := srv.Metrics().Totals()
	if m.Panicked != 1 {
		t.Fatalf("Panicked = %d, want 1", m.Panicked)
	}
	if m.ExecP50 < delay {
		t.Fatalf("latency ring lost the panicked exec component: ExecP50 = %v, want ≥ %v", m.ExecP50, delay)
	}
	if m.LatencyP50 < delay {
		t.Fatalf("LatencyP50 = %v, want ≥ %v", m.LatencyP50, delay)
	}

	// The panicked trace is retained (reason: error) with both spans.
	traces := fr.Traces()
	if len(traces) != 1 || traces[0].Reason != obs.KeepError || traces[0].Err == "" {
		t.Fatalf("panicked trace not retained as error: %+v", traces)
	}
	if _, ok := traces[0].Span("serve.queue"); !ok {
		t.Fatal("panicked trace lost its queue span")
	}
	exec, ok := traces[0].Span("serve.exec")
	if !ok || exec.Dur < delay {
		t.Fatalf("panicked trace lost its exec span: %+v", exec)
	}
}

// TestServeDisabledRecorderAllocs pins that the disabled flight recorder
// adds zero allocations to the warm request path. The whole warm Ecost
// round trip (task, contexts, channel, AfterFunc stopper, in-flight entry)
// measures 27 allocs/op today; the bound leaves two of headroom for runtime
// noise while staying far below the ~9 allocs the enabled recorder adds —
// if a nil guard on the trace path is ever lost, this fails.
func TestServeDisabledRecorderAllocs(t *testing.T) {
	srv := newTestServer(t, ukc.NewSolver[ukc.Vec](), testInstances(t, 1))
	ctx := context.Background()
	req := serve.EcostRequest[ukc.Vec]{Instance: "inst-0", Centers: []ukc.Vec{{0, 0}, {1, 1}}}
	if _, err := srv.Ecost(ctx, req); err != nil {
		t.Fatal(err) // warm the caches outside the measured window
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := srv.Ecost(ctx, req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 29 {
		t.Fatalf("warm request path with disabled recorder: %v allocs/op, want ≤ 29", allocs)
	}
}

// TestServeInflightTable wedges a worker and snapshots the live request
// table: the executing and queued requests are both visible with truthful
// states, and the table drains to empty with the requests.
func TestServeInflightTable(t *testing.T) {
	ctx := context.Background()
	gate := make(chan struct{})
	gated := ukc.NewInstance[ukc.Vec](gateSpace{gate}, []ukc.Point{
		{Locs: []ukc.Vec{{0, 0}}, Probs: []float64{1}},
	}, nil)
	srv := newTestServer(t, ukc.NewSolver[ukc.Vec](), nil, serve.WithQueueDepth(2), serve.WithWorkersPerShard(1))
	if err := srv.Register(ctx, "gated", gated); err != nil {
		t.Fatal(err)
	}

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; table: %+v", desc, srv.Inflight())
			}
			time.Sleep(time.Millisecond)
		}
	}

	done := make(chan error, 2)
	ecost := func() {
		_, err := srv.Ecost(ctx, serve.EcostRequest[ukc.Vec]{
			Instance: "gated", Centers: []ukc.Vec{{1, 1}}, Assign: []int{0},
		})
		done <- err
	}
	go ecost()
	waitFor("the first request to start executing", func() bool {
		rows := srv.Inflight()
		return len(rows) == 1 && rows[0].State == "executing"
	})
	go ecost()
	waitFor("the second request to queue", func() bool {
		return len(srv.Inflight()) == 2
	})

	rows := srv.Inflight()
	if len(rows) != 2 {
		t.Fatalf("table has %d rows, want 2: %+v", len(rows), rows)
	}
	// Oldest first: the executing request was admitted before the queued one.
	if rows[0].State != "executing" || rows[0].Exec <= 0 {
		t.Fatalf("row 0 not executing: %+v", rows[0])
	}
	if rows[1].State != "queued" || rows[1].Exec != 0 {
		t.Fatalf("row 1 not queued: %+v", rows[1])
	}
	for _, r := range rows {
		if r.Workload != "ecost" || r.Instance != "gated" || r.Elapsed <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	waitFor("the table to drain", func() bool { return len(srv.Inflight()) == 0 })
}

// TestServeInflightOverloadRemoved pins that an admission-rejected request
// never lingers in the table.
func TestServeInflightOverloadRemoved(t *testing.T) {
	ctx := context.Background()
	gate := make(chan struct{})
	defer close(gate)
	gated := ukc.NewInstance[ukc.Vec](gateSpace{gate}, []ukc.Point{
		{Locs: []ukc.Vec{{0, 0}}, Probs: []float64{1}},
	}, nil)
	srv := newTestServer(t, ukc.NewSolver[ukc.Vec](), nil, serve.WithQueueDepth(1), serve.WithWorkersPerShard(1))
	if err := srv.Register(ctx, "gated", gated); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 2)
	ecost := func() {
		_, err := srv.Ecost(ctx, serve.EcostRequest[ukc.Vec]{
			Instance: "gated", Centers: []ukc.Vec{{1, 1}}, Assign: []int{0},
		})
		done <- err
	}
	go ecost()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rows := srv.Inflight()
		if len(rows) == 1 && rows[0].State == "executing" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never wedged: %+v", rows)
		}
		time.Sleep(time.Millisecond)
	}
	go ecost()
	for len(srv.Inflight()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := srv.Ecost(ctx, serve.EcostRequest[ukc.Vec]{Instance: "gated", Centers: []ukc.Vec{{1, 1}}, Assign: []int{0}})
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if rows := srv.Inflight(); len(rows) != 2 {
		t.Fatalf("rejected request lingers in the table: %+v", rows)
	}
}
