package serve_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	ukc "repro"
	"repro/internal/arena"
	"repro/serve"
)

// TestTornWriteQuarantine is the torn-write torture test: a valid snapshot
// truncated at every section boundary (the exact file prefixes a crashed or
// torn write could leave if the tmp+rename discipline were ever bypassed —
// a partial header, a full header with no payload, each prefix of the
// section sequence) must be quarantined at warm start while the healthy
// sibling instance boots and serves normally. Every truncation point comes
// from arena.SectionOffsets, i.e. from the codec's own canonical layout, so
// the test tracks format changes automatically.
func TestTornWriteQuarantine(t *testing.T) {
	src := t.TempDir()
	goodInst := ukc.NewEuclideanInstance(snapEuPoints(t, 20))
	tornInst := ukc.NewEuclideanInstance(snapEuPoints(t, 21))
	goodPath := writeSnapshot(t, src, "good", goodInst)
	tornPath := writeSnapshot(t, src, "torn", tornInst)

	goodBytes, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatalf("ReadFile(good): %v", err)
	}
	tornBytes, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatalf("ReadFile(torn): %v", err)
	}
	bounds, err := arena.SectionOffsets(tornPath)
	if err != nil {
		t.Fatalf("SectionOffsets: %v", err)
	}
	total := bounds[len(bounds)-1]
	if total != int64(len(tornBytes)) {
		t.Fatalf("layout total %d != file size %d", total, len(tornBytes))
	}

	// The cut points: a torn header too, then every section boundary short
	// of the full file size (a trailing run of empty sections shares the
	// total offset, and cutting there is the intact snapshot). Consecutive
	// empty sections share an offset — dedupe so each prefix is tested once.
	cuts := []int64{0, total / 10}
	seen := map[int64]bool{0: true, total / 10: true}
	for _, b := range bounds[:len(bounds)-1] {
		if b < total && !seen[b] {
			seen[b] = true
			cuts = append(cuts, b)
		}
	}

	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "good"+serve.SnapshotExt), goodBytes, 0o644); err != nil {
				t.Fatalf("WriteFile(good): %v", err)
			}
			torn := filepath.Join(dir, "torn"+serve.SnapshotExt)
			if err := os.WriteFile(torn, tornBytes[:cut], 0o644); err != nil {
				t.Fatalf("WriteFile(torn): %v", err)
			}

			s, err := serve.New[ukc.Vec](nil, serve.WithSnapshotDir(dir))
			if err != nil {
				t.Fatalf("New aborted on a torn snapshot (cut at %d): %v", cut, err)
			}
			defer s.Close()
			if got, want := s.Names(), []string{"good"}; !reflect.DeepEqual(got, want) {
				t.Fatalf("registry = %v, want %v", got, want)
			}
			if _, err := s.Solve(context.Background(), serve.SolveRequest{Instance: "good", K: 3}); err != nil {
				t.Fatalf("Solve(good): %v", err)
			}
			if _, err := os.Stat(torn + serve.QuarantineExt); err != nil {
				t.Fatalf("torn snapshot not quarantined: %v", err)
			}
			if n := s.Metrics().SnapshotsQuarantined; n != 1 {
				t.Fatalf("SnapshotsQuarantined = %d, want 1", n)
			}
		})
	}
}
