package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	ukc "repro"
	"repro/store"
)

// SnapshotExt is the filename extension warm-start scans look for.
const SnapshotExt = store.SnapshotExt

// ErrSnapshotKind is wrapped by RegisterSnapshot when the snapshot's
// instance kind does not match the server's point type P — a euclidean
// snapshot offered to a Server[int], or vice versa. Warm-start directory
// scans skip these silently: a gateway running one typed server per kind
// over a shared snapshot directory expects each server to claim only its
// own files.
var ErrSnapshotKind = errors.New("serve: snapshot kind does not match the server's point type")

// RegisterSnapshot opens the snapshot at path zero-copy and registers its
// compiled instance under name: no JSON decode, no validation of
// individual atoms, no recompilation — the instance serves its first
// request straight off the mapped arena, rebuilding only the memoized
// caches lazily (bit-identically to a cold compile). The snapshot's
// mapping stays open for the server process's lifetime; Unregister removes
// the instance from the registry but never unmaps, because in-flight and
// Get-held references alias the mapped bytes.
func (s *Server[P]) RegisterSnapshot(ctx context.Context, name, path string) error {
	if name == "" {
		return fmt.Errorf("serve: empty instance name")
	}
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	if closed {
		return ErrClosed
	}
	snap, err := store.Open(ctx, path)
	if err != nil {
		return fmt.Errorf("serve: opening snapshot for %q: %w", name, err)
	}
	c, ok := snap.Compiled().(*ukc.Compiled[P])
	if !ok {
		kind := snap.Kind()
		snap.Close()
		return fmt.Errorf("%w: %s is a %s snapshot", ErrSnapshotKind, path, kind)
	}
	if err := s.addEntry(name, c, snap); err != nil {
		// Leave other-error snapshots mapped only on success; a duplicate
		// name must not leak a mapping.
		snap.Close()
		return err
	}
	return nil
}

// warmStart re-registers every snapshot in dir (sorted, so the scan order
// — and therefore shard accounting — is deterministic): each "*.ukc" file
// becomes an instance named after its base name. Snapshots of the other
// kind are skipped (see ErrSnapshotKind); any other failure aborts the
// boot — a corrupt snapshot in the warm-start set is a deployment error,
// not something to serve around silently.
func (s *Server[P]) warmStart(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+SnapshotExt))
	if err != nil {
		return fmt.Errorf("serve: scanning snapshot dir: %w", err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), SnapshotExt)
		if err := s.RegisterSnapshot(context.Background(), name, p); err != nil {
			if errors.Is(err, ErrSnapshotKind) {
				continue
			}
			return err
		}
	}
	return nil
}
