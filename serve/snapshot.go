package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	ukc "repro"
	"repro/store"
)

// SnapshotExt is the filename extension warm-start scans look for.
const SnapshotExt = store.SnapshotExt

// QuarantineExt is appended to a corrupt snapshot's filename when it is
// quarantined: "inst.ukc" becomes "inst.ukc.quarantine". Quarantined files
// no longer match warm-start scans, so the corruption is remembered on disk
// for forensics without ever being re-tried at the next boot.
const QuarantineExt = ".quarantine"

// ErrSnapshotKind is wrapped by RegisterSnapshot when the snapshot's
// instance kind does not match the server's point type P — a euclidean
// snapshot offered to a Server[int], or vice versa. Warm-start directory
// scans skip these silently: a gateway running one typed server per kind
// over a shared snapshot directory expects each server to claim only its
// own files.
var ErrSnapshotKind = errors.New("serve: snapshot kind does not match the server's point type")

// quarantineable reports whether a snapshot-open failure indicates file
// corruption — the class of error quarantine exists for. Version and
// endianness mismatches are deliberately excluded: those files are intact,
// just written by a different build or host, and renaming them would destroy
// data a compatible process could still read. They abort the boot instead —
// a deployment error, not bit-rot.
func quarantineable(err error) bool {
	return errors.Is(err, store.ErrMagic) ||
		errors.Is(err, store.ErrTruncated) ||
		errors.Is(err, store.ErrChecksum) ||
		errors.Is(err, store.ErrLayout) ||
		errors.Is(err, store.ErrCorrupt)
}

// quarantine renames a corrupt snapshot aside, logs the typed cause, and
// counts it. A rename failure is logged but not fatal: the file simply stays
// in place and will fail (and be re-quarantined) at the next scan.
func (s *Server[P]) quarantine(path string, cause error) {
	qpath := path + QuarantineExt
	renameErr := os.Rename(path, qpath)
	s.quarantined.Add(1)
	if renameErr != nil {
		s.cfg.logger.Error("serve: snapshot corrupt, quarantine rename failed",
			"path", path, "cause", cause, "rename_error", renameErr)
		return
	}
	s.cfg.logger.Warn("serve: snapshot quarantined",
		"path", path, "quarantine", qpath, "cause", cause)
}

// RegisterSnapshot opens the snapshot at path zero-copy and registers its
// compiled instance under name: no JSON decode, no validation of
// individual atoms, no recompilation — the instance serves its first
// request straight off the mapped arena, rebuilding only the memoized
// caches lazily (bit-identically to a cold compile). The snapshot's
// mapping stays open for the server process's lifetime; Unregister removes
// the instance from the registry but never unmaps, because in-flight and
// Get-held references alias the mapped bytes.
//
// A snapshot that fails open with a corruption-class error (ErrMagic,
// ErrTruncated, ErrChecksum, ErrLayout, ErrCorrupt) is quarantined — renamed
// to path+".quarantine", logged with the typed cause, and counted in
// Metrics().SnapshotsQuarantined — before the error is returned.
func (s *Server[P]) RegisterSnapshot(ctx context.Context, name, path string) error {
	if name == "" {
		return fmt.Errorf("serve: empty instance name")
	}
	if err := s.admissible(); err != nil {
		return err
	}
	snap, err := store.Open(ctx, path)
	if err != nil {
		if quarantineable(err) {
			s.quarantine(path, err)
		}
		return fmt.Errorf("serve: opening snapshot for %q: %w", name, err)
	}
	c, ok := snap.Compiled().(*ukc.Compiled[P])
	if !ok {
		kind := snap.Kind()
		snap.Close()
		return fmt.Errorf("%w: %s is a %s snapshot", ErrSnapshotKind, path, kind)
	}
	if err := s.addEntry(name, c, snap); err != nil {
		// Leave other-error snapshots mapped only on success; a duplicate
		// name must not leak a mapping.
		snap.Close()
		return err
	}
	return nil
}

// warmStart re-registers every snapshot in dir (sorted, so the scan order
// — and therefore shard accounting — is deterministic): each "*.ukc" file
// becomes an instance named after its base name. Before the scan, stale
// "*.ukc.tmp" write temporaries (left by a crash mid-store.Write) are swept.
// Snapshots of the other kind are skipped (see ErrSnapshotKind); corrupt
// snapshots are quarantined and skipped — the healthy remainder still
// serves, which is the whole point of a warm start surviving one bad file.
// Version/endianness mismatches and I/O errors still abort the boot: those
// indicate a deployment problem quarantine would only paper over.
func (s *Server[P]) warmStart(dir string) error {
	s.sweepTemp(dir)
	paths, err := filepath.Glob(filepath.Join(dir, "*"+SnapshotExt))
	if err != nil {
		return fmt.Errorf("serve: scanning snapshot dir: %w", err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), SnapshotExt)
		if err := s.RegisterSnapshot(context.Background(), name, p); err != nil {
			if errors.Is(err, ErrSnapshotKind) || quarantineable(err) {
				continue
			}
			return err
		}
	}
	return nil
}

// sweepTemp removes stale "*.ukc.tmp" files from dir — the write
// temporaries an interrupted store.Write leaves behind (the rename never
// happened, so they are dead bytes that would otherwise accumulate forever).
// Runs once, before the warm-start scan, under New; counted in
// Metrics().TempFilesSwept and logged per file.
func (s *Server[P]) sweepTemp(dir string) {
	tmps, err := filepath.Glob(filepath.Join(dir, "*"+SnapshotExt+".tmp"))
	if err != nil {
		return
	}
	sort.Strings(tmps)
	for _, p := range tmps {
		if err := os.Remove(p); err != nil {
			s.cfg.logger.Error("serve: stale snapshot temp file, remove failed", "path", p, "error", err)
			continue
		}
		s.tmpSwept.Add(1)
		s.cfg.logger.Info("serve: swept stale snapshot temp file", "path", p)
	}
}

// freezeAll writes every registered instance to the snapshot directory —
// the WithFreezeOnShutdown tail of a clean drain. Instances whose name is
// not a clean filename (path separators or traversal) and instances whose
// point type has no snapshot encoding are skipped with a log line; any
// write failure is collected and the rest still freeze (errors.Join).
// Each write is atomic (tmp+rename), so a crash mid-freeze leaves only
// sweepable temporaries, never a torn snapshot.
func (s *Server[P]) freezeAll() error {
	var errs []error
	for _, sh := range s.shards {
		sh.mu.Lock()
		ents := make([]*entry[P], 0, len(sh.entries))
		for _, ent := range sh.entries {
			ents = append(ents, ent)
		}
		sh.mu.Unlock()
		sort.Slice(ents, func(a, b int) bool { return ents[a].name < ents[b].name })
		for _, ent := range ents {
			if filepath.Base(ent.name) != ent.name || ent.name == "." || ent.name == ".." {
				s.cfg.logger.Warn("serve: freeze skipped, instance name is not a clean filename", "name", ent.name)
				continue
			}
			path := filepath.Join(s.cfg.snapshotDir, ent.name+SnapshotExt)
			if _, err := store.Write(context.Background(), path, ent.c); err != nil {
				if errors.Is(err, store.ErrUnsupported) {
					s.cfg.logger.Warn("serve: freeze skipped, kind has no snapshot encoding", "name", ent.name)
					continue
				}
				errs = append(errs, fmt.Errorf("freezing %q: %w", ent.name, err))
				continue
			}
			s.cfg.logger.Info("serve: instance frozen on shutdown", "name", ent.name, "path", path)
		}
	}
	return errors.Join(errs...)
}
