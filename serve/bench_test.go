package serve_test

// Serving-layer benchmarks, recorded into BENCH_PR5.json by `make
// bench-serve`: request throughput through the sharded admission/deadline/
// eviction machinery with the warm-cache hit rate reported per run, and the
// per-request overhead the serving layer adds over a direct Solver call.

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	ukc "repro"
	"repro/internal/gen"
	"repro/serve"
)

func benchServer(b *testing.B, nInst int, budget int64) (*serve.Server[ukc.Vec], []string) {
	b.Helper()
	solver := ukc.NewSolver[ukc.Vec]()
	srv, err := serve.New(solver,
		serve.WithShards(4),
		serve.WithWorkersPerShard(2),
		serve.WithQueueDepth(1<<16),
		serve.WithCacheBudget(budget),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(21))
	names := make([]string, nInst)
	for i := range names {
		pts, err := gen.GaussianClusters(rng, 150, 4, 2, 4, 1, 0.4)
		if err != nil {
			b.Fatal(err)
		}
		names[i] = fmt.Sprintf("bench-%d", i)
		if err := srv.Register(ctx, names[i], ukc.NewEuclideanInstance(pts)); err != nil {
			b.Fatal(err)
		}
	}
	return srv, names
}

// BenchmarkServeThroughput — the serving tentpole's headline number:
// concurrent mixed-k Solve requests round-robined across 8 registered
// instances on a 4-shard × 2-worker server. The "warm" case (no budget)
// runs at a near-1 hit rate — every request reuses the memoized surrogate
// caches; the "evict" case (1-byte budget) drops every instance's caches
// after each completed request, so every request rebuilds — the worst-case
// cold regime the eviction policy degrades to. hit-rate and evictions/op
// come from the server's own metrics.
func BenchmarkServeThroughput(b *testing.B) {
	for _, mode := range []struct {
		name   string
		budget int64
	}{
		{"warm", 0},
		{"evict", 1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			srv, names := benchServer(b, 8, mode.budget)
			ctx := context.Background()
			ks := []int{2, 4, 8}
			// Warm every instance once so "warm" measures steady state.
			for _, n := range names {
				if _, err := srv.Solve(ctx, serve.SolveRequest{Instance: n, K: 4}); err != nil {
					b.Fatal(err)
				}
			}
			before := srv.Metrics().Totals()
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1))
					req := serve.SolveRequest{Instance: names[i%len(names)], K: ks[i%len(ks)]}
					if _, err := srv.Solve(ctx, req); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			after := srv.Metrics().Totals()
			hits := after.CacheHits - before.CacheHits
			misses := after.CacheMisses - before.CacheMisses
			if hits+misses > 0 {
				b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
			}
			if b.N > 0 {
				b.ReportMetric(float64(after.Evictions-before.Evictions)/float64(b.N), "evictions/op")
			}
		})
	}
}

// BenchmarkServeOverhead — what admission, deadline layering, queueing and
// metrics cost per request: the same warm-instance Solve issued directly on
// the solver versus through the server, single caller.
func BenchmarkServeOverhead(b *testing.B) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(22))
	pts, err := gen.GaussianClusters(rng, 150, 4, 2, 4, 1, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	inst := ukc.NewEuclideanInstance(pts)
	solver := ukc.NewSolver[ukc.Vec]()

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := solver.Solve(ctx, inst, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("served", func(b *testing.B) {
		srv, err := serve.New(solver)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		if err := srv.Register(ctx, "one", inst); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := srv.Solve(ctx, serve.SolveRequest{Instance: "one", K: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeUnassignedWarm — the heaviest cacheable workload through
// the server: unassigned local search, where the warm path reuses the
// memoized 12·m·N distance-RV evaluator across every request.
func BenchmarkServeUnassignedWarm(b *testing.B) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(23))
	pts, err := gen.GaussianClusters(rng, 24, 3, 2, 3, 1, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	solver := ukc.NewSolver[ukc.Vec](ukc.WithMaxIter(2))
	srv, err := serve.New(solver)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Register(ctx, "one", ukc.NewEuclideanInstance(pts)); err != nil {
		b.Fatal(err)
	}
	if _, err := srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "one", K: 3}); err != nil {
		b.Fatal(err)
	}
	before := srv.Metrics().Totals()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "one", K: 2 + i%3}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := srv.Metrics().Totals()
	hits := after.CacheHits - before.CacheHits
	misses := after.CacheMisses - before.CacheMisses
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
	}
}
