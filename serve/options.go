package serve

import (
	"fmt"
	"log/slog"
	"time"

	"repro/internal/par"
	"repro/obs"
)

// config is the resolved server configuration. Defaults: one shard, one
// worker per shard, a 64-request queue per shard, no cache budget
// (eviction off), no default deadline, indefinite drain, no freeze on
// shutdown, and the process-default slog logger.
type config struct {
	shards           int
	workers          int
	queueDepth       int
	budget           int64
	deadline         time.Duration
	snapshotDir      string
	drainTimeout     time.Duration
	freezeOnShutdown bool
	logger           *slog.Logger
	recorder         *obs.FlightRecorder
}

func defaultConfig() config {
	return config{shards: 1, workers: 1, queueDepth: 64, logger: slog.Default()}
}

func (c config) validate() error {
	if c.shards < 1 {
		return fmt.Errorf("serve: %d shards", c.shards)
	}
	if c.queueDepth < 1 {
		return fmt.Errorf("serve: queue depth %d", c.queueDepth)
	}
	return nil
}

// Option configures a Server; pass them to New.
type Option func(*config)

// WithShards sets the number of independent shards the registry is
// hash-partitioned into (default 1). Each shard owns its own worker pool,
// request queue, byte budget and metrics, and shards never contend with
// each other: an overloaded or cache-thrashing shard cannot stall the rest.
func WithShards(s int) Option {
	return func(c *config) { c.shards = s }
}

// WithWorkersPerShard sets each shard's worker-pool size, following the
// WithParallelism convention: 0 or 1 means one worker, n > 1 means n
// workers, negative n means one worker per logical CPU. Combine with the
// solver's own WithParallelism to split cores between concurrent requests
// and intra-request parallelism.
func WithWorkersPerShard(n int) Option {
	return func(c *config) {
		switch {
		case n == 0:
			c.workers = 1
		case n < 0:
			c.workers = par.Workers(0)
		default:
			c.workers = n
		}
	}
}

// WithQueueDepth bounds each shard's request queue (default 64). A request
// arriving at a full queue is rejected immediately with ErrOverloaded —
// admission control fails fast instead of building unbounded backlog.
func WithQueueDepth(d int) Option {
	return func(c *config) { c.queueDepth = d }
}

// WithCacheBudget bounds the bytes of memoized derived state (surrogates +
// distance-RV swap evaluators, metered by Compiled.CacheBytes — DESIGN.md
// §4a) each shard may hold across its registered instances; 0 (the
// default) disables eviction. When a completed request pushes a shard over
// budget, the least-recently-used instances' caches are dropped
// (Compiled.DropCaches) until the shard fits: the compiled arena always
// survives, so an evicted instance recomputes its caches lazily on its
// next request instead of failing.
func WithCacheBudget(bytes int64) Option {
	return func(c *config) { c.budget = bytes }
}

// WithSnapshotDir warm-starts the server from a snapshot directory: every
// "*.ukc" file in dir is opened zero-copy at New and registered under its
// base name, so previously frozen instances serve their first request
// without recompiling anything (the restart path behind cmd/ukserver's
// -snapshot-dir). Snapshots of the other instance kind are skipped — a
// gateway runs one typed server per kind over a shared directory. A corrupt
// snapshot (bad checksum, truncation, torn layout) is quarantined — renamed
// to "*.quarantine", logged, counted — and the healthy remainder still
// serves; version/endianness mismatches and I/O errors abort New, since
// those are deployment errors, not bit-rot. Stale "*.ukc.tmp" write
// temporaries are swept before the scan. Empty (the default) disables the
// scan.
func WithSnapshotDir(dir string) Option {
	return func(c *config) { c.snapshotDir = dir }
}

// WithDrainTimeout bounds how long Close waits for in-flight work during
// shutdown (0, the default, waits indefinitely — the historical Close
// contract). When the timeout expires the remaining in-flight requests are
// canceled and Close returns once the workers observe it. Shutdown(ctx)
// callers control the bound through their context instead and ignore this
// setting.
func WithDrainTimeout(d time.Duration) Option {
	return func(c *config) { c.drainTimeout = d }
}

// WithFreezeOnShutdown makes a clean drain (Shutdown/Close that was not
// aborted by its deadline) freeze every registered instance to the snapshot
// directory before the server reports closed, so the next process warm-starts
// exactly the serving set this one held. Requires WithSnapshotDir; without
// one the flag is a no-op. Freezing an instance that already has an
// up-to-date snapshot rewrites it (atomically, via tmp+rename).
func WithFreezeOnShutdown(on bool) Option {
	return func(c *config) { c.freezeOnShutdown = on }
}

// WithLogger sets the structured logger for the server's operational events:
// snapshot quarantines, stale-temporary sweeps, drain aborts. The default is
// slog.Default(). A nil logger restores the default rather than disabling
// logging — these events indicate data loss or corruption and are never
// silent.
func WithLogger(l *slog.Logger) Option {
	return func(c *config) {
		if l != nil {
			c.logger = l
		}
	}
}

// WithFlightRecorder installs a flight recorder: every request becomes a
// trace participant whose queue-wait and execution are spans, the incoming
// trace context (threaded by obs.ContextWithTrace — cmd/ukserver parses the
// caller's traceparent into it) joins server spans to the caller's trace,
// and the solver's own spans assemble under the execution span via the
// request context's tracer. Retention is the recorder's tail-sampling
// policy. Nil (the default) disables recording; the disabled path adds zero
// allocations to the request path — the same contract as the nil tracer.
func WithFlightRecorder(f *obs.FlightRecorder) Option {
	return func(c *config) { c.recorder = f }
}

// WithDefaultDeadline sets the per-request deadline applied when a request
// carries none of its own (0, the default, applies none). The deadline
// layers onto the caller's context — it covers queue wait plus execution,
// and a request that expires while still queued is failed with
// context.DeadlineExceeded without ever occupying a worker.
func WithDefaultDeadline(d time.Duration) Option {
	return func(c *config) { c.deadline = d }
}
