package serve

import (
	"testing"
	"time"
)

// TestLatencyRingEmpty pins the no-traffic snapshot: every quantile is zero
// before the first request completes.
func TestLatencyRingEmpty(t *testing.T) {
	var r latencyRing
	q := r.quantiles()
	if q != (latencyQuantiles{}) {
		t.Fatalf("empty ring quantiles = %+v, want all zero", q)
	}
}

// TestLatencyRingSplit checks that queue and execution quantiles are
// computed over their own samples while the end-to-end view is the
// pairwise sum — an anti-correlated load (slow-queue/fast-exec mixed with
// fast-queue/slow-exec) has constant totals but wide component spreads.
func TestLatencyRingSplit(t *testing.T) {
	var r latencyRing
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			r.record(10*time.Millisecond, 90*time.Millisecond)
		} else {
			r.record(90*time.Millisecond, 10*time.Millisecond)
		}
	}
	q := r.quantiles()
	if q.TotalP50 != 100*time.Millisecond || q.TotalP99 != 100*time.Millisecond {
		t.Errorf("total quantiles = %v/%v, want 100ms/100ms", q.TotalP50, q.TotalP99)
	}
	if q.QueueP99 != 90*time.Millisecond || q.ExecP99 != 90*time.Millisecond {
		t.Errorf("component p99 = %v/%v, want 90ms/90ms", q.QueueP99, q.ExecP99)
	}
	if q.QueueP50 != 10*time.Millisecond {
		// 50 samples at 10ms, 50 at 90ms: rank (n-1)*50/100 = 49 lands in
		// the 10ms half.
		t.Errorf("QueueP50 = %v, want 10ms", q.QueueP50)
	}
}

// TestLatencyRingWrap records past the window size and checks old samples
// fall out: after latWindow+500 records, quantiles reflect only the most
// recent latWindow.
func TestLatencyRingWrap(t *testing.T) {
	var r latencyRing
	// 500 poison samples that must be fully overwritten...
	for i := 0; i < 500; i++ {
		r.record(time.Hour, time.Hour)
	}
	// ...by latWindow uniform ones.
	for i := 0; i < latWindow; i++ {
		r.record(time.Millisecond, 2*time.Millisecond)
	}
	q := r.quantiles()
	if q.QueueP99 != time.Millisecond || q.ExecP99 != 2*time.Millisecond || q.TotalP99 != 3*time.Millisecond {
		t.Fatalf("post-wrap p99 = %v/%v/%v, want 1ms/2ms/3ms (old samples leaked)", q.QueueP99, q.ExecP99, q.TotalP99)
	}
	if got := r.n; got != 500+latWindow {
		t.Fatalf("recorded count = %d, want %d", got, 500+latWindow)
	}
}
