package serve_test

// The candidate index under the serving layer: per-request mode selection,
// bit-identical pruned trajectories across forced cache eviction (every
// completed request on a 1-byte budget drops the index, so each solve
// rebuilds it), and the prune counters' path from ls.prune spans through
// Metrics into Collect.

import (
	"context"
	"fmt"
	"testing"

	ukc "repro"
	"repro/serve"
)

func TestServeCandidateIndexUnderEviction(t *testing.T) {
	solver := ukc.NewSolver[ukc.Vec](ukc.WithMaxIter(50))
	insts := testInstances(t, 2)
	const k = 3
	ctx := context.Background()

	// Direct reference on the oracle path, before any serving traffic.
	type ref struct {
		centers []ukc.Vec
		cost    float64
	}
	want := make([]ref, len(insts))
	for i, inst := range insts {
		centers, cost, err := solver.SolveUnassignedMode(ctx, inst, k, ukc.CandIndexOff)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ref{centers, cost}
	}

	// 1-byte budget: no cache survives a request, so every pruned solve
	// rebuilds evaluator and index from scratch — the post-eviction rebuild
	// must land on the same trajectory every time.
	srv := newTestServer(t, solver, insts, serve.WithCacheBudget(1))
	for round := 0; round < 3; round++ {
		for i := range insts {
			name := fmt.Sprintf("inst-%d", i)
			for _, mode := range []ukc.CandidateIndexMode{ukc.CandIndexDefault, ukc.CandIndexPrune, ukc.CandIndexOff} {
				resp, err := srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: name, K: k, Index: mode})
				if err != nil {
					t.Fatal(err)
				}
				if resp.Ecost != want[i].cost || !sameVecs(resp.Centers, want[i].centers) {
					t.Fatalf("round %d %s mode %v: diverged from oracle (cost %g vs %g)",
						round, name, mode, resp.Ecost, want[i].cost)
				}
			}
		}
	}

	// The pruned requests above must have fed the shard counters...
	m := srv.Metrics()
	tot := m.Totals()
	if tot.PruneScanned == 0 || tot.PrunePruned == 0 {
		t.Fatalf("prune counters empty after pruned traffic: scanned=%d pruned=%d",
			tot.PruneScanned, tot.PrunePruned)
	}
	if r := tot.PruneRate(); r <= 0 || r > 1 {
		t.Fatalf("PruneRate = %v, want in (0, 1]", r)
	}

	// ...and Collect must expose them under ukc_serve_prune_total.
	var scanned, pruned float64
	srv.Collect(func(name string, labels map[string]string, value float64) {
		if name != "ukc_serve_prune_total" {
			return
		}
		switch labels["event"] {
		case "scanned":
			scanned += value
		case "pruned":
			pruned += value
		}
	})
	if scanned != float64(tot.PruneScanned) || pruned != float64(tot.PrunePruned) {
		t.Fatalf("Collect prune_total (%v, %v) != Metrics totals (%d, %d)",
			scanned, pruned, tot.PruneScanned, tot.PrunePruned)
	}
}
