package serve

// inflight.go is the live in-flight request table: every admitted request is
// visible — instance, workload, shard, queued-or-executing, elapsed — from
// admission until its worker finishes or it is abandoned in the queue. The
// table answers "what is this server doing right now", the question metrics
// counters (already-finished work) and retained traces (already-decided
// work) cannot: a wedged request shows up here long before it shows up
// anywhere else.
//
// The table is snapshotted without stopping the world: the map lock is held
// only to copy entry pointers, and the queued→executing transition is a
// single atomic the worker flips without taking any lock, so a snapshot
// racing an execution start sees one of two truthful states.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/obs"
)

// inflightReq is one live request's table entry. The immutable fields are
// written once at admission; execStart is the only mutable field (0 while
// queued, the execution start in unix nanoseconds once a worker picks the
// request up).
type inflightReq struct {
	id        uint64
	workload  string
	instance  string
	shard     int
	trace     obs.TraceID
	enq       time.Time
	execStart atomic.Int64
}

// inflightTable indexes the live requests by admission ID.
type inflightTable struct {
	mu   sync.Mutex
	reqs map[uint64]*inflightReq
	next uint64
}

func newInflightTable() *inflightTable {
	return &inflightTable{reqs: make(map[uint64]*inflightReq)}
}

// add registers a request at admission and returns its entry.
func (t *inflightTable) add(workload, instance string, shard int, trace obs.TraceID, enq time.Time) *inflightReq {
	t.mu.Lock()
	t.next++
	r := &inflightReq{id: t.next, workload: workload, instance: instance, shard: shard, trace: trace, enq: enq}
	t.reqs[r.id] = r
	t.mu.Unlock()
	return r
}

// remove drops a finished (or admission-rejected) request. Nil-safe.
func (t *inflightTable) remove(r *inflightReq) {
	if r == nil {
		return
	}
	t.mu.Lock()
	delete(t.reqs, r.id)
	t.mu.Unlock()
}

// markExec flips the entry to executing. Nil-safe.
func (r *inflightReq) markExec() {
	if r != nil {
		r.execStart.Store(time.Now().UnixNano())
	}
}

// InflightRequest is one row of the live request table (Server.Inflight).
type InflightRequest struct {
	ID       uint64        `json:"id"`       // admission sequence number, unique per server
	Workload string        `json:"workload"` // solve | assign | ecost | sweep | solve_unassigned
	Instance string        `json:"instance"`
	Shard    int           `json:"shard"`
	TraceID  string        `json:"trace_id,omitempty"` // empty when the flight recorder is off
	State    string        `json:"state"`              // "queued" or "executing"
	Elapsed  time.Duration `json:"elapsed_ns"`         // since admission
	Exec     time.Duration `json:"exec_ns"`            // since execution start; 0 while queued
}

// Inflight snapshots the live request table, oldest admission first. The
// snapshot never blocks admission or execution beyond the pointer copy, and
// a request racing its queued→executing transition appears in whichever
// state the atomic read lands on.
func (s *Server[P]) Inflight() []InflightRequest {
	now := time.Now()
	s.inflight.mu.Lock()
	live := make([]*inflightReq, 0, len(s.inflight.reqs))
	for _, r := range s.inflight.reqs {
		live = append(live, r)
	}
	s.inflight.mu.Unlock()

	out := make([]InflightRequest, 0, len(live))
	for _, r := range live {
		row := InflightRequest{
			ID:       r.id,
			Workload: r.workload,
			Instance: r.instance,
			Shard:    r.shard,
			State:    "queued",
			Elapsed:  now.Sub(r.enq),
		}
		if !r.trace.IsZero() {
			row.TraceID = r.trace.String()
		}
		if es := r.execStart.Load(); es != 0 {
			row.State = "executing"
			row.Exec = now.Sub(time.Unix(0, es))
		}
		out = append(out, row)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
