package serve_test

// The serving-layer contract: requests through a sharded server under
// concurrent load — including forced cache eviction — return results
// bit-identical to direct Solver calls; admission control rejects over-queue
// requests with ErrOverloaded; per-request deadlines surface
// context.DeadlineExceeded without poisoning shard state; and the registry
// is race-clean under mixed Register/solve/evict traffic (run with -race via
// make test-race).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	ukc "repro"
	"repro/internal/gen"
	"repro/serve"
)

// testInstances builds n distinct small Euclidean instances.
func testInstances(t testing.TB, n int) []ukc.Instance[ukc.Vec] {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	out := make([]ukc.Instance[ukc.Vec], n)
	for i := range out {
		pts, err := gen.GaussianClusters(rng, 20+i, 3, 2, 3, 1, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ukc.NewEuclideanInstance(pts)
	}
	return out
}

func newTestServer(t testing.TB, solver *ukc.Solver[ukc.Vec], insts []ukc.Instance[ukc.Vec], opts ...serve.Option) *serve.Server[ukc.Vec] {
	t.Helper()
	srv, err := serve.New(solver, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ctx := context.Background()
	for i, inst := range insts {
		if err := srv.Register(ctx, fmt.Sprintf("inst-%d", i), inst); err != nil {
			t.Fatal(err)
		}
	}
	return srv
}

// directExpected computes the reference answers for every instance and
// workload by calling the solver directly, before any serving traffic.
type expected struct {
	solve      ukc.Result
	unassigned []ukc.Vec
	unassCost  float64
	assign     []int
	ecost      float64
	sweep      [][]float64
}

func directAnswers(t testing.TB, solver *ukc.Solver[ukc.Vec], insts []ukc.Instance[ukc.Vec], k int) []expected {
	t.Helper()
	ctx := context.Background()
	out := make([]expected, len(insts))
	for i, inst := range insts {
		res, err := solver.Solve(ctx, inst, k)
		if err != nil {
			t.Fatal(err)
		}
		centers, cost, err := solver.SolveUnassigned(ctx, inst, k)
		if err != nil {
			t.Fatal(err)
		}
		assign, err := solver.Assign(ctx, inst, res.Centers)
		if err != nil {
			t.Fatal(err)
		}
		ecost, err := solver.Ecost(ctx, inst, res.Centers, assign)
		if err != nil {
			t.Fatal(err)
		}
		sweep, _, err := solver.EcostSweep(ctx, inst, res.Centers)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = expected{solve: res, unassigned: centers, unassCost: cost, assign: assign, ecost: ecost, sweep: sweep}
	}
	return out
}

func sameVecs(a, b []ukc.Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				return false
			}
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServeBitIdenticalUnderLoadAndEviction is the acceptance scenario: a
// 3-shard server under 32 concurrent goroutines issuing mixed workloads,
// with a cache budget small enough that eviction fires continuously; every
// response must be bit-identical to the direct Solver call.
func TestServeBitIdenticalUnderLoadAndEviction(t *testing.T) {
	const (
		nInst      = 6
		k          = 3
		goroutines = 32
		perG       = 12
	)
	solver := ukc.NewSolver[ukc.Vec](ukc.WithMaxIter(3))
	insts := testInstances(t, nInst)
	want := directAnswers(t, solver, insts, k)

	// A one-byte budget can never hold any cache: every completed request
	// evicts, so warm-cache reuse and post-eviction rebuilds interleave
	// aggressively across the whole run.
	srv := newTestServer(t, solver, insts,
		serve.WithShards(3),
		serve.WithWorkersPerShard(2),
		serve.WithQueueDepth(4*goroutines*perG),
		serve.WithCacheBudget(1),
	)

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for it := 0; it < perG; it++ {
				i := rng.Intn(nInst)
				name := fmt.Sprintf("inst-%d", i)
				switch it % 5 {
				case 0:
					resp, err := srv.Solve(ctx, serve.SolveRequest{Instance: name, K: k})
					if err != nil {
						errs <- err
						return
					}
					if resp.Result.Ecost != want[i].solve.Ecost ||
						resp.Result.EcostUnassigned != want[i].solve.EcostUnassigned ||
						!sameVecs(resp.Result.Centers, want[i].solve.Centers) ||
						!sameInts(resp.Result.Assign, want[i].solve.Assign) {
						errs <- fmt.Errorf("Solve(%s) diverged from direct call", name)
						return
					}
				case 1:
					resp, err := srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: name, K: k})
					if err != nil {
						errs <- err
						return
					}
					if resp.Ecost != want[i].unassCost || !sameVecs(resp.Centers, want[i].unassigned) {
						errs <- fmt.Errorf("SolveUnassigned(%s) diverged from direct call", name)
						return
					}
				case 2:
					resp, err := srv.Assign(ctx, serve.AssignRequest[ukc.Vec]{Instance: name, Centers: want[i].solve.Centers})
					if err != nil {
						errs <- err
						return
					}
					if !sameInts(resp.Assign, want[i].assign) {
						errs <- fmt.Errorf("Assign(%s) diverged from direct call", name)
						return
					}
				case 3:
					resp, err := srv.Ecost(ctx, serve.EcostRequest[ukc.Vec]{Instance: name, Centers: want[i].solve.Centers, Assign: want[i].assign})
					if err != nil {
						errs <- err
						return
					}
					if resp.Ecost != want[i].ecost {
						errs <- fmt.Errorf("Ecost(%s) = %v, want %v", name, resp.Ecost, want[i].ecost)
						return
					}
				case 4:
					resp, err := srv.EcostSweep(ctx, serve.EcostSweepRequest[ukc.Vec]{Instance: name, Centers: want[i].solve.Centers})
					if err != nil {
						errs <- err
						return
					}
					for pos := range want[i].sweep {
						if !sameFloats(resp.Sweep[pos], want[i].sweep[pos]) {
							errs <- fmt.Errorf("EcostSweep(%s) diverged at position %d", name, pos)
							return
						}
					}
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	m := srv.Metrics().Totals()
	if m.Completed != goroutines*perG {
		t.Fatalf("completed = %d, want %d", m.Completed, goroutines*perG)
	}
	if m.Evictions == 0 {
		t.Fatal("1-byte budget produced no evictions")
	}
	if m.CacheMisses == 0 {
		t.Fatal("no cache misses recorded despite continuous eviction")
	}
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServeEvictionThenSolveEqualsNeverEvicted pins the eviction contract
// directly: warm an instance, watch the budget evict its caches to zero
// bytes, and require the post-eviction solve to equal the never-evicted
// reference from an identical undisturbed server.
func TestServeEvictionThenSolveEqualsNeverEvicted(t *testing.T) {
	ctx := context.Background()
	solver := ukc.NewSolver[ukc.Vec](ukc.WithMaxIter(3))
	insts := testInstances(t, 1)

	ref := newTestServer(t, solver, testInstances(t, 1)) // no budget: never evicts
	refResp, err := ref.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "inst-0", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	refAgain, err := ref.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "inst-0", K: 2})
	if err != nil {
		t.Fatal(err)
	}

	srv := newTestServer(t, solver, insts, serve.WithCacheBudget(1))
	first, err := srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "inst-0", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The request built the evaluator, then the budget evicted it.
	if got := srv.Metrics().Totals(); got.Evictions == 0 || got.CacheBytes != 0 {
		t.Fatalf("after first request: evictions=%d cacheBytes=%d, want eviction to zero", got.Evictions, got.CacheBytes)
	}
	c, ok := srv.Get("inst-0")
	if !ok {
		t.Fatal("instance vanished")
	}
	if got := c.CacheBytes(); got != 0 {
		t.Fatalf("compiled CacheBytes = %d after eviction, want 0", got)
	}

	second, err := srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "inst-0", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if first.Ecost != refResp.Ecost || !sameVecs(first.Centers, refResp.Centers) {
		t.Fatal("pre-eviction solve differs from never-evicted reference")
	}
	if second.Ecost != refAgain.Ecost || !sameVecs(second.Centers, refAgain.Centers) {
		t.Fatal("post-eviction solve differs from never-evicted reference")
	}
	if second.Stats.CacheHit {
		t.Fatal("post-eviction request reported a warm-cache hit")
	}
}

// gateSpace is a metric over Vec whose every distance call blocks until the
// gate is released — the deterministic way to wedge a shard worker
// mid-request for the admission tests.
type gateSpace struct{ gate chan struct{} }

func (g gateSpace) Dist(a, b ukc.Vec) float64 { <-g.gate; return ukc.Euclidean{}.Dist(a, b) }

// TestServeAdmissionOverload pins admission control: with the single worker
// deterministically wedged mid-request and one more request queued, a third
// must be rejected immediately with ErrOverloaded.
func TestServeAdmissionOverload(t *testing.T) {
	ctx := context.Background()
	solver := ukc.NewSolver[ukc.Vec]()
	gate := make(chan struct{})
	gated := ukc.NewInstance[ukc.Vec](gateSpace{gate}, []ukc.Point{
		{Locs: []ukc.Vec{{0, 0}}, Probs: []float64{1}},
	}, nil)
	srv := newTestServer(t, solver, nil, serve.WithQueueDepth(1), serve.WithWorkersPerShard(1))
	if err := srv.Register(ctx, "gated", gated); err != nil {
		t.Fatal(err)
	}

	waitFor := func(desc string, cond func(serve.ShardMetrics) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond(srv.Metrics().Totals()) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: %+v", desc, srv.Metrics().Totals())
			}
			time.Sleep(time.Millisecond)
		}
	}

	ecost := func(errCh chan<- error) {
		_, err := srv.Ecost(ctx, serve.EcostRequest[ukc.Vec]{
			Instance: "gated", Centers: []ukc.Vec{{1, 1}}, Assign: []int{0},
		})
		errCh <- err
	}

	// Wedge the worker: the first request blocks inside its metric call.
	wedged := make(chan error, 1)
	go ecost(wedged)
	waitFor("the worker to dequeue the wedge request", func(m serve.ShardMetrics) bool {
		return m.Admitted == 1 && m.QueueDepth == 0
	})

	// Fill the depth-1 queue behind it.
	queued := make(chan error, 1)
	go ecost(queued)
	waitFor("the second request to occupy the queue", func(m serve.ShardMetrics) bool {
		return m.QueueDepth == 1
	})

	// Worker busy + queue full: the next request must bounce, synchronously.
	_, err := srv.Ecost(ctx, serve.EcostRequest[ukc.Vec]{Instance: "gated", Centers: []ukc.Vec{{1, 1}}, Assign: []int{0}})
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := srv.Metrics().Totals().Rejected; got != 1 {
		t.Fatalf("Rejected counter = %d, want 1", got)
	}

	// Release the gate: the wedged and queued requests complete, and the
	// shard serves new traffic — load shedding never poisons it.
	close(gate)
	if err := <-wedged; err != nil {
		t.Fatalf("wedged request: %v", err)
	}
	if err := <-queued; err != nil {
		t.Fatalf("queued request: %v", err)
	}
	if _, err := srv.Ecost(ctx, serve.EcostRequest[ukc.Vec]{Instance: "gated", Centers: []ukc.Vec{{1, 1}}, Assign: []int{0}}); err != nil {
		t.Fatalf("request after overload: %v", err)
	}
}

// TestServeDeadlines pins the deadline contract: an already-expired or
// impossibly tight deadline surfaces context.DeadlineExceeded (whether the
// request dies in the queue or mid-execution), and the shard keeps serving
// correct answers afterwards.
func TestServeDeadlines(t *testing.T) {
	ctx := context.Background()
	solver := ukc.NewSolver[ukc.Vec](ukc.WithMaxIter(3))
	insts := testInstances(t, 1)
	want := directAnswers(t, solver, insts, 2)
	srv := newTestServer(t, solver, insts, serve.WithWorkersPerShard(1))

	// A nanosecond deadline expires before any worker can pick the task up.
	_, err := srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "inst-0", K: 2, Deadline: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1ns deadline: err = %v, want context.DeadlineExceeded", err)
	}

	// A caller-context deadline layers the same way.
	cctx, cancel := context.WithTimeout(ctx, time.Nanosecond)
	_, err = srv.Solve(cctx, serve.SolveRequest{Instance: "inst-0", K: 2})
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired caller ctx: err = %v, want context.DeadlineExceeded", err)
	}

	// Shard state is not poisoned: the same workload with a sane deadline
	// returns the reference answer.
	resp, err := srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "inst-0", K: 2, Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ecost != want[0].unassCost || !sameVecs(resp.Centers, want[0].unassigned) {
		t.Fatal("post-deadline-failure solve diverged from direct call")
	}
	m := srv.Metrics().Totals()
	if m.Expired == 0 && m.Failed == 0 {
		t.Fatalf("deadline failures recorded nowhere: %+v", m)
	}
}

// TestServeDefaultDeadline pins WithDefaultDeadline: requests carrying no
// deadline inherit the server's.
func TestServeDefaultDeadline(t *testing.T) {
	solver := ukc.NewSolver[ukc.Vec]()
	insts := testInstances(t, 1)
	srv := newTestServer(t, solver, insts, serve.WithDefaultDeadline(time.Nanosecond))
	_, err := srv.Solve(context.Background(), serve.SolveRequest{Instance: "inst-0", K: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded from the server default", err)
	}
}

// TestServeRegistry pins the registry API: Register/Get/Names/Unregister,
// duplicate and invalid registrations, and ErrNotFound for requests naming
// unknown instances.
func TestServeRegistry(t *testing.T) {
	ctx := context.Background()
	srv, err := serve.New[ukc.Vec](nil, serve.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	insts := testInstances(t, 3)
	for i, inst := range insts {
		if err := srv.Register(ctx, fmt.Sprintf("inst-%d", i), inst); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Names(); !sameStrings(got, []string{"inst-0", "inst-1", "inst-2"}) {
		t.Fatalf("Names = %v", got)
	}
	if _, ok := srv.Get("inst-1"); !ok {
		t.Fatal("Get(inst-1) missing")
	}
	if _, ok := srv.Get("nope"); ok {
		t.Fatal("Get(nope) found something")
	}

	if err := srv.Register(ctx, "inst-0", insts[0]); err == nil {
		t.Fatal("duplicate Register accepted")
	}
	if err := srv.Register(ctx, "", insts[0]); err == nil {
		t.Fatal("empty name accepted")
	}
	bad := ukc.Instance[ukc.Vec]{Space: ukc.Euclidean{}, Points: []ukc.Point{{Locs: []ukc.Vec{{0, 0}}, Probs: []float64{0.3}}}}
	if err := srv.Register(ctx, "bad", bad); err == nil {
		t.Fatal("invalid instance accepted — Register must validate via compilation")
	}

	_, err = srv.Solve(ctx, serve.SolveRequest{Instance: "ghost", K: 2})
	if !errors.Is(err, serve.ErrNotFound) {
		t.Fatalf("unknown instance: err = %v, want ErrNotFound", err)
	}

	if !srv.Unregister("inst-2") {
		t.Fatal("Unregister(inst-2) = false")
	}
	if srv.Unregister("inst-2") {
		t.Fatal("second Unregister(inst-2) = true")
	}
	if _, err := srv.Solve(ctx, serve.SolveRequest{Instance: "inst-2", K: 2}); !errors.Is(err, serve.ErrNotFound) {
		t.Fatal("unregistered instance still served")
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServeClose pins shutdown: Close drains in-flight work, later requests
// and registrations fail with ErrClosed, and Close is idempotent.
func TestServeClose(t *testing.T) {
	ctx := context.Background()
	srv, err := serve.New[ukc.Vec](nil)
	if err != nil {
		t.Fatal(err)
	}
	insts := testInstances(t, 1)
	if err := srv.Register(ctx, "inst-0", insts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Solve(ctx, serve.SolveRequest{Instance: "inst-0", K: 2}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := srv.Solve(ctx, serve.SolveRequest{Instance: "inst-0", K: 2}); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("post-Close request: err = %v, want ErrClosed", err)
	}
	if err := srv.Register(ctx, "late", insts[0]); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("post-Close Register: err = %v, want ErrClosed", err)
	}
}

// TestServeMixedRegisterSolveEvict is the race exercise: concurrent
// Register/Unregister churn, solve traffic and continuous eviction on one
// server (meaningful primarily under -race, which make test-race runs).
func TestServeMixedRegisterSolveEvict(t *testing.T) {
	ctx := context.Background()
	solver := ukc.NewSolver[ukc.Vec](ukc.WithMaxIter(2))
	insts := testInstances(t, 4)
	srv := newTestServer(t, solver, insts,
		serve.WithShards(2),
		serve.WithWorkersPerShard(2),
		serve.WithQueueDepth(256),
		serve.WithCacheBudget(1),
	)

	var wg sync.WaitGroup
	// Churners: register/unregister transient instances.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("transient-%d-%d", g, i)
				if err := srv.Register(ctx, name, insts[i%len(insts)]); err != nil {
					t.Error(err)
					return
				}
				if _, err := srv.Ecost(ctx, serve.EcostRequest[ukc.Vec]{Instance: name, Centers: []ukc.Vec{{0, 0}}}); err != nil && !errors.Is(err, serve.ErrOverloaded) {
					t.Error(err)
					return
				}
				srv.Unregister(name)
			}
		}(g)
	}
	// Solvers: steady mixed traffic over the stable instances.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				name := fmt.Sprintf("inst-%d", (g+i)%len(insts))
				var err error
				if i%2 == 0 {
					_, err = srv.Solve(ctx, serve.SolveRequest{Instance: name, K: 2})
				} else {
					_, err = srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: name, K: 2})
				}
				if err != nil && !errors.Is(err, serve.ErrOverloaded) && !errors.Is(err, serve.ErrNotFound) {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	m := srv.Metrics()
	if len(m.Shards) != 2 {
		t.Fatalf("%d shard snapshots, want 2", len(m.Shards))
	}
	tot := m.Totals()
	if tot.Completed == 0 || tot.Evictions == 0 {
		t.Fatalf("churn run recorded completed=%d evictions=%d", tot.Completed, tot.Evictions)
	}
	if tot.Instances != 4 {
		t.Fatalf("instances after churn = %d, want the 4 stable ones", tot.Instances)
	}
}

// TestServeMetricsLatency sanity-checks the latency quantiles and hit
// accounting on a quiet server.
func TestServeMetricsLatency(t *testing.T) {
	ctx := context.Background()
	solver := ukc.NewSolver[ukc.Vec]()
	insts := testInstances(t, 1)
	srv := newTestServer(t, solver, insts)
	for i := 0; i < 5; i++ {
		if _, err := srv.Solve(ctx, serve.SolveRequest{Instance: "inst-0", K: 2}); err != nil {
			t.Fatal(err)
		}
	}
	m := srv.Metrics().Shards[0]
	if m.LatencyP50 <= 0 || m.LatencyP99 < m.LatencyP50 {
		t.Fatalf("latency quantiles p50=%v p99=%v", m.LatencyP50, m.LatencyP99)
	}
	// First solve builds the surrogate cache (miss); later ones are hits.
	if m.CacheMisses == 0 || m.CacheHits == 0 {
		t.Fatalf("hit/miss accounting: hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}
	if hr := m.HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("HitRate = %v, want strictly between 0 and 1 after 1 miss + 4 hits", hr)
	}
}

// TestServeBatchEquivalence documents the Batch→Server migration path: the
// same work submitted through ukc.Batch and through a single-shard Server
// yields identical results (the Server adds admission, deadlines and the
// cache budget that Batch lacks).
func TestServeBatchEquivalence(t *testing.T) {
	ctx := context.Background()
	solver := ukc.NewSolver[ukc.Vec]()
	insts := testInstances(t, 4)

	batch, err := ukc.NewBatch(solver, 2)
	if err != nil {
		t.Fatal(err)
	}
	batchRes := batch.SolveAll(ctx, insts, 2)

	srv := newTestServer(t, solver, insts, serve.WithWorkersPerShard(2))
	for i := range insts {
		resp, err := srv.Solve(ctx, serve.SolveRequest{Instance: fmt.Sprintf("inst-%d", i), K: 2})
		if err != nil {
			t.Fatal(err)
		}
		if batchRes[i].Err != nil {
			t.Fatal(batchRes[i].Err)
		}
		if resp.Result.Ecost != batchRes[i].Result.Ecost || !sameVecs(resp.Result.Centers, batchRes[i].Result.Centers) {
			t.Fatalf("instance %d: Server and Batch disagree", i)
		}
	}
}
