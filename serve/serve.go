// Package serve is the multi-instance serving layer over the compiled
// uncertain k-center core: a registry of named compiled instances,
// hash-sharded across independent worker pools, with request admission,
// per-request deadlines and byte-budget eviction of the memoized caches.
//
// Where ukc.Batch is a one-shot pool over a slice of instances, a Server is
// a long-lived process component: instances are registered once (compiled
// eagerly, so registration is also validation), then many concurrent
// callers issue typed requests — Solve, Assign, Ecost, EcostSweep,
// SolveUnassigned — against them by name. The expensive per-instance state
// (the flat arena, both surrogate kinds, the 12·m·N-byte distance-RV swap
// evaluator) is built once and shared by every request, which is what makes
// serving heavy repeated traffic cheap (DESIGN.md §4a, §7).
//
// Each shard enforces:
//
//   - admission control — a bounded queue; a request arriving at a full
//     queue fails fast with ErrOverloaded instead of building backlog;
//   - deadlines — a per-request (or server-default) deadline layered on the
//     caller's context, covering queue wait plus execution; a request that
//     expires while queued is failed with context.DeadlineExceeded without
//     occupying a worker, and one that expires mid-solve aborts at the
//     pipeline's next cancellation check;
//   - byte-budget eviction — Compiled.CacheBytes meters every instance's
//     memoized caches, and when a completed request pushes the shard over
//     WithCacheBudget, the least-recently-used instances' caches are
//     dropped (Compiled.DropCaches) until it fits. Eviction never touches
//     the compiled arena: an evicted instance recomputes caches lazily on
//     its next request, bit-identically (§4a — every cache build is
//     deterministic).
//
// All admission, execution and eviction decisions are per shard, so a hot
// or thrashing shard cannot stall the others. Metrics() returns a
// snapshot — queue depths, cache bytes, hit/miss, latency quantiles — for
// tests, benchmarks and operational endpoints (cmd/ukserver exposes it).
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ukc "repro"
	"repro/internal/faults"
	"repro/internal/lru"
	"repro/obs"
	"repro/store"
)

// ErrOverloaded is returned when the target shard's request queue is full:
// the request was rejected at admission and never queued. Callers decide
// the retry policy — the server never blocks on a full queue.
var ErrOverloaded = errors.New("serve: shard queue full")

// ErrClosed is returned for requests and registrations after shutdown has
// completed.
var ErrClosed = errors.New("serve: server closed")

// ErrDraining is returned for requests and registrations arriving while a
// Shutdown/Close drain is in progress: admission has stopped, but
// already-admitted work is still completing. Callers should retry against
// another replica (cmd/ukserver maps it to 503 with a Retry-After header).
var ErrDraining = errors.New("serve: server draining")

// ErrNotFound is the sentinel wrapped by request errors naming an
// unregistered instance; match with errors.Is.
var ErrNotFound = errors.New("serve: instance not registered")

// ErrPanicked is the sentinel wrapped by *PanicError — the typed response a
// request receives when its workload panicked. Match with errors.Is; the
// concrete *PanicError (via errors.As) carries the recovered value and
// stack. The panic is confined to the one request: the shard worker
// recovers, counts it (Panicked in Metrics), and serves the next request
// from intact shard state.
var ErrPanicked = errors.New("serve: workload panicked")

// PanicError is the typed error a panicking workload turns into: the
// recovered panic value plus the stack captured at the recovery point. It
// wraps ErrPanicked.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // debug.Stack() captured in the recovering worker
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: workload panicked: %v", e.Value)
}

func (e *PanicError) Unwrap() error { return ErrPanicked }

// Server lifecycle states, guarded by closeMu. Admission is only possible
// in stateRunning; the draining window is when Shutdown is waiting for
// admitted work to finish.
const (
	stateRunning = iota
	stateDraining
	stateClosed
)

// entry is one registered instance: the compiled model (metered and
// evicted) and an Instance pinned to it (what the solver consumes).
// bytes is the shard's last accounting of c.CacheBytes(), owned by the
// shard mutex. buildDur accumulates the instance's memoized cache-build
// durations — fed by tracer, which execute installs into every request
// context so the core's build spans land here; a post-eviction rebuild is
// one more observation.
type entry[P any] struct {
	name     string
	inst     ukc.Instance[P]
	c        *ukc.Compiled[P]
	snap     *store.Snapshot // non-nil when c aliases a mapped snapshot
	bytes    int64
	buildDur *obs.Histogram
	tracer   obs.Tracer
}

// entryTracer funnels the spans of one registered instance into the shard's
// metrics: cache-build spans (surrogate.build.*, evaluator.build,
// candindex.build, candgraph.build) into the instance's build-duration
// histogram, and the local-search prune summary (ls.prune) into the shard's
// scan/prune counters. Everything else is ignored. A two-pointer struct
// converts to obs.Tracer without allocating, and the histogram and counters
// are lock-free, so the per-span cost is a name check plus a few atomics.
type entryTracer[P any] struct {
	ent *entry[P]
	m   *shardCounters
}

func (et entryTracer[P]) Span(name, _ string, _ time.Time, dur time.Duration, attrs []obs.Attr) {
	switch {
	case strings.HasPrefix(name, "surrogate.build") || name == "evaluator.build" ||
		name == "candindex.build" || name == "candgraph.build":
		et.ent.buildDur.Observe(dur.Seconds())
	case name == "ls.prune":
		for _, a := range attrs {
			switch a.Key {
			case "scanned":
				et.m.pruneScanned.Add(uint64(a.Val))
			case "pruned":
				et.m.prunePruned.Add(uint64(a.Val))
			}
		}
	}
}

// task is one admitted request: the deadline-carrying context, the target
// entry, the workload closure, and the completion signal. err and stats are
// written by the executing worker before done is closed.
type task[P any] struct {
	ctx   context.Context
	ent   *entry[P]
	fn    func(ctx context.Context) error
	enq   time.Time
	at    *obs.ActiveTrace // nil when the flight recorder is off
	ifr   *inflightReq
	stats RequestStats
	err   error
	done  chan struct{}
}

// shard is one independent serving partition: its slice of the registry,
// its recency list and cache accounting, its bounded queue, and its
// metrics. entries, rec, cacheBytes and the entries' bytes fields are owned
// by mu; counters are atomic; the queue channel is never closed until
// server Close.
type shard[P any] struct {
	id int

	mu         sync.Mutex
	entries    map[string]*entry[P]
	rec        *lru.List[string]
	cacheBytes int64

	queue chan *task[P]
	m     shardCounters
	lat   latencyRing
}

// Server is the sharded serving layer; build one with New, register
// instances, then issue requests from any number of goroutines. A Server is
// goroutine-safe; Close/Shutdown drain in-flight work and reject everything
// after, and are idempotent and safe to race with each other and with
// Register.
type Server[P any] struct {
	solver *ukc.Solver[P]
	cfg    config
	shards []*shard[P]

	closeMu sync.RWMutex // guards state and queue closes vs admission
	state   int
	wg      sync.WaitGroup

	// stopCtx is canceled when a drain deadline expires: every in-flight
	// request's context is derived under it (see do), so aborting the drain
	// cancels the remaining work at the pipeline's next ctx check.
	stopCtx    context.Context
	stopCancel context.CancelFunc

	// drainDone is closed when the first Shutdown/Close finishes; drainErr
	// (written before the close) is its result, returned verbatim by every
	// later or concurrent call.
	drainDone chan struct{}
	drainErr  error

	// inflight is the live request table (see inflight.go): every admitted
	// request from admission until completion or queue abandonment.
	inflight *inflightTable

	// Snapshot-hygiene counters (see snapshot.go): corrupt snapshots
	// quarantined, and stale write temporaries swept, since server start.
	quarantined atomic.Uint64
	tmpSwept    atomic.Uint64
}

// New builds a server running every request through solver (nil selects
// ukc.NewSolver[P]()'s per-space defaults) and starts its shard worker
// pools. The solver is shared by all workers — ukc.Solver is immutable and
// goroutine-safe — so its options (rule, surrogate, WithParallelism for
// intra-request fan-out) apply uniformly.
func New[P any](solver *ukc.Solver[P], opts ...Option) (*Server[P], error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if solver == nil {
		solver = ukc.NewSolver[P]()
	}
	s := &Server[P]{solver: solver, cfg: cfg, shards: make([]*shard[P], cfg.shards), drainDone: make(chan struct{}), inflight: newInflightTable()}
	s.stopCtx, s.stopCancel = context.WithCancel(context.Background())
	for i := range s.shards {
		sh := &shard[P]{
			id:      i,
			entries: make(map[string]*entry[P]),
			rec:     lru.New[string](),
			queue:   make(chan *task[P], cfg.queueDepth),
		}
		s.shards[i] = sh
		for w := 0; w < cfg.workers; w++ {
			s.wg.Add(1)
			go s.worker(sh)
		}
	}
	if cfg.snapshotDir != "" {
		if err := s.warmStart(cfg.snapshotDir); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// shardIndex hashes an instance name (FNV-1a) onto a shard. The placement
// is stable for the server's lifetime: registry lookups, admission and
// eviction for one instance always meet the same shard.
func shardIndex(name string, n int) int {
	const offset, prime = uint64(14695981039346656037), uint64(1099511628211)
	h := offset
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return int(h % uint64(n))
}

func (s *Server[P]) shardFor(name string) *shard[P] {
	return s.shards[shardIndex(name, len(s.shards))]
}

// Register compiles inst (one validation + flattening pass — a rejected
// model never enters the registry) and adds it under name to its shard.
// Registering an already-registered name fails; Unregister first to
// replace. If inst was built by a constructor its compiled model is shared,
// so a caller-side Compile is not repeated.
func (s *Server[P]) Register(ctx context.Context, name string, inst ukc.Instance[P]) error {
	if name == "" {
		return fmt.Errorf("serve: empty instance name")
	}
	if err := s.admissible(); err != nil {
		return err
	}
	c, err := inst.Compile(ctx)
	if err != nil {
		return fmt.Errorf("serve: compiling %q: %w", name, err)
	}
	return s.addEntry(name, c, nil)
}

// admissible maps the lifecycle state to the typed rejection for new work
// (nil while running).
func (s *Server[P]) admissible() error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	return s.admissibleLocked()
}

func (s *Server[P]) admissibleLocked() error {
	switch s.state {
	case stateDraining:
		return ErrDraining
	case stateClosed:
		return ErrClosed
	}
	return nil
}

// addEntry inserts a compiled model into its shard under name — the shared
// tail of Register (compile path) and RegisterSnapshot (zero-copy path,
// which passes the snapshot whose bytes the model aliases).
func (s *Server[P]) addEntry(name string, c *ukc.Compiled[P], snap *store.Snapshot) error {
	pinned, err := ukc.InstanceOf(c)
	if err != nil {
		return err
	}
	// Registration must not race past a concurrent Shutdown: holding the
	// close guard across the insert means an entry is either registered
	// before the drain starts (and is drained/frozen with the rest) or the
	// registration fails typed — never a silent post-close insert. The
	// guard is released before enforceBudget, whose DropCaches calls can
	// block on an in-flight cache build.
	s.closeMu.RLock()
	if err := s.admissibleLocked(); err != nil {
		s.closeMu.RUnlock()
		return err
	}
	sh := s.shardFor(name)
	sh.mu.Lock()
	if _, dup := sh.entries[name]; dup {
		sh.mu.Unlock()
		s.closeMu.RUnlock()
		return fmt.Errorf("serve: instance %q already registered", name)
	}
	ent := &entry[P]{name: name, inst: pinned, c: c, snap: snap, bytes: c.CacheBytes(), buildDur: obs.NewHistogram(obs.DurationBuckets()...)}
	ent.tracer = entryTracer[P]{ent: ent, m: &sh.m}
	sh.entries[name] = ent
	sh.cacheBytes += ent.bytes
	sh.rec.Touch(name)
	sh.mu.Unlock()
	s.closeMu.RUnlock()
	s.enforceBudget(sh)
	return nil
}

// Unregister removes name from the registry, reporting whether it was
// present. In-flight requests against it complete normally — they hold the
// entry — and its compiled model is reclaimed when the last holder drops
// it.
func (s *Server[P]) Unregister(name string) bool {
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ent, ok := sh.entries[name]
	if !ok {
		return false
	}
	delete(sh.entries, name)
	sh.rec.Remove(name)
	sh.cacheBytes -= ent.bytes
	return true
}

// Get returns the compiled model registered under name. Callers may solve
// against it directly (bypassing admission) or inspect its CacheBytes; they
// must not mutate it. The model remains subject to the shard's eviction —
// caches may be dropped and rebuilt underneath, which is always
// result-transparent.
func (s *Server[P]) Get(name string) (*ukc.Compiled[P], bool) {
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ent, ok := sh.entries[name]
	if !ok {
		return nil, false
	}
	return ent.c, true
}

// Names returns all registered instance names, sorted.
func (s *Server[P]) Names() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for name := range sh.entries {
			out = append(out, name)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// do is the request path every workload shares: resolve the instance,
// layer the deadline, start trace participation, admit onto the shard queue
// (fail fast with ErrOverloaded when full), and wait for a worker to run
// fn. The returned stats are meaningful even on error (Shard is always set;
// Queue/Exec when the task executed). workload names the request kind in
// the in-flight table.
func (s *Server[P]) do(ctx context.Context, workload, instance string, deadline time.Duration, fn func(ctx context.Context, ent *entry[P]) error) (RequestStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sh := s.shardFor(instance)
	st := RequestStats{Shard: sh.id}

	sh.mu.Lock()
	ent, ok := sh.entries[instance]
	sh.mu.Unlock()
	if !ok {
		return st, fmt.Errorf("%w: %q", ErrNotFound, instance)
	}

	if deadline <= 0 {
		deadline = s.cfg.deadline
	}
	cancel := func() {}
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, deadline)
	}
	defer cancel()

	// Derive the task context under the server's stop context: when a drain
	// deadline expires, Shutdown cancels stopCtx and every in-flight request
	// aborts at its pipeline's next cancellation check instead of holding the
	// drain open. AfterFunc costs nothing until stopCtx fires (one stopper
	// registration per request, released on the deferred stop()).
	dctx, dcancel := context.WithCancel(ctx)
	defer dcancel()
	stop := context.AfterFunc(s.stopCtx, dcancel)
	defer stop()

	// Trace participation: the incoming trace context (parsed from the
	// caller's traceparent by the gateway, or planted by an in-process
	// recorder-sharing client) makes this request's spans part of the
	// caller's trace; with no recorder configured `at` is nil and every
	// trace call below is a free no-op.
	at := s.cfg.recorder.Start(obs.TraceFromContext(ctx), "serve.request", instance)

	t := &task[P]{
		ctx:  dctx,
		ent:  ent,
		fn:   func(c context.Context) error { return fn(c, ent) },
		enq:  time.Now(),
		at:   at,
		done: make(chan struct{}),
	}
	t.ifr = s.inflight.add(workload, instance, sh.id, at.TraceID(), t.enq)

	// Admission under the close guard: once Shutdown leaves stateRunning, no
	// new task can enter a queue, so the queues Shutdown closes are the whole
	// remaining workload and the worker drain is complete.
	s.closeMu.RLock()
	if err := s.admissibleLocked(); err != nil {
		s.closeMu.RUnlock()
		s.inflight.remove(t.ifr)
		at.Finish(err)
		return st, err
	}
	select {
	case sh.queue <- t:
		s.closeMu.RUnlock()
		sh.m.admitted.Add(1)
	default:
		s.closeMu.RUnlock()
		sh.m.rejected.Add(1)
		s.inflight.remove(t.ifr)
		at.Finish(ErrOverloaded)
		return st, ErrOverloaded
	}

	select {
	case <-t.done:
		at.Finish(t.err)
		return t.stats, t.err
	case <-dctx.Done():
		// Deadline or caller cancellation while queued (or mid-execution —
		// the worker aborts at the pipeline's next ctx check and discards
		// its partial work; shard state is never touched by a failed run).
		// Finishing the trace here completes this participant immediately;
		// anything the abandoned worker records later is dropped by the
		// recorder's completion flag.
		st.Queue = time.Since(t.enq)
		err := context.Cause(dctx)
		at.Finish(err)
		return st, err
	}
}

// worker is one shard-pool goroutine: it executes queued tasks until Close
// closes the queue, then drains what remains (their contexts decide whether
// the drained work still runs or expires).
func (s *Server[P]) worker(sh *shard[P]) {
	defer s.wg.Done()
	for t := range sh.queue {
		s.execute(sh, t)
	}
}

// execute runs one task: expired-in-queue fast path, recency touch, the
// workload itself, then cache re-accounting and eviction.
func (s *Server[P]) execute(sh *shard[P], t *task[P]) {
	defer close(t.done)
	defer s.inflight.remove(t.ifr)
	t.stats.Queue = time.Since(t.enq)
	// The queue wait becomes a span under the request root — recorded even
	// for requests that then expire, err or panic, so a retained trace
	// always shows where the time went.
	t.at.Record(t.at.NewSpanID(), t.at.RootID(), "serve.queue", t.ent.name, t.enq, t.stats.Queue)
	if err := t.ctx.Err(); err != nil {
		// The context died while the task sat in the queue: fail it
		// without running — the worker moves straight to the next request,
		// and no shard state has been touched. Only true deadline expiry
		// counts as Expired; a caller disconnect (context.Canceled — every
		// dropped HTTP connection in ukserver) is Canceled, so Expired
		// stays a faithful deadline-tuning signal and Failed is reserved
		// for genuine execution errors.
		if errors.Is(err, context.DeadlineExceeded) {
			sh.m.expired.Add(1)
		} else {
			sh.m.canceled.Add(1)
		}
		t.err = err
		return
	}

	sh.mu.Lock()
	if sh.entries[t.ent.name] == t.ent {
		sh.rec.Touch(t.ent.name)
	}
	sh.mu.Unlock()

	buildsBefore := t.ent.c.CacheBuilds()
	t.ifr.markExec()
	// The exec span's ID is drawn before execution so the solver's spans can
	// be parented under it; the span itself is recorded after, once its
	// duration is known. With the recorder off every call here is a nil-check
	// no-op and the tracer merge is skipped — zero extra allocations.
	execID := t.at.NewSpanID()
	reqTracer := t.ent.tracer
	if tt := t.at.Tracer(execID); tt != nil {
		reqTracer = obs.Multi(reqTracer, tt)
	}
	start := time.Now()
	// The entry's tracer rides the request context so any cache build the
	// core performs during this execution (cold start or post-eviction
	// rebuild) lands in this instance's build-duration histogram; a solver
	// tracer, if one is installed, merges with it rather than being
	// displaced.
	t.err = runGuarded(t.fn, obs.NewContext(t.ctx, reqTracer))
	t.stats.Exec = time.Since(start)
	t.at.Record(execID, t.at.RootID(), "serve.exec", t.ent.name, start, t.stats.Exec)
	// A warm-cache hit is a request during which no memoized cache was
	// built. The monotonic build counter (never decremented, not even by
	// eviction) makes this immune to the race a byte-delta comparison has
	// with a concurrent eviction zeroing the bytes mid-request.
	t.stats.CacheHit = t.ent.c.CacheBuilds() == buildsBefore

	switch {
	case t.err == nil:
		sh.m.completed.Add(1)
	case errors.Is(t.err, ErrPanicked):
		sh.m.panicked.Add(1)
	case errors.Is(t.err, context.Canceled):
		sh.m.canceled.Add(1)
	case errors.Is(t.err, context.DeadlineExceeded):
		sh.m.expired.Add(1)
	default:
		sh.m.failed.Add(1)
	}
	if t.stats.CacheHit {
		sh.m.hits.Add(1)
	} else {
		sh.m.misses.Add(1)
	}
	sh.lat.record(t.stats.Queue, t.stats.Exec)

	after := t.ent.c.CacheBytes()
	sh.mu.Lock()
	if cur, ok := sh.entries[t.ent.name]; ok && cur == t.ent {
		sh.cacheBytes += after - t.ent.bytes
		t.ent.bytes = after
		// The `after` snapshot can be stale against a concurrent eviction
		// (taken outside the lock), momentarily overstating the shard
		// total. Re-inserting the entry whenever it carries accounted
		// bytes upholds the invariant that repairs this: accounted > 0 ⇒
		// present in the recency list ⇒ a later eviction pass subtracts
		// exactly what was accounted and re-reads the truth.
		if after > 0 {
			sh.rec.Touch(t.ent.name)
		}
	}
	sh.mu.Unlock()
	s.enforceBudget(sh)
}

// runGuarded runs one workload with panic isolation: a panic anywhere under
// fn — a solver bug, bad data the validators missed, an injected fault — is
// recovered here, in the worker goroutine, and converted to a *PanicError
// carrying the recovered value and the stack captured at the recovery point.
// The panic is thereby confined to its one request: the worker's loop, the
// shard's locks and the sibling requests are untouched. The faults.Fire hook
// is inside the guarded region, so injected panics exercise exactly the
// recovery path a genuine one would take (and injected errors surface as
// ordinary workload failures).
func runGuarded(fn func(ctx context.Context) error, ctx context.Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if err := faults.Fire("serve.exec"); err != nil {
		return err
	}
	return fn(ctx)
}

// enforceBudget brings the shard back under its cache budget: while over,
// the least-recently-used entries are selected as victims under sh.mu
// (optimistically accounted as dropped), and their DropCaches calls run
// AFTER the mutex is released — a drop can block on the memo mutex of an
// in-flight cache build (potentially a long evaluator construction), and
// that wait must stall only this worker, never the shard's admission,
// registry or metrics paths. Dropping is result-transparent (deterministic
// lazy rebuild) and never invalidates in-flight consumers, which hold
// their own references to the immutable caches. An evicted instance
// leaves the recency list until its next request re-enters it.
func (s *Server[P]) enforceBudget(sh *shard[P]) {
	if s.cfg.budget <= 0 {
		return
	}
	sh.mu.Lock()
	var victims []*entry[P]
	for sh.cacheBytes > s.cfg.budget {
		name, ok := sh.rec.Oldest()
		if !ok {
			break
		}
		sh.rec.Remove(name)
		ent := sh.entries[name]
		if ent == nil || ent.bytes == 0 {
			// Nothing accounted to free (an idle entry, or one already
			// being evicted): popping it suffices — a no-op DropCaches
			// would only inflate the evictions counter. It re-enters the
			// recency list on its next request.
			continue
		}
		sh.cacheBytes -= ent.bytes
		ent.bytes = 0
		victims = append(victims, ent)
	}
	sh.mu.Unlock()
	for _, ent := range victims {
		ent.c.DropCaches()
		sh.m.evictions.Add(1)
		// Re-sync rather than trust the optimistic zero: a concurrent
		// request on another worker may already be rebuilding what was
		// just dropped. A rebuilt entry re-enters the recency list here —
		// its bytes are back in the shard total, so it must stay an
		// eviction candidate even if no later request ever touches it
		// (execute's accounting maintains the same accounted-⇒-listed
		// invariant for its own stale-snapshot window).
		if after := ent.c.CacheBytes(); after != 0 {
			sh.mu.Lock()
			if cur, ok := sh.entries[ent.name]; ok && cur == ent {
				sh.cacheBytes += after - ent.bytes
				ent.bytes = after
				sh.rec.Touch(ent.name)
			}
			sh.mu.Unlock()
		}
	}
}

// Metrics returns a point-in-time snapshot of every shard: registry and
// queue occupancy, cache accounting, the request counters, and latency
// quantiles over the last latWindow requests.
func (s *Server[P]) Metrics() Metrics {
	out := Metrics{
		Shards:               make([]ShardMetrics, len(s.shards)),
		SnapshotsQuarantined: s.quarantined.Load(),
		TempFilesSwept:       s.tmpSwept.Load(),
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		instances := len(sh.entries)
		bytes := sh.cacheBytes
		per := make([]InstanceMetrics, 0, len(sh.entries))
		for _, ent := range sh.entries {
			per = append(per, InstanceMetrics{
				Name:        ent.name,
				CacheBytes:  ent.bytes,
				CacheBuilds: ent.buildDur.Snapshot(),
			})
		}
		sh.mu.Unlock()
		sort.Slice(per, func(a, b int) bool { return per[a].Name < per[b].Name })
		q := sh.lat.quantiles()
		out.Shards[i] = ShardMetrics{
			Shard:        sh.id,
			Instances:    instances,
			QueueDepth:   len(sh.queue),
			QueueCap:     cap(sh.queue),
			CacheBytes:   bytes,
			CacheBudget:  s.cfg.budget,
			Admitted:     sh.m.admitted.Load(),
			Rejected:     sh.m.rejected.Load(),
			Completed:    sh.m.completed.Load(),
			Failed:       sh.m.failed.Load(),
			Canceled:     sh.m.canceled.Load(),
			Expired:      sh.m.expired.Load(),
			Panicked:     sh.m.panicked.Load(),
			CacheHits:    sh.m.hits.Load(),
			CacheMisses:  sh.m.misses.Load(),
			Evictions:    sh.m.evictions.Load(),
			PruneScanned: sh.m.pruneScanned.Load(),
			PrunePruned:  sh.m.prunePruned.Load(),
			LatencyP50:   q.TotalP50,
			LatencyP99:   q.TotalP99,
			QueueP50:     q.QueueP50,
			QueueP99:     q.QueueP99,
			ExecP50:      q.ExecP50,
			ExecP99:      q.ExecP99,
			PerInstance:  per,
		}
	}
	return out
}

// Shutdown gracefully drains the server: admission stops immediately (new
// requests and registrations fail with ErrDraining, then ErrClosed once the
// drain completes), already-admitted work runs to completion, and the worker
// pools exit. If ctx expires before the drain finishes, the remaining
// in-flight requests are canceled (their callers see context.Canceled /
// their deadline error) and Shutdown still waits for the workers to observe
// the cancellation before returning ctx's error.
//
// With WithFreezeOnShutdown and a snapshot dir configured, every registered
// instance is frozen to a `.ukc` snapshot after a clean drain (skipped when
// the drain was aborted — a torn freeze set is worse than none; the writer's
// tmp+rename discipline keeps each individual file atomic regardless).
//
// Shutdown is idempotent and safe to call from any number of goroutines
// concurrently (and to race with Close): one caller performs the drain,
// the rest wait for it and return the same result.
func (s *Server[P]) Shutdown(ctx context.Context) error {
	s.closeMu.Lock()
	if s.state != stateRunning {
		s.closeMu.Unlock()
		<-s.drainDone
		return s.drainErr
	}
	s.state = stateDraining
	for _, sh := range s.shards {
		close(sh.queue)
	}
	s.closeMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()

	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline: cancel every in-flight request via the stop
		// context, then wait again — the workers exit as soon as each
		// workload observes its cancellation, so this second wait is bounded
		// by the pipelines' cancellation-check granularity.
		s.stopCancel()
		<-done
		drainErr = fmt.Errorf("serve: drain aborted: %w", ctx.Err())
	}

	if drainErr == nil && s.cfg.freezeOnShutdown && s.cfg.snapshotDir != "" {
		if err := s.freezeAll(); err != nil {
			drainErr = fmt.Errorf("serve: freeze on shutdown: %w", err)
		}
	}

	s.closeMu.Lock()
	s.state = stateClosed
	s.closeMu.Unlock()
	s.stopCancel()
	s.drainErr = drainErr
	close(s.drainDone)
	return drainErr
}

// Close drains the server like Shutdown under the configured drain timeout
// (WithDrainTimeout; the default waits indefinitely, preserving the
// historical Close contract that in-flight work always completes).
// Idempotent and safe to race with Shutdown, Register and requests.
func (s *Server[P]) Close() {
	ctx := context.Background()
	if s.cfg.drainTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.drainTimeout)
		defer cancel()
	}
	_ = s.Shutdown(ctx)
}

// RetryAfter estimates how long a caller rejected at instance's shard
// (ErrOverloaded) should wait before retrying: the time for the shard's
// worker pool to work off its current queue at the recent median execution
// latency. With an empty latency ring (cold server) it falls back to a small
// constant. cmd/ukserver surfaces it as the Retry-After header on 429s.
func (s *Server[P]) RetryAfter(instance string) time.Duration {
	const floor = 50 * time.Millisecond
	sh := s.shardFor(instance)
	depth := len(sh.queue)
	if depth == 0 {
		return floor
	}
	exec := sh.lat.quantiles().ExecP50
	if exec <= 0 {
		return floor
	}
	d := time.Duration(float64(exec) * float64(depth) / float64(s.cfg.workers))
	if d < floor {
		d = floor
	}
	return d
}
