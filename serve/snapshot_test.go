package serve_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	ukc "repro"
	"repro/internal/gen"
	"repro/internal/graphmetric"
	"repro/obs"
	"repro/serve"
	"repro/store"
)

func snapEuPoints(t *testing.T, seed int64) []ukc.Point {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts, err := gen.GaussianClusters(rng, 30, 3, 2, 3, 2.0, 0.4)
	if err != nil {
		t.Fatalf("GaussianClusters: %v", err)
	}
	return pts
}

func snapFinInstance(t *testing.T, seed int64) ukc.Instance[int] {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, _, err := graphmetric.RandomGeometric(25, 0.5, rng)
	if err != nil {
		t.Fatalf("RandomGeometric: %v", err)
	}
	space, err := g.Metric()
	if err != nil {
		t.Fatalf("Metric: %v", err)
	}
	pts, err := gen.OnVerticesLocal(rng, space, 18, 3)
	if err != nil {
		t.Fatalf("OnVerticesLocal: %v", err)
	}
	return ukc.NewFiniteInstance(space, pts, nil)
}

// writeSnapshot compiles inst and freezes it at dir/name.ukc.
func writeSnapshot[P any](t *testing.T, dir, name string, inst ukc.Instance[P]) string {
	t.Helper()
	c, err := inst.Compile(context.Background())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	path := filepath.Join(dir, name+serve.SnapshotExt)
	if _, err := store.Write(context.Background(), path, c); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path
}

// TestRegisterSnapshotServesIdentically pins the core warm-restart
// guarantee at the serving layer: a server holding the frozen-then-opened
// instance answers every workload bit-identically to a server holding the
// in-memory compiled original.
func TestRegisterSnapshotServesIdentically(t *testing.T) {
	mem := ukc.NewEuclideanInstance(snapEuPoints(t, 1))
	path := writeSnapshot(t, t.TempDir(), "inst", mem)

	cold, err := serve.New[ukc.Vec](nil)
	if err != nil {
		t.Fatalf("New(cold): %v", err)
	}
	defer cold.Close()
	if err := cold.Register(context.Background(), "inst", mem); err != nil {
		t.Fatalf("Register: %v", err)
	}
	warm, err := serve.New[ukc.Vec](nil)
	if err != nil {
		t.Fatalf("New(warm): %v", err)
	}
	defer warm.Close()
	if err := warm.RegisterSnapshot(context.Background(), "inst", path); err != nil {
		t.Fatalf("RegisterSnapshot: %v", err)
	}

	ctx := context.Background()
	req := serve.SolveRequest{Instance: "inst", K: 3}
	coldRes, err := cold.Solve(ctx, req)
	if err != nil {
		t.Fatalf("Solve(cold): %v", err)
	}
	warmRes, err := warm.Solve(ctx, req)
	if err != nil {
		t.Fatalf("Solve(warm): %v", err)
	}
	if !reflect.DeepEqual(coldRes.Result, warmRes.Result) {
		t.Fatalf("served results diverge:\ncold %+v\nwarm %+v", coldRes.Result, warmRes.Result)
	}

	coldUn, err := cold.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "inst", K: 3})
	if err != nil {
		t.Fatalf("SolveUnassigned(cold): %v", err)
	}
	warmUn, err := warm.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: "inst", K: 3})
	if err != nil {
		t.Fatalf("SolveUnassigned(warm): %v", err)
	}
	if !reflect.DeepEqual(coldUn.Centers, warmUn.Centers) || coldUn.Ecost != warmUn.Ecost {
		t.Fatalf("unassigned solves diverge: cold %v (%v), warm %v (%v)",
			coldUn.Centers, coldUn.Ecost, warmUn.Centers, warmUn.Ecost)
	}
}

// TestRegisterSnapshotKindMismatch pins the typed cross-kind rejection.
func TestRegisterSnapshotKindMismatch(t *testing.T) {
	path := writeSnapshot(t, t.TempDir(), "fin", snapFinInstance(t, 2))
	s, err := serve.New[ukc.Vec](nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	err = s.RegisterSnapshot(context.Background(), "fin", path)
	if !errors.Is(err, serve.ErrSnapshotKind) {
		t.Fatalf("RegisterSnapshot error = %v, want ErrSnapshotKind", err)
	}
	if len(s.Names()) != 0 {
		t.Fatalf("mismatched snapshot entered the registry: %v", s.Names())
	}
}

// TestWithSnapshotDirWarmStart pins the warm-restart acceptance criterion:
// a server booted against a snapshot directory registers every snapshot of
// its kind (skipping the other kind), serves without a single compile span
// firing, and answers identically to the pre-freeze server.
func TestWithSnapshotDirWarmStart(t *testing.T) {
	dir := t.TempDir()
	memA := ukc.NewEuclideanInstance(snapEuPoints(t, 3))
	memB := ukc.NewEuclideanInstance(snapEuPoints(t, 4))
	writeSnapshot(t, dir, "a", memA)
	writeSnapshot(t, dir, "b", memB)
	writeSnapshot(t, dir, "other-kind", snapFinInstance(t, 5))

	cold, err := serve.New[ukc.Vec](nil)
	if err != nil {
		t.Fatalf("New(cold): %v", err)
	}
	defer cold.Close()
	if err := cold.Register(context.Background(), "a", memA); err != nil {
		t.Fatalf("Register: %v", err)
	}
	coldRes, err := cold.Solve(context.Background(), serve.SolveRequest{Instance: "a", K: 3})
	if err != nil {
		t.Fatalf("Solve(cold): %v", err)
	}

	rec := &obs.Recorder{}
	warm, err := serve.New[ukc.Vec](ukc.NewSolver[ukc.Vec](ukc.WithTracer(rec)), serve.WithSnapshotDir(dir))
	if err != nil {
		t.Fatalf("New(warm): %v", err)
	}
	defer warm.Close()
	if got, want := warm.Names(), []string{"a", "b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("warm-start registry = %v, want %v", got, want)
	}
	warmRes, err := warm.Solve(context.Background(), serve.SolveRequest{Instance: "a", K: 3})
	if err != nil {
		t.Fatalf("Solve(warm): %v", err)
	}
	if !reflect.DeepEqual(coldRes.Result, warmRes.Result) {
		t.Fatalf("warm-start solve diverges from pre-freeze solve")
	}

	// The whole point of the snapshot path: nothing was recompiled. The
	// compile.* span vocabulary must be absent, and the assertion must not
	// be vacuous — the tracer demonstrably saw the solve (surrogate builds
	// fire on the first warm request).
	var sawBuild bool
	for _, sp := range rec.Spans() {
		if strings.HasPrefix(sp.Name, "compile.") {
			t.Fatalf("compile span %q fired on warm start", sp.Name)
		}
		if strings.HasPrefix(sp.Name, "surrogate.build") || sp.Name == "evaluator.build" {
			sawBuild = true
		}
	}
	if !sawBuild {
		t.Fatalf("tracer saw no cache-build spans — the no-compile assertion is vacuous")
	}
}

// TestWithSnapshotDirCorrupt pins the quarantine contract: a corrupt
// snapshot in the warm-start set is renamed to "*.quarantine", counted, and
// skipped — the healthy remainder boots and serves. (Until PR 8 a corrupt
// file aborted New; the fault-tolerance layer deliberately changed this so
// one bit-rotted file cannot hold every healthy instance hostage.)
func TestWithSnapshotDirCorrupt(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "good", ukc.NewEuclideanInstance(snapEuPoints(t, 6)))
	bad := filepath.Join(dir, "bad"+serve.SnapshotExt)
	if err := os.WriteFile(bad, []byte("UKCSNAP\x00garbage"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	s, err := serve.New[ukc.Vec](nil, serve.WithSnapshotDir(dir))
	if err != nil {
		t.Fatalf("New failed on a corrupt snapshot instead of quarantining it: %v", err)
	}
	defer s.Close()
	if got, want := s.Names(), []string{"good"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("registry after quarantine = %v, want %v", got, want)
	}
	if _, err := s.Solve(context.Background(), serve.SolveRequest{Instance: "good", K: 3}); err != nil {
		t.Fatalf("Solve(good) after quarantine: %v", err)
	}
	if _, err := os.Stat(bad); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt snapshot still in place: stat err = %v", err)
	}
	if _, err := os.Stat(bad + serve.QuarantineExt); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if n := s.Metrics().SnapshotsQuarantined; n != 1 {
		t.Fatalf("SnapshotsQuarantined = %d, want 1", n)
	}

	// A second boot over the same dir must not re-trip on the quarantined
	// file (it no longer matches the scan) and must not double-count.
	s2, err := serve.New[ukc.Vec](nil, serve.WithSnapshotDir(dir))
	if err != nil {
		t.Fatalf("New after quarantine: %v", err)
	}
	defer s2.Close()
	if n := s2.Metrics().SnapshotsQuarantined; n != 0 {
		t.Fatalf("second boot SnapshotsQuarantined = %d, want 0", n)
	}
}

// TestWithSnapshotDirSweepsTemps pins the crash-hygiene satellite: stale
// "*.ukc.tmp" write temporaries are removed (and counted) at warm start,
// while real snapshots and unrelated files are untouched.
func TestWithSnapshotDirSweepsTemps(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "good", ukc.NewEuclideanInstance(snapEuPoints(t, 8)))
	stale1 := filepath.Join(dir, "good"+serve.SnapshotExt+".tmp")
	stale2 := filepath.Join(dir, "dead"+serve.SnapshotExt+".tmp")
	unrelated := filepath.Join(dir, "notes.txt")
	for _, p := range []string{stale1, stale2, unrelated} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatalf("WriteFile(%s): %v", p, err)
		}
	}
	s, err := serve.New[ukc.Vec](nil, serve.WithSnapshotDir(dir))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	for _, p := range []string{stale1, stale2} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("stale temp %s survived the sweep: stat err = %v", p, err)
		}
	}
	if _, err := os.Stat(unrelated); err != nil {
		t.Fatalf("unrelated file swept: %v", err)
	}
	if got, want := s.Names(), []string{"good"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("registry = %v, want %v", got, want)
	}
	if n := s.Metrics().TempFilesSwept; n != 2 {
		t.Fatalf("TempFilesSwept = %d, want 2", n)
	}
}

// TestFreezeOnShutdown pins the drain-freeze round trip: a server with
// WithFreezeOnShutdown writes every registered instance to the snapshot dir
// on Close, and a second server warm-starts the full set and answers
// identically.
func TestFreezeOnShutdown(t *testing.T) {
	dir := t.TempDir()
	memA := ukc.NewEuclideanInstance(snapEuPoints(t, 9))
	memB := ukc.NewEuclideanInstance(snapEuPoints(t, 10))

	s, err := serve.New[ukc.Vec](nil, serve.WithSnapshotDir(dir), serve.WithFreezeOnShutdown(true))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for name, inst := range map[string]ukc.Instance[ukc.Vec]{"a": memA, "b": memB} {
		if err := s.Register(context.Background(), name, inst); err != nil {
			t.Fatalf("Register(%s): %v", name, err)
		}
	}
	want, err := s.Solve(context.Background(), serve.SolveRequest{Instance: "a", K: 3})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	s.Close()

	for _, name := range []string{"a", "b"} {
		if _, err := os.Stat(filepath.Join(dir, name+serve.SnapshotExt)); err != nil {
			t.Fatalf("frozen snapshot %s missing: %v", name, err)
		}
	}
	warm, err := serve.New[ukc.Vec](nil, serve.WithSnapshotDir(dir))
	if err != nil {
		t.Fatalf("New(warm): %v", err)
	}
	defer warm.Close()
	if got, wantNames := warm.Names(), []string{"a", "b"}; !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("warm registry = %v, want %v", got, wantNames)
	}
	got, err := warm.Solve(context.Background(), serve.SolveRequest{Instance: "a", K: 3})
	if err != nil {
		t.Fatalf("Solve(warm): %v", err)
	}
	if !reflect.DeepEqual(want.Result, got.Result) {
		t.Fatalf("freeze/thaw solve diverges")
	}
}

// TestRegisterSnapshotDuplicate pins that a duplicate name is rejected and
// does not disturb the existing entry.
func TestRegisterSnapshotDuplicate(t *testing.T) {
	mem := ukc.NewEuclideanInstance(snapEuPoints(t, 7))
	path := writeSnapshot(t, t.TempDir(), "inst", mem)
	s, err := serve.New[ukc.Vec](nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	if err := s.RegisterSnapshot(context.Background(), "inst", path); err != nil {
		t.Fatalf("RegisterSnapshot: %v", err)
	}
	if err := s.RegisterSnapshot(context.Background(), "inst", path); err == nil {
		t.Fatalf("duplicate RegisterSnapshot succeeded")
	}
	if _, err := s.Solve(context.Background(), serve.SolveRequest{Instance: "inst", K: 2}); err != nil {
		t.Fatalf("Solve after duplicate rejection: %v", err)
	}
}
