package serve_test

// Observability-surface tests: the canceled/failed/expired counter split,
// HitRate edge cases, per-instance cache metrics, and the Collect walk the
// Prometheus endpoint is built on.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	ukc "repro"
	"repro/serve"
)

// waitTotals polls the server until pred holds on the totals snapshot (the
// worker records counters asynchronously after do returns).
func waitTotals(t *testing.T, srv *serve.Server[ukc.Vec], pred func(serve.ShardMetrics) bool) serve.ShardMetrics {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := srv.Metrics().Totals()
		if pred(m) {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never converged: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHitRateZeroExecuted pins HitRate on a snapshot with no executed
// requests: 0, not NaN.
func TestHitRateZeroExecuted(t *testing.T) {
	var m serve.ShardMetrics
	if hr := m.HitRate(); hr != 0 {
		t.Fatalf("HitRate with no executed requests = %v, want 0", hr)
	}
}

// TestCanceledSplitsFromFailed drives each terminal outcome once and
// checks it lands in its own counter: a caller-canceled queued request is
// Canceled, a genuine execution error is Failed, a queued deadline expiry
// is Expired — no cross-contamination.
func TestCanceledSplitsFromFailed(t *testing.T) {
	insts := testInstances(t, 1)
	srv := newTestServer(t, nil, insts)

	// Caller cancellation: the context is dead before the worker picks the
	// task up, so it is counted as canceled without executing.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Solve(cctx, serve.SolveRequest{Instance: "inst-0", K: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: err = %v, want context.Canceled", err)
	}
	m := waitTotals(t, srv, func(m serve.ShardMetrics) bool { return m.Canceled == 1 })
	if m.Failed != 0 || m.Expired != 0 {
		t.Fatalf("cancellation leaked into Failed=%d/Expired=%d", m.Failed, m.Expired)
	}

	// Genuine execution error: an invalid k reaches the solver and fails.
	if _, err := srv.Solve(context.Background(), serve.SolveRequest{Instance: "inst-0", K: -1}); err == nil {
		t.Fatal("k=-1 solve succeeded")
	}
	m = waitTotals(t, srv, func(m serve.ShardMetrics) bool { return m.Failed == 1 })
	if m.Canceled != 1 || m.Expired != 0 {
		t.Fatalf("execution error miscounted: %+v", m)
	}

	// Deadline expiry stays its own signal.
	if _, err := srv.Solve(context.Background(), serve.SolveRequest{Instance: "inst-0", K: 2, Deadline: time.Nanosecond}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1ns deadline: err = %v, want context.DeadlineExceeded", err)
	}
	m = waitTotals(t, srv, func(m serve.ShardMetrics) bool { return m.Expired == 1 })
	if m.Canceled != 1 || m.Failed != 1 {
		t.Fatalf("deadline expiry miscounted: %+v", m)
	}
}

// TestLatencySplitAndPerInstance runs real traffic and checks the new
// snapshot surfaces: the queue/exec split is populated and consistent with
// the end-to-end view, and the served instance reports its cache bytes and
// at least one recorded cache build (the cold first solve).
func TestLatencySplitAndPerInstance(t *testing.T) {
	insts := testInstances(t, 2)
	srv := newTestServer(t, nil, insts)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := srv.Solve(ctx, serve.SolveRequest{Instance: "inst-0", K: 2}); err != nil {
			t.Fatal(err)
		}
	}
	m := srv.Metrics().Totals()
	if m.ExecP50 <= 0 {
		t.Fatalf("ExecP50 = %v, want > 0 after real solves", m.ExecP50)
	}
	if m.LatencyP99 < m.ExecP99 || m.LatencyP99 < m.QueueP99 {
		t.Fatalf("end-to-end p99 %v below a component (queue %v, exec %v)", m.LatencyP99, m.QueueP99, m.ExecP99)
	}

	var served *serve.InstanceMetrics
	for _, sh := range srv.Metrics().Shards {
		for i := range sh.PerInstance {
			if sh.PerInstance[i].Name == "inst-0" {
				served = &sh.PerInstance[i]
			}
		}
	}
	if served == nil {
		t.Fatal("inst-0 missing from PerInstance")
	}
	if served.CacheBytes <= 0 {
		t.Errorf("inst-0 CacheBytes = %d, want > 0 after solves", served.CacheBytes)
	}
	if served.CacheBuilds.Count == 0 {
		t.Error("inst-0 recorded no cache builds; the cold solve should observe the surrogate build")
	}
}

// TestCollectWalk checks the exporter walk: the core series are present,
// counters agree with the Metrics snapshot, histogram buckets are
// cumulative with le="+Inf" equal to the count, and label maps are fresh
// per sample.
func TestCollectWalk(t *testing.T) {
	insts := testInstances(t, 2)
	srv := newTestServer(t, nil, insts)
	ctx := context.Background()
	for _, name := range []string{"inst-0", "inst-1"} {
		if _, err := srv.Solve(ctx, serve.SolveRequest{Instance: name, K: 2}); err != nil {
			t.Fatal(err)
		}
	}

	type sample struct {
		labels map[string]string
		value  float64
	}
	series := map[string][]sample{}
	srv.Collect(func(name string, labels map[string]string, value float64) {
		series[name] = append(series[name], sample{labels, value})
	})

	for _, want := range []string{
		"ukc_serve_requests_total",
		"ukc_serve_cache_events_total",
		"ukc_serve_instances",
		"ukc_serve_queue_depth",
		"ukc_serve_queue_capacity",
		"ukc_serve_cache_bytes",
		"ukc_serve_cache_budget_bytes",
		"ukc_serve_latency_seconds",
		"ukc_serve_instance_cache_bytes",
		"ukc_serve_instance_cache_build_seconds_bucket",
		"ukc_serve_instance_cache_build_seconds_sum",
		"ukc_serve_instance_cache_build_seconds_count",
	} {
		if len(series[want]) == 0 {
			t.Errorf("series %q missing from Collect walk", want)
		}
	}

	totals := srv.Metrics().Totals()
	var admitted, completed float64
	for _, s := range series["ukc_serve_requests_total"] {
		switch s.labels["outcome"] {
		case "admitted":
			admitted += s.value
		case "completed":
			completed += s.value
		}
	}
	if admitted != float64(totals.Admitted) || completed != float64(totals.Completed) {
		t.Errorf("walk counters admitted=%v completed=%v, snapshot %d/%d", admitted, completed, totals.Admitted, totals.Completed)
	}

	// Histogram sanity per instance: buckets non-decreasing, +Inf == count.
	byInst := map[string][]sample{}
	for _, s := range series["ukc_serve_instance_cache_build_seconds_bucket"] {
		key := s.labels["shard"] + "/" + s.labels["instance"]
		byInst[key] = append(byInst[key], s)
	}
	counts := map[string]float64{}
	for _, s := range series["ukc_serve_instance_cache_build_seconds_count"] {
		counts[s.labels["shard"]+"/"+s.labels["instance"]] = s.value
	}
	for key, buckets := range byInst {
		prev := -1.0
		var inf float64
		for _, b := range buckets {
			if b.value < prev {
				t.Errorf("%s: bucket counts not cumulative", key)
			}
			prev = b.value
			if b.labels["le"] == "+Inf" {
				inf = b.value
			}
		}
		if inf != counts[key] {
			t.Errorf("%s: le=+Inf bucket %v != count %v", key, inf, counts[key])
		}
	}

	// Label maps must not be aliased between samples.
	seen := map[string]bool{}
	for _, s := range series["ukc_serve_latency_seconds"] {
		key := s.labels["shard"] + "|" + s.labels["stage"] + "|" + s.labels["quantile"]
		if seen[key] {
			t.Fatalf("duplicate latency sample %q — label map aliasing", key)
		}
		seen[key] = true
		if !strings.Contains("queue exec total", s.labels["stage"]) {
			t.Fatalf("unexpected stage %q", s.labels["stage"])
		}
	}
}
