package serve

import (
	"strconv"
)

// Collect walks the server's metrics in exporter-neutral form, invoking fn
// once per sample with a metric name, its label set, and the value.
// Exporters (cmd/ukserver's Prometheus endpoint is the in-tree one) render
// the walk into their wire format without serve knowing any of them.
//
// The vocabulary, all prefixed ukc_serve_:
//
//   - requests_total{shard,outcome} — outcome ∈ admitted, rejected,
//     completed, failed, canceled, expired, panicked (counters);
//   - snapshots_quarantined_total, tmp_files_swept_total — server-level
//     (no labels) snapshot-hygiene counters: corrupt snapshots renamed to
//     *.quarantine, and stale *.ukc.tmp write temporaries removed at
//     startup;
//   - cache_events_total{shard,event} — event ∈ hit, miss, eviction;
//   - prune_total{shard,event} — event ∈ scanned, pruned: candidate-index
//     scan accounting across pruning-enabled SolveUnassigned requests
//     (pruned/scanned is the live prune rate);
//   - instances, queue_depth, queue_capacity, cache_bytes,
//     cache_budget_bytes{shard} — gauges;
//   - latency_seconds{shard,stage,quantile} — stage ∈ queue, exec, total;
//     quantile ∈ 0.5, 0.99; over the shard's last latWindow requests;
//   - instance_cache_bytes{shard,instance} — per-instance cache gauge;
//   - instance_cache_build_seconds_bucket{shard,instance,le} with _sum and
//     _count — the per-instance cache-build duration histogram
//     (cumulative buckets; le="+Inf" equals _count).
//
// The walk is a point-in-time snapshot (one Metrics() call); label maps are
// freshly allocated per sample and safe to retain. Ordering is
// deterministic: shards ascending, instances sorted by name.
func (s *Server[P]) Collect(fn func(name string, labels map[string]string, value float64)) {
	m := s.Metrics()
	fn("ukc_serve_snapshots_quarantined_total", map[string]string{}, float64(m.SnapshotsQuarantined))
	fn("ukc_serve_tmp_files_swept_total", map[string]string{}, float64(m.TempFilesSwept))
	for _, sh := range m.Shards {
		shard := strconv.Itoa(sh.Shard)
		req := func(outcome string, v uint64) {
			fn("ukc_serve_requests_total", map[string]string{"shard": shard, "outcome": outcome}, float64(v))
		}
		req("admitted", sh.Admitted)
		req("rejected", sh.Rejected)
		req("completed", sh.Completed)
		req("failed", sh.Failed)
		req("canceled", sh.Canceled)
		req("expired", sh.Expired)
		req("panicked", sh.Panicked)

		ev := func(event string, v uint64) {
			fn("ukc_serve_cache_events_total", map[string]string{"shard": shard, "event": event}, float64(v))
		}
		ev("hit", sh.CacheHits)
		ev("miss", sh.CacheMisses)
		ev("eviction", sh.Evictions)

		pr := func(event string, v uint64) {
			fn("ukc_serve_prune_total", map[string]string{"shard": shard, "event": event}, float64(v))
		}
		pr("scanned", sh.PruneScanned)
		pr("pruned", sh.PrunePruned)

		gauge := func(name string, v float64) {
			fn(name, map[string]string{"shard": shard}, v)
		}
		gauge("ukc_serve_instances", float64(sh.Instances))
		gauge("ukc_serve_queue_depth", float64(sh.QueueDepth))
		gauge("ukc_serve_queue_capacity", float64(sh.QueueCap))
		gauge("ukc_serve_cache_bytes", float64(sh.CacheBytes))
		gauge("ukc_serve_cache_budget_bytes", float64(sh.CacheBudget))

		lat := func(stage, quantile string, v float64) {
			fn("ukc_serve_latency_seconds", map[string]string{"shard": shard, "stage": stage, "quantile": quantile}, v)
		}
		lat("queue", "0.5", sh.QueueP50.Seconds())
		lat("queue", "0.99", sh.QueueP99.Seconds())
		lat("exec", "0.5", sh.ExecP50.Seconds())
		lat("exec", "0.99", sh.ExecP99.Seconds())
		lat("total", "0.5", sh.LatencyP50.Seconds())
		lat("total", "0.99", sh.LatencyP99.Seconds())

		for _, inst := range sh.PerInstance {
			fn("ukc_serve_instance_cache_bytes",
				map[string]string{"shard": shard, "instance": inst.Name}, float64(inst.CacheBytes))
			h := inst.CacheBuilds
			cum := uint64(0)
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				fn("ukc_serve_instance_cache_build_seconds_bucket",
					map[string]string{"shard": shard, "instance": inst.Name, "le": strconv.FormatFloat(bound, 'g', -1, 64)},
					float64(cum))
			}
			fn("ukc_serve_instance_cache_build_seconds_bucket",
				map[string]string{"shard": shard, "instance": inst.Name, "le": "+Inf"}, float64(h.Count))
			fn("ukc_serve_instance_cache_build_seconds_sum",
				map[string]string{"shard": shard, "instance": inst.Name}, h.Sum)
			fn("ukc_serve_instance_cache_build_seconds_count",
				map[string]string{"shard": shard, "instance": inst.Name}, float64(h.Count))
		}
	}
}
