package serve

import (
	"context"
	"time"

	ukc "repro"
)

// RequestStats is the per-request serving telemetry attached to every
// response: which shard served it, how long it queued, how long it
// executed, and whether it ran entirely on warm caches. CacheHit is false
// exactly when a memoized-cache build completed on the instance during
// this request's execution — a cold or post-eviction request, or (rarely)
// a concurrent request's build landing inside this one's window; the
// attribution is per instance, not per call, which is what makes it
// race-free against eviction.
type RequestStats struct {
	Shard    int
	Queue    time.Duration
	Exec     time.Duration
	CacheHit bool
}

// SolveRequest asks for the full surrogate k-center pipeline
// (Solver.Solve) on a registered instance. Deadline, when positive,
// overrides the server default for this request; it covers queue wait plus
// execution and layers onto the caller's context.
type SolveRequest struct {
	Instance string
	K        int
	Deadline time.Duration
}

// SolveResponse carries the pipeline result and the request telemetry.
type SolveResponse[P any] struct {
	Result ukc.ResultOf[P]
	Stats  RequestStats
}

// Solve runs the uncertain k-center pipeline on the named instance through
// the shard's admission, deadline and eviction machinery. Results are
// bit-identical to calling the server's solver directly on the same
// instance — serving changes scheduling, never answers.
func (s *Server[P]) Solve(ctx context.Context, req SolveRequest) (SolveResponse[P], error) {
	var resp SolveResponse[P]
	st, err := s.do(ctx, "solve", req.Instance, req.Deadline, func(ctx context.Context, ent *entry[P]) error {
		res, err := s.solver.Solve(ctx, ent.inst, req.K)
		if err != nil {
			return err
		}
		resp.Result = res
		return nil
	})
	if err != nil {
		// The shared resp must not be read here: on an early deadline
		// return the worker may still be writing it (do's abandonment
		// contract) — hand back a fresh value carrying only the stats.
		return SolveResponse[P]{Stats: st}, err
	}
	resp.Stats = st
	return resp, nil
}

// AssignRequest asks for the solver's assignment rule applied to an
// existing center set on a registered instance.
type AssignRequest[P any] struct {
	Instance string
	Centers  []P
	Deadline time.Duration
}

// AssignResponse carries the per-point center assignment.
type AssignResponse struct {
	Assign []int
	Stats  RequestStats
}

// Assign computes the solver's assignment rule for req.Centers on the
// named instance (the EP/OC rules reuse the instance's memoized
// surrogates).
func (s *Server[P]) Assign(ctx context.Context, req AssignRequest[P]) (AssignResponse, error) {
	var resp AssignResponse
	st, err := s.do(ctx, "assign", req.Instance, req.Deadline, func(ctx context.Context, ent *entry[P]) error {
		assign, err := s.solver.Assign(ctx, ent.inst, req.Centers)
		if err != nil {
			return err
		}
		resp.Assign = assign
		return nil
	})
	if err != nil {
		return AssignResponse{Stats: st}, err
	}
	resp.Stats = st
	return resp, nil
}

// EcostRequest asks for an exact expected cost on a registered instance:
// the assigned cost of (Centers, Assign) when Assign is non-nil, the
// unassigned cost of Centers (every realization snaps to its nearest
// center) when Assign is nil.
type EcostRequest[P any] struct {
	Instance string
	Centers  []P
	Assign   []int
	Deadline time.Duration
}

// EcostResponse carries one exact expected cost.
type EcostResponse struct {
	Ecost float64
	Stats RequestStats
}

// Ecost evaluates the exact expected cost on the named instance's compiled
// flat model.
func (s *Server[P]) Ecost(ctx context.Context, req EcostRequest[P]) (EcostResponse, error) {
	var resp EcostResponse
	st, err := s.do(ctx, "ecost", req.Instance, req.Deadline, func(ctx context.Context, ent *entry[P]) error {
		var (
			cost float64
			err  error
		)
		if req.Assign != nil {
			cost, err = s.solver.Ecost(ctx, ent.inst, req.Centers, req.Assign)
		} else {
			cost, err = s.solver.EcostUnassigned(ctx, ent.inst, req.Centers)
		}
		if err != nil {
			return err
		}
		resp.Ecost = cost
		return nil
	})
	if err != nil {
		return EcostResponse{Stats: st}, err
	}
	resp.Stats = st
	return resp, nil
}

// EcostSweepRequest asks for the full single-swap neighborhood matrix of a
// center set on the exact unassigned objective (Solver.EcostSweep) — the
// heaviest cacheable workload: its k·m evaluations all run on the
// instance's memoized distance-RV evaluator.
type EcostSweepRequest[P any] struct {
	Instance string
	Centers  []P
	Deadline time.Duration
}

// EcostSweepResponse carries the sweep matrix and the snapped center
// indices (into the instance's candidate set).
type EcostSweepResponse struct {
	Sweep   [][]float64
	Snapped []int
	Stats   RequestStats
}

// EcostSweep evaluates the single-swap neighborhood of req.Centers on the
// named instance.
func (s *Server[P]) EcostSweep(ctx context.Context, req EcostSweepRequest[P]) (EcostSweepResponse, error) {
	var resp EcostSweepResponse
	st, err := s.do(ctx, "sweep", req.Instance, req.Deadline, func(ctx context.Context, ent *entry[P]) error {
		sweep, snapped, err := s.solver.EcostSweep(ctx, ent.inst, req.Centers)
		if err != nil {
			return err
		}
		resp.Sweep, resp.Snapped = sweep, snapped
		return nil
	})
	if err != nil {
		return EcostSweepResponse{Stats: st}, err
	}
	resp.Stats = st
	return resp, nil
}

// UnassignedRequest asks for the unassigned-objective local search
// (Solver.SolveUnassigned) on a registered instance. Index selects the
// candidate-index mode for this request: the zero value
// (ukc.CandIndexDefault) defers to the server solver's WithCandidateIndex
// option — safe pruning unless the operator chose otherwise — while
// ukc.CandIndexOff / CandIndexPrune / CandIndexApprox override it per
// request. Prune keeps answers bit-identical to Off; Approx trades exact
// trajectories for neighborhood-restricted scans.
type UnassignedRequest struct {
	Instance string
	K        int
	Index    ukc.CandidateIndexMode
	Deadline time.Duration
}

// UnassignedResponse carries the local-search centers and their exact
// unassigned expected cost.
type UnassignedResponse[P any] struct {
	Centers []P
	Ecost   float64
	Stats   RequestStats
}

// SolveUnassigned runs the exact-evaluator local search for the unassigned
// objective on the named instance.
func (s *Server[P]) SolveUnassigned(ctx context.Context, req UnassignedRequest) (UnassignedResponse[P], error) {
	var resp UnassignedResponse[P]
	st, err := s.do(ctx, "solve_unassigned", req.Instance, req.Deadline, func(ctx context.Context, ent *entry[P]) error {
		centers, cost, err := s.solver.SolveUnassignedMode(ctx, ent.inst, req.K, req.Index)
		if err != nil {
			return err
		}
		resp.Centers, resp.Ecost = centers, cost
		return nil
	})
	if err != nil {
		return UnassignedResponse[P]{Stats: st}, err
	}
	resp.Stats = st
	return resp, nil
}
