package serve_test

// The drain lifecycle contract: Shutdown stops admission with typed
// ErrDraining while admitted work completes, is idempotent under arbitrary
// concurrent Shutdown/Close calls, aborts in-flight work when its context
// expires, and never races Register past the drain (the PR-8 regression).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	ukc "repro"
	"repro/serve"
)

// gatedServer builds a 1-worker server with one gate-wedged instance and one
// normal instance, returning the gate.
func gatedServer(t *testing.T, opts ...serve.Option) (*serve.Server[ukc.Vec], chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	gated := ukc.NewInstance[ukc.Vec](gateSpace{gate}, []ukc.Point{
		{Locs: []ukc.Vec{{0, 0}}, Probs: []float64{1}},
	}, nil)
	srv, err := serve.New[ukc.Vec](nil, append([]serve.Option{serve.WithWorkersPerShard(1)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(context.Background(), "gated", gated); err != nil {
		t.Fatal(err)
	}
	return srv, gate
}

// wedge submits the request that blocks inside the gate and waits until the
// worker has dequeued it.
func wedge(t *testing.T, srv *serve.Server[ukc.Vec]) chan error {
	t.Helper()
	wedged := make(chan error, 1)
	go func() {
		_, err := srv.Ecost(context.Background(), serve.EcostRequest[ukc.Vec]{
			Instance: "gated", Centers: []ukc.Vec{{1, 1}}, Assign: []int{0},
		})
		wedged <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := srv.Metrics().Totals()
		if m.Admitted == 1 && m.QueueDepth == 0 {
			return wedged
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never dequeued the wedge request: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeDrainRejectsTyped pins the draining window: while Shutdown waits
// for admitted work, new requests and registrations fail with ErrDraining
// (not ErrClosed, not a hang); after the drain completes they fail with
// ErrClosed; and the wedged in-flight request still completed cleanly.
func TestServeDrainRejectsTyped(t *testing.T) {
	srv, gate := gatedServer(t)
	wedged := wedge(t, srv)

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(context.Background()) }()

	// Admission flips to draining as soon as Shutdown takes the state lock.
	// Probe with Register — unlike a request, it can never block on the
	// wedged worker — until the typed rejection appears.
	probe := testInstances(t, 1)[0]
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		err := srv.Register(context.Background(), fmt.Sprintf("probe-%d", i), probe)
		if errors.Is(err, serve.ErrDraining) {
			break
		}
		if err != nil {
			t.Fatalf("mid-drain Register probe: err = %v, want nil or ErrDraining", err)
		}
		srv.Unregister(fmt.Sprintf("probe-%d", i))
		if time.Now().After(deadline) {
			t.Fatal("drain never started rejecting")
		}
		time.Sleep(time.Millisecond)
	}
	// Requests are now rejected with the same typed error, synchronously.
	if _, err := srv.Ecost(context.Background(), serve.EcostRequest[ukc.Vec]{
		Instance: "gated", Centers: []ukc.Vec{{1, 1}}, Assign: []int{0},
	}); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("mid-drain request: err = %v, want ErrDraining", err)
	}

	close(gate)
	if err := <-wedged; err != nil {
		t.Fatalf("wedged request failed across the drain: %v", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := srv.Ecost(context.Background(), serve.EcostRequest[ukc.Vec]{
		Instance: "gated", Centers: []ukc.Vec{{1, 1}}, Assign: []int{0},
	}); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("post-drain request: err = %v, want ErrClosed", err)
	}
}

// TestServeShutdownIdempotentConcurrent pins that any number of concurrent
// Shutdown and Close calls perform exactly one drain and all return the
// same result.
func TestServeShutdownIdempotentConcurrent(t *testing.T) {
	srv := newTestServer(t, nil, testInstances(t, 1))
	if _, err := srv.Solve(context.Background(), serve.SolveRequest{Instance: "inst-0", K: 2}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				errs[i] = srv.Shutdown(context.Background())
			} else {
				srv.Close()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Shutdown %d: %v", i, err)
		}
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("late Shutdown: %v", err)
	}
}

// TestServeDrainDeadlineAborts pins the bounded drain: when Shutdown's
// context expires with a request still wedged in a worker, the request's
// context is canceled (its caller returns context.Canceled — the observable
// proof the abort fired) and Shutdown returns an error wrapping the
// context's verdict once the worker unblocks.
func TestServeDrainDeadlineAborts(t *testing.T) {
	srv, gate := gatedServer(t)
	wedged := wedge(t, srv)

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(sctx) }()

	// The wedged request's caller must observe the drain abort even though
	// the worker is still stuck inside the metric call.
	select {
	case err := <-wedged:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("aborted request: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain abort never canceled the wedged request")
	}

	// Unstick the worker; Shutdown then finishes with the abort verdict.
	close(gate)
	select {
	case err := <-shutdownErr:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("aborted Shutdown: err = %v, want wrapped context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never returned after the worker unblocked")
	}

	// The result is sticky: later calls return the same aborted-drain error.
	if err := srv.Shutdown(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("repeat Shutdown after abort: err = %v", err)
	}
}

// TestServeCloseRegisterRace is the PR-8 regression test for the
// Close/Register race: under concurrent registrations and one Close, every
// Register either succeeds — and its instance is then visible in the final
// registry — or fails typed with ErrDraining/ErrClosed. No registration may
// slip past the drain unaccounted.
func TestServeCloseRegisterRace(t *testing.T) {
	insts := testInstances(t, 1)
	for round := 0; round < 20; round++ {
		srv, err := serve.New[ukc.Vec](nil, serve.WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		const regs = 8
		results := make([]error, regs)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < regs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				results[i] = srv.Register(context.Background(), fmt.Sprintf("r-%d", i), insts[0])
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			srv.Close()
		}()
		close(start)
		wg.Wait()

		names := map[string]bool{}
		for _, n := range srv.Names() {
			names[n] = true
		}
		for i, err := range results {
			name := fmt.Sprintf("r-%d", i)
			switch {
			case err == nil:
				if !names[name] {
					t.Fatalf("round %d: Register(%s) succeeded but the instance is missing post-Close", round, name)
				}
			case errors.Is(err, serve.ErrDraining) || errors.Is(err, serve.ErrClosed):
				if names[name] {
					t.Fatalf("round %d: Register(%s) failed %v yet the instance exists", round, name, err)
				}
			default:
				t.Fatalf("round %d: Register(%s) unexpected error %v", round, name, err)
			}
		}
	}
}
