package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// shardCounters are one shard's monotonic request counters; every field is
// updated atomically on the request path and read by Metrics snapshots.
type shardCounters struct {
	admitted  atomic.Uint64 // requests accepted into the queue
	rejected  atomic.Uint64 // requests bounced with ErrOverloaded
	completed atomic.Uint64 // executed requests that returned no error
	failed    atomic.Uint64 // executed requests that returned an error, and queued requests whose caller canceled
	expired   atomic.Uint64 // requests whose deadline passed while queued
	hits      atomic.Uint64 // executed requests with no cache build in their window
	misses    atomic.Uint64 // executed requests whose window saw a cache build
	evictions atomic.Uint64 // DropCaches calls issued by the byte-budget LRU
}

// latWindow is the per-shard latency sample size: large enough for stable
// p99 estimates under load, small enough that a snapshot copy+sort stays
// trivial.
const latWindow = 1024

// latencyRing keeps the last latWindow end-to-end request latencies
// (queue wait + execution) of one shard, snapshot-readable.
type latencyRing struct {
	mu  sync.Mutex
	buf [latWindow]int64
	n   uint64 // total recorded; buf index wraps at latWindow
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.n%latWindow] = int64(d)
	r.n++
	r.mu.Unlock()
}

// quantiles returns the p50/p99 over the recorded window (zero when no
// request has completed yet).
func (r *latencyRing) quantiles() (p50, p99 time.Duration) {
	r.mu.Lock()
	n := r.n
	if n > latWindow {
		n = latWindow
	}
	sample := make([]int64, n)
	copy(sample, r.buf[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	return time.Duration(sample[(n-1)*50/100]), time.Duration(sample[(n-1)*99/100])
}

// ShardMetrics is one shard's snapshot: registry and queue occupancy, cache
// accounting, request counters and latency quantiles. Counters are
// monotonic since server start; gauges (QueueDepth, CacheBytes, Instances)
// are instantaneous.
type ShardMetrics struct {
	Shard      int
	Instances  int
	QueueDepth int
	QueueCap   int

	CacheBytes  int64
	CacheBudget int64

	Admitted  uint64
	Rejected  uint64
	Completed uint64
	Failed    uint64
	Expired   uint64

	CacheHits   uint64
	CacheMisses uint64
	Evictions   uint64

	LatencyP50 time.Duration
	LatencyP99 time.Duration
}

// HitRate returns the warm-cache hit fraction of executed requests (0 when
// none have executed).
func (m ShardMetrics) HitRate() float64 {
	total := m.CacheHits + m.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(total)
}

// Metrics is a full server snapshot: one entry per shard plus the
// cross-shard totals.
type Metrics struct {
	Shards []ShardMetrics
}

// Totals sums the per-shard snapshots (Shard = -1; latency quantiles are
// the max across shards — a conservative "worst shard" view, since exact
// cross-shard quantiles would need the raw samples).
func (m Metrics) Totals() ShardMetrics {
	t := ShardMetrics{Shard: -1}
	for _, s := range m.Shards {
		t.Instances += s.Instances
		t.QueueDepth += s.QueueDepth
		t.QueueCap += s.QueueCap
		t.CacheBytes += s.CacheBytes
		t.CacheBudget += s.CacheBudget
		t.Admitted += s.Admitted
		t.Rejected += s.Rejected
		t.Completed += s.Completed
		t.Failed += s.Failed
		t.Expired += s.Expired
		t.CacheHits += s.CacheHits
		t.CacheMisses += s.CacheMisses
		t.Evictions += s.Evictions
		if s.LatencyP50 > t.LatencyP50 {
			t.LatencyP50 = s.LatencyP50
		}
		if s.LatencyP99 > t.LatencyP99 {
			t.LatencyP99 = s.LatencyP99
		}
	}
	return t
}
