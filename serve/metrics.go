package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/obs"
)

// shardCounters are one shard's monotonic request counters; every field is
// updated atomically on the request path and read by Metrics snapshots.
type shardCounters struct {
	admitted  atomic.Uint64 // requests accepted into the queue
	rejected  atomic.Uint64 // requests bounced with ErrOverloaded
	completed atomic.Uint64 // executed requests that returned no error
	failed    atomic.Uint64 // executed requests that returned a genuine error (not a context verdict or panic)
	canceled  atomic.Uint64 // requests whose caller canceled, queued or mid-execution
	expired   atomic.Uint64 // requests whose deadline passed, queued or mid-execution
	panicked  atomic.Uint64 // executed requests whose workload panicked (recovered to ErrPanicked)
	hits      atomic.Uint64 // executed requests with no cache build in their window
	misses    atomic.Uint64 // executed requests whose window saw a cache build
	evictions atomic.Uint64 // DropCaches calls issued by the byte-budget LRU

	// Candidate-index scan accounting, fed by the ls.prune spans the entry
	// tracer observes on SolveUnassigned requests: candidates considered by
	// pruning-enabled scans, and the subset skipped by the lower bound.
	pruneScanned atomic.Uint64
	prunePruned  atomic.Uint64
}

// latWindow is the per-shard latency sample size: large enough for stable
// p99 estimates under load, small enough that a snapshot copy+sort stays
// trivial.
const latWindow = 1024

// latencyRing keeps the last latWindow requests' (queue wait, execution)
// duration pairs of one shard, snapshot-readable. Storing the pair rather
// than the sum lets quantiles split queue wait from execution — the two
// tuning signals (admission pressure vs solve cost) — while the end-to-end
// view stays exactly the pairwise sum.
type latencyRing struct {
	mu  sync.Mutex
	buf [latWindow][2]int64 // [0] queue wait, [1] execution, nanoseconds
	n   uint64              // total recorded; buf index wraps at latWindow
}

func (r *latencyRing) record(queue, exec time.Duration) {
	r.mu.Lock()
	r.buf[r.n%latWindow] = [2]int64{int64(queue), int64(exec)}
	r.n++
	r.mu.Unlock()
}

// latencyQuantiles is one shard's p50/p99 split three ways: queue wait,
// execution, and end-to-end (their pairwise sum).
type latencyQuantiles struct {
	QueueP50, QueueP99 time.Duration
	ExecP50, ExecP99   time.Duration
	TotalP50, TotalP99 time.Duration
}

// quantiles returns the p50/p99 over the recorded window (all zero when no
// request has completed yet).
func (r *latencyRing) quantiles() (q latencyQuantiles) {
	r.mu.Lock()
	n := r.n
	if n > latWindow {
		n = latWindow
	}
	queue := make([]int64, n)
	exec := make([]int64, n)
	total := make([]int64, n)
	for i := uint64(0); i < n; i++ {
		queue[i] = r.buf[i][0]
		exec[i] = r.buf[i][1]
		total[i] = r.buf[i][0] + r.buf[i][1]
	}
	r.mu.Unlock()
	if n == 0 {
		return q
	}
	rank := func(s []int64) (p50, p99 time.Duration) {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return time.Duration(s[(n-1)*50/100]), time.Duration(s[(n-1)*99/100])
	}
	q.QueueP50, q.QueueP99 = rank(queue)
	q.ExecP50, q.ExecP99 = rank(exec)
	q.TotalP50, q.TotalP99 = rank(total)
	return q
}

// InstanceMetrics is one registered instance's cache view: the shard's last
// byte accounting of its memoized caches and the distribution of its
// cache-build durations (surrogate and evaluator builds — each fires once
// per instance lifetime, or again after a byte-budget eviction forces a
// lazy rebuild, so a populated histogram on a long-lived instance is a
// direct read on eviction churn).
type InstanceMetrics struct {
	Name        string
	CacheBytes  int64
	CacheBuilds obs.HistogramSnapshot
}

// ShardMetrics is one shard's snapshot: registry and queue occupancy, cache
// accounting, request counters and latency quantiles. Counters are
// monotonic since server start; gauges (QueueDepth, CacheBytes, Instances)
// are instantaneous. LatencyP50/P99 are end-to-end (queue + execution);
// QueueP50/P99 and ExecP50/P99 split the same window into its components.
type ShardMetrics struct {
	Shard      int
	Instances  int
	QueueDepth int
	QueueCap   int

	CacheBytes  int64
	CacheBudget int64

	Admitted  uint64
	Rejected  uint64
	Completed uint64
	Failed    uint64
	Canceled  uint64
	Expired   uint64
	Panicked  uint64

	CacheHits   uint64
	CacheMisses uint64
	Evictions   uint64

	// PruneScanned / PrunePruned are the shard's candidate-index scan
	// counters across SolveUnassigned requests with pruning enabled (the
	// default): candidates considered, and the subset the pivot lower
	// bound skipped without an exact evaluation. Their ratio (PruneRate)
	// is the live measure of how much of the O(n·m) swap-scan wall the
	// index is absorbing.
	PruneScanned uint64
	PrunePruned  uint64

	LatencyP50 time.Duration
	LatencyP99 time.Duration
	QueueP50   time.Duration
	QueueP99   time.Duration
	ExecP50    time.Duration
	ExecP99    time.Duration

	PerInstance []InstanceMetrics
}

// HitRate returns the warm-cache hit fraction of executed requests (0 when
// none have executed).
func (m ShardMetrics) HitRate() float64 {
	total := m.CacheHits + m.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(total)
}

// PruneRate returns the fraction of scanned candidates the candidate index
// pruned without an exact evaluation (0 when no pruning-enabled scan has
// run).
func (m ShardMetrics) PruneRate() float64 {
	if m.PruneScanned == 0 {
		return 0
	}
	return float64(m.PrunePruned) / float64(m.PruneScanned)
}

// Metrics is a full server snapshot: one entry per shard plus the
// cross-shard totals and the server-level snapshot-hygiene counters.
type Metrics struct {
	Shards []ShardMetrics

	// SnapshotsQuarantined counts corrupt `.ukc` files renamed to
	// `*.quarantine` (warm start or RegisterSnapshot) since server start;
	// TempFilesSwept counts stale `*.ukc.tmp` write temporaries removed by
	// the WithSnapshotDir startup sweep. Both are server-level — snapshot
	// hygiene happens before a file is attributed to any shard.
	SnapshotsQuarantined uint64
	TempFilesSwept       uint64
}

// Totals sums the per-shard snapshots (Shard = -1; latency quantiles are
// the max across shards — a conservative "worst shard" view, since exact
// cross-shard quantiles would need the raw samples). PerInstance stays nil:
// instance rows belong to their shard.
func (m Metrics) Totals() ShardMetrics {
	t := ShardMetrics{Shard: -1}
	maxDur := func(dst *time.Duration, v time.Duration) {
		if v > *dst {
			*dst = v
		}
	}
	for _, s := range m.Shards {
		t.Instances += s.Instances
		t.QueueDepth += s.QueueDepth
		t.QueueCap += s.QueueCap
		t.CacheBytes += s.CacheBytes
		t.CacheBudget += s.CacheBudget
		t.Admitted += s.Admitted
		t.Rejected += s.Rejected
		t.Completed += s.Completed
		t.Failed += s.Failed
		t.Canceled += s.Canceled
		t.Expired += s.Expired
		t.Panicked += s.Panicked
		t.CacheHits += s.CacheHits
		t.CacheMisses += s.CacheMisses
		t.Evictions += s.Evictions
		t.PruneScanned += s.PruneScanned
		t.PrunePruned += s.PrunePruned
		maxDur(&t.LatencyP50, s.LatencyP50)
		maxDur(&t.LatencyP99, s.LatencyP99)
		maxDur(&t.QueueP50, s.QueueP50)
		maxDur(&t.QueueP99, s.QueueP99)
		maxDur(&t.ExecP50, s.ExecP50)
		maxDur(&t.ExecP99, s.ExecP99)
	}
	return t
}
