package ukc

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// Space is the metric-space abstraction every solver runs against: a metric
// d over points of type P satisfying the metric axioms. The two regimes of
// the paper are concrete Spaces — Euclidean{} over Vec, and *FiniteSpace
// over vertex indices — and the generic pipeline treats Euclidean space as a
// specialization of the same code path, not a parallel one.
type Space[P any] = metricspace.Space[P]

// Euclidean is R^d with the L2 metric; the zero value is ready to use. An
// Instance over this space unlocks the Euclidean-only machinery (expected
// points, the EP rule, the (1+ε) grid solver).
type Euclidean = metricspace.Euclidean

// UncertainPoint is an uncertain point over an arbitrary location type: a
// discrete distribution over locations of type P.
type UncertainPoint[P any] = uncertain.Point[P]

// Compiled is the immutable per-instance compiled representation every
// pipeline consumes: the uncertain-point model validated, pruned of
// zero-probability atoms, and flattened into one structure-of-arrays atom
// arena, plus memoized per-instance caches (both surrogate kinds, the
// distance-RV swap evaluator) that successive solves share. Obtain one with
// Instance.Compile; every Solver method compiles implicitly on first use.
// A Compiled is goroutine-safe and its caches live exactly as long as it
// does — drop the instance to release them.
type Compiled[P any] = core.Compiled[P]

// compileCell is the shared once-per-instance compilation cache. Every copy
// of an Instance made after construction aliases the same cell, so a batch
// pool, a solver and a direct Compile call all observe one compiled model.
type compileCell[P any] struct {
	mu sync.Mutex
	c  *core.Compiled[P]
}

// Instance is one uncertain k-center problem instance: a set of uncertain
// points in a metric space, plus the candidate set discrete algorithms draw
// centers and surrogates from.
//
// Candidates may be nil in Euclidean space (continuous constructions exist
// there; discrete solvers then search the surrogate set). Outside Euclidean
// space a candidate set is required — use NewFiniteInstance or
// NewGraphInstance, which default it to all space points.
//
// An instance built by a constructor carries a shared compilation cache:
// the first solve (or explicit Compile call) validates, prunes and flattens
// the points once, and every later solve — from any goroutine, any Solver,
// or a Batch pool — reuses that compiled model and its memoized caches.
// Consequently the Space, Points and Candidates fields must be treated as
// immutable after the first solve; mutating them afterwards leaves the
// cache describing data that no longer exists. Instances assembled as bare
// struct literals (without a constructor) still work everywhere but compile
// per call, uncached.
type Instance[P any] struct {
	// Space is the metric the instance lives in.
	Space Space[P]
	// Points are the uncertain input points.
	Points []UncertainPoint[P]
	// Candidates is the center/surrogate search space for discrete
	// algorithms (exact discrete k-center, k-median, unassigned local
	// search, discrete 1-center surrogates).
	Candidates []P

	cc *compileCell[P]
}

// NewInstance assembles an instance over an arbitrary metric space.
func NewInstance[P any](space Space[P], pts []UncertainPoint[P], candidates []P) Instance[P] {
	return Instance[P]{Space: space, Points: pts, Candidates: candidates, cc: &compileCell[P]{}}
}

// NewEuclideanInstance wraps Euclidean uncertain points as an instance over
// R^d with no explicit candidate set; solvers that need one default to all
// point locations.
func NewEuclideanInstance(pts []Point) Instance[Vec] {
	return Instance[Vec]{Space: Euclidean{}, Points: pts, cc: &compileCell[Vec]{}}
}

// NewFiniteInstance wraps points over a finite metric space; a nil
// candidates defaults to all space points, the natural candidate set.
func NewFiniteInstance(space *FiniteSpace, pts []FinitePoint, candidates []int) Instance[int] {
	if candidates == nil && space != nil {
		candidates = space.Points()
	}
	return Instance[int]{Space: space, Points: pts, Candidates: candidates, cc: &compileCell[int]{}}
}

// NewGraphInstance derives the shortest-path metric of g and wraps points
// over its vertices as a finite instance with all vertices as candidates.
func NewGraphInstance(g *Graph, pts []FinitePoint) (Instance[int], error) {
	if g == nil {
		return Instance[int]{}, fmt.Errorf("ukc: nil graph")
	}
	space, err := g.Metric()
	if err != nil {
		return Instance[int]{}, err
	}
	return NewFiniteInstance(space, pts, nil), nil
}

// newCompiledInstance wraps an already-compiled model as an instance whose
// cache is pre-populated (the dataio compiled loaders use it).
func newCompiledInstance[P any](c *core.Compiled[P]) Instance[P] {
	return Instance[P]{
		Space:      c.Space(),
		Points:     c.Points(),
		Candidates: c.Candidates(),
		cc:         &compileCell[P]{c: c},
	}
}

// InstanceOf wraps an already-compiled model as an Instance whose compile
// cache is pre-populated: every Solver method called on the result consumes
// c directly, with no re-validation and no second compile. The serving
// layer (package serve) uses it to pin each registered instance to the one
// compiled model whose caches it meters and evicts.
func InstanceOf[P any](c *Compiled[P]) (Instance[P], error) {
	if c == nil {
		return Instance[P]{}, fmt.Errorf("ukc: InstanceOf(nil)")
	}
	return newCompiledInstance(c), nil
}

// Compile returns the instance's compiled representation, building it on
// first use: one validation pass (structural invariants, probability sums,
// Euclidean dimension agreement), zero-probability-atom pruning, and the
// flat atom arena every pipeline consumes. The result is cached in the
// instance (all copies of this instance share it) and reused by every
// Solver method, so repeated solves pay compilation once. Concurrent first
// calls are serialized; a call canceled mid-compile leaves the cache empty
// for the next caller. Instances assembled without a constructor have no
// cache cell and compile fresh on every call.
func (in Instance[P]) Compile(ctx context.Context) (*Compiled[P], error) {
	if in.cc == nil {
		return core.Compile(ctx, in.Space, in.Points, in.Candidates)
	}
	in.cc.mu.Lock()
	defer in.cc.mu.Unlock()
	if in.cc.c != nil {
		return in.cc.c, nil
	}
	c, err := core.Compile(ctx, in.Space, in.Points, in.Candidates)
	if err != nil {
		return nil, err
	}
	in.cc.c = c
	return c, nil
}

// N returns the number of uncertain points.
func (in Instance[P]) N() int { return len(in.Points) }

// MaxZ returns z = max_i z_i, the largest support size of any point
// (counted over the raw input, before zero-probability pruning).
func (in Instance[P]) MaxZ() int { return uncertain.MaxZ(in.Points) }

// TotalLocations returns N = Σ_i z_i, the instance's total support size
// (counted over the raw input, before zero-probability pruning).
func (in Instance[P]) TotalLocations() int { return uncertain.TotalLocations(in.Points) }

// IsEuclidean reports whether the instance lives in Euclidean space — the
// regime where expected points, the EP rule and the (1+ε) solver exist.
func (in Instance[P]) IsEuclidean() bool {
	_, ok := any(in.Space).(Euclidean)
	return ok
}

// Validate checks the structural invariants: a non-nil space, a nonempty
// valid point set, and (in Euclidean space) agreeing coordinate dimensions.
// Validation is the first stage of compilation, so a successful Validate
// caches the compiled model and later solves skip both.
func (in Instance[P]) Validate() error {
	_, err := in.Compile(context.Background())
	return err
}
