package ukc

import (
	"fmt"

	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// Space is the metric-space abstraction every solver runs against: a metric
// d over points of type P satisfying the metric axioms. The two regimes of
// the paper are concrete Spaces — Euclidean{} over Vec, and *FiniteSpace
// over vertex indices — and the generic pipeline treats Euclidean space as a
// specialization of the same code path, not a parallel one.
type Space[P any] = metricspace.Space[P]

// Euclidean is R^d with the L2 metric; the zero value is ready to use. An
// Instance over this space unlocks the Euclidean-only machinery (expected
// points, the EP rule, the (1+ε) grid solver).
type Euclidean = metricspace.Euclidean

// UncertainPoint is an uncertain point over an arbitrary location type: a
// discrete distribution over locations of type P.
type UncertainPoint[P any] = uncertain.Point[P]

// Instance is one uncertain k-center problem instance: a set of uncertain
// points in a metric space, plus the candidate set discrete algorithms draw
// centers and surrogates from.
//
// Candidates may be nil in Euclidean space (continuous constructions exist
// there; discrete solvers then search the surrogate set). Outside Euclidean
// space a candidate set is required — use NewFiniteInstance or
// NewGraphInstance, which default it to all space points.
type Instance[P any] struct {
	// Space is the metric the instance lives in.
	Space Space[P]
	// Points are the uncertain input points.
	Points []UncertainPoint[P]
	// Candidates is the center/surrogate search space for discrete
	// algorithms (exact discrete k-center, k-median, unassigned local
	// search, discrete 1-center surrogates).
	Candidates []P
}

// NewInstance assembles an instance over an arbitrary metric space.
func NewInstance[P any](space Space[P], pts []UncertainPoint[P], candidates []P) Instance[P] {
	return Instance[P]{Space: space, Points: pts, Candidates: candidates}
}

// NewEuclideanInstance wraps Euclidean uncertain points as an instance over
// R^d with no explicit candidate set; solvers that need one default to all
// point locations.
func NewEuclideanInstance(pts []Point) Instance[Vec] {
	return Instance[Vec]{Space: Euclidean{}, Points: pts}
}

// NewFiniteInstance wraps points over a finite metric space; a nil
// candidates defaults to all space points, the natural candidate set.
func NewFiniteInstance(space *FiniteSpace, pts []FinitePoint, candidates []int) Instance[int] {
	if candidates == nil && space != nil {
		candidates = space.Points()
	}
	return Instance[int]{Space: space, Points: pts, Candidates: candidates}
}

// NewGraphInstance derives the shortest-path metric of g and wraps points
// over its vertices as a finite instance with all vertices as candidates.
func NewGraphInstance(g *Graph, pts []FinitePoint) (Instance[int], error) {
	if g == nil {
		return Instance[int]{}, fmt.Errorf("ukc: nil graph")
	}
	space, err := g.Metric()
	if err != nil {
		return Instance[int]{}, err
	}
	return NewFiniteInstance(space, pts, nil), nil
}

// N returns the number of uncertain points.
func (in Instance[P]) N() int { return len(in.Points) }

// MaxZ returns z = max_i z_i, the largest support size of any point.
func (in Instance[P]) MaxZ() int { return uncertain.MaxZ(in.Points) }

// TotalLocations returns N = Σ_i z_i, the instance's total support size.
func (in Instance[P]) TotalLocations() int { return uncertain.TotalLocations(in.Points) }

// IsEuclidean reports whether the instance lives in Euclidean space — the
// regime where expected points, the EP rule and the (1+ε) solver exist.
func (in Instance[P]) IsEuclidean() bool {
	_, ok := any(in.Space).(Euclidean)
	return ok
}

// Validate checks the structural invariants: a non-nil space, a nonempty
// valid point set, and (in Euclidean space) agreeing coordinate dimensions.
func (in Instance[P]) Validate() error {
	if in.Space == nil {
		return fmt.Errorf("ukc: instance with nil space")
	}
	if err := uncertain.ValidateSet(in.Points); err != nil {
		return err
	}
	if eu, ok := any(in.Points).([]Point); ok && in.IsEuclidean() {
		if _, err := uncertain.CommonDim(eu); err != nil {
			return err
		}
	}
	return nil
}

// candidatesOrLocations returns the instance's candidate set, defaulting to
// the concatenation of all point locations — the natural discrete search
// space when none was given.
func (in Instance[P]) candidatesOrLocations() []P {
	if len(in.Candidates) > 0 {
		return in.Candidates
	}
	return uncertain.AllLocations(in.Points)
}
