package obs

// flight.go is the in-process flight recorder: a fixed-capacity,
// tail-sampled retention layer over the span stream. Where Recorder keeps
// every span forever (a test sink), FlightRecorder assembles completed
// spans into per-request trace trees and decides retention only once the
// outcome is known — Dapper-style tail sampling: traces that erred,
// panicked or ran slower than a threshold are always kept (up to a ring
// capacity), a small reservoir sample of the boring rest is kept for
// baseline comparison, and everything else is dropped with all of its
// spans.
//
// A trace is assembled by participants. Each Start call registers one
// participant — the serving layer's request handler, or a client call that
// shares the recorder in-process — under the trace named by the
// TraceContext: participants with the same TraceID join the same trace
// (the scatter-gather shape the distributed tier needs), and the trace
// completes when its last participant calls Finish. Spans recorded after
// completion (an abandoned request whose worker finishes late) are
// silently dropped.
//
// The disabled path is pinned like the nil tracer: every method on a nil
// *FlightRecorder or nil *ActiveTrace returns immediately — no clock read,
// no allocation (TestFlightRecorderDisabledAllocs, BenchmarkFlightRecorder).

import (
	"sync"
	"sync/atomic"
	"time"
)

// KeepReason says why a retained trace survived tail sampling.
type KeepReason string

const (
	// KeepError: a participant finished with a non-nil error (solver
	// failures and recovered panics both arrive this way).
	KeepError KeepReason = "error"
	// KeepSlow: the end-to-end duration met the latency threshold.
	KeepSlow KeepReason = "slow"
	// KeepSampled: a boring trace kept by the reservoir sample.
	KeepSampled KeepReason = "sampled"
)

// TraceSpan is one completed span inside an assembled trace. ParentID is
// zero for the trace root; Attrs follows the Tracer contract (integer-only,
// copied at record time).
type TraceSpan struct {
	SpanID   SpanID
	ParentID SpanID
	Name     string
	Instance string
	Start    time.Time
	Dur      time.Duration
	Attrs    []Attr
}

// End returns the span's completion time.
func (s TraceSpan) End() time.Time { return s.Start.Add(s.Dur) }

// Trace is one fully-assembled, retained trace tree.
type Trace struct {
	TraceID TraceID
	Start   time.Time     // earliest span start
	Dur     time.Duration // latest span end − earliest span start
	Err     string        // first participant error ("" when clean)
	Reason  KeepReason
	Spans   []TraceSpan // record order; roots carry a zero ParentID
	Dropped int         // spans discarded by the per-trace cap
}

// Span returns the first span with the given name and whether one exists.
func (t Trace) Span(name string) (TraceSpan, bool) {
	for _, s := range t.Spans {
		if s.Name == name {
			return s, true
		}
	}
	return TraceSpan{}, false
}

// HasInstance reports whether any span carries the instance label.
func (t Trace) HasInstance(instance string) bool {
	for _, s := range t.Spans {
		if s.Instance == instance {
			return true
		}
	}
	return false
}

// FlightConfig sizes a FlightRecorder. The zero value of any field selects
// its default; Reservoir and Threshold use -1 to mean "off" (0 keeps the
// default so an all-zero config is usable).
type FlightConfig struct {
	// Capacity bounds the ring of traces retained because they erred or ran
	// slow; the oldest is overwritten. Default 64.
	Capacity int
	// Reservoir is the number of boring (fast, clean) traces kept as a
	// uniform sample over everything seen since start. Default 8; -1 keeps
	// none.
	Reservoir int
	// Threshold is the end-to-end duration at or above which a trace is
	// always retained. Default 100ms; -1 disables latency-based retention.
	Threshold time.Duration
	// MaxSpans caps the spans assembled per trace; the excess is counted in
	// Trace.Dropped. Default 256.
	MaxSpans int
	// MaxActive caps concurrently-assembling traces; Start beyond it
	// returns an inert handle (counted in Stats.DroppedActive). Default 512.
	MaxActive int
	// Seed seeds the reservoir-sampling RNG (deterministic retention for
	// tests). Default 1.
	Seed int64
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.Capacity == 0 {
		c.Capacity = 64
	}
	switch {
	case c.Reservoir == 0:
		c.Reservoir = 8
	case c.Reservoir < 0:
		c.Reservoir = 0
	}
	switch {
	case c.Threshold == 0:
		c.Threshold = 100 * time.Millisecond
	case c.Threshold < 0:
		c.Threshold = 1<<63 - 1
	}
	if c.MaxSpans == 0 {
		c.MaxSpans = 256
	}
	if c.MaxActive == 0 {
		c.MaxActive = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FlightStats is a point-in-time view of a recorder's accounting.
type FlightStats struct {
	Started       uint64 // participants registered
	Completed     uint64 // traces fully assembled (last participant finished)
	KeptError     uint64 // retained because a participant erred
	KeptSlow      uint64 // retained by the latency threshold
	KeptSampled   uint64 // offered to the reservoir and currently... see Sampled
	Sampled       uint64 // boring traces offered to the reservoir
	DroppedActive uint64 // Start calls refused by the MaxActive cap
}

// FlightRecorder assembles spans into traces and tail-samples retention.
// Construct with NewFlightRecorder; a nil *FlightRecorder is the disabled
// recorder — every method is an allocation-free no-op.
type FlightRecorder struct {
	cfg FlightConfig

	mu     sync.Mutex
	active map[TraceID]*traceState
	kept   []*Trace // ring of error/slow traces; keptN counts insertions
	keptN  uint64
	res    []*Trace // reservoir of boring traces
	seen   uint64   // boring traces offered to the reservoir
	rng    uint64   // splitmix64 state for reservoir replacement

	started       atomic.Uint64
	completed     atomic.Uint64
	keptError     atomic.Uint64
	keptSlow      atomic.Uint64
	sampled       atomic.Uint64
	droppedActive atomic.Uint64
}

// NewFlightRecorder builds a recorder sized by cfg (zero fields select
// defaults; see FlightConfig).
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	return &FlightRecorder{
		cfg:    cfg,
		active: make(map[TraceID]*traceState),
		kept:   make([]*Trace, 0, cfg.Capacity),
		res:    make([]*Trace, 0, cfg.Reservoir),
		rng:    uint64(cfg.Seed),
	}
}

// traceState is one in-assembly trace, shared by its participants.
type traceState struct {
	rec *FlightRecorder
	id  TraceID

	mu      sync.Mutex
	refs    int
	done    bool
	spans   []TraceSpan
	dropped int
	err     string
}

// ActiveTrace is one participant's handle on an in-assembly trace: the
// serving layer holds one per admitted request, a recorder-sharing client
// one per call. The zero of usefulness — a nil handle, from a nil recorder
// or a full one — accepts every call as a no-op, so instrumentation points
// never branch on whether recording is on.
type ActiveTrace struct {
	st    *traceState
	root  SpanID
	start time.Time
}

// Start registers a participant for the trace named by tc (a fresh trace ID
// is generated when tc carries none) and opens its root span, parented on
// tc.SpanID — the remote caller's span when one propagated in. Participants
// starting with the same TraceID join the same trace; it is retained or
// dropped as one unit when the last participant finishes.
func (f *FlightRecorder) Start(tc TraceContext, name, instance string) *ActiveTrace {
	if f == nil {
		return nil
	}
	f.started.Add(1)
	id := tc.TraceID
	if id.IsZero() {
		id = NewTraceID()
	}
	f.mu.Lock()
	st := f.active[id]
	if st == nil {
		if len(f.active) >= f.cfg.MaxActive {
			f.mu.Unlock()
			f.droppedActive.Add(1)
			return nil
		}
		st = &traceState{rec: f, id: id}
		f.active[id] = st
	}
	st.mu.Lock()
	st.refs++
	st.mu.Unlock()
	f.mu.Unlock()

	at := &ActiveTrace{st: st, root: NewSpanID(), start: time.Now()}
	st.add(TraceSpan{SpanID: at.root, ParentID: tc.SpanID, Name: name, Instance: instance, Start: at.start})
	return at
}

// add appends a span under the per-trace cap (drops and counts beyond it,
// or after completion).
func (st *traceState) add(sp TraceSpan) {
	st.mu.Lock()
	if st.done || len(st.spans) >= st.rec.cfg.MaxSpans {
		st.dropped++
		st.mu.Unlock()
		return
	}
	st.spans = append(st.spans, sp)
	st.mu.Unlock()
}

// TraceID returns the trace's ID (zero on a nil handle).
func (a *ActiveTrace) TraceID() TraceID {
	if a == nil {
		return TraceID{}
	}
	return a.st.id
}

// RootID returns this participant's root span ID (zero on a nil handle).
func (a *ActiveTrace) RootID() SpanID {
	if a == nil {
		return SpanID{}
	}
	return a.root
}

// NewSpanID draws a span ID for a span whose children must know their
// parent before the span itself completes (the serving layer's exec span).
// Zero on a nil handle.
func (a *ActiveTrace) NewSpanID() SpanID {
	if a == nil {
		return SpanID{}
	}
	return NewSpanID()
}

// Record adds one completed span with an explicit ID and parent. attrs are
// copied. No-op on a nil handle.
func (a *ActiveTrace) Record(id, parent SpanID, name, instance string, start time.Time, dur time.Duration, attrs ...Attr) {
	if a == nil {
		return
	}
	var copied []Attr
	if len(attrs) > 0 {
		copied = append(copied, attrs...)
	}
	a.st.add(TraceSpan{SpanID: id, ParentID: parent, Name: name, Instance: instance, Start: start, Dur: dur, Attrs: copied})
}

// Add records a completed span under parent with a fresh ID, returning it.
// Zero ID on a nil handle.
func (a *ActiveTrace) Add(parent SpanID, name, instance string, start time.Time, dur time.Duration, attrs ...Attr) SpanID {
	if a == nil {
		return SpanID{}
	}
	id := NewSpanID()
	a.Record(id, parent, name, instance, start, dur, attrs...)
	return id
}

// Tracer returns a Tracer that assembles every reported span into the trace
// as a child of parent — the bridge that routes the solver's existing
// instrumentation (threaded by context, signatures untouched) into the
// trace tree. Nil on a nil handle, so the disabled recorder keeps contexts
// tracer-free.
func (a *ActiveTrace) Tracer(parent SpanID) Tracer {
	if a == nil {
		return nil
	}
	return traceTracer{st: a.st, parent: parent}
}

// traceTracer adapts the Tracer contract onto one trace's assembly.
type traceTracer struct {
	st     *traceState
	parent SpanID
}

func (t traceTracer) Span(name, instance string, start time.Time, dur time.Duration, attrs []Attr) {
	var copied []Attr
	if len(attrs) > 0 {
		copied = append(copied, attrs...)
	}
	t.st.add(TraceSpan{SpanID: NewSpanID(), ParentID: t.parent, Name: name, Instance: instance, Start: start, Dur: dur, Attrs: copied})
}

// Finish completes this participant: its root span's duration is stamped,
// err (when non-nil) marks the whole trace for retention, and when this was
// the last participant the assembled trace goes through the tail-sampling
// decision. No-op on a nil handle; must be called exactly once per Start.
func (a *ActiveTrace) Finish(err error) {
	if a == nil {
		return
	}
	st := a.st
	st.mu.Lock()
	for i := range st.spans {
		if st.spans[i].SpanID == a.root {
			st.spans[i].Dur = time.Since(a.start)
			break
		}
	}
	if err != nil && st.err == "" {
		st.err = err.Error()
	}
	st.refs--
	last := st.refs == 0 && !st.done
	if last {
		st.done = true
	}
	st.mu.Unlock()
	if last {
		st.rec.complete(st)
	}
}

// complete applies the retention policy to a fully-assembled trace.
func (f *FlightRecorder) complete(st *traceState) {
	f.completed.Add(1)
	st.mu.Lock()
	tr := &Trace{TraceID: st.id, Err: st.err, Spans: st.spans, Dropped: st.dropped}
	st.mu.Unlock()
	if len(tr.Spans) > 0 {
		start, end := tr.Spans[0].Start, tr.Spans[0].End()
		for _, s := range tr.Spans[1:] {
			if s.Start.Before(start) {
				start = s.Start
			}
			if e := s.End(); e.After(end) {
				end = e
			}
		}
		tr.Start, tr.Dur = start, end.Sub(start)
	}

	f.mu.Lock()
	delete(f.active, st.id)
	switch {
	case tr.Err != "":
		tr.Reason = KeepError
		f.keepLocked(tr)
		f.keptError.Add(1)
	case tr.Dur >= f.cfg.Threshold:
		tr.Reason = KeepSlow
		f.keepLocked(tr)
		f.keptSlow.Add(1)
	default:
		// Reservoir-sample the boring rest (algorithm R): the reservoir is
		// a uniform sample over every boring trace seen since start.
		tr.Reason = KeepSampled
		f.seen++
		f.sampled.Add(1)
		if len(f.res) < f.cfg.Reservoir {
			f.res = append(f.res, tr)
		} else if f.cfg.Reservoir > 0 {
			f.rng = f.rng*0x9e3779b97f4a7c15 + 1
			x := f.rng
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			if j := x % f.seen; j < uint64(f.cfg.Reservoir) {
				f.res[j] = tr
			}
		}
	}
	f.mu.Unlock()
}

// keepLocked inserts into the error/slow ring, overwriting the oldest.
func (f *FlightRecorder) keepLocked(tr *Trace) {
	if f.cfg.Capacity == 0 {
		return
	}
	if len(f.kept) < f.cfg.Capacity {
		f.kept = append(f.kept, tr)
	} else {
		f.kept[f.keptN%uint64(f.cfg.Capacity)] = tr
	}
	f.keptN++
}

// Traces snapshots every retained trace — the error/slow ring newest-first,
// then the reservoir sample newest-first. The returned traces are
// immutable; span slices are shared with the recorder and must not be
// modified. Nil-safe (empty on a disabled recorder).
func (f *FlightRecorder) Traces() []Trace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Trace, 0, len(f.kept)+len(f.res))
	// Ring in insertion order is kept[keptN-1], kept[keptN-2], ... modulo
	// capacity once wrapped.
	if n := len(f.kept); n > 0 {
		newest := int((f.keptN - 1) % uint64(cap(f.kept)))
		if f.keptN <= uint64(cap(f.kept)) {
			newest = n - 1
		}
		for i := 0; i < n; i++ {
			out = append(out, *f.kept[(newest-i+n)%n])
		}
	}
	for i := len(f.res) - 1; i >= 0; i-- {
		out = append(out, *f.res[i])
	}
	return out
}

// Stats returns the recorder's counters. Nil-safe.
func (f *FlightRecorder) Stats() FlightStats {
	if f == nil {
		return FlightStats{}
	}
	return FlightStats{
		Started:       f.started.Load(),
		Completed:     f.completed.Load(),
		KeptError:     f.keptError.Load(),
		KeptSlow:      f.keptSlow.Load(),
		Sampled:       f.sampled.Load(),
		DroppedActive: f.droppedActive.Load(),
	}
}
