// Package obs is the repository's dependency-free observability layer: a
// lightweight tracing contract (Tracer, Span) the core pipelines report
// phase timings through, and the atomic metric primitives (Counter, Gauge,
// Histogram) the serving layer aggregates request telemetry with.
//
// The design constraint is that instrumentation must cost nothing when
// nobody is listening: every hot path in internal/core carries span calls,
// and those calls must be branch-cheap and strictly allocation-free when no
// tracer is installed (pinned by TestSpanNilTracerAllocs and
// BenchmarkSpanNilTracer). StartSpan therefore returns an inert value span
// for a nil tracer — no time.Now call, no attribute storage, every method a
// nil-check and return — and attributes live in a fixed inline array so a
// live span allocates only at End, where the one slice handed to the tracer
// is built.
//
// Tracers are threaded two ways, which compose:
//
//   - explicitly: ukc.WithTracer installs one on a Solver, which stamps it
//     into the context of every solve it runs;
//   - ambiently: NewContext/FromContext carry a tracer through call chains
//     whose signatures predate tracing (core.Compile, the memoized cache
//     builds inside core.Compiled). The serving layer uses this to observe
//     cache rebuilds triggered by requests it executes.
//
// When both are present the solver merges them with Multi, so a
// server-installed tracer and a caller-installed one each see every span.
package obs

import (
	"context"
	"time"
)

// Attr is one integer span attribute. Spans carry only integers by design —
// counts, byte sizes, iteration numbers — so recording one never formats or
// allocates; real-valued quantities are scaled (see Micros).
type Attr struct {
	Key string
	Val int64
}

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Val: int64(v)} }

// Int64 builds an integer attribute from an int64.
func Int64(key string, v int64) Attr { return Attr{Key: key, Val: v} }

// Micros encodes a real-valued quantity as an integer attribute in
// micro-units (v·10⁶, truncated): the convention the core pipelines use to
// report E-cost trajectories through the integer-only attribute contract.
func Micros(key string, v float64) Attr { return Attr{Key: key, Val: int64(v * 1e6)} }

// Tracer receives completed spans from instrumented code. Implementations
// must be goroutine-safe: the solver's worker pools report concurrently.
//
// name identifies the instrumented region (e.g. "compile.validate",
// "evaluator.build", "ls.iter" — DESIGN.md §8 lists the vocabulary);
// instance is the serving-layer instance label when one is known ("" from
// library use — wrap with WithInstance to stamp one); attrs is valid only
// for the duration of the call and must be copied to be retained.
type Tracer interface {
	Span(name, instance string, start time.Time, dur time.Duration, attrs []Attr)
}

// maxSpanAttrs is the inline attribute capacity of a Span; attributes set
// beyond it are dropped (no instrumented site sets more than six).
const maxSpanAttrs = 8

// Span is one in-flight instrumented region, created by StartSpan and
// reported to the tracer by End. It is a value type with inline attribute
// storage: a span local to a function frame never heap-allocates, and a
// span started against a nil tracer is inert — every method returns
// immediately, without even reading the clock.
//
// A Span must not be shared between goroutines; instrumented code creates
// one per region per goroutine.
type Span struct {
	tr    Tracer
	name  string
	start time.Time
	n     int
	attrs [maxSpanAttrs]Attr
}

// StartSpan begins a named region against tr. A nil tr yields an inert span
// at no cost — the instrumented hot paths call this unconditionally.
func StartSpan(tr Tracer, name string) Span {
	if tr == nil {
		return Span{}
	}
	return Span{tr: tr, name: name, start: time.Now()}
}

// Int records an integer attribute on the span.
func (s *Span) Int(key string, v int) {
	s.Int64(key, int64(v))
}

// Int64 records an integer attribute on the span.
func (s *Span) Int64(key string, v int64) {
	if s.tr == nil || s.n >= maxSpanAttrs {
		return
	}
	s.attrs[s.n] = Attr{Key: key, Val: v}
	s.n++
}

// Micros records a real-valued attribute in micro-units (see Micros).
func (s *Span) Micros(key string, v float64) {
	if s.tr == nil {
		return
	}
	s.Int64(key, int64(v*1e6))
}

// End completes the span and reports it to the tracer. The attribute slice
// handed over is freshly allocated per call (the only allocation a live
// span performs), so tracers may retain it.
func (s *Span) End() {
	if s.tr == nil {
		return
	}
	attrs := make([]Attr, s.n)
	copy(attrs, s.attrs[:s.n])
	s.tr.Span(s.name, "", s.start, time.Since(s.start), attrs)
}

// instanceTracer stamps a fixed instance label onto every span; see
// WithInstance.
type instanceTracer struct {
	tr       Tracer
	instance string
}

func (t instanceTracer) Span(name, _ string, start time.Time, dur time.Duration, attrs []Attr) {
	t.tr.Span(name, t.instance, start, dur, attrs)
}

// WithInstance wraps tr so every span reports with the given instance
// label, overriding whatever the span carried. Library code below the
// serving layer does not know registry names, so its spans report with an
// empty instance; the serving layer wraps its per-entry tracers with this
// to attribute cache builds to the instance that triggered them. A nil tr
// stays nil.
func WithInstance(tr Tracer, instance string) Tracer {
	if tr == nil {
		return nil
	}
	return instanceTracer{tr: tr, instance: instance}
}

// multiTracer fans every span out to several tracers; see Multi.
type multiTracer []Tracer

func (m multiTracer) Span(name, instance string, start time.Time, dur time.Duration, attrs []Attr) {
	for _, tr := range m {
		tr.Span(name, instance, start, dur, attrs)
	}
}

// Multi combines tracers: every span is delivered to each, in order. Nil
// entries are dropped; zero live tracers yield nil (instrumentation stays
// free), one yields it unwrapped.
func Multi(trs ...Tracer) Tracer {
	live := make(multiTracer, 0, len(trs))
	for _, tr := range trs {
		if tr != nil {
			live = append(live, tr)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// ctxKey is the context key tracers travel under; zero-sized, so storing
// and looking it up never allocates.
type ctxKey struct{}

// NewContext returns ctx carrying tr, the ambient channel through which
// tracers reach call chains whose signatures predate tracing (core.Compile,
// the memoized cache builds). A nil tr returns ctx unchanged.
func NewContext(ctx context.Context, tr Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the tracer carried by ctx, or nil. The nil result is
// directly usable with StartSpan — untraced contexts keep instrumentation
// free.
func FromContext(ctx context.Context) Tracer {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(Tracer)
	return tr
}
