package obs

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// finishTrace starts a single-participant trace, records body spans via fn,
// and finishes with err.
func finishTrace(f *FlightRecorder, name string, err error, fn func(at *ActiveTrace)) TraceID {
	at := f.Start(TraceContext{}, name, "inst")
	if fn != nil {
		fn(at)
	}
	at.Finish(err)
	return at.TraceID()
}

func TestFlightRecorderKeepsErrors(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Reservoir: -1, Threshold: time.Hour})
	id := finishTrace(f, "req", errors.New("boom"), nil)
	finishTrace(f, "req", nil, nil) // boring, dropped

	traces := f.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID != id || tr.Reason != KeepError || tr.Err != "boom" {
		t.Fatalf("bad retained trace: %+v", tr)
	}
	st := f.Stats()
	if st.Started != 2 || st.Completed != 2 || st.KeptError != 1 || st.Sampled != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFlightRecorderKeepsSlow(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Reservoir: -1, Threshold: time.Nanosecond})
	id := finishTrace(f, "req", nil, func(at *ActiveTrace) {
		time.Sleep(time.Millisecond)
	})
	traces := f.Traces()
	if len(traces) != 1 || traces[0].TraceID != id || traces[0].Reason != KeepSlow {
		t.Fatalf("slow trace not retained: %+v", traces)
	}
	if traces[0].Dur < time.Millisecond {
		t.Fatalf("trace duration %v too small", traces[0].Dur)
	}
}

func TestFlightRecorderFastNotRetained(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Reservoir: -1, Threshold: time.Hour})
	finishTrace(f, "req", nil, nil)
	if traces := f.Traces(); len(traces) != 0 {
		t.Fatalf("fast clean trace retained: %+v", traces)
	}
}

func TestFlightRecorderReservoir(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Reservoir: 4, Threshold: time.Hour, Seed: 7})
	for i := 0; i < 100; i++ {
		finishTrace(f, "req", nil, nil)
	}
	traces := f.Traces()
	if len(traces) != 4 {
		t.Fatalf("reservoir holds %d, want 4", len(traces))
	}
	for _, tr := range traces {
		if tr.Reason != KeepSampled {
			t.Fatalf("reservoir trace has reason %q", tr.Reason)
		}
	}
	if st := f.Stats(); st.Sampled != 100 {
		t.Fatalf("sampled count %d, want 100", st.Sampled)
	}
}

func TestFlightRecorderRingWraps(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Capacity: 3, Reservoir: -1, Threshold: time.Hour})
	for i := 0; i < 5; i++ {
		finishTrace(f, fmt.Sprintf("req%d", i), errors.New("e"), nil)
	}
	traces := f.Traces()
	if len(traces) != 3 {
		t.Fatalf("ring holds %d, want 3", len(traces))
	}
	// Newest first: req4, req3, req2.
	for i, want := range []string{"req4", "req3", "req2"} {
		if traces[i].Spans[0].Name != want {
			t.Fatalf("ring[%d] = %q, want %q", i, traces[i].Spans[0].Name, want)
		}
	}
}

func TestFlightRecorderJoin(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Reservoir: -1, Threshold: time.Hour})
	client := f.Start(TraceContext{}, "client.attempt", "")
	tc := TraceContext{TraceID: client.TraceID(), SpanID: client.RootID()}
	server := f.Start(tc, "serve.request", "inst")
	if server.TraceID() != client.TraceID() {
		t.Fatal("participants did not join the same trace")
	}
	server.Finish(nil)
	if len(f.Traces()) != 0 {
		t.Fatal("trace completed before last participant finished")
	}
	client.Finish(errors.New("late failure"))

	traces := f.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if len(tr.Spans) != 2 {
		t.Fatalf("joined trace has %d spans, want 2", len(tr.Spans))
	}
	srv, ok := tr.Span("serve.request")
	if !ok || srv.ParentID != client.RootID() {
		t.Fatalf("server root not parented on client span: %+v", srv)
	}
}

func TestFlightRecorderDropsAfterFinish(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Reservoir: -1, Threshold: time.Hour})
	at := f.Start(TraceContext{}, "req", "")
	tracer := at.Tracer(at.RootID())
	at.Finish(errors.New("gone"))
	// A late worker reporting after completion must not corrupt the trace.
	at.Record(NewSpanID(), at.RootID(), "late", "", time.Now(), time.Millisecond)
	tracer.Span("later", "", time.Now(), time.Millisecond, nil)

	traces := f.Traces()
	if len(traces) != 1 || len(traces[0].Spans) != 1 {
		t.Fatalf("late spans leaked into completed trace: %+v", traces)
	}
}

func TestFlightRecorderMaxSpans(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Reservoir: -1, Threshold: time.Hour, MaxSpans: 3})
	finishTrace(f, "req", errors.New("e"), func(at *ActiveTrace) {
		for i := 0; i < 5; i++ {
			at.Add(at.RootID(), "child", "", time.Now(), time.Microsecond)
		}
	})
	tr := f.Traces()[0]
	if len(tr.Spans) != 3 || tr.Dropped != 3 {
		t.Fatalf("spans=%d dropped=%d, want 3/3", len(tr.Spans), tr.Dropped)
	}
}

func TestFlightRecorderMaxActive(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{MaxActive: 1})
	a := f.Start(TraceContext{}, "a", "")
	b := f.Start(TraceContext{}, "b", "")
	if b != nil {
		t.Fatal("Start beyond MaxActive returned a live handle")
	}
	b.Finish(nil) // nil-safe
	a.Finish(nil)
	if st := f.Stats(); st.DroppedActive != 1 {
		t.Fatalf("droppedActive = %d, want 1", st.DroppedActive)
	}
	// Joining an existing trace is exempt from the cap.
	a2 := f.Start(TraceContext{}, "a2", "")
	j := f.Start(TraceContext{TraceID: a2.TraceID()}, "join", "")
	if j == nil {
		t.Fatal("join refused by MaxActive cap")
	}
	j.Finish(nil)
	a2.Finish(nil)
}

func TestFlightRecorderTracerAssembles(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Reservoir: -1, Threshold: time.Hour})
	var execID SpanID
	finishTrace(f, "req", errors.New("e"), func(at *ActiveTrace) {
		execID = at.NewSpanID()
		tr := at.Tracer(execID)
		start := time.Now()
		tr.Span("ls.descent", "inst", start, time.Millisecond, []Attr{{Key: "iters", Val: 3}})
		at.Record(execID, at.RootID(), "serve.exec", "inst", start, 2*time.Millisecond)
	})
	tr := f.Traces()[0]
	ls, ok := tr.Span("ls.descent")
	if !ok || ls.ParentID != execID || len(ls.Attrs) != 1 || ls.Attrs[0].Key != "iters" {
		t.Fatalf("solver span not assembled under exec: %+v", ls)
	}
	exec, ok := tr.Span("serve.exec")
	if !ok || exec.SpanID != execID {
		t.Fatalf("exec span missing: %+v", exec)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	at := f.Start(TraceContext{}, "req", "")
	if at != nil {
		t.Fatal("nil recorder returned a handle")
	}
	if !at.TraceID().IsZero() || !at.RootID().IsZero() || !at.NewSpanID().IsZero() {
		t.Fatal("nil handle returned non-zero IDs")
	}
	if at.Tracer(SpanID{}) != nil {
		t.Fatal("nil handle returned a tracer")
	}
	at.Record(SpanID{}, SpanID{}, "x", "", time.Time{}, 0)
	at.Add(SpanID{}, "x", "", time.Time{}, 0)
	at.Finish(nil)
	if tr := f.Traces(); tr != nil {
		t.Fatal("nil recorder returned traces")
	}
	if st := f.Stats(); st != (FlightStats{}) {
		t.Fatal("nil recorder returned stats")
	}
}

func TestFlightRecorderDisabledAllocs(t *testing.T) {
	var f *FlightRecorder
	allocs := testing.AllocsPerRun(1000, func() {
		at := f.Start(TraceContext{}, "req", "inst")
		_ = at.NewSpanID()
		_ = at.Tracer(SpanID{})
		at.Record(SpanID{}, SpanID{}, "x", "", time.Time{}, 0)
		at.Finish(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled flight recorder path allocates: %v allocs/op", allocs)
	}
}
