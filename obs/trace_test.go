package obs

import (
	"context"
	"strings"
	"testing"
)

func TestNewIDsNonZeroAndDistinct(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("NewTraceID returned zero")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
	spans := map[SpanID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if id.IsZero() {
			t.Fatal("NewSpanID returned zero")
		}
		if spans[id] {
			t.Fatalf("duplicate span ID %s", id)
		}
		spans[id] = true
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	h := tc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("bad traceparent %q", h)
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v want %+v", got, tc)
	}

	tc.Sampled = false
	got, err = ParseTraceparent(tc.Traceparent())
	if err != nil || got.Sampled {
		t.Fatalf("unsampled round trip: %+v err=%v", got, err)
	}
}

func TestTraceparentZeroSpanSubstituted(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID()}
	got, err := ParseTraceparent(tc.Traceparent())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.TraceID != tc.TraceID || got.SpanID.IsZero() {
		t.Fatalf("zero SpanID must be replaced on the wire: %+v", got)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID()}.Traceparent()
	cases := map[string]string{
		"empty":      "",
		"short":      valid[:54],
		"long":       valid + "0",
		"bad dash":   valid[:35] + "_" + valid[36:],
		"version 01": "01" + valid[2:],
		"version ff": "ff" + valid[2:],
		"bad hex":    valid[:3] + "zz" + valid[5:],
		"zero trace": "00-00000000000000000000000000000000-" + valid[36:],
		"zero span":  valid[:36] + "0000000000000000" + valid[52:],
	}
	for name, h := range cases {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, h)
		}
	}
	if _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
}

func TestContextWithTrace(t *testing.T) {
	ctx := context.Background()
	if tc := TraceFromContext(ctx); tc.Valid() {
		t.Fatalf("empty context carried a trace: %+v", tc)
	}
	want := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	ctx = ContextWithTrace(ctx, want)
	if got := TraceFromContext(ctx); got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
	// Invalid contexts are not stored.
	base := context.Background()
	if ctx2 := ContextWithTrace(base, TraceContext{}); ctx2 != base {
		t.Fatal("invalid trace context was stored")
	}
	if tc := TraceFromContext(nil); tc.Valid() {
		t.Fatal("nil context carried a trace")
	}
}
