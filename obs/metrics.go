package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonic atomic counter. The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: observation counts per bucket plus
// an exact sum and count, all updated atomically and lock-free. Buckets are
// fixed at construction — there is no dynamic resizing, which is what keeps
// Observe allocation-free — and the last bucket is an implicit +Inf
// overflow, so every observation lands somewhere.
//
// A Histogram is goroutine-safe. Snapshot is not atomic across fields: a
// snapshot taken during concurrent observation may see a sum slightly ahead
// of the bucket counts (or vice versa), which is the standard, harmless
// scrape race every lock-free histogram has.
type Histogram struct {
	bounds []float64       // ascending upper bounds; observations ≤ bounds[i] land in bucket i
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (e.g. seconds: 0.001, 0.01, 0.1, 1). Panics on zero or non-increasing
// bounds — bucket layouts are static configuration, not data.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// DurationBuckets is the bucket layout (in seconds) the serving layer uses
// for cache-build and request durations: 100µs to ~30s, roughly
// geometrically spaced — wide enough for a cold evaluator build on a large
// instance, fine enough to separate a warm microsecond path from a rebuild.
func DurationBuckets() []float64 {
	return []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}
}

// Observe records one value: its bucket count, the total count and the
// exact sum. Lock-free and allocation-free.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) = overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// BucketIndex returns the index of the bucket v falls in — the same index
// Observe(v) increments, with len(Bounds) meaning the +Inf overflow bucket.
// Exemplar attachment uses this to pin a trace ID to the bucket its latency
// landed in.
func (h *Histogram) BucketIndex(v float64) int {
	return sort.SearchFloat64s(h.bounds, v)
}

// HistogramSnapshot is a point-in-time copy of a histogram: the bucket
// bounds, per-bucket (non-cumulative) counts with the +Inf overflow last,
// and the exact sum and count of all observations.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, ascending; the final bucket's +Inf bound is implicit
	Counts []uint64  // len(Bounds)+1 per-bucket counts
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's current state; see the type comment for
// the (harmless) scrape race under concurrent observation.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction; safe to share
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
