package obs

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestSpanNilTracerAllocs pins the package's core contract: with no tracer
// installed, a fully-exercised span — start, attributes, end — performs
// zero allocations. Every instrumented hot path in internal/core relies on
// this.
func TestSpanNilTracerAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan(nil, "x")
		sp.Int("a", 1)
		sp.Int64("b", 2)
		sp.Micros("c", 3.5)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer span allocates %v allocs/op, want 0", allocs)
	}
}

// TestSpanNilTracerSkipsClock asserts the inert span never reads the clock:
// its start time stays zero.
func TestSpanNilTracerSkipsClock(t *testing.T) {
	sp := StartSpan(nil, "x")
	if !sp.start.IsZero() {
		t.Fatal("inert span read the clock")
	}
}

func TestSpanReportsToTracer(t *testing.T) {
	var rec Recorder
	sp := StartSpan(&rec, "region")
	sp.Int("count", 7)
	sp.Micros("ecost", 1.25)
	sp.End()

	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "region" || s.Instance != "" {
		t.Fatalf("span = %+v", s)
	}
	if v, ok := s.Attr("count"); !ok || v != 7 {
		t.Fatalf("count attr = %v, %v", v, ok)
	}
	if v, ok := s.Attr("ecost"); !ok || v != 1250000 {
		t.Fatalf("ecost attr = %v, %v (want micro-units)", v, ok)
	}
	if s.Dur < 0 {
		t.Fatalf("negative duration %v", s.Dur)
	}
}

// TestSpanAttrOverflow: attributes beyond the inline capacity are dropped,
// never reallocated.
func TestSpanAttrOverflow(t *testing.T) {
	var rec Recorder
	sp := StartSpan(&rec, "region")
	for i := 0; i < maxSpanAttrs+3; i++ {
		sp.Int("k", i)
	}
	sp.End()
	if got := len(rec.Spans()[0].Attrs); got != maxSpanAttrs {
		t.Fatalf("retained %d attrs, want %d", got, maxSpanAttrs)
	}
}

func TestWithInstance(t *testing.T) {
	var rec Recorder
	tr := WithInstance(&rec, "fleet")
	sp := StartSpan(tr, "evaluator.build")
	sp.End()
	if got := rec.Spans()[0].Instance; got != "fleet" {
		t.Fatalf("instance = %q, want fleet", got)
	}
	if WithInstance(nil, "fleet") != nil {
		t.Fatal("WithInstance(nil) must stay nil")
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi with no live tracers must be nil")
	}
	var a, b Recorder
	if got := Multi(nil, &a); got != Tracer(&a) {
		t.Fatal("Multi with one live tracer must unwrap it")
	}
	tr := Multi(&a, &b)
	sp := StartSpan(tr, "x")
	sp.End()
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Fatalf("fan-out reached %d/%d tracers", len(a.Spans()), len(b.Spans()))
	}
}

func TestContextThreading(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("background context must carry no tracer")
	}
	if FromContext(nil) != nil {
		t.Fatal("nil context must carry no tracer")
	}
	var rec Recorder
	ctx := NewContext(context.Background(), &rec)
	if FromContext(ctx) != Tracer(&rec) {
		t.Fatal("tracer did not round-trip through the context")
	}
	if got := NewContext(ctx, nil); got != ctx {
		t.Fatal("NewContext(nil tracer) must return ctx unchanged")
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Load() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Load())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// ≤1: {0.5, 1}; ≤10: {5, 10}; ≤100: {50, 100}; +Inf: {1000}.
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if math.Abs(s.Sum-1166.5) > 1e-9 {
		t.Fatalf("sum = %v, want 1166.5", s.Sum)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	h := NewHistogram(DurationBuckets()...)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.003) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v allocs/op, want 0", allocs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1)
	done := make(chan struct{})
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				h.Observe(0.5)
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	s := h.Snapshot()
	if s.Count != workers*per || s.Counts[0] != workers*per {
		t.Fatalf("count = %d bucket0 = %d, want %d", s.Count, s.Counts[0], workers*per)
	}
	if math.Abs(s.Sum-0.5*workers*per) > 1e-6 {
		t.Fatalf("sum = %v, want %v", s.Sum, 0.5*workers*per)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, bounds := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

// TestRecorderAttrsCopied: the recorder must copy the attr slice — the
// Tracer contract says attrs are valid only during the call.
func TestRecorderAttrsCopied(t *testing.T) {
	var rec Recorder
	attrs := []Attr{{Key: "a", Val: 1}}
	rec.Span("x", "", time.Now(), time.Millisecond, attrs)
	attrs[0].Val = 99
	if v, _ := rec.Spans()[0].Attr("a"); v != 1 {
		t.Fatalf("recorder aliased the caller's attrs (saw %d)", v)
	}
}
