package obs

import "testing"

// BenchmarkSpanNilTracer is the package's headline number: the cost of a
// fully-exercised instrumentation site when nobody is listening. The report
// must show 0 allocs/op — this is the contract the instrumented core hot
// paths (BenchmarkSwapIncremental, BenchmarkRepeatedSolve) depend on.
func BenchmarkSpanNilTracer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(nil, "region")
		sp.Int("count", i)
		sp.Micros("ecost", 1.5)
		sp.End()
	}
}

// BenchmarkSpanRecorder is the same site with a live tracer — the price a
// listener pays per span (one attr-slice allocation plus the recorder's
// bookkeeping).
func BenchmarkSpanRecorder(b *testing.B) {
	var rec Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(&rec, "region")
		sp.Int("count", i)
		sp.Micros("ecost", 1.5)
		sp.End()
		if i%1024 == 0 {
			rec.Reset() // bound the retained slice so the bench measures spans, not growth
		}
	}
}

// BenchmarkHistogramObserve: the serving layer calls this on every request.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DurationBuckets()...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 1000)
	}
}
