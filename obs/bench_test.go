package obs

import (
	"testing"
	"time"
)

// BenchmarkSpanNilTracer is the package's headline number: the cost of a
// fully-exercised instrumentation site when nobody is listening. The report
// must show 0 allocs/op — this is the contract the instrumented core hot
// paths (BenchmarkSwapIncremental, BenchmarkRepeatedSolve) depend on.
func BenchmarkSpanNilTracer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(nil, "region")
		sp.Int("count", i)
		sp.Micros("ecost", 1.5)
		sp.End()
	}
}

// BenchmarkSpanRecorder is the same site with a live tracer — the price a
// listener pays per span (one attr-slice allocation plus the recorder's
// bookkeeping).
func BenchmarkSpanRecorder(b *testing.B) {
	var rec Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan(&rec, "region")
		sp.Int("count", i)
		sp.Micros("ecost", 1.5)
		sp.End()
		if i%1024 == 0 {
			rec.Reset() // bound the retained slice so the bench measures spans, not growth
		}
	}
}

// BenchmarkHistogramObserve: the serving layer calls this on every request.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DurationBuckets()...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 1000)
	}
}

// BenchmarkFlightRecorder measures the three request-path states of the
// flight recorder: disabled (nil recorder — must report 0 allocs/op, the
// contract the nightly alloc pin enforces), enabled with the trace ending
// up unsampled (full assembly, then dropped), and enabled with the trace
// retained in the error ring.
func BenchmarkFlightRecorder(b *testing.B) {
	run := func(b *testing.B, f *FlightRecorder, err error) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			at := f.Start(TraceContext{}, "serve.request", "inst")
			execID := at.NewSpanID()
			at.Record(execID, at.RootID(), "serve.exec", "inst", time.Time{}, time.Microsecond)
			at.Finish(err)
		}
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, nil, nil)
	})
	b.Run("enabled-unsampled", func(b *testing.B) {
		run(b, NewFlightRecorder(FlightConfig{Reservoir: -1, Threshold: time.Hour}), nil)
	})
	b.Run("enabled-retained", func(b *testing.B) {
		run(b, NewFlightRecorder(FlightConfig{Reservoir: -1, Threshold: time.Hour}), errTest)
	})
}

var errTest = errBench("bench failure")

type errBench string

func (e errBench) Error() string { return string(e) }
