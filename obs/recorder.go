package obs

import (
	"sync"
	"time"
)

// SpanRecord is one completed span as retained by a Recorder.
type SpanRecord struct {
	Name     string
	Instance string
	Start    time.Time
	Dur      time.Duration
	Attrs    []Attr
}

// Attr returns the value of the named attribute and whether it is present.
func (r SpanRecord) Attr(key string) (int64, bool) {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// Recorder is a Tracer that retains every span in memory — the test and
// debugging sink (cmd/ukserver's -trace flag layers slog output over the
// same stream). Goroutine-safe; the zero value is ready to use.
type Recorder struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// Span implements Tracer.
func (r *Recorder) Span(name, instance string, start time.Time, dur time.Duration, attrs []Attr) {
	r.mu.Lock()
	r.spans = append(r.spans, SpanRecord{
		Name:     name,
		Instance: instance,
		Start:    start,
		Dur:      dur,
		Attrs:    append([]Attr(nil), attrs...),
	})
	r.mu.Unlock()
}

// Spans returns a copy of every recorded span, in completion order.
func (r *Recorder) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.spans...)
}

// Named returns the recorded spans with the given name, in completion order.
func (r *Recorder) Named(name string) []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SpanRecord
	for _, s := range r.spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Reset discards every recorded span.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.mu.Unlock()
}
