package obs

// trace.go is the identity layer under the flight recorder: 128-bit trace
// IDs and 64-bit span IDs in the W3C trace-context format, the traceparent
// header codec that carries them across process boundaries
// (client → gateway → serve), and the context plumbing that carries them
// within one. Everything here is allocation-free except String rendering,
// so the serving layer can thread identities through its hot path and only
// pay for formatting at snapshot/log time.

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// TraceID is a 128-bit trace identifier (W3C trace-context). The zero value
// means "no trace".
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is a 64-bit span identifier. The zero value means "no span" — a
// span with a zero ParentID is a trace root.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// idState is the process-global ID generator state: a splitmix64 walk
// seeded once from crypto/rand. One atomic add per ID — no lock, no
// syscall, no allocation on the generation path.
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		// A broken crypto/rand should not take the process down for the
		// sake of trace IDs; a fixed seed keeps them unique per process run
		// sequence, just not across processes.
		idState.Store(0x9e3779b97f4a7c15)
	}
}

// nextID draws the next 64-bit identifier word.
func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTraceID returns a fresh non-zero 128-bit trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		binary.BigEndian.PutUint64(t[:8], nextID())
		binary.BigEndian.PutUint64(t[8:], nextID())
	}
	return t
}

// NewSpanID returns a fresh non-zero 64-bit span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], nextID())
	}
	return s
}

// TraceContext is the propagated identity of one request: which trace it
// belongs to and which span on the sending side is its parent. The zero
// value means "no trace context".
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID // parent span on the sending side; zero for a local root
	Sampled bool   // the W3C sampled flag; informational (retention is tail-based here)
}

// Valid reports whether the context names a trace (the parent span may be
// zero for a locally-rooted trace).
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value:
// "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>". A zero SpanID is
// replaced with a fresh one — the wire format forbids all-zero parent IDs.
func (tc TraceContext) Traceparent() string {
	span := tc.SpanID
	if span.IsZero() {
		span = NewSpanID()
	}
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID.String() + "-" + span.String() + "-" + flags
}

// ParseTraceparent decodes a W3C traceparent header value. Unknown versions
// are rejected (only 00 is produced and understood), as are all-zero IDs and
// malformed hex — callers treat an error as "no incoming trace" and root a
// fresh one.
func ParseTraceparent(h string) (TraceContext, error) {
	var tc TraceContext
	// 2 (version) + 1 + 32 (trace) + 1 + 16 (span) + 1 + 2 (flags)
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tc, fmt.Errorf("obs: malformed traceparent %q", h)
	}
	if h[:2] != "00" {
		return tc, fmt.Errorf("obs: unsupported traceparent version %q", h[:2])
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(h[3:35])); err != nil {
		return tc, fmt.Errorf("obs: traceparent trace-id: %w", err)
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(h[36:52])); err != nil {
		return tc, fmt.Errorf("obs: traceparent parent-id: %w", err)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return tc, fmt.Errorf("obs: traceparent flags: %w", err)
	}
	if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
		return tc, fmt.Errorf("obs: traceparent carries a zero ID: %q", h)
	}
	tc.Sampled = flags[0]&1 != 0
	return tc, nil
}

// traceCtxKey is the context key trace contexts travel under; zero-sized,
// distinct from the tracer key.
type traceCtxKey struct{}

// ContextWithTrace returns ctx carrying tc — how a gateway hands the parsed
// incoming traceparent down to the serving layer without widening any
// signature. An invalid (zero-trace) tc returns ctx unchanged.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the trace context carried by ctx, or the zero
// TraceContext. The lookup never allocates.
func TraceFromContext(ctx context.Context) TraceContext {
	if ctx == nil {
		return TraceContext{}
	}
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}
