# Tier-1 verification targets. `make ci` is the gate: vet + build + test +
# race. The race target matters here: the solver's WithParallelism paths are
# required to be race-clean AND bit-identical to sequential runs.

GO ?= go

.PHONY: all vet build test test-race bench bench-parallel examples ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Full benchmark sweep (slow); bench-parallel records just the
# sequential-vs-worker-pool trajectory (BENCH_*.json inputs).
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

bench-parallel:
	$(GO) test -bench 'Parallel|Batch' -benchmem -run '^$$' .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sensornet
	$(GO) run ./examples/roadnetwork
	$(GO) run ./examples/adversarial
	$(GO) run ./examples/streaming

ci: vet build test test-race
