# Tier-1 verification targets. `make check` is the gate: vet + build +
# test + race (`make ci` is an alias). The race target matters here: the
# solver's WithParallelism paths are required to be race-clean AND
# bit-identical to sequential runs.

GO ?= go

# Perf-trajectory output of bench-json. Bump per PR so the repository
# accumulates a benchmark history (BENCH_PR3.json, BENCH_PR4.json, ...).
BENCH_OUT ?= BENCH_PR10.json

# Serving-layer trajectory output of bench-serve (the PR-5 tentpole):
# request throughput with warm-cache hit rate, serve-vs-direct overhead,
# and the warm unassigned workload.
SERVE_BENCH_OUT ?= BENCH_PR5.json

# Candidate-index trajectory output of bench-index (the PR-9 tentpole):
# the off/prune/approx scan sweep on the n=m=1000 instance, with ns/scan,
# prune_rate and cost_ratio reported per mode.
INDEX_BENCH_OUT ?= BENCH_PR9.json

.PHONY: all vet fmt-check build test test-race test-faults test-alloc-pins fuzz-arena fuzz-bound bench bench-parallel bench-json bench-serve bench-index examples check ci

all: check

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# test-faults is the nightly fault-injection sweep under the race
# detector: the seeded panic/error/latency soak through the serving layer,
# the drain lifecycle and Close/Register race, the torn-write quarantine
# torture test, and the client retry/circuit-breaker contract.
test-faults:
	$(GO) test -race -run 'Fault|Fire|Panic|Drain|Shutdown|Quarantine|TornWrite|CloseRegister|Breaker|Retry' \
		./serve ./internal/faults ./client ./cmd/ukserver

# test-alloc-pins is the nightly zero-cost-when-off gate: the nil tracer
# and the disabled flight recorder must add ZERO allocations to the paths
# they instrument. These tests run in `make test` too; the standalone
# target fails the nightly loudly and in isolation if an instrumentation
# change loses a nil guard.
test-alloc-pins:
	$(GO) test -v -run 'Allocs' ./obs ./serve

# fuzz-arena runs the snapshot decoder fuzzer for $(FUZZTIME): arbitrary
# bytes through the full .ukc validation pipeline (nightly CI).
FUZZTIME ?= 5m
fuzz-arena:
	$(GO) test -fuzz FuzzOpen -fuzztime $(FUZZTIME) -run '^$$' ./internal/arena

# fuzz-bound runs the candidate-index soundness fuzzer for $(FUZZTIME):
# random metric instances through LowerBound(base, c) ≤ EvalSwap(base, c) +
# 1e-12 — the inequality CandIndexPrune's bit-identical-trajectory claim
# rests on (nightly CI).
fuzz-bound:
	$(GO) test -fuzz FuzzLowerBound -fuzztime $(FUZZTIME) -run '^$$' ./internal/core

# Full benchmark sweep (slow); bench-parallel records just the
# sequential-vs-worker-pool trajectory (BENCH_*.json inputs).
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

bench-parallel:
	$(GO) test -bench 'Parallel|Batch' -benchmem -run '^$$' .

# bench-json records the perf trajectory as a test2json stream into
# $(BENCH_OUT): the parallel E-cost and unassigned-scan benches, the
# incremental-vs-scratch swap evaluator pair (the PR-3 tentpole's ≥5×
# claim), the compiled-vs-fresh repeated-solve pair (the PR-4 tentpole's
# amortization claim), the instrumentation-off-vs-on overhead pair (the
# PR-6 tentpole's zero-cost-default claim), the cold-JSON-load vs
# snapshot-open vs warm-solve curves (the PR-7 tentpole's
# restart-without-recompiling claim), and the flight-recorder triple —
# disabled / enabled-unsampled / enabled-retained (the PR-10 tentpole's
# tail-sampling cost curve; disabled must report 0 B/op, 0 allocs/op).
bench-json:
	$(GO) test -json -run '^$$' -benchmem \
		-bench 'BenchmarkUnassignedParallel$$|BenchmarkEcostParallel$$|BenchmarkSwapIncremental$$|BenchmarkRepeatedSolve$$|BenchmarkObsOverhead' \
		. > $(BENCH_OUT)
	$(GO) test -json -run '^$$' -benchmem -bench 'BenchmarkSnapshot' ./store >> $(BENCH_OUT)
	$(GO) test -json -run '^$$' -benchmem -bench 'BenchmarkFlightRecorder' ./obs >> $(BENCH_OUT)

# bench-serve records the serving-layer trajectory as a test2json stream
# into $(SERVE_BENCH_OUT): throughput through the sharded server in the
# warm-cache and forced-eviction regimes (hit-rate and evictions/op are
# reported from the server's own metrics), the per-request overhead over a
# direct Solver call, and the warm unassigned workload.
bench-serve:
	$(GO) test -json -run '^$$' -benchmem -bench 'BenchmarkServe' ./serve > $(SERVE_BENCH_OUT)

# bench-index records the candidate-index quality/speed curve into
# $(INDEX_BENCH_OUT): BenchmarkCandIndexScan/{off,prune,approx} on the
# n=m=1000 acceptance instance. The off row is the PR-3 oracle scan (the
# "old" side), prune/approx are the indexed scans (the "new" side); compare
# their ns/scan like a benchstat old-vs-new pair — same instance, same
# seeds, so the ratio is the per-scan speedup, prune_rate is the fraction
# of candidate evaluations the pivot bound skipped (acceptance floor 0.50,
# enforced inside the bench), and cost_ratio pins prune at exactly 1.0
# (bit-identical) while recording approx's quality trade.
bench-index:
	$(GO) test -json -run '^$$' -benchmem -benchtime 1x -bench 'BenchmarkCandIndexScan' . > $(INDEX_BENCH_OUT)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/sensornet
	$(GO) run ./examples/roadnetwork
	$(GO) run ./examples/adversarial
	$(GO) run ./examples/streaming
	$(GO) run ./examples/serving
	$(GO) run ./cmd/ukserver -selfcheck
	$(GO) run ./cmd/ukfreeze -selfcheck

check: vet fmt-check build test test-race

ci: check
