// Command ukfreeze converts a cmd/datagen JSON instance document into a
// zero-copy snapshot (package store's ".ukc" format): compile once offline,
// then every ukserver -snapshot-dir boot — and every store.Open — serves
// the instance without re-validating, re-flattening or re-parsing JSON.
//
//	ukfreeze -in fleet.json -out snapshots/fleet.ukc
//	ukfreeze -in fleet.json              # writes fleet.ukc next to the input
//	cat fleet.json | ukfreeze -in - -out fleet.ukc
//
// The document's "kind" field selects the Euclidean or finite-metric
// encoding, exactly as ukserver's registration endpoint does. After
// writing, ukfreeze reopens the snapshot and solves both the original and
// the reopened instance, failing unless the results are bit-identical —
// a freeze that cannot round-trip never exits zero (-no-verify skips this
// for very large instances).
//
// The -selfcheck flag runs the CI smoke path with no input: generate one
// instance of each kind, freeze, reopen, verify, and exit non-zero on any
// failure.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	ukc "repro"
	"repro/internal/dataio"
	"repro/internal/gen"
	"repro/internal/graphmetric"
	"repro/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ukfreeze:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "input instance document (cmd/datagen JSON; \"-\" = stdin)")
		out       = flag.String("out", "", "output snapshot path (default: input path with a .ukc extension)")
		k         = flag.Int("k", 2, "number of centers for the verification solve")
		noVerify  = flag.Bool("no-verify", false, "skip the reopen-and-solve verification pass")
		selfcheck = flag.Bool("selfcheck", false, "generate both instance kinds, freeze, reopen, verify, exit")
	)
	flag.Parse()

	if *selfcheck {
		return runSelfcheck(*k)
	}
	if *in == "" {
		return fmt.Errorf("missing -in (or -selfcheck)")
	}
	if *out == "" {
		if *in == "-" {
			return fmt.Errorf("-out is required when reading stdin")
		}
		*out = strings.TrimSuffix(*in, filepath.Ext(*in)) + store.SnapshotExt
	}

	var (
		doc []byte
		err error
	)
	if *in == "-" {
		doc, err = io.ReadAll(os.Stdin)
	} else {
		doc, err = os.ReadFile(*in)
	}
	if err != nil {
		return err
	}
	return freezeDoc(context.Background(), doc, *out, *k, !*noVerify)
}

// freezeDoc routes the document to the kind-typed freeze path, mirroring
// ukserver's registration sniff.
func freezeDoc(ctx context.Context, doc []byte, out string, k int, verify bool) error {
	var head struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(doc, &head); err != nil {
		return fmt.Errorf("parsing instance document: %w", err)
	}
	switch head.Kind {
	case dataio.KindEuclidean:
		inst, err := ukc.ReadCompiledInstance(bytes.NewReader(doc))
		if err != nil {
			return err
		}
		return freeze(ctx, inst, head.Kind, out, k, verify)
	case dataio.KindFinite:
		inst, err := ukc.ReadCompiledFiniteInstance(bytes.NewReader(doc))
		if err != nil {
			return err
		}
		return freeze(ctx, inst, head.Kind, out, k, verify)
	default:
		return fmt.Errorf("unknown instance kind %q", head.Kind)
	}
}

// freeze writes inst's snapshot and, when verify is set, reopens it and
// requires the frozen instance to solve bit-identically to the original —
// the persistence contract, checked on the operator's actual file.
func freeze[P any](ctx context.Context, inst ukc.Instance[P], kind, out string, k int, verify bool) error {
	c, err := inst.Compile(ctx)
	if err != nil {
		return err
	}
	n, err := store.Write(ctx, out, c)
	if err != nil {
		return err
	}
	status := "not verified (-no-verify)"
	if verify {
		if err := verifySnapshot(ctx, inst, out, k); err != nil {
			return fmt.Errorf("verifying %s: %w", out, err)
		}
		status = fmt.Sprintf("verified (k=%d solve bit-identical after reopen)", k)
	}
	fmt.Printf("ukfreeze: %s: %s, %d points, %d bytes, %s\n", out, kind, inst.N(), n, status)
	return nil
}

func verifySnapshot[P any](ctx context.Context, orig ukc.Instance[P], path string, k int) error {
	snap, err := store.Open(ctx, path)
	if err != nil {
		return err
	}
	c, ok := snap.Compiled().(*ukc.Compiled[P])
	if !ok {
		snap.Close()
		return fmt.Errorf("reopened snapshot has kind %s, not the frozen instance's", snap.Kind())
	}
	frozen, err := ukc.InstanceOf(c)
	if err != nil {
		snap.Close()
		return err
	}
	solver := ukc.NewSolver[P]()
	want, err := solver.Solve(ctx, orig, k)
	if err != nil {
		snap.Close()
		return fmt.Errorf("solving original: %w", err)
	}
	got, err := solver.Solve(ctx, frozen, k)
	if err != nil {
		snap.Close()
		return fmt.Errorf("solving frozen: %w", err)
	}
	// Compare before Close: for Euclidean instances the frozen result's
	// centers alias the mapped bytes, and reading them after the unmap
	// would be a use-after-free.
	same := reflect.DeepEqual(want, got)
	if err := snap.Close(); err != nil {
		return err
	}
	if !same {
		return fmt.Errorf("frozen solve diverges from the original:\noriginal %+v\nfrozen   %+v", want, got)
	}
	return nil
}

// runSelfcheck freezes one generated instance of each kind through the full
// CLI path (document bytes in, verified snapshot out) in a scratch dir.
func runSelfcheck(k int) error {
	dir, err := os.MkdirTemp("", "ukfreeze-selfcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rng := rand.New(rand.NewSource(1))
	ctx := context.Background()

	pts, err := gen.GaussianClusters(rng, 40, 4, 2, 3, 1, 0.4)
	if err != nil {
		return err
	}
	var euDoc bytes.Buffer
	if err := dataio.WriteEuclidean(&euDoc, pts); err != nil {
		return err
	}
	if err := freezeDoc(ctx, euDoc.Bytes(), filepath.Join(dir, "eu"+store.SnapshotExt), k, true); err != nil {
		return fmt.Errorf("euclidean: %w", err)
	}

	graph, _, err := graphmetric.RandomGeometric(30, 0.3, rng)
	if err != nil {
		return err
	}
	space, err := graph.Metric()
	if err != nil {
		return err
	}
	fpts, err := gen.OnVerticesLocal(rng, space, 20, 3)
	if err != nil {
		return err
	}
	var finDoc bytes.Buffer
	if err := dataio.WriteFinite(&finDoc, space, fpts); err != nil {
		return err
	}
	if err := freezeDoc(ctx, finDoc.Bytes(), filepath.Join(dir, "fin"+store.SnapshotExt), k, true); err != nil {
		return fmt.Errorf("finite: %w", err)
	}
	fmt.Println("selfcheck: ok")
	return nil
}
