package main

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataio"
	"repro/internal/gen"
	"repro/store"
)

// TestSelfcheck runs the full generate-freeze-reopen-verify path for both
// instance kinds — what `make examples` drives in CI.
func TestSelfcheck(t *testing.T) {
	if err := runSelfcheck(2); err != nil {
		t.Fatal(err)
	}
}

// TestFreezeDoc pins the CLI contract on a real document: the snapshot
// lands at the requested path, opens under the right kind, and a garbage
// kind is rejected before anything is written.
func TestFreezeDoc(t *testing.T) {
	dir := t.TempDir()
	pts, err := gen.GaussianClusters(rand.New(rand.NewSource(7)), 25, 3, 2, 2, 1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	var doc bytes.Buffer
	if err := dataio.WriteEuclidean(&doc, pts); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "inst"+store.SnapshotExt)
	if err := freezeDoc(context.Background(), doc.Bytes(), out, 2, true); err != nil {
		t.Fatalf("freezeDoc: %v", err)
	}
	snap, err := store.Open(context.Background(), out)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer snap.Close()
	if snap.Kind() != store.KindEuclidean {
		t.Fatalf("kind = %q, want euclidean", snap.Kind())
	}

	bad := filepath.Join(dir, "bad"+store.SnapshotExt)
	err = freezeDoc(context.Background(), []byte(`{"kind":"nope"}`), bad, 2, true)
	if err == nil || !strings.Contains(err.Error(), "unknown instance kind") {
		t.Fatalf("freezeDoc(bad kind) = %v, want unknown-kind error", err)
	}
	if _, statErr := os.Stat(bad); !os.IsNotExist(statErr) {
		t.Fatalf("rejected document left a file behind: %v", statErr)
	}
}
