// Command datagen emits synthetic uncertain k-center instances as JSON, for
// use with cmd/ukcenter and the examples.
//
// Usage:
//
//	datagen -workload gaussian -n 100 -z 4 -dim 2 -seed 1 -out instance.json
//	datagen -workload grid-graph -n 40 -z 3 -out graph.json
//
// Euclidean workloads: gaussian, bimodal, uniform, mixture1d.
// Finite workloads: grid-graph, geometric-graph, tree-graph.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dataio"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graphmetric"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload = flag.String("workload", "gaussian", "gaussian|bimodal|uniform|mixture1d|grid-graph|geometric-graph|tree-graph")
		n        = flag.Int("n", 50, "number of uncertain points")
		z        = flag.Int("z", 4, "locations per point")
		dim      = flag.Int("dim", 2, "dimension (Euclidean workloads)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output file (default stdout)")
		vertices = flag.Int("vertices", 49, "graph vertex count (graph workloads)")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *workload {
	case "gaussian", "bimodal", "uniform", "mixture1d":
		var pts []uncertain.Point[geom.Vec]
		var err error
		switch *workload {
		case "gaussian":
			pts, err = gen.GaussianClusters(rng, *n, *z, *dim, 4, 1, 0.4)
		case "bimodal":
			pts, err = gen.BimodalAdversarial(rng, *n, maxInt(*z, 2), *dim, 25)
		case "uniform":
			pts, err = gen.UniformBox(rng, *n, *z, *dim, 10)
		case "mixture1d":
			pts, err = gen.Mixture1D(rng, *n, *z, 4, 1.5)
		}
		if err != nil {
			return err
		}
		return dataio.WriteEuclidean(w, pts)
	case "grid-graph", "geometric-graph", "tree-graph":
		space, err := buildGraphMetric(rng, *workload, *vertices)
		if err != nil {
			return err
		}
		pts, err := gen.OnVerticesLocal(rng, space, *n, *z)
		if err != nil {
			return err
		}
		return dataio.WriteFinite(w, space, pts)
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}
}

func buildGraphMetric(rng *rand.Rand, kind string, vertices int) (*metricspace.Finite, error) {
	switch kind {
	case "grid-graph":
		side := 1
		for side*side < vertices {
			side++
		}
		g, err := graphmetric.GridGraph(side, side)
		if err != nil {
			return nil, err
		}
		return g.Metric()
	case "geometric-graph":
		g, _, err := graphmetric.RandomGeometric(vertices, 0.2, rng)
		if err != nil {
			return nil, err
		}
		return g.Metric()
	default:
		g, err := graphmetric.RandomTree(vertices, 0.5, 2, rng)
		if err != nil {
			return nil, err
		}
		return g.Metric()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
