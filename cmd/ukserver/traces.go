package main

// traces.go is the HTTP face of the flight recorder and the in-flight
// request table: GET /v1/traces serves the retained (tail-sampled) traces
// as JSON, filterable by instance, minimum duration and error-only; GET
// /v1/requests snapshots what both kind servers are doing right now. Both
// are debugging endpoints — cheap snapshots, no pagination, newest first.

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataio"
	"repro/obs"
	"repro/serve"
)

// spanOut is the wire shape of one span in a retained trace.
type spanOut struct {
	SpanID   string           `json:"span_id"`
	ParentID string           `json:"parent_id,omitempty"` // omitted on trace roots
	Name     string           `json:"name"`
	Instance string           `json:"instance,omitempty"`
	Start    time.Time        `json:"start"`
	DurUS    float64          `json:"dur_us"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
}

// traceOut is the wire shape of one retained trace.
type traceOut struct {
	TraceID string    `json:"trace_id"`
	Start   time.Time `json:"start"`
	DurMS   float64   `json:"dur_ms"`
	Err     string    `json:"error,omitempty"`
	Reason  string    `json:"reason"` // error | slow | sampled
	Dropped int       `json:"dropped_spans,omitempty"`
	Spans   []spanOut `json:"spans"`
}

func toTraceOut(tr obs.Trace) traceOut {
	out := traceOut{
		TraceID: tr.TraceID.String(),
		Start:   tr.Start,
		DurMS:   float64(tr.Dur.Microseconds()) / 1000,
		Err:     tr.Err,
		Reason:  string(tr.Reason),
		Dropped: tr.Dropped,
		Spans:   make([]spanOut, 0, len(tr.Spans)),
	}
	for _, sp := range tr.Spans {
		so := spanOut{
			SpanID:   sp.SpanID.String(),
			Name:     sp.Name,
			Instance: sp.Instance,
			Start:    sp.Start,
			DurUS:    float64(sp.Dur.Nanoseconds()) / 1000,
		}
		if !sp.ParentID.IsZero() {
			so.ParentID = sp.ParentID.String()
		}
		if len(sp.Attrs) > 0 {
			so.Attrs = make(map[string]int64, len(sp.Attrs))
			for _, a := range sp.Attrs {
				so.Attrs[a.Key] = a.Val
			}
		}
		out.Spans = append(out.Spans, so)
	}
	return out
}

// handleTraces serves the retained traces, newest first: the error/slow ring,
// then the reservoir sample. Query parameters: instance=<name> keeps traces
// touching that instance, min_ms=<float> keeps traces at least that long,
// error=true keeps only erred traces. A gateway without a recorder
// (-trace-retain 0) serves an empty list rather than a 404 — the endpoint's
// shape is stable across configurations.
func (g *gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var minDur time.Duration
	if s := q.Get("min_ms"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad min_ms %q", s))
			return
		}
		minDur = time.Duration(v * float64(time.Millisecond))
	}
	errOnly := false
	if s := q.Get("error"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad error filter %q", s))
			return
		}
		errOnly = v
	}
	instance := q.Get("instance")

	out := []traceOut{}
	for _, tr := range g.fr.Traces() {
		if instance != "" && !tr.HasInstance(instance) {
			continue
		}
		if tr.Dur < minDur {
			continue
		}
		if errOnly && tr.Err == "" {
			continue
		}
		out = append(out, toTraceOut(tr))
	}
	st := g.fr.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"traces": out,
		"stats": map[string]any{
			"started":        st.Started,
			"completed":      st.Completed,
			"kept_error":     st.KeptError,
			"kept_slow":      st.KeptSlow,
			"sampled":        st.Sampled,
			"dropped_active": st.DroppedActive,
		},
	})
}

// inflightOut is one /v1/requests row: a serve.InflightRequest stamped with
// its instance kind.
type inflightOut struct {
	Kind string `json:"kind"`
	serve.InflightRequest
}

// handleRequests snapshots the live in-flight request tables of both kind
// servers — every admitted request with its workload, instance, shard,
// queued-or-executing state, elapsed time and (when the flight recorder is
// on) trace ID. The snapshot never stops the world; see serve.Inflight.
func (g *gateway) handleRequests(w http.ResponseWriter, r *http.Request) {
	instance := r.URL.Query().Get("instance")
	out := []inflightOut{}
	for _, row := range g.eu.Inflight() {
		out = append(out, inflightOut{Kind: dataio.KindEuclidean, InflightRequest: row})
	}
	for _, row := range g.fin.Inflight() {
		out = append(out, inflightOut{Kind: dataio.KindFinite, InflightRequest: row})
	}
	if instance != "" {
		kept := out[:0]
		for _, row := range out {
			if row.Instance == instance {
				kept = append(kept, row)
			}
		}
		out = kept
	}
	writeJSON(w, http.StatusOK, map[string]any{"requests": out})
}

// traceSummary renders a one-line digest of a retained trace for selfcheck
// output: span names in record order.
func traceSummary(tr traceOut) string {
	names := make([]string, 0, len(tr.Spans))
	for _, sp := range tr.Spans {
		names = append(names, sp.Name)
	}
	return tr.TraceID[:8] + " [" + tr.Reason + "] " + strings.Join(names, " → ")
}
