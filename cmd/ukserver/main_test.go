package main

import (
	"bytes"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dataio"
	"repro/internal/gen"
	"repro/obs"
)

// TestSelfcheck runs the full CI smoke path in-process: every endpoint,
// both instance kinds, over real HTTP on a loopback port. The flight
// recorder runs at its production defaults so the trace-retention step is
// exercised, not skipped.
func TestSelfcheck(t *testing.T) {
	gw, err := newGateway(1, nil, obs.NewFlightRecorder(obs.FlightConfig{}), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	if err := gw.selfcheck(slog.New(slog.NewTextHandler(io.Discard, nil))); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	gw, err := newGateway(1, nil, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	ts := httptest.NewServer(gw.mux())
	defer ts.Close()

	pts, err := gen.GaussianClusters(rand.New(rand.NewSource(3)), 15, 3, 2, 2, 1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := dataio.WriteEuclidean(&body, pts); err != nil {
		t.Fatal(err)
	}
	doc := body.String()

	do := func(method, path, payload string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := do(http.MethodPut, "/v1/instances/a", doc); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	// Duplicate registration conflicts — including under the OTHER kind:
	// names are unique across kinds, or the router would shadow one copy.
	if resp := do(http.MethodPut, "/v1/instances/a", doc); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: %d, want 409", resp.StatusCode)
	}
	finDoc := `{"kind":"finite","metric":[[0,1],[1,0]],"finite_points":[{"locs":[0,1],"probs":[0.5,0.5]}]}`
	if resp := do(http.MethodPut, "/v1/instances/a", finDoc); resp.StatusCode != http.StatusConflict {
		t.Fatalf("cross-kind duplicate register: %d, want 409", resp.StatusCode)
	}
	// Garbage documents are unprocessable; garbage JSON is a bad request.
	if resp := do(http.MethodPut, "/v1/instances/b", `{"kind":"euclidean","points":[{"locs":[[1,2]],"probs":[0.2]}]}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid instance: %d, want 422", resp.StatusCode)
	}
	if resp := do(http.MethodPut, "/v1/instances/c", `{nope`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: %d, want 400", resp.StatusCode)
	}
	// deadline_ms 0 means "no per-request deadline": the solve succeeds.
	if resp := do(http.MethodPost, "/v1/solve", `{"instance":"a","k":2,"deadline_ms":0}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
	if resp := do(http.MethodPost, "/v1/ecost", `{"instance":"a"}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("ecost without centers: %d, want 422", resp.StatusCode)
	}
	if resp := do(http.MethodDelete, "/v1/instances/zzz", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unregister unknown: %d, want 404", resp.StatusCode)
	}
	// Freezing without a snapshot directory is a configuration conflict, not
	// a not-found: the instance exists, the server just has nowhere to put it.
	if resp := do(http.MethodPost, "/v1/instances/a/freeze", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("freeze without snapshot dir: %d, want 409", resp.StatusCode)
	}
}

// TestFreezeNameSanitization pins that a percent-encoded path separator in
// the instance name cannot direct the snapshot outside the directory.
func TestFreezeNameSanitization(t *testing.T) {
	gw, err := newGateway(1, nil, nil, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	ts := httptest.NewServer(gw.mux())
	defer ts.Close()
	for _, name := range []string{"%2e%2e", "..%2fescape", "a%2fb"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/instances/"+name+"/freeze", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("freeze %q: %d, want 400", name, resp.StatusCode)
		}
	}
}
