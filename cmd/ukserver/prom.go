package main

// prom.go renders the serving layer's Collect walk into the Prometheus
// text exposition format (text/plain; version 0.0.4) with no client
// library: the vocabulary is small and fully known (see serve.Collect),
// so a hand-rolled writer — family grouping, TYPE inference from the name
// suffix, label escaping, deterministic ordering — is ~100 lines and keeps
// the binary dependency-free. parsePromText is the inverse used by
// -selfcheck and the golden test to assert the exposition stays valid.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promSample is one exposition line: name{labels} value, optionally with an
// OpenMetrics exemplar appended (# {labels} value).
type promSample struct {
	name     string
	labels   map[string]string
	value    float64
	exemplar *promExemplar
}

// promExemplar is an OpenMetrics exemplar: a concrete observation (and the
// trace it belongs to) attached to the histogram bucket it landed in, so a
// dashboard's p99 spike links straight to a retained trace.
type promExemplar struct {
	labels map[string]string // typically {"trace_id": "..."}
	value  float64
}

// promCollector accumulates samples across Collect walks (one per instance
// kind, each stamped with a kind label) for a single rendering pass.
type promCollector struct {
	samples []promSample
	hist    map[string]bool // family name -> has histogram-suffixed series
}

func newPromCollector() *promCollector {
	return &promCollector{hist: make(map[string]bool)}
}

// add returns a serve.Collect callback stamping every sample with the kind
// label. The label map is mutated in place — Collect guarantees a fresh map
// per sample.
func (p *promCollector) add(kind string) func(name string, labels map[string]string, value float64) {
	return func(name string, labels map[string]string, value float64) {
		if kind != "" {
			labels["kind"] = kind
		}
		if fam := promFamily(name); fam != name {
			p.hist[fam] = true
		}
		p.samples = append(p.samples, promSample{name: name, labels: labels, value: value})
	}
}

// sample appends one sample directly (runtime/HTTP metrics the serve.Collect
// walk does not produce), optionally with an exemplar.
func (p *promCollector) sample(name string, labels map[string]string, value float64, ex *promExemplar) {
	if fam := promFamily(name); fam != name {
		p.hist[fam] = true
	}
	p.samples = append(p.samples, promSample{name: name, labels: labels, value: value, exemplar: ex})
}

// promFamily strips the histogram series suffixes; for scalar series the
// family is the name itself.
func promFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// promType infers the family's TYPE from its name: histogram when any
// suffixed series was seen, counter on the _total convention, else gauge.
func (p *promCollector) promType(family string) string {
	switch {
	case p.hist[family]:
		return "histogram"
	case strings.HasSuffix(family, "_total"):
		return "counter"
	default:
		return "gauge"
	}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// renderLabels produces the sorted {k="v",...} block ("" when empty).
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// Manual quoting, not %q: Go quoting escapes non-ASCII, while the
		// exposition format wants raw UTF-8 with only \, " and newline
		// escaped.
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// write renders the accumulated samples: families sorted by name, one TYPE
// header each, samples within a family sorted by their rendered label block
// — deterministic output, which is what makes a golden test possible.
func (p *promCollector) write(w io.Writer) error {
	byFamily := map[string][]promSample{}
	for _, s := range p.samples {
		fam := promFamily(s.name)
		byFamily[fam] = append(byFamily[fam], s)
	}
	families := make([]string, 0, len(byFamily))
	for fam := range byFamily {
		families = append(families, fam)
	}
	sort.Strings(families)
	for _, fam := range families {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, p.promType(fam)); err != nil {
			return err
		}
		lines := make([]string, 0, len(byFamily[fam]))
		for _, s := range byFamily[fam] {
			line := fmt.Sprintf("%s%s %s", s.name, renderLabels(s.labels), strconv.FormatFloat(s.value, 'g', -1, 64))
			if s.exemplar != nil {
				line += fmt.Sprintf(" # %s %s", renderLabels(s.exemplar.labels), strconv.FormatFloat(s.exemplar.value, 'g', -1, 64))
			}
			lines = append(lines, line)
		}
		sort.Strings(lines)
		for _, line := range lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// parsePromText parses an exposition document back into samples keyed by
// series name. It accepts exactly the subset write produces (plus blank
// lines and arbitrary comments) and errors on anything malformed — the
// selfcheck uses it to prove the endpoint serves parseable output.
func parsePromText(r io.Reader) (map[string][]promSample, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := map[string][]promSample{}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" && len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out[s.name] = append(out[s.name], s)
	}
	return out, nil
}

func parsePromLine(line string) (promSample, error) {
	var s promSample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		// Quote-aware scan, not LastIndexByte: an exemplar suffix carries a
		// second label block, and '}' may legitimately appear inside a quoted
		// label value.
		end := labelBlockEnd(rest, i+1)
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		labels, err := parsePromLabels(rest[i+1 : end])
		if err != nil {
			return s, err
		}
		s.labels = labels
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("want 'name value', got %q", line)
		}
		s.name, rest = fields[0], strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
	}
	// Tolerate (and discard) an OpenMetrics exemplar: the value can never
	// contain '#', so everything from the first '#' on is the exemplar.
	if i := strings.IndexByte(rest, '#'); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if s.name == "" || !isPromName(s.name) {
		return s, fmt.Errorf("invalid metric name in %q", line)
	}
	if len(strings.Fields(rest)) != 1 {
		return s, fmt.Errorf("want one value in %q", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("invalid value in %q: %w", line, err)
	}
	s.value = v
	return s, nil
}

// labelBlockEnd returns the index of the '}' closing the label block that
// starts (after its '{') at start, honoring quoting and escapes; -1 when
// unterminated.
func labelBlockEnd(s string, start int) int {
	inQuote := false
	for i := start; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip the escaped byte
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

func parsePromLabels(block string) (map[string]string, error) {
	labels := map[string]string{}
	for block != "" {
		eq := strings.IndexByte(block, '=')
		if eq < 0 || len(block) < eq+2 || block[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label pair near %q", block)
		}
		key := strings.TrimSpace(block[:eq])
		rest := block[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i++
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i == len(rest) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		labels[key] = val.String()
		block = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		block = strings.TrimSpace(block)
	}
	return labels, nil
}

func isPromName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(name) > 0
}
