package main

import (
	"strings"
	"testing"
)

// TestPromWriteGolden pins the exposition byte-for-byte on a fixed sample
// set: family grouping, TYPE inference (counter/_total, histogram from
// _bucket/_sum/_count, gauge otherwise), sorted deterministic ordering and
// label escaping.
func TestPromWriteGolden(t *testing.T) {
	pc := newPromCollector()
	add := pc.add("euclidean")
	add("ukc_serve_requests_total", map[string]string{"shard": "0", "outcome": "completed"}, 12)
	add("ukc_serve_requests_total", map[string]string{"shard": "0", "outcome": "failed"}, 1)
	add("ukc_serve_queue_depth", map[string]string{"shard": "0"}, 3)
	add("ukc_serve_latency_seconds", map[string]string{"shard": "0", "stage": "exec", "quantile": "0.99"}, 0.25)
	add("ukc_serve_instance_cache_build_seconds_bucket", map[string]string{"shard": "0", "instance": `we"ird\name`, "le": "0.005"}, 2)
	add("ukc_serve_instance_cache_build_seconds_bucket", map[string]string{"shard": "0", "instance": `we"ird\name`, "le": "+Inf"}, 3)
	add("ukc_serve_instance_cache_build_seconds_sum", map[string]string{"shard": "0", "instance": `we"ird\name`}, 0.0075)
	add("ukc_serve_instance_cache_build_seconds_count", map[string]string{"shard": "0", "instance": `we"ird\name`}, 3)

	var b strings.Builder
	if err := pc.write(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE ukc_serve_instance_cache_build_seconds histogram
ukc_serve_instance_cache_build_seconds_bucket{instance="we\"ird\\name",kind="euclidean",le="+Inf",shard="0"} 3
ukc_serve_instance_cache_build_seconds_bucket{instance="we\"ird\\name",kind="euclidean",le="0.005",shard="0"} 2
ukc_serve_instance_cache_build_seconds_count{instance="we\"ird\\name",kind="euclidean",shard="0"} 3
ukc_serve_instance_cache_build_seconds_sum{instance="we\"ird\\name",kind="euclidean",shard="0"} 0.0075
# TYPE ukc_serve_latency_seconds gauge
ukc_serve_latency_seconds{kind="euclidean",quantile="0.99",shard="0",stage="exec"} 0.25
# TYPE ukc_serve_queue_depth gauge
ukc_serve_queue_depth{kind="euclidean",shard="0"} 3
# TYPE ukc_serve_requests_total counter
ukc_serve_requests_total{kind="euclidean",outcome="completed",shard="0"} 12
ukc_serve_requests_total{kind="euclidean",outcome="failed",shard="0"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPromRoundTrip checks parsePromText inverts write: every sample
// written comes back with its name, labels (escapes included) and value.
func TestPromRoundTrip(t *testing.T) {
	pc := newPromCollector()
	add := pc.add("finite")
	add("ukc_serve_requests_total", map[string]string{"shard": "1", "outcome": "canceled"}, 7)
	add("ukc_serve_cache_bytes", map[string]string{"shard": "1"}, 98304)
	add("ukc_serve_instance_cache_bytes", map[string]string{"shard": "1", "instance": `a\b"c`}, 4096)

	var b strings.Builder
	if err := pc.write(&b); err != nil {
		t.Fatal(err)
	}
	series, err := parsePromText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parsing own output: %v", err)
	}
	got := series["ukc_serve_instance_cache_bytes"]
	if len(got) != 1 || got[0].labels["instance"] != `a\b"c` || got[0].value != 4096 {
		t.Errorf("instance sample round-trip = %+v", got)
	}
	if s := series["ukc_serve_requests_total"]; len(s) != 1 || s[0].labels["outcome"] != "canceled" || s[0].value != 7 {
		t.Errorf("counter round-trip = %+v", s)
	}
}

// TestPromParseRejectsMalformed pins the parser's error paths — the
// selfcheck relies on a failed parse meaning a malformed exposition.
func TestPromParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`ukc_serve_queue_depth{shard="0"`,         // unterminated label block
		`ukc_serve_queue_depth{shard="0} 1`,       // unterminated value quote
		`ukc_serve_queue_depth{shard=0} 1`,        // unquoted label value
		`ukc_serve_queue_depth{shard="0"} notnum`, // non-numeric value
		`1metric 5`,                    // invalid name
		"# TYPE ukc_serve_queue_depth", // malformed TYPE comment
		`ukc_serve_queue_depth`,        // no value
	} {
		if _, err := parsePromText(strings.NewReader(bad)); err == nil {
			t.Errorf("parse accepted malformed input %q", bad)
		}
	}
}
