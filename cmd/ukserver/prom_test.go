package main

import (
	"strings"
	"testing"

	ukc "repro"
	"repro/serve"
)

// TestPromWriteGolden pins the exposition byte-for-byte on a fixed sample
// set: family grouping, TYPE inference (counter/_total, histogram from
// _bucket/_sum/_count, gauge otherwise), sorted deterministic ordering and
// label escaping.
func TestPromWriteGolden(t *testing.T) {
	pc := newPromCollector()
	add := pc.add("euclidean")
	add("ukc_serve_requests_total", map[string]string{"shard": "0", "outcome": "completed"}, 12)
	add("ukc_serve_requests_total", map[string]string{"shard": "0", "outcome": "failed"}, 1)
	add("ukc_serve_queue_depth", map[string]string{"shard": "0"}, 3)
	add("ukc_serve_latency_seconds", map[string]string{"shard": "0", "stage": "exec", "quantile": "0.99"}, 0.25)
	add("ukc_serve_instance_cache_build_seconds_bucket", map[string]string{"shard": "0", "instance": `we"ird\name`, "le": "0.005"}, 2)
	add("ukc_serve_instance_cache_build_seconds_bucket", map[string]string{"shard": "0", "instance": `we"ird\name`, "le": "+Inf"}, 3)
	add("ukc_serve_instance_cache_build_seconds_sum", map[string]string{"shard": "0", "instance": `we"ird\name`}, 0.0075)
	add("ukc_serve_instance_cache_build_seconds_count", map[string]string{"shard": "0", "instance": `we"ird\name`}, 3)

	var b strings.Builder
	if err := pc.write(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE ukc_serve_instance_cache_build_seconds histogram
ukc_serve_instance_cache_build_seconds_bucket{instance="we\"ird\\name",kind="euclidean",le="+Inf",shard="0"} 3
ukc_serve_instance_cache_build_seconds_bucket{instance="we\"ird\\name",kind="euclidean",le="0.005",shard="0"} 2
ukc_serve_instance_cache_build_seconds_count{instance="we\"ird\\name",kind="euclidean",shard="0"} 3
ukc_serve_instance_cache_build_seconds_sum{instance="we\"ird\\name",kind="euclidean",shard="0"} 0.0075
# TYPE ukc_serve_latency_seconds gauge
ukc_serve_latency_seconds{kind="euclidean",quantile="0.99",shard="0",stage="exec"} 0.25
# TYPE ukc_serve_queue_depth gauge
ukc_serve_queue_depth{kind="euclidean",shard="0"} 3
# TYPE ukc_serve_requests_total counter
ukc_serve_requests_total{kind="euclidean",outcome="completed",shard="0"} 12
ukc_serve_requests_total{kind="euclidean",outcome="failed",shard="0"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPromRoundTrip checks parsePromText inverts write: every sample
// written comes back with its name, labels (escapes included) and value.
func TestPromRoundTrip(t *testing.T) {
	pc := newPromCollector()
	add := pc.add("finite")
	add("ukc_serve_requests_total", map[string]string{"shard": "1", "outcome": "canceled"}, 7)
	add("ukc_serve_cache_bytes", map[string]string{"shard": "1"}, 98304)
	add("ukc_serve_instance_cache_bytes", map[string]string{"shard": "1", "instance": `a\b"c`}, 4096)

	var b strings.Builder
	if err := pc.write(&b); err != nil {
		t.Fatal(err)
	}
	series, err := parsePromText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parsing own output: %v", err)
	}
	got := series["ukc_serve_instance_cache_bytes"]
	if len(got) != 1 || got[0].labels["instance"] != `a\b"c` || got[0].value != 4096 {
		t.Errorf("instance sample round-trip = %+v", got)
	}
	if s := series["ukc_serve_requests_total"]; len(s) != 1 || s[0].labels["outcome"] != "canceled" || s[0].value != 7 {
		t.Errorf("counter round-trip = %+v", s)
	}
}

// TestPromLabelEscapeRoundTrip pins each escape-worthy byte individually —
// backslash, double quote, newline — and their combinations: whatever an
// instance is named, write produces a parseable exposition and the parse
// recovers the exact name.
func TestPromLabelEscapeRoundTrip(t *testing.T) {
	names := []string{
		`back\slash`,
		`quo"te`,
		"new\nline",
		`all"three\of` + "\nthem",
		`trailing\`,
		`{braces}and=equals,commas`,
	}
	pc := newPromCollector()
	add := pc.add("euclidean")
	for i, name := range names {
		add("ukc_serve_instance_cache_bytes", map[string]string{"instance": name}, float64(i+1))
	}
	var b strings.Builder
	if err := pc.write(&b); err != nil {
		t.Fatal(err)
	}
	series, err := parsePromText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parsing own output: %v\n%s", err, b.String())
	}
	samples := series["ukc_serve_instance_cache_bytes"]
	if len(samples) != len(names) {
		t.Fatalf("round-tripped %d samples, want %d", len(samples), len(names))
	}
	got := map[string]float64{}
	for _, s := range samples {
		got[s.labels["instance"]] = s.value
	}
	for i, name := range names {
		if got[name] != float64(i+1) {
			t.Errorf("instance %q round-tripped to value %v, want %d", name, got[name], i+1)
		}
	}
}

// TestPromExemplarRoundTrip pins the exemplar wire format: write renders
// the OpenMetrics suffix, and the parser tolerates it — the sample's value
// comes back intact with the exemplar discarded.
func TestPromExemplarRoundTrip(t *testing.T) {
	pc := newPromCollector()
	pc.sample("ukc_http_request_duration_seconds_bucket",
		map[string]string{"le": "0.1"}, 7,
		&promExemplar{labels: map[string]string{"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736"}, value: 0.063})
	var b strings.Builder
	if err := pc.write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `ukc_http_request_duration_seconds_bucket{le="0.1"} 7 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.063`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar line %q:\n%s", want, out)
	}
	series, err := parsePromText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("parsing exposition with exemplar: %v", err)
	}
	s := series["ukc_http_request_duration_seconds_bucket"]
	if len(s) != 1 || s[0].value != 7 || s[0].labels["le"] != "0.1" {
		t.Fatalf("exemplar sample round-trip = %+v", s)
	}
}

// TestPromCollectZeroInstances walks Collect over a freshly-built server
// with nothing registered: the exposition must still render and parse, with
// the shard-level capacity gauges present and no instance series — the
// scrape contract holds from the first moment of a server's life.
func TestPromCollectZeroInstances(t *testing.T) {
	srv, err := serve.New(ukc.NewSolver[ukc.Vec]())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pc := newPromCollector()
	srv.Collect(pc.add("euclidean"))
	var b strings.Builder
	if err := pc.write(&b); err != nil {
		t.Fatal(err)
	}
	series, err := parsePromText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parsing zero-instance exposition: %v\n%s", err, b.String())
	}
	var caps float64
	for _, s := range series["ukc_serve_queue_capacity"] {
		caps += s.value
	}
	if caps <= 0 {
		t.Fatalf("queue capacity total = %v, want > 0 on an empty server", caps)
	}
	if n := len(series["ukc_serve_instance_cache_bytes"]); n != 0 {
		t.Fatalf("zero-instance server exports %d instance cache series", n)
	}
}

// TestPromParseRejectsMalformed pins the parser's error paths — the
// selfcheck relies on a failed parse meaning a malformed exposition.
func TestPromParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`ukc_serve_queue_depth{shard="0"`,         // unterminated label block
		`ukc_serve_queue_depth{shard="0} 1`,       // unterminated value quote
		`ukc_serve_queue_depth{shard=0} 1`,        // unquoted label value
		`ukc_serve_queue_depth{shard="0"} notnum`, // non-numeric value
		`1metric 5`,                    // invalid name
		"# TYPE ukc_serve_queue_depth", // malformed TYPE comment
		`ukc_serve_queue_depth`,        // no value
	} {
		if _, err := parsePromText(strings.NewReader(bad)); err == nil {
			t.Errorf("parse accepted malformed input %q", bad)
		}
	}
}
