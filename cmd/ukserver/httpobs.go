package main

// httpobs.go is the binary's HTTP observability shell: structured
// per-request logs with request-ID propagation, the optional pprof
// handlers, and the slog-backed solver tracer behind -trace.

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/obs"
)

// newRequestID returns a fresh 16-hex-char request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps
		// the server up and the logs honest about it.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status and size for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// requestLog wraps a handler with one structured log line per request. An
// incoming X-Request-ID is honored (so a caller's ID threads through to
// the log); otherwise one is generated. Either way the ID is echoed on the
// response, letting clients correlate their traces with the server log.
func requestLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		logger.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

// registerPprof mounts the net/http/pprof handlers on the mux. They are
// behind the -pprof flag because profile endpoints on a serving port are
// an operational decision, not a default.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// slogTracer adapts a slog.Logger to obs.Tracer: each solver span becomes
// one debug-level log line with its integer attributes inlined. Installed
// via ukc.WithTracer when -trace is set.
type slogTracer struct{ logger *slog.Logger }

func (t slogTracer) Span(name, instance string, start time.Time, dur time.Duration, attrs []obs.Attr) {
	args := make([]any, 0, 2*len(attrs)+4)
	args = append(args, "dur_us", dur.Microseconds())
	if instance != "" {
		args = append(args, "instance", instance)
	}
	for _, a := range attrs {
		args = append(args, a.Key, a.Val)
	}
	t.logger.Debug("span "+name, args...)
}
