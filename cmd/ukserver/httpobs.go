package main

// httpobs.go is the binary's HTTP observability shell: structured
// per-request logs with request-ID propagation, the optional pprof
// handlers, and the slog-backed solver tracer behind -trace.

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/obs"
)

// newRequestID returns a fresh 16-hex-char request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps
		// the server up and the logs honest about it.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status and size for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// requestLog wraps a handler with one structured log line per request. An
// incoming X-Request-ID is honored (so a caller's ID threads through to
// the log); otherwise one is generated. Either way the ID is echoed on the
// response, letting clients correlate their traces with the server log.
//
// It is also the trace-context ingress: a valid incoming W3C traceparent is
// parsed and threaded down to the serving layer through the request context
// (so the gateway's serve.request root joins the caller's trace), and a
// request without one roots a fresh trace here — every log line carries a
// trace_id either way. The per-request latency lands in lat's histogram
// with the trace ID attached as an exemplar.
func requestLog(logger *slog.Logger, lat *httpLatency, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		tc, err := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if err != nil {
			tc = obs.TraceContext{TraceID: obs.NewTraceID()}
		}
		r = r.WithContext(obs.ContextWithTrace(r.Context(), tc))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(start)
		lat.observe(dur.Seconds(), tc.TraceID.String())
		logger.Info("request",
			"id", id,
			"trace", tc.TraceID.String(),
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", float64(dur.Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

// httpLatency is the gateway-level request-duration histogram plus the most
// recent exemplar per bucket: each observation pins its trace ID to the
// bucket its latency landed in, which is what lets a dashboard jump from a
// latency spike to the matching retained trace in /v1/traces.
type httpLatency struct {
	hist *obs.Histogram

	mu        sync.Mutex
	exemplars []*promExemplar // len(bounds)+1; nil until the bucket has seen an observation
}

func newHTTPLatency() *httpLatency {
	h := obs.NewHistogram(obs.DurationBuckets()...)
	return &httpLatency{hist: h, exemplars: make([]*promExemplar, len(obs.DurationBuckets())+1)}
}

// observe records one request duration (seconds) and stamps its trace ID as
// the owning bucket's exemplar. Nil-safe so mux-only test servers need no
// metrics plumbing.
func (l *httpLatency) observe(sec float64, traceID string) {
	if l == nil {
		return
	}
	l.hist.Observe(sec)
	ex := &promExemplar{labels: map[string]string{"trace_id": traceID}, value: sec}
	l.mu.Lock()
	l.exemplars[l.hist.BucketIndex(sec)] = ex
	l.mu.Unlock()
}

// collect renders the histogram into the scrape as
// ukc_http_request_duration_seconds with per-bucket exemplars. Nil-safe.
func (l *httpLatency) collect(pc *promCollector) {
	if l == nil {
		return
	}
	snap := l.hist.Snapshot()
	l.mu.Lock()
	exemplars := append([]*promExemplar(nil), l.exemplars...)
	l.mu.Unlock()
	writeHistogram(pc, "ukc_http_request_duration_seconds", nil, snap, exemplars)
}

// registerPprof mounts the net/http/pprof handlers on the mux. They are
// behind the -pprof flag because profile endpoints on a serving port are
// an operational decision, not a default.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// slogTracer adapts a slog.Logger to obs.Tracer: each solver span becomes
// one debug-level log line with its integer attributes inlined. Installed
// via ukc.WithTracer when -trace is set.
type slogTracer struct{ logger *slog.Logger }

func (t slogTracer) Span(name, instance string, start time.Time, dur time.Duration, attrs []obs.Attr) {
	args := make([]any, 0, 2*len(attrs)+4)
	args = append(args, "dur_us", dur.Microseconds())
	if instance != "" {
		args = append(args, "instance", instance)
	}
	for _, a := range attrs {
		args = append(args, a.Key, a.Val)
	}
	t.logger.Debug("span "+name, args...)
}
