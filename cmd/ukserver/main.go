// Command ukserver serves registered uncertain k-center instances over
// JSON-on-HTTP: a thin shell around serve.Server that exposes the registry
// (register/unregister/list), the typed workloads (solve, assign, ecost,
// sweep, unassigned) and the serving metrics snapshot.
//
// Instances are registered by uploading the cmd/datagen JSON document (the
// internal/dataio schema); the document's "kind" field selects the
// Euclidean or finite-metric server, and registration compiles — and
// therefore validates — the model before it is ever served. Both kinds run
// behind the same sharded admission/deadline/eviction machinery.
//
//	ukserver -addr :8080 -shards 4 -workers 2 -cache-budget 268435456
//
//	curl -X PUT  localhost:8080/v1/instances/fleet --data-binary @fleet.json
//	curl -X POST localhost:8080/v1/solve -d '{"instance":"fleet","k":3}'
//	curl        localhost:8080/v1/metrics
//	curl        localhost:8080/metrics
//
// Observability: every request is logged as one structured (log/slog) line
// carrying a request ID — X-Request-ID is honored when the caller sends
// one, generated and echoed otherwise — and a trace ID: an incoming W3C
// traceparent header joins the caller's trace, anything else roots a fresh
// one. GET /metrics serves the full serving-layer state (per-shard request
// counters with the completed/failed/canceled/expired split, queue-wait vs
// execution latency quantiles, per-instance cache gauges and cache-build
// histograms, all labeled by instance kind) in the Prometheus text
// exposition format, hand-rolled with no client dependency, plus Go runtime
// gauges (goroutines, heap, GC pauses) and the gateway request-duration
// histogram whose buckets carry trace-ID exemplars; GET /v1/metrics is the
// same snapshot as JSON. -pprof mounts net/http/pprof under /debug/pprof/,
// and -trace logs every solver span (see ukc.WithTracer) at debug level.
//
// Flight recorder: unless -trace-retain 0, every request assembles a trace
// (admission → queue wait → execution → solver spans) in a fixed-capacity
// in-process recorder with tail-based retention — erred/panicked traces and
// traces at or above -trace-slow are always kept (ring of -trace-retain),
// plus a -trace-sample reservoir of fast clean ones as a baseline. GET
// /v1/traces serves the retained traces as JSON (?instance=, ?min_ms=,
// ?error=true filters); GET /v1/requests snapshots the live in-flight
// request table (workload, instance, shard, queued-or-executing, elapsed,
// trace ID) without stopping the world.
//
//	curl 'localhost:8080/v1/traces?min_ms=100'
//	curl  localhost:8080/v1/requests
//
// Status mapping: 404 unknown instance, 409 duplicate registration, 422
// invalid instance data, 429 shard queue full (ErrOverloaded — back off and
// retry), 500 a request that panicked inside the solver (the worker
// survived; see serve.ErrPanicked), 503 draining or closed, 504 deadline
// exceeded. 429 and draining-503 responses carry a Retry-After header — on
// 429 derived from the live queue depth and the shard's observed execution
// latency, so well-behaved clients (package client honors it) back off
// exactly as long as the backlog warrants.
//
// Shutdown: SIGINT/SIGTERM stops the listener, then drains the serving
// layer — admitted requests finish, new ones are rejected 503 — bounded by
// -drain-timeout. With -freeze-on-shutdown (and a -snapshot-dir) a clean
// drain freezes every instance so the next boot warm-starts. Corrupt
// snapshots found at boot are quarantined (renamed *.ukc.quarantine),
// counted and skipped rather than aborting startup; stale *.ukc.tmp files
// from torn writes are swept.
//
// Persistence: -snapshot-dir names a directory of zero-copy snapshots
// (package store). On boot every "*.ukc" file in it is opened — mmap'd, not
// decoded — and registered under its base name, so a restarted server
// answers its first request without recompiling anything. POST
// /v1/instances/{name}/freeze writes the named instance's snapshot into the
// directory (409 when the server runs without one), and the scrape gains a
// ukc_store_mapped_bytes gauge for the resident mapped total.
//
//	ukserver -snapshot-dir /var/lib/ukc/snapshots
//	curl -X POST localhost:8080/v1/instances/fleet/freeze
//
// The -selfcheck flag runs the CI smoke path: boot the full server on a
// loopback port, drive every endpoint through real HTTP for both instance
// kinds — including scraping /metrics and asserting the exposition parses
// and carries the core series — then freeze both instances, boot a second
// gateway warm from the snapshot directory, and assert it lists them and
// answers bit-identically without a single compile span firing. It prints
// the responses and exits non-zero on any failure.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	ukc "repro"
	"repro/internal/dataio"
	"repro/internal/gen"
	"repro/internal/graphmetric"
	"repro/obs"
	"repro/serve"
	"repro/store"

	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ukserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		shards    = flag.Int("shards", 2, "independent shards per instance kind")
		workers   = flag.Int("workers", 2, "workers per shard (<0 = one per CPU)")
		queue     = flag.Int("queue", 64, "request-queue depth per shard")
		budget    = flag.Int64("cache-budget", 0, "cache byte budget per shard (0 = unlimited)")
		deadline  = flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
		parallel  = flag.Int("parallel", 1, "solver worker count inside one request (<0 = all CPUs)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		trace     = flag.Bool("trace", false, "log every solver span (debug level) via the ukc.WithTracer hook")
		snapDir   = flag.String("snapshot-dir", "", "snapshot directory: warm-start from its *.ukc files and accept freeze requests into it (\"\" = off)")
		drainT    = flag.Duration("drain-timeout", 10*time.Second, "bound on the shutdown drain; expired drains abort in-flight requests (0 = wait indefinitely)")
		freezeOn  = flag.Bool("freeze-on-shutdown", false, "freeze every instance into -snapshot-dir after a clean drain")
		selfcheck = flag.Bool("selfcheck", false, "boot on a loopback port, exercise every endpoint, exit")

		traceRetain = flag.Int("trace-retain", 64, "flight recorder: retained erred/slow traces, served on /v1/traces (0 = recorder off)")
		traceSample = flag.Int("trace-sample", 8, "flight recorder: reservoir of fast clean traces kept as a baseline sample (-1 = none)")
		traceSlow   = flag.Duration("trace-slow", 100*time.Millisecond, "flight recorder: latency at or above which a trace is always retained (-1 = never)")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *trace {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var tracer obs.Tracer
	if *trace {
		tracer = slogTracer{logger: logger}
	}

	opts := []serve.Option{
		serve.WithShards(*shards),
		serve.WithWorkersPerShard(*workers),
		serve.WithQueueDepth(*queue),
		serve.WithCacheBudget(*budget),
		serve.WithDefaultDeadline(*deadline),
		serve.WithDrainTimeout(*drainT),
		serve.WithFreezeOnShutdown(*freezeOn),
		serve.WithLogger(logger),
	}
	var fr *obs.FlightRecorder
	if *traceRetain > 0 {
		fr = obs.NewFlightRecorder(obs.FlightConfig{
			Capacity:  *traceRetain,
			Reservoir: *traceSample,
			Threshold: *traceSlow,
		})
	}
	gw, err := newGateway(*parallel, tracer, fr, *snapDir, opts...)
	if err != nil {
		return err
	}
	defer gw.close()

	if *selfcheck {
		return gw.selfcheck(logger)
	}

	srv := &http.Server{Addr: *addr, Handler: gw.handler(*pprofOn, logger)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ukserver: listening on %s (%d shards × %d workers per kind)\n", *addr, *shards, *workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful drain: stop the listener first (no new connections), then
		// drain the serving layer — admitted requests finish, late arrivals
		// are rejected 503 — bounded by -drain-timeout on both steps. A clean
		// drain with -freeze-on-shutdown persists every instance before exit.
		fmt.Fprintln(os.Stderr, "ukserver: draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainT)
		if *drainT <= 0 {
			shutCtx, cancel = context.WithCancel(context.Background())
		}
		defer cancel()
		httpErr := srv.Shutdown(shutCtx)
		return errors.Join(httpErr, gw.shutdown(shutCtx))
	}
}

// gateway owns one serve.Server per instance kind plus the name→kind
// routing the HTTP layer needs (the generic serving layer is
// per-location-type; the wire protocol is not). regMu serializes
// registrations: name uniqueness spans BOTH kind registries, and the two
// servers cannot enforce a cross-registry invariant themselves — without
// it, two overlapping PUTs of different kinds could both succeed and the
// router would shadow one copy forever. Workload traffic never takes it.
type gateway struct {
	regMu   sync.Mutex
	eu      *serve.Server[ukc.Vec]
	fin     *serve.Server[int]
	fr      *obs.FlightRecorder // nil = flight recorder off (/v1/traces serves empty)
	httpLat *httpLatency
	snapDir string // "" = persistence off (no warm start, freeze returns 409)
}

func newGateway(parallel int, tracer obs.Tracer, fr *obs.FlightRecorder, snapDir string, opts ...serve.Option) (*gateway, error) {
	solverOpts := []ukc.Option{ukc.WithParallelism(parallel)}
	if tracer != nil {
		solverOpts = append(solverOpts, ukc.WithTracer(tracer))
	}
	if snapDir != "" {
		// Both typed servers scan the same directory; each claims only the
		// snapshots of its own kind (serve.ErrSnapshotKind skip).
		opts = append(opts, serve.WithSnapshotDir(snapDir))
	}
	if fr != nil {
		// One recorder spans both kind servers: a trace is one request,
		// whichever kind served it.
		opts = append(opts, serve.WithFlightRecorder(fr))
	}
	eu, err := serve.New(ukc.NewSolver[ukc.Vec](solverOpts...), opts...)
	if err != nil {
		return nil, err
	}
	fin, err := serve.New(ukc.NewSolver[int](solverOpts...), opts...)
	if err != nil {
		eu.Close()
		return nil, err
	}
	return &gateway{eu: eu, fin: fin, fr: fr, httpLat: newHTTPLatency(), snapDir: snapDir}, nil
}

func (g *gateway) close() {
	g.eu.Close()
	g.fin.Close()
}

// shutdown drains both kind servers under ctx: admission flips to
// ErrDraining immediately, admitted work finishes (or is aborted when ctx
// expires), and a clean drain freezes instances when so configured.
func (g *gateway) shutdown(ctx context.Context) error {
	return errors.Join(g.eu.Shutdown(ctx), g.fin.Shutdown(ctx))
}

// retryAfter estimates how long the caller should wait before retrying a
// request for name, from the owning shard's live queue depth and execution
// latency.
func (g *gateway) retryAfter(name string) time.Duration {
	if _, ok := g.fin.Get(name); ok {
		return g.fin.RetryAfter(name)
	}
	return g.eu.RetryAfter(name)
}

// retryAfterHeader renders a drain- or overload-typed error's backoff hint
// as Retry-After delay-seconds (ceiling, floor 1 — the header has whole-
// second granularity).
func retryAfterHeader(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// kindOf reports which kind server holds name ("" when neither).
func (g *gateway) kindOf(name string) string {
	if _, ok := g.eu.Get(name); ok {
		return dataio.KindEuclidean
	}
	if _, ok := g.fin.Get(name); ok {
		return dataio.KindFinite
	}
	return ""
}

// workloadRequest is the wire shape shared by every workload endpoint;
// Centers stays raw until the instance's kind fixes its element type.
type workloadRequest struct {
	Instance   string          `json:"instance"`
	K          int             `json:"k,omitempty"`
	Centers    json.RawMessage `json:"centers,omitempty"`
	Assign     []int           `json:"assign,omitempty"`
	Index      string          `json:"index,omitempty"`
	DeadlineMS int64           `json:"deadline_ms,omitempty"`
}

func (r workloadRequest) deadline() time.Duration {
	return time.Duration(r.DeadlineMS) * time.Millisecond
}

// indexMode maps the wire-level candidate-index selector onto the typed
// mode. Empty defers to the server solver's WithCandidateIndex option (the
// serving layer's zero-value contract); anything else must name a mode.
func (r workloadRequest) indexMode() (ukc.CandidateIndexMode, error) {
	switch r.Index {
	case "":
		return ukc.CandIndexDefault, nil
	case "off":
		return ukc.CandIndexOff, nil
	case "prune":
		return ukc.CandIndexPrune, nil
	case "approx":
		return ukc.CandIndexApprox, nil
	}
	return 0, fmt.Errorf("unknown index mode %q (want off, prune or approx)", r.Index)
}

// statsOut is the telemetry block attached to every workload response.
type statsOut struct {
	Shard    int     `json:"shard"`
	QueueMS  float64 `json:"queue_ms"`
	ExecMS   float64 `json:"exec_ms"`
	CacheHit bool    `json:"cache_hit"`
}

func toStatsOut(s serve.RequestStats) statsOut {
	return statsOut{
		Shard:    s.Shard,
		QueueMS:  float64(s.Queue.Microseconds()) / 1000,
		ExecMS:   float64(s.Exec.Microseconds()) / 1000,
		CacheHit: s.CacheHit,
	}
}

func (g *gateway) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/instances/{name}", g.handleRegister)
	mux.HandleFunc("DELETE /v1/instances/{name}", g.handleUnregister)
	mux.HandleFunc("POST /v1/instances/{name}/freeze", g.handleFreeze)
	mux.HandleFunc("GET /v1/instances", g.handleList)
	mux.HandleFunc("POST /v1/solve", g.workload(bind(g.eu, doSolve[ukc.Vec]), bind(g.fin, doSolve[int])))
	mux.HandleFunc("POST /v1/assign", g.workload(bind(g.eu, doAssign[ukc.Vec]), bind(g.fin, doAssign[int])))
	mux.HandleFunc("POST /v1/ecost", g.workload(bind(g.eu, doEcost[ukc.Vec]), bind(g.fin, doEcost[int])))
	mux.HandleFunc("POST /v1/sweep", g.workload(bind(g.eu, doSweep[ukc.Vec]), bind(g.fin, doSweep[int])))
	mux.HandleFunc("POST /v1/unassigned", g.workload(bind(g.eu, doUnassigned[ukc.Vec]), bind(g.fin, doUnassigned[int])))
	mux.HandleFunc("GET /v1/metrics", g.handleMetrics)
	mux.HandleFunc("GET /v1/traces", g.handleTraces)
	mux.HandleFunc("GET /v1/requests", g.handleRequests)
	mux.HandleFunc("GET /metrics", g.handlePromMetrics)
	return mux
}

// handler is the complete HTTP surface: the API mux, optionally the pprof
// handlers, all wrapped in the structured request log.
func (g *gateway) handler(pprofOn bool, logger *slog.Logger) http.Handler {
	mux := g.mux()
	if pprofOn {
		registerPprof(mux)
	}
	return requestLog(logger, g.httpLat, mux)
}

func (g *gateway) handleRegister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Names are unique across BOTH kinds — the workload router resolves a
	// name to one kind, so a same-name instance of the other kind would be
	// shadowed and unreachable. The check and the register must be one
	// atomic step (regMu), or two overlapping PUTs could both pass it.
	g.regMu.Lock()
	defer g.regMu.Unlock()
	if g.kindOf(name) != "" {
		httpError(w, http.StatusConflict, fmt.Errorf("instance %q already registered", name))
		return
	}
	var head struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(body, &head); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parsing instance document: %w", err))
		return
	}
	switch head.Kind {
	case dataio.KindEuclidean:
		inst, err := ukc.ReadCompiledInstance(bytes.NewReader(body))
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		err = g.eu.Register(r.Context(), name, inst)
		g.finishRegister(w, name, head.Kind, inst.N(), err)
	case dataio.KindFinite:
		inst, err := ukc.ReadCompiledFiniteInstance(bytes.NewReader(body))
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		err = g.fin.Register(r.Context(), name, inst)
		g.finishRegister(w, name, head.Kind, inst.N(), err)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown instance kind %q", head.Kind))
	}
}

func (g *gateway) finishRegister(w http.ResponseWriter, name, kind string, n int, err error) {
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, serve.ErrClosed) {
			status = http.StatusServiceUnavailable
		} else if g.kindOf(name) != "" {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"instance": name, "kind": kind, "points": n})
}

func (g *gateway) handleUnregister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Evaluate both unconditionally (no short-circuit): should a name ever
	// exist under both kinds, one DELETE removes every copy.
	ue, uf := g.eu.Unregister(name), g.fin.Unregister(name)
	if !ue && !uf {
		httpError(w, http.StatusNotFound, fmt.Errorf("instance %q not registered", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"instance": name, "unregistered": true})
}

// handleFreeze writes the named instance's zero-copy snapshot into the
// snapshot directory as <name>.ukc — the file a later boot's -snapshot-dir
// scan (or serve.RegisterSnapshot) reopens without recompiling. Freezing is
// idempotent: an existing snapshot is atomically replaced.
func (g *gateway) handleFreeze(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if g.snapDir == "" {
		httpError(w, http.StatusConflict, errors.New("no snapshot directory configured (start ukserver with -snapshot-dir)"))
		return
	}
	// The instance name becomes a file name; reject anything that could
	// escape the snapshot directory (the mux matches one path segment, but
	// percent-encoded separators decode through PathValue).
	if name == "" || name == "." || name == ".." || name != filepath.Base(name) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("instance name %q is not a valid snapshot name", name))
		return
	}
	path := filepath.Join(g.snapDir, name+serve.SnapshotExt)
	var (
		kind  string
		bytes int64
		err   error
	)
	// Get, not kindOf-then-Get: a concurrent DELETE between the two lookups
	// must land on 404, never on freezing a nil model.
	if c, ok := g.eu.Get(name); ok {
		kind = dataio.KindEuclidean
		bytes, err = store.Write(r.Context(), path, c)
	} else if c, ok := g.fin.Get(name); ok {
		kind = dataio.KindFinite
		bytes, err = store.Write(r.Context(), path, c)
	} else {
		httpError(w, http.StatusNotFound, fmt.Errorf("instance %q not registered", name))
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("freezing %q: %w", name, err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"instance": name, "kind": kind, "path": path, "bytes": bytes})
}

func (g *gateway) handleList(w http.ResponseWriter, _ *http.Request) {
	type instOut struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	}
	out := []instOut{}
	for _, n := range g.eu.Names() {
		out = append(out, instOut{n, dataio.KindEuclidean})
	}
	for _, n := range g.fin.Names() {
		out = append(out, instOut{n, dataio.KindFinite})
	}
	writeJSON(w, http.StatusOK, map[string]any{"instances": out})
}

func (g *gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	kindOut := func(m serve.Metrics) map[string]any {
		return map[string]any{
			"shards":                metricsOut(m),
			"snapshots_quarantined": m.SnapshotsQuarantined,
			"tmp_files_swept":       m.TempFilesSwept,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"euclidean": kindOut(g.eu.Metrics()),
		"finite":    kindOut(g.fin.Metrics()),
	})
}

// handlePromMetrics serves both kind servers' Collect walks as one
// Prometheus text exposition document, each sample labeled with its kind,
// plus the process-wide series that span both kinds and so carry no kind
// label: the store gauge, the Go runtime gauges and GC pause histogram,
// and the gateway HTTP latency histogram with trace-ID exemplars.
func (g *gateway) handlePromMetrics(w http.ResponseWriter, _ *http.Request) {
	pc := newPromCollector()
	g.eu.Collect(pc.add(dataio.KindEuclidean))
	g.fin.Collect(pc.add(dataio.KindFinite))
	pc.add("")("ukc_store_mapped_bytes", map[string]string{}, float64(store.MappedBytes()))
	collectRuntime(pc)
	g.httpLat.collect(pc)
	var buf bytes.Buffer
	if err := pc.write(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// shardOut is the wire shape of one shard's metrics snapshot.
type shardOut struct {
	Shard        int     `json:"shard"`
	Instances    int     `json:"instances"`
	QueueDepth   int     `json:"queue_depth"`
	QueueCap     int     `json:"queue_cap"`
	CacheBytes   int64   `json:"cache_bytes"`
	CacheBudget  int64   `json:"cache_budget"`
	Admitted     uint64  `json:"admitted"`
	Rejected     uint64  `json:"rejected"`
	Completed    uint64  `json:"completed"`
	Failed       uint64  `json:"failed"`
	Canceled     uint64  `json:"canceled"`
	Expired      uint64  `json:"expired"`
	Panicked     uint64  `json:"panicked"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	Evictions    uint64  `json:"evictions"`
	HitRate      float64 `json:"hit_rate"`
	PruneScanned uint64  `json:"prune_scanned"`
	PrunePruned  uint64  `json:"prune_pruned"`
	PruneRate    float64 `json:"prune_rate"`
	P50MS        float64 `json:"latency_p50_ms"`
	P99MS        float64 `json:"latency_p99_ms"`
	QueueP50MS   float64 `json:"queue_p50_ms"`
	QueueP99MS   float64 `json:"queue_p99_ms"`
	ExecP50MS    float64 `json:"exec_p50_ms"`
	ExecP99MS    float64 `json:"exec_p99_ms"`
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func metricsOut(m serve.Metrics) []shardOut {
	out := make([]shardOut, 0, len(m.Shards)+1)
	for _, s := range append(m.Shards, m.Totals()) {
		out = append(out, shardOut{
			Shard:        s.Shard,
			Instances:    s.Instances,
			QueueDepth:   s.QueueDepth,
			QueueCap:     s.QueueCap,
			CacheBytes:   s.CacheBytes,
			CacheBudget:  s.CacheBudget,
			Admitted:     s.Admitted,
			Rejected:     s.Rejected,
			Completed:    s.Completed,
			Failed:       s.Failed,
			Canceled:     s.Canceled,
			Expired:      s.Expired,
			Panicked:     s.Panicked,
			CacheHits:    s.CacheHits,
			CacheMisses:  s.CacheMisses,
			Evictions:    s.Evictions,
			HitRate:      s.HitRate(),
			PruneScanned: s.PruneScanned,
			PrunePruned:  s.PrunePruned,
			PruneRate:    s.PruneRate(),
			P50MS:        ms(s.LatencyP50),
			P99MS:        ms(s.LatencyP99),
			QueueP50MS:   ms(s.QueueP50),
			QueueP99MS:   ms(s.QueueP99),
			ExecP50MS:    ms(s.ExecP50),
			ExecP99MS:    ms(s.ExecP99),
		})
	}
	return out
}

// workload decodes the shared request shape, routes it to the per-kind
// handler owning the named instance, and maps serving errors to HTTP
// status codes.
func (g *gateway) workload(eu func(context.Context, workloadRequest) (any, error), fin func(context.Context, workloadRequest) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req workloadRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var (
			out any
			err error
		)
		switch g.kindOf(req.Instance) {
		case dataio.KindEuclidean:
			out, err = eu(r.Context(), req)
		case dataio.KindFinite:
			out, err = fin(r.Context(), req)
		default:
			err = fmt.Errorf("%w: %q", serve.ErrNotFound, req.Instance)
		}
		if err != nil {
			// Overload and drain are retryable-by-contract: tell the caller
			// when. The 429 hint tracks the live backlog (queue depth ×
			// observed execution latency); a draining server is gone within
			// the drain timeout, so a flat minimum suffices.
			switch {
			case errors.Is(err, serve.ErrOverloaded):
				w.Header().Set("Retry-After", retryAfterHeader(g.retryAfter(req.Instance)))
			case errors.Is(err, serve.ErrDraining):
				w.Header().Set("Retry-After", "1")
			}
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	}
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, serve.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrDraining), errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrPanicked):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusUnprocessableEntity
	}
}

func decodeCenters[P any](raw json.RawMessage) ([]P, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing centers")
	}
	var out []P
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("parsing centers: %w", err)
	}
	return out, nil
}

// The workload adapters between the wire shape and the typed serve API:
// one generic function per workload, instantiated for both instance kinds
// in mux() via bind — a fix to one workload can never miss the other kind.

// bind fixes a generic workload adapter to one kind's server.
func bind[P any](srv *serve.Server[P], f func(*serve.Server[P], context.Context, workloadRequest) (any, error)) func(context.Context, workloadRequest) (any, error) {
	return func(ctx context.Context, req workloadRequest) (any, error) { return f(srv, ctx, req) }
}

func doSolve[P any](srv *serve.Server[P], ctx context.Context, req workloadRequest) (any, error) {
	resp, err := srv.Solve(ctx, serve.SolveRequest{Instance: req.Instance, K: req.K, Deadline: req.deadline()})
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"centers":          resp.Result.Centers,
		"assign":           resp.Result.Assign,
		"ecost":            resp.Result.Ecost,
		"ecost_unassigned": resp.Result.EcostUnassigned,
		"certain_radius":   resp.Result.CertainRadius,
		"effective_eps":    resp.Result.EffectiveEps,
		"stats":            toStatsOut(resp.Stats),
	}, nil
}

func doAssign[P any](srv *serve.Server[P], ctx context.Context, req workloadRequest) (any, error) {
	centers, err := decodeCenters[P](req.Centers)
	if err != nil {
		return nil, err
	}
	resp, err := srv.Assign(ctx, serve.AssignRequest[P]{Instance: req.Instance, Centers: centers, Deadline: req.deadline()})
	if err != nil {
		return nil, err
	}
	return map[string]any{"assign": resp.Assign, "stats": toStatsOut(resp.Stats)}, nil
}

func doEcost[P any](srv *serve.Server[P], ctx context.Context, req workloadRequest) (any, error) {
	centers, err := decodeCenters[P](req.Centers)
	if err != nil {
		return nil, err
	}
	resp, err := srv.Ecost(ctx, serve.EcostRequest[P]{Instance: req.Instance, Centers: centers, Assign: req.Assign, Deadline: req.deadline()})
	if err != nil {
		return nil, err
	}
	return map[string]any{"ecost": resp.Ecost, "stats": toStatsOut(resp.Stats)}, nil
}

func doSweep[P any](srv *serve.Server[P], ctx context.Context, req workloadRequest) (any, error) {
	centers, err := decodeCenters[P](req.Centers)
	if err != nil {
		return nil, err
	}
	resp, err := srv.EcostSweep(ctx, serve.EcostSweepRequest[P]{Instance: req.Instance, Centers: centers, Deadline: req.deadline()})
	if err != nil {
		return nil, err
	}
	return map[string]any{"sweep": resp.Sweep, "snapped": resp.Snapped, "stats": toStatsOut(resp.Stats)}, nil
}

func doUnassigned[P any](srv *serve.Server[P], ctx context.Context, req workloadRequest) (any, error) {
	mode, err := req.indexMode()
	if err != nil {
		return nil, err
	}
	resp, err := srv.SolveUnassigned(ctx, serve.UnassignedRequest{Instance: req.Instance, K: req.K, Index: mode, Deadline: req.deadline()})
	if err != nil {
		return nil, err
	}
	return map[string]any{"centers": resp.Centers, "ecost": resp.Ecost, "stats": toStatsOut(resp.Stats)}, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}

// selfcheck boots the gateway on a loopback port and drives every endpoint
// through real HTTP for both instance kinds — the CI smoke path. pprof is
// mounted so its surface is smoke-tested too, and the /metrics scrape is
// parsed and asserted, not just status-checked. After the endpoint sweep it
// freezes both instances and proves the warm-restart contract: a second
// gateway booted from the snapshot directory lists them and answers
// bit-identically, without one compile span firing.
func (g *gateway) selfcheck(logger *slog.Logger) error {
	if g.snapDir == "" {
		dir, err := os.MkdirTemp("", "ukserver-selfcheck-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		g.snapDir = dir
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: g.handler(true, logger)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	rng := rand.New(rand.NewSource(1))

	// Euclidean instance via cmd/datagen's writer.
	pts, err := gen.GaussianClusters(rng, 40, 4, 2, 3, 1, 0.4)
	if err != nil {
		return err
	}
	var euBody bytes.Buffer
	if err := dataio.WriteEuclidean(&euBody, pts); err != nil {
		return err
	}
	// Finite instance on a random geometric graph metric.
	graph, _, err := graphmetric.RandomGeometric(30, 0.3, rng)
	if err != nil {
		return err
	}
	space, err := graph.Metric()
	if err != nil {
		return err
	}
	fpts, err := gen.OnVerticesLocal(rng, space, 20, 3)
	if err != nil {
		return err
	}
	var finBody bytes.Buffer
	if err := dataio.WriteFinite(&finBody, space, fpts); err != nil {
		return err
	}

	steps := []selfcheckStep{
		{"register-euclidean", http.MethodPut, "/v1/instances/smoke-eu", &euBody, http.StatusCreated},
		{"register-finite", http.MethodPut, "/v1/instances/smoke-fin", &finBody, http.StatusCreated},
		{"list", http.MethodGet, "/v1/instances", nil, http.StatusOK},
		{"solve-euclidean", http.MethodPost, "/v1/solve", jsonBody(`{"instance":"smoke-eu","k":3}`), http.StatusOK},
		{"solve-finite", http.MethodPost, "/v1/solve", jsonBody(`{"instance":"smoke-fin","k":2}`), http.StatusOK},
		{"assign-euclidean", http.MethodPost, "/v1/assign", jsonBody(`{"instance":"smoke-eu","centers":[[0,0],[4,4]]}`), http.StatusOK},
		{"assign-finite", http.MethodPost, "/v1/assign", jsonBody(`{"instance":"smoke-fin","centers":[0,3]}`), http.StatusOK},
		{"unassigned-euclidean", http.MethodPost, "/v1/unassigned", jsonBody(`{"instance":"smoke-eu","k":2}`), http.StatusOK},
		{"unassigned-finite", http.MethodPost, "/v1/unassigned", jsonBody(`{"instance":"smoke-fin","k":2}`), http.StatusOK},
		{"unassigned-exact", http.MethodPost, "/v1/unassigned", jsonBody(`{"instance":"smoke-eu","k":2,"index":"off"}`), http.StatusOK},
		{"unassigned-approx", http.MethodPost, "/v1/unassigned", jsonBody(`{"instance":"smoke-eu","k":2,"index":"approx"}`), http.StatusOK},
		{"unassigned-bad-index", http.MethodPost, "/v1/unassigned", jsonBody(`{"instance":"smoke-eu","k":2,"index":"bogus"}`), http.StatusUnprocessableEntity},
		{"ecost-euclidean", http.MethodPost, "/v1/ecost", jsonBody(`{"instance":"smoke-eu","centers":[[0,0],[4,4]]}`), http.StatusOK},
		{"ecost-finite", http.MethodPost, "/v1/ecost", jsonBody(`{"instance":"smoke-fin","centers":[0,3]}`), http.StatusOK},
		{"sweep-euclidean", http.MethodPost, "/v1/sweep", jsonBody(`{"instance":"smoke-eu","centers":[[0,0],[4,4]]}`), http.StatusOK},
		{"sweep-finite", http.MethodPost, "/v1/sweep", jsonBody(`{"instance":"smoke-fin","centers":[0,3]}`), http.StatusOK},
		{"solve-unknown", http.MethodPost, "/v1/solve", jsonBody(`{"instance":"ghost","k":2}`), http.StatusNotFound},
		{"freeze-euclidean", http.MethodPost, "/v1/instances/smoke-eu/freeze", nil, http.StatusOK},
		{"freeze-finite", http.MethodPost, "/v1/instances/smoke-fin/freeze", nil, http.StatusOK},
		{"freeze-unknown", http.MethodPost, "/v1/instances/ghost/freeze", nil, http.StatusNotFound},
		{"metrics", http.MethodGet, "/v1/metrics", nil, http.StatusOK},
		{"traces", http.MethodGet, "/v1/traces", nil, http.StatusOK},
		{"requests", http.MethodGet, "/v1/requests", nil, http.StatusOK},
		{"pprof-cmdline", http.MethodGet, "/debug/pprof/cmdline", nil, http.StatusOK},
	}
	client := &http.Client{Timeout: 30 * time.Second}
	runSteps := func(steps []selfcheckStep) error {
		for _, s := range steps {
			req, err := http.NewRequest(s.method, base+s.path, s.body)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return fmt.Errorf("%s: %w", s.name, err)
			}
			out, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			if resp.StatusCode != s.wantStatus {
				return fmt.Errorf("%s: status %d, want %d: %s", s.name, resp.StatusCode, s.wantStatus, out)
			}
			if resp.Header.Get("X-Request-ID") == "" {
				return fmt.Errorf("%s: no X-Request-ID on response", s.name)
			}
			fmt.Printf("selfcheck %-24s %d %s\n", s.name, resp.StatusCode, truncate(out, 140))
		}
		return nil
	}
	if err := runSteps(steps); err != nil {
		return err
	}
	if err := scrapeProm(client, base); err != nil {
		return fmt.Errorf("prom-metrics: %w", err)
	}
	fmt.Printf("selfcheck %-24s %d %s\n", "prom-metrics", http.StatusOK, "exposition parsed, core + runtime series present")
	if err := g.checkTraces(client, base); err != nil {
		return fmt.Errorf("trace-retention: %w", err)
	}
	fmt.Printf("selfcheck %-24s %d %s\n", "trace-retention", http.StatusOK, "retained traces served, in-flight table idle")

	// Warm-restart contract: capture the cold solves, boot a second gateway
	// from the snapshot directory just frozen into, and require identical
	// answers with zero recompilation.
	coldSolves := map[string][]byte{}
	for name, body := range solveBodies {
		out, status, err := postJSON(client, base+"/v1/solve", body)
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("cold solve %s: status %d err %v", name, status, err)
		}
		coldSolves[name] = out
	}
	if err := warmRestartCheck(logger, g.snapDir, coldSolves); err != nil {
		return fmt.Errorf("warm-restart: %w", err)
	}
	fmt.Printf("selfcheck %-24s %d %s\n", "warm-restart", http.StatusOK, "snapshot boot served both kinds bit-identically, no compile spans")

	tail := []selfcheckStep{
		{"unregister", http.MethodDelete, "/v1/instances/smoke-eu", nil, http.StatusOK},
		{"solve-after-unregister", http.MethodPost, "/v1/solve", jsonBody(`{"instance":"smoke-eu","k":3}`), http.StatusNotFound},
	}
	if err := runSteps(tail); err != nil {
		return err
	}
	fmt.Println("selfcheck: ok")
	return nil
}

// selfcheckStep is one smoke-path request and its expected status.
type selfcheckStep struct {
	name, method, path string
	body               io.Reader
	wantStatus         int
}

// solveBodies are the deterministic solve requests compared across the cold
// gateway and the warm-restarted one.
var solveBodies = map[string]string{
	"smoke-eu":  `{"instance":"smoke-eu","k":3}`,
	"smoke-fin": `{"instance":"smoke-fin","k":2}`,
}

func postJSON(client *http.Client, url, body string) ([]byte, int, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return out, resp.StatusCode, err
}

// withoutStats parses a workload response and drops the per-request "stats"
// block — shard/latency telemetry legitimately differs across processes;
// everything else must not.
func withoutStats(raw []byte) (map[string]any, error) {
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, err
	}
	delete(m, "stats")
	return m, nil
}

// warmRestartCheck boots a fresh gateway against snapDir — the restart path
// of a production ukserver — and asserts the acceptance criteria: both
// frozen instances are listed under their kinds, their solves match the
// cold gateway's byte-for-byte (minus stats), the tracer never saw a
// "compile.*" span (and demonstrably saw the solves: cache-build spans
// fired), and the mapped-bytes gauge is exported.
func warmRestartCheck(logger *slog.Logger, snapDir string, coldSolves map[string][]byte) error {
	rec := &obs.Recorder{}
	warm, err := newGateway(1, rec, nil, snapDir)
	if err != nil {
		return fmt.Errorf("booting from %s: %w", snapDir, err)
	}
	defer warm.close()
	if k := warm.kindOf("smoke-eu"); k != dataio.KindEuclidean {
		return fmt.Errorf("smoke-eu kind after warm start = %q, want %q", k, dataio.KindEuclidean)
	}
	if k := warm.kindOf("smoke-fin"); k != dataio.KindFinite {
		return fmt.Errorf("smoke-fin kind after warm start = %q, want %q", k, dataio.KindFinite)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: warm.handler(false, logger)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	for _, name := range []string{"smoke-eu", "smoke-fin"} {
		out, status, err := postJSON(client, base+"/v1/solve", solveBodies[name])
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("warm solve %s: status %d err %v", name, status, err)
		}
		cold, err := withoutStats(coldSolves[name])
		if err != nil {
			return fmt.Errorf("cold solve %s: %w", name, err)
		}
		warmOut, err := withoutStats(out)
		if err != nil {
			return fmt.Errorf("warm solve %s: %w", name, err)
		}
		if !reflect.DeepEqual(cold, warmOut) {
			return fmt.Errorf("solve %s diverges after warm restart:\ncold %v\nwarm %v", name, cold, warmOut)
		}
	}

	// The point of the snapshot path: the warm gateway never compiled. The
	// build spans prove the assertion is not vacuous — the tracer watched
	// the solves happen.
	var sawBuild bool
	for _, sp := range rec.Spans() {
		if strings.HasPrefix(sp.Name, "compile.") {
			return fmt.Errorf("compile span %q fired on the warm gateway", sp.Name)
		}
		if strings.HasPrefix(sp.Name, "surrogate.build") || sp.Name == "evaluator.build" {
			sawBuild = true
		}
	}
	if !sawBuild {
		return fmt.Errorf("warm gateway's tracer saw no cache-build spans — the no-compile assertion is vacuous")
	}

	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	series, err := parsePromText(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("parsing warm exposition: %w", err)
	}
	mapped := series["ukc_store_mapped_bytes"]
	if len(mapped) != 1 {
		return fmt.Errorf("ukc_store_mapped_bytes series count = %d, want 1", len(mapped))
	}
	if want := float64(store.MappedBytes()); mapped[0].value != want || (store.MmapAvailable() && want <= 0) {
		return fmt.Errorf("ukc_store_mapped_bytes = %v (store reports %v, mmap available %v)", mapped[0].value, want, store.MmapAvailable())
	}
	return nil
}

// checkTraces asserts the flight recorder's HTTP face after the endpoint
// sweep: /v1/traces serves at least one retained trace whose tree carries
// the serving layer's request/queue/exec spans, and /v1/requests is an
// empty (idle) table. Skipped when the gateway runs without a recorder.
func (g *gateway) checkTraces(client *http.Client, base string) error {
	if g.fr == nil {
		return nil
	}
	resp, err := client.Get(base + "/v1/traces")
	if err != nil {
		return err
	}
	var traces struct {
		Traces []traceOut `json:"traces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&traces)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decoding /v1/traces: %w", err)
	}
	if len(traces.Traces) == 0 {
		return fmt.Errorf("no traces retained after the endpoint sweep (recorder stats: %+v)", g.fr.Stats())
	}
	found := false
	for _, tr := range traces.Traces {
		names := map[string]bool{}
		for _, sp := range tr.Spans {
			names[sp.Name] = true
		}
		if names["serve.request"] && names["serve.queue"] && names["serve.exec"] {
			found = true
			fmt.Printf("selfcheck %-24s     trace %s\n", "", traceSummary(tr))
			break
		}
	}
	if !found {
		return fmt.Errorf("no retained trace carries the serve.request/queue/exec tree (%d retained)", len(traces.Traces))
	}

	resp, err = client.Get(base + "/v1/requests")
	if err != nil {
		return err
	}
	var reqs struct {
		Requests []inflightOut `json:"requests"`
	}
	err = json.NewDecoder(resp.Body).Decode(&reqs)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decoding /v1/requests: %w", err)
	}
	if len(reqs.Requests) != 0 {
		return fmt.Errorf("in-flight table not empty on an idle gateway: %+v", reqs.Requests)
	}
	return nil
}

// scrapeProm fetches /metrics and asserts the exposition is parseable and
// carries the core series with sane values: per-shard outcome counters
// reflecting the solves just driven, the queue/exec/total latency split,
// capacity gauges, the per-instance cache histogram for the
// still-registered finite instance, the Go runtime series, and the gateway
// HTTP latency histogram.
func scrapeProm(client *http.Client, base string) error {
	// Force a GC first so the pause histogram provably has samples to serve.
	runtime.GC()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !bytes.Contains([]byte(ct), []byte("text/plain")) {
		return fmt.Errorf("content type %q", ct)
	}
	series, err := parsePromText(resp.Body)
	if err != nil {
		return fmt.Errorf("parsing exposition: %w", err)
	}

	sum := func(name string, match map[string]string) (total float64, n int) {
		for _, s := range series[name] {
			ok := true
			for k, v := range match {
				if s.labels[k] != v {
					ok = false
					break
				}
			}
			if ok {
				total += s.value
				n++
			}
		}
		return total, n
	}

	for _, kind := range []string{dataio.KindEuclidean, dataio.KindFinite} {
		if completed, _ := sum("ukc_serve_requests_total", map[string]string{"kind": kind, "outcome": "completed"}); completed < 1 {
			return fmt.Errorf("kind %s: completed requests = %v, want >= 1", kind, completed)
		}
	}
	if caps, _ := sum("ukc_serve_queue_capacity", nil); caps <= 0 {
		return fmt.Errorf("queue capacity total = %v, want > 0", caps)
	}
	for _, stage := range []string{"queue", "exec", "total"} {
		if _, n := sum("ukc_serve_latency_seconds", map[string]string{"stage": stage, "quantile": "0.99"}); n == 0 {
			return fmt.Errorf("latency stage %q missing", stage)
		}
	}
	if builds, _ := sum("ukc_serve_instance_cache_build_seconds_count", map[string]string{"instance": "smoke-fin"}); builds < 1 {
		return fmt.Errorf("smoke-fin cache-build histogram count = %v, want >= 1 (cold solve must record a build)", builds)
	}
	if scanned, _ := sum("ukc_serve_prune_total", map[string]string{"event": "scanned"}); scanned < 1 {
		return fmt.Errorf("prune_total scanned = %v, want >= 1 (default-pruned unassigned solves must account their scans)", scanned)
	}
	if goroutines, _ := sum("go_goroutines", nil); goroutines < 1 {
		return fmt.Errorf("go_goroutines = %v, want >= 1", goroutines)
	}
	if heap, _ := sum("go_heap_alloc_bytes", nil); heap <= 0 {
		return fmt.Errorf("go_heap_alloc_bytes = %v, want > 0", heap)
	}
	if pauses, n := sum("go_gc_pause_seconds_count", nil); n != 1 || pauses < 1 {
		return fmt.Errorf("go_gc_pause_seconds_count = %v (%d series), want >= 1 after a forced GC", pauses, n)
	}
	if httpReqs, _ := sum("ukc_http_request_duration_seconds_count", nil); httpReqs < 1 {
		return fmt.Errorf("ukc_http_request_duration_seconds_count = %v, want >= 1 (the sweep's requests flow through the latency histogram)", httpReqs)
	}
	return nil
}

func jsonBody(s string) io.Reader { return bytes.NewReader([]byte(s)) }

func truncate(b []byte, n int) string {
	s := string(bytes.TrimSpace(b))
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}
