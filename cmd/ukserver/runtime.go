package main

// runtime.go exports the process-health gauges the serving-layer Collect
// walk cannot see: goroutine count, heap occupancy, and a GC pause-time
// histogram, all read from the Go runtime at scrape time. These carry no
// kind label — they describe the process, not an instance-kind server.

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strconv"

	"repro/obs"
)

// gcPauseBounds is the fixed bucket layout (seconds) the runtime's GC pause
// histogram is re-bucketed into: sub-microsecond noise through a 100ms
// stall, geometrically spaced.
var gcPauseBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1}

// collectRuntime appends the Go runtime series to the scrape.
func collectRuntime(pc *promCollector) {
	pc.sample("go_goroutines", nil, float64(runtime.NumGoroutine()), nil)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pc.sample("go_heap_alloc_bytes", nil, float64(ms.HeapAlloc), nil)
	pc.sample("go_heap_inuse_bytes", nil, float64(ms.HeapInuse), nil)
	pc.sample("go_heap_objects", nil, float64(ms.HeapObjects), nil)
	pc.sample("go_gc_cycles_total", nil, float64(ms.NumGC), nil)

	samples := []metrics.Sample{{Name: "/gc/pauses:seconds"}}
	metrics.Read(samples)
	if h := samples[0].Value.Float64Histogram(); h != nil {
		writeHistogram(pc, "go_gc_pause_seconds", nil, rebucket(h, gcPauseBounds), nil)
	}
}

// rebucket folds a runtime Float64Histogram (fine-grained, possibly with
// infinite edge boundaries) into an obs-style snapshot over fixed bounds.
// Each runtime bucket lands in the first bound that covers its upper edge;
// the sum is approximated from bucket midpoints (the runtime histogram does
// not carry an exact sum).
func rebucket(h *metrics.Float64Histogram, bounds []float64) obs.HistogramSnapshot {
	snap := obs.HistogramSnapshot{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		j := len(bounds) // +Inf overflow
		for b, bound := range bounds {
			if hi <= bound {
				j = b
				break
			}
		}
		snap.Counts[j] += c
		snap.Count += c
		if math.IsInf(lo, -1) {
			lo = 0
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		snap.Sum += float64(c) * (lo + hi) / 2
	}
	return snap
}

// writeHistogram renders an obs histogram snapshot as the Prometheus
// cumulative-bucket series (name_bucket{le=...}, name_sum, name_count),
// attaching the per-bucket exemplars when given (len(Counts), nil entries
// skipped).
func writeHistogram(pc *promCollector, name string, labels map[string]string, snap obs.HistogramSnapshot, exemplars []*promExemplar) {
	withLE := func(le string) map[string]string {
		m := map[string]string{"le": le}
		for k, v := range labels {
			m[k] = v
		}
		return m
	}
	var cum uint64
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = strconv.FormatFloat(snap.Bounds[i], 'g', -1, 64)
		}
		var ex *promExemplar
		if i < len(exemplars) {
			ex = exemplars[i]
		}
		pc.sample(name+"_bucket", withLE(le), float64(cum), ex)
	}
	sumLabels := map[string]string{}
	for k, v := range labels {
		sumLabels[k] = v
	}
	pc.sample(name+"_sum", sumLabels, snap.Sum, nil)
	pc.sample(name+"_count", sumLabels, float64(snap.Count), nil)
}
