package main

// End-to-end trace propagation: the public client drives the gateway over
// real HTTP with fault-injected execution latency, and the flight recorder
// the client and gateway share assembles ONE trace — client call and
// attempt spans, the serving layer's request/queue/exec tree, and the
// solver's local-search spans — retained by tail sampling and served on
// /v1/traces with the trace ID surfacing as a /metrics exemplar.

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/faults"
	"repro/obs"
)

// traceGateway boots a recorder-backed gateway on httptest and a client
// sharing the same recorder, registers one euclidean instance "fleet", and
// returns the pieces.
func traceGateway(t *testing.T, fr *obs.FlightRecorder) (*httptest.Server, *client.Client) {
	t.Helper()
	gw, err := newGateway(1, nil, fr, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.close)
	ts := httptest.NewServer(gw.handler(false, slog.New(slog.NewTextHandler(io.Discard, nil))))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL,
		client.WithFlightRecorder(fr),
		client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(context.Background(), "fleet", []byte(euDoc(t, 11))); err != nil {
		t.Fatal(err)
	}
	return ts, c
}

// TestTraceEndToEnd is the acceptance path: a slow (fault-injected) solve
// driven through client → ukserver → serve → solver is retained as one
// trace whose tree carries the client attempt span, the queue-wait span,
// the exec span and the solver's ls.* spans — all under the trace ID the
// client propagated — and that ID links back from the /metrics latency
// exemplar.
func TestTraceEndToEnd(t *testing.T) {
	const threshold = 50 * time.Millisecond
	fr := obs.NewFlightRecorder(obs.FlightConfig{Reservoir: -1, Threshold: threshold})
	ts, c := traceGateway(t, fr)

	// Every execution takes ≥ 60ms: over the retention threshold, so the
	// trace MUST be kept as slow.
	faults.Enable(faults.Plan{Seed: 1, Rules: map[string]faults.Rule{
		"serve.exec": {Latency: 1, Delay: 60 * time.Millisecond},
	}})
	resp, err := c.Unassigned(context.Background(), "fleet", 2, 0)
	faults.Disable()
	if err != nil {
		t.Fatal(err)
	}
	if resp.RequestID == "" {
		t.Fatal("response carries no echoed request ID")
	}

	// Fetch the retained traces over HTTP, exercising the filters on the way.
	var list struct {
		Traces []traceOut `json:"traces"`
	}
	hresp, err := http.Get(ts.URL + "/v1/traces?instance=fleet&min_ms=50")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(hresp.Body).Decode(&list)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Exactly one retained trace carries the full client→server→solver tree.
	var full []traceOut
	for _, tr := range list.Traces {
		names := map[string]bool{}
		for _, sp := range tr.Spans {
			names[sp.Name] = true
		}
		if names["client.attempt"] && names["serve.queue"] && names["serve.exec"] {
			full = append(full, tr)
		}
	}
	if len(full) != 1 {
		t.Fatalf("retained %d full client→server traces, want 1 (served %d total)", len(full), len(list.Traces))
	}
	tr := full[0]
	if tr.Reason != string(obs.KeepSlow) {
		t.Fatalf("trace retained as %q, want slow", tr.Reason)
	}
	if tr.DurMS < 60 {
		t.Fatalf("trace duration %vms, want ≥ the injected 60ms", tr.DurMS)
	}

	// The tree is properly parented: attempt under the client root, queue and
	// exec under the server root (which is itself parented on the attempt's
	// propagated span), and at least one solver span under exec.
	span := func(name string) spanOut {
		t.Helper()
		for _, sp := range tr.Spans {
			if sp.Name == name {
				return sp
			}
		}
		t.Fatalf("trace has no %q span: %+v", name, tr.Spans)
		return spanOut{}
	}
	root, attempt := span("client.call"), span("client.attempt")
	serveRoot, queue, exec := span("serve.request"), span("serve.queue"), span("serve.exec")
	if attempt.ParentID != root.SpanID {
		t.Fatalf("attempt parented on %s, want client root %s", attempt.ParentID, root.SpanID)
	}
	if serveRoot.ParentID == "" || serveRoot.Instance != "fleet" {
		t.Fatalf("server root not joined under the propagated context: %+v", serveRoot)
	}
	if queue.ParentID != serveRoot.SpanID || exec.ParentID != serveRoot.SpanID {
		t.Fatalf("queue/exec misparented: queue %+v exec %+v", queue, exec)
	}
	if exec.DurUS < 60_000 {
		t.Fatalf("exec span %vus, want ≥ the injected 60ms", exec.DurUS)
	}
	var ls int
	for _, sp := range tr.Spans {
		if strings.HasPrefix(sp.Name, "ls.") {
			if sp.ParentID != exec.SpanID {
				t.Fatalf("solver span %q not under exec: %+v", sp.Name, sp)
			}
			ls++
		}
	}
	if ls == 0 {
		t.Fatalf("no ls.* solver spans in the trace: %+v", tr.Spans)
	}

	// The slow request's trace ID is the /metrics latency exemplar for the
	// bucket it landed in — the scrape links back to this exact trace.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if want := `# {trace_id="` + tr.TraceID + `"}`; !strings.Contains(string(body), want) {
		t.Fatalf("/metrics carries no exemplar %s", want)
	}
	if _, err := parsePromText(strings.NewReader(string(body))); err != nil {
		t.Fatalf("exposition with exemplars no longer parses: %v", err)
	}

	// Nothing is in flight once the call returned.
	rresp, err := http.Get(ts.URL + "/v1/requests")
	if err != nil {
		t.Fatal(err)
	}
	var reqs struct {
		Requests []inflightOut `json:"requests"`
	}
	err = json.NewDecoder(rresp.Body).Decode(&reqs)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs.Requests) != 0 {
		t.Fatalf("in-flight table not drained: %+v", reqs.Requests)
	}
}

// TestTraceFastNotRetained is the companion: the same path without injected
// latency stays below the threshold and leaves nothing behind.
func TestTraceFastNotRetained(t *testing.T) {
	fr := obs.NewFlightRecorder(obs.FlightConfig{Reservoir: -1, Threshold: time.Hour})
	ts, c := traceGateway(t, fr)

	if _, err := c.Unassigned(context.Background(), "fleet", 2, 0); err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []traceOut `json:"traces"`
	}
	hresp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(hresp.Body).Decode(&list)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 0 {
		t.Fatalf("fast clean request retained %d traces: %+v", len(list.Traces), list.Traces)
	}
	if st := fr.Stats(); st.Completed < 1 {
		t.Fatalf("recorder saw no completed traces: %+v", st)
	}
}

// TestTracesErrorFilter pins the ?error=true filter: an erred request is
// retained with its error and the filter serves only erred traces.
func TestTracesErrorFilter(t *testing.T) {
	fr := obs.NewFlightRecorder(obs.FlightConfig{Reservoir: -1, Threshold: time.Nanosecond})
	ts, c := traceGateway(t, fr)

	faults.Enable(faults.Plan{Seed: 3, Rules: map[string]faults.Rule{
		"serve.exec": {Panic: 1},
	}})
	_, err := c.Unassigned(context.Background(), "fleet", 2, 0)
	faults.Disable()
	if err == nil {
		t.Fatal("panicked solve returned no error")
	}

	var list struct {
		Traces []traceOut `json:"traces"`
	}
	hresp, err := http.Get(ts.URL + "/v1/traces?error=true")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(hresp.Body).Decode(&list)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) == 0 {
		t.Fatal("error filter served no traces after a panicked solve")
	}
	for _, tr := range list.Traces {
		if tr.Err == "" || tr.Reason != string(obs.KeepError) {
			t.Fatalf("error filter served a clean trace: %+v", tr)
		}
	}
}
