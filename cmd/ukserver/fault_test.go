package main

// End-to-end fault semantics over real HTTP: the panic→500 mapping, the
// Retry-After contract on 429 and draining 503s, and the public client
// package driving the gateway — including its typed error mapping.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/dataio"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/serve"
)

// euDoc renders a small euclidean instance document for registration.
func euDoc(t *testing.T, seed int64) string {
	t.Helper()
	pts, err := gen.GaussianClusters(rand.New(rand.NewSource(seed)), 15, 3, 2, 2, 1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := dataio.WriteEuclidean(&body, pts); err != nil {
		t.Fatal(err)
	}
	return body.String()
}

func TestStatusForFaultTyped(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{serve.ErrDraining, http.StatusServiceUnavailable},
		{serve.ErrClosed, http.StatusServiceUnavailable},
		{serve.ErrPanicked, http.StatusInternalServerError},
		{&serve.PanicError{Value: "boom"}, http.StatusInternalServerError},
		{serve.ErrOverloaded, http.StatusTooManyRequests},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
	if got := retryAfterHeader(10 * time.Millisecond); got != "1" {
		t.Errorf("retryAfterHeader(10ms) = %q, want floor \"1\"", got)
	}
	if got := retryAfterHeader(1500 * time.Millisecond); got != "2" {
		t.Errorf("retryAfterHeader(1.5s) = %q, want ceiling \"2\"", got)
	}
}

// TestGatewayPanicMaps500 pins the HTTP face of panic isolation: an injected
// solver panic surfaces as a 500 with the panic typed in the body, and the
// very next request on the same worker pool succeeds.
func TestGatewayPanicMaps500(t *testing.T) {
	gw, err := newGateway(1, nil, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	ts := httptest.NewServer(gw.mux())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/instances/a", strings.NewReader(euDoc(t, 3)))
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %v %v", err, resp)
	}

	faults.Enable(faults.Plan{Seed: 7, Rules: map[string]faults.Rule{
		"serve.exec": {Panic: 1},
	}})
	out, status, err := postJSON(http.DefaultClient, ts.URL+"/v1/solve", `{"instance":"a","k":2}`)
	faults.Disable()
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("panicked solve: status %d, want 500: %s", status, out)
	}
	if !bytes.Contains(out, []byte("panic")) {
		t.Fatalf("panicked solve body carries no panic message: %s", out)
	}

	// The worker survived: same pool, clean answer.
	out, status, err = postJSON(http.DefaultClient, ts.URL+"/v1/solve", `{"instance":"a","k":2}`)
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-panic solve: status %d err %v: %s", status, err, out)
	}

	// The panic is accounted in the metrics JSON.
	var m map[string]struct {
		Shards []shardOut `json:"shards"`
	}
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	eu := m["euclidean"].Shards
	if n := eu[len(eu)-1].Panicked; n != 1 {
		t.Fatalf("panicked total = %d, want 1", n)
	}
}

// TestGatewayRetryAfterAndDrain drives the full overload→drain story over
// HTTP: a wedged single-worker single-slot gateway answers 429 with a
// Retry-After hint, a draining gateway answers 503 with Retry-After while
// admitted work completes, and the drain lets that work finish cleanly.
func TestGatewayRetryAfterAndDrain(t *testing.T) {
	gw, err := newGateway(1, nil, nil, "",
		serve.WithShards(1), serve.WithWorkersPerShard(1), serve.WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	ts := httptest.NewServer(gw.mux())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/instances/a", strings.NewReader(euDoc(t, 4)))
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %v %v", err, resp)
	}

	// Every execution now takes >= 300ms, giving the test a window in which
	// the worker is provably busy and the drain provably in progress.
	faults.Enable(faults.Plan{Seed: 1, Rules: map[string]faults.Rule{
		"serve.exec": {Latency: 1, Delay: 300 * time.Millisecond},
	}})
	defer faults.Disable()

	admitted := func() (int, int) {
		var m map[string]struct {
			Shards []shardOut `json:"shards"`
		}
		resp, err := http.Get(ts.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		sh := m["euclidean"].Shards
		tot := sh[len(sh)-1]
		return int(tot.Admitted), tot.QueueDepth
	}

	solve := func(dst *int) func() {
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, status, err := postJSON(http.DefaultClient, ts.URL+"/v1/solve", `{"instance":"a","k":2}`)
			if err != nil {
				t.Errorf("background solve: %v", err)
			}
			*dst = status
		}()
		return func() { <-done }
	}

	// Wedge the worker (solve A), fill the one queue slot (solve B).
	var statusA, statusB int
	joinA := solve(&statusA)
	waitFor(t, func() bool { a, q := admitted(); return a == 1 && q == 0 })
	joinB := solve(&statusB)
	waitFor(t, func() bool { a, _ := admitted(); return a == 2 })

	// The queue is full: a third solve is rejected 429 with a Retry-After.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(`{"instance":"a","k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded solve: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carries no Retry-After")
	}

	// Drain. While admitted work runs, new requests get a typed 503 with a
	// Retry-After; the admitted solves still complete.
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- gw.shutdown(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(`{"instance":"a","k":2}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && bytes.Contains(body, []byte("draining")) {
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("draining 503 carries no Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never observed a draining 503 (last: %d %s)", resp.StatusCode, body)
		}
		time.Sleep(2 * time.Millisecond)
	}

	joinA()
	joinB()
	if statusA != http.StatusOK || statusB != http.StatusOK {
		t.Fatalf("admitted solves across the drain: %d/%d, want 200/200", statusA, statusB)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClientAgainstGateway runs the public client package against a live
// gateway: registry round trip, typed workloads with center decoding, typed
// error mapping, and the post-shutdown ErrUnavailable contract.
func TestClientAgainstGateway(t *testing.T) {
	gw, err := newGateway(1, nil, nil, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	ts := httptest.NewServer(gw.mux())
	defer ts.Close()

	c, err := client.New(ts.URL,
		client.WithMaxAttempts(2),
		client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := c.Register(ctx, "fleet", []byte(euDoc(t, 5))); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.Register(ctx, "fleet", []byte(euDoc(t, 5))); err == nil {
		t.Fatal("duplicate Register succeeded")
	} else {
		var se *client.StatusError
		if !errors.As(err, &se) || se.Status != http.StatusConflict {
			t.Fatalf("duplicate Register: %v, want 409 StatusError", err)
		}
	}
	insts, err := c.List(ctx)
	if err != nil || len(insts) != 1 || insts[0].Name != "fleet" || insts[0].Kind != dataio.KindEuclidean {
		t.Fatalf("List = %v, %v", insts, err)
	}

	solve, err := c.Solve(ctx, "fleet", 2, 0)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	centers, err := client.DecodeCenters[[]float64](solve.Centers)
	if err != nil || len(centers) != 2 || len(centers[0]) != 2 {
		t.Fatalf("DecodeCenters = %v, %v", centers, err)
	}
	ec, err := c.Ecost(ctx, "fleet", centers, solve.Assign, 0)
	if err != nil {
		t.Fatalf("Ecost: %v", err)
	}
	if ec.Ecost != solve.Ecost {
		t.Fatalf("Ecost(%v) = %v, want the solve's own cost %v", centers, ec.Ecost, solve.Ecost)
	}
	if _, err := c.Solve(ctx, "ghost", 2, 0); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("Solve(ghost): %v, want ErrNotFound", err)
	}
	if _, _, err := c.Freeze(ctx, "fleet"); err != nil {
		t.Fatalf("Freeze: %v", err)
	}

	// A shut-down gateway is typed ErrUnavailable through the client. The
	// instance stays registered — the workload router resolves the name
	// before admission, and an unknown name would 404 first.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); gw.shutdown(ctx) }()
	wg.Wait()
	if _, err := c.Solve(ctx, "fleet", 2, 0); !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("Solve after shutdown: %v, want ErrUnavailable", err)
	}
	if err := c.Unregister(ctx, "fleet"); err != nil {
		t.Fatalf("Unregister on a drained gateway (registry op, not a request): %v", err)
	}
}
