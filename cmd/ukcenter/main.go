// Command ukcenter solves an uncertain k-center instance from a JSON file
// produced by cmd/datagen (or hand-written; see internal/dataio for the
// schema) and prints the chosen centers, the assignment rule used, and the
// exact expected cost.
//
// Usage:
//
//	ukcenter -input instance.json -k 3 -rule ep -solver gonzalez
//	ukcenter -input graph.json -kind finite -k 2 -rule oc
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ukcenter:", err)
		os.Exit(1)
	}
}

type output struct {
	Kind            string      `json:"kind"`
	K               int         `json:"k"`
	Rule            string      `json:"rule"`
	Solver          string      `json:"solver"`
	Centers         interface{} `json:"centers"`
	Assign          []int       `json:"assign"`
	Ecost           float64     `json:"ecost"`
	EcostUnassigned float64     `json:"ecost_unassigned"`
	CertainRadius   float64     `json:"certain_radius"`
	EffectiveEps    float64     `json:"effective_eps"`
}

func run() error {
	var (
		input  = flag.String("input", "", "instance JSON file (required)")
		kind   = flag.String("kind", "euclidean", "euclidean|finite")
		k      = flag.Int("k", 3, "number of centers")
		rule   = flag.String("rule", "ep", "assignment rule: ed|ep|oc")
		solver = flag.String("solver", "gonzalez", "certain solver: gonzalez|eps|exact")
		eps    = flag.Float64("eps", 0.5, "epsilon for -solver eps")
	)
	flag.Parse()
	if *input == "" {
		return fmt.Errorf("-input is required")
	}
	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer f.Close()

	r, err := parseRule(*rule)
	if err != nil {
		return err
	}
	s, err := parseSolver(*solver)
	if err != nil {
		return err
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	switch *kind {
	case "euclidean":
		pts, err := dataio.ReadEuclidean(f)
		if err != nil {
			return err
		}
		res, err := core.SolveEuclidean(pts, *k, core.EuclideanOptions{
			Rule: r, Solver: s, Eps: *eps,
		})
		if err != nil {
			return err
		}
		centers := make([][]float64, len(res.Centers))
		for i, c := range res.Centers {
			centers[i] = []float64(c)
		}
		return enc.Encode(output{
			Kind: *kind, K: *k, Rule: r.String(), Solver: s.String(),
			Centers: centers, Assign: res.Assign, Ecost: res.Ecost,
			EcostUnassigned: res.EcostUnassigned, CertainRadius: res.CertainRadius,
			EffectiveEps: res.EffectiveEps,
		})
	case "finite":
		space, pts, err := dataio.ReadFinite(f)
		if err != nil {
			return err
		}
		if s == core.SolverEps {
			return fmt.Errorf("-solver eps requires a Euclidean instance; use gonzalez or exact")
		}
		res, err := core.SolveMetric[int](space, pts, space.Points(), *k, core.MetricOptions{
			Rule: r, Solver: s,
		})
		if err != nil {
			return err
		}
		return enc.Encode(output{
			Kind: *kind, K: *k, Rule: r.String(), Solver: s.String(),
			Centers: res.Centers, Assign: res.Assign, Ecost: res.Ecost,
			EcostUnassigned: res.EcostUnassigned, CertainRadius: res.CertainRadius,
			EffectiveEps: res.EffectiveEps,
		})
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}

func parseRule(s string) (core.Rule, error) {
	switch s {
	case "ed":
		return core.RuleED, nil
	case "ep":
		return core.RuleEP, nil
	case "oc":
		return core.RuleOC, nil
	default:
		return 0, fmt.Errorf("unknown rule %q (want ed|ep|oc)", s)
	}
}

func parseSolver(s string) (core.Solver, error) {
	switch s {
	case "gonzalez":
		return core.SolverGonzalez, nil
	case "eps":
		return core.SolverEps, nil
	case "exact":
		return core.SolverExactDiscrete, nil
	default:
		return 0, fmt.Errorf("unknown solver %q (want gonzalez|eps|exact)", s)
	}
}
