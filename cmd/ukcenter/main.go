// Command ukcenter solves an uncertain k-center instance from a JSON file
// produced by cmd/datagen (or hand-written; see internal/dataio for the
// schema) and prints the chosen centers, the assignment rule used, and the
// exact expected cost.
//
// It is a thin shell over the Instance/Solver API: both instance kinds run
// the same generic pipeline, and -parallel fans the hot loops out over a
// worker pool (the result is bit-identical to the sequential run). Ctrl-C
// cancels a solve via context wherever the pipeline checks it — inside the
// surrogate/assignment/cost loops and between stages; a long-running
// certain-solver stage (-solver exact or eps) finishes its stage first.
//
// Usage:
//
//	ukcenter -input instance.json -k 3 -rule ep -solver gonzalez
//	ukcenter -input graph.json -kind finite -k 2 -rule oc -parallel 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	ukc "repro"
	"repro/internal/dataio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ukcenter:", err)
		os.Exit(1)
	}
}

type output struct {
	Kind            string      `json:"kind"`
	K               int         `json:"k"`
	Rule            string      `json:"rule"`
	Solver          string      `json:"solver"`
	Parallel        int         `json:"parallel,omitempty"`
	Centers         interface{} `json:"centers"`
	Assign          []int       `json:"assign"`
	Ecost           float64     `json:"ecost"`
	EcostUnassigned float64     `json:"ecost_unassigned"`
	CertainRadius   float64     `json:"certain_radius"`
	EffectiveEps    float64     `json:"effective_eps"`
}

func run() error {
	var (
		input    = flag.String("input", "", "instance JSON file (required)")
		kind     = flag.String("kind", "euclidean", "euclidean|finite")
		k        = flag.Int("k", 3, "number of centers")
		rule     = flag.String("rule", "ep", "assignment rule: ed|ep|oc")
		solver   = flag.String("solver", "gonzalez", "certain solver: gonzalez|eps|exact")
		eps      = flag.Float64("eps", 0.5, "epsilon for -solver eps")
		parallel = flag.Int("parallel", 1, "worker count for the hot loops (<0 = all CPUs)")
	)
	flag.Parse()
	if *input == "" {
		return fmt.Errorf("-input is required")
	}
	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer f.Close()

	r, err := parseRule(*rule)
	if err != nil {
		return err
	}
	s, err := parseSolver(*solver)
	if err != nil {
		return err
	}

	// Ctrl-C aborts a long solve mid-flight through the context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []ukc.Option{
		ukc.WithRule(r),
		ukc.WithCertainSolver(s),
		ukc.WithEps(*eps),
		ukc.WithParallelism(*parallel),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	switch *kind {
	case "euclidean":
		pts, err := dataio.ReadEuclidean(f)
		if err != nil {
			return err
		}
		res, err := ukc.NewSolver[ukc.Vec](opts...).Solve(ctx, ukc.NewEuclideanInstance(pts), *k)
		if err != nil {
			return err
		}
		centers := make([][]float64, len(res.Centers))
		for i, c := range res.Centers {
			centers[i] = []float64(c)
		}
		return enc.Encode(output{
			Kind: *kind, K: *k, Rule: r.String(), Solver: s.String(), Parallel: *parallel,
			Centers: centers, Assign: res.Assign, Ecost: res.Ecost,
			EcostUnassigned: res.EcostUnassigned, CertainRadius: res.CertainRadius,
			EffectiveEps: res.EffectiveEps,
		})
	case "finite":
		space, pts, err := dataio.ReadFinite(f)
		if err != nil {
			return err
		}
		if s == ukc.SolverEps {
			return fmt.Errorf("-solver eps requires a Euclidean instance; use gonzalez or exact")
		}
		res, err := ukc.NewSolver[int](opts...).Solve(ctx, ukc.NewFiniteInstance(space, pts, nil), *k)
		if err != nil {
			return err
		}
		return enc.Encode(output{
			Kind: *kind, K: *k, Rule: r.String(), Solver: s.String(), Parallel: *parallel,
			Centers: res.Centers, Assign: res.Assign, Ecost: res.Ecost,
			EcostUnassigned: res.EcostUnassigned, CertainRadius: res.CertainRadius,
			EffectiveEps: res.EffectiveEps,
		})
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}

func parseRule(s string) (ukc.Rule, error) {
	switch s {
	case "ed":
		return ukc.RuleED, nil
	case "ep":
		return ukc.RuleEP, nil
	case "oc":
		return ukc.RuleOC, nil
	default:
		return 0, fmt.Errorf("unknown rule %q (want ed|ep|oc)", s)
	}
}

func parseSolver(s string) (ukc.CertainSolver, error) {
	switch s {
	case "gonzalez":
		return ukc.SolverGonzalez, nil
	case "eps":
		return ukc.SolverEps, nil
	case "exact":
		return ukc.SolverExactDiscrete, nil
	default:
		return 0, fmt.Errorf("unknown solver %q (want gonzalez|eps|exact)", s)
	}
}
