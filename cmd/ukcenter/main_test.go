package main

import (
	"testing"

	"repro/internal/core"
)

func TestParseRule(t *testing.T) {
	cases := map[string]core.Rule{"ed": core.RuleED, "ep": core.RuleEP, "oc": core.RuleOC}
	for s, want := range cases {
		got, err := parseRule(s)
		if err != nil || got != want {
			t.Errorf("parseRule(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseRule("bogus"); err == nil {
		t.Error("bogus rule accepted")
	}
}

func TestParseSolver(t *testing.T) {
	cases := map[string]core.Solver{
		"gonzalez": core.SolverGonzalez,
		"eps":      core.SolverEps,
		"exact":    core.SolverExactDiscrete,
	}
	for s, want := range cases {
		got, err := parseSolver(s)
		if err != nil || got != want {
			t.Errorf("parseSolver(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseSolver("bogus"); err == nil {
		t.Error("bogus solver accepted")
	}
}
