// Command experiments regenerates the paper's evaluation (DESIGN.md §2):
// every Table 1 row validated empirically, the runtime-scaling claims, the
// baseline comparison, and the ablations. Output is aligned text; -csvdir
// additionally writes each table as CSV.
//
// Usage:
//
//	experiments                 # run everything (minutes)
//	experiments -quick          # CI-sized run (seconds)
//	experiments -exp e1,e9      # selected experiments
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"repro/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids: e1,rows,e8,e9,c1,a1,a2,a3,a4,x1,r2,r3,r4 or all")
		quick    = flag.Bool("quick", false, "small instances (CI-sized)")
		trials   = flag.Int("trials", 0, "trials per cell (0 = default)")
		seed     = flag.Int64("seed", 1, "random seed")
		csvdir   = flag.String("csvdir", "", "also write each table as CSV under this directory")
		parallel = flag.Int("parallel", 1, "solver worker count for the hot loops (<0 = all CPUs); results are bit-identical")
	)
	flag.Parse()

	// Ctrl-C aborts the current experiment mid-solve through the context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := harness.Config{Seed: *seed, Trials: *trials, Quick: *quick, Ctx: ctx, Parallelism: *parallel}
	runners := map[string]func(harness.Config) (*harness.Report, error){
		"e1":   harness.RunE1,
		"rows": harness.RunEuclideanRows,
		"e8":   harness.RunE8,
		"e9":   harness.RunE9,
		"c1":   harness.RunC1,
		"a1":   harness.RunA1,
		"a2":   harness.RunA2,
		"a3":   harness.RunA3,
		"a4":   harness.RunA4,
		"x1":   harness.RunX1,
		"r2":   harness.RunR2,
		"r3":   harness.RunR3,
		"r4":   harness.RunR4,
	}
	order := []string{"e1", "rows", "e8", "e9", "c1", "a1", "a2", "a3", "a4", "x1", "r2", "r3", "r4"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := runners[id]; !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, id)
		}
	}

	allPass := true
	for _, id := range selected {
		rep, err := runners[id](cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		rep.Render(os.Stdout)
		if !rep.Pass {
			allPass = false
		}
		if *csvdir != "" {
			if err := writeCSVs(*csvdir, rep); err != nil {
				return err
			}
		}
	}
	if !allPass {
		return fmt.Errorf("one or more experiments failed their invariants")
	}
	return nil
}

func writeCSVs(dir string, rep *harness.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tab := range rep.Tables {
		name := fmt.Sprintf("%s_%d.csv", strings.ToLower(rep.ID), i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := tab.RenderCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
