package emax

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestValidate(t *testing.T) {
	good := RV{Vals: []float64{1, 2}, Probs: []float64{0.5, 0.5}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid RV rejected: %v", err)
	}
	bad := []RV{
		{},
		{Vals: []float64{1}, Probs: []float64{0.5, 0.5}},
		{Vals: []float64{1, 2}, Probs: []float64{0.6, 0.6}},
		{Vals: []float64{1, 2}, Probs: []float64{-0.1, 1.1}},
		{Vals: []float64{math.NaN()}, Probs: []float64{1}},
		{Vals: []float64{math.Inf(1)}, Probs: []float64{1}},
		{Vals: []float64{1}, Probs: []float64{math.NaN()}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad RV %d accepted", i)
		}
	}
}

func TestMean(t *testing.T) {
	r := RV{Vals: []float64{0, 10}, Probs: []float64{0.75, 0.25}}
	if got := r.Mean(); !approxEq(got, 2.5, 1e-12) {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestExpectedMaxSingleRV(t *testing.T) {
	// E[max] of one RV is its mean.
	r := RV{Vals: []float64{1, 3, 7}, Probs: []float64{0.2, 0.3, 0.5}}
	got, err := ExpectedMax([]RV{r})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, r.Mean(), 1e-12) {
		t.Errorf("ExpectedMax = %g, want mean %g", got, r.Mean())
	}
}

func TestExpectedMaxDeterministic(t *testing.T) {
	rvs := []RV{
		{Vals: []float64{2}, Probs: []float64{1}},
		{Vals: []float64{5}, Probs: []float64{1}},
		{Vals: []float64{3}, Probs: []float64{1}},
	}
	got, err := ExpectedMax(rvs)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, 5, 1e-12) {
		t.Errorf("ExpectedMax = %g, want 5", got)
	}
}

func TestExpectedMaxTwoCoins(t *testing.T) {
	// Two iid uniform{0,1}: max is 1 with prob 3/4 → E = 0.75.
	coin := RV{Vals: []float64{0, 1}, Probs: []float64{0.5, 0.5}}
	got, err := ExpectedMax([]RV{coin, coin})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, 0.75, 1e-12) {
		t.Errorf("ExpectedMax = %g, want 0.75", got)
	}
}

func TestExpectedMaxEmpty(t *testing.T) {
	got, err := ExpectedMax(nil)
	if err != nil || got != 0 {
		t.Errorf("ExpectedMax(nil) = %g, %v", got, err)
	}
}

func TestExpectedMaxInvalidRV(t *testing.T) {
	if _, err := ExpectedMax([]RV{{}}); err == nil {
		t.Error("invalid RV accepted")
	}
}

func TestExpectedMaxNegativeValues(t *testing.T) {
	// The sweep must handle negative supports (G > 0 at negative t).
	rvs := []RV{
		{Vals: []float64{-3, -1}, Probs: []float64{0.5, 0.5}},
		{Vals: []float64{-2}, Probs: []float64{1}},
	}
	want, err := ExpectedMaxNaive(rvs, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExpectedMax(rvs)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, want, 1e-12) {
		t.Errorf("ExpectedMax = %g, naive = %g", got, want)
	}
}

func TestExpectedMaxDuplicateValues(t *testing.T) {
	// Repeated identical support values within and across RVs.
	rvs := []RV{
		{Vals: []float64{1, 1, 2}, Probs: []float64{0.25, 0.25, 0.5}},
		{Vals: []float64{1, 2}, Probs: []float64{0.5, 0.5}},
	}
	want, err := ExpectedMaxNaive(rvs, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExpectedMax(rvs)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, want, 1e-12) {
		t.Errorf("ExpectedMax = %g, naive = %g", got, want)
	}
}

func TestExpectedMaxZeroProbabilityAtoms(t *testing.T) {
	rvs := []RV{
		{Vals: []float64{1, 99}, Probs: []float64{1, 0}},
		{Vals: []float64{0.5}, Probs: []float64{1}},
	}
	got, err := ExpectedMax(rvs)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, 1, 1e-12) {
		t.Errorf("ExpectedMax = %g, want 1 (zero-prob atom leaked)", got)
	}
}

func TestPropertyExpectedMaxMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(5)
		rvs := make([]RV, n)
		for i := range rvs {
			z := 1 + rng.Intn(4)
			vals := make([]float64, z)
			probs := make([]float64, z)
			var sum float64
			for j := range vals {
				vals[j] = math.Round(rng.NormFloat64()*100) / 10 // coarse grid → duplicates likely
				probs[j] = rng.Float64() + 0.01
				sum += probs[j]
			}
			for j := range probs {
				probs[j] /= sum
			}
			rvs[i] = RV{Vals: vals, Probs: probs}
		}
		want, err := ExpectedMaxNaive(rvs, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExpectedMax(rvs)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(got, want, 1e-9*(1+math.Abs(want))) {
			t.Fatalf("trial %d: sweep %g vs naive %g", trial, got, want)
		}
	}
}

func TestPropertyExpectedMaxBounds(t *testing.T) {
	// max_i E[X_i] ≤ E[max_i X_i] ≤ Σ_i E[|X_i|] (for non-negative supports,
	// the upper bound Σ E[X_i] holds).
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		rvs := make([]RV, n)
		maxMean, sumMean := math.Inf(-1), 0.0
		for i := range rvs {
			z := 1 + rng.Intn(5)
			vals := make([]float64, z)
			probs := make([]float64, z)
			var sum float64
			for j := range vals {
				vals[j] = rng.Float64() * 10 // non-negative
				probs[j] = rng.Float64() + 0.01
				sum += probs[j]
			}
			for j := range probs {
				probs[j] /= sum
			}
			rvs[i] = RV{Vals: vals, Probs: probs}
			m := rvs[i].Mean()
			if m > maxMean {
				maxMean = m
			}
			sumMean += m
		}
		got, err := ExpectedMax(rvs)
		if err != nil {
			t.Fatal(err)
		}
		if got < maxMean-1e-9 {
			t.Fatalf("E[max] = %g below max of means %g", got, maxMean)
		}
		if got > sumMean+1e-9 {
			t.Fatalf("E[max] = %g above sum of means %g", got, sumMean)
		}
	}
}

func TestExpectedMaxVsMonteCarloLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo cross-check skipped in -short")
	}
	rng := rand.New(rand.NewSource(5))
	n, z := 40, 6
	rvs := make([]RV, n)
	for i := range rvs {
		vals := make([]float64, z)
		probs := make([]float64, z)
		var sum float64
		for j := range vals {
			vals[j] = rng.Float64() * 100
			probs[j] = rng.Float64() + 0.05
			sum += probs[j]
		}
		for j := range probs {
			probs[j] /= sum
		}
		rvs[i] = RV{Vals: vals, Probs: probs}
	}
	exact, err := ExpectedMax(rvs)
	if err != nil {
		t.Fatal(err)
	}
	mc := MonteCarloMax(rvs, 200000, rng)
	if math.Abs(exact-mc)/exact > 0.01 {
		t.Errorf("exact %g vs Monte-Carlo %g differ by more than 1%%", exact, mc)
	}
}

func TestExpectedMaxNaiveGuards(t *testing.T) {
	r := RV{Vals: []float64{0, 1}, Probs: []float64{0.5, 0.5}}
	rvs := make([]RV, 40)
	for i := range rvs {
		rvs[i] = r
	}
	if _, err := ExpectedMaxNaive(rvs, 1<<20); err == nil {
		t.Error("naive enumeration over 2^40 states accepted")
	}
	if _, err := ExpectedMaxNaive([]RV{{}}, 10); err == nil {
		t.Error("invalid RV accepted")
	}
	if got, err := ExpectedMaxNaive(nil, 10); err != nil || got != 0 {
		t.Errorf("empty naive = %g, %v", got, err)
	}
}

func TestUpperTail(t *testing.T) {
	coin := RV{Vals: []float64{0, 1}, Probs: []float64{0.5, 0.5}}
	p, err := ExpectedMaxUpperTail([]RV{coin, coin}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(p, 0.75, 1e-12) {
		t.Errorf("P(max > 0.5) = %g, want 0.75", p)
	}
	p, err = ExpectedMaxUpperTail([]RV{coin}, 1)
	if err != nil || p != 0 {
		t.Errorf("P(max > 1) = %g, %v, want 0", p, err)
	}
	if _, err := ExpectedMaxUpperTail([]RV{{}}, 0); err == nil {
		t.Error("invalid RV accepted")
	}
}

func TestMaxCDF(t *testing.T) {
	coin := RV{Vals: []float64{0, 1}, Probs: []float64{0.5, 0.5}}
	cdf, err := MaxCDF([]RV{coin, coin}, []float64{-1, 0, 0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.25, 0.25, 1, 1}
	for i := range want {
		if !approxEq(cdf[i], want[i], 1e-12) {
			t.Errorf("cdf[%d] = %g, want %g", i, cdf[i], want[i])
		}
	}
	if _, err := MaxCDF([]RV{{}}, []float64{0}); err == nil {
		t.Error("invalid RV accepted")
	}
	// Consistency with the tail helper: P(max ≤ t) = 1 − P(max > t).
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 50; trial++ {
		rvs := []RV{
			{Vals: []float64{rng.Float64(), rng.Float64() * 2}, Probs: []float64{0.3, 0.7}},
			{Vals: []float64{rng.Float64() * 3}, Probs: []float64{1}},
		}
		tq := rng.Float64() * 3
		cdf, err := MaxCDF(rvs, []float64{tq})
		if err != nil {
			t.Fatal(err)
		}
		tail, err := ExpectedMaxUpperTail(rvs, tq)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(cdf[0]+tail, 1, 1e-12) {
			t.Fatalf("trial %d: CDF %g + tail %g != 1", trial, cdf[0], tail)
		}
	}
}

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := RV{Vals: []float64{1, 2, 3}, Probs: []float64{0.2, 0.3, 0.5}}
	counts := map[float64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Sample(rng)]++
	}
	for j, v := range r.Vals {
		got := float64(counts[v]) / n
		if math.Abs(got-r.Probs[j]) > 0.01 {
			t.Errorf("P(X=%g) sampled as %g, want %g", v, got, r.Probs[j])
		}
	}
}

func BenchmarkExpectedMax(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []struct{ n, z int }{{10, 5}, {100, 5}, {1000, 10}} {
		rvs := make([]RV, size.n)
		for i := range rvs {
			vals := make([]float64, size.z)
			probs := make([]float64, size.z)
			for j := range vals {
				vals[j] = rng.Float64() * 100
				probs[j] = 1 / float64(size.z)
			}
			rvs[i] = RV{Vals: vals, Probs: probs}
		}
		b.Run(benchName(size.n, size.z), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ExpectedMax(rvs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(n, z int) string {
	return "n=" + itoa(n) + "/z=" + itoa(z)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// randomRVs draws n RVs on a coarse value grid (duplicates likely) for the
// arena property tests.
func randomRVs(rng *rand.Rand, n int) []RV {
	rvs := make([]RV, n)
	for i := range rvs {
		z := 1 + rng.Intn(5)
		vals := make([]float64, z)
		probs := make([]float64, z)
		var sum float64
		for j := range vals {
			vals[j] = math.Round(rng.NormFloat64()*100) / 10
			probs[j] = rng.Float64() + 0.01
			sum += probs[j]
		}
		for j := range probs {
			probs[j] /= sum
		}
		rvs[i] = RV{Vals: vals, Probs: probs}
	}
	return rvs
}

// TestArenaExpectedMaxMatches pins the buffer-reusing arena path to the
// package-level ExpectedMax bit-for-bit, reusing one arena across trials so
// stale buffer state would be caught.
func TestArenaExpectedMaxMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	var a Arena
	for trial := 0; trial < 200; trial++ {
		rvs := randomRVs(rng, 1+rng.Intn(8))
		want, err := ExpectedMax(rvs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.ExpectedMax(rvs)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: arena %g != package %g", trial, got, want)
		}
	}
}

// TestArenaExpectedMaxValidates: the arena path keeps the validation
// contract of the package-level function.
func TestArenaExpectedMaxValidates(t *testing.T) {
	var a Arena
	if _, err := a.ExpectedMax([]RV{{Vals: []float64{1}, Probs: []float64{0.5}}}); err == nil {
		t.Fatal("invalid RV accepted")
	}
	if got, err := a.ExpectedMax(nil); err != nil || got != 0 {
		t.Fatalf("empty input: got %g, %v", got, err)
	}
}

// TestSweepSortedMatchesExpectedMax feeds SweepSorted a hand-sorted event
// stream and checks it against the full evaluator, including events that
// share exact values across RVs (the apply-all-at-t batch path).
func TestSweepSortedMatchesExpectedMax(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	var a Arena
	for trial := 0; trial < 200; trial++ {
		rvs := randomRVs(rng, 1+rng.Intn(8))
		var events []Event
		for i, r := range rvs {
			for j, v := range r.Vals {
				if r.Probs[j] > 0 {
					events = append(events, Event{Val: v, Prob: r.Probs[j], RV: int32(i)})
				}
			}
		}
		sort.Slice(events, func(x, y int) bool { return events[x].Val < events[y].Val })
		want, err := ExpectedMax(rvs)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.SweepSorted(events, len(rvs)); got != want {
			t.Fatalf("trial %d: SweepSorted %g != ExpectedMax %g", trial, got, want)
		}
	}
	if got := a.SweepSorted(nil, 0); got != 0 {
		t.Fatalf("empty sweep: %g", got)
	}
}
