// Package emax computes the exact expectation of the maximum of independent
// discrete random variables.
//
// This is the computational heart of the reproduction. The paper's cost
//
//	Ecost_A(C) = Σ_R prob(R) · max_i d(P̂_i, A(P_i))
//
// ranges over Π z_i realizations, which is exponential — but for a *fixed*
// center set and assignment the per-point distances D_i = d(X_i, A(P_i)) are
// independent discrete random variables, so
//
//	P(max_i D_i ≤ t) = Π_i F_i(t),   E[max] = Σ_k t_k · (G(t_k) − G(t_{k−1}))
//
// over the sorted union of support values t_k, with G = Π F_i. ExpectedMax
// implements that sweep in O(N log N) for N = Σ z_i, which is what makes the
// "exact empirical approximation ratio" experiments feasible. A brute-force
// enumeration oracle and a Monte-Carlo estimator are provided for
// cross-checking.
package emax

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RV is a discrete random variable: P(X = Vals[j]) = Probs[j]. Values need
// not be sorted or distinct; probabilities must be non-negative and sum to 1
// within validation tolerance.
type RV struct {
	Vals  []float64
	Probs []float64
}

// ProbSumTol is the allowed deviation of Σ Probs from 1 in Validate.
const ProbSumTol = 1e-9

// Validate checks structural invariants: equal nonzero lengths, finite
// values, non-negative probabilities summing to 1 within ProbSumTol.
func (r RV) Validate() error {
	if len(r.Vals) == 0 {
		return fmt.Errorf("emax: RV with empty support")
	}
	if len(r.Vals) != len(r.Probs) {
		return fmt.Errorf("emax: RV with %d values and %d probabilities", len(r.Vals), len(r.Probs))
	}
	var sum float64
	for j, p := range r.Probs {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("emax: probability %d = %g", j, p)
		}
		if math.IsNaN(r.Vals[j]) || math.IsInf(r.Vals[j], 0) {
			return fmt.Errorf("emax: value %d = %g", j, r.Vals[j])
		}
		sum += p
	}
	if math.Abs(sum-1) > ProbSumTol {
		return fmt.Errorf("emax: probabilities sum to %g, want 1", sum)
	}
	return nil
}

// Mean returns E[X] = Σ_j Probs[j]·Vals[j].
func (r RV) Mean() float64 {
	var s float64
	for j, p := range r.Probs {
		s += p * r.Vals[j]
	}
	return s
}

// Sample draws one realization of X.
func (r RV) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	var acc float64
	for j, p := range r.Probs {
		acc += p
		if u < acc {
			return r.Vals[j]
		}
	}
	return r.Vals[len(r.Vals)-1] // guard against rounding of the prefix sums
}

type event struct {
	val  float64
	rv   int
	prob float64
}

// ExpectedMax returns E[max_i X_i] for independent X_i, exactly (up to
// floating point), via the merged-CDF sweep. It returns an error if any RV
// fails Validate; an empty slice has expected max 0 by convention.
func ExpectedMax(rvs []RV) (float64, error) {
	if len(rvs) == 0 {
		return 0, nil
	}
	var events []event
	for i, r := range rvs {
		if err := r.Validate(); err != nil {
			return 0, fmt.Errorf("rv %d: %w", i, err)
		}
		for j, v := range r.Vals {
			if r.Probs[j] > 0 {
				events = append(events, event{v, i, r.Probs[j]})
			}
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].val < events[b].val })

	// Sweep values in ascending order maintaining G(t) = Π_i F_i(t).
	// F_i starts at 0, so track the count of zero factors separately and keep
	// the product of the non-zero factors; G is zero until zeros == 0.
	cdf := make([]float64, len(rvs))
	zeros := len(rvs)
	logProd := 0.0 // Σ log F_i over i with F_i > 0, for drift-free updates

	var expected float64
	prevG := 0.0
	i := 0
	for i < len(events) {
		t := events[i].val
		// Apply every event at this exact value before reading G(t).
		for i < len(events) && events[i].val == t {
			e := events[i]
			old := cdf[e.rv]
			nw := old + e.prob
			if nw > 1 {
				nw = 1 // clamp prefix-sum rounding
			}
			cdf[e.rv] = nw
			if old == 0 {
				zeros--
				logProd += math.Log(nw)
			} else {
				logProd += math.Log(nw) - math.Log(old)
			}
			i++
		}
		var g float64
		if zeros == 0 {
			g = math.Exp(logProd)
			if g > 1 {
				g = 1
			}
		}
		if g > prevG {
			expected += t * (g - prevG)
			prevG = g
		}
	}
	return expected, nil
}

// ExpectedMaxNaive enumerates all Π z_i joint realizations. It is the test
// oracle; it returns an error if the joint support exceeds maxStates (use
// ~1e7) or any RV is invalid.
func ExpectedMaxNaive(rvs []RV, maxStates int) (float64, error) {
	if len(rvs) == 0 {
		return 0, nil
	}
	states := 1
	for i, r := range rvs {
		if err := r.Validate(); err != nil {
			return 0, fmt.Errorf("rv %d: %w", i, err)
		}
		states *= len(r.Vals)
		if states > maxStates || states < 0 {
			return 0, fmt.Errorf("emax: joint support exceeds %d states", maxStates)
		}
	}
	idx := make([]int, len(rvs))
	var expected float64
	for {
		prob := 1.0
		maxV := math.Inf(-1)
		for i, r := range rvs {
			prob *= r.Probs[idx[i]]
			if v := r.Vals[idx[i]]; v > maxV {
				maxV = v
			}
		}
		expected += prob * maxV
		// Odometer increment.
		k := 0
		for k < len(rvs) {
			idx[k]++
			if idx[k] < len(rvs[k].Vals) {
				break
			}
			idx[k] = 0
			k++
		}
		if k == len(rvs) {
			return expected, nil
		}
	}
}

// MonteCarloMax estimates E[max_i X_i] with `samples` independent joint
// draws. Used in tests to cross-check ExpectedMax on instances too large for
// the naive oracle.
func MonteCarloMax(rvs []RV, samples int, rng *rand.Rand) float64 {
	if len(rvs) == 0 || samples <= 0 {
		return 0
	}
	var sum float64
	for s := 0; s < samples; s++ {
		maxV := math.Inf(-1)
		for _, r := range rvs {
			if v := r.Sample(rng); v > maxV {
				maxV = v
			}
		}
		sum += maxV
	}
	return sum / float64(samples)
}

// MaxCDF returns P(max_i X_i ≤ t) for each query threshold, exploiting the
// same independence factorization as ExpectedMax: P(max ≤ t) = Π_i F_i(t).
// The queries need not be sorted. Returns an error on invalid RVs.
func MaxCDF(rvs []RV, ts []float64) ([]float64, error) {
	out := make([]float64, len(ts))
	for i := range out {
		out[i] = 1
	}
	for i, r := range rvs {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("rv %d: %w", i, err)
		}
		for q, t := range ts {
			var f float64
			for j, v := range r.Vals {
				if v <= t {
					f += r.Probs[j]
				}
			}
			if f > 1 {
				f = 1
			}
			out[q] *= f
		}
	}
	return out, nil
}

// ExpectedMaxUpperTail returns P(max_i X_i > t) — useful for tail diagnostics
// in the harness. Returns an error on invalid RVs.
func ExpectedMaxUpperTail(rvs []RV, t float64) (float64, error) {
	prod := 1.0
	for i, r := range rvs {
		if err := r.Validate(); err != nil {
			return 0, fmt.Errorf("rv %d: %w", i, err)
		}
		var f float64
		for j, v := range r.Vals {
			if v <= t {
				f += r.Probs[j]
			}
		}
		if f > 1 {
			f = 1
		}
		prod *= f
	}
	return 1 - prod, nil
}
