// Package emax computes the exact expectation of the maximum of independent
// discrete random variables.
//
// This is the computational heart of the reproduction. The paper's cost
//
//	Ecost_A(C) = Σ_R prob(R) · max_i d(P̂_i, A(P_i))
//
// ranges over Π z_i realizations, which is exponential — but for a *fixed*
// center set and assignment the per-point distances D_i = d(X_i, A(P_i)) are
// independent discrete random variables, so
//
//	P(max_i D_i ≤ t) = Π_i F_i(t),   E[max] = Σ_k t_k · (G(t_k) − G(t_{k−1}))
//
// over the sorted union of support values t_k, with G = Π F_i. ExpectedMax
// implements that sweep in O(N log N) for N = Σ z_i, which is what makes the
// "exact empirical approximation ratio" experiments feasible. A brute-force
// enumeration oracle and a Monte-Carlo estimator are provided for
// cross-checking.
package emax

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RV is a discrete random variable: P(X = Vals[j]) = Probs[j]. Values need
// not be sorted or distinct; probabilities must be non-negative and sum to 1
// within validation tolerance.
type RV struct {
	Vals  []float64
	Probs []float64
}

// ProbSumTol is the allowed deviation of Σ Probs from 1 in Validate.
const ProbSumTol = 1e-9

// Validate checks structural invariants: equal nonzero lengths, finite
// values, non-negative probabilities summing to 1 within ProbSumTol.
func (r RV) Validate() error {
	if len(r.Vals) == 0 {
		return fmt.Errorf("emax: RV with empty support")
	}
	if len(r.Vals) != len(r.Probs) {
		return fmt.Errorf("emax: RV with %d values and %d probabilities", len(r.Vals), len(r.Probs))
	}
	var sum float64
	for j, p := range r.Probs {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("emax: probability %d = %g", j, p)
		}
		if math.IsNaN(r.Vals[j]) || math.IsInf(r.Vals[j], 0) {
			return fmt.Errorf("emax: value %d = %g", j, r.Vals[j])
		}
		sum += p
	}
	if math.Abs(sum-1) > ProbSumTol {
		return fmt.Errorf("emax: probabilities sum to %g, want 1", sum)
	}
	return nil
}

// Mean returns E[X] = Σ_j Probs[j]·Vals[j].
func (r RV) Mean() float64 {
	var s float64
	for j, p := range r.Probs {
		s += p * r.Vals[j]
	}
	return s
}

// Sample draws one realization of X.
func (r RV) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	var acc float64
	for j, p := range r.Probs {
		acc += p
		if u < acc {
			return r.Vals[j]
		}
	}
	return r.Vals[len(r.Vals)-1] // guard against rounding of the prefix sums
}

// Event is one support atom in an expected-max sweep: value Val carrying
// probability mass Prob, belonging to the random variable with index RV.
// A stream of Events sorted ascending by Val is the input contract of
// Arena.SweepSorted — the allocation-free core of ExpectedMax that callers
// with presorted supports (the incremental swap evaluator in internal/core)
// drive directly, skipping the per-call event build and sort.
type Event struct {
	Val  float64
	Prob float64
	RV   int32
}

// Arena carries the reusable scratch buffers of repeated expected-max
// sweeps: the event stream and the per-RV CDF/log-CDF state. A zero Arena
// is ready to use; buffers grow to the high-water mark of the evaluations
// run through it and are reused afterwards, so steady-state evaluations of
// same-shaped inputs do not allocate. An Arena is not safe for concurrent
// use; give each worker its own.
type Arena struct {
	events []Event
	cdf    []float64
	logCdf []float64
}

// ExpectedMax returns E[max_i X_i] for independent X_i, exactly (up to
// floating point), via the merged-CDF sweep. It returns an error if any RV
// fails Validate; an empty slice has expected max 0 by convention.
func ExpectedMax(rvs []RV) (float64, error) {
	var a Arena
	return a.ExpectedMax(rvs)
}

// ExpectedMax is the package-level ExpectedMax evaluated on the arena's
// reusable buffers: identical validation, identical result, no steady-state
// allocations beyond sort.Slice's closure.
func (a *Arena) ExpectedMax(rvs []RV) (float64, error) {
	if len(rvs) == 0 {
		return 0, nil
	}
	events := a.events[:0]
	for i, r := range rvs {
		if err := r.Validate(); err != nil {
			return 0, fmt.Errorf("rv %d: %w", i, err)
		}
		for j, v := range r.Vals {
			if r.Probs[j] > 0 {
				events = append(events, Event{Val: v, Prob: r.Probs[j], RV: int32(i)})
			}
		}
	}
	a.events = events
	sort.Slice(events, func(x, y int) bool { return events[x].Val < events[y].Val })
	return a.SweepSorted(events, len(rvs)), nil
}

// ExpectedMaxFlat computes E[max_i X_i] directly from a flat
// structure-of-arrays atom layout: atom f has value vals[f] with probability
// probs[f] and belongs to the random variable rvIdx[f] ∈ [0, nRVs). This is
// the representation a compiled instance (internal/core.Compiled) holds, so
// the evaluator consumes it without materializing per-RV slices.
//
// It is the validation-free fast path: the caller guarantees that values are
// finite, probabilities are positive (zero-probability atoms pruned), and
// each RV's total mass is 1 within ProbSumTol — the invariants a compiled
// instance establishes once at compile time. Given a warmed arena the only
// allocation is sort.Slice's closure. The result is bit-identical to
// ExpectedMax over the equivalent per-RV slices: the pre-sort event order
// (ascending f) matches the per-RV construction order.
func (a *Arena) ExpectedMaxFlat(vals, probs []float64, rvIdx []int32, nRVs int) float64 {
	events := a.events[:0]
	for f, v := range vals {
		events = append(events, Event{Val: v, Prob: probs[f], RV: rvIdx[f]})
	}
	a.events = events
	sort.Slice(events, func(x, y int) bool { return events[x].Val < events[y].Val })
	return a.SweepSorted(events, nRVs)
}

// SweepSorted computes E[max] from an event stream already sorted ascending
// by Val, for nRVs random variables indexed 0..nRVs-1. It is the sweep of
// ExpectedMax with the validation and the sort stripped; the caller
// guarantees the order, that every Prob is positive, and that each RV's
// total mass is 1 within ProbSumTol. Given a warmed arena it performs no
// allocations — the contract the incremental swap evaluator's benchmarks
// pin with ReportAllocs.
func (a *Arena) SweepSorted(events []Event, nRVs int) float64 {
	if len(events) == 0 {
		return 0
	}
	if cap(a.cdf) < nRVs {
		a.cdf = make([]float64, nRVs)
		a.logCdf = make([]float64, nRVs)
	}
	cdf, logCdf := a.cdf[:nRVs], a.logCdf[:nRVs]
	for i := range cdf {
		cdf[i] = 0
	}

	// Sweep values in ascending order maintaining G(t) = Π_i F_i(t).
	// F_i starts at 0, so track the count of zero factors separately and keep
	// Σ log F_i over the non-zero factors for drift-free updates; G is zero
	// until zeros == 0. logCdf caches log F_i so each event costs one Log.
	zeros := nRVs
	logProd := 0.0

	var expected float64
	prevG := 0.0
	i := 0
	for i < len(events) {
		t := events[i].Val
		// Apply every event at this exact value before reading G(t).
		for i < len(events) && events[i].Val == t {
			e := events[i]
			old := cdf[e.RV]
			nw := old + e.Prob
			if nw > 1 {
				nw = 1 // clamp prefix-sum rounding
			}
			cdf[e.RV] = nw
			lg := math.Log(nw)
			if old == 0 {
				zeros--
				logProd += lg
			} else {
				logProd += lg - logCdf[e.RV]
			}
			logCdf[e.RV] = lg
			i++
		}
		var g float64
		if zeros == 0 {
			g = math.Exp(logProd)
			if g > 1 {
				g = 1
			}
		}
		if g > prevG {
			expected += t * (g - prevG)
			prevG = g
		}
	}
	return expected
}

// ExpectedMaxNaive enumerates all Π z_i joint realizations. It is the test
// oracle; it returns an error if the joint support exceeds maxStates (use
// ~1e7) or any RV is invalid.
func ExpectedMaxNaive(rvs []RV, maxStates int) (float64, error) {
	if len(rvs) == 0 {
		return 0, nil
	}
	states := 1
	for i, r := range rvs {
		if err := r.Validate(); err != nil {
			return 0, fmt.Errorf("rv %d: %w", i, err)
		}
		states *= len(r.Vals)
		if states > maxStates || states < 0 {
			return 0, fmt.Errorf("emax: joint support exceeds %d states", maxStates)
		}
	}
	idx := make([]int, len(rvs))
	var expected float64
	for {
		prob := 1.0
		maxV := math.Inf(-1)
		for i, r := range rvs {
			prob *= r.Probs[idx[i]]
			if v := r.Vals[idx[i]]; v > maxV {
				maxV = v
			}
		}
		expected += prob * maxV
		// Odometer increment.
		k := 0
		for k < len(rvs) {
			idx[k]++
			if idx[k] < len(rvs[k].Vals) {
				break
			}
			idx[k] = 0
			k++
		}
		if k == len(rvs) {
			return expected, nil
		}
	}
}

// MonteCarloMax estimates E[max_i X_i] with `samples` independent joint
// draws. Used in tests to cross-check ExpectedMax on instances too large for
// the naive oracle.
func MonteCarloMax(rvs []RV, samples int, rng *rand.Rand) float64 {
	if len(rvs) == 0 || samples <= 0 {
		return 0
	}
	var sum float64
	for s := 0; s < samples; s++ {
		maxV := math.Inf(-1)
		for _, r := range rvs {
			if v := r.Sample(rng); v > maxV {
				maxV = v
			}
		}
		sum += maxV
	}
	return sum / float64(samples)
}

// MaxCDF returns P(max_i X_i ≤ t) for each query threshold, exploiting the
// same independence factorization as ExpectedMax: P(max ≤ t) = Π_i F_i(t).
// The queries need not be sorted. Returns an error on invalid RVs.
func MaxCDF(rvs []RV, ts []float64) ([]float64, error) {
	out := make([]float64, len(ts))
	for i := range out {
		out[i] = 1
	}
	for i, r := range rvs {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("rv %d: %w", i, err)
		}
		for q, t := range ts {
			var f float64
			for j, v := range r.Vals {
				if v <= t {
					f += r.Probs[j]
				}
			}
			if f > 1 {
				f = 1
			}
			out[q] *= f
		}
	}
	return out, nil
}

// ExpectedMaxUpperTail returns P(max_i X_i > t) — useful for tail diagnostics
// in the harness. Returns an error on invalid RVs.
func ExpectedMaxUpperTail(rvs []RV, t float64) (float64, error) {
	prod := 1.0
	for i, r := range rvs {
		if err := r.Validate(); err != nil {
			return 0, fmt.Errorf("rv %d: %w", i, err)
		}
		var f float64
		for j, v := range r.Vals {
			if v <= t {
				f += r.Probs[j]
			}
		}
		if f > 1 {
			f = 1
		}
		prod *= f
	}
	return 1 - prod, nil
}
