package geom

import (
	"fmt"
	"math"
)

// BBox is an axis-aligned bounding box [Min, Max] in R^d. A box with
// Min[i] > Max[i] in some coordinate is empty.
type BBox struct {
	Min, Max Vec
}

// NewBBox returns the empty box of dimension d: every coordinate range is
// [+Inf, -Inf], so that Extend works from a zero starting state.
func NewBBox(d int) BBox {
	b := BBox{Min: NewVec(d), Max: NewVec(d)}
	for i := 0; i < d; i++ {
		b.Min[i] = math.Inf(1)
		b.Max[i] = math.Inf(-1)
	}
	return b
}

// BoundingBox returns the tight bounding box of pts. It panics if pts is
// empty.
func BoundingBox(pts []Vec) BBox {
	if len(pts) == 0 {
		panic("geom: BoundingBox of empty point set")
	}
	b := NewBBox(len(pts[0]))
	for _, p := range pts {
		b.Extend(p)
	}
	return b
}

// Dim returns the dimension of the box.
func (b BBox) Dim() int { return len(b.Min) }

// Empty reports whether the box contains no points.
func (b BBox) Empty() bool {
	for i := range b.Min {
		if b.Min[i] > b.Max[i] {
			return true
		}
	}
	return len(b.Min) == 0
}

// Extend grows the box (in place, via the shared backing arrays) to include p.
func (b *BBox) Extend(p Vec) {
	if len(p) != len(b.Min) {
		panic(fmt.Sprintf("geom: BBox.Extend dimension mismatch %d vs %d", len(p), len(b.Min)))
	}
	for i, x := range p {
		if x < b.Min[i] {
			b.Min[i] = x
		}
		if x > b.Max[i] {
			b.Max[i] = x
		}
	}
}

// Contains reports whether p lies inside the closed box.
func (b BBox) Contains(p Vec) bool {
	if len(p) != len(b.Min) {
		return false
	}
	for i, x := range p {
		if x < b.Min[i] || x > b.Max[i] {
			return false
		}
	}
	return true
}

// Center returns the box midpoint. It panics if the box is empty.
func (b BBox) Center() Vec {
	if b.Empty() {
		panic("geom: Center of empty BBox")
	}
	return b.Min.Lerp(b.Max, 0.5)
}

// Diameter returns the Euclidean length of the box diagonal, 0 for empty
// boxes.
func (b BBox) Diameter() float64 {
	if b.Empty() {
		return 0
	}
	return Dist(b.Min, b.Max)
}

// Expand returns a copy of the box grown by margin on every side.
func (b BBox) Expand(margin float64) BBox {
	out := BBox{Min: b.Min.Clone(), Max: b.Max.Clone()}
	for i := range out.Min {
		out.Min[i] -= margin
		out.Max[i] += margin
	}
	return out
}
