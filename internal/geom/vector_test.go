package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func TestNewVec(t *testing.T) {
	v := NewVec(3)
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", v.Dim())
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("coordinate %d = %g, want 0", i, x)
		}
	}
}

func TestNewVecPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewVec(-1) did not panic")
		}
	}()
	NewVec(-1)
}

func TestCloneIsIndependent(t *testing.T) {
	v := Vec{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestAddSubScale(t *testing.T) {
	v := Vec{1, 2}
	w := Vec{3, -4}
	if got := v.Add(w); !got.Equal(Vec{4, -2}, tol) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); !got.Equal(Vec{-2, 6}, tol) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(-2); !got.Equal(Vec{-2, -4}, tol) {
		t.Errorf("Scale = %v", got)
	}
	// Originals untouched.
	if !v.Equal(Vec{1, 2}, 0) || !w.Equal(Vec{3, -4}, 0) {
		t.Error("Add/Sub/Scale mutated their inputs")
	}
}

func TestInPlaceOps(t *testing.T) {
	v := Vec{1, 1}
	v.AddInPlace(Vec{2, 3})
	if !v.Equal(Vec{3, 4}, tol) {
		t.Errorf("AddInPlace = %v", v)
	}
	v.AxpyInPlace(2, Vec{1, 0})
	if !v.Equal(Vec{5, 4}, tol) {
		t.Errorf("AxpyInPlace = %v", v)
	}
	v.ScaleInPlace(0.5)
	if !v.Equal(Vec{2.5, 2}, tol) {
		t.Errorf("ScaleInPlace = %v", v)
	}
}

func TestDotAndNorms(t *testing.T) {
	v := Vec{3, 4}
	if got := v.Dot(Vec{1, 2}); got != 11 {
		t.Errorf("Dot = %g, want 11", got)
	}
	if got := v.Norm(); math.Abs(got-5) > tol {
		t.Errorf("Norm = %g, want 5", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %g, want 7", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %g, want 4", got)
	}
	neg := Vec{-3, -4}
	if got := neg.Norm1(); got != 7 {
		t.Errorf("Norm1 of negative = %g, want 7", got)
	}
}

func TestDistances(t *testing.T) {
	v, w := Vec{0, 0}, Vec{3, 4}
	if got := Dist(v, w); math.Abs(got-5) > tol {
		t.Errorf("Dist = %g, want 5", got)
	}
	if got := DistSq(v, w); math.Abs(got-25) > tol {
		t.Errorf("DistSq = %g, want 25", got)
	}
	if got := Dist1(v, w); got != 7 {
		t.Errorf("Dist1 = %g, want 7", got)
	}
	if got := DistInf(v, w); got != 4 {
		t.Errorf("DistInf = %g, want 4", got)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { Vec{1}.Add(Vec{1, 2}) },
		func() { Vec{1}.Sub(Vec{1, 2}) },
		func() { Vec{1}.Dot(Vec{1, 2}) },
		func() { Dist(Vec{1}, Vec{1, 2}) },
		func() { Dist1(Vec{1}, Vec{1, 2}) },
		func() { DistInf(Vec{1}, Vec{1, 2}) },
		func() { Vec{1}.Lerp(Vec{1, 2}, 0.5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic on dimension mismatch", i)
				}
			}()
			f()
		}()
	}
}

func TestLerp(t *testing.T) {
	v, w := Vec{0, 0}, Vec{10, 20}
	if got := v.Lerp(w, 0); !got.Equal(v, tol) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := v.Lerp(w, 1); !got.Equal(w, tol) {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := v.Lerp(w, 0.25); !got.Equal(Vec{2.5, 5}, tol) {
		t.Errorf("Lerp(0.25) = %v", got)
	}
}

func TestEqual(t *testing.T) {
	if !(Vec{1, 2}).Equal(Vec{1 + 1e-13, 2}, 1e-12) {
		t.Error("Equal rejected within tolerance")
	}
	if (Vec{1, 2}).Equal(Vec{1.1, 2}, 1e-12) {
		t.Error("Equal accepted outside tolerance")
	}
	if (Vec{1, 2}).Equal(Vec{1, 2, 3}, 1) {
		t.Error("Equal accepted dimension mismatch")
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vec{1, 2}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vec{math.NaN()}).IsFinite() {
		t.Error("NaN reported finite")
	}
	if (Vec{math.Inf(1)}).IsFinite() {
		t.Error("+Inf reported finite")
	}
}

func TestString(t *testing.T) {
	if got := (Vec{1, 2.5}).String(); got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
}

func TestMean(t *testing.T) {
	pts := []Vec{{0, 0}, {2, 4}, {4, 2}}
	if got := Mean(pts); !got.Equal(Vec{2, 2}, tol) {
		t.Errorf("Mean = %v", got)
	}
}

func TestMeanPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mean(nil) did not panic")
		}
	}()
	Mean(nil)
}

func TestWeightedMean(t *testing.T) {
	pts := []Vec{{0, 0}, {4, 0}}
	got := WeightedMean(pts, []float64{1, 3})
	if !got.Equal(Vec{3, 0}, tol) {
		t.Errorf("WeightedMean = %v, want (3, 0)", got)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { WeightedMean(nil, nil) })
	mustPanic("length mismatch", func() { WeightedMean([]Vec{{1}}, []float64{1, 2}) })
	mustPanic("zero weight", func() { WeightedMean([]Vec{{1}}, []float64{0}) })
}

// randomVecPair draws two vectors of the same random dimension for
// property-based tests.
func randomVecPair(r *rand.Rand) (Vec, Vec) {
	d := 1 + r.Intn(6)
	v, w := NewVec(d), NewVec(d)
	for i := 0; i < d; i++ {
		v[i] = r.NormFloat64() * 10
		w[i] = r.NormFloat64() * 10
	}
	return v, w
}

func TestPropertyTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		u, v := randomVecPair(r)
		w := NewVec(u.Dim())
		for i := range w {
			w[i] = r.NormFloat64() * 10
		}
		for name, d := range map[string]func(Vec, Vec) float64{
			"L2": Dist, "L1": Dist1, "Linf": DistInf,
		} {
			if d(u, w) > d(u, v)+d(v, w)+1e-9 {
				t.Fatalf("%s triangle inequality violated: d(u,w)=%g > %g", name, d(u, w), d(u, v)+d(v, w))
			}
			if math.Abs(d(u, v)-d(v, u)) > 1e-12 {
				t.Fatalf("%s not symmetric", name)
			}
			if d(u, u) != 0 {
				t.Fatalf("%s d(u,u) != 0", name)
			}
		}
	}
}

func TestPropertyNormOrdering(t *testing.T) {
	// ‖v‖∞ ≤ ‖v‖₂ ≤ ‖v‖₁ for every vector.
	f := func(a, b, c float64) bool {
		v := Vec{a, b, c}
		// Skip non-finite inputs and magnitudes where x² overflows.
		if !v.IsFinite() || v.NormInf() > 1e150 {
			return true
		}
		return v.NormInf() <= v.Norm()+1e-9 && v.Norm() <= v.Norm1()*(1+1e-12)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCauchySchwarz(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		v, w := Vec{a, b}, Vec{c, d}
		if !v.IsFinite() || !w.IsFinite() {
			return true
		}
		lhs := math.Abs(v.Dot(w))
		rhs := v.Norm() * w.Norm()
		if math.IsInf(rhs, 0) || math.IsNaN(rhs) {
			return true
		}
		return lhs <= rhs*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMeanMinimizesSquaredDist(t *testing.T) {
	// The centroid minimizes the sum of squared distances; any perturbation
	// must not decrease it.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(8)
		d := 1 + r.Intn(4)
		pts := make([]Vec, n)
		for i := range pts {
			pts[i] = NewVec(d)
			for j := 0; j < d; j++ {
				pts[i][j] = r.NormFloat64()
			}
		}
		m := Mean(pts)
		sum := func(c Vec) float64 {
			var s float64
			for _, p := range pts {
				s += DistSq(p, c)
			}
			return s
		}
		base := sum(m)
		pert := m.Clone()
		pert[r.Intn(d)] += 0.1
		if sum(pert) < base-1e-9 {
			t.Fatalf("perturbed centroid beat centroid: %g < %g", sum(pert), base)
		}
	}
}

func BenchmarkDist(b *testing.B) {
	v, w := make(Vec, 8), make(Vec, 8)
	for i := range v {
		v[i] = float64(i)
		w[i] = float64(i * i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Dist(v, w)
	}
}
