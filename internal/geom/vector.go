// Package geom provides the low-level vector geometry used throughout the
// repository: points in R^d, the standard vector operations, distances under
// the L1, L2 and L∞ norms, and axis-aligned bounding boxes.
//
// A point is a plain []float64 so that callers can build instances with
// literals and slices; every function treats its arguments as immutable
// unless the name ends in InPlace.
package geom

import (
	"fmt"
	"math"
)

// Vec is a point (or displacement) in R^d. The dimension is len(v).
type Vec []float64

// NewVec returns a zero vector of dimension d. It panics if d < 0.
func NewVec(d int) Vec {
	if d < 0 {
		panic(fmt.Sprintf("geom: negative dimension %d", d))
	}
	return make(Vec, d)
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Dim returns the dimension of v.
func (v Vec) Dim() int { return len(v) }

// Add returns v + w. It panics on dimension mismatch.
func (v Vec) Add(w Vec) Vec {
	checkDim(v, w)
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w. It panics on dimension mismatch.
func (v Vec) Sub(w Vec) Vec {
	checkDim(v, w)
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns s·v.
func (v Vec) Scale(s float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// AddInPlace sets v = v + w and returns v. It panics on dimension mismatch.
func (v Vec) AddInPlace(w Vec) Vec {
	checkDim(v, w)
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// AxpyInPlace sets v = v + s·w and returns v. It panics on dimension mismatch.
func (v Vec) AxpyInPlace(s float64, w Vec) Vec {
	checkDim(v, w)
	for i := range v {
		v[i] += s * w[i]
	}
	return v
}

// ScaleInPlace sets v = s·v and returns v.
func (v Vec) ScaleInPlace(s float64) Vec {
	for i := range v {
		v[i] *= s
	}
	return v
}

// Dot returns the inner product <v, w>. It panics on dimension mismatch.
func (v Vec) Dot(w Vec) float64 {
	checkDim(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm ‖v‖₂.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm1 returns the L1 norm ‖v‖₁.
func (v Vec) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the L∞ norm ‖v‖∞.
func (v Vec) NormInf() float64 {
	var s float64
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// Lerp returns (1-t)·v + t·w, the point a fraction t of the way from v to w.
func (v Vec) Lerp(w Vec, t float64) Vec {
	checkDim(v, w)
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + t*(w[i]-v[i])
	}
	return out
}

// Equal reports whether v and w have the same dimension and every coordinate
// differs by at most tol.
func (v Vec) Equal(w Vec, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every coordinate of v is finite (no NaN or ±Inf).
func (v Vec) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// String formats v as "(x₁, x₂, …)".
func (v Vec) String() string {
	s := "("
	for i, x := range v {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%g", x)
	}
	return s + ")"
}

// Dist returns the Euclidean distance between v and w.
func Dist(v, w Vec) float64 { return math.Sqrt(DistSq(v, w)) }

// DistSq returns the squared Euclidean distance between v and w.
func DistSq(v, w Vec) float64 {
	checkDim(v, w)
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// Dist1 returns the L1 (Manhattan) distance between v and w.
func Dist1(v, w Vec) float64 {
	checkDim(v, w)
	var s float64
	for i := range v {
		s += math.Abs(v[i] - w[i])
	}
	return s
}

// DistInf returns the L∞ (Chebyshev) distance between v and w.
func DistInf(v, w Vec) float64 {
	checkDim(v, w)
	var s float64
	for i := range v {
		if d := math.Abs(v[i] - w[i]); d > s {
			s = d
		}
	}
	return s
}

// Mean returns the unweighted centroid of pts. It panics if pts is empty or
// dimensions disagree.
func Mean(pts []Vec) Vec {
	if len(pts) == 0 {
		panic("geom: Mean of empty point set")
	}
	out := NewVec(len(pts[0]))
	for _, p := range pts {
		out.AddInPlace(p)
	}
	return out.ScaleInPlace(1 / float64(len(pts)))
}

// WeightedMean returns Σ wᵢ·ptsᵢ / Σ wᵢ. It panics if the slices have
// different lengths, pts is empty, or the total weight is not positive.
func WeightedMean(pts []Vec, weights []float64) Vec {
	if len(pts) == 0 {
		panic("geom: WeightedMean of empty point set")
	}
	if len(pts) != len(weights) {
		panic(fmt.Sprintf("geom: WeightedMean got %d points and %d weights", len(pts), len(weights)))
	}
	out := NewVec(len(pts[0]))
	var total float64
	for i, p := range pts {
		out.AxpyInPlace(weights[i], p)
		total += weights[i]
	}
	if total <= 0 {
		panic("geom: WeightedMean with non-positive total weight")
	}
	return out.ScaleInPlace(1 / total)
}

func checkDim(v, w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(v), len(w)))
	}
}
