package geom

import (
	"math"
	"testing"
)

func TestNewBBoxIsEmpty(t *testing.T) {
	b := NewBBox(2)
	if !b.Empty() {
		t.Fatal("fresh box is not empty")
	}
	if b.Diameter() != 0 {
		t.Errorf("Diameter of empty box = %g", b.Diameter())
	}
}

func TestExtendAndContains(t *testing.T) {
	b := NewBBox(2)
	b.Extend(Vec{0, 0})
	b.Extend(Vec{2, 3})
	if b.Empty() {
		t.Fatal("extended box reports empty")
	}
	for _, p := range []Vec{{0, 0}, {2, 3}, {1, 1.5}} {
		if !b.Contains(p) {
			t.Errorf("box should contain %v", p)
		}
	}
	for _, p := range []Vec{{-0.1, 0}, {2.1, 3}, {1, 4}} {
		if b.Contains(p) {
			t.Errorf("box should not contain %v", p)
		}
	}
	if b.Contains(Vec{1}) {
		t.Error("box contains vector of wrong dimension")
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Vec{{1, 5}, {-2, 3}, {4, -1}}
	b := BoundingBox(pts)
	if !b.Min.Equal(Vec{-2, -1}, 0) || !b.Max.Equal(Vec{4, 5}, 0) {
		t.Errorf("BoundingBox = [%v, %v]", b.Min, b.Max)
	}
	if got, want := b.Diameter(), math.Hypot(6, 6); math.Abs(got-want) > 1e-12 {
		t.Errorf("Diameter = %g, want %g", got, want)
	}
	if !b.Center().Equal(Vec{1, 2}, 1e-12) {
		t.Errorf("Center = %v", b.Center())
	}
}

func TestBoundingBoxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BoundingBox(nil) did not panic")
		}
	}()
	BoundingBox(nil)
}

func TestExpand(t *testing.T) {
	b := BoundingBox([]Vec{{0, 0}, {1, 1}})
	e := b.Expand(0.5)
	if !e.Min.Equal(Vec{-0.5, -0.5}, 0) || !e.Max.Equal(Vec{1.5, 1.5}, 0) {
		t.Errorf("Expand = [%v, %v]", e.Min, e.Max)
	}
	// Original untouched.
	if !b.Min.Equal(Vec{0, 0}, 0) {
		t.Error("Expand mutated the receiver")
	}
}

func TestExtendDimensionMismatchPanics(t *testing.T) {
	b := NewBBox(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Extend with wrong dimension did not panic")
		}
	}()
	b.Extend(Vec{1})
}

func TestCenterOfEmptyPanics(t *testing.T) {
	b := NewBBox(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Center of empty box did not panic")
		}
	}()
	b.Center()
}
