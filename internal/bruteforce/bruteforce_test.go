package bruteforce

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

var euclid = metricspace.Euclidean{}

func TestForEachSubsetCounts(t *testing.T) {
	count := 0
	err := forEachSubset(5, 2, 100, func(idx []int) error {
		count++
		if len(idx) != 2 || idx[0] >= idx[1] {
			t.Fatalf("bad subset %v", idx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("C(5,2) enumerated %d subsets, want 10", count)
	}
}

func TestForEachSubsetGuards(t *testing.T) {
	if err := forEachSubset(30, 10, 1000, func([]int) error { return nil }); err == nil {
		t.Error("explosion not caught")
	}
	if err := forEachSubset(0, 1, 10, func([]int) error { return nil }); err == nil {
		t.Error("m=0 accepted")
	}
	if err := forEachSubset(3, 0, 10, func([]int) error { return nil }); err == nil {
		t.Error("k=0 accepted")
	}
	// k > m clamps rather than erroring.
	count := 0
	if err := forEachSubset(2, 5, 10, func(idx []int) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("k>m visited %d subsets, want 1", count)
	}
}

func TestUnassignedFindsObviousOptimum(t *testing.T) {
	// Two deterministic clusters; optimal 2 centers sit on the points.
	pts := []uncertain.Point[geom.Vec]{
		uncertain.NewDeterministic(geom.Vec{0, 0}),
		uncertain.NewDeterministic(geom.Vec{10, 0}),
	}
	cands := []geom.Vec{{0, 0}, {10, 0}, {5, 0}}
	sol, err := Unassigned[geom.Vec](euclid, pts, cands, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 {
		t.Errorf("optimal cost = %g, want 0", sol.Cost)
	}
}

func TestRestrictedAssignedEuclideanMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, err := gen.GaussianClusters(rng, 3, 2, 2, 2, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cands := uncertain.AllLocations(pts)
	sol, err := RestrictedAssignedEuclidean(pts, cands, 2, core.RuleED, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Manual check: the reported cost matches re-evaluating the solution.
	cost, err := core.EcostAssigned[geom.Vec](euclid, pts, sol.Centers, sol.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-sol.Cost) > 1e-9 {
		t.Errorf("reported %g, recomputed %g", sol.Cost, cost)
	}
	// And no singleton subset choice beats it under the same rule (spot
	// check a few random subsets).
	for trial := 0; trial < 20; trial++ {
		i, j := rng.Intn(len(cands)), rng.Intn(len(cands))
		if i == j {
			continue
		}
		centers := []geom.Vec{cands[i], cands[j]}
		assign, err := core.AssignEuclidean(pts, centers, core.RuleED)
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.EcostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil {
			t.Fatal(err)
		}
		if c < sol.Cost-1e-9 {
			t.Fatalf("random subset beats 'optimal': %g < %g", c, sol.Cost)
		}
	}
}

func TestUnrestrictedBeatsRestricted(t *testing.T) {
	// The unrestricted optimum is ≤ any restricted optimum over the same
	// candidates (more freedom in the assignment).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		pts, err := gen.BimodalAdversarial(rng, 3, 2, 2, 10)
		if err != nil {
			t.Fatal(err)
		}
		cands := uncertain.AllLocations(pts)
		un, err := Unrestricted[geom.Vec](euclid, pts, cands, 2, 100000, 100000)
		if err != nil {
			t.Fatal(err)
		}
		re, err := RestrictedAssignedEuclidean(pts, cands, 2, core.RuleED, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if un.Cost > re.Cost+1e-9 {
			t.Fatalf("trial %d: unrestricted %g > restricted-ED %g", trial, un.Cost, re.Cost)
		}
		// And the unassigned optimum is ≤ the unrestricted assigned optimum.
		ua, err := Unassigned[geom.Vec](euclid, pts, cands, 2, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if ua.Cost > un.Cost+1e-9 {
			t.Fatalf("trial %d: unassigned %g > unrestricted %g", trial, ua.Cost, un.Cost)
		}
	}
}

func TestUnrestrictedAssignGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, err := gen.UniformBox(rng, 15, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	cands := uncertain.AllLocations(pts)
	if _, err := Unrestricted[geom.Vec](euclid, pts, cands, 3, 1000000, 1000); err == nil {
		t.Error("3^15 assignments accepted with limit 1000")
	}
}

func TestValidationEverywhere(t *testing.T) {
	cands := []geom.Vec{{0}}
	if _, err := Unassigned[geom.Vec](euclid, nil, cands, 1, 10); err == nil {
		t.Error("Unassigned accepted empty set")
	}
	if _, err := RestrictedAssignedEuclidean(nil, cands, 1, core.RuleED, 10); err == nil {
		t.Error("RestrictedAssignedEuclidean accepted empty set")
	}
	if _, err := Unrestricted[geom.Vec](euclid, nil, cands, 1, 10, 10); err == nil {
		t.Error("Unrestricted accepted empty set")
	}
	space, _ := metricspace.NewFinite([][]float64{{0}})
	if _, err := RestrictedAssigned[int](space, nil, []int{0}, 1, core.RuleED, []int{0}, 10); err == nil {
		t.Error("RestrictedAssigned accepted empty set")
	}
}

func TestRestrictedAssignedFiniteMetric(t *testing.T) {
	// Path metric 0-1-2; one point uniform over {0,2}; k=1. The ED-optimal
	// single center is any of the three (cost: E d = 1 at each... vertex 1
	// gives E[max] = 1; vertices 0/2 give E[max] = 0.5·0 + 0.5·2 = 1).
	space, err := metricspace.NewFinite([][]float64{
		{0, 1, 2},
		{1, 0, 1},
		{2, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := uncertain.NewUniform([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := RestrictedAssigned[int](space, []uncertain.Point[int]{p}, space.Points(), 1, core.RuleED, space.Points(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Cost-1) > 1e-12 {
		t.Errorf("optimal cost = %g, want 1", sol.Cost)
	}
}
