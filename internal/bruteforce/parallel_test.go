package bruteforce

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/uncertain"
)

// TestUnassignedParallelMatchesSequential: the parallel search must find the
// same optimal cost as the sequential one on random instances.
func TestUnassignedParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		pts, err := gen.UniformBox(rng, 2+rng.Intn(4), 1+rng.Intn(3), 2, 10)
		if err != nil {
			t.Fatal(err)
		}
		cands := uncertain.AllLocations(pts)
		k := 1 + rng.Intn(3)
		seq, err := Unassigned[geom.Vec](euclid, pts, cands, k, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		par, err := UnassignedParallel[geom.Vec](euclid, pts, cands, k, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(seq.Cost-par.Cost) > 1e-9*(1+seq.Cost) {
			t.Fatalf("trial %d: sequential %g vs parallel %g", trial, seq.Cost, par.Cost)
		}
		if len(par.Centers) != len(seq.Centers) {
			t.Fatalf("trial %d: center count %d vs %d", trial, len(par.Centers), len(seq.Centers))
		}
	}
}

func TestUnassignedParallelGuards(t *testing.T) {
	pts := []uncertain.Point[geom.Vec]{uncertain.NewDeterministic(geom.Vec{0})}
	cands := []geom.Vec{{0}}
	if _, err := UnassignedParallel[geom.Vec](euclid, nil, cands, 1, 10); err == nil {
		t.Error("empty set accepted")
	}
	rng := rand.New(rand.NewSource(1))
	big, err := gen.UniformBox(rng, 20, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnassignedParallel[geom.Vec](euclid, big, uncertain.AllLocations(big), 10, 100); err == nil {
		t.Error("subset explosion accepted")
	}
	// k=1 path.
	sol, err := UnassignedParallel[geom.Vec](euclid, pts, cands, 1, 10)
	if err != nil || sol.Cost != 0 {
		t.Errorf("k=1: %v cost %g", err, sol.Cost)
	}
}

func BenchmarkUnassignedSequentialVsParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts, err := gen.UniformBox(rng, 8, 3, 2, 10)
	if err != nil {
		b.Fatal(err)
	}
	cands := uncertain.AllLocations(pts)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Unassigned[geom.Vec](euclid, pts, cands, 3, 5_000_000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := UnassignedParallel[geom.Vec](euclid, pts, cands, 3, 5_000_000); err != nil {
				b.Fatal(err)
			}
		}
	})
}
