package bruteforce

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// UnassignedParallel is Unassigned with the candidate-subset search fanned
// out over GOMAXPROCS workers (sharded by the subset's first index). It
// returns the same optimum as Unassigned; ties may resolve to a different
// optimal center set.
func UnassignedParallel[P any](space metricspace.Space[P], pts []uncertain.Point[P], candidates []P, k, maxSubsets int) (Solution[P], error) {
	if err := uncertain.ValidateSet(pts); err != nil {
		return Solution[P]{}, err
	}
	m := len(candidates)
	kk := k
	if kk > m {
		kk = m
	}
	if c := binomial(m, kk); c < 0 || c > maxSubsets {
		return Solution[P]{}, errSubsetLimit(m, kk, maxSubsets)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	type res struct {
		sol Solution[P]
		err error
	}
	results := make([]res, workers)
	firstIdx := make(chan int, m)
	for f := 0; f <= m-kk; f++ {
		firstIdx <- f
	}
	close(firstIdx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			best := Solution[P]{Cost: math.Inf(1)}
			idx := make([]int, kk)
			var rec func(pos, from int) error
			rec = func(pos, from int) error {
				if pos == kk {
					centers := selectCenters(candidates, idx)
					cost, err := core.EcostUnassigned(space, pts, centers)
					if err != nil {
						return err
					}
					if cost < best.Cost {
						best = Solution[P]{Centers: centers, Cost: cost}
					}
					return nil
				}
				for c := from; c <= m-(kk-pos); c++ {
					idx[pos] = c
					if err := rec(pos+1, c+1); err != nil {
						return err
					}
				}
				return nil
			}
			for f := range firstIdx {
				idx[0] = f
				if kk == 1 {
					centers := selectCenters(candidates, idx[:1])
					cost, err := core.EcostUnassigned(space, pts, centers)
					if err != nil {
						results[w] = res{err: err}
						return
					}
					if cost < best.Cost {
						best = Solution[P]{Centers: centers, Cost: cost}
					}
					continue
				}
				if err := rec(1, f+1); err != nil {
					results[w] = res{err: err}
					return
				}
			}
			results[w] = res{sol: best}
		}(w)
	}
	wg.Wait()
	best := Solution[P]{Cost: math.Inf(1)}
	for _, r := range results {
		if r.err != nil {
			return Solution[P]{}, r.err
		}
		if r.sol.Cost < best.Cost {
			best = r.sol
		}
	}
	return best, nil
}

func errSubsetLimit(m, k, limit int) error {
	return &subsetLimitError{m: m, k: k, limit: limit}
}

type subsetLimitError struct{ m, k, limit int }

func (e *subsetLimitError) Error() string {
	return "bruteforce: C(" + itoa(e.m) + "," + itoa(e.k) + ") exceeds limit " + itoa(e.limit)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
