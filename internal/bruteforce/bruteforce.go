// Package bruteforce computes optimal solutions of the uncertain k-center
// problem variants by exhaustive search over a candidate center set (and,
// for the unrestricted assigned version, over assignments). It exists to
// anchor the empirical approximation-ratio experiments: the theorems bound
// algorithm cost against the continuous optimum, and the discrete optimum
// computed here is an upper bound on that optimum, so measured ratios are
// lower bounds on true ratios and the theorem bounds must still hold.
//
// In a finite metric space with candidates = all space points the discrete
// optimum IS the true optimum and the checks are exact.
//
// Everything here is exponential; explicit limits guard against misuse.
package bruteforce

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// Solution is an optimal center set with its cost (and assignment when the
// problem version has one).
type Solution[P any] struct {
	Centers []P
	Assign  []int // nil for the unassigned version
	Cost    float64
}

// forEachSubset enumerates all k-subsets of {0..m-1}, calling fn with a
// reused index slice. It returns an error if the count exceeds maxSubsets.
func forEachSubset(m, k, maxSubsets int, fn func(idx []int) error) error {
	if k <= 0 || m <= 0 {
		return fmt.Errorf("bruteforce: invalid subset shape m=%d k=%d", m, k)
	}
	if k > m {
		k = m
	}
	if c := binomial(m, k); c < 0 || c > maxSubsets {
		return fmt.Errorf("bruteforce: C(%d,%d) exceeds limit %d", m, k, maxSubsets)
	}
	idx := make([]int, k)
	var rec func(pos, from int) error
	rec = func(pos, from int) error {
		if pos == k {
			return fn(idx)
		}
		for c := from; c <= m-(k-pos); c++ {
			idx[pos] = c
			if err := rec(pos+1, c+1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, 0)
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c < 0 || c > 1<<40 {
			return -1
		}
	}
	return c
}

func selectCenters[P any](candidates []P, idx []int) []P {
	out := make([]P, len(idx))
	for i, j := range idx {
		out[i] = candidates[j]
	}
	return out
}

// RestrictedAssigned finds the candidate k-subset minimizing the exact
// assigned expected cost under the given assignment rule (computing the
// rule's surrogates once where possible is the caller's concern; the rule is
// re-derived per center set as the problem definition requires).
func RestrictedAssigned[P any](space metricspace.Space[P], pts []uncertain.Point[P], candidates []P, k int, rule core.Rule, ruleCandidates []P, maxSubsets int) (Solution[P], error) {
	if err := uncertain.ValidateSet(pts); err != nil {
		return Solution[P]{}, err
	}
	best := Solution[P]{Cost: math.Inf(1)}
	err := forEachSubset(len(candidates), k, maxSubsets, func(idx []int) error {
		centers := selectCenters(candidates, idx)
		assign, err := core.AssignMetric(space, pts, centers, rule, ruleCandidates)
		if err != nil {
			return err
		}
		cost, err := core.EcostAssigned(space, pts, centers, assign)
		if err != nil {
			return err
		}
		if cost < best.Cost {
			best = Solution[P]{Centers: centers, Assign: assign, Cost: cost}
		}
		return nil
	})
	return best, err
}

// RestrictedAssignedEuclidean is RestrictedAssigned for Euclidean instances,
// supporting all three rules (EP included).
func RestrictedAssignedEuclidean(pts []uncertain.Point[geom.Vec], candidates []geom.Vec, k int, rule core.Rule, maxSubsets int) (Solution[geom.Vec], error) {
	if err := uncertain.ValidateSet(pts); err != nil {
		return Solution[geom.Vec]{}, err
	}
	space := metricspace.Euclidean{}
	best := Solution[geom.Vec]{Cost: math.Inf(1)}
	err := forEachSubset(len(candidates), k, maxSubsets, func(idx []int) error {
		centers := selectCenters(candidates, idx)
		assign, err := core.AssignEuclidean(pts, centers, rule)
		if err != nil {
			return err
		}
		cost, err := core.EcostAssigned[geom.Vec](space, pts, centers, assign)
		if err != nil {
			return err
		}
		if cost < best.Cost {
			best = Solution[geom.Vec]{Centers: centers, Assign: assign, Cost: cost}
		}
		return nil
	})
	return best, err
}

// Unassigned finds the candidate k-subset minimizing the exact unassigned
// expected cost.
func Unassigned[P any](space metricspace.Space[P], pts []uncertain.Point[P], candidates []P, k, maxSubsets int) (Solution[P], error) {
	if err := uncertain.ValidateSet(pts); err != nil {
		return Solution[P]{}, err
	}
	best := Solution[P]{Cost: math.Inf(1)}
	err := forEachSubset(len(candidates), k, maxSubsets, func(idx []int) error {
		centers := selectCenters(candidates, idx)
		cost, err := core.EcostUnassigned(space, pts, centers)
		if err != nil {
			return err
		}
		if cost < best.Cost {
			best = Solution[P]{Centers: centers, Cost: cost}
		}
		return nil
	})
	return best, err
}

// Unrestricted finds the candidate k-subset AND assignment minimizing the
// exact assigned expected cost — the unrestricted assigned optimum over the
// candidate set. The assignment search is k^n; maxAssign guards it.
func Unrestricted[P any](space metricspace.Space[P], pts []uncertain.Point[P], candidates []P, k, maxSubsets, maxAssign int) (Solution[P], error) {
	if err := uncertain.ValidateSet(pts); err != nil {
		return Solution[P]{}, err
	}
	n := len(pts)
	kk := k
	if kk > len(candidates) {
		kk = len(candidates)
	}
	total := 1
	for i := 0; i < n; i++ {
		total *= kk
		if total > maxAssign || total < 0 {
			return Solution[P]{}, fmt.Errorf("bruteforce: %d^%d assignments exceed limit %d", kk, n, maxAssign)
		}
	}
	best := Solution[P]{Cost: math.Inf(1)}
	err := forEachSubset(len(candidates), k, maxSubsets, func(idx []int) error {
		centers := selectCenters(candidates, idx)
		assign := make([]int, n)
		for {
			cost, err := core.EcostAssigned(space, pts, centers, assign)
			if err != nil {
				return err
			}
			if cost < best.Cost {
				best = Solution[P]{
					Centers: centers,
					Assign:  append([]int(nil), assign...),
					Cost:    cost,
				}
			}
			// Odometer over assignments.
			p := 0
			for p < n {
				assign[p]++
				if assign[p] < len(centers) {
					break
				}
				assign[p] = 0
				p++
			}
			if p == n {
				return nil
			}
		}
	})
	return best, err
}
