// Package lru provides the recency list behind the serving layer's
// byte-budget cache eviction: a map-indexed doubly-linked list ordering keys
// from most- to least-recently used, with O(1) touch, insert, remove and
// oldest-key lookup.
//
// The list stores no byte weights itself — the serving shard accounts bytes
// per entry (core.Compiled.CacheBytes is the weight function) and uses
// Oldest/Remove to walk eviction candidates. A List is NOT goroutine-safe;
// each shard owns one under its mutex, which is the only access pattern the
// serving layer needs.
package lru

// node is one list element. Nodes are interior to the package; the zero
// List is ready to use.
type node[K comparable] struct {
	key        K
	prev, next *node[K]
}

// List is the recency order over a set of keys: front = most recently used,
// back = least recently used.
type List[K comparable] struct {
	byKey map[K]*node[K]
	front *node[K]
	back  *node[K]
}

// New returns an empty recency list.
func New[K comparable]() *List[K] {
	return &List[K]{byKey: make(map[K]*node[K])}
}

// Len returns the number of tracked keys.
func (l *List[K]) Len() int { return len(l.byKey) }

// Contains reports whether key is tracked.
func (l *List[K]) Contains(key K) bool {
	_, ok := l.byKey[key]
	return ok
}

// Touch marks key as most recently used, inserting it if absent.
func (l *List[K]) Touch(key K) {
	if n, ok := l.byKey[key]; ok {
		if l.front == n {
			return
		}
		l.unlink(n)
		l.pushFront(n)
		return
	}
	n := &node[K]{key: key}
	l.byKey[key] = n
	l.pushFront(n)
}

// Remove stops tracking key, reporting whether it was present.
func (l *List[K]) Remove(key K) bool {
	n, ok := l.byKey[key]
	if !ok {
		return false
	}
	l.unlink(n)
	delete(l.byKey, key)
	return true
}

// Oldest returns the least-recently-used key; ok is false when the list is
// empty. The key stays tracked — eviction removes it explicitly once its
// caches are dropped.
func (l *List[K]) Oldest() (key K, ok bool) {
	if l.back == nil {
		var zero K
		return zero, false
	}
	return l.back.key, true
}

// Keys returns the tracked keys from most- to least-recently used — the
// metrics snapshot order.
func (l *List[K]) Keys() []K {
	out := make([]K, 0, len(l.byKey))
	for n := l.front; n != nil; n = n.next {
		out = append(out, n.key)
	}
	return out
}

func (l *List[K]) pushFront(n *node[K]) {
	n.prev = nil
	n.next = l.front
	if l.front != nil {
		l.front.prev = n
	}
	l.front = n
	if l.back == nil {
		l.back = n
	}
}

func (l *List[K]) unlink(n *node[K]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.front = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.back = n.prev
	}
	n.prev, n.next = nil, nil
}
