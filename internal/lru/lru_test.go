package lru

import (
	"fmt"
	"testing"
)

// requireOrder asserts the most-to-least-recent key order.
func requireOrder(t *testing.T, l *List[string], want ...string) {
	t.Helper()
	got := l.Keys()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestTouchOrdersByRecency(t *testing.T) {
	l := New[string]()
	if _, ok := l.Oldest(); ok {
		t.Fatal("Oldest on empty list reported ok")
	}
	l.Touch("a")
	l.Touch("b")
	l.Touch("c")
	requireOrder(t, l, "c", "b", "a")
	if k, ok := l.Oldest(); !ok || k != "a" {
		t.Fatalf("Oldest = %q/%v, want a", k, ok)
	}

	// Re-touching promotes without duplicating.
	l.Touch("a")
	requireOrder(t, l, "a", "c", "b")
	if l.Len() != 3 {
		t.Fatalf("Len = %d after re-touch, want 3", l.Len())
	}
	// Touching the current front is a no-op.
	l.Touch("a")
	requireOrder(t, l, "a", "c", "b")
}

func TestRemove(t *testing.T) {
	l := New[string]()
	for _, k := range []string{"a", "b", "c"} {
		l.Touch(k)
	}
	if !l.Remove("b") {
		t.Fatal("Remove(b) = false")
	}
	if l.Remove("b") {
		t.Fatal("second Remove(b) = true")
	}
	requireOrder(t, l, "c", "a")

	// Removing the back and the front keeps the links consistent.
	if !l.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	requireOrder(t, l, "c")
	if !l.Remove("c") {
		t.Fatal("Remove(c) = false")
	}
	requireOrder(t, l)
	if l.Len() != 0 || l.Contains("c") {
		t.Fatalf("list not empty after removing everything")
	}

	// An emptied list accepts new keys.
	l.Touch("x")
	if k, ok := l.Oldest(); !ok || k != "x" {
		t.Fatalf("Oldest after refill = %q/%v", k, ok)
	}
}

func TestEvictionWalk(t *testing.T) {
	// The serving shard's eviction loop: pop Oldest, Remove, repeat.
	l := New[int]()
	for i := 0; i < 100; i++ {
		l.Touch(i)
	}
	for want := 0; want < 100; want++ {
		k, ok := l.Oldest()
		if !ok || k != want {
			t.Fatalf("Oldest = %d/%v, want %d", k, ok, want)
		}
		l.Remove(k)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d after full eviction walk", l.Len())
	}
}
