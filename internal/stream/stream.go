// Package stream provides one-pass algorithms for uncertain k-center: the
// database/streaming setting the paper's introduction motivates (and the
// probabilistic smallest-enclosing-ball streaming line of Munteanu et al.
// cited in related work).
//
// Two substrates, both stdlib-only and O(k) / O(1) memory:
//
//   - Ball: the Zarrabi-Zadeh–Chan streaming minimum enclosing ball
//     (factor 3/2): when a point lands outside the current ball, the ball
//     grows to the smallest ball containing the old ball and the point.
//   - Incremental: the Charikar–Chekuri–Feder–Motwani doubling algorithm
//     for incremental k-center (factor 8): maintain ≤ k centers that are
//     pairwise ≥ threshold apart and cover everything seen within the
//     threshold; on overflow, double the threshold and merge centers.
//
// The uncertain wrappers feed each arriving uncertain point's surrogate
// (expected point P̄, computed in O(z) — the paper's construction) into the
// certain stream, composing the paper's reduction with the streaming
// guarantees: the in-stream center set is an O(1)-approximation of the
// best surrogate clustering at all times.
package stream

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/uncertain"
)

// Ball is a streaming minimum enclosing ball over R^d (Zarrabi-Zadeh–Chan).
// The zero value is empty; Push points, then read Center/Radius.
type Ball struct {
	center geom.Vec
	radius float64
	n      int
}

// Push adds one point. The first point initializes the ball with radius 0.
func (b *Ball) Push(p geom.Vec) {
	if b.n == 0 {
		b.center = p.Clone()
		b.radius = 0
		b.n = 1
		return
	}
	if len(p) != len(b.center) {
		panic(fmt.Sprintf("stream: dimension mismatch %d vs %d", len(p), len(b.center)))
	}
	b.n++
	d := geom.Dist(b.center, p)
	if d <= b.radius {
		return
	}
	// Smallest ball containing the old ball and p: radius (d + r)/2,
	// center shifted toward p by (d − r)/2.
	newR := (d + b.radius) / 2
	shift := (d - b.radius) / 2
	b.center.AxpyInPlace(shift/d, p.Sub(b.center))
	b.radius = newR
}

// N returns the number of points pushed.
func (b *Ball) N() int { return b.n }

// Center returns a copy of the current center. It panics on an empty ball.
func (b *Ball) Center() geom.Vec {
	if b.n == 0 {
		panic("stream: Center of empty Ball")
	}
	return b.center.Clone()
}

// Radius returns the current radius (0 for an empty ball).
func (b *Ball) Radius() float64 { return b.radius }

// Incremental is the doubling algorithm for incremental k-center: after any
// prefix of the stream, Centers() is a k-center solution whose radius is at
// most 8 times the optimal radius of that prefix.
type Incremental struct {
	k         int
	threshold float64
	centers   []geom.Vec
	n         int
}

// NewIncremental returns an incremental k-center sketch. It returns an
// error if k ≤ 0.
func NewIncremental(k int) (*Incremental, error) {
	if k <= 0 {
		return nil, fmt.Errorf("stream: k = %d", k)
	}
	return &Incremental{k: k}, nil
}

// Push adds one point.
func (s *Incremental) Push(p geom.Vec) {
	s.n++
	if len(s.centers) < s.k {
		// Bootstrap phase: keep the first k distinct points as centers and
		// initialize the threshold from their closest pair.
		for _, c := range s.centers {
			if geom.Dist(c, p) == 0 {
				return
			}
		}
		s.centers = append(s.centers, p.Clone())
		if len(s.centers) == s.k {
			s.threshold = s.closestPair()
		}
		return
	}
	for {
		// Covered within the current threshold?
		best := math.Inf(1)
		for _, c := range s.centers {
			if d := geom.Dist(c, p); d < best {
				best = d
			}
		}
		if best <= 2*s.threshold {
			return
		}
		if len(s.centers) < s.k {
			s.centers = append(s.centers, p.Clone())
			return
		}
		// Overflow: double the threshold and merge centers closer than it.
		s.threshold *= 2
		if s.threshold == 0 {
			s.threshold = best / 4
		}
		merged := s.centers[:0]
		for _, c := range s.centers {
			keep := true
			for _, m := range merged {
				if geom.Dist(m, c) <= s.threshold {
					keep = false
					break
				}
			}
			if keep {
				merged = append(merged, c)
			}
		}
		s.centers = merged
	}
}

func (s *Incremental) closestPair() float64 {
	best := math.Inf(1)
	for i := range s.centers {
		for j := i + 1; j < len(s.centers); j++ {
			if d := geom.Dist(s.centers[i], s.centers[j]); d < best {
				best = d
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// Centers returns a copy of the current centers (≤ k).
func (s *Incremental) Centers() []geom.Vec {
	out := make([]geom.Vec, len(s.centers))
	for i, c := range s.centers {
		out[i] = c.Clone()
	}
	return out
}

// N returns the number of points pushed.
func (s *Incremental) N() int { return s.n }

// Threshold exposes the current doubling threshold (for diagnostics).
func (s *Incremental) Threshold() float64 { return s.threshold }

// Uncertain1Center is a one-pass uncertain 1-center sketch: it feeds each
// arriving point's expected point into a streaming ball. By Theorem 2.1's
// argument composed with the 3/2 streaming MEB factor, the final center is
// a constant-factor approximation of the optimal uncertain 1-center of the
// stream.
type Uncertain1Center struct {
	ball Ball
}

// Push adds one uncertain point (its P̄ is computed in O(z)). Invalid points
// return an error and are ignored.
func (u *Uncertain1Center) Push(p uncertain.Point[geom.Vec]) error {
	if err := p.Validate(); err != nil {
		return err
	}
	u.ball.Push(uncertain.ExpectedPoint(p))
	return nil
}

// pushSet feeds a batch of points into any sketch's Push, checking ctx
// between points; on cancellation it returns ctx.Err() with the prefix
// already absorbed (a sketch is always a valid summary of what it has seen).
func pushSet(ctx context.Context, pts []uncertain.Point[geom.Vec], push func(uncertain.Point[geom.Vec]) error) error {
	for _, p := range pts {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := push(p); err != nil {
			return err
		}
	}
	return nil
}

// pushCompiled feeds a compiled instance's cached expected points into any
// sketch, checking ctx between points (same cancellation semantics as
// pushSet). No per-point validation: the instance validated once at compile
// time.
func pushCompiled(ctx context.Context, c *core.Compiled[geom.Vec], push func(geom.Vec)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	eps, err := c.Surrogates(ctx, core.SurrogateExpectedPoint, nil, 1)
	if err != nil {
		return err
	}
	for _, p := range eps {
		if err := ctx.Err(); err != nil {
			return err
		}
		push(p)
	}
	return nil
}

// PushSet feeds a batch of uncertain points into the sketch, checking ctx
// between points; see pushSet for the cancellation semantics.
func (u *Uncertain1Center) PushSet(ctx context.Context, pts []uncertain.Point[geom.Vec]) error {
	return pushSet(ctx, pts, u.Push)
}

// PushCompiled feeds every point of a compiled instance into the sketch.
// The points were validated once at compile time and their expected points
// come from the instance's memoized surrogate cache, so re-feeding one
// compiled instance into many sketches (a pool of per-shard sketches, say)
// computes each P̄ exactly once. Cancellation follows pushSet's semantics.
func (u *Uncertain1Center) PushCompiled(ctx context.Context, c *core.Compiled[geom.Vec]) error {
	return pushCompiled(ctx, c, func(p geom.Vec) { u.ball.Push(p) })
}

// Center returns the current center estimate. It panics before any Push.
func (u *Uncertain1Center) Center() geom.Vec { return u.ball.Center() }

// N returns the number of points pushed.
func (u *Uncertain1Center) N() int { return u.ball.N() }

// UncertainKCenter is the one-pass uncertain k-center sketch: expected-point
// surrogates into the doubling algorithm.
type UncertainKCenter struct {
	inc *Incremental
}

// NewUncertainKCenter returns a k-center sketch for uncertain streams.
func NewUncertainKCenter(k int) (*UncertainKCenter, error) {
	inc, err := NewIncremental(k)
	if err != nil {
		return nil, err
	}
	return &UncertainKCenter{inc: inc}, nil
}

// Push adds one uncertain point.
func (u *UncertainKCenter) Push(p uncertain.Point[geom.Vec]) error {
	if err := p.Validate(); err != nil {
		return err
	}
	u.inc.Push(uncertain.ExpectedPoint(p))
	return nil
}

// PushSet feeds a batch of uncertain points into the sketch, checking ctx
// between points; see pushSet for the cancellation semantics.
func (u *UncertainKCenter) PushSet(ctx context.Context, pts []uncertain.Point[geom.Vec]) error {
	return pushSet(ctx, pts, u.Push)
}

// PushCompiled feeds every point of a compiled instance into the sketch via
// its memoized expected points; see Uncertain1Center.PushCompiled.
func (u *UncertainKCenter) PushCompiled(ctx context.Context, c *core.Compiled[geom.Vec]) error {
	return pushCompiled(ctx, c, func(p geom.Vec) { u.inc.Push(p) })
}

// Centers returns the current center set (≤ k).
func (u *UncertainKCenter) Centers() []geom.Vec { return u.inc.Centers() }

// N returns the number of points pushed.
func (u *UncertainKCenter) N() int { return u.inc.N() }
