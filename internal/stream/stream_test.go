package stream

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/kcenter"
	"repro/internal/metricspace"
	"repro/internal/sebo"
	"repro/internal/uncertain"
)

var euclid = metricspace.Euclidean{}

func TestBallSinglePoint(t *testing.T) {
	var b Ball
	b.Push(geom.Vec{1, 2})
	if b.Radius() != 0 || !b.Center().Equal(geom.Vec{1, 2}, 0) || b.N() != 1 {
		t.Errorf("ball = %v r=%g n=%d", b.Center(), b.Radius(), b.N())
	}
}

func TestBallCenterIsCopy(t *testing.T) {
	var b Ball
	b.Push(geom.Vec{1, 2})
	c := b.Center()
	c[0] = 99
	if b.Center()[0] != 1 {
		t.Error("Center leaked internal state")
	}
}

func TestBallEmptyPanics(t *testing.T) {
	var b Ball
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Center()
}

func TestBallDimMismatchPanics(t *testing.T) {
	var b Ball
	b.Push(geom.Vec{0, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Push(geom.Vec{0})
}

func TestBallTwoPoints(t *testing.T) {
	var b Ball
	b.Push(geom.Vec{0, 0})
	b.Push(geom.Vec{2, 0})
	// Optimal ball: center (1,0), radius 1 — the ZZC update is exact here.
	if math.Abs(b.Radius()-1) > 1e-12 || !b.Center().Equal(geom.Vec{1, 0}, 1e-12) {
		t.Errorf("ball = %v r=%g", b.Center(), b.Radius())
	}
}

// TestBallCoversAndApproximates: the streaming ball must contain every
// pushed point and stay within 3/2 of the offline MEB radius.
func TestBallCoversAndApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(100)
		d := 1 + rng.Intn(4)
		pts := make([]geom.Vec, n)
		var b Ball
		for i := range pts {
			pts[i] = geom.NewVec(d)
			for a := 0; a < d; a++ {
				pts[i][a] = rng.NormFloat64() * 5
			}
			b.Push(pts[i])
		}
		c := b.Center()
		for i, p := range pts {
			if geom.Dist(p, c) > b.Radius()+1e-9 {
				t.Fatalf("trial %d: point %d outside streaming ball", trial, i)
			}
		}
		_, offR := sebo.MEB(pts, 0.01)
		// Offline (1.01-approx) radius ≥ OPT/1.01… compare streaming ≤ 1.5·OPT.
		if b.Radius() > 1.5*offR+1e-9 {
			t.Fatalf("trial %d: streaming radius %g > 1.5×offline %g", trial, b.Radius(), offR)
		}
	}
}

func TestIncrementalValidation(t *testing.T) {
	if _, err := NewIncremental(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestIncrementalFewerPointsThanK(t *testing.T) {
	s, err := NewIncremental(5)
	if err != nil {
		t.Fatal(err)
	}
	s.Push(geom.Vec{0, 0})
	s.Push(geom.Vec{1, 1})
	s.Push(geom.Vec{0, 0}) // duplicate ignored in bootstrap
	if got := len(s.Centers()); got != 2 {
		t.Errorf("centers = %d, want 2", got)
	}
	if s.N() != 3 {
		t.Errorf("N = %d, want 3", s.N())
	}
}

// TestIncrementalEightApprox: after every prefix, the doubling algorithm's
// covering radius is within 8× the offline optimal prefix radius.
func TestIncrementalEightApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(20)
		k := 1 + rng.Intn(3)
		pts := make([]geom.Vec, n)
		for i := range pts {
			pts[i] = geom.Vec{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		}
		s, err := NewIncremental(k)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			s.Push(p)
			if (i+1)%7 != 0 && i != n-1 {
				continue // check a few prefixes, not all (cost)
			}
			prefix := pts[:i+1]
			centers := s.Centers()
			if len(centers) == 0 || len(centers) > k {
				t.Fatalf("trial %d: %d centers for k=%d", trial, len(centers), k)
			}
			streamR := kcenter.Radius[geom.Vec](euclid, prefix, centers)
			// Offline reference: Gonzalez radius ≤ 2·OPT ⇒ OPT ≥ gonz/2.
			_, gonz, err := kcenter.Gonzalez[geom.Vec](euclid, prefix, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if gonz == 0 {
				if streamR > 1e-9 {
					t.Fatalf("trial %d: OPT=0 but stream radius %g", trial, streamR)
				}
				continue
			}
			// streamR ≤ 8·OPT and OPT ≤ gonz ⇒ allow streamR ≤ 8·gonz.
			if streamR > 8*gonz+1e-9 {
				t.Fatalf("trial %d prefix %d: stream radius %g > 8×Gonzalez %g",
					trial, i+1, streamR, gonz)
			}
		}
	}
}

func TestUncertain1CenterMatchesTheorem21Flavor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, err := gen.GaussianClusters(rng, 30, 3, 2, 1, 1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	var u Uncertain1Center
	for _, p := range pts {
		if err := u.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	if u.N() != 30 {
		t.Errorf("N = %d", u.N())
	}
	c := u.Center()
	cost, err := core.EcostUnassigned[geom.Vec](euclid, pts, []geom.Vec{c})
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := core.Optimal1CenterEuclidean(pts, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	// Streaming composition: constant factor; assert a conservative 4x
	// (2 from the surrogate argument × ~1.5 streaming slack, rounded up).
	if opt > 0 && cost > 4*opt {
		t.Errorf("streaming 1-center cost %g > 4×opt %g", cost, opt)
	}
}

func TestUncertain1CenterRejectsInvalid(t *testing.T) {
	var u Uncertain1Center
	if err := u.Push(uncertain.Point[geom.Vec]{}); err == nil {
		t.Error("invalid point accepted")
	}
	if u.N() != 0 {
		t.Error("invalid point counted")
	}
}

func TestUncertainKCenterStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, err := gen.GaussianClusters(rng, 60, 3, 2, 3, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewUncertainKCenter(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := s.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	centers := s.Centers()
	if len(centers) == 0 || len(centers) > 3 {
		t.Fatalf("centers = %d", len(centers))
	}
	// The streaming result must be within a constant factor of the batch
	// pipeline on the same stream; assert a loose 10x (8 from doubling with
	// slack for the surrogate step).
	streamCost, err := core.EcostUnassigned[geom.Vec](euclid, pts, centers)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := core.SolveEuclidean(pts, 3, core.EuclideanOptions{Rule: core.RuleEP})
	if err != nil {
		t.Fatal(err)
	}
	if batch.EcostUnassigned > 0 && streamCost > 10*batch.EcostUnassigned {
		t.Errorf("streaming cost %g > 10×batch %g", streamCost, batch.EcostUnassigned)
	}
	if _, err := NewUncertainKCenter(0); err == nil {
		t.Error("k=0 accepted")
	}
	var bad UncertainKCenter
	bad.inc, _ = NewIncremental(1)
	if err := bad.Push(uncertain.Point[geom.Vec]{}); err == nil {
		t.Error("invalid point accepted")
	}
}

func BenchmarkIncrementalPush(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	s, err := NewIncremental(16)
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]geom.Vec, 1024)
	for i := range pts {
		pts[i] = geom.Vec{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(pts[i%len(pts)])
	}
}

func TestPushSet(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pts, err := gen.GaussianClusters(rng, 40, 3, 2, 3, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	// Feeding a batch must equal feeding the same points one by one.
	var bulk1, solo1 Uncertain1Center
	if err := bulk1.PushSet(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := solo1.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	if bulk1.N() != solo1.N() || !bulk1.Center().Equal(solo1.Center(), 0) {
		t.Fatal("Uncertain1Center.PushSet differs from per-point Push")
	}

	bulkK, err := NewUncertainKCenter(3)
	if err != nil {
		t.Fatal(err)
	}
	soloK, err := NewUncertainKCenter(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := bulkK.PushSet(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := soloK.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	bc, sc := bulkK.Centers(), soloK.Centers()
	if bulkK.N() != soloK.N() || len(bc) != len(sc) {
		t.Fatal("UncertainKCenter.PushSet differs from per-point Push")
	}
	for i := range bc {
		if !bc[i].Equal(sc[i], 0) {
			t.Fatalf("center %d differs after PushSet", i)
		}
	}

	// A canceled context stops the feed with ctx.Err; the prefix absorbed
	// so far stays a valid sketch.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	var c1 Uncertain1Center
	if err := c1.PushSet(canceled, pts); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if err := bulkK.PushSet(canceled, pts); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
