package graphmetric

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// GridGraph returns the rows×cols grid graph with unit edge weights. Vertex
// (r, c) has index r*cols + c. The shortest-path metric of a grid is the L1
// metric on the lattice — a canonical non-Euclidean test metric.
func GridGraph(rows, cols int) (*Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("graphmetric: invalid grid %dx%d", rows, cols)
	}
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				if err := g.AddEdge(v, v+1, 1); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddEdge(v, v+cols, 1); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// RandomGeometric places n vertices uniformly in the unit square and connects
// pairs within Euclidean distance radius, weighting each edge by its length —
// a standard road-network-like model. If the sampled graph is disconnected it
// is augmented with a chain of nearest-neighbour edges between components so
// the shortest-path metric is well defined (this keeps the metric "roady"
// rather than resampling until lucky).
func RandomGeometric(n int, radius float64, rng *rand.Rand) (*Graph, []geom.Vec, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("graphmetric: invalid vertex count %d", n)
	}
	if !(radius > 0) {
		return nil, nil, fmt.Errorf("graphmetric: invalid radius %g", radius)
	}
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = geom.Vec{rng.Float64(), rng.Float64()}
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := geom.Dist(pos[i], pos[j]); d <= radius && d > 0 {
				if err := g.AddEdge(i, j, d); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	connectComponents(g, pos)
	return g, pos, nil
}

// RandomTree returns a uniformly random labeled tree on n vertices
// (random-parent attachment) with edge weights drawn uniformly from
// [minW, maxW]. Trees are the classical k-center substrate (the paper's
// related work cites p-centers on trees), and their metric is maximally
// far from Euclidean.
func RandomTree(n int, minW, maxW float64, rng *rand.Rand) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graphmetric: invalid vertex count %d", n)
	}
	if !(minW > 0) || maxW < minW {
		return nil, fmt.Errorf("graphmetric: invalid weight range [%g, %g]", minW, maxW)
	}
	g := New(n)
	for v := 1; v < n; v++ {
		parent := rng.Intn(v)
		w := minW + (maxW-minW)*rng.Float64()
		if err := g.AddEdge(parent, v, w); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// connectComponents links disconnected components of g by repeatedly adding
// the shortest Euclidean edge between the component of vertex 0 and the rest.
func connectComponents(g *Graph, pos []geom.Vec) {
	for {
		comp := componentOf(g, 0)
		if allTrue(comp) {
			return
		}
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < g.n; i++ {
			if !comp[i] {
				continue
			}
			for j := 0; j < g.n; j++ {
				if comp[j] {
					continue
				}
				if d := geom.Dist(pos[i], pos[j]); d < best && d > 0 {
					bi, bj, best = i, j, d
				}
			}
		}
		if bi < 0 {
			// All remaining vertices coincide geometrically with connected
			// ones; link them with a tiny positive weight.
			for j := 0; j < g.n; j++ {
				if !comp[j] {
					_ = g.AddEdge(0, j, 1e-9)
					break
				}
			}
			continue
		}
		_ = g.AddEdge(bi, bj, best)
	}
}

func componentOf(g *Graph, src int) []bool {
	seen := make([]bool, g.n)
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return seen
}

func allTrue(b []bool) bool {
	for _, x := range b {
		if !x {
			return false
		}
	}
	return true
}
