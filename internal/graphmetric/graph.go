// Package graphmetric builds finite metric spaces from weighted undirected
// graphs via shortest-path distances. It is the substrate for the paper's
// "general metric space" experiments (Theorems 2.6 and 2.7): road-network-like
// random geometric graphs and grid graphs whose shortest-path metric is
// genuinely non-Euclidean.
package graphmetric

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/metricspace"
)

// Graph is a weighted undirected graph over vertices {0, …, n−1}.
type Graph struct {
	n   int
	adj [][]edge
}

type edge struct {
	to int
	w  float64
}

// New returns an empty graph on n vertices. It panics if n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graphmetric: negative vertex count %d", n))
	}
	return &Graph{n: n, adj: make([][]edge, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// AddEdge inserts an undirected edge {u, v} of weight w. It returns an error
// for out-of-range endpoints, self-loops, or non-positive/non-finite weights.
// Parallel edges are allowed; shortest paths simply use the cheapest.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graphmetric: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graphmetric: self-loop at %d", u)
	}
	if !(w > 0) || math.IsInf(w, 0) {
		return fmt.Errorf("graphmetric: invalid edge weight %g", w)
	}
	g.adj[u] = append(g.adj[u], edge{v, w})
	g.adj[v] = append(g.adj[v], edge{u, w})
	return nil
}

// ShortestFrom runs Dijkstra from src and returns the distance to every
// vertex (+Inf for unreachable vertices).
func (g *Graph) ShortestFrom(src int) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue // stale entry
		}
		for _, e := range g.adj[it.v] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, distItem{e.to, nd})
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (vacuously true for n ≤ 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.to] {
				seen[e.to] = true
				count++
				stack = append(stack, e.to)
			}
		}
	}
	return count == g.n
}

// Metric computes the all-pairs shortest-path metric (one Dijkstra per
// vertex, O(n·m·log n)) and returns it as a finite metric space. It fails if
// the graph is disconnected, since +Inf distances are not a metric.
func (g *Graph) Metric() (*metricspace.Finite, error) {
	if !g.Connected() {
		return nil, fmt.Errorf("graphmetric: graph with %d vertices is not connected", g.n)
	}
	d := make([][]float64, g.n)
	for i := 0; i < g.n; i++ {
		d[i] = g.ShortestFrom(i)
	}
	// Shortest-path distances from per-source Dijkstra runs are exactly
	// symmetric for undirected graphs with the same float operations, but we
	// symmetrize defensively so NewFinite's validation never trips on
	// floating-point summation-order differences.
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			m := math.Min(d[i][j], d[j][i])
			d[i][j] = m
			d[j][i] = m
		}
	}
	return metricspace.NewFinite(d)
}

type distItem struct {
	v int
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
