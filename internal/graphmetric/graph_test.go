package graphmetric

import (
	"math"
	"math/rand"
	"testing"
)

func mustAdd(t *testing.T, g *Graph, u, v int, w float64) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	cases := []struct {
		u, v int
		w    float64
	}{
		{-1, 0, 1}, {0, 3, 1}, {0, 0, 1}, {0, 1, 0}, {0, 1, -2},
		{0, 1, math.Inf(1)}, {0, 1, math.NaN()},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.u, c.v, c.w); err == nil {
			t.Errorf("AddEdge(%d,%d,%g) accepted", c.u, c.v, c.w)
		}
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d after rejected inserts", g.NumEdges())
	}
}

func TestShortestFrom(t *testing.T) {
	// 0 -1- 1 -1- 2, plus a direct heavy edge 0-2.
	g := New(4)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 0, 2, 5)
	d := g.ShortestFrom(0)
	if d[0] != 0 || d[1] != 1 || d[2] != 2 {
		t.Errorf("distances = %v", d[:3])
	}
	if !math.IsInf(d[3], 1) {
		t.Errorf("unreachable vertex distance = %g, want +Inf", d[3])
	}
}

func TestConnected(t *testing.T) {
	g := New(3)
	if g.Connected() {
		t.Error("edgeless 3-vertex graph reported connected")
	}
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	if !g.Connected() {
		t.Error("path graph reported disconnected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Error("trivial graphs should be connected")
	}
}

func TestMetricRequiresConnectivity(t *testing.T) {
	g := New(2)
	if _, err := g.Metric(); err == nil {
		t.Fatal("Metric on disconnected graph succeeded")
	}
}

func TestMetricOfPath(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1, 2)
	mustAdd(t, g, 1, 2, 3)
	m, err := g.Metric()
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist(0, 2) != 5 || m.Dist(2, 0) != 5 {
		t.Errorf("Dist(0,2) = %g, want 5", m.Dist(0, 2))
	}
	if err := m.Check(1e-9); err != nil {
		t.Errorf("shortest-path metric violates axioms: %v", err)
	}
}

func TestGridGraphMetricIsL1(t *testing.T) {
	g, err := GridGraph(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	m, err := g.Metric()
	if err != nil {
		t.Fatal(err)
	}
	// Grid shortest path = Manhattan distance between lattice coordinates.
	for v := 0; v < 12; v++ {
		for w := 0; w < 12; w++ {
			vr, vc := v/4, v%4
			wr, wc := w/4, w%4
			want := math.Abs(float64(vr-wr)) + math.Abs(float64(vc-wc))
			if got := m.Dist(v, w); math.Abs(got-want) > 1e-12 {
				t.Fatalf("Dist(%d,%d) = %g, want %g", v, w, got, want)
			}
		}
	}
}

func TestGridGraphRejectsBadShape(t *testing.T) {
	if _, err := GridGraph(0, 5); err == nil {
		t.Error("GridGraph(0,5) accepted")
	}
	if _, err := GridGraph(3, -1); err == nil {
		t.Error("GridGraph(3,-1) accepted")
	}
}

func TestRandomGeometricConnectedMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		// Small radius forces the component-stitching path.
		g, pos, err := RandomGeometric(30, 0.12, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(pos) != 30 {
			t.Fatalf("positions = %d", len(pos))
		}
		if !g.Connected() {
			t.Fatal("RandomGeometric returned a disconnected graph")
		}
		m, err := g.Metric()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Check(1e-9); err != nil {
			t.Fatalf("metric axioms: %v", err)
		}
	}
}

func TestRandomGeometricValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := RandomGeometric(0, 0.5, rng); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := RandomGeometric(5, 0, rng); err == nil {
		t.Error("radius=0 accepted")
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := RandomTree(20, 0.5, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 19 {
		t.Errorf("tree on 20 vertices has %d edges", g.NumEdges())
	}
	if !g.Connected() {
		t.Error("tree disconnected")
	}
	m, err := g.Metric()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Check(1e-9); err != nil {
		t.Errorf("tree metric axioms: %v", err)
	}
}

func TestRandomTreeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomTree(0, 1, 2, rng); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RandomTree(5, 0, 2, rng); err == nil {
		t.Error("minW=0 accepted")
	}
	if _, err := RandomTree(5, 2, 1, rng); err == nil {
		t.Error("maxW<minW accepted")
	}
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(10)
		g := New(n)
		// Random connected graph: random tree plus extra edges.
		for v := 1; v < n; v++ {
			mustAdd(t, g, rng.Intn(v), v, 0.1+rng.Float64())
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				mustAdd(t, g, u, v, 0.1+rng.Float64())
			}
		}
		m, err := g.Metric()
		if err != nil {
			t.Fatal(err)
		}
		// Reference: Floyd–Warshall over the same edge set.
		fw := make([][]float64, n)
		for i := range fw {
			fw[i] = make([]float64, n)
			for j := range fw[i] {
				if i != j {
					fw[i][j] = math.Inf(1)
				}
			}
		}
		for u := 0; u < n; u++ {
			for _, e := range g.adj[u] {
				if e.w < fw[u][e.to] {
					fw[u][e.to] = e.w
				}
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if fw[i][k]+fw[k][j] < fw[i][j] {
						fw[i][j] = fw[i][k] + fw[k][j]
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(m.Dist(i, j)-fw[i][j]) > 1e-9 {
					t.Fatalf("trial %d: Dijkstra %g vs Floyd–Warshall %g at (%d,%d)",
						trial, m.Dist(i, j), fw[i][j], i, j)
				}
			}
		}
	}
}

func BenchmarkMetric100(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g, _, err := RandomGeometric(100, 0.2, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Metric(); err != nil {
			b.Fatal(err)
		}
	}
}
