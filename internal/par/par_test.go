package par_test

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/par"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 33} {
		for _, n := range []int{0, 1, 7, 16, 100, 1000} {
			hits := make([]int32, n)
			err := par.For(context.Background(), n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := par.For(ctx, 1000, 4, func(i int) {})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Sequential path too.
	err = par.For(ctx, 1000, 1, func(i int) {})
	if err != context.Canceled {
		t.Fatalf("sequential: got %v, want context.Canceled", err)
	}
}

func TestMapDeterministic(t *testing.T) {
	f := func(i int) int { return i * i }
	want := make([]int, 257)
	for i := range want {
		want[i] = f(i)
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := par.Map(context.Background(), make([]int, len(want)), workers, f)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestWorkers(t *testing.T) {
	if par.Workers(4) != 4 {
		t.Fatal("Workers(4) != 4")
	}
	if par.Workers(0) < 1 || par.Workers(-1) < 1 {
		t.Fatal("Workers must default to at least 1")
	}
}
