package par_test

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/par"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 33} {
		for _, n := range []int{0, 1, 7, 16, 100, 1000} {
			hits := make([]int32, n)
			err := par.For(context.Background(), n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := par.For(ctx, 1000, 4, func(i int) {})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Sequential path too.
	err = par.For(ctx, 1000, 1, func(i int) {})
	if err != context.Canceled {
		t.Fatalf("sequential: got %v, want context.Canceled", err)
	}
}

func TestMapDeterministic(t *testing.T) {
	f := func(i int) int { return i * i }
	want := make([]int, 257)
	for i := range want {
		want[i] = f(i)
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := par.Map(context.Background(), make([]int, len(want)), workers, f)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestWorkers(t *testing.T) {
	if par.Workers(4) != 4 {
		t.Fatal("Workers(4) != 4")
	}
	if par.Workers(0) < 1 || par.Workers(-1) < 1 {
		t.Fatal("Workers must default to at least 1")
	}
}

func TestForWorkerCoversAllIndicesWithValidSlots(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		n := 100
		hits := make([]int32, n) // hits[i] = 1 + worker slot that ran i
		err := par.ForWorker(context.Background(), n, workers, func(w, i int) {
			atomic.AddInt32(&hits[i], int32(w)+1)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h < 1 || h > int32(workers) {
				t.Fatalf("workers=%d: index %d hit-sum %d (double visit or slot out of range)", workers, i, h)
			}
			if workers == 1 && h != 1 {
				t.Fatalf("sequential path used worker slot %d for index %d", h-1, i)
			}
		}
	}
}

func TestForWorkerScratchIsolation(t *testing.T) {
	// Each worker slot owns one scratch counter; the per-slot counters must
	// sum to n without any synchronization inside fn — the property the
	// incremental swap evaluator relies on.
	workers, n := 4, 1000
	scratch := make([][8]int64, workers) // padded to defeat false sharing
	err := par.ForWorker(context.Background(), n, workers, func(w, i int) {
		scratch[w][0]++
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for w := range scratch {
		total += scratch[w][0]
	}
	if total != int64(n) {
		t.Fatalf("scratch counters sum to %d, want %d", total, n)
	}
}
