// Package par provides the deterministic bounded-parallelism substrate the
// solve pipelines run on: index-space fan-out over a fixed worker count with
// cooperative context cancellation.
//
// Determinism contract: For runs fn(i) exactly once for every i in [0, n)
// unless the context is canceled first, and workers communicate only through
// disjoint index ranges. A caller that writes fn's result to out[i] therefore
// gets a slice that is bit-identical to the sequential loop
//
//	for i := 0; i < n; i++ { out[i] = f(i) }
//
// for any worker count — the property the solver's WithParallelism option
// documents and the test suite asserts.
package par

import (
	"context"
	"runtime"
	"sync"
)

// chunk is the number of consecutive indices a worker claims at a time.
// Coarse enough to amortize the atomic claim, fine enough to balance skewed
// per-index costs (e.g. uncertain points with very different support sizes).
const chunk = 16

// Workers normalizes a requested parallelism degree: 0 or negative means
// "one worker per logical CPU", anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) using at most `workers` goroutines
// (sequentially in the calling goroutine when workers ≤ 1) and returns
// ctx.Err() if the context is canceled before all indices complete. Partial
// work may have been performed on cancellation; callers must discard their
// output buffer when an error is returned.
//
// fn must not panic across indices it does not own; indices are distributed
// in contiguous chunks so writes to out[i] never contend.
func For(ctx context.Context, n, workers int, fn func(i int)) error {
	return ForWorker(ctx, n, workers, func(_, i int) { fn(i) })
}

// ForWorker is For with the worker slot exposed: fn(w, i) runs with
// w ∈ [0, min(workers, n)) identifying the goroutine that claimed index i,
// so callers can hand each worker its own scratch buffers (the incremental
// swap evaluator's per-worker merge arenas) without synchronization. The
// slot is stable for the lifetime of one ForWorker call and never shared by
// two concurrent fn invocations; the sequential path always passes w = 0.
// The determinism contract is For's: which worker claims an index affects
// only the scratch it uses, never the result written for that index.
func ForWorker(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if i%chunk == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			fn(0, i)
		}
		return ctx.Err()
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
	)
	claim := func() (lo, hi int, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, 0, false
		}
		lo = next
		hi = lo + chunk
		if hi > n {
			hi = n
		}
		next = hi
		return lo, hi, true
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				lo, hi, ok := claim()
				if !ok {
					return
				}
				for i := lo; i < hi; i++ {
					fn(w, i)
				}
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// Map fills out[i] = f(i) for i in [0, len(out)) with the given parallelism,
// honoring ctx. The out slice is returned for chaining; on cancellation it is
// partially filled and must be discarded.
func Map[T any](ctx context.Context, out []T, workers int, f func(i int) T) ([]T, error) {
	err := For(ctx, len(out), workers, func(i int) { out[i] = f(i) })
	return out, err
}
