package kcenter

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/metricspace"
)

// DiscreteBnB solves the discrete k-center problem exactly: centers are
// restricted to cands, and the minimum covering radius over pts is found by
// binary search over the point-candidate distances with a branch-and-bound
// set-cover feasibility check (branching on the point with the fewest live
// coverers). It returns the chosen candidate indices and the optimal radius.
//
// In a finite metric space with cands = all space points this is the true
// optimum; in Euclidean space it is the optimum over the candidate grid.
// maxNodes bounds the search explicitly (the problem is NP-hard); the
// function returns an error when exceeded.
func DiscreteBnB[P any](space metricspace.Space[P], pts, cands []P, k, maxNodes int) ([]int, float64, error) {
	if len(pts) == 0 {
		return nil, 0, fmt.Errorf("kcenter: DiscreteBnB on empty point set")
	}
	if len(cands) == 0 {
		return nil, 0, fmt.Errorf("kcenter: DiscreteBnB with no candidates")
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("kcenter: DiscreteBnB with k = %d", k)
	}
	if maxNodes <= 0 {
		maxNodes = 5_000_000
	}
	n, m := len(pts), len(cands)
	d := make([][]float64, n)
	distSet := make([]float64, 0, n*m)
	for i, p := range pts {
		d[i] = make([]float64, m)
		for j, c := range cands {
			d[i][j] = space.Dist(p, c)
			distSet = append(distSet, d[i][j])
		}
	}
	sort.Float64s(distSet)
	distSet = dedupFloats(distSet)

	lo, hi := 0, len(distSet)-1
	var bestCover []int
	for lo < hi {
		mid := (lo + hi) / 2
		cover, ok, err := coverSearch(d, k, distSet[mid], maxNodes)
		if err != nil {
			return nil, 0, err
		}
		if ok {
			hi = mid
			bestCover = cover
		} else {
			lo = mid + 1
		}
	}
	if bestCover == nil {
		cover, ok, err := coverSearch(d, k, distSet[lo], maxNodes)
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return nil, 0, fmt.Errorf("kcenter: internal error, max radius infeasible")
		}
		bestCover = cover
	}
	// Exact radius of the chosen cover.
	r := 0.0
	for i := 0; i < n; i++ {
		pd := math.Inf(1)
		for _, c := range bestCover {
			if d[i][c] < pd {
				pd = d[i][c]
			}
		}
		if pd > r {
			r = pd
		}
	}
	return bestCover, r, nil
}

// coverSearch decides whether k candidate balls of radius t cover all points,
// returning a witness candidate index set. Branch and bound: always branch on
// the uncovered point with the fewest coverers.
func coverSearch(d [][]float64, k int, t float64, maxNodes int) ([]int, bool, error) {
	n := len(d)
	covered := make([]int, n) // coverage count per point
	chosen := make([]int, 0, k)
	nodes := 0
	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		nodes++
		if nodes > maxNodes {
			return false
		}
		// Find the uncovered point with the fewest coverers.
		bestPt, bestCnt := -1, math.MaxInt
		for i := 0; i < n; i++ {
			if covered[i] > 0 {
				continue
			}
			cnt := 0
			for j := range d[i] {
				if d[i][j] <= t {
					cnt++
				}
			}
			if cnt < bestCnt {
				bestPt, bestCnt = i, cnt
			}
		}
		if bestPt < 0 {
			return true // everything covered
		}
		if remaining == 0 || bestCnt == 0 {
			return false
		}
		for j := range d[bestPt] {
			if d[bestPt][j] > t {
				continue
			}
			chosen = append(chosen, j)
			for i := 0; i < n; i++ {
				if d[i][j] <= t {
					covered[i]++
				}
			}
			if rec(remaining - 1) {
				return true
			}
			for i := 0; i < n; i++ {
				if d[i][j] <= t {
					covered[i]--
				}
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}
	ok := rec(k)
	if nodes > maxNodes {
		return nil, false, fmt.Errorf("kcenter: cover search exceeded %d nodes", maxNodes)
	}
	if !ok {
		return nil, false, nil
	}
	return append([]int(nil), chosen...), true, nil
}
