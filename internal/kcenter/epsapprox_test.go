package kcenter

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestEpsApproxValidation(t *testing.T) {
	pts := []geom.Vec{{0, 0}}
	if _, err := EpsApprox(nil, 1, 0.5, EpsOptions{}); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := EpsApprox(pts, 0, 0.5, EpsOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := EpsApprox(pts, 1, 0, EpsOptions{}); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestEpsApproxDegenerate(t *testing.T) {
	// k ≥ n: radius 0, centers are the points.
	pts := []geom.Vec{{0, 0}, {5, 5}}
	res, err := EpsApprox(pts, 2, 0.5, EpsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius != 0 {
		t.Errorf("radius = %g, want 0", res.Radius)
	}
	// All coincident points.
	same := []geom.Vec{{1, 1}, {1, 1}, {1, 1}}
	res, err = EpsApprox(same, 1, 0.5, EpsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius != 0 {
		t.Errorf("radius = %g, want 0 for coincident points", res.Radius)
	}
}

func TestEpsApproxTwoClusters(t *testing.T) {
	pts := []geom.Vec{{0, 0}, {1, 0}, {0, 1}, {20, 20}, {21, 20}}
	res, err := EpsApprox(pts, 2, 0.25, EpsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal continuous radius ≈ max cluster MEB radius: cluster 1 is an
	// isoceles right triangle with circumradius √2/2 ≈ 0.707; cluster 2 has
	// radius 0.5. (1+ε)·OPT with ε=0.25 → ≤ 0.884.
	opt := math.Sqrt2 / 2
	if res.Radius > opt*(1+res.EffectiveEps)+1e-9 {
		t.Errorf("radius %g exceeds (1+ε)·OPT = %g (effEps=%g)",
			res.Radius, opt*(1+res.EffectiveEps), res.EffectiveEps)
	}
	if res.Radius < opt-1e-9 {
		t.Errorf("radius %g below the continuous OPT %g — impossible", res.Radius, opt)
	}
}

// TestEpsApproxBeatsOrMatchesGonzalez: the result is never worse than the
// Gonzalez seed (the algorithm keeps the better of the two).
func TestEpsApproxBeatsOrMatchesGonzalez(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(12)
		k := 1 + rng.Intn(2)
		pts := randomCloud(rng, n, 2)
		_, gr, err := Gonzalez[geom.Vec](euclid, pts, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := EpsApprox(pts, k, 0.5, EpsOptions{MaxCandidates: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Radius > gr+1e-9 {
			t.Fatalf("trial %d: EpsApprox %g worse than Gonzalez %g", trial, res.Radius, gr)
		}
	}
}

// TestEpsApproxGuarantee compares against the discrete optimum over input
// points: the continuous optimum is at least half the discrete one, and
// EpsApprox must land within (1+ε) of the continuous optimum, hence within
// (1+ε)·OPT_discrete of the discrete optimum too. We check the directly
// provable chain: result ≤ (1+ε)·OPT_cont and OPT_cont ≤ OPT_disc.
func TestEpsApproxGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(8)
		k := 1 + rng.Intn(2)
		pts := randomCloud(rng, n, 2)
		res, err := EpsApprox(pts, k, 0.5, EpsOptions{MaxCandidates: 4000})
		if err != nil {
			t.Fatal(err)
		}
		_, optDisc, err := ExactDiscrete[geom.Vec](euclid, pts, pts, k, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		// OPT_cont ≤ OPT_disc, so (1+ε)·OPT_disc is a valid upper bound.
		if res.Radius > (1+res.EffectiveEps)*optDisc+1e-9 {
			t.Fatalf("trial %d: radius %g > (1+ε)·OPT_disc %g",
				trial, res.Radius, (1+res.EffectiveEps)*optDisc)
		}
	}
}

func TestEpsApproxCandidateCapCoarsens(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := randomCloud(rng, 20, 2)
	res, err := EpsApprox(pts, 2, 0.05, EpsOptions{MaxCandidates: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveEps <= 0.05 {
		t.Errorf("expected coarsened epsilon, got %g with %d candidates",
			res.EffectiveEps, res.Candidates)
	}
}

func BenchmarkGonzalez(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{100, 1000, 10000} {
		pts := randomCloud(rng, n, 4)
		b.Run("n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := Gonzalez[geom.Vec](euclid, pts, 8, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEpsApprox(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomCloud(rng, 40, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EpsApprox(pts, 2, 0.5, EpsOptions{MaxCandidates: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
