// Package kcenter implements deterministic (certain-point) k-center solvers:
//
//   - Gonzalez's greedy farthest-point algorithm (factor 2, any metric,
//     O(nk)) — the solver behind the paper's O(nz + n·log k) pipelines;
//   - a textbook (1+ε)-approximation for Euclidean space and constant k
//     (Gonzalez radius → grid candidates of spacing εr/√d → discrete
//     k-center by radius binary search with branch-and-bound covering);
//   - exact discrete k-center by exhaustive candidate-subset search (the
//     brute-force optimum oracle on small instances);
//   - the exact 1D k-center (binary search over pairwise half-gaps).
//
// All solvers report both the chosen centers and their exact covering radius.
package kcenter

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/metricspace"
)

// Radius returns max_p min_c d(p, c), the covering radius of centers over
// pts (0 for empty pts). It panics if centers is empty and pts is not.
func Radius[P any](space metricspace.Space[P], pts, centers []P) float64 {
	var r float64
	for _, p := range pts {
		if d := minDist(space, p, centers); d > r {
			r = d
		}
	}
	return r
}

// AssignNearest returns, for each point, the index of its nearest center
// (ties to the lowest index). It panics if centers is empty and pts is not.
func AssignNearest[P any](space metricspace.Space[P], pts, centers []P) []int {
	out := make([]int, len(pts))
	for i, p := range pts {
		best, bestD := -1, math.Inf(1)
		for c, ctr := range centers {
			if d := space.Dist(p, ctr); d < bestD {
				best, bestD = c, d
			}
		}
		if best < 0 {
			panic("kcenter: AssignNearest with no centers")
		}
		out[i] = best
	}
	return out
}

func minDist[P any](space metricspace.Space[P], p P, centers []P) float64 {
	best := math.Inf(1)
	for _, c := range centers {
		if d := space.Dist(p, c); d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		panic("kcenter: distance to empty center set")
	}
	return best
}

// Gonzalez runs the greedy farthest-point 2-approximation from the given
// start index: repeatedly add the point farthest from the current centers.
// It returns the chosen center indices (into pts) and the exact covering
// radius of the selection. k is clamped to len(pts); it returns an error for
// k ≤ 0 or empty pts.
func Gonzalez[P any](space metricspace.Space[P], pts []P, k, start int) ([]int, float64, error) {
	n := len(pts)
	if n == 0 {
		return nil, 0, fmt.Errorf("kcenter: Gonzalez on empty point set")
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("kcenter: Gonzalez with k = %d", k)
	}
	if start < 0 || start >= n {
		return nil, 0, fmt.Errorf("kcenter: Gonzalez start index %d out of range [0,%d)", start, n)
	}
	if k > n {
		k = n
	}
	centers := make([]int, 0, k)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	cur := start
	for len(centers) < k {
		centers = append(centers, cur)
		far, farD := cur, 0.0
		for i := 0; i < n; i++ {
			if d := space.Dist(pts[i], pts[cur]); d < dist[i] {
				dist[i] = d
			}
			if dist[i] > farD {
				far, farD = i, dist[i]
			}
		}
		cur = far
	}
	radius := 0.0
	for _, d := range dist {
		if d > radius {
			radius = d
		}
	}
	return centers, radius, nil
}

// Select returns pts[idx[0]], pts[idx[1]], … — a convenience for turning
// index outputs into point outputs.
func Select[P any](pts []P, idx []int) []P {
	out := make([]P, len(idx))
	for i, j := range idx {
		out[i] = pts[j]
	}
	return out
}

// ExactDiscrete finds the optimal k centers drawn from the candidate set by
// exhaustive subset enumeration, returning candidate indices and the optimal
// radius. It refuses to enumerate more than maxSubsets subsets (use ~5e6).
// This is the test/experiment oracle for small instances.
func ExactDiscrete[P any](space metricspace.Space[P], pts, candidates []P, k, maxSubsets int) ([]int, float64, error) {
	m := len(candidates)
	if len(pts) == 0 {
		return nil, 0, fmt.Errorf("kcenter: ExactDiscrete on empty point set")
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("kcenter: ExactDiscrete with k = %d", k)
	}
	if m == 0 {
		return nil, 0, fmt.Errorf("kcenter: ExactDiscrete with no candidates")
	}
	if k > m {
		k = m
	}
	if c := binomial(m, k); c < 0 || c > maxSubsets {
		return nil, 0, fmt.Errorf("kcenter: C(%d,%d) subsets exceed limit %d", m, k, maxSubsets)
	}
	// Precompute point-candidate distances once.
	d := make([][]float64, len(pts))
	for i, p := range pts {
		d[i] = make([]float64, m)
		for j, c := range candidates {
			d[i][j] = space.Dist(p, c)
		}
	}
	best := make([]int, k)
	bestR := math.Inf(1)
	subset := make([]int, k)
	var rec func(pos, from int)
	rec = func(pos, from int) {
		if pos == k {
			r := 0.0
			for i := range pts {
				pd := math.Inf(1)
				for _, c := range subset {
					if d[i][c] < pd {
						pd = d[i][c]
					}
				}
				if pd > r {
					r = pd
				}
				if r >= bestR {
					return // cannot improve
				}
			}
			if r < bestR {
				bestR = r
				copy(best, subset)
			}
			return
		}
		for c := from; c <= m-(k-pos); c++ {
			subset[pos] = c
			rec(pos+1, c+1)
		}
	}
	rec(0, 0)
	return best, bestR, nil
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c < 0 || c > 1<<40 {
			return -1
		}
	}
	return c
}

// Exact1D solves the 1D k-center problem exactly for certain points with
// centers anywhere on the line: it returns k center coordinates and the
// optimal radius. O(n² log n) via binary search over half-gap candidates with
// a greedy feasibility check.
func Exact1D(xs []float64, k int) ([]float64, float64, error) {
	n := len(xs)
	if n == 0 {
		return nil, 0, fmt.Errorf("kcenter: Exact1D on empty input")
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("kcenter: Exact1D with k = %d", k)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if k >= n {
		out := make([]float64, 0, n)
		for i, x := range sorted {
			if i == 0 || x != sorted[i-1] {
				out = append(out, x)
			}
		}
		return out, 0, nil
	}
	// Candidate radii: (x_j − x_i)/2 for all pairs, plus 0.
	cand := []float64{0}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cand = append(cand, (sorted[j]-sorted[i])/2)
		}
	}
	sort.Float64s(cand)
	cand = dedupFloats(cand)
	lo, hi := 0, len(cand)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if coverable1D(sorted, k, cand[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	r := cand[lo]
	return place1D(sorted, k, r), r, nil
}

// coverable1D reports whether k intervals of half-length r cover the sorted
// points.
func coverable1D(sorted []float64, k int, r float64) bool {
	used := 0
	i := 0
	n := len(sorted)
	for i < n {
		used++
		if used > k {
			return false
		}
		reach := sorted[i] + 2*r
		for i < n && sorted[i] <= reach+1e-15*(1+math.Abs(reach)) {
			i++
		}
	}
	return true
}

// place1D greedily places up to k centers of radius r over the sorted points.
func place1D(sorted []float64, k int, r float64) []float64 {
	var centers []float64
	i, n := 0, len(sorted)
	for i < n && len(centers) < k {
		c := sorted[i] + r
		centers = append(centers, c)
		reach := sorted[i] + 2*r
		for i < n && sorted[i] <= reach+1e-15*(1+math.Abs(reach)) {
			i++
		}
	}
	// Pad with the last center if fewer than k were needed.
	for len(centers) < k {
		centers = append(centers, centers[len(centers)-1])
	}
	return centers
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
