package kcenter

import (
	"fmt"
	"math"

	"repro/internal/metricspace"
)

// CoresetResult is the output of Coreset.
type CoresetResult struct {
	// Indices of the selected points in the input order.
	Indices []int
	// Radius is the covering radius of the coreset over the full set:
	// every input point is within Radius of some coreset point.
	Radius float64
	// KRadius is the Gonzalez k-center radius of the full set (the scale
	// the guarantee is relative to).
	KRadius float64
}

// Coreset computes an additive-error k-center coreset by extended Gonzalez:
// keep adding farthest points until the covering radius drops to
// eps·r_k (r_k = the Gonzalez k-center radius, itself ≤ 2·OPT_k), or until
// maxSize points have been selected. Clustering the coreset and assigning
// every input point to its nearest coreset point inflates any k-center
// solution's radius by at most Radius ≤ eps·r_k ≤ 2·eps·OPT_k — the
// standard additive coreset guarantee, checked in tests.
//
// Use it to shrink n before the quadratic-or-worse solvers: the surrogate
// pipelines stay within their factor at (1+O(eps)) slack.
func Coreset[P any](space metricspace.Space[P], pts []P, k int, eps float64, maxSize int) (CoresetResult, error) {
	n := len(pts)
	if n == 0 {
		return CoresetResult{}, fmt.Errorf("kcenter: Coreset of empty point set")
	}
	if k <= 0 {
		return CoresetResult{}, fmt.Errorf("kcenter: Coreset with k = %d", k)
	}
	if !(eps > 0) {
		return CoresetResult{}, fmt.Errorf("kcenter: Coreset with eps = %g", eps)
	}
	if maxSize <= 0 {
		maxSize = n
	}
	if maxSize > n {
		maxSize = n
	}
	if maxSize < k {
		maxSize = k
	}

	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	indices := make([]int, 0, maxSize)
	cur := 0
	var kRadius float64
	radius := math.Inf(1)
	for len(indices) < maxSize {
		indices = append(indices, cur)
		far, farD := cur, 0.0
		for i := 0; i < n; i++ {
			if d := space.Dist(pts[i], pts[cur]); d < dist[i] {
				dist[i] = d
			}
			if dist[i] > farD {
				far, farD = i, dist[i]
			}
		}
		radius = farD
		cur = far
		if len(indices) == k {
			kRadius = radius
		}
		if len(indices) >= k && radius <= eps*kRadius {
			break
		}
		if radius == 0 {
			break // all remaining points coincide with selected ones
		}
	}
	if len(indices) < k && kRadius == 0 {
		kRadius = radius
	}
	return CoresetResult{Indices: indices, Radius: radius, KRadius: kRadius}, nil
}
