package kcenter

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/metricspace"
)

func TestDiscreteBnBValidation(t *testing.T) {
	pts := []geom.Vec{{0}}
	if _, _, err := DiscreteBnB[geom.Vec](euclid, nil, pts, 1, 0); err == nil {
		t.Error("empty points accepted")
	}
	if _, _, err := DiscreteBnB[geom.Vec](euclid, pts, nil, 1, 0); err == nil {
		t.Error("no candidates accepted")
	}
	if _, _, err := DiscreteBnB[geom.Vec](euclid, pts, pts, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestDiscreteBnBMatchesExactDiscrete(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(10)
		k := 1 + rng.Intn(3)
		pts := randomCloud(rng, n, 2)
		_, bnbR, err := DiscreteBnB[geom.Vec](euclid, pts, pts, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, exactR, err := ExactDiscrete[geom.Vec](euclid, pts, pts, k, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bnbR-exactR) > 1e-9*(1+exactR) {
			t.Fatalf("trial %d: BnB %g vs subset enumeration %g", trial, bnbR, exactR)
		}
	}
}

func TestDiscreteBnBOnFiniteMetric(t *testing.T) {
	f, err := metricspace.NewFinite([][]float64{
		{0, 1, 8, 9},
		{1, 0, 8, 9},
		{8, 8, 0, 1},
		{9, 9, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, r, err := DiscreteBnB[int](f, f.Points(), f.Points(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("radius = %g, want 1", r)
	}
	if len(idx) != 2 {
		t.Errorf("centers = %v", idx)
	}
}

func TestDiscreteBnBNodeBudget(t *testing.T) {
	// A tiny budget must surface as an error, not a wrong answer.
	rng := rand.New(rand.NewSource(32))
	pts := randomCloud(rng, 40, 2)
	if _, _, err := DiscreteBnB[geom.Vec](euclid, pts, pts, 5, 3); err == nil {
		t.Skip("instance solved within 3 nodes — regenerate")
	}
}
