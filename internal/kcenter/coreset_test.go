package kcenter

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestCoresetValidation(t *testing.T) {
	pts := []geom.Vec{{0}}
	if _, err := Coreset[geom.Vec](euclid, nil, 1, 0.5, 0); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Coreset[geom.Vec](euclid, pts, 0, 0.5, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Coreset[geom.Vec](euclid, pts, 1, 0, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestCoresetCoversWithinGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(200)
		k := 1 + rng.Intn(4)
		eps := 0.1 + rng.Float64()*0.4
		pts := randomCloud(rng, n, 2)
		cs, err := Coreset[geom.Vec](euclid, pts, k, eps, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(cs.Indices) < 1 || len(cs.Indices) > n {
			t.Fatalf("coreset size %d", len(cs.Indices))
		}
		// Guarantee: covering radius ≤ eps·kRadius (unless capped by n).
		if len(cs.Indices) < n && cs.Radius > eps*cs.KRadius+1e-9 {
			t.Fatalf("trial %d: radius %g > eps·kRadius %g", trial, cs.Radius, eps*cs.KRadius)
		}
		// Every point within Radius of the coreset.
		sel := Select(pts, cs.Indices)
		if got := Radius[geom.Vec](euclid, pts, sel); got > cs.Radius+1e-9 {
			t.Fatalf("trial %d: actual covering radius %g > reported %g", trial, got, cs.Radius)
		}
	}
}

// TestCoresetPreservesKCenterSolution: solving k-center on the coreset and
// measuring on the full set loses at most the coreset radius.
func TestCoresetPreservesKCenterSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 200
		k := 2 + rng.Intn(3)
		eps := 0.2
		pts := randomCloud(rng, n, 2)
		cs, err := Coreset[geom.Vec](euclid, pts, k, eps, 0)
		if err != nil {
			t.Fatal(err)
		}
		sub := Select(pts, cs.Indices)
		idx, subR, err := Gonzalez[geom.Vec](euclid, sub, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		centers := Select(sub, idx)
		fullR := Radius[geom.Vec](euclid, pts, centers)
		if fullR > subR+cs.Radius+1e-9 {
			t.Fatalf("trial %d: full radius %g > coreset radius %g + slack %g",
				trial, fullR, subR, cs.Radius)
		}
		// And the whole pipeline stays a constant-factor approximation:
		// fullR ≤ 2·OPT + eps·r_k ≤ (2 + 2·eps)·... — compare against
		// direct Gonzalez on the full set as a proxy for OPT scale.
		_, directR, err := Gonzalez[geom.Vec](euclid, pts, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if directR > 0 && fullR > 4*directR {
			t.Fatalf("trial %d: coreset pipeline radius %g vs direct %g", trial, fullR, directR)
		}
	}
}

func TestCoresetDegenerate(t *testing.T) {
	// All points identical: the coreset is a single point with radius 0.
	pts := []geom.Vec{{1, 1}, {1, 1}, {1, 1}}
	cs, err := Coreset[geom.Vec](euclid, pts, 2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Radius != 0 {
		t.Errorf("radius = %g, want 0", cs.Radius)
	}
}

func TestCoresetMaxSizeCap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomCloud(rng, 500, 2)
	cs, err := Coreset[geom.Vec](euclid, pts, 3, 0.01, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Indices) > 20 {
		t.Errorf("coreset size %d exceeds cap 20", len(cs.Indices))
	}
}

func BenchmarkCoreset(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomCloud(rng, 20000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Coreset[geom.Vec](euclid, pts, 8, 0.2, 0); err != nil {
			b.Fatal(err)
		}
	}
}
