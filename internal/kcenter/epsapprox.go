package kcenter

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/metricspace"
)

// EpsOptions tunes the Euclidean (1+ε)-approximation.
type EpsOptions struct {
	// MaxCandidates caps the grid candidate count (default 20000). If the
	// grid would exceed it the spacing is coarsened, weakening the guarantee;
	// the returned Certificate reports the effective epsilon.
	MaxCandidates int
	// MaxNodes caps the branch-and-bound nodes per feasibility test
	// (default 5e6); exceeding it aborts with an error.
	MaxNodes int
}

func (o EpsOptions) withDefaults() EpsOptions {
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 20000
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 5_000_000
	}
	return o
}

// EpsResult reports the output of EpsApprox.
type EpsResult struct {
	Centers []geom.Vec
	Radius  float64 // exact covering radius of Centers
	// EffectiveEps is the epsilon actually certified: the requested value,
	// or a larger one if the candidate cap forced a coarser grid.
	EffectiveEps float64
	// Candidates is the size of the grid candidate set that was searched.
	Candidates int
}

// EpsApprox computes a (1+ε)-approximate Euclidean k-center for constant k
// and dimension via the standard grid-candidate scheme:
//
//  1. run Gonzalez to get a radius r with OPT ≤ r ≤ 2·OPT;
//  2. lay a grid of spacing s = ε·r/√d over the balls of radius 2r around
//     the Gonzalez centers (every optimal center lies in one of them, and
//     snapping an optimal center to the grid costs ≤ s·√d/2 ≤ ε·OPT);
//  3. solve the discrete k-center over the grid candidates exactly, by
//     binary search on the radius with a branch-and-bound set-cover check
//     (branching on the point with the fewest live coverers).
//
// The scheme is exponential in k in the worst case; MaxNodes bounds the
// work explicitly. Intended for the small instances where the experiments
// also brute-force the optimum.
func EpsApprox(pts []geom.Vec, k int, eps float64, opts EpsOptions) (EpsResult, error) {
	opts = opts.withDefaults()
	if len(pts) == 0 {
		return EpsResult{}, fmt.Errorf("kcenter: EpsApprox on empty point set")
	}
	if k <= 0 {
		return EpsResult{}, fmt.Errorf("kcenter: EpsApprox with k = %d", k)
	}
	if !(eps > 0) {
		return EpsResult{}, fmt.Errorf("kcenter: EpsApprox with eps = %g", eps)
	}
	dim := pts[0].Dim()
	space := metricspace.Euclidean{}

	gIdx, r, err := Gonzalez[geom.Vec](space, pts, k, 0)
	if err != nil {
		return EpsResult{}, err
	}
	gCenters := Select(pts, gIdx)
	if r == 0 || k >= len(pts) {
		// Gonzalez is already optimal (all points coincide with centers).
		return EpsResult{Centers: gCenters, Radius: r, EffectiveEps: eps, Candidates: 0}, nil
	}

	cands, effEps := gridCandidates(gCenters, r, dim, eps, opts.MaxCandidates)
	coverIdx, radius, err := DiscreteBnB[geom.Vec](space, pts, cands, k, opts.MaxNodes)
	if err != nil {
		return EpsResult{}, err
	}
	centers := make([]geom.Vec, len(coverIdx))
	for i, c := range coverIdx {
		centers[i] = cands[c]
	}
	// The grid search is a (1+ε)-approximation but Gonzalez may still win on
	// a particular instance (it is not restricted to the grid); keep the
	// better of the two.
	if r < radius {
		centers, radius = gCenters, r
	}
	return EpsResult{Centers: centers, Radius: radius, EffectiveEps: effEps, Candidates: len(cands)}, nil
}

// gridCandidates builds grid points of spacing ε·r/√d covering the radius-2r
// balls around the seeds, coarsening the spacing as needed to respect
// maxCands. It returns the candidates and the epsilon actually realized.
func gridCandidates(seeds []geom.Vec, r float64, dim int, eps float64, maxCands int) ([]geom.Vec, float64) {
	effEps := eps
	for {
		s := effEps * r / math.Sqrt(float64(dim))
		perAxis := int(math.Floor(4*r/s)) + 2
		if total := len(seeds) * pow(perAxis, dim); total <= maxCands {
			break
		}
		effEps *= 1.3
		if effEps > 64 {
			break // degenerate; the grid collapses to the seeds
		}
	}
	s := effEps * r / math.Sqrt(float64(dim))
	seen := make(map[string]struct{})
	var out []geom.Vec
	for _, c := range seeds {
		lo := make([]int, dim)
		hi := make([]int, dim)
		for a := 0; a < dim; a++ {
			lo[a] = int(math.Floor((c[a] - 2*r) / s))
			hi[a] = int(math.Ceil((c[a] + 2*r) / s))
		}
		idx := append([]int(nil), lo...)
		for {
			p := geom.NewVec(dim)
			for a := 0; a < dim; a++ {
				p[a] = float64(idx[a]) * s
			}
			if geom.Dist(p, c) <= 2*r+s {
				key := fmt.Sprint(idx)
				if _, ok := seen[key]; !ok {
					seen[key] = struct{}{}
					out = append(out, p)
				}
			}
			a := 0
			for a < dim {
				idx[a]++
				if idx[a] <= hi[a] {
					break
				}
				idx[a] = lo[a]
				a++
			}
			if a == dim {
				break
			}
		}
	}
	// Always include the seeds themselves so the search can never do worse
	// than Gonzalez on the discrete side.
	out = append(out, seeds...)
	return out, effEps
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
		if out < 0 || out > 1<<40 {
			return 1 << 40
		}
	}
	return out
}
