package kcenter

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/metricspace"
)

var euclid = metricspace.Euclidean{}

func randomCloud(rng *rand.Rand, n, d int) []geom.Vec {
	pts := make([]geom.Vec, n)
	for i := range pts {
		pts[i] = geom.NewVec(d)
		for j := 0; j < d; j++ {
			pts[i][j] = rng.NormFloat64() * 4
		}
	}
	return pts
}

func TestRadiusAndAssign(t *testing.T) {
	pts := []geom.Vec{{0, 0}, {10, 0}, {1, 0}}
	centers := []geom.Vec{{0, 0}, {10, 0}}
	if got := Radius[geom.Vec](euclid, pts, centers); got != 1 {
		t.Errorf("Radius = %g, want 1", got)
	}
	assign := AssignNearest[geom.Vec](euclid, pts, centers)
	want := []int{0, 1, 0}
	for i := range want {
		if assign[i] != want[i] {
			t.Errorf("assign[%d] = %d, want %d", i, assign[i], want[i])
		}
	}
	if got := Radius[geom.Vec](euclid, nil, centers); got != 0 {
		t.Errorf("Radius of empty = %g", got)
	}
}

func TestGonzalezBasic(t *testing.T) {
	// Three tight clusters; k=3 must pick one point in each.
	pts := []geom.Vec{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 0}, {10.1, 0},
		{0, 10}, {0, 10.1},
	}
	idx, r, err := Gonzalez[geom.Vec](euclid, pts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 3 {
		t.Fatalf("centers = %v", idx)
	}
	if r > 0.2 {
		t.Errorf("radius = %g, want ≤ 0.2 (one center per cluster)", r)
	}
	// Radius reported must equal recomputed radius.
	if got := Radius[geom.Vec](euclid, pts, Select(pts, idx)); math.Abs(got-r) > 1e-12 {
		t.Errorf("reported radius %g, recomputed %g", r, got)
	}
}

func TestGonzalezErrors(t *testing.T) {
	pts := []geom.Vec{{0}}
	if _, _, err := Gonzalez[geom.Vec](euclid, nil, 1, 0); err == nil {
		t.Error("empty set accepted")
	}
	if _, _, err := Gonzalez[geom.Vec](euclid, pts, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Gonzalez[geom.Vec](euclid, pts, 1, 5); err == nil {
		t.Error("bad start accepted")
	}
}

func TestGonzalezKGreaterThanN(t *testing.T) {
	pts := []geom.Vec{{0}, {1}}
	idx, r, err := Gonzalez[geom.Vec](euclid, pts, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 || r != 0 {
		t.Errorf("idx=%v r=%g, want all points and radius 0", idx, r)
	}
}

// TestGonzalezTwoApprox verifies the classical guarantee against the exact
// discrete optimum (centers restricted to input points, where Gonzalez's
// 2-approximation also holds).
func TestGonzalezTwoApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(10)
		k := 1 + rng.Intn(3)
		pts := randomCloud(rng, n, 2)
		_, gr, err := Gonzalez[geom.Vec](euclid, pts, k, rng.Intn(n))
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := ExactDiscrete[geom.Vec](euclid, pts, pts, k, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if opt == 0 {
			if gr != 0 {
				t.Fatalf("trial %d: OPT=0 but Gonzalez=%g", trial, gr)
			}
			continue
		}
		if gr > 2*opt+1e-9 {
			t.Fatalf("trial %d: Gonzalez %g > 2·OPT %g", trial, gr, 2*opt)
		}
		if gr < opt-1e-9 {
			t.Fatalf("trial %d: Gonzalez %g below discrete OPT %g — radius bug", trial, gr, opt)
		}
	}
}

func TestExactDiscreteSimple(t *testing.T) {
	pts := []geom.Vec{{0}, {1}, {10}, {11}}
	idx, r, err := ExactDiscrete[geom.Vec](euclid, pts, pts, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("opt radius = %g, want 1", r)
	}
	if len(idx) != 2 {
		t.Errorf("centers = %v", idx)
	}
}

func TestExactDiscreteGuards(t *testing.T) {
	pts := randomCloud(rand.New(rand.NewSource(1)), 30, 2)
	if _, _, err := ExactDiscrete[geom.Vec](euclid, pts, pts, 10, 1000); err == nil {
		t.Error("subset explosion accepted")
	}
	if _, _, err := ExactDiscrete[geom.Vec](euclid, nil, pts, 1, 1000); err == nil {
		t.Error("empty points accepted")
	}
	if _, _, err := ExactDiscrete[geom.Vec](euclid, pts, nil, 1, 1000); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, _, err := ExactDiscrete[geom.Vec](euclid, pts, pts, 0, 1000); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestExact1DKnown(t *testing.T) {
	xs := []float64{0, 1, 10, 11}
	centers, r, err := Exact1D(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.5) > 1e-12 {
		t.Errorf("radius = %g, want 0.5", r)
	}
	if len(centers) != 2 {
		t.Fatalf("centers = %v", centers)
	}
	if math.Abs(centers[0]-0.5) > 1e-9 || math.Abs(centers[1]-10.5) > 1e-9 {
		t.Errorf("centers = %v, want [0.5, 10.5]", centers)
	}
}

func TestExact1DSinglePointAndKBig(t *testing.T) {
	centers, r, err := Exact1D([]float64{5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 || centers[0] != 5 {
		t.Errorf("centers=%v r=%g", centers, r)
	}
	if _, _, err := Exact1D(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := Exact1D([]float64{1}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestExact1DMatchesBruteForce cross-checks the 1D solver against exhaustive
// search over candidate half-gap radii with a brute-force cover check.
func TestExact1DMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		k := 1 + rng.Intn(3)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Round(rng.NormFloat64()*100) / 10
		}
		_, r, err := Exact1D(xs, k)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: try all half-gap radii, smallest feasible wins.
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				cand := math.Abs(xs[j]-xs[i]) / 2
				if cand < best && coverableBrute(xs, k, cand) {
					best = cand
				}
			}
		}
		if coverableBrute(xs, k, 0) {
			best = 0
		}
		if math.Abs(r-best) > 1e-9 {
			t.Fatalf("trial %d: Exact1D %g vs brute %g (xs=%v k=%d)", trial, r, best, xs, k)
		}
	}
}

func coverableBrute(xs []float64, k int, r float64) bool {
	rem := map[float64]bool{}
	for _, x := range xs {
		rem[x] = true
	}
	for c := 0; c < k && len(rem) > 0; c++ {
		// Greedy: cover the leftmost remaining point.
		left := math.Inf(1)
		for x := range rem {
			if x < left {
				left = x
			}
		}
		for x := range rem {
			if x <= left+2*r+1e-12 {
				delete(rem, x)
			}
		}
	}
	return len(rem) == 0
}

func TestSelect(t *testing.T) {
	pts := []geom.Vec{{0}, {1}, {2}}
	got := Select(pts, []int{2, 0})
	if len(got) != 2 || got[0][0] != 2 || got[1][0] != 0 {
		t.Errorf("Select = %v", got)
	}
}

func TestGonzalezOnFiniteMetric(t *testing.T) {
	// Gonzalez must be metric-generic: run it over a finite metric.
	f, err := metricspace.NewFinite([][]float64{
		{0, 1, 5, 6},
		{1, 0, 5, 6},
		{5, 5, 0, 1},
		{6, 6, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, r, err := Gonzalez[int](f, f.Points(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1 {
		t.Errorf("radius = %g, want ≤ 1 (one center per pair)", r)
	}
	if len(idx) != 2 {
		t.Errorf("centers = %v", idx)
	}
}
