package faults

import (
	"errors"
	"testing"
	"time"
)

// fireOutcome runs Fire once and classifies the result.
func fireOutcome(site string) (outcome string, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(Panic); !ok {
				panic(r) // not ours — re-raise
			}
			outcome = "panic"
		}
	}()
	if e := Fire(site); e != nil {
		return "error", e
	}
	return "pass", nil
}

// TestFireDisabledIsNoop pins the production default: no plan, no effect.
func TestFireDisabledIsNoop(t *testing.T) {
	Disable()
	for i := 0; i < 100; i++ {
		if err := Fire("any.site"); err != nil {
			t.Fatalf("disabled Fire returned %v", err)
		}
	}
	if Enabled() {
		t.Fatal("Enabled() true with no plan")
	}
}

// TestFireDisabledAllocs pins the hot-path contract the serving layer
// depends on: an unregistered Fire allocates nothing — with no plan at
// all, and with a plan that does not name the site.
func TestFireDisabledAllocs(t *testing.T) {
	Disable()
	if allocs := testing.AllocsPerRun(1000, func() { _ = Fire("serve.exec") }); allocs != 0 {
		t.Fatalf("disabled Fire allocates %v per call, want 0", allocs)
	}
	Enable(Plan{Seed: 1, Rules: map[string]Rule{"other.site": {Error: 1}}})
	defer Disable()
	if allocs := testing.AllocsPerRun(1000, func() { _ = Fire("serve.exec") }); allocs != 0 {
		t.Fatalf("unnamed-site Fire allocates %v per call, want 0", allocs)
	}
}

// TestFireDeterministic pins that two runs of the same seeded plan produce
// the identical outcome sequence at a site.
func TestFireDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, Rules: map[string]Rule{
		"s": {Panic: 0.2, Error: 0.3, Latency: 0.1},
	}}
	run := func() []string {
		Enable(plan)
		defer Disable()
		out := make([]string, 200)
		for i := range out {
			out[i], _ = fireOutcome("s")
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: run A %q, run B %q — decisions not deterministic", i, a[i], b[i])
		}
	}
	// A different seed must produce a different sequence (overwhelmingly).
	Enable(Plan{Seed: 43, Rules: plan.Rules})
	defer Disable()
	same := 0
	for i := range a {
		o, _ := fireOutcome("s")
		if o == a[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seed 43 reproduced seed 42's sequence exactly")
	}
}

// TestFireRates checks the empirical rates land near the configured
// probabilities over a long seeded run.
func TestFireRates(t *testing.T) {
	Enable(Plan{Seed: 7, Rules: map[string]Rule{
		"s": {Panic: 0.1, Error: 0.1, Latency: 0.1},
	}})
	defer Disable()
	counts := map[string]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		o, _ := fireOutcome("s")
		counts[o]++
	}
	for _, o := range []string{"panic", "error"} {
		rate := float64(counts[o]) / n
		if rate < 0.07 || rate > 0.13 {
			t.Errorf("%s rate = %v, want ~0.1", o, rate)
		}
	}
	if got := Calls("s"); got != n {
		t.Errorf("Calls = %d, want %d", got, n)
	}
}

// TestFireInjectedValues pins the injected artifacts: the default error,
// a custom error, the panic payload, and the latency sleep.
func TestFireInjectedValues(t *testing.T) {
	custom := errors.New("boom")
	Enable(Plan{Seed: 1, Rules: map[string]Rule{
		"err-default": {Error: 1},
		"err-custom":  {Error: 1, Err: custom},
		"panics":      {Panic: 1},
		"slow":        {Latency: 1, Delay: 10 * time.Millisecond},
	}})
	defer Disable()

	if err := Fire("err-default"); !errors.Is(err, ErrInjected) {
		t.Fatalf("default error draw = %v, want ErrInjected", err)
	}
	if err := Fire("err-custom"); !errors.Is(err, custom) {
		t.Fatalf("custom error draw = %v, want custom error", err)
	}
	func() {
		defer func() {
			p, ok := recover().(Panic)
			if !ok || p.Site != "panics" {
				t.Fatalf("recovered %v, want Panic{Site: panics}", p)
			}
		}()
		_ = Fire("panics")
		t.Fatal("Panic=1 rule did not panic")
	}()
	start := time.Now()
	if err := Fire("slow"); err != nil {
		t.Fatalf("latency draw returned %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency draw slept %v, want >= 10ms", d)
	}
}
