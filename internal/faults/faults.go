// Package faults is the deterministic fault-injection harness behind the
// serving stack's robustness tests: seeded, probability- and
// call-site-keyed injection of panics, errors and latency.
//
// Production code marks its injectable call sites with Fire:
//
//	if err := faults.Fire("serve.exec"); err != nil {
//		return err // an injected error
//	}
//
// With no plan enabled — every process that is not a fault test — Fire is a
// single atomic load returning nil: no allocation, no map access, no clock
// read, so instrumented hot paths stay alloc-identical to uninstrumented
// ones (pinned by TestFireDisabledAllocs). Tests Enable a Plan naming the
// sites they want to perturb and the per-site probabilities of each
// outcome; everything not named stays a no-op.
//
// Decisions are deterministic: the i-th Fire at a site draws its outcome
// from splitmix64(seed, site, i), so a seeded soak run injects the same
// multiset of panics/errors/delays every time (under concurrency the
// *assignment* of decisions to goroutines follows arrival order, but the
// sequence of decisions per site is fixed). An injected panic carries a
// Panic value naming its site and call index, so recovery layers can prove
// a recovered panic was injected rather than genuine.
//
// The harness is process-global (production call sites cannot thread a
// registry through every layer); Enable/Disable are for tests only and
// tests sharing a binary must not enable overlapping plans concurrently.
package faults

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrInjected is the error Fire returns on an error draw when the rule
// does not name its own.
var ErrInjected = errors.New("faults: injected error")

// Panic is the value injected panics carry; recover sites can type-assert
// it to distinguish injected panics from genuine ones.
type Panic struct {
	Site string // the Fire call site that panicked
	Call uint64 // zero-based call index at that site
}

func (p Panic) String() string {
	return fmt.Sprintf("faults: injected panic at %s (call %d)", p.Site, p.Call)
}

// Rule is one call site's fault mix. The probabilities partition a single
// uniform draw — Panic, then Error, then Latency — so they are mutually
// exclusive per call and must sum to at most 1; the remainder is a clean
// pass-through.
type Rule struct {
	Panic   float64       // probability of panicking with a Panic value
	Error   float64       // probability of returning Err (ErrInjected when nil)
	Latency float64       // probability of sleeping Delay, then passing through
	Err     error         // the injected error; nil selects ErrInjected
	Delay   time.Duration // the injected latency on a Latency draw
}

// Plan is a seeded set of per-site rules.
type Plan struct {
	Seed  int64
	Rules map[string]Rule
}

// site is one enabled rule plus its per-site call counter.
type site struct {
	rule  Rule
	hash  uint64
	calls atomic.Uint64
}

// state is the immutable compiled plan; swapped atomically as a whole.
type state struct {
	seed  uint64
	sites map[string]*site
}

var active atomic.Pointer[state]

// Enable installs the plan, replacing any previous one and resetting every
// call counter. Panics on an invalid rule (probabilities outside [0,1] or
// summing past 1) — plans are test configuration, not data.
func Enable(p Plan) {
	st := &state{seed: uint64(p.Seed), sites: make(map[string]*site, len(p.Rules))}
	for name, r := range p.Rules {
		if r.Panic < 0 || r.Error < 0 || r.Latency < 0 || r.Panic+r.Error+r.Latency > 1 {
			panic(fmt.Sprintf("faults: invalid rule for %q: probabilities %v/%v/%v", name, r.Panic, r.Error, r.Latency))
		}
		st.sites[name] = &site{rule: r, hash: fnv64(name)}
	}
	active.Store(st)
}

// Disable removes the active plan; every Fire returns to the nil fast path.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is active.
func Enabled() bool { return active.Load() != nil }

// Calls returns how many times the named site has fired under the active
// plan (0 with no plan, or for an unnamed site).
func Calls(name string) uint64 {
	st := active.Load()
	if st == nil {
		return 0
	}
	s := st.sites[name]
	if s == nil {
		return 0
	}
	return s.calls.Load()
}

// Fire consults the active plan for the named call site: it may panic with
// a Panic value, return an error to inject, or sleep before passing
// through. With no plan active — the production default — it is one atomic
// load and returns nil without allocating.
func Fire(name string) error {
	st := active.Load()
	if st == nil {
		return nil
	}
	s := st.sites[name]
	if s == nil {
		return nil
	}
	n := s.calls.Add(1) - 1
	u := unit(splitmix64(st.seed ^ s.hash ^ splitmix64(n)))
	r := &s.rule
	switch {
	case u < r.Panic:
		panic(Panic{Site: name, Call: n})
	case u < r.Panic+r.Error:
		if r.Err != nil {
			return r.Err
		}
		return ErrInjected
	case u < r.Panic+r.Error+r.Latency:
		if r.Delay > 0 {
			time.Sleep(r.Delay)
		}
	}
	return nil
}

// splitmix64 is the standard 64-bit finalizing mix — a full-avalanche hash
// of its input, used here to turn (seed, site, call) into an independent
// uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a 64-bit value onto [0,1) with 53-bit resolution.
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// fnv64 is FNV-1a over the site name, computed once at Enable.
func fnv64(s string) uint64 {
	const offset, prime = uint64(14695981039346656037), uint64(1099511628211)
	h := offset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
