package harness

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/bruteforce"
	"repro/internal/clusterx"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// RunA4 sweeps the (1+ε) solver's ε and reports the cost/time trade-off —
// the ablation DESIGN.md calls out for the paper's "depends on the certain
// solver" running-time column.
func RunA4(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 600))
	rep := &Report{ID: "A4", Description: "ablation — eps sweep of the (1+eps) certain solver", Pass: true}
	tab := &Table{Header: []string{"eps", "mean ratio vs opt", "max ratio", "mean time (ms)", "mean n", "bound 3+eps"}}

	epsilons := []float64{1, 0.5, 0.25}
	if cfg.Quick {
		epsilons = []float64{1, 0.5}
	}
	// Fixed instance pool so the sweep isolates ε. Pool entries are
	// compiled once and re-solved at every ε — the repeated-solve path:
	// validation, flattening and the surrogate memos are paid once per
	// instance, not once per (instance, ε) cell.
	type inst struct {
		c   *core.Compiled[geom.Vec]
		k   int
		opt float64
	}
	var pool []inst
	for trial := 0; trial < cfg.Trials; trial++ {
		pts, err := gen.GaussianClusters(rng, 3+rng.Intn(3), 1+rng.Intn(2), 2, 2, 1, 0.5)
		if err != nil {
			return nil, err
		}
		k := 1 + rng.Intn(2)
		cands := euclideanCandidates(pts)
		sol, err := bruteforce.RestrictedAssignedEuclidean(pts, cands, k, core.RuleEP, 2_000_000)
		if err != nil {
			return nil, err
		}
		if sol.Cost <= 0 {
			continue
		}
		c, err := core.Compile[geom.Vec](cfg.context(), metricspace.Euclidean{}, pts, nil)
		if err != nil {
			return nil, err
		}
		pool = append(pool, inst{c, k, sol.Cost})
	}
	for _, eps := range epsilons {
		ratios := NewStats()
		times := NewStats()
		grids := NewStats()
		for _, in := range pool {
			t0 := time.Now()
			res, err := cfg.solveCompiled(in.c, in.k, core.EuclideanOptions{
				Rule: core.RuleEP, Solver: core.SolverEps, Eps: eps,
			})
			if err != nil {
				return nil, err
			}
			times.Add(float64(time.Since(t0).Microseconds()) / 1000)
			ratios.Add(res.Ecost / in.opt)
			grids.Add(float64(len(res.Surrogates)))
			if res.Ecost/in.opt > 3+res.EffectiveEps+ratioSlack {
				rep.Pass = false
			}
		}
		tab.Addf(eps, ratios.Mean(), ratios.Max, times.Mean(), grids.Mean(), 3+eps)
	}
	rep.Tables = append(rep.Tables, tab)
	rep.Notes = append(rep.Notes, "smaller eps: denser candidate grid, deeper cover search — quality vs time knob")
	return rep, nil
}

// RunX1 exercises the future-work extensions the paper's conclusion
// announces: uncertain k-median (surrogate reduction + local search) and
// uncertain k-means (exact reduction via the bias–variance identity).
func RunX1(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 700))
	rep := &Report{ID: "X1", Description: "extensions — uncertain k-median and k-means (paper §4 future work)", Pass: true}
	space := metricspace.Euclidean{}

	// k-median: surrogate pipeline vs brute-force optimum over candidates.
	medTab := &Table{
		Title:  "uncertain k-median: surrogate local search vs brute-force optimum",
		Header: []string{"workload", "trials", "mean ratio", "max ratio"},
	}
	for _, workload := range []string{"gaussian", "bimodal"} {
		stats := NewStats()
		for trial := 0; trial < cfg.Trials; trial++ {
			var pts []uncertain.Point[geom.Vec]
			var err error
			if workload == "gaussian" {
				pts, err = gen.GaussianClusters(rng, 4+rng.Intn(3), 2, 2, 2, 1, 0.5)
			} else {
				pts, err = gen.BimodalAdversarial(rng, 4+rng.Intn(3), 2, 2, 20)
			}
			if err != nil {
				return nil, err
			}
			k := 1 + rng.Intn(2)
			cands := uncertain.AllLocations(pts)
			_, _, cost, err := clusterx.SolveUncertainKMedian[geom.Vec](space, pts, cands, k)
			if err != nil {
				return nil, err
			}
			// Brute force: best candidate subset with per-point best-E
			// assignment (the ED assignment is optimal for a separable sum).
			best := math.Inf(1)
			err = forEachSubsetCost(len(cands), k, func(idx []int) error {
				centers := make([]geom.Vec, len(idx))
				for i, c := range idx {
					centers[i] = cands[c]
				}
				var total float64
				for _, p := range pts {
					bestE := math.Inf(1)
					for _, c := range centers {
						if e := uncertain.ExpectedDist[geom.Vec](space, p, c); e < bestE {
							bestE = e
						}
					}
					total += bestE
				}
				if total < best {
					best = total
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			if best <= 0 {
				continue
			}
			ratio := cost / best
			stats.Add(ratio)
			if ratio > 5+ratioSlack { // local-search guarantee
				rep.Pass = false
			}
		}
		medTab.Addf(workload, stats.N, stats.Mean(), stats.Max)
	}
	rep.Tables = append(rep.Tables, medTab)

	// k-means: the reduction is exact — verify the identity numerically and
	// report the variance floor share.
	meansTab := &Table{
		Title:  "uncertain k-means: exact reduction (cost = certain cost on P-bar + variance floor)",
		Header: []string{"workload", "mean cost", "mean floor", "floor share", "identity max err"},
	}
	for _, workload := range []string{"gaussian", "bimodal"} {
		costs, floors := NewStats(), NewStats()
		maxErr := 0.0
		for trial := 0; trial < cfg.Trials; trial++ {
			var pts []uncertain.Point[geom.Vec]
			var err error
			if workload == "gaussian" {
				pts, err = gen.GaussianClusters(rng, 20, 3, 2, 3, 1, 0.4)
			} else {
				pts, err = gen.BimodalAdversarial(rng, 20, 2, 2, 20)
			}
			if err != nil {
				return nil, err
			}
			centers, assign, cost, floor, err := clusterx.SolveUncertainKMeans(pts, 3, rng, 100)
			if err != nil {
				return nil, err
			}
			costs.Add(cost)
			floors.Add(floor)
			// Identity check: uncertain cost − floor = certain weighted cost
			// on the expected points.
			bars := uncertain.ExpectedPoints(pts)
			var certain float64
			for i, b := range bars {
				certain += geom.DistSq(b, centers[assign[i]])
			}
			if e := math.Abs(cost - floor - certain); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 1e-6*(1+costs.Mean()) {
			rep.Pass = false
		}
		share := 0.0
		if costs.Mean() > 0 {
			share = floors.Mean() / costs.Mean()
		}
		meansTab.Addf(workload, costs.Mean(), floors.Mean(), share, maxErr)
	}
	rep.Tables = append(rep.Tables, meansTab)
	rep.Notes = append(rep.Notes,
		"k-means: E||X−c||² = ||P̄−c||² + Var(P) makes Lloyd on expected points exactly optimal among its local class; the floor is irreducible",
		"k-median: the sum objective is separable, so the exact cost needs no E[max] machinery")
	return rep, nil
}

// forEachSubsetCost is a tiny local subset enumerator (the bruteforce
// package's is unexported and its Solution machinery is unnecessary here).
func forEachSubsetCost(m, k int, fn func(idx []int) error) error {
	if k > m {
		k = m
	}
	idx := make([]int, k)
	var rec func(pos, from int) error
	rec = func(pos, from int) error {
		if pos == k {
			return fn(idx)
		}
		for c := from; c <= m-(k-pos); c++ {
			idx[pos] = c
			if err := rec(pos+1, c+1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, 0)
}
