package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
	}
	tab.Add("1", "2")
	tab.Addf("x", 3.14159, 7)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "3.142") {
		t.Errorf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.Add("1", "2")
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestStats(t *testing.T) {
	s := NewStats()
	if s.Mean() != 0 || s.Std() != 0 {
		t.Error("empty stats not zero")
	}
	for _, x := range []float64{1, 2, 3} {
		s.Add(x)
	}
	if s.N != 3 || s.Min != 1 || s.Max != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.Mean() != 2 {
		t.Errorf("mean = %g", s.Mean())
	}
	if d := s.Std() - 0.816496580927726; d > 1e-12 || d < -1e-12 {
		t.Errorf("std = %g", s.Std())
	}
}

func TestReportRender(t *testing.T) {
	rep := &Report{ID: "X", Description: "demo", Pass: true}
	rep.Tables = append(rep.Tables, &Table{Header: []string{"c"}})
	rep.Notes = append(rep.Notes, "a note")
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo [PASS]", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	rep.Pass = false
	buf.Reset()
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "[FAIL]") {
		t.Error("FAIL status not rendered")
	}
}

// TestQuickExperimentsPass runs every experiment in Quick mode and requires
// all invariants (theorem bounds) to hold. This is the end-to-end
// reproduction check at CI scale.
func TestQuickExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short")
	}
	reports, err := All(Config{Seed: 7, Quick: true, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 12 {
		t.Fatalf("expected 12 reports, got %d", len(reports))
	}
	for _, rep := range reports {
		if !rep.Pass {
			var buf bytes.Buffer
			rep.Render(&buf)
			t.Errorf("experiment %s failed its invariants:\n%s", rep.ID, buf.String())
		}
		if len(rep.Tables) == 0 {
			t.Errorf("experiment %s produced no tables", rep.ID)
		}
	}
}
