package harness

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/metricspace"
)

// RunR3 records the amortized-vs-cold repeated-solve curves behind the
// compiled-instance core (DESIGN.md §4a) — the harness counterpart of
// BenchmarkRepeatedSolve: one fixed instance is solved R times with cycling
// k, once through the cold path (a fresh compile per solve — the old
// per-call behavior) and once through the amortized path (compile once,
// share the flat model and the memoized surrogate/evaluator caches). As R
// grows, the amortized per-solve time approaches the k-dependent stages
// alone; the invariant checked is that repeated solving never gets slower
// per solve and that both paths return identical costs (the bit-identity
// the compiled core guarantees).
func RunR3(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 800))
	rep := &Report{ID: "R3", Description: "repeated-solve amortization — compiled vs cold per-solve time", Pass: true}

	n, z := 150, 4
	counts := []int{1, 4, 16, 64}
	if cfg.Quick {
		n = 60
		counts = []int{1, 4, 16}
	}
	pts, err := gen.GaussianClusters(rng, n, z, 2, 4, 1, 0.4)
	if err != nil {
		return nil, err
	}
	ks := []int{2, 4, 8, 6}
	opts := core.Options{
		Surrogate:   core.SurrogateOneCenter,
		Rule:        core.RuleOC,
		Parallelism: cfg.Parallelism,
	}

	// The k-center pipeline: the 1-center surrogate construction dominates
	// the cold path and is memoized on the amortized one.
	kcTab := &Table{
		Title:  "k-center OC pipeline (n=150, z=4): per-solve ms over R repeated solves",
		Header: []string{"R", "cold ms/solve", "amortized ms/solve", "speedup"},
	}
	for _, R := range counts {
		if err := cfg.context().Err(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		var coldCosts []float64
		for i := 0; i < R; i++ {
			res, err := cfg.solveEuclidean(pts, ks[i%len(ks)], core.EuclideanOptions{
				Surrogate: core.SurrogateOneCenter, Rule: core.RuleOC,
			})
			if err != nil {
				return nil, err
			}
			coldCosts = append(coldCosts, res.Ecost)
		}
		cold := time.Since(t0)

		c, err := core.Compile[geom.Vec](cfg.context(), metricspace.Euclidean{}, pts, nil)
		if err != nil {
			return nil, err
		}
		t1 := time.Now()
		for i := 0; i < R; i++ {
			res, err := core.SolveCompiled(cfg.context(), c, ks[i%len(ks)], opts)
			if err != nil {
				return nil, err
			}
			if res.Ecost != coldCosts[i] {
				rep.Pass = false
			}
		}
		amortized := time.Since(t1)

		coldPer := float64(cold.Microseconds()) / float64(R) / 1000
		amortPer := float64(amortized.Microseconds()) / float64(R) / 1000
		speedup := 0.0
		if amortPer > 0 {
			speedup = coldPer / amortPer
		}
		kcTab.Addf(R, coldPer, amortPer, speedup)
	}
	rep.Tables = append(rep.Tables, kcTab)

	// The unassigned objective: the 12·m·N distance-RV evaluator is the
	// dominant build, paid per solve cold and once per instance amortized.
	unTab := &Table{
		Title:  "unassigned local search (smaller n): per-solve ms over R repeated solves",
		Header: []string{"R", "cold ms/solve", "amortized ms/solve", "speedup"},
	}
	unPts, err := gen.GaussianClusters(rng, 24, 3, 2, 3, 1, 0.4)
	if err != nil {
		return nil, err
	}
	lsOpts := core.LocalSearchOptions{MaxIter: 2, Parallelism: cfg.Parallelism}
	unCounts := counts
	if len(unCounts) > 3 {
		unCounts = unCounts[:3]
	}
	for _, R := range unCounts {
		if err := cfg.context().Err(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		var coldCosts []float64
		for i := 0; i < R; i++ {
			cFresh, err := core.Compile[geom.Vec](cfg.context(), metricspace.Euclidean{}, unPts, nil)
			if err != nil {
				return nil, err
			}
			_, cost, err := core.SolveUnassignedLSCompiled(cfg.context(), cFresh, 2+i%3, lsOpts)
			if err != nil {
				return nil, err
			}
			coldCosts = append(coldCosts, cost)
		}
		cold := time.Since(t0)

		c, err := core.Compile[geom.Vec](cfg.context(), metricspace.Euclidean{}, unPts, nil)
		if err != nil {
			return nil, err
		}
		t1 := time.Now()
		for i := 0; i < R; i++ {
			_, cost, err := core.SolveUnassignedLSCompiled(cfg.context(), c, 2+i%3, lsOpts)
			if err != nil {
				return nil, err
			}
			if cost != coldCosts[i] {
				rep.Pass = false
			}
		}
		amortized := time.Since(t1)

		coldPer := float64(cold.Microseconds()) / float64(R) / 1000
		amortPer := float64(amortized.Microseconds()) / float64(R) / 1000
		speedup := 0.0
		if amortPer > 0 {
			speedup = coldPer / amortPer
		}
		unTab.Addf(R, coldPer, amortPer, speedup)
	}
	rep.Tables = append(rep.Tables, unTab)
	rep.Notes = append(rep.Notes,
		"invariant: cold and amortized solves return identical costs (compiled-core bit-identity); timings are informational",
		"serving context: serve.Server keeps instances in exactly this amortized regime until byte-budget eviction drops the caches (DESIGN.md §7)")
	return rep, nil
}
