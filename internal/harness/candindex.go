package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/obs"
)

// pruneTally accumulates ls.prune span counters across solves.
type pruneTally struct {
	mu      sync.Mutex
	scanned int64
	pruned  int64
}

func (p *pruneTally) Span(name, _ string, _ time.Time, _ time.Duration, attrs []obs.Attr) {
	if name != "ls.prune" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range attrs {
		switch a.Key {
		case "scanned":
			p.scanned += a.Val
		case "pruned":
			p.pruned += a.Val
		}
	}
}

func (p *pruneTally) rate() float64 {
	if p.scanned == 0 {
		return 0
	}
	return float64(p.pruned) / float64(p.scanned)
}

// RunR4 records the candidate-index quality/speed curve behind DESIGN.md
// §11 — the harness counterpart of BenchmarkCandIndexScan. One fixed
// instance is solved with the exact oracle (CandIndexOff), then with safe
// pruning across a pivot-count sweep, then with the approximate
// neighborhood scan across a degree sweep. The recorded axes per setting:
// per-solve time, prune rate (fraction of scan entries the pivot bound
// skipped), and cost ratio against the oracle trajectory.
//
// The invariant checked for Pass: every pruned run's centers cost exactly
// the oracle's (bit-identical trajectories for any pivot count — the
// tentpole safety claim); approximate runs only record their ratio, which
// is quality data, not a correctness gate.
func RunR4(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 900))
	rep := &Report{ID: "R4", Description: "candidate index — prune-rate and quality/speed curve vs the exact scan", Pass: true}

	n, k := 300, 6
	pivotSweep := []int{4, 8, 16, 32}
	degreeSweep := []int{4, 8, 16}
	if cfg.Quick {
		n, k = 100, 4
		pivotSweep = []int{4, 16}
		degreeSweep = []int{4, 8}
	}
	pts, err := gen.GaussianClusters(rng, n, 3, 2, 5, 1, 0.4)
	if err != nil {
		return nil, err
	}

	solve := func(mode core.CandidateIndexMode, pivots, degree int, tally *pruneTally) (float64, time.Duration, error) {
		ctx := cfg.context()
		if tally != nil {
			ctx = obs.NewContext(ctx, tally)
		}
		// A fresh compile per setting: each run pays its own index build, so
		// the timings answer "what does this knob cost end to end".
		c, err := core.Compile[geom.Vec](ctx, metricspace.Euclidean{}, pts, nil)
		if err != nil {
			return 0, 0, err
		}
		t0 := time.Now()
		_, cost, err := core.SolveUnassignedLSCompiled(ctx, c, k, core.LocalSearchOptions{
			Parallelism:    cfg.Parallelism,
			CandidateIndex: mode,
			IndexPivots:    pivots,
			GraphDegree:    degree,
		})
		return cost, time.Since(t0), err
	}

	exactCost, exactDur, err := solve(core.CandIndexOff, 0, 0, nil)
	if err != nil {
		return nil, err
	}

	tab := &Table{
		Title:  fmt.Sprintf("candidate index quality/speed (n=%d, m=%d, k=%d): oracle vs prune (pivot sweep) vs approx (degree sweep)", n, 3*n, k),
		Header: []string{"mode", "pivots", "degree", "ms/solve", "speedup", "prune rate", "cost ratio"},
	}
	tab.Addf("off", "-", "-", float64(exactDur.Microseconds())/1000, 1.0, 0.0, 1.0)

	for _, p := range pivotSweep {
		if err := cfg.context().Err(); err != nil {
			return nil, err
		}
		tally := &pruneTally{}
		cost, dur, err := solve(core.CandIndexPrune, p, 0, tally)
		if err != nil {
			return nil, err
		}
		if cost != exactCost {
			rep.Pass = false
		}
		tab.Addf("prune", p, "-", float64(dur.Microseconds())/1000,
			float64(exactDur.Microseconds())/float64(dur.Microseconds()), tally.rate(), cost/exactCost)
	}
	for _, d := range degreeSweep {
		if err := cfg.context().Err(); err != nil {
			return nil, err
		}
		cost, dur, err := solve(core.CandIndexApprox, 0, d, nil)
		if err != nil {
			return nil, err
		}
		tab.Addf("approx", "-", d, float64(dur.Microseconds())/1000,
			float64(exactDur.Microseconds())/float64(dur.Microseconds()), 0.0, cost/exactCost)
	}
	rep.Tables = append(rep.Tables, tab)
	rep.Notes = append(rep.Notes,
		"invariant: every prune row's cost ratio is exactly 1 (bit-identical trajectories, any pivot count); approx ratios are recorded, not gated",
		"prune rate grows with pivot count but each pivot costs one exact evaluation per scan position — the sweep shows where the trade turns",
		"BENCH_PR9.json records the same axes on the n=m=1000 acceptance instance via make bench-index")
	return rep, nil
}
