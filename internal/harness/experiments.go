package harness

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graphmetric"
	"repro/internal/metricspace"
	"repro/internal/onedim"
	"repro/internal/uncertain"
)

// Config controls experiment sizes.
type Config struct {
	// Seed makes runs reproducible.
	Seed int64
	// Trials is the number of random instances per table cell (default 10;
	// 3 in Quick mode).
	Trials int
	// Quick shrinks instance sizes for CI-speed runs.
	Quick bool
	// Ctx cancels a run mid-experiment (nil = context.Background()); every
	// solve below goes through the unified context-aware pipeline.
	Ctx context.Context
	// Parallelism gates the solver worker pools (core.Options.Parallelism
	// conventions); results are bit-identical for any value.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		if c.Quick {
			c.Trials = 3
		} else {
			c.Trials = 10
		}
	}
	return c
}

func (c Config) context() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// solveEuclidean routes a legacy Euclidean option bundle through the
// unified context-aware core.Solve with the config's parallelism.
func (c Config) solveEuclidean(pts []uncertain.Point[geom.Vec], k int, o core.EuclideanOptions) (core.Result[geom.Vec], error) {
	opts := core.OptionsFromEuclidean(o)
	opts.Parallelism = c.Parallelism
	return core.Solve[geom.Vec](c.context(), metricspace.Euclidean{}, pts, nil, k, opts)
}

// solveMetric routes a legacy finite-metric option bundle through the
// unified context-aware core.Solve with the config's parallelism.
func (c Config) solveMetric(space metricspace.Space[int], pts []uncertain.Point[int], candidates []int, k int, o core.MetricOptions) (core.Result[int], error) {
	opts := core.OptionsFromMetric(o)
	opts.Parallelism = c.Parallelism
	return core.Solve[int](c.context(), space, pts, candidates, k, opts)
}

// solveCompiled is the repeated-solve path: it runs the pipeline on an
// already-compiled instance, so validation, flattening and the memoized
// surrogates are shared across every solve of the same pool entry (the R3
// experiment measures exactly this amortization).
func (c Config) solveCompiled(cc *core.Compiled[geom.Vec], k int, o core.EuclideanOptions) (core.Result[geom.Vec], error) {
	opts := core.OptionsFromEuclidean(o)
	opts.Parallelism = c.Parallelism
	return core.SolveCompiled(c.context(), cc, k, opts)
}

const ratioSlack = 1e-9

// euclideanCandidates is the discrete reference candidate set: all locations
// plus all expected points.
func euclideanCandidates(pts []uncertain.Point[geom.Vec]) []geom.Vec {
	return append(uncertain.AllLocations(pts), uncertain.ExpectedPoints(pts)...)
}

// RunE1 validates Table 1 row 1: the expected point of a single uncertain
// point is a 2-approximation of the optimal Euclidean 1-center, across
// dimensions and workload families.
func RunE1(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{ID: "E1", Description: "Table 1 row 1 — 1-center, Euclidean, factor 2", Pass: true}
	tab := &Table{Header: []string{"workload", "dim", "trials", "mean ratio", "max ratio", "bound"}}

	dims := []int{1, 2, 4, 8}
	if cfg.Quick {
		dims = []int{1, 2}
	}
	for _, workload := range []string{"gaussian", "bimodal"} {
		for _, d := range dims {
			stats := NewStats()
			for trial := 0; trial < cfg.Trials; trial++ {
				// This experiment's substrates (1-center, pattern search)
				// are not ctx-aware; honor cancellation between trials.
				if err := cfg.context().Err(); err != nil {
					return nil, err
				}
				var pts []uncertain.Point[geom.Vec]
				var err error
				n := 4 + rng.Intn(4)
				if workload == "gaussian" {
					pts, err = gen.GaussianClusters(rng, n, 3, d, 2, 1, 0.5)
				} else {
					pts, err = gen.BimodalAdversarial(rng, n, 2, d, 15)
				}
				if err != nil {
					return nil, err
				}
				_, apx, err := core.OneCenterFirstExpectedPoint(pts)
				if err != nil {
					return nil, err
				}
				_, opt, err := core.Optimal1CenterEuclidean(pts, 1e-5)
				if err != nil {
					return nil, err
				}
				if opt <= 0 {
					continue
				}
				stats.Add(apx / opt)
			}
			if stats.Max > 2+1e-6 {
				rep.Pass = false
			}
			tab.Addf(workload, d, stats.N, stats.Mean(), stats.Max, 2.0)
		}
	}
	rep.Tables = append(rep.Tables, tab)
	rep.Notes = append(rep.Notes, "reference optimum: convex pattern search on E[max d(X_i, c)] (global, by convexity)")
	return rep, nil
}

// euclideanRowSpec describes one Euclidean Table 1 row.
type euclideanRowSpec struct {
	id         string
	rule       core.Rule
	solver     core.Solver
	restricted bool
	bound      func(eps float64) float64
	boundName  string
}

func euclideanRows() []euclideanRowSpec {
	return []euclideanRowSpec{
		{"T1.2", core.RuleED, core.SolverGonzalez, true, func(float64) float64 { return 6 }, "6"},
		{"T1.3", core.RuleED, core.SolverEps, true, func(e float64) float64 { return 5 + e }, "5+eps"},
		{"T1.4", core.RuleEP, core.SolverGonzalez, true, func(float64) float64 { return 4 }, "4"},
		{"T1.5", core.RuleEP, core.SolverEps, true, func(e float64) float64 { return 3 + e }, "3+eps"},
		{"T1.6", core.RuleEP, core.SolverGonzalez, false, func(float64) float64 { return 4 }, "4"},
		{"T1.7", core.RuleEP, core.SolverEps, false, func(e float64) float64 { return 3 + e }, "3+eps"},
	}
}

// RunEuclideanRows validates Table 1 rows 2–7: the Euclidean restricted and
// unrestricted assigned pipelines against brute-force discrete optima.
func RunEuclideanRows(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	rep := &Report{ID: "E2-E7", Description: "Table 1 rows 2–7 — Euclidean k-center pipelines", Pass: true}
	tab := &Table{Header: []string{"row", "version", "rule", "solver", "bound", "mean ratio", "max ratio", "trials"}}

	for _, spec := range euclideanRows() {
		stats := NewStats()
		boundMax := 0.0
		for trial := 0; trial < cfg.Trials; trial++ {
			n := 3 + rng.Intn(3)
			if !spec.restricted {
				n = 3 + rng.Intn(2) // k^n assignment enumeration
			}
			z := 1 + rng.Intn(2)
			var pts []uncertain.Point[geom.Vec]
			var err error
			if trial%3 == 0 {
				pts, err = gen.BimodalAdversarial(rng, n, 2, 2, 20)
			} else {
				pts, err = gen.GaussianClusters(rng, n, z, 2, 2, 1, 0.5)
			}
			if err != nil {
				return nil, err
			}
			k := 1 + rng.Intn(2)
			res, err := cfg.solveEuclidean(pts, k, core.EuclideanOptions{
				Surrogate: core.SurrogateExpectedPoint,
				Rule:      spec.rule,
				Solver:    spec.solver,
				Eps:       0.5,
			})
			if err != nil {
				return nil, err
			}
			cands := euclideanCandidates(pts)
			var opt float64
			if spec.restricted {
				sol, err := bruteforce.RestrictedAssignedEuclidean(pts, cands, k, spec.rule, 2_000_000)
				if err != nil {
					return nil, err
				}
				opt = sol.Cost
			} else {
				sol, err := bruteforce.Unrestricted[geom.Vec](metricspace.Euclidean{}, pts, cands, k, 2_000_000, 1_000_000)
				if err != nil {
					return nil, err
				}
				opt = sol.Cost
			}
			if opt <= 0 {
				continue
			}
			ratio := res.Ecost / opt
			stats.Add(ratio)
			if b := spec.bound(res.EffectiveEps); b > boundMax {
				boundMax = b
			}
			if ratio > spec.bound(res.EffectiveEps)+ratioSlack {
				rep.Pass = false
			}
		}
		version := "restricted"
		if !spec.restricted {
			version = "unrestricted"
		}
		tab.Addf(spec.id, version, spec.rule.String(), spec.solver.String(), spec.boundName, stats.Mean(), stats.Max, stats.N)
	}
	rep.Tables = append(rep.Tables, tab)
	rep.Notes = append(rep.Notes,
		"reference optimum: brute force over all locations + expected points (upper-bounds the continuous optimum, so measured ratios lower-bound true ratios)")
	return rep, nil
}

// RunE8 validates Table 1 row 8: in R^1 the restricted-ED solution (our
// certified 1D solver) is a 3-approximation of the unrestricted optimum.
func RunE8(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	rep := &Report{ID: "E8", Description: "Table 1 row 8 — R^1 unrestricted via exact restricted-ED, factor 3", Pass: true}
	tab := &Table{Header: []string{"k", "trials", "mean ratio", "max ratio", "bound"}}
	for _, k := range []int{1, 2} {
		stats := NewStats()
		for trial := 0; trial < cfg.Trials; trial++ {
			// The 1D solver and brute force are not ctx-aware; honor
			// cancellation between trials.
			if err := cfg.context().Err(); err != nil {
				return nil, err
			}
			n := 3 + rng.Intn(2)
			pts, err := gen.Mixture1D(rng, n, 2, 2, 1.5)
			if err != nil {
				return nil, err
			}
			res, err := onedim.SolveEmax(pts, k, 1e-9)
			if err != nil {
				return nil, err
			}
			cands := euclideanCandidates(pts)
			opt, err := bruteforce.Unrestricted[geom.Vec](metricspace.Euclidean{}, pts, cands, k, 2_000_000, 1_000_000)
			if err != nil {
				return nil, err
			}
			if opt.Cost <= 0 {
				continue
			}
			ratio := res.Cost / opt.Cost
			stats.Add(ratio)
			if ratio > 3+ratioSlack {
				rep.Pass = false
			}
		}
		tab.Addf(k, stats.N, stats.Mean(), stats.Max, 3.0)
	}
	rep.Tables = append(rep.Tables, tab)
	rep.Notes = append(rep.Notes,
		"1D solver: alternating ED/convex-descent on E[max], certified against the exact max-of-expectations optimum (Wang–Zhang's native objective; DESIGN.md §4)")
	return rep, nil
}

// RunE9 validates Table 1 row 9: general metric spaces, unrestricted
// assigned version, factor 5+2ε under the OC rule (and 7+2ε under ED).
// Graph metrics make the optimum exactly brute-forceable.
func RunE9(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	rep := &Report{ID: "E9", Description: "Table 1 row 9 — general metric, unrestricted, 5+2eps (OC) / 7+2eps (ED)", Pass: true}
	tab := &Table{Header: []string{"graph", "rule", "solver", "bound", "mean ratio", "max ratio", "trials"}}

	type cell struct {
		rule   core.Rule
		solver core.Solver
		bound  func(e float64) float64
		name   string
	}
	cells := []cell{
		{core.RuleOC, core.SolverGonzalez, func(e float64) float64 { return 5 + 2*e }, "5+2eps"},
		{core.RuleED, core.SolverGonzalez, func(e float64) float64 { return 7 + 2*e }, "7+2eps"},
		{core.RuleOC, core.SolverExactDiscrete, func(e float64) float64 { return 5 + 2*e }, "5+2eps"},
	}
	for _, graphKind := range []string{"grid", "geometric", "tree"} {
		for _, c := range cells {
			stats := NewStats()
			for trial := 0; trial < cfg.Trials; trial++ {
				space, err := sampleGraphMetric(rng, graphKind)
				if err != nil {
					return nil, err
				}
				n := 3 + rng.Intn(2)
				z := 1 + rng.Intn(2)
				pts, err := gen.OnVerticesLocal(rng, space, n, z)
				if err != nil {
					return nil, err
				}
				k := 1 + rng.Intn(2)
				res, err := cfg.solveMetric(space, pts, space.Points(), k, core.MetricOptions{
					Rule: c.rule, Solver: c.solver,
				})
				if err != nil {
					return nil, err
				}
				opt, err := bruteforce.Unrestricted[int](space, pts, space.Points(), k, 2_000_000, 1_000_000)
				if err != nil {
					return nil, err
				}
				if opt.Cost <= 0 {
					continue
				}
				ratio := res.Ecost / opt.Cost
				stats.Add(ratio)
				if ratio > c.bound(res.EffectiveEps)+ratioSlack {
					rep.Pass = false
				}
			}
			tab.Addf(graphKind, c.rule.String(), c.solver.String(), c.name, stats.Mean(), stats.Max, stats.N)
		}
	}
	rep.Tables = append(rep.Tables, tab)
	rep.Notes = append(rep.Notes, "finite spaces: the brute-force optimum is exact, so these bound checks are exact")
	return rep, nil
}

func sampleGraphMetric(rng *rand.Rand, kind string) (*metricspace.Finite, error) {
	switch kind {
	case "grid":
		g, err := graphmetric.GridGraph(3, 3+rng.Intn(2))
		if err != nil {
			return nil, err
		}
		return g.Metric()
	case "geometric":
		g, _, err := graphmetric.RandomGeometric(9+rng.Intn(4), 0.35, rng)
		if err != nil {
			return nil, err
		}
		return g.Metric()
	case "tree":
		g, err := graphmetric.RandomTree(9+rng.Intn(4), 0.5, 2, rng)
		if err != nil {
			return nil, err
		}
		return g.Metric()
	default:
		return nil, fmt.Errorf("harness: unknown graph kind %q", kind)
	}
}

// RunC1 reproduces the headline comparison: the paper's surrogate pipelines
// versus representative baselines (Guha–Munagala-style representative, mode,
// best-of-samples), on benign and adversarial Euclidean workloads and on
// graph metrics. Reported: mean exact Ecost per method (lower is better).
func RunC1(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	rep := &Report{ID: "C1", Description: "headline comparison — paper pipelines vs baselines", Pass: true}

	n, k := 40, 3
	if cfg.Quick {
		n = 16
	}

	euclTab := &Table{
		Title:  "Euclidean (mean exact Ecost, lower is better)",
		Header: []string{"workload", "paper EP+Gonzalez", "paper OC+Gonzalez", "mode", "median-loc", "sample(8)"},
	}
	for _, workload := range []string{"gaussian", "bimodal", "uniform"} {
		sums := make([]*Stats, 5)
		for i := range sums {
			sums[i] = NewStats()
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			var pts []uncertain.Point[geom.Vec]
			var err error
			switch workload {
			case "gaussian":
				pts, err = gen.GaussianClusters(rng, n, 4, 2, 3, 1, 0.4)
			case "bimodal":
				pts, err = gen.BimodalAdversarial(rng, n, 4, 2, 25)
			default:
				pts, err = gen.UniformBox(rng, n, 4, 2, 10)
			}
			if err != nil {
				return nil, err
			}
			ep, err := cfg.solveEuclidean(pts, k, core.EuclideanOptions{Rule: core.RuleEP})
			if err != nil {
				return nil, err
			}
			oc, err := cfg.solveEuclidean(pts, k, core.EuclideanOptions{
				Surrogate: core.SurrogateOneCenter, Rule: core.RuleOC,
			})
			if err != nil {
				return nil, err
			}
			space := metricspace.Euclidean{}
			mode, err := baseline.Solve[geom.Vec](space, pts, k, baseline.MethodMode, baseline.Options{})
			if err != nil {
				return nil, err
			}
			med, err := baseline.Solve[geom.Vec](space, pts, k, baseline.MethodMedianLocation, baseline.Options{})
			if err != nil {
				return nil, err
			}
			smp, err := baseline.Solve[geom.Vec](space, pts, k, baseline.MethodSample, baseline.Options{Rng: rng, Samples: 8})
			if err != nil {
				return nil, err
			}
			for i, c := range []float64{ep.Ecost, oc.Ecost, mode.Ecost, med.Ecost, smp.Ecost} {
				sums[i].Add(c)
			}
		}
		euclTab.Addf(workload, sums[0].Mean(), sums[1].Mean(), sums[2].Mean(), sums[3].Mean(), sums[4].Mean())
	}
	rep.Tables = append(rep.Tables, euclTab)

	graphTab := &Table{
		Title:  "Graph metric (mean exact Ecost, lower is better)",
		Header: []string{"graph", "paper OC+Gonzalez", "paper ED+Gonzalez", "mode", "median-loc"},
	}
	for _, kind := range []string{"grid", "geometric", "tree"} {
		sums := make([]*Stats, 4)
		for i := range sums {
			sums[i] = NewStats()
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			space, err := sampleGraphMetricLarge(rng, kind, cfg.Quick)
			if err != nil {
				return nil, err
			}
			pts, err := gen.OnVerticesLocal(rng, space, n/2, 4)
			if err != nil {
				return nil, err
			}
			oc, err := cfg.solveMetric(space, pts, space.Points(), k, core.MetricOptions{Rule: core.RuleOC})
			if err != nil {
				return nil, err
			}
			ed, err := cfg.solveMetric(space, pts, space.Points(), k, core.MetricOptions{Rule: core.RuleED})
			if err != nil {
				return nil, err
			}
			mode, err := baseline.Solve[int](space, pts, k, baseline.MethodMode, baseline.Options{})
			if err != nil {
				return nil, err
			}
			med, err := baseline.Solve[int](space, pts, k, baseline.MethodMedianLocation, baseline.Options{})
			if err != nil {
				return nil, err
			}
			for i, c := range []float64{oc.Ecost, ed.Ecost, mode.Ecost, med.Ecost} {
				sums[i].Add(c)
			}
		}
		graphTab.Addf(kind, sums[0].Mean(), sums[1].Mean(), sums[2].Mean(), sums[3].Mean())
	}
	rep.Tables = append(rep.Tables, graphTab)
	rep.Notes = append(rep.Notes,
		"the paper's win is structural on bimodal workloads: mode/sample representatives collapse to one mode while P̃ balances both")
	return rep, nil
}

func sampleGraphMetricLarge(rng *rand.Rand, kind string, quick bool) (*metricspace.Finite, error) {
	size := 60
	if quick {
		size = 25
	}
	switch kind {
	case "grid":
		g, err := graphmetric.GridGraph(size/8, 8)
		if err != nil {
			return nil, err
		}
		return g.Metric()
	case "geometric":
		g, _, err := graphmetric.RandomGeometric(size, 0.2, rng)
		if err != nil {
			return nil, err
		}
		return g.Metric()
	case "tree":
		g, err := graphmetric.RandomTree(size, 0.5, 2, rng)
		if err != nil {
			return nil, err
		}
		return g.Metric()
	default:
		return nil, fmt.Errorf("harness: unknown graph kind %q", kind)
	}
}

// RunA1 is the surrogate ablation: expected point P̄ versus 1-center P̃ in
// Euclidean space, where both exist, across workloads. The theory predicts
// P̃ (factor 5+2ε via OC) is more robust on bimodal mass splits even though
// its Euclidean factor looks worse on paper.
func RunA1(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 200))
	rep := &Report{ID: "A1", Description: "ablation — surrogate choice (expected point vs 1-center)", Pass: true}
	tab := &Table{Header: []string{"workload", "P-bar (EP rule)", "P-tilde (OC rule)", "ratio P-bar/P-tilde"}}
	n, k := 30, 3
	if cfg.Quick {
		n = 12
	}
	for _, workload := range []string{"gaussian", "bimodal", "uniform"} {
		sumEP, sumOC := NewStats(), NewStats()
		for trial := 0; trial < cfg.Trials; trial++ {
			var pts []uncertain.Point[geom.Vec]
			var err error
			switch workload {
			case "gaussian":
				pts, err = gen.GaussianClusters(rng, n, 4, 2, 3, 1, 0.4)
			case "bimodal":
				pts, err = gen.BimodalAdversarial(rng, n, 4, 2, 25)
			default:
				pts, err = gen.UniformBox(rng, n, 4, 2, 10)
			}
			if err != nil {
				return nil, err
			}
			ep, err := cfg.solveEuclidean(pts, k, core.EuclideanOptions{
				Surrogate: core.SurrogateExpectedPoint, Rule: core.RuleEP,
			})
			if err != nil {
				return nil, err
			}
			oc, err := cfg.solveEuclidean(pts, k, core.EuclideanOptions{
				Surrogate: core.SurrogateOneCenter, Rule: core.RuleOC,
			})
			if err != nil {
				return nil, err
			}
			sumEP.Add(ep.Ecost)
			sumOC.Add(oc.Ecost)
		}
		ratio := 0.0
		if sumOC.Mean() > 0 {
			ratio = sumEP.Mean() / sumOC.Mean()
		}
		tab.Addf(workload, sumEP.Mean(), sumOC.Mean(), ratio)
	}
	rep.Tables = append(rep.Tables, tab)
	return rep, nil
}

// RunA2 is the assignment-rule ablation: with identical centers (from the
// EP pipeline), how much does the choice among ED/EP/OC assignment change
// the exact expected cost?
func RunA2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 300))
	rep := &Report{ID: "A2", Description: "ablation — assignment rule at fixed centers", Pass: true}
	tab := &Table{Header: []string{"workload", "ED", "EP", "OC", "unassigned (lower bd)"}}
	n, k := 30, 3
	if cfg.Quick {
		n = 12
	}
	for _, workload := range []string{"gaussian", "bimodal"} {
		s := map[string]*Stats{"ED": NewStats(), "EP": NewStats(), "OC": NewStats(), "UN": NewStats()}
		for trial := 0; trial < cfg.Trials; trial++ {
			var pts []uncertain.Point[geom.Vec]
			var err error
			if workload == "gaussian" {
				pts, err = gen.GaussianClusters(rng, n, 4, 2, 3, 1, 0.4)
			} else {
				pts, err = gen.BimodalAdversarial(rng, n, 4, 2, 25)
			}
			if err != nil {
				return nil, err
			}
			res, err := cfg.solveEuclidean(pts, k, core.EuclideanOptions{Rule: core.RuleEP})
			if err != nil {
				return nil, err
			}
			space := metricspace.Euclidean{}
			for _, rc := range []struct {
				name string
				rule core.Rule
			}{{"ED", core.RuleED}, {"EP", core.RuleEP}, {"OC", core.RuleOC}} {
				assign, err := core.AssignEuclidean(pts, res.Centers, rc.rule)
				if err != nil {
					return nil, err
				}
				cost, err := core.EcostAssigned[geom.Vec](space, pts, res.Centers, assign)
				if err != nil {
					return nil, err
				}
				s[rc.name].Add(cost)
			}
			s["UN"].Add(res.EcostUnassigned)
		}
		tab.Addf(workload, s["ED"].Mean(), s["EP"].Mean(), s["OC"].Mean(), s["UN"].Mean())
	}
	rep.Tables = append(rep.Tables, tab)
	return rep, nil
}

// RunA3 measures the exact E[max] evaluator against Monte-Carlo estimation:
// wall time and agreement, supporting the claim that exact evaluation is
// what makes the ratio experiments feasible.
func RunA3(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 400))
	rep := &Report{ID: "A3", Description: "ablation — exact Ecost evaluator vs Monte-Carlo", Pass: true}
	tab := &Table{Header: []string{"n", "z", "exact (us)", "mc-10k (us)", "|rel diff|"}}
	sizes := []struct{ n, z int }{{20, 4}, {100, 4}, {400, 8}}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	space := metricspace.Euclidean{}
	for _, sz := range sizes {
		pts, err := gen.GaussianClusters(rng, sz.n, sz.z, 2, 4, 1, 0.4)
		if err != nil {
			return nil, err
		}
		res, err := cfg.solveEuclidean(pts, 4, core.EuclideanOptions{Rule: core.RuleEP})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		exact, err := core.EcostAssigned[geom.Vec](space, pts, res.Centers, res.Assign)
		if err != nil {
			return nil, err
		}
		exactDur := time.Since(t0)
		t1 := time.Now()
		mc, err := core.EcostMonteCarlo[geom.Vec](space, pts, res.Centers, res.Assign, 10000, rng)
		if err != nil {
			return nil, err
		}
		mcDur := time.Since(t1)
		rel := 0.0
		if exact > 0 {
			rel = abs(exact-mc) / exact
		}
		if rel > 0.05 {
			rep.Pass = false
		}
		tab.Addf(sz.n, sz.z, float64(exactDur.Microseconds()), float64(mcDur.Microseconds()), rel)
	}
	rep.Tables = append(rep.Tables, tab)
	return rep, nil
}

// RunR2 validates the running-time claims: the Gonzalez pipeline scales as
// O(nz + nk) (our Gonzalez is O(nk); the paper cites O(n log k) as possible),
// and expected-point construction is O(z) per point.
func RunR2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 500))
	rep := &Report{ID: "R2", Description: "runtime scaling — surrogate pipeline", Pass: true}

	nTab := &Table{Title: "scaling in n (z=4, k=8, d=2)", Header: []string{"n", "time (ms)", "time/n (us)"}}
	ns := []int{1000, 2000, 4000, 8000}
	if cfg.Quick {
		ns = []int{500, 1000}
	}
	for _, n := range ns {
		pts, err := gen.GaussianClusters(rng, n, 4, 2, 8, 1, 0.4)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := cfg.solveEuclidean(pts, 8, core.EuclideanOptions{Rule: core.RuleEP}); err != nil {
			return nil, err
		}
		d := time.Since(t0)
		nTab.Addf(n, float64(d.Milliseconds()), float64(d.Microseconds())/float64(n))
	}
	rep.Tables = append(rep.Tables, nTab)

	zTab := &Table{Title: "scaling in z (n=2000, k=8, d=2)", Header: []string{"z", "time (ms)", "time/(nz) (ns)"}}
	zs := []int{2, 4, 8, 16}
	if cfg.Quick {
		zs = []int{2, 4}
	}
	for _, z := range zs {
		pts, err := gen.GaussianClusters(rng, 2000, z, 2, 8, 1, 0.4)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := cfg.solveEuclidean(pts, 8, core.EuclideanOptions{Rule: core.RuleEP}); err != nil {
			return nil, err
		}
		d := time.Since(t0)
		zTab.Addf(z, float64(d.Milliseconds()), float64(d.Nanoseconds())/float64(2000*z))
	}
	rep.Tables = append(rep.Tables, zTab)

	// The coreset pre-step targets super-linear certain solvers: with the
	// (1+ε) grid solver it shrinks the cover-search input from n surrogates
	// to ~tens of coreset points. (With Gonzalez it is pure overhead.)
	csTab := &Table{
		Title:  "coreset + (1+eps) solver (n=300, z=4, k=3): direct vs CoresetEps=0.3 cap 40",
		Header: []string{"variant", "time (ms)", "Ecost"},
	}
	nCS := 300
	if cfg.Quick {
		nCS = 120
	}
	ptsCS, err := gen.GaussianClusters(rng, nCS, 4, 2, 3, 1, 0.4)
	if err != nil {
		return nil, err
	}
	epsOpts := core.EuclideanOptions{Rule: core.RuleEP, Solver: core.SolverEps, Eps: 0.5}
	withCS := epsOpts
	withCS.CoresetEps = 0.3
	withCS.CoresetMaxSize = 40
	for _, variant := range []struct {
		name string
		opts core.EuclideanOptions
	}{
		{"direct (1+eps)", epsOpts},
		{"coreset + (1+eps)", withCS},
	} {
		t0 := time.Now()
		res, err := cfg.solveEuclidean(ptsCS, 3, variant.opts)
		if err != nil {
			return nil, err
		}
		csTab.Addf(variant.name, float64(time.Since(t0).Milliseconds()), res.Ecost)
	}
	rep.Tables = append(rep.Tables, csTab)
	rep.Notes = append(rep.Notes, "per-unit columns should stay roughly flat if the pipeline is linear in that parameter")
	return rep, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// All runs every experiment in DESIGN.md order.
func All(cfg Config) ([]*Report, error) {
	runners := []func(Config) (*Report, error){
		RunE1, RunEuclideanRows, RunE8, RunE9, RunC1, RunA1, RunA2, RunA3, RunA4, RunX1, RunR2, RunR3,
	}
	var out []*Report
	for _, r := range runners {
		rep, err := r(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}
