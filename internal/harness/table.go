// Package harness runs the reproduction experiments (DESIGN.md §2) and
// renders their results as aligned text tables and CSV. Each experiment
// regenerates one artifact of the paper's evaluation — a Table 1 row's
// approximation factor validated empirically, a runtime claim, or an
// ablation — and returns a Report that cmd/experiments prints.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row. Cells beyond the header width are kept; short rows are
// padded at render time.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted cells: each argument is rendered with %v,
// floats with %.4g.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	width := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > width {
			width = len(r)
		}
	}
	colw := make([]int, width)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > colw[i] {
				colw[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	writeRow := func(r []string) {
		var sb strings.Builder
		for i := 0; i < width; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", colw[i]-len(cell)))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, cw := range colw {
			total += cw + 2
		}
		fmt.Fprintln(w, strings.Repeat("-", total-2))
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
}

// RenderCSV writes the table (header plus rows) as CSV.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(t.Header); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Report is the output of one experiment.
type Report struct {
	ID          string
	Description string
	Tables      []*Table
	Notes       []string
	// Pass reports whether every checked invariant (e.g. measured ratio ≤
	// proven bound) held.
	Pass bool
}

// Render writes the whole report as text.
func (r *Report) Render(w io.Writer) {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(w, "== %s: %s [%s]\n", r.ID, r.Description, status)
	for _, t := range r.Tables {
		fmt.Fprintln(w)
		t.Render(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Stats aggregates a stream of float64 observations.
type Stats struct {
	N         int
	Min, Max  float64
	Sum, SumS float64
}

// NewStats returns an empty aggregator.
func NewStats() *Stats {
	return &Stats{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Add records one observation.
func (s *Stats) Add(x float64) {
	s.N++
	s.Sum += x
	s.SumS += x * x
	if x < s.Min {
		s.Min = x
	}
	if x > s.Max {
		s.Max = x
	}
}

// Mean returns the sample mean (0 for empty).
func (s *Stats) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Std returns the population standard deviation (0 for fewer than 2 samples).
func (s *Stats) Std() float64 {
	if s.N < 2 {
		return 0
	}
	m := s.Mean()
	v := s.SumS/float64(s.N) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
