// Package baseline implements the comparison algorithms the paper's headline
// claim is measured against.
//
// Guha & Munagala's 15(1+2ε) algorithm (PODS'09) is an LP-based multi-phase
// procedure with no released implementation; per DESIGN.md §4 we implement
// the representative-point skeleton shared by that line of work plus the
// heuristics practitioners actually deploy:
//
//   - MethodMode: replace each uncertain point by its most probable location;
//   - MethodSample: best of m sampled realizations (each solved greedily,
//     scored by the exact expected cost);
//   - MethodMedianLocation: replace each point by the location minimizing
//     its own expected distance — the "truncated 1-median representative"
//     at the heart of the Guha–Munagala reduction, restricted to the
//     point's own support.
//
// Every method then runs Gonzalez on the representatives and assigns by
// expected distance, so the comparison with the paper's pipelines isolates
// exactly one variable: the choice of certain surrogate.
package baseline

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/kcenter"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// Method selects the baseline representative construction.
type Method int

const (
	// MethodMode uses the most probable location.
	MethodMode Method = iota
	// MethodSample solves Gonzalez on sampled realizations and keeps the
	// best center set by exact expected cost.
	MethodSample
	// MethodMedianLocation uses the support location with minimal expected
	// distance to the rest of the distribution (GM-style representative).
	MethodMedianLocation
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodMode:
		return "mode"
	case MethodSample:
		return "sample"
	case MethodMedianLocation:
		return "median-location"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures Solve.
type Options struct {
	// Samples is the number of realizations for MethodSample (default 8).
	Samples int
	// Rng drives MethodSample; required for it, unused otherwise.
	Rng *rand.Rand
	// Start is the Gonzalez start index.
	Start int
}

// Solve runs the chosen baseline and reports the same Result shape as the
// paper's pipelines (assignment rule: expected distance).
func Solve[P any](space metricspace.Space[P], pts []uncertain.Point[P], k int, method Method, opts Options) (core.Result[P], error) {
	if err := uncertain.ValidateSet(pts); err != nil {
		return core.Result[P]{}, err
	}
	if k <= 0 {
		return core.Result[P]{}, fmt.Errorf("baseline: k = %d", k)
	}
	switch method {
	case MethodMode, MethodMedianLocation:
		reps := make([]P, len(pts))
		for i, p := range pts {
			if method == MethodMode {
				reps[i] = p.Mode()
			} else {
				reps[i], _ = uncertain.OneCenterDiscrete(space, p, p.Locs)
			}
		}
		idx, radius, err := kcenter.Gonzalez(space, reps, k, opts.Start)
		if err != nil {
			return core.Result[P]{}, err
		}
		return finish(space, pts, kcenter.Select(reps, idx), reps, radius)
	case MethodSample:
		if opts.Rng == nil {
			return core.Result[P]{}, fmt.Errorf("baseline: MethodSample needs Options.Rng")
		}
		samples := opts.Samples
		if samples <= 0 {
			samples = 8
		}
		var best core.Result[P]
		haveBest := false
		for s := 0; s < samples; s++ {
			reps := uncertain.Realize(pts, opts.Rng)
			idx, radius, err := kcenter.Gonzalez(space, reps, k, opts.Start)
			if err != nil {
				return core.Result[P]{}, err
			}
			res, err := finish(space, pts, kcenter.Select(reps, idx), reps, radius)
			if err != nil {
				return core.Result[P]{}, err
			}
			if !haveBest || res.Ecost < best.Ecost {
				best, haveBest = res, true
			}
		}
		return best, nil
	default:
		return core.Result[P]{}, fmt.Errorf("baseline: unknown method %v", method)
	}
}

func finish[P any](space metricspace.Space[P], pts []uncertain.Point[P], centers, reps []P, radius float64) (core.Result[P], error) {
	assign, err := core.AssignED(space, pts, centers)
	if err != nil {
		return core.Result[P]{}, err
	}
	ecost, err := core.EcostAssigned(space, pts, centers, assign)
	if err != nil {
		return core.Result[P]{}, err
	}
	un, err := core.EcostUnassigned(space, pts, centers)
	if err != nil {
		return core.Result[P]{}, err
	}
	return core.Result[P]{
		Centers:         centers,
		Assign:          assign,
		Ecost:           ecost,
		EcostUnassigned: un,
		Surrogates:      reps,
		CertainRadius:   radius,
		EffectiveEps:    1,
	}, nil
}
