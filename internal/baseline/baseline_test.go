package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

var euclid = metricspace.Euclidean{}

func TestMethodStrings(t *testing.T) {
	if MethodMode.String() != "mode" || MethodSample.String() != "sample" ||
		MethodMedianLocation.String() != "median-location" {
		t.Error("method names changed")
	}
	if Method(9).String() == "" {
		t.Error("unknown method has empty name")
	}
}

func TestSolveValidation(t *testing.T) {
	pts := []uncertain.Point[geom.Vec]{uncertain.NewDeterministic(geom.Vec{0})}
	if _, err := Solve[geom.Vec](euclid, nil, 1, MethodMode, Options{}); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Solve[geom.Vec](euclid, pts, 0, MethodMode, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Solve[geom.Vec](euclid, pts, 1, MethodSample, Options{}); err == nil {
		t.Error("MethodSample without Rng accepted")
	}
	if _, err := Solve[geom.Vec](euclid, pts, 1, Method(42), Options{}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestAllMethodsProduceValidResults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, err := gen.GaussianClusters(rng, 15, 3, 2, 3, 1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodMode, MethodSample, MethodMedianLocation} {
		res, err := Solve[geom.Vec](euclid, pts, 3, m, Options{Rng: rng, Samples: 4})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(res.Centers) == 0 || len(res.Assign) != len(pts) {
			t.Fatalf("%v: malformed result", m)
		}
		// Reported cost must match a recomputation.
		ec, err := core.EcostAssigned[geom.Vec](euclid, pts, res.Centers, res.Assign)
		if err != nil {
			t.Fatal(err)
		}
		if diff := ec - res.Ecost; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%v: reported %g, recomputed %g", m, res.Ecost, ec)
		}
	}
}

func TestSampleBestOfImproves(t *testing.T) {
	// With more samples, the best-of cost is monotonically ≤ in expectation;
	// deterministically, best-of-16 with the same seed stream must be ≤
	// best-of-1's worst case across a few trials. We check the weaker sanity
	// property: best-of-16 never exceeds the max of 16 individual runs.
	rng := rand.New(rand.NewSource(7))
	pts, err := gen.BimodalAdversarial(rng, 10, 2, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve[geom.Vec](euclid, pts, 2, MethodSample, Options{Rng: rng, Samples: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ecost <= 0 {
		t.Error("sample baseline reported non-positive cost on a noisy instance")
	}
}

// TestBaselineOnFiniteMetric ensures the generic methods run on graph
// metrics too.
func TestBaselineOnFiniteMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs := make([]geom.Vec, 12)
	for i := range vecs {
		vecs[i] = geom.Vec{rng.Float64() * 10, rng.Float64() * 10}
	}
	space := metricspace.FromPoints[geom.Vec](euclid, vecs)
	pts, err := gen.OnVertices(rng, space, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodMode, MethodMedianLocation} {
		res, err := Solve[int](space, pts, 2, m, Options{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for _, c := range res.Centers {
			if c < 0 || c >= space.N() {
				t.Fatalf("%v: center %d outside space", m, c)
			}
		}
	}
}

// TestPaperPipelineCompetitiveWithBaselines is the qualitative headline
// check at unit-test scale: on adversarial bimodal instances the paper's
// OC-surrogate pipeline should never be dramatically worse than the mode
// baseline (the full comparison lives in the experiment harness).
func TestPaperPipelineCompetitiveWithBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var worse int
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		pts, err := gen.BimodalAdversarial(rng, 12, 2, 2, 25)
		if err != nil {
			t.Fatal(err)
		}
		paper, err := core.SolveEuclidean(pts, 2, core.EuclideanOptions{
			Surrogate: core.SurrogateOneCenter,
			Rule:      core.RuleOC,
		})
		if err != nil {
			t.Fatal(err)
		}
		mode, err := Solve[geom.Vec](euclid, pts, 2, MethodMode, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if paper.Ecost > 2*mode.Ecost {
			worse++
		}
	}
	if worse > trials/2 {
		t.Errorf("paper pipeline lost by 2x on %d/%d adversarial instances", worse, trials)
	}
}
