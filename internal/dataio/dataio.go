// Package dataio serializes uncertain k-center instances to and from JSON,
// for the command-line tools and examples. Two instance kinds exist:
// "euclidean" (locations are coordinate vectors) and "finite" (locations are
// vertex indices of an explicit distance matrix).
//
// Each kind has two loaders: ReadEuclidean/ReadFinite return the plain point
// set, and ReadEuclideanCompiled/ReadFiniteCompiled load the dataset
// straight into the compiled flat representation (internal/core.Compiled)
// with a single validation pass — the decode performs only the structural
// checks JSON cannot express (finite coordinates, vertex ranges), and
// compilation validates probabilities, checks dimensions and flattens in
// one sweep. Serving systems that load-then-solve should prefer the
// compiled loaders: nothing is validated or flattened twice.
package dataio

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// KindEuclidean and KindFinite are the instance kinds.
const (
	KindEuclidean = "euclidean"
	KindFinite    = "finite"
)

// euclideanPoint is the JSON shape of one Euclidean uncertain point.
type euclideanPoint struct {
	Locs  [][]float64 `json:"locs"`
	Probs []float64   `json:"probs"`
}

// finitePoint is the JSON shape of one finite-space uncertain point.
type finitePoint struct {
	Locs  []int     `json:"locs"`
	Probs []float64 `json:"probs"`
}

// document is the on-disk instance shape.
type document struct {
	Kind   string           `json:"kind"`
	Dim    int              `json:"dim,omitempty"`
	Points []euclideanPoint `json:"points,omitempty"`
	FPts   []finitePoint    `json:"finite_points,omitempty"`
	Metric [][]float64      `json:"metric,omitempty"`
}

// WriteEuclidean writes a Euclidean instance as indented JSON.
func WriteEuclidean(w io.Writer, pts []uncertain.Point[geom.Vec]) error {
	if err := uncertain.ValidateSet(pts); err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	doc := document{Kind: KindEuclidean, Dim: pts[0].Locs[0].Dim()}
	for _, p := range pts {
		ep := euclideanPoint{Probs: p.Probs}
		for _, l := range p.Locs {
			ep.Locs = append(ep.Locs, []float64(l))
		}
		doc.Points = append(doc.Points, ep)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// decodeEuclidean parses the document shape and performs the structural
// checks JSON cannot express (coordinate finiteness, dimension agreement).
// Probability validation is left to the caller's single pass (ValidateSet
// or core.Compile).
func decodeEuclidean(r io.Reader) ([]uncertain.Point[geom.Vec], error) {
	var doc document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	if doc.Kind != KindEuclidean {
		return nil, fmt.Errorf("dataio: kind %q, want %q", doc.Kind, KindEuclidean)
	}
	if len(doc.Points) == 0 {
		return nil, fmt.Errorf("dataio: no points")
	}
	pts := make([]uncertain.Point[geom.Vec], len(doc.Points))
	dim := doc.Dim
	for i, ep := range doc.Points {
		locs := make([]geom.Vec, len(ep.Locs))
		for j, l := range ep.Locs {
			if dim == 0 && len(l) > 0 {
				dim = len(l) // infer from the first location when unspecified
			}
			if dim > 0 && len(l) != dim {
				return nil, fmt.Errorf("dataio: point %d location %d has dim %d, want %d", i, j, len(l), dim)
			}
			locs[j] = geom.Vec(l)
			if !locs[j].IsFinite() {
				return nil, fmt.Errorf("dataio: point %d location %d is not finite", i, j)
			}
		}
		pts[i] = uncertain.Point[geom.Vec]{Locs: locs, Probs: ep.Probs}
	}
	return pts, nil
}

// ReadEuclidean parses and validates a Euclidean instance.
func ReadEuclidean(r io.Reader) ([]uncertain.Point[geom.Vec], error) {
	pts, err := decodeEuclidean(r)
	if err != nil {
		return nil, err
	}
	if err := uncertain.ValidateSet(pts); err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	return pts, nil
}

// ReadEuclideanCompiled parses a Euclidean instance straight into the
// compiled flat representation: structural decode, then one combined
// validate-prune-flatten pass (core.Compile). The returned Compiled carries
// the memoized per-instance caches every pipeline shares.
func ReadEuclideanCompiled(r io.Reader) (*core.Compiled[geom.Vec], error) {
	pts, err := decodeEuclidean(r)
	if err != nil {
		return nil, err
	}
	c, err := core.Compile[geom.Vec](context.Background(), metricspace.Euclidean{}, pts, nil)
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	return c, nil
}

// WriteFinite writes a finite-space instance (matrix plus points).
func WriteFinite(w io.Writer, space *metricspace.Finite, pts []uncertain.Point[int]) error {
	if err := uncertain.ValidateSet(pts); err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	doc := document{Kind: KindFinite}
	n := space.N()
	doc.Metric = make([][]float64, n)
	for i := 0; i < n; i++ {
		doc.Metric[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			doc.Metric[i][j] = space.Dist(i, j)
		}
	}
	for _, p := range pts {
		doc.FPts = append(doc.FPts, finitePoint{Locs: p.Locs, Probs: p.Probs})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// decodeFinite parses the document shape, builds the metric space and
// checks vertex ranges; probability validation is left to the caller's
// single pass.
func decodeFinite(r io.Reader) (*metricspace.Finite, []uncertain.Point[int], error) {
	var doc document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("dataio: %w", err)
	}
	if doc.Kind != KindFinite {
		return nil, nil, fmt.Errorf("dataio: kind %q, want %q", doc.Kind, KindFinite)
	}
	space, err := metricspace.NewFinite(doc.Metric)
	if err != nil {
		return nil, nil, fmt.Errorf("dataio: %w", err)
	}
	if len(doc.FPts) == 0 {
		return nil, nil, fmt.Errorf("dataio: no points")
	}
	pts := make([]uncertain.Point[int], len(doc.FPts))
	for i, fp := range doc.FPts {
		for j, v := range fp.Locs {
			if v < 0 || v >= space.N() {
				return nil, nil, fmt.Errorf("dataio: point %d location %d = vertex %d outside space of %d vertices", i, j, v, space.N())
			}
		}
		pts[i] = uncertain.Point[int]{Locs: fp.Locs, Probs: fp.Probs}
	}
	return space, pts, nil
}

// ReadFinite parses and validates a finite-space instance: the matrix must
// be a valid metric matrix and every location a valid vertex index.
func ReadFinite(r io.Reader) (*metricspace.Finite, []uncertain.Point[int], error) {
	space, pts, err := decodeFinite(r)
	if err != nil {
		return nil, nil, err
	}
	if err := uncertain.ValidateSet(pts); err != nil {
		return nil, nil, fmt.Errorf("dataio: %w", err)
	}
	return space, pts, nil
}

// ReadFiniteCompiled parses a finite-space instance straight into the
// compiled flat representation with all space points as the candidate set
// (mirroring NewFiniteInstance's default); one combined
// validate-prune-flatten pass.
func ReadFiniteCompiled(r io.Reader) (*metricspace.Finite, *core.Compiled[int], error) {
	space, pts, err := decodeFinite(r)
	if err != nil {
		return nil, nil, err
	}
	c, err := core.Compile[int](context.Background(), space, pts, space.Points())
	if err != nil {
		return nil, nil, fmt.Errorf("dataio: %w", err)
	}
	return space, c, nil
}
