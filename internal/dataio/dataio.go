// Package dataio serializes uncertain k-center instances to and from JSON,
// for the command-line tools and examples. Two instance kinds exist:
// "euclidean" (locations are coordinate vectors) and "finite" (locations are
// vertex indices of an explicit distance matrix).
package dataio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// KindEuclidean and KindFinite are the instance kinds.
const (
	KindEuclidean = "euclidean"
	KindFinite    = "finite"
)

// euclideanPoint is the JSON shape of one Euclidean uncertain point.
type euclideanPoint struct {
	Locs  [][]float64 `json:"locs"`
	Probs []float64   `json:"probs"`
}

// finitePoint is the JSON shape of one finite-space uncertain point.
type finitePoint struct {
	Locs  []int     `json:"locs"`
	Probs []float64 `json:"probs"`
}

// document is the on-disk instance shape.
type document struct {
	Kind   string           `json:"kind"`
	Dim    int              `json:"dim,omitempty"`
	Points []euclideanPoint `json:"points,omitempty"`
	FPts   []finitePoint    `json:"finite_points,omitempty"`
	Metric [][]float64      `json:"metric,omitempty"`
}

// WriteEuclidean writes a Euclidean instance as indented JSON.
func WriteEuclidean(w io.Writer, pts []uncertain.Point[geom.Vec]) error {
	if err := uncertain.ValidateSet(pts); err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	doc := document{Kind: KindEuclidean, Dim: pts[0].Locs[0].Dim()}
	for _, p := range pts {
		ep := euclideanPoint{Probs: p.Probs}
		for _, l := range p.Locs {
			ep.Locs = append(ep.Locs, []float64(l))
		}
		doc.Points = append(doc.Points, ep)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadEuclidean parses and validates a Euclidean instance.
func ReadEuclidean(r io.Reader) ([]uncertain.Point[geom.Vec], error) {
	var doc document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	if doc.Kind != KindEuclidean {
		return nil, fmt.Errorf("dataio: kind %q, want %q", doc.Kind, KindEuclidean)
	}
	if len(doc.Points) == 0 {
		return nil, fmt.Errorf("dataio: no points")
	}
	pts := make([]uncertain.Point[geom.Vec], len(doc.Points))
	dim := doc.Dim
	for i, ep := range doc.Points {
		locs := make([]geom.Vec, len(ep.Locs))
		for j, l := range ep.Locs {
			if dim == 0 && len(l) > 0 {
				dim = len(l) // infer from the first location when unspecified
			}
			if dim > 0 && len(l) != dim {
				return nil, fmt.Errorf("dataio: point %d location %d has dim %d, want %d", i, j, len(l), dim)
			}
			locs[j] = geom.Vec(l)
			if !locs[j].IsFinite() {
				return nil, fmt.Errorf("dataio: point %d location %d is not finite", i, j)
			}
		}
		p, err := uncertain.New(locs, ep.Probs)
		if err != nil {
			return nil, fmt.Errorf("dataio: point %d: %w", i, err)
		}
		pts[i] = p
	}
	return pts, nil
}

// WriteFinite writes a finite-space instance (matrix plus points).
func WriteFinite(w io.Writer, space *metricspace.Finite, pts []uncertain.Point[int]) error {
	if err := uncertain.ValidateSet(pts); err != nil {
		return fmt.Errorf("dataio: %w", err)
	}
	doc := document{Kind: KindFinite}
	n := space.N()
	doc.Metric = make([][]float64, n)
	for i := 0; i < n; i++ {
		doc.Metric[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			doc.Metric[i][j] = space.Dist(i, j)
		}
	}
	for _, p := range pts {
		doc.FPts = append(doc.FPts, finitePoint{Locs: p.Locs, Probs: p.Probs})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadFinite parses and validates a finite-space instance: the matrix must
// be a valid metric matrix and every location a valid vertex index.
func ReadFinite(r io.Reader) (*metricspace.Finite, []uncertain.Point[int], error) {
	var doc document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("dataio: %w", err)
	}
	if doc.Kind != KindFinite {
		return nil, nil, fmt.Errorf("dataio: kind %q, want %q", doc.Kind, KindFinite)
	}
	space, err := metricspace.NewFinite(doc.Metric)
	if err != nil {
		return nil, nil, fmt.Errorf("dataio: %w", err)
	}
	if len(doc.FPts) == 0 {
		return nil, nil, fmt.Errorf("dataio: no points")
	}
	pts := make([]uncertain.Point[int], len(doc.FPts))
	for i, fp := range doc.FPts {
		for j, v := range fp.Locs {
			if v < 0 || v >= space.N() {
				return nil, nil, fmt.Errorf("dataio: point %d location %d = vertex %d outside space of %d vertices", i, j, v, space.N())
			}
		}
		p, err := uncertain.New(fp.Locs, fp.Probs)
		if err != nil {
			return nil, nil, fmt.Errorf("dataio: point %d: %w", i, err)
		}
		pts[i] = p
	}
	return space, pts, nil
}
