package dataio

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

func TestEuclideanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, err := gen.GaussianClusters(rng, 8, 3, 2, 2, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEuclidean(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEuclidean(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("round trip size %d, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i].Z() != pts[i].Z() {
			t.Fatalf("point %d: z %d, want %d", i, got[i].Z(), pts[i].Z())
		}
		for j := range pts[i].Locs {
			if !got[i].Locs[j].Equal(pts[i].Locs[j], 1e-12) {
				t.Fatalf("point %d location %d: %v vs %v", i, j, got[i].Locs[j], pts[i].Locs[j])
			}
			if math.Abs(got[i].Probs[j]-pts[i].Probs[j]) > 1e-12 {
				t.Fatalf("point %d prob %d differs", i, j)
			}
		}
	}
}

func TestFiniteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vecs := make([]geom.Vec, 6)
	for i := range vecs {
		vecs[i] = geom.Vec{rng.Float64(), rng.Float64()}
	}
	space := metricspace.FromPoints[geom.Vec](metricspace.Euclidean{}, vecs)
	pts, err := gen.OnVertices(rng, space, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFinite(&buf, space, pts); err != nil {
		t.Fatal(err)
	}
	gotSpace, gotPts, err := ReadFinite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotSpace.N() != space.N() {
		t.Fatalf("space size %d, want %d", gotSpace.N(), space.N())
	}
	for i := 0; i < space.N(); i++ {
		for j := 0; j < space.N(); j++ {
			if math.Abs(gotSpace.Dist(i, j)-space.Dist(i, j)) > 1e-12 {
				t.Fatalf("metric differs at (%d,%d)", i, j)
			}
		}
	}
	if len(gotPts) != len(pts) {
		t.Fatalf("points %d, want %d", len(gotPts), len(pts))
	}
}

func TestReadEuclideanRejections(t *testing.T) {
	cases := map[string]string{
		"bad json":      "{",
		"wrong kind":    `{"kind":"finite"}`,
		"no points":     `{"kind":"euclidean","dim":2}`,
		"dim mismatch":  `{"kind":"euclidean","dim":2,"points":[{"locs":[[1]],"probs":[1]}]}`,
		"bad probs":     `{"kind":"euclidean","dim":1,"points":[{"locs":[[1]],"probs":[0.4]}]}`,
		"empty locs":    `{"kind":"euclidean","dim":1,"points":[{"locs":[],"probs":[]}]}`,
		"nonfinite loc": `{"kind":"euclidean","dim":1,"points":[{"locs":[[1e999]],"probs":[1]}]}`,
	}
	for name, doc := range cases {
		if _, err := ReadEuclidean(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadFiniteRejections(t *testing.T) {
	cases := map[string]string{
		"bad json":         "{",
		"wrong kind":       `{"kind":"euclidean"}`,
		"no points":        `{"kind":"finite","metric":[[0]]}`,
		"asymmetric":       `{"kind":"finite","metric":[[0,1],[2,0]],"finite_points":[{"locs":[0],"probs":[1]}]}`,
		"vertex oob":       `{"kind":"finite","metric":[[0]],"finite_points":[{"locs":[3],"probs":[1]}]}`,
		"negative vertex":  `{"kind":"finite","metric":[[0]],"finite_points":[{"locs":[-1],"probs":[1]}]}`,
		"probs not normal": `{"kind":"finite","metric":[[0]],"finite_points":[{"locs":[0],"probs":[0.5]}]}`,
	}
	for name, doc := range cases {
		if _, _, err := ReadFinite(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadCompiledLoaders(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, err := gen.GaussianClusters(rng, 8, 3, 2, 2, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEuclidean(&buf, pts); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	c, err := ReadEuclideanCompiled(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPoints() != len(pts) {
		t.Fatalf("compiled NumPoints %d, want %d", c.NumPoints(), len(pts))
	}
	if got, want := c.NumAtoms(), uncertain.TotalLocations(pts); got != want {
		t.Fatalf("compiled NumAtoms %d, want %d", got, want)
	}
	if !c.IsEuclidean() || c.Dim() != 2 {
		t.Fatalf("compiled euclidean=%v dim=%d", c.IsEuclidean(), c.Dim())
	}
	// The compiled loader must reject what the plain loader rejects.
	for name, doc := range map[string]string{
		"bad probs":     `{"kind":"euclidean","dim":1,"points":[{"locs":[[1]],"probs":[0.4]}]}`,
		"nonfinite loc": `{"kind":"euclidean","dim":1,"points":[{"locs":[[1e999]],"probs":[1]}]}`,
	} {
		if _, err := ReadEuclideanCompiled(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted by compiled loader", name)
		}
	}

	vecs := make([]geom.Vec, 5)
	for i := range vecs {
		vecs[i] = geom.Vec{rng.Float64(), rng.Float64()}
	}
	space := metricspace.FromPoints[geom.Vec](metricspace.Euclidean{}, vecs)
	fpts, err := gen.OnVertices(rng, space, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFinite(&buf, space, fpts); err != nil {
		t.Fatal(err)
	}
	gotSpace, fc, err := ReadFiniteCompiled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fc.NumPoints() != len(fpts) {
		t.Fatalf("finite compiled NumPoints %d, want %d", fc.NumPoints(), len(fpts))
	}
	// The candidate set defaults to all space points.
	if got, want := len(fc.Candidates()), gotSpace.N(); got != want {
		t.Fatalf("finite compiled candidates %d, want %d", got, want)
	}
}

func TestWriteValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEuclidean(&buf, nil); err == nil {
		t.Error("empty set accepted")
	}
	bad := []uncertain.Point[geom.Vec]{{Locs: []geom.Vec{{0}}, Probs: []float64{2}}}
	if err := WriteEuclidean(&buf, bad); err == nil {
		t.Error("invalid point accepted")
	}
	space, _ := metricspace.NewFinite([][]float64{{0}})
	if err := WriteFinite(&buf, space, nil); err == nil {
		t.Error("empty finite set accepted")
	}
}
