package dataio

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// Fuzz targets: the readers must never panic and must either return a valid
// instance or an error, for arbitrary byte input. Run with
// `go test -fuzz=FuzzReadEuclidean ./internal/dataio` to explore; the seed
// corpus runs as part of `go test`.

func FuzzReadEuclidean(f *testing.F) {
	seeds := []string{
		`{"kind":"euclidean","dim":2,"points":[{"locs":[[1,2],[3,4]],"probs":[0.5,0.5]}]}`,
		`{"kind":"euclidean","dim":1,"points":[{"locs":[[0]],"probs":[1]}]}`,
		`{"kind":"euclidean"}`,
		`{"kind":"finite"}`,
		`{`,
		``,
		`null`,
		`{"kind":"euclidean","dim":1,"points":[{"locs":[[1e309]],"probs":[1]}]}`,
		`{"kind":"euclidean","dim":1,"points":[{"locs":[[0]],"probs":[-1]}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, err := ReadEuclidean(bytes.NewReader(data))
		if err != nil {
			return
		}
		// On success the instance must be fully valid.
		if len(pts) == 0 {
			t.Fatal("success with zero points")
		}
		for i, p := range pts {
			if err := p.Validate(); err != nil {
				t.Fatalf("accepted invalid point %d: %v", i, err)
			}
			for j, l := range p.Locs {
				if !l.IsFinite() {
					t.Fatalf("accepted non-finite location %d of point %d", j, i)
				}
			}
		}
	})
}

func FuzzReadFinite(f *testing.F) {
	seeds := []string{
		`{"kind":"finite","metric":[[0,1],[1,0]],"finite_points":[{"locs":[0,1],"probs":[0.5,0.5]}]}`,
		`{"kind":"finite","metric":[[0]],"finite_points":[{"locs":[0],"probs":[1]}]}`,
		`{"kind":"finite","metric":[[0,1],[2,0]],"finite_points":[{"locs":[0],"probs":[1]}]}`,
		`{"kind":"finite","metric":[[0]],"finite_points":[{"locs":[5],"probs":[1]}]}`,
		`{"kind":"finite"}`,
		`{`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		space, pts, err := ReadFinite(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(pts) == 0 {
			t.Fatal("success with zero points")
		}
		for i, p := range pts {
			if err := p.Validate(); err != nil {
				t.Fatalf("accepted invalid point %d: %v", i, err)
			}
			for _, v := range p.Locs {
				if v < 0 || v >= space.N() {
					t.Fatalf("accepted out-of-space vertex %d", v)
				}
			}
		}
	})
}

// FuzzRoundTrip checks write∘read = id on instances built from fuzzed
// numeric seeds.
func FuzzRoundTrip(f *testing.F) {
	f.Add(1.0, 2.0, 0.25)
	f.Add(-5.5, 0.0, 0.9)
	f.Fuzz(func(t *testing.T, x, y, p float64) {
		if p <= 0 || p >= 1 || x != x || y != y || x-x != 0 || y-y != 0 {
			t.Skip()
		}
		doc := `{"kind":"euclidean","dim":2,"points":[{"locs":[[` +
			fmtFloat(x) + `,` + fmtFloat(y) + `],[0,0]],"probs":[` +
			fmtFloat(p) + `,` + fmtFloat(1-p) + `]}]}`
		pts, err := ReadEuclidean(strings.NewReader(doc))
		if err != nil {
			t.Skip() // e.g. probs fail the sum tolerance after formatting
		}
		var buf bytes.Buffer
		if err := WriteEuclidean(&buf, pts); err != nil {
			t.Fatalf("write-back of accepted instance failed: %v", err)
		}
		again, err := ReadEuclidean(&buf)
		if err != nil {
			t.Fatalf("re-read of written instance failed: %v", err)
		}
		if len(again) != len(pts) || again[0].Z() != pts[0].Z() {
			t.Fatal("round trip changed the shape")
		}
	})
}

func fmtFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}
