package dataio

import (
	"context"
	"io"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/geom"
)

// OpenEuclideanSnapshot opens a Euclidean ".ukc" snapshot zero-copy: the
// returned Compiled's arena aliases the snapshot bytes, and the returned
// closer releases the mapping — call it only once the instance is no
// longer in use. The binary counterpart of ReadEuclideanCompiled: same
// result, no decode and no recompilation.
func OpenEuclideanSnapshot(ctx context.Context, path string) (*core.Compiled[geom.Vec], io.Closer, error) {
	f, err := arena.Open(ctx, path, arena.Options{})
	if err != nil {
		return nil, nil, err
	}
	c, err := f.Euclidean()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return c, f, nil
}

// OpenFiniteSnapshot is OpenEuclideanSnapshot for finite-kind snapshots;
// the metric space is recovered from the snapshot's embedded distance
// matrix and reachable via the instance's Space().
func OpenFiniteSnapshot(ctx context.Context, path string) (*core.Compiled[int], io.Closer, error) {
	f, err := arena.Open(ctx, path, arena.Options{})
	if err != nil {
		return nil, nil, err
	}
	c, err := f.Finite()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return c, f, nil
}
