package metricspace

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestEuclideanDist(t *testing.T) {
	var e Euclidean
	if got := e.Dist(geom.Vec{0, 0}, geom.Vec{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %g, want 5", got)
	}
}

func TestL1AndLInf(t *testing.T) {
	a, b := geom.Vec{0, 0}, geom.Vec{3, 4}
	if got := (L1{}).Dist(a, b); got != 7 {
		t.Errorf("L1 = %g, want 7", got)
	}
	if got := (LInf{}).Dist(a, b); got != 4 {
		t.Errorf("LInf = %g, want 4", got)
	}
}

func TestDistFunc(t *testing.T) {
	f := DistFunc[int](func(a, b int) float64 { return math.Abs(float64(a - b)) })
	var s Space[int] = f
	if got := s.Dist(3, 7); got != 4 {
		t.Errorf("DistFunc = %g, want 4", got)
	}
}

func TestNewFiniteValid(t *testing.T) {
	f, err := NewFinite([][]float64{
		{0, 1, 2},
		{1, 0, 1.5},
		{2, 1.5, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 3 {
		t.Errorf("N = %d", f.N())
	}
	if f.Dist(0, 2) != 2 || f.Dist(2, 0) != 2 {
		t.Error("Dist lookup wrong")
	}
	if err := f.Check(0); err != nil {
		t.Errorf("Check: %v", err)
	}
	if f.Diameter() != 2 {
		t.Errorf("Diameter = %g", f.Diameter())
	}
	pts := f.Points()
	if len(pts) != 3 || pts[0] != 0 || pts[2] != 2 {
		t.Errorf("Points = %v", pts)
	}
}

func TestNewFiniteRejections(t *testing.T) {
	cases := []struct {
		name string
		d    [][]float64
		want string
	}{
		{"non-square", [][]float64{{0, 1}}, "length"},
		{"nonzero diagonal", [][]float64{{1}}, "want 0"},
		{"negative", [][]float64{{0, -1}, {-1, 0}}, "not a valid distance"},
		{"NaN", [][]float64{{0, math.NaN()}, {math.NaN(), 0}}, "not a valid distance"},
		{"asymmetric", [][]float64{{0, 1}, {2, 0}}, "asymmetric"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewFinite(tc.d)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckDetectsTriangleViolation(t *testing.T) {
	f, err := NewFinite([][]float64{
		{0, 1, 10},
		{1, 0, 1},
		{10, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Check(1e-9); err == nil {
		t.Fatal("Check missed a triangle violation")
	}
}

func TestFromPoints(t *testing.T) {
	pts := []geom.Vec{{0, 0}, {3, 4}, {0, 1}}
	f := FromPoints[geom.Vec](Euclidean{}, pts)
	if f.N() != 3 {
		t.Fatalf("N = %d", f.N())
	}
	if math.Abs(f.Dist(0, 1)-5) > 1e-12 {
		t.Errorf("Dist(0,1) = %g", f.Dist(0, 1))
	}
	if math.Abs(f.Dist(1, 2)-math.Hypot(3, 3)) > 1e-12 {
		t.Errorf("Dist(1,2) = %g", f.Dist(1, 2))
	}
	if err := f.Check(1e-9); err != nil {
		t.Errorf("induced metric fails Check: %v", err)
	}
}

func TestPropertyInducedMetricsSatisfyAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	spaces := map[string]Space[geom.Vec]{"L2": Euclidean{}, "L1": L1{}, "Linf": LInf{}}
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		d := 1 + rng.Intn(4)
		pts := make([]geom.Vec, n)
		for i := range pts {
			pts[i] = geom.NewVec(d)
			for j := 0; j < d; j++ {
				pts[i][j] = rng.NormFloat64() * 5
			}
		}
		for name, sp := range spaces {
			if err := FromPoints(sp, pts).Check(1e-9); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestEmptyFinite(t *testing.T) {
	f, err := NewFinite(nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 0 || f.Diameter() != 0 || len(f.Points()) != 0 {
		t.Error("empty finite space misbehaves")
	}
}
