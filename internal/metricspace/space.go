// Package metricspace defines the metric-space abstraction the k-center
// algorithms are written against, together with the concrete spaces used in
// the paper: Euclidean space R^d (and its L1/L∞ variants) and finite metric
// spaces given by an explicit distance matrix.
//
// The paper's theorems split into two regimes — Euclidean space, where the
// expected point P̄ exists, and general metric spaces, where only the
// 1-center surrogate P̃ is available — so every algorithm in this repository
// takes a Space[P] and stays agnostic about which regime it runs in.
package metricspace

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Space is a metric d over points of type P. Implementations must satisfy
// the metric axioms: d(a,a)=0, symmetry and the triangle inequality.
// Implementations may be approximate metrics (e.g. floating-point shortest
// paths); tests verify the axioms up to tolerance.
type Space[P any] interface {
	Dist(a, b P) float64
}

// DistFunc adapts a plain function to the Space interface.
type DistFunc[P any] func(a, b P) float64

// Dist calls f.
func (f DistFunc[P]) Dist(a, b P) float64 { return f(a, b) }

// Euclidean is R^d with the L2 metric. The zero value is ready to use; every
// call validates dimensions via geom.Dist.
type Euclidean struct{}

// Dist returns the L2 distance.
func (Euclidean) Dist(a, b geom.Vec) float64 { return geom.Dist(a, b) }

// L1 is R^d with the Manhattan metric.
type L1 struct{}

// Dist returns the L1 distance.
func (L1) Dist(a, b geom.Vec) float64 { return geom.Dist1(a, b) }

// LInf is R^d with the Chebyshev metric.
type LInf struct{}

// Dist returns the L∞ distance.
func (LInf) Dist(a, b geom.Vec) float64 { return geom.DistInf(a, b) }

// Finite is a finite metric space over points {0, …, n−1} with an explicit
// distance matrix. It implements Space[int].
type Finite struct {
	d [][]float64
}

// NewFinite builds a finite space from a distance matrix. It validates shape
// (square), zero diagonal, symmetry and non-negativity; it does NOT check the
// triangle inequality (that is O(n³) — call Check when wanted).
func NewFinite(d [][]float64) (*Finite, error) {
	n := len(d)
	for i, row := range d {
		if len(row) != n {
			return nil, fmt.Errorf("metricspace: row %d has length %d, want %d", i, len(row), n)
		}
		if d[i][i] != 0 {
			return nil, fmt.Errorf("metricspace: d[%d][%d] = %g, want 0", i, i, d[i][i])
		}
		for j, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
				return nil, fmt.Errorf("metricspace: d[%d][%d] = %g is not a valid distance", i, j, x)
			}
			if x != d[j][i] {
				return nil, fmt.Errorf("metricspace: asymmetric at (%d,%d): %g vs %g", i, j, x, d[j][i])
			}
		}
	}
	return &Finite{d: d}, nil
}

// FromPoints materializes the finite metric induced on pts by the metric of
// space. The resulting Finite indexes points by their position in pts.
func FromPoints[P any](space Space[P], pts []P) *Finite {
	n := len(pts)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			x := space.Dist(pts[i], pts[j])
			d[i][j] = x
			d[j][i] = x
		}
	}
	return &Finite{d: d}
}

// N returns the number of points in the space.
func (f *Finite) N() int { return len(f.d) }

// Dist returns the matrix entry d[a][b]. Out-of-range indices panic, matching
// slice semantics.
func (f *Finite) Dist(a, b int) float64 { return f.d[a][b] }

// Points returns all point indices 0…n−1, the natural candidate-center set
// for algorithms over a finite space.
func (f *Finite) Points() []int {
	out := make([]int, f.N())
	for i := range out {
		out[i] = i
	}
	return out
}

// Check verifies the triangle inequality up to tol, returning a descriptive
// error for the first violated triple. It is O(n³) and intended for tests
// and input validation of user-supplied matrices.
func (f *Finite) Check(tol float64) error {
	n := f.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if f.d[i][j] > f.d[i][k]+f.d[k][j]+tol {
					return fmt.Errorf("metricspace: triangle inequality violated: d(%d,%d)=%g > d(%d,%d)+d(%d,%d)=%g",
						i, j, f.d[i][j], i, k, k, j, f.d[i][k]+f.d[k][j])
				}
			}
		}
	}
	return nil
}

// Diameter returns the largest pairwise distance in the space (0 when n ≤ 1).
func (f *Finite) Diameter() float64 {
	var m float64
	for i := range f.d {
		for _, x := range f.d[i] {
			if x > m {
				m = x
			}
		}
	}
	return m
}
