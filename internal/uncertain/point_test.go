package uncertain

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/emax"
	"repro/internal/geom"
	"repro/internal/metricspace"
)

var euclid = metricspace.Euclidean{}

func mustPoint(t *testing.T, locs []geom.Vec, probs []float64) Point[geom.Vec] {
	t.Helper()
	p, err := New(locs, probs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]geom.Vec{{0}}, []float64{1}); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
	bad := []struct {
		name  string
		locs  []geom.Vec
		probs []float64
	}{
		{"empty", nil, nil},
		{"length mismatch", []geom.Vec{{0}}, []float64{0.5, 0.5}},
		{"sum != 1", []geom.Vec{{0}, {1}}, []float64{0.5, 0.6}},
		{"negative prob", []geom.Vec{{0}, {1}}, []float64{-0.5, 1.5}},
		{"NaN prob", []geom.Vec{{0}}, []float64{math.NaN()}},
	}
	for _, tc := range bad {
		if _, err := New(tc.locs, tc.probs); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestNewUniform(t *testing.T) {
	p, err := NewUniform([]geom.Vec{{0}, {1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range p.Probs {
		if pr != 0.25 {
			t.Errorf("uniform prob = %g", pr)
		}
	}
	if _, err := NewUniform[geom.Vec](nil); err == nil {
		t.Error("empty uniform accepted")
	}
}

func TestNewDeterministic(t *testing.T) {
	p := NewDeterministic(geom.Vec{3, 4})
	if p.Z() != 1 || p.Probs[0] != 1 {
		t.Errorf("deterministic point = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	p := Point[geom.Vec]{Locs: []geom.Vec{{0}, {1}}, Probs: []float64{2, 6}}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	if p.Probs[0] != 0.25 || p.Probs[1] != 0.75 {
		t.Errorf("normalized = %v", p.Probs)
	}
	zero := Point[geom.Vec]{Locs: []geom.Vec{{0}}, Probs: []float64{0}}
	if err := zero.Normalize(); err == nil {
		t.Error("zero-mass normalize accepted")
	}
	neg := Point[geom.Vec]{Locs: []geom.Vec{{0}}, Probs: []float64{-1}}
	if err := neg.Normalize(); err == nil {
		t.Error("negative-mass normalize accepted")
	}
}

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := mustPoint(t, []geom.Vec{{0}, {1}, {2}}, []float64{0.5, 0.3, 0.2})
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[int(p.Sample(rng)[0])]++
	}
	for j, want := range p.Probs {
		if got := float64(counts[j]) / n; math.Abs(got-want) > 0.01 {
			t.Errorf("P(loc %d) = %g, want %g", j, got, want)
		}
	}
}

func TestMode(t *testing.T) {
	p := mustPoint(t, []geom.Vec{{0}, {1}, {2}}, []float64{0.2, 0.5, 0.3})
	if m := p.Mode(); m[0] != 1 {
		t.Errorf("Mode = %v", m)
	}
}

func TestExpectedDist(t *testing.T) {
	p := mustPoint(t, []geom.Vec{{0, 0}, {6, 8}}, []float64{0.5, 0.5})
	got := ExpectedDist[geom.Vec](euclid, p, geom.Vec{0, 0})
	if math.Abs(got-5) > 1e-12 {
		t.Errorf("ExpectedDist = %g, want 5", got)
	}
}

func TestDistRV(t *testing.T) {
	p := mustPoint(t, []geom.Vec{{0, 0}, {3, 4}}, []float64{0.25, 0.75})
	rv := DistRV[geom.Vec](euclid, p, geom.Vec{0, 0})
	if err := rv.Validate(); err != nil {
		t.Fatal(err)
	}
	if rv.Vals[0] != 0 || math.Abs(rv.Vals[1]-5) > 1e-12 {
		t.Errorf("DistRV vals = %v", rv.Vals)
	}
	if math.Abs(rv.Mean()-3.75) > 1e-12 {
		t.Errorf("mean = %g, want 3.75", rv.Mean())
	}
}

func TestMinDistRV(t *testing.T) {
	p := mustPoint(t, []geom.Vec{{0, 0}, {10, 0}}, []float64{0.5, 0.5})
	centers := []geom.Vec{{1, 0}, {9, 0}}
	rv := MinDistRV[geom.Vec](euclid, p, centers)
	if rv.Vals[0] != 1 || rv.Vals[1] != 1 {
		t.Errorf("MinDistRV vals = %v, want [1 1]", rv.Vals)
	}
}

func TestMinDistRVPanicsOnEmptyCenters(t *testing.T) {
	p := NewDeterministic(geom.Vec{0})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MinDistRV[geom.Vec](euclid, p, nil)
}

func TestExpectedPoint(t *testing.T) {
	p := mustPoint(t, []geom.Vec{{0, 0}, {4, 8}}, []float64{0.75, 0.25})
	got := ExpectedPoint(p)
	if !got.Equal(geom.Vec{1, 2}, 1e-12) {
		t.Errorf("ExpectedPoint = %v, want (1,2)", got)
	}
}

func TestExpectedPointPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ExpectedPoint(Point[geom.Vec]{})
}

// TestLemma31 verifies Lemma 3.1 of the paper: d(P̄, Q) ≤ E d(P, Q) for every
// uncertain point P and every Q in Euclidean space.
func TestLemma31(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 500; trial++ {
		d := 1 + rng.Intn(5)
		z := 1 + rng.Intn(6)
		locs := make([]geom.Vec, z)
		probs := make([]float64, z)
		var sum float64
		for j := range locs {
			locs[j] = geom.NewVec(d)
			for k := 0; k < d; k++ {
				locs[j][k] = rng.NormFloat64() * 10
			}
			probs[j] = rng.Float64() + 0.01
			sum += probs[j]
		}
		for j := range probs {
			probs[j] /= sum
		}
		p, err := New(locs, probs)
		if err != nil {
			t.Fatal(err)
		}
		q := geom.NewVec(d)
		for k := 0; k < d; k++ {
			q[k] = rng.NormFloat64() * 10
		}
		lhs := geom.Dist(ExpectedPoint(p), q)
		rhs := ExpectedDist[geom.Vec](euclid, p, q)
		if lhs > rhs+1e-9 {
			t.Fatalf("Lemma 3.1 violated: d(P̄,Q)=%g > E d(P,Q)=%g", lhs, rhs)
		}
	}
}

func TestOneCenterEuclideanMinimizesExpectedDist(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		d := 1 + rng.Intn(3)
		z := 2 + rng.Intn(5)
		locs := make([]geom.Vec, z)
		probs := make([]float64, z)
		var sum float64
		for j := range locs {
			locs[j] = geom.NewVec(d)
			for k := 0; k < d; k++ {
				locs[j][k] = rng.NormFloat64() * 5
			}
			probs[j] = rng.Float64() + 0.05
			sum += probs[j]
		}
		for j := range probs {
			probs[j] /= sum
		}
		p, err := New(locs, probs)
		if err != nil {
			t.Fatal(err)
		}
		c := OneCenterEuclidean(p)
		base := ExpectedDist[geom.Vec](euclid, p, c)
		// P̃ must beat every location and random perturbations.
		for j := range locs {
			if ExpectedDist[geom.Vec](euclid, p, locs[j]) < base-1e-6*(1+base) {
				t.Fatalf("trial %d: location %d beats Weiszfeld output", trial, j)
			}
		}
		for k := 0; k < 10; k++ {
			pert := c.Clone()
			pert[rng.Intn(d)] += (rng.Float64() - 0.5) * 0.1
			if ExpectedDist[geom.Vec](euclid, p, pert) < base-1e-6*(1+base) {
				t.Fatalf("trial %d: perturbation beats Weiszfeld output", trial)
			}
		}
	}
}

func TestOneCenterDiscrete(t *testing.T) {
	// Finite metric: a path 0-1-2 with unit edges; an uncertain point uniform
	// over all three vertices has its unique 1-center at the middle vertex
	// (expected distance 2/3 vs 1 at either endpoint).
	f, err := metricspace.NewFinite([][]float64{
		{0, 1, 2},
		{1, 0, 1},
		{2, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewUniform([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	c, cost := OneCenterDiscrete[int](f, p, f.Points())
	if c != 1 {
		t.Errorf("1-center = %d, want 1", c)
	}
	if math.Abs(cost-2.0/3) > 1e-12 {
		t.Errorf("cost = %g, want 2/3", cost)
	}
}

func TestOneCenterDiscretePanicsOnEmptyCandidates(t *testing.T) {
	p := NewDeterministic(0)
	f, _ := metricspace.NewFinite([][]float64{{0}})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	OneCenterDiscrete[int](f, p, nil)
}

func TestBatchSurrogates(t *testing.T) {
	pts := []Point[geom.Vec]{
		NewDeterministic(geom.Vec{0, 0}),
		NewDeterministic(geom.Vec{2, 2}),
	}
	eps := ExpectedPoints(pts)
	if len(eps) != 2 || !eps[1].Equal(geom.Vec{2, 2}, 0) {
		t.Errorf("ExpectedPoints = %v", eps)
	}
	ocs := OneCentersEuclidean(pts)
	if len(ocs) != 2 || !ocs[0].Equal(geom.Vec{0, 0}, 1e-9) {
		t.Errorf("OneCentersEuclidean = %v", ocs)
	}
	f := metricspace.FromPoints[geom.Vec](euclid, []geom.Vec{{0, 0}, {2, 2}})
	ipts := []Point[int]{NewDeterministic(0), NewDeterministic(1)}
	iocs := OneCentersDiscrete[int](f, ipts, f.Points())
	if iocs[0] != 0 || iocs[1] != 1 {
		t.Errorf("OneCentersDiscrete = %v", iocs)
	}
}

// TestDistRVFeedsEmax is an integration check: E[max] of DistRVs equals the
// exhaustive Ecost over realizations.
func TestDistRVFeedsEmax(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4)
		pts := make([]Point[geom.Vec], n)
		for i := range pts {
			z := 1 + rng.Intn(3)
			locs := make([]geom.Vec, z)
			probs := make([]float64, z)
			var sum float64
			for j := range locs {
				locs[j] = geom.Vec{rng.NormFloat64(), rng.NormFloat64()}
				probs[j] = rng.Float64() + 0.1
				sum += probs[j]
			}
			for j := range probs {
				probs[j] /= sum
			}
			var err error
			pts[i], err = New(locs, probs)
			if err != nil {
				t.Fatal(err)
			}
		}
		q := geom.Vec{rng.NormFloat64(), rng.NormFloat64()}
		rvs := make([]emax.RV, n)
		for i, p := range pts {
			rvs[i] = DistRV[geom.Vec](euclid, p, q)
		}
		fast, err := emax.ExpectedMax(rvs)
		if err != nil {
			t.Fatal(err)
		}
		var slow float64
		err = ForEachRealization(pts, 1<<20, func(locs []geom.Vec, prob float64) {
			maxD := 0.0
			for _, loc := range locs {
				if d := geom.Dist(loc, q); d > maxD {
					maxD = d
				}
			}
			slow += prob * maxD
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-slow) > 1e-9*(1+slow) {
			t.Fatalf("trial %d: emax %g vs enumeration %g", trial, fast, slow)
		}
	}
}
