package uncertain

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func twoPointSet(t *testing.T) []Point[geom.Vec] {
	t.Helper()
	a, err := New([]geom.Vec{{0}, {1}}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]geom.Vec{{2}, {3}, {4}}, []float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return []Point[geom.Vec]{a, b}
}

func TestValidateSet(t *testing.T) {
	pts := twoPointSet(t)
	if err := ValidateSet(pts); err != nil {
		t.Error(err)
	}
	if err := ValidateSet[geom.Vec](nil); err == nil {
		t.Error("empty set accepted")
	}
	pts[1].Probs[0] = 2
	if err := ValidateSet(pts); err == nil {
		t.Error("invalid member accepted")
	}
}

func TestSetSizes(t *testing.T) {
	pts := twoPointSet(t)
	if MaxZ(pts) != 3 {
		t.Errorf("MaxZ = %d", MaxZ(pts))
	}
	if TotalLocations(pts) != 5 {
		t.Errorf("TotalLocations = %d", TotalLocations(pts))
	}
	if MaxZ[geom.Vec](nil) != 0 || TotalLocations[geom.Vec](nil) != 0 {
		t.Error("empty-set sizes wrong")
	}
	locs := AllLocations(pts)
	if len(locs) != 5 || locs[2][0] != 2 {
		t.Errorf("AllLocations = %v", locs)
	}
}

func TestRealize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := twoPointSet(t)
	r := Realize(pts, rng)
	if len(r) != 2 {
		t.Fatalf("realization length %d", len(r))
	}
	if r[0][0] != 0 && r[0][0] != 1 {
		t.Errorf("realization of point 0 = %v", r[0])
	}
}

func TestNumRealizations(t *testing.T) {
	pts := twoPointSet(t)
	n, ok := NumRealizations(pts, 100)
	if !ok || n != 6 {
		t.Errorf("NumRealizations = %d, %v", n, ok)
	}
	if _, ok := NumRealizations(pts, 5); ok {
		t.Error("limit not enforced")
	}
}

func TestForEachRealizationProbabilitiesSumToOne(t *testing.T) {
	pts := twoPointSet(t)
	var total float64
	count := 0
	err := ForEachRealization(pts, 100, func(locs []geom.Vec, prob float64) {
		total += prob
		count++
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Errorf("visited %d realizations, want 6", count)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("probabilities sum to %g", total)
	}
}

func TestForEachRealizationGuards(t *testing.T) {
	pts := twoPointSet(t)
	if err := ForEachRealization(pts, 5, func([]geom.Vec, float64) {}); err == nil {
		t.Error("state limit not enforced")
	}
	if err := ForEachRealization[geom.Vec](nil, 10, func([]geom.Vec, float64) {}); err == nil {
		t.Error("empty set accepted")
	}
}

func BenchmarkExpectedPoint(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, z := range []int{2, 8, 32, 128} {
		locs := make([]geom.Vec, z)
		probs := make([]float64, z)
		for j := range locs {
			locs[j] = geom.Vec{rng.NormFloat64(), rng.NormFloat64()}
			probs[j] = 1 / float64(z)
		}
		p, err := New(locs, probs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("z="+itoa(z), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ExpectedPoint(p)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
