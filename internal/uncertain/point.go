// Package uncertain implements the paper's input model: uncertain points.
//
// An uncertain point P_i is an independent discrete distribution over z_i
// possible locations in a metric space; a realization of a set of uncertain
// points picks one location per point with the product probability. The
// package also builds the paper's two surrogate constructions:
//
//   - the expected point P̄ = Σ_j p_j·P_j (Euclidean space only, Theorem 2.1
//     and the Euclidean pipelines), and
//   - the 1-center P̃ = argmin_q Σ_j p_j·d(P_j, q) of the point's own
//     distribution (any metric space; this is the weighted 1-median of the
//     distribution, computed by Weiszfeld in Euclidean space and by candidate
//     scan in finite spaces).
package uncertain

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/emax"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/sebo"
)

// ProbSumTol is the allowed deviation of Σ probs from 1.
const ProbSumTol = 1e-9

// Point is one uncertain point: location j occurs with probability Probs[j].
type Point[P any] struct {
	Locs  []P
	Probs []float64
}

// New validates and constructs an uncertain point. Probabilities must be
// non-negative, finite and sum to 1 within ProbSumTol; locs and probs must
// have equal nonzero length.
func New[P any](locs []P, probs []float64) (Point[P], error) {
	p := Point[P]{Locs: locs, Probs: probs}
	if err := p.Validate(); err != nil {
		return Point[P]{}, err
	}
	return p, nil
}

// NewUniform returns an uncertain point uniform over locs.
func NewUniform[P any](locs []P) (Point[P], error) {
	if len(locs) == 0 {
		return Point[P]{}, fmt.Errorf("uncertain: no locations")
	}
	probs := make([]float64, len(locs))
	for i := range probs {
		probs[i] = 1 / float64(len(locs))
	}
	return Point[P]{Locs: locs, Probs: probs}, nil
}

// NewDeterministic returns a certain point: one location with probability 1.
func NewDeterministic[P any](loc P) Point[P] {
	return Point[P]{Locs: []P{loc}, Probs: []float64{1}}
}

// Z returns the number of possible locations.
func (p Point[P]) Z() int { return len(p.Locs) }

// Validate checks the structural invariants of the point.
func (p Point[P]) Validate() error {
	if len(p.Locs) == 0 {
		return fmt.Errorf("uncertain: point with no locations")
	}
	if len(p.Locs) != len(p.Probs) {
		return fmt.Errorf("uncertain: %d locations but %d probabilities", len(p.Locs), len(p.Probs))
	}
	var sum float64
	for j, pr := range p.Probs {
		if pr < 0 || math.IsNaN(pr) || math.IsInf(pr, 0) {
			return fmt.Errorf("uncertain: probability %d = %g", j, pr)
		}
		sum += pr
	}
	if math.Abs(sum-1) > ProbSumTol {
		return fmt.Errorf("uncertain: probabilities sum to %g, want 1", sum)
	}
	return nil
}

// Normalize rescales the probabilities to sum exactly to 1. It returns an
// error if the current sum is not positive. Useful when building instances
// from noisy external data before Validate.
func (p *Point[P]) Normalize() error {
	var sum float64
	for _, pr := range p.Probs {
		if pr < 0 || math.IsNaN(pr) || math.IsInf(pr, 0) {
			return fmt.Errorf("uncertain: cannot normalize probability %g", pr)
		}
		sum += pr
	}
	if sum <= 0 {
		return fmt.Errorf("uncertain: cannot normalize, total probability %g", sum)
	}
	for j := range p.Probs {
		p.Probs[j] /= sum
	}
	return nil
}

// Sample draws one realization of the point's location.
func (p Point[P]) Sample(rng *rand.Rand) P {
	u := rng.Float64()
	var acc float64
	for j, pr := range p.Probs {
		acc += pr
		if u < acc {
			return p.Locs[j]
		}
	}
	return p.Locs[len(p.Locs)-1]
}

// Mode returns the most probable location (ties broken by lowest index).
func (p Point[P]) Mode() P {
	best, bestP := 0, -1.0
	for j, pr := range p.Probs {
		if pr > bestP {
			best, bestP = j, pr
		}
	}
	return p.Locs[best]
}

// ExpectedDist returns E d(P, q) = Σ_j p_j · d(P_j, q), the expected distance
// from the uncertain point to a fixed point q (the quantity the ED assignment
// minimizes).
func ExpectedDist[P any](space metricspace.Space[P], p Point[P], q P) float64 {
	var s float64
	for j, loc := range p.Locs {
		s += p.Probs[j] * space.Dist(loc, q)
	}
	return s
}

// DistRV returns the distance-to-q random variable d(X, q), where X is the
// point's random location — the building block the exact Ecost evaluator
// consumes.
func DistRV[P any](space metricspace.Space[P], p Point[P], q P) emax.RV {
	vals := make([]float64, p.Z())
	for j, loc := range p.Locs {
		vals[j] = space.Dist(loc, q)
	}
	return emax.RV{Vals: vals, Probs: p.Probs}
}

// MinDistRV returns the random variable min_c d(X, c) over a nonempty center
// set — the per-point distance in the unassigned objective. It panics if
// centers is empty.
func MinDistRV[P any](space metricspace.Space[P], p Point[P], centers []P) emax.RV {
	if len(centers) == 0 {
		panic("uncertain: MinDistRV with no centers")
	}
	vals := make([]float64, p.Z())
	for j, loc := range p.Locs {
		best := math.Inf(1)
		for _, c := range centers {
			if d := space.Dist(loc, c); d < best {
				best = d
			}
		}
		vals[j] = best
	}
	return emax.RV{Vals: vals, Probs: p.Probs}
}

// ExpectedPoint returns P̄ = Σ_j p_j·P_j, the Euclidean expected point
// (computable in O(z), per the paper's remark after Theorem 2.1).
func ExpectedPoint(p Point[geom.Vec]) geom.Vec {
	if err := p.Validate(); err != nil {
		panic("uncertain: ExpectedPoint of invalid point: " + err.Error())
	}
	return ExpectedPointUnchecked(p)
}

// ExpectedPointUnchecked is ExpectedPoint without the per-call Validate —
// the hot-path variant for points that are already validated (a compiled
// instance validates once at compile time). The caller guarantees validity.
func ExpectedPointUnchecked(p Point[geom.Vec]) geom.Vec {
	out := geom.NewVec(p.Locs[0].Dim())
	for j, loc := range p.Locs {
		out.AxpyInPlace(p.Probs[j], loc)
	}
	return out
}

// ExpectedPoints maps ExpectedPoint over a set.
func ExpectedPoints(pts []Point[geom.Vec]) []geom.Vec {
	out := make([]geom.Vec, len(pts))
	for i, p := range pts {
		out[i] = ExpectedPoint(p)
	}
	return out
}

// OneCenterEuclidean returns P̃ for a Euclidean uncertain point: the weighted
// geometric median of its distribution (the exact minimizer of
// Σ_j p_j·‖P_j − q‖ over q ∈ R^d), via Weiszfeld. Zero-probability locations
// are dropped.
func OneCenterEuclidean(p Point[geom.Vec]) geom.Vec {
	if err := p.Validate(); err != nil {
		panic("uncertain: OneCenterEuclidean of invalid point: " + err.Error())
	}
	return OneCenterEuclideanUnchecked(p)
}

// OneCenterEuclideanUnchecked is OneCenterEuclidean without the per-call
// Validate — the hot-path variant for already-validated points (a compiled
// instance validates once at compile time). The caller guarantees validity.
func OneCenterEuclideanUnchecked(p Point[geom.Vec]) geom.Vec {
	var locs []geom.Vec
	var ws []float64
	for j, w := range p.Probs {
		if w > 0 {
			locs = append(locs, p.Locs[j])
			ws = append(ws, w)
		}
	}
	return sebo.GeometricMedian(locs, ws, sebo.MedianOptions{})
}

// OneCenterDiscrete returns P̃ restricted to a candidate set: the candidate
// minimizing the expected distance Σ_j p_j·d(P_j, q), together with that
// cost. This is the general-metric-space construction (Theorems 2.6, 2.7),
// where candidates are typically all points of a finite space. It panics if
// candidates is empty.
func OneCenterDiscrete[P any](space metricspace.Space[P], p Point[P], candidates []P) (P, float64) {
	if len(candidates) == 0 {
		panic("uncertain: OneCenterDiscrete with no candidates")
	}
	best := 0
	bestCost := math.Inf(1)
	for c, cand := range candidates {
		if cost := ExpectedDist(space, p, cand); cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return candidates[best], bestCost
}

// OneCentersDiscrete maps OneCenterDiscrete over a set.
func OneCentersDiscrete[P any](space metricspace.Space[P], pts []Point[P], candidates []P) []P {
	out := make([]P, len(pts))
	for i, p := range pts {
		out[i], _ = OneCenterDiscrete(space, p, candidates)
	}
	return out
}

// OneCentersEuclidean maps OneCenterEuclidean over a set.
func OneCentersEuclidean(pts []Point[geom.Vec]) []geom.Vec {
	out := make([]geom.Vec, len(pts))
	for i, p := range pts {
		out[i] = OneCenterEuclidean(p)
	}
	return out
}
