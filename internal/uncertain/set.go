package uncertain

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// ValidateSet validates every point of a set and that the set is nonempty.
func ValidateSet[P any](pts []Point[P]) error {
	if len(pts) == 0 {
		return fmt.Errorf("uncertain: empty point set")
	}
	for i, p := range pts {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
	}
	return nil
}

// CommonDim returns the shared coordinate dimension of every location of
// every point in a Euclidean set, or an error when the set is empty or the
// dimensions disagree (which would otherwise panic inside distance code).
func CommonDim(pts []Point[geom.Vec]) (int, error) {
	if len(pts) == 0 {
		return 0, fmt.Errorf("uncertain: empty point set")
	}
	dim := -1
	for i, p := range pts {
		for j, loc := range p.Locs {
			if dim < 0 {
				dim = loc.Dim()
				continue
			}
			if loc.Dim() != dim {
				return 0, fmt.Errorf("uncertain: point %d location %d has dimension %d, want %d", i, j, loc.Dim(), dim)
			}
		}
	}
	if dim <= 0 {
		return 0, fmt.Errorf("uncertain: no locations in set")
	}
	return dim, nil
}

// MaxZ returns z = max_i z_i, the maximum number of locations of any point
// (0 for an empty set).
func MaxZ[P any](pts []Point[P]) int {
	m := 0
	for _, p := range pts {
		if p.Z() > m {
			m = p.Z()
		}
	}
	return m
}

// TotalLocations returns N = Σ_i z_i.
func TotalLocations[P any](pts []Point[P]) int {
	n := 0
	for _, p := range pts {
		n += p.Z()
	}
	return n
}

// AllLocations returns the concatenation of every point's location list —
// the natural candidate-center set for discrete algorithms.
func AllLocations[P any](pts []Point[P]) []P {
	out := make([]P, 0, TotalLocations(pts))
	for _, p := range pts {
		out = append(out, p.Locs...)
	}
	return out
}

// Realize samples one joint realization (one location per point).
func Realize[P any](pts []Point[P], rng *rand.Rand) []P {
	out := make([]P, len(pts))
	for i, p := range pts {
		out[i] = p.Sample(rng)
	}
	return out
}

// NumRealizations returns Π z_i, or (0, false) if the product exceeds limit.
func NumRealizations[P any](pts []Point[P], limit int) (int, bool) {
	n := 1
	for _, p := range pts {
		n *= p.Z()
		if n > limit || n <= 0 {
			return 0, false
		}
	}
	return n, true
}

// ForEachRealization enumerates every joint realization R with its
// probability prob(R) = Π prob(P̂_i), invoking fn(locs, prob) for each. The
// locs slice is reused across calls; copy it if retained. It returns an error
// if the joint support exceeds maxStates or the set is invalid. This is the
// exponential-cost oracle used to cross-check the emax-based evaluators in
// tests.
func ForEachRealization[P any](pts []Point[P], maxStates int, fn func(locs []P, prob float64)) error {
	if err := ValidateSet(pts); err != nil {
		return err
	}
	if _, ok := NumRealizations(pts, maxStates); !ok {
		return fmt.Errorf("uncertain: joint support exceeds %d states", maxStates)
	}
	idx := make([]int, len(pts))
	locs := make([]P, len(pts))
	for {
		prob := 1.0
		for i, p := range pts {
			locs[i] = p.Locs[idx[i]]
			prob *= p.Probs[idx[i]]
		}
		fn(locs, prob)
		k := 0
		for k < len(pts) {
			idx[k]++
			if idx[k] < pts[k].Z() {
				break
			}
			idx[k] = 0
			k++
		}
		if k == len(pts) {
			return nil
		}
	}
}
