// Package clusterx implements the paper's announced future-work extensions
// ("we intend to use our approach to study the k-median and the k-means
// problems", §4): the surrogate reduction applied to the uncertain k-median
// and uncertain k-means objectives.
//
// Unlike the k-center cost, the sum-objectives are SEPARABLE across points:
//
//	E[Σ_i d(X_i, a_i)]  = Σ_i E d(P_i, a_i)            (k-median)
//	E[Σ_i d(X_i, a_i)²] = Σ_i (‖P̄_i − a_i‖² + Var_i)  (k-means, Euclidean)
//
// so both expected costs are computable exactly in O(Nk), and the k-means
// identity makes the reduction to certain k-means on the expected points
// EXACT up to the additive constant Σ Var_i (a classical fact, property-
// tested in this package). For k-median, the 1-center surrogate P̃ plays
// the role it plays in the paper: replacing each point by the minimizer of
// its own expected distance loses at most a constant factor.
//
// Substrates implemented here: weighted discrete k-median by local search
// (single-swap, the Arya et al. 5-approximation scheme) and Euclidean
// k-means by k-means++ seeding plus Lloyd iterations.
package clusterx

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metricspace"
	"repro/internal/par"
	"repro/internal/uncertain"
)

// MedianCost returns Σ_i w_i · min_{c ∈ centers} d(p_i, c). Weights may be
// nil (all 1). It panics if centers is empty and pts is not.
func MedianCost[P any](space metricspace.Space[P], pts []P, weights []float64, centers []P) float64 {
	var total float64
	for i, p := range pts {
		best := math.Inf(1)
		for _, c := range centers {
			if d := space.Dist(p, c); d < best {
				best = d
			}
		}
		if math.IsInf(best, 1) {
			panic("clusterx: MedianCost with no centers")
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		total += w * best
	}
	return total
}

// LocalSearchKMedian solves the discrete weighted k-median over a candidate
// set by single-swap local search: starting from a greedy seed, repeatedly
// apply the best improving swap (center out, candidate in) until no swap
// improves the cost by more than (1 − 1/steps) — the classical scheme with
// a 5-approximation guarantee for exact improving swaps. It returns the
// chosen candidate indices and their cost. maxIter bounds the swap rounds.
func LocalSearchKMedian[P any](space metricspace.Space[P], pts []P, weights []float64, candidates []P, k, maxIter int) ([]int, float64, error) {
	return LocalSearchKMedianCtx(context.Background(), space, pts, weights, candidates, k, maxIter)
}

// LocalSearchKMedianCtx is LocalSearchKMedian with cooperative cancellation:
// the greedy seeding and every swap round check ctx and abort with ctx.Err().
func LocalSearchKMedianCtx[P any](ctx context.Context, space metricspace.Space[P], pts []P, weights []float64, candidates []P, k, maxIter int) ([]int, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(pts) == 0 {
		return nil, 0, fmt.Errorf("clusterx: empty point set")
	}
	if len(candidates) == 0 {
		return nil, 0, fmt.Errorf("clusterx: no candidates")
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("clusterx: k = %d", k)
	}
	if weights != nil && len(weights) != len(pts) {
		return nil, 0, fmt.Errorf("clusterx: %d weights for %d points", len(weights), len(pts))
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	if maxIter <= 0 {
		maxIter = 100
	}

	// Greedy seed: repeatedly add the candidate reducing cost the most.
	chosen := make([]int, 0, k)
	inSet := make([]bool, len(candidates))
	assignD := make([]float64, len(pts))
	for i := range assignD {
		assignD[i] = math.Inf(1)
	}
	for len(chosen) < k {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		bestC, bestGain := -1, math.Inf(-1)
		for c := range candidates {
			if inSet[c] {
				continue
			}
			gain := 0.0
			for i, p := range pts {
				if d := space.Dist(p, candidates[c]); d < assignD[i] {
					w := 1.0
					if weights != nil {
						w = weights[i]
					}
					gain += w * (assignD[i] - d)
				}
			}
			if gain > bestGain {
				bestC, bestGain = c, gain
			}
		}
		// First pick: Inf distances make every candidate infinite-gain;
		// fall back to minimizing absolute cost.
		if len(chosen) == 0 {
			bestC = 0
			bestCost := math.Inf(1)
			for c := range candidates {
				cost := MedianCost(space, pts, weights, []P{candidates[c]})
				if cost < bestCost {
					bestC, bestCost = c, cost
				}
			}
		}
		chosen = append(chosen, bestC)
		inSet[bestC] = true
		for i, p := range pts {
			if d := space.Dist(p, candidates[bestC]); d < assignD[i] {
				assignD[i] = d
			}
		}
	}

	sel := func(idx []int) []P {
		out := make([]P, len(idx))
		for i, c := range idx {
			out[i] = candidates[c]
		}
		return out
	}
	cost := MedianCost(space, pts, weights, sel(chosen))
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		improved := false
		for pos := 0; pos < len(chosen) && !improved; pos++ {
			old := chosen[pos]
			for c := range candidates {
				if inSet[c] {
					continue
				}
				chosen[pos] = c
				if newCost := MedianCost(space, pts, weights, sel(chosen)); newCost < cost*(1-1e-9)-1e-15 {
					inSet[old] = false
					inSet[c] = true
					cost = newCost
					improved = true
					break
				}
				chosen[pos] = old
			}
		}
		if !improved {
			break
		}
	}
	return chosen, cost, nil
}

// EMedianCostAssigned returns the exact uncertain k-median cost
// Σ_i E d(P_i, centers[assign[i]]) — separable, O(Nk) overall.
func EMedianCostAssigned[P any](space metricspace.Space[P], pts []uncertain.Point[P], centers []P, assign []int) (float64, error) {
	if len(centers) == 0 {
		return 0, fmt.Errorf("clusterx: no centers")
	}
	if len(assign) != len(pts) {
		return 0, fmt.Errorf("clusterx: assignment length %d, want %d", len(assign), len(pts))
	}
	var total float64
	for i, p := range pts {
		if err := p.Validate(); err != nil {
			return 0, fmt.Errorf("point %d: %w", i, err)
		}
		a := assign[i]
		if a < 0 || a >= len(centers) {
			return 0, fmt.Errorf("clusterx: assignment[%d] = %d out of range", i, a)
		}
		total += uncertain.ExpectedDist(space, p, centers[a])
	}
	return total, nil
}

// EMedianCostUnassigned returns E[Σ_i min_c d(X_i, c)] exactly: linearity of
// expectation makes it Σ_i E[min_c d(X_i, c)].
func EMedianCostUnassigned[P any](space metricspace.Space[P], pts []uncertain.Point[P], centers []P) (float64, error) {
	if len(centers) == 0 {
		return 0, fmt.Errorf("clusterx: no centers")
	}
	var total float64
	for i, p := range pts {
		if err := p.Validate(); err != nil {
			return 0, fmt.Errorf("point %d: %w", i, err)
		}
		rv := uncertain.MinDistRV(space, p, centers)
		total += rv.Mean()
	}
	return total, nil
}

// SolveUncertainKMedian runs the surrogate reduction for the uncertain
// k-median: replace each point by its 1-center P̃ over the candidate set,
// solve the deterministic k-median on the surrogates by local search, and
// assign by expected distance. Returned cost is the exact assigned expected
// k-median cost.
func SolveUncertainKMedian[P any](space metricspace.Space[P], pts []uncertain.Point[P], candidates []P, k int) ([]P, []int, float64, error) {
	return SolveUncertainKMedianCtx(context.Background(), space, pts, candidates, k, 1)
}

// SolveUncertainKMedianCtx is SolveUncertainKMedian with cooperative
// cancellation and a worker pool for the per-point stages (surrogate
// construction and the ED assignment), which fan out over disjoint point
// indices and are therefore bit-identical to the sequential run.
func SolveUncertainKMedianCtx[P any](ctx context.Context, space metricspace.Space[P], pts []uncertain.Point[P], candidates []P, k, workers int) ([]P, []int, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := uncertain.ValidateSet(pts); err != nil {
		return nil, nil, 0, err
	}
	if len(candidates) == 0 {
		return nil, nil, 0, fmt.Errorf("clusterx: no candidates")
	}
	surr, err := par.Map(ctx, make([]P, len(pts)), workers, func(i int) P {
		c, _ := uncertain.OneCenterDiscrete(space, pts[i], candidates)
		return c
	})
	if err != nil {
		return nil, nil, 0, err
	}
	idx, _, err := LocalSearchKMedianCtx(ctx, space, surr, nil, candidates, k, 100)
	if err != nil {
		return nil, nil, 0, err
	}
	centers := make([]P, len(idx))
	for i, c := range idx {
		centers[i] = candidates[c]
	}
	assign, err := core.AssignCtx(ctx, space, pts, centers, core.RuleED, nil, workers)
	if err != nil {
		return nil, nil, 0, err
	}
	cost, err := EMedianCostAssigned(space, pts, centers, assign)
	if err != nil {
		return nil, nil, 0, err
	}
	return centers, assign, cost, nil
}

// randIntn is a tiny indirection so k-means++ can be seeded in tests.
func randIntn(rng *rand.Rand, n int) int { return rng.Intn(n) }
