package clusterx

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

var euclid = metricspace.Euclidean{}

func TestMedianCost(t *testing.T) {
	pts := []geom.Vec{{0}, {10}}
	centers := []geom.Vec{{0}}
	if got := MedianCost[geom.Vec](euclid, pts, nil, centers); got != 10 {
		t.Errorf("cost = %g, want 10", got)
	}
	if got := MedianCost[geom.Vec](euclid, pts, []float64{1, 0.5}, centers); got != 5 {
		t.Errorf("weighted cost = %g, want 5", got)
	}
	if got := MedianCost[geom.Vec](euclid, nil, nil, centers); got != 0 {
		t.Errorf("empty cost = %g", got)
	}
}

func TestMedianCostPanicsNoCenters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MedianCost[geom.Vec](euclid, []geom.Vec{{0}}, nil, nil)
}

func TestLocalSearchKMedianValidation(t *testing.T) {
	pts := []geom.Vec{{0}}
	if _, _, err := LocalSearchKMedian[geom.Vec](euclid, nil, nil, pts, 1, 10); err == nil {
		t.Error("empty points accepted")
	}
	if _, _, err := LocalSearchKMedian[geom.Vec](euclid, pts, nil, nil, 1, 10); err == nil {
		t.Error("no candidates accepted")
	}
	if _, _, err := LocalSearchKMedian[geom.Vec](euclid, pts, nil, pts, 0, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := LocalSearchKMedian[geom.Vec](euclid, pts, []float64{1, 2}, pts, 1, 10); err == nil {
		t.Error("weight length mismatch accepted")
	}
}

func TestLocalSearchKMedianTwoClusters(t *testing.T) {
	pts := []geom.Vec{{0}, {1}, {2}, {100}, {101}, {102}}
	idx, cost, err := LocalSearchKMedian[geom.Vec](euclid, pts, nil, pts, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("centers = %v", idx)
	}
	// Optimal: medians at 1 and 101, cost 2+2 = 4.
	if math.Abs(cost-4) > 1e-9 {
		t.Errorf("cost = %g, want 4", cost)
	}
}

// TestLocalSearchNearOptimal cross-checks local search against exhaustive
// candidate-subset search on small instances: within factor 5 always
// (the guarantee), and usually equal.
func TestLocalSearchNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(6)
		pts := make([]geom.Vec, n)
		for i := range pts {
			pts[i] = geom.Vec{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		}
		k := 1 + rng.Intn(2)
		_, lsCost, err := LocalSearchKMedian[geom.Vec](euclid, pts, nil, pts, k, 100)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over candidate subsets.
		best := math.Inf(1)
		var rec func(pos, from int, cur []geom.Vec)
		rec = func(pos, from int, cur []geom.Vec) {
			if pos == k {
				if c := MedianCost[geom.Vec](euclid, pts, nil, cur); c < best {
					best = c
				}
				return
			}
			for c := from; c < n; c++ {
				rec(pos+1, c+1, append(cur, pts[c]))
			}
		}
		rec(0, 0, nil)
		if lsCost > 5*best+1e-9 {
			t.Fatalf("trial %d: local search %g > 5×OPT %g", trial, lsCost, best)
		}
	}
}

func TestEMedianCostsSeparability(t *testing.T) {
	// The assigned expected median cost must equal the enumeration oracle.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		pts, err := gen.UniformBox(rng, 1+rng.Intn(4), 1+rng.Intn(3), 2, 10)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(2)
		centers := make([]geom.Vec, k)
		for i := range centers {
			centers[i] = geom.Vec{rng.Float64() * 10, rng.Float64() * 10}
		}
		assign := make([]int, len(pts))
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		fast, err := EMedianCostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil {
			t.Fatal(err)
		}
		var slow float64
		err = uncertain.ForEachRealization(pts, 1<<20, func(locs []geom.Vec, prob float64) {
			var sum float64
			for i, loc := range locs {
				sum += geom.Dist(loc, centers[assign[i]])
			}
			slow += prob * sum
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-slow) > 1e-9*(1+slow) {
			t.Fatalf("trial %d: separable %g vs enumeration %g", trial, fast, slow)
		}
		// Unassigned flavor.
		fastU, err := EMedianCostUnassigned[geom.Vec](euclid, pts, centers)
		if err != nil {
			t.Fatal(err)
		}
		var slowU float64
		err = uncertain.ForEachRealization(pts, 1<<20, func(locs []geom.Vec, prob float64) {
			var sum float64
			for _, loc := range locs {
				best := math.Inf(1)
				for _, c := range centers {
					if d := geom.Dist(loc, c); d < best {
						best = d
					}
				}
				sum += best
			}
			slowU += prob * sum
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fastU-slowU) > 1e-9*(1+slowU) {
			t.Fatalf("trial %d: unassigned %g vs enumeration %g", trial, fastU, slowU)
		}
	}
}

func TestSolveUncertainKMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, err := gen.GaussianClusters(rng, 12, 3, 2, 2, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cands := uncertain.AllLocations(pts)
	centers, assign, cost, err := SolveUncertainKMedian[geom.Vec](euclid, pts, cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 2 || len(assign) != len(pts) {
		t.Fatal("malformed result")
	}
	// Recompute cost.
	c2, err := EMedianCostAssigned[geom.Vec](euclid, pts, centers, assign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-c2) > 1e-9 {
		t.Errorf("reported %g, recomputed %g", cost, c2)
	}
	if _, _, _, err := SolveUncertainKMedian[geom.Vec](euclid, pts, nil, 2); err == nil {
		t.Error("no candidates accepted")
	}
}

func TestKMeansBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := []geom.Vec{{0, 0}, {0.2, 0}, {10, 10}, {10.2, 10}}
	res, err := KMeans(pts, nil, 2, rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect clustering: cost = 2·(0.1² + 0.1²) = 0.04.
	if res.Cost > 0.05 {
		t.Errorf("cost = %g, want ≈0.04", res.Cost)
	}
	if res.Assign[0] == res.Assign[2] {
		t.Error("far points in the same cluster")
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := []geom.Vec{{0}}
	if _, err := KMeans(nil, nil, 1, rng, 10); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := KMeans(pts, nil, 0, rng, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(pts, []float64{1, 2}, 1, rng, 10); err == nil {
		t.Error("weight mismatch accepted")
	}
	if _, err := KMeans(pts, nil, 1, nil, 10); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestVariance(t *testing.T) {
	p, err := uncertain.New([]geom.Vec{{0}, {2}}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Mean 1, Var = 0.5·1 + 0.5·1 = 1.
	if got := Variance(p); math.Abs(got-1) > 1e-12 {
		t.Errorf("Variance = %g, want 1", got)
	}
	if got := Variance(uncertain.NewDeterministic(geom.Vec{5})); got != 0 {
		t.Errorf("Variance of deterministic point = %g", got)
	}
}

// TestKMeansBiasVarianceIdentity property-tests the exact decomposition
// E‖X − c‖² = ‖P̄ − c‖² + Var against the enumeration oracle.
func TestKMeansBiasVarianceIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		pts, err := gen.UniformBox(rng, 1+rng.Intn(4), 1+rng.Intn(3), 2, 10)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(2)
		centers := make([]geom.Vec, k)
		for i := range centers {
			centers[i] = geom.Vec{rng.Float64() * 10, rng.Float64() * 10}
		}
		assign := make([]int, len(pts))
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		fast, err := EMeansCostAssigned(pts, centers, assign)
		if err != nil {
			t.Fatal(err)
		}
		var slow float64
		err = uncertain.ForEachRealization(pts, 1<<20, func(locs []geom.Vec, prob float64) {
			var sum float64
			for i, loc := range locs {
				sum += geom.DistSq(loc, centers[assign[i]])
			}
			slow += prob * sum
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-slow) > 1e-9*(1+slow) {
			t.Fatalf("trial %d: identity %g vs enumeration %g", trial, fast, slow)
		}
	}
}

func TestSolveUncertainKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts, err := gen.GaussianClusters(rng, 20, 3, 2, 2, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	centers, assign, cost, floor, err := SolveUncertainKMeans(pts, 2, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 2 || len(assign) != len(pts) {
		t.Fatal("malformed result")
	}
	if cost < floor-1e-9 {
		t.Errorf("cost %g below its variance floor %g", cost, floor)
	}
	// The reduction is exact: no alternative center set may beat the Lloyd
	// result by more than Lloyd's own local-optimality slack. Spot-check
	// random perturbations of the centers.
	for trial := 0; trial < 20; trial++ {
		pert := make([]geom.Vec, len(centers))
		for i, c := range centers {
			pert[i] = c.Clone()
			pert[i][rng.Intn(2)] += rng.NormFloat64() * 0.01
		}
		// Re-assign optimally for the perturbed centers.
		passign := make([]int, len(pts))
		bars := uncertain.ExpectedPoints(pts)
		for i, b := range bars {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range pert {
				if d := geom.DistSq(b, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			passign[i] = best
		}
		pcost, err := EMeansCostAssigned(pts, pert, passign)
		if err != nil {
			t.Fatal(err)
		}
		if pcost < cost-1e-6*(1+cost) {
			t.Fatalf("tiny perturbation improved a converged Lloyd solution: %g < %g", pcost, cost)
		}
	}
}
