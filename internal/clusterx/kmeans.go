package clusterx

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

// KMeansResult is the output of Lloyd's algorithm.
type KMeansResult struct {
	Centers []geom.Vec
	Assign  []int
	Cost    float64 // Σ w_i·‖p_i − c(p_i)‖²
	Iters   int
}

// KMeans runs weighted k-means++ seeding followed by Lloyd iterations until
// the assignment stabilizes or maxIter rounds pass. Weights may be nil.
func KMeans(pts []geom.Vec, weights []float64, k int, rng *rand.Rand, maxIter int) (KMeansResult, error) {
	return KMeansCtx(context.Background(), pts, weights, k, rng, maxIter)
}

// KMeansCtx is KMeans with cooperative cancellation: the seeding and every
// Lloyd round check ctx and abort with ctx.Err().
func KMeansCtx(ctx context.Context, pts []geom.Vec, weights []float64, k int, rng *rand.Rand, maxIter int) (KMeansResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(pts)
	if n == 0 {
		return KMeansResult{}, fmt.Errorf("clusterx: empty point set")
	}
	if k <= 0 {
		return KMeansResult{}, fmt.Errorf("clusterx: k = %d", k)
	}
	if weights != nil && len(weights) != n {
		return KMeansResult{}, fmt.Errorf("clusterx: %d weights for %d points", len(weights), n)
	}
	if rng == nil {
		return KMeansResult{}, fmt.Errorf("clusterx: nil rng")
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}

	// k-means++ seeding.
	centers := make([]geom.Vec, 0, k)
	centers = append(centers, pts[randIntn(rng, n)].Clone())
	d2 := make([]float64, n)
	for len(centers) < k {
		if err := ctx.Err(); err != nil {
			return KMeansResult{}, err
		}
		var total float64
		for i, p := range pts {
			best := math.Inf(1)
			for _, c := range centers {
				if d := geom.DistSq(p, c); d < best {
					best = d
				}
			}
			d2[i] = w(i) * best
			total += d2[i]
		}
		if total == 0 {
			centers = append(centers, pts[randIntn(rng, n)].Clone())
			continue
		}
		r := rng.Float64() * total
		pick := n - 1
		acc := 0.0
		for i := range d2 {
			acc += d2[i]
			if r < acc {
				pick = i
				break
			}
		}
		centers = append(centers, pts[pick].Clone())
	}

	assign := make([]int, n)
	var iters int
	for iters = 0; iters < maxIter; iters++ {
		if err := ctx.Err(); err != nil {
			return KMeansResult{}, err
		}
		changed := false
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := geom.DistSq(p, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iters > 0 {
			break
		}
		// Recompute weighted centroids.
		dim := pts[0].Dim()
		sums := make([]geom.Vec, len(centers))
		mass := make([]float64, len(centers))
		for c := range sums {
			sums[c] = geom.NewVec(dim)
		}
		for i, p := range pts {
			sums[assign[i]].AxpyInPlace(w(i), p)
			mass[assign[i]] += w(i)
		}
		for c := range centers {
			if mass[c] > 0 {
				centers[c] = sums[c].ScaleInPlace(1 / mass[c])
			}
		}
	}
	var cost float64
	for i, p := range pts {
		cost += w(i) * geom.DistSq(p, centers[assign[i]])
	}
	return KMeansResult{Centers: centers, Assign: assign, Cost: cost, Iters: iters}, nil
}

// Variance returns Var(P) = E‖X − P̄‖² of one uncertain Euclidean point.
func Variance(p uncertain.Point[geom.Vec]) float64 {
	bar := uncertain.ExpectedPoint(p)
	var v float64
	for j, loc := range p.Locs {
		v += p.Probs[j] * geom.DistSq(loc, bar)
	}
	return v
}

// EMeansCostAssigned returns the exact uncertain k-means cost
// E[Σ_i ‖X_i − a_i‖²] = Σ_i (‖P̄_i − a_i‖² + Var_i) — the bias–variance
// identity that makes the k-means reduction exact.
func EMeansCostAssigned(pts []uncertain.Point[geom.Vec], centers []geom.Vec, assign []int) (float64, error) {
	if len(centers) == 0 {
		return 0, fmt.Errorf("clusterx: no centers")
	}
	if len(assign) != len(pts) {
		return 0, fmt.Errorf("clusterx: assignment length %d, want %d", len(assign), len(pts))
	}
	var total float64
	for i, p := range pts {
		if err := p.Validate(); err != nil {
			return 0, fmt.Errorf("point %d: %w", i, err)
		}
		a := assign[i]
		if a < 0 || a >= len(centers) {
			return 0, fmt.Errorf("clusterx: assignment[%d] = %d out of range", i, a)
		}
		total += geom.DistSq(uncertain.ExpectedPoint(p), centers[a]) + Variance(p)
	}
	return total, nil
}

// SolveUncertainKMeans solves the uncertain k-means by the EXACT reduction:
// Lloyd's algorithm on the expected points P̄ optimizes the uncertain
// objective up to the additive constant Σ Var_i (which no center choice can
// affect). Returns centers, assignment, the exact uncertain cost, and the
// irreducible variance floor.
func SolveUncertainKMeans(pts []uncertain.Point[geom.Vec], k int, rng *rand.Rand, maxIter int) ([]geom.Vec, []int, float64, float64, error) {
	return SolveUncertainKMeansCtx(context.Background(), pts, k, rng, maxIter)
}

// SolveUncertainKMeansCtx is SolveUncertainKMeans with cooperative
// cancellation (see KMeansCtx).
func SolveUncertainKMeansCtx(ctx context.Context, pts []uncertain.Point[geom.Vec], k int, rng *rand.Rand, maxIter int) ([]geom.Vec, []int, float64, float64, error) {
	if err := uncertain.ValidateSet(pts); err != nil {
		return nil, nil, 0, 0, err
	}
	bars := uncertain.ExpectedPoints(pts)
	res, err := KMeansCtx(ctx, bars, nil, k, rng, maxIter)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	var floor float64
	for _, p := range pts {
		floor += Variance(p)
	}
	cost, err := EMeansCostAssigned(pts, res.Centers, res.Assign)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return res.Centers, res.Assign, cost, floor, nil
}
