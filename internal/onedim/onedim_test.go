package onedim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/uncertain"
)

func mk1D(t *testing.T, locs []float64, probs []float64) uncertain.Point[geom.Vec] {
	t.Helper()
	vs := make([]geom.Vec, len(locs))
	for i, x := range locs {
		vs[i] = geom.Vec{x}
	}
	p, err := uncertain.New(vs, probs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExpDistEval(t *testing.T) {
	p := mk1D(t, []float64{0, 10}, []float64{0.5, 0.5})
	f, err := newExpDist(p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0, 5}, {10, 5}, {5, 5}, {-2, 7}, {12, 7}, {2, 5},
	}
	for _, c := range cases {
		if got := f.eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("f(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if math.Abs(f.minVal-5) > 1e-12 {
		t.Errorf("minVal = %g, want 5", f.minVal)
	}
}

func TestExpDistEvalAsymmetric(t *testing.T) {
	p := mk1D(t, []float64{0, 10}, []float64{0.9, 0.1})
	f, err := newExpDist(p)
	if err != nil {
		t.Fatal(err)
	}
	// Minimizer is the heavy location (weighted median): f(0) = 1.
	if math.Abs(f.minX-0) > 1e-12 || math.Abs(f.minVal-1) > 1e-12 {
		t.Errorf("min at (%g, %g), want (0, 1)", f.minX, f.minVal)
	}
}

func TestLevelInterval(t *testing.T) {
	p := mk1D(t, []float64{0, 10}, []float64{0.5, 0.5})
	f, err := newExpDist(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := f.levelInterval(4.9); ok {
		t.Error("level below the minimum reported nonempty")
	}
	lo, hi, ok := f.levelInterval(7)
	if !ok {
		t.Fatal("level 7 reported empty")
	}
	// f(x) = 7 at x = −2 and x = 12.
	if math.Abs(lo+2) > 1e-9 || math.Abs(hi-12) > 1e-9 {
		t.Errorf("interval = [%g, %g], want [−2, 12]", lo, hi)
	}
	// At exactly the minimum the interval is the flat segment [0, 10].
	lo, hi, ok = f.levelInterval(5)
	if !ok {
		t.Fatal("level 5 reported empty")
	}
	if math.Abs(lo-0) > 1e-9 || math.Abs(hi-10) > 1e-9 {
		t.Errorf("interval = [%g, %g], want [0, 10]", lo, hi)
	}
}

func TestLevelIntervalContainsOnlyFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		z := 1 + rng.Intn(5)
		locs := make([]float64, z)
		probs := make([]float64, z)
		var sum float64
		for j := range locs {
			locs[j] = rng.NormFloat64() * 10
			probs[j] = rng.Float64() + 0.05
			sum += probs[j]
		}
		for j := range probs {
			probs[j] /= sum
		}
		p := mk1D(t, locs, probs)
		f, err := newExpDist(p)
		if err != nil {
			t.Fatal(err)
		}
		tLevel := f.minVal * (1 + rng.Float64())
		lo, hi, ok := f.levelInterval(tLevel)
		if !ok {
			t.Fatal("level above minimum reported empty")
		}
		// Endpoints sit on the level (or at breakpoints below it).
		if f.eval(lo) > tLevel+1e-9 || f.eval(hi) > tLevel+1e-9 {
			t.Fatalf("trial %d: endpoint above level: f(lo)=%g f(hi)=%g level=%g",
				trial, f.eval(lo), f.eval(hi), tLevel)
		}
		// Just outside must exceed the level.
		d := 1e-6 * (1 + math.Abs(hi-lo))
		if f.eval(lo-d) < tLevel-1e-9 || f.eval(hi+d) < tLevel-1e-9 {
			t.Fatalf("trial %d: point outside interval is feasible", trial)
		}
	}
}

func TestSolveSingleCluster(t *testing.T) {
	// Two certain points at 0 and 10 with k=1: optimal max-of-expectations
	// cost is 5 (center at the midpoint).
	pts := []uncertain.Point[geom.Vec]{
		uncertain.NewDeterministic(geom.Vec{0}),
		uncertain.NewDeterministic(geom.Vec{10}),
	}
	res, err := Solve(pts, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-5) > 1e-6 {
		t.Errorf("cost = %g, want 5", res.Cost)
	}
	if len(res.Centers) != 1 || math.Abs(res.Centers[0]-5) > 1e-6 {
		t.Errorf("centers = %v, want [5]", res.Centers)
	}
}

func TestSolveTwoClusters(t *testing.T) {
	pts := []uncertain.Point[geom.Vec]{
		uncertain.NewDeterministic(geom.Vec{0}),
		uncertain.NewDeterministic(geom.Vec{1}),
		uncertain.NewDeterministic(geom.Vec{100}),
		uncertain.NewDeterministic(geom.Vec{101}),
	}
	res, err := Solve(pts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-0.5) > 1e-6 {
		t.Errorf("cost = %g, want 0.5", res.Cost)
	}
}

func TestSolveZeroCost(t *testing.T) {
	// k ≥ distinct medians: every point has a zero-expected-distance center
	// only if it is deterministic.
	pts := []uncertain.Point[geom.Vec]{
		uncertain.NewDeterministic(geom.Vec{3}),
		uncertain.NewDeterministic(geom.Vec{7}),
	}
	res, err := Solve(pts, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Errorf("cost = %g, want 0", res.Cost)
	}
	if res.Cert.Gap != 0 {
		t.Errorf("gap = %g, want 0", res.Cert.Gap)
	}
}

func TestSolveUncertainFloor(t *testing.T) {
	// A single bimodal point with k=5: cost cannot drop below its own
	// minimum expected distance (5 for a fair 0/10 split).
	pts := []uncertain.Point[geom.Vec]{mk1D(t, []float64{0, 10}, []float64{0.5, 0.5})}
	res, err := Solve(pts, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-5) > 1e-6 {
		t.Errorf("cost = %g, want 5 (irreducible uncertainty)", res.Cost)
	}
}

func TestSolveValidation(t *testing.T) {
	pts := []uncertain.Point[geom.Vec]{uncertain.NewDeterministic(geom.Vec{0})}
	if _, err := Solve(nil, 1, 0); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Solve(pts, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	bad := []uncertain.Point[geom.Vec]{uncertain.NewDeterministic(geom.Vec{0, 0})}
	if _, err := Solve(bad, 1, 0); err == nil {
		t.Error("2D point accepted by 1D solver")
	}
}

// TestSolveMatchesGridBruteForce cross-checks the certified solver against a
// dense grid search on random small instances.
func TestSolveMatchesGridBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		z := 1 + rng.Intn(3)
		pts, err := gen.Mixture1D(rng, n, z, 2, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(2)
		res, err := Solve(pts, k, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		// Dense grid reference for the max-of-expectations objective.
		grid := denseGridOpt(t, pts, k, 400)
		// The grid optimum is an upper bound on the true optimum (restricted
		// centers); the solver must not exceed it by more than the grid
		// resolution effect, and must be ≥ its certified lower bound.
		if res.Cost > grid+1e-6*(1+grid) {
			t.Fatalf("trial %d: Solve %g worse than grid %g", trial, res.Cost, grid)
		}
		if res.Cost < res.Cert.Lower-1e-9 {
			t.Fatalf("trial %d: cost below own certificate", trial)
		}
	}
}

// denseGridOpt brute-forces max-of-expectations over grid center positions.
func denseGridOpt(t *testing.T, pts []uncertain.Point[geom.Vec], k, steps int) float64 {
	t.Helper()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		for _, l := range p.Locs {
			lo = math.Min(lo, l[0])
			hi = math.Max(hi, l[0])
		}
	}
	if lo == hi {
		return 0
	}
	grid := make([]float64, steps+1)
	for i := range grid {
		grid[i] = lo + (hi-lo)*float64(i)/float64(steps)
	}
	best := math.Inf(1)
	idx := make([]int, k)
	var rec func(pos, from int)
	rec = func(pos, from int) {
		if pos == k {
			centers := make([]float64, k)
			for i, g := range idx {
				centers[i] = grid[g]
			}
			c, err := MaxExpCost(pts, centers)
			if err != nil {
				t.Fatal(err)
			}
			if c < best {
				best = c
			}
			return
		}
		for g := from; g < len(grid); g++ {
			idx[pos] = g
			rec(pos+1, g)
		}
	}
	if k == 1 {
		for g := range grid {
			c, err := MaxExpCost(pts, []float64{grid[g]})
			if err != nil {
				t.Fatal(err)
			}
			if c < best {
				best = c
			}
		}
		return best
	}
	rec(0, 0)
	return best
}

func TestSolveEmaxCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		pts, err := gen.Mixture1D(rng, 2+rng.Intn(4), 1+rng.Intn(3), 2, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(2)
		res, err := SolveEmax(pts, k, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Centers) == 0 || len(res.Centers) > k {
			t.Fatalf("centers = %v", res.Centers)
		}
		if res.Cost < res.Cert.Lower-1e-9 {
			t.Fatalf("trial %d: Emax cost %g below its lower bound %g",
				trial, res.Cost, res.Cert.Lower)
		}
		// Reported cost must match an independent ED-assignment evaluation.
		ec, err := Ecost(pts, res.Centers)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ec-res.Cost) > 1e-6*(1+ec) {
			t.Fatalf("trial %d: reported %g, recomputed %g", trial, res.Cost, ec)
		}
	}
}

func TestSolveEmaxDegenerate(t *testing.T) {
	p := uncertain.NewDeterministic(geom.Vec{4})
	res, err := SolveEmax([]uncertain.Point[geom.Vec]{p, p}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Errorf("cost = %g, want 0", res.Cost)
	}
}

func TestEvaluatorsValidate(t *testing.T) {
	pts := []uncertain.Point[geom.Vec]{uncertain.NewDeterministic(geom.Vec{0})}
	if _, err := MaxExpCost(pts, nil); err == nil {
		t.Error("no centers accepted")
	}
	if _, err := Ecost(pts, nil); err == nil {
		t.Error("no centers accepted")
	}
}

func BenchmarkSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 100, 1000} {
		pts, err := gen.Mixture1D(rng, n, 5, 4, 1.5)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(pts, 4, 1e-9); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
