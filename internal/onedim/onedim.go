// Package onedim solves the one-dimensional uncertain k-center problem —
// the setting of Wang & Zhang (TCS 2015), which Table 1 row 8 of the paper
// builds on.
//
// Two objectives appear in this literature (DESIGN.md §6):
//
//   - max-of-expectations: max_i E d(P_i, c(P_i)). Each point's expected
//     distance f_i(x) = Σ_j p_ij·|x − P_ij| is convex piecewise linear, so
//     {x : f_i(x) ≤ t} is an interval and the decision problem "k centers
//     with cost ≤ t" is classical interval stabbing. Solve is exact up to a
//     certified bisection gap (Certificate reports it).
//   - the paper's expected-max: E[max_i d(P_i, c(P_i))]. SolveEmax runs
//     alternating minimization (ED re-assignment + convex pattern search on
//     the centers, the cost being jointly convex in the centers for a fixed
//     assignment) and certifies the result against the max-of-expectations
//     optimum, which lower-bounds it pointwise.
package onedim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// expDist is the convex piecewise-linear expected-distance function of one
// 1D uncertain point.
type expDist struct {
	xs     []float64 // sorted locations
	probs  []float64 // aligned probabilities
	prefW  []float64 // prefW[i] = Σ probs[:i]
	prefWX []float64 // prefWX[i] = Σ probs[:i]·xs[:i]
	minX   float64   // weighted median (a minimizer)
	minVal float64   // f(minX)
}

func newExpDist(p uncertain.Point[geom.Vec]) (*expDist, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	z := p.Z()
	type pair struct{ x, w float64 }
	ps := make([]pair, z)
	for j := 0; j < z; j++ {
		if p.Locs[j].Dim() != 1 {
			return nil, fmt.Errorf("onedim: location %d has dimension %d, want 1", j, p.Locs[j].Dim())
		}
		ps[j] = pair{p.Locs[j][0], p.Probs[j]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].x < ps[b].x })
	f := &expDist{
		xs:     make([]float64, z),
		probs:  make([]float64, z),
		prefW:  make([]float64, z+1),
		prefWX: make([]float64, z+1),
	}
	for j, pr := range ps {
		f.xs[j] = pr.x
		f.probs[j] = pr.w
		f.prefW[j+1] = f.prefW[j] + pr.w
		f.prefWX[j+1] = f.prefWX[j] + pr.w*pr.x
	}
	// Weighted median: smallest x with cumulative mass ≥ 1/2.
	med := f.xs[z-1]
	for j := 0; j < z; j++ {
		if f.prefW[j+1] >= 0.5 {
			med = f.xs[j]
			break
		}
	}
	f.minX = med
	f.minVal = f.eval(med)
	return f, nil
}

// eval returns f(x) = Σ p_j|x − x_j| in O(log z).
func (f *expDist) eval(x float64) float64 {
	n := len(f.xs)
	// i = count of locations ≤ x.
	i := sort.SearchFloat64s(f.xs, x)
	for i < n && f.xs[i] == x {
		i++
	}
	wLe, wxLe := f.prefW[i], f.prefWX[i]
	wGt, wxGt := f.prefW[n]-wLe, f.prefWX[n]-wxLe
	return (x*wLe - wxLe) + (wxGt - x*wGt)
}

// levelInterval returns the interval {x : f(x) ≤ t}, or ok=false when empty.
func (f *expDist) levelInterval(t float64) (lo, hi float64, ok bool) {
	if t < f.minVal {
		return 0, 0, false
	}
	n := len(f.xs)
	// Left crossing: f decreases with slope 2·prefW[i] − 1 (negative) to the
	// left of the median. Walk segments from the leftmost breakpoint.
	// For x ≤ xs[0]: f(x) = f(xs[0]) + (xs[0] − x) (slope −1 going left).
	if v0 := f.eval(f.xs[0]); v0 <= t {
		lo = f.xs[0] - (t - v0)
	} else {
		// Crossing inside a segment [xs[i], xs[i+1]].
		lo = f.minX
		for i := 0; i+1 < n; i++ {
			va, vb := f.eval(f.xs[i]), f.eval(f.xs[i+1])
			if va >= t && vb <= t {
				if va == vb {
					lo = f.xs[i]
				} else {
					lo = f.xs[i] + (va-t)/(va-vb)*(f.xs[i+1]-f.xs[i])
				}
				break
			}
		}
	}
	if vn := f.eval(f.xs[n-1]); vn <= t {
		hi = f.xs[n-1] + (t - vn)
	} else {
		hi = f.minX
		for i := n - 1; i > 0; i-- {
			va, vb := f.eval(f.xs[i-1]), f.eval(f.xs[i])
			if vb >= t && va <= t {
				if va == vb {
					hi = f.xs[i]
				} else {
					hi = f.xs[i] - (vb-t)/(vb-va)*(f.xs[i]-f.xs[i-1])
				}
				break
			}
		}
	}
	return lo, hi, true
}

// Certificate reports the bisection guarantee of Solve: Cost is feasible,
// and no solution beats Lower.
type Certificate struct {
	Lower float64 // largest cost proven infeasible (0 if Cost is 0)
	Gap   float64 // Cost − Lower
}

// Result is the output of the 1D solvers.
type Result struct {
	Centers []float64
	Cost    float64
	Cert    Certificate
}

// Solve minimizes the max-of-expectations objective
// max_i min_c E d(P_i, c) exactly up to a certified bisection gap of
// tol·scale (tol default 1e-12): binary search on the cost with an interval-
// stabbing feasibility check, O((nz + n log n)·log(1/tol)).
func Solve(pts []uncertain.Point[geom.Vec], k int, tol float64) (Result, error) {
	if err := uncertain.ValidateSet(pts); err != nil {
		return Result{}, err
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("onedim: k = %d", k)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	fs := make([]*expDist, len(pts))
	span := 0.0
	var minAll, maxAll = math.Inf(1), math.Inf(-1)
	for i, p := range pts {
		f, err := newExpDist(p)
		if err != nil {
			return Result{}, fmt.Errorf("point %d: %w", i, err)
		}
		fs[i] = f
		if f.xs[0] < minAll {
			minAll = f.xs[0]
		}
		if f.xs[len(f.xs)-1] > maxAll {
			maxAll = f.xs[len(f.xs)-1]
		}
	}
	span = maxAll - minAll

	// Lower bound: every point must pay at least its own minimum.
	lo := 0.0
	for _, f := range fs {
		if f.minVal > lo {
			lo = f.minVal
		}
	}
	if centers, ok := stab(fs, k, lo); ok {
		return Result{Centers: centers, Cost: lo, Cert: Certificate{Lower: lo, Gap: 0}}, nil
	}
	// Upper bound: one center at the global midpoint.
	hi := lo
	mid := (minAll + maxAll) / 2
	for _, f := range fs {
		if v := f.eval(mid); v > hi {
			hi = v
		}
	}
	for hi-lo > tol*(span+hi) {
		m := (lo + hi) / 2
		if _, ok := stab(fs, k, m); ok {
			hi = m
		} else {
			lo = m
		}
	}
	centers, ok := stab(fs, k, hi)
	if !ok {
		return Result{}, fmt.Errorf("onedim: internal error, certified cost infeasible")
	}
	return Result{Centers: centers, Cost: hi, Cert: Certificate{Lower: lo, Gap: hi - lo}}, nil
}

// stab decides whether k centers achieve max-of-expectations ≤ t, returning
// greedy stabbing positions (right endpoints of expiring intervals).
func stab(fs []*expDist, k int, t float64) ([]float64, bool) {
	type iv struct{ lo, hi float64 }
	ivs := make([]iv, 0, len(fs))
	for _, f := range fs {
		lo, hi, ok := f.levelInterval(t)
		if !ok {
			return nil, false
		}
		ivs = append(ivs, iv{lo, hi})
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].hi < ivs[b].hi })
	var centers []float64
	cur := math.Inf(-1)
	for _, v := range ivs {
		if v.lo <= cur {
			continue // already stabbed
		}
		if len(centers) == k {
			return nil, false
		}
		cur = v.hi
		centers = append(centers, cur)
	}
	if len(centers) == 0 {
		centers = append(centers, ivs[0].hi)
	}
	return centers, true
}

// SolveEmax minimizes the paper's E[max] objective for 1D instances with the
// ED assignment: alternating minimization between ED re-assignment and
// pattern search on the (jointly convex, for fixed assignment) center
// positions, seeded by the exact max-of-expectations solution. The returned
// Certificate's Lower is the max-of-expectations optimum, a true lower bound
// on the E[max] optimum (maxE ≤ Emax pointwise, minimized over the same
// space).
func SolveEmax(pts []uncertain.Point[geom.Vec], k int, tol float64) (Result, error) {
	seed, err := Solve(pts, k, tol)
	if err != nil {
		return Result{}, err
	}
	if tol <= 0 {
		tol = 1e-9
	}
	space := metricspace.Euclidean{}
	centers := toVecs(seed.Centers)
	for len(centers) < k {
		centers = append(centers, centers[len(centers)-1].Clone())
	}

	all := uncertain.AllLocations(pts)
	bbox := geom.BoundingBox(all)
	span := bbox.Diameter()
	if span == 0 {
		cost, err := core.EcostUnassigned[geom.Vec](space, pts, centers)
		if err != nil {
			return Result{}, err
		}
		return Result{Centers: fromVecs(centers), Cost: cost,
			Cert: Certificate{Lower: seed.Cost, Gap: cost - seed.Cost}}, nil
	}

	cost := math.Inf(1)
	for round := 0; round < 60; round++ {
		assign, err := core.AssignED[geom.Vec](space, pts, centers)
		if err != nil {
			return Result{}, err
		}
		newCenters, newCost, err := optimizeCenters1D(space, pts, centers, assign, span, tol)
		if err != nil {
			return Result{}, err
		}
		if newCost >= cost-tol*(1+cost) {
			break
		}
		centers, cost = newCenters, newCost
	}
	if math.IsInf(cost, 1) {
		assign, err := core.AssignED[geom.Vec](space, pts, centers)
		if err != nil {
			return Result{}, err
		}
		cost, err = core.EcostAssigned[geom.Vec](space, pts, centers, assign)
		if err != nil {
			return Result{}, err
		}
	}
	return Result{
		Centers: fromVecs(centers),
		Cost:    cost,
		Cert:    Certificate{Lower: seed.Cost, Gap: cost - seed.Cost},
	}, nil
}

// optimizeCenters1D pattern-searches the k center coordinates jointly for a
// fixed assignment (the objective is convex in the centers).
func optimizeCenters1D(space metricspace.Space[geom.Vec], pts []uncertain.Point[geom.Vec], centers []geom.Vec, assign []int, span, tol float64) ([]geom.Vec, float64, error) {
	cur := make([]geom.Vec, len(centers))
	for i, c := range centers {
		cur[i] = c.Clone()
	}
	curCost, err := core.EcostAssigned(space, pts, cur, assign)
	if err != nil {
		return nil, 0, err
	}
	step := span / 4
	for step > tol*span {
		improved := false
		for ci := range cur {
			for _, s := range []float64{step, -step} {
				cand := make([]geom.Vec, len(cur))
				for i, c := range cur {
					cand[i] = c.Clone()
				}
				cand[ci][0] += s
				c, err := core.EcostAssigned(space, pts, cand, assign)
				if err != nil {
					return nil, 0, err
				}
				if c < curCost-1e-15*(1+curCost) {
					cur, curCost = cand, c
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return cur, curCost, nil
}

func toVecs(xs []float64) []geom.Vec {
	out := make([]geom.Vec, len(xs))
	for i, x := range xs {
		out[i] = geom.Vec{x}
	}
	return out
}

func fromVecs(vs []geom.Vec) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v[0]
	}
	return out
}

// MaxExpCost evaluates the max-of-expectations objective of a 1D center set
// (each point takes its best center).
func MaxExpCost(pts []uncertain.Point[geom.Vec], centers []float64) (float64, error) {
	if len(centers) == 0 {
		return 0, fmt.Errorf("onedim: no centers")
	}
	return core.MaxExpCostUnassigned[geom.Vec](metricspace.Euclidean{}, pts, toVecs(centers))
}

// Ecost evaluates the paper's E[max] objective of a 1D center set under the
// ED assignment.
func Ecost(pts []uncertain.Point[geom.Vec], centers []float64) (float64, error) {
	if len(centers) == 0 {
		return 0, fmt.Errorf("onedim: no centers")
	}
	space := metricspace.Euclidean{}
	vecs := toVecs(centers)
	assign, err := core.AssignED[geom.Vec](space, pts, vecs)
	if err != nil {
		return 0, err
	}
	return core.EcostAssigned[geom.Vec](space, pts, vecs, assign)
}
