package sebo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randomCloud(rng *rand.Rand, n, d int) []geom.Vec {
	pts := make([]geom.Vec, n)
	for i := range pts {
		pts[i] = geom.NewVec(d)
		for j := 0; j < d; j++ {
			pts[i][j] = rng.NormFloat64() * 3
		}
	}
	return pts
}

func TestMEBSinglePoint(t *testing.T) {
	c, r := MEB([]geom.Vec{{1, 2}}, 0.1)
	if !c.Equal(geom.Vec{1, 2}, 1e-9) || r != 0 {
		t.Errorf("MEB of single point = %v, r=%g", c, r)
	}
}

func TestMEBTwoPoints(t *testing.T) {
	// Optimal ball of two points: midpoint, radius half the distance.
	c, r := MEB([]geom.Vec{{0, 0}, {2, 0}}, 0.01)
	if math.Abs(r-1) > 0.02 {
		t.Errorf("radius = %g, want ≈1 (within 1%%)", r)
	}
	if geom.Dist(c, geom.Vec{1, 0}) > 0.05 {
		t.Errorf("center = %v, want ≈(1,0)", c)
	}
}

func TestMEBApproximationGuarantee(t *testing.T) {
	// Against a brute-force reference: for points on a known circle the
	// optimal radius is the circle radius.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(30)
		pts := make([]geom.Vec, n)
		for i := range pts {
			theta := rng.Float64() * 2 * math.Pi
			pts[i] = geom.Vec{5 * math.Cos(theta), 5 * math.Sin(theta)}
		}
		// Ensure the circle is "full" so OPT = 5: add antipodal pairs.
		pts = append(pts, geom.Vec{5, 0}, geom.Vec{-5, 0}, geom.Vec{0, 5}, geom.Vec{0, -5})
		eps := 0.05
		_, r := MEB(pts, eps)
		if r > 5*(1+eps)+1e-9 {
			t.Fatalf("trial %d: radius %g exceeds (1+ε)·OPT = %g", trial, r, 5*(1+eps))
		}
		if r < 5-1e-9 {
			t.Fatalf("trial %d: radius %g below OPT 5 — Radius computation broken", trial, r)
		}
	}
}

func TestMEBHighDim(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomCloud(rng, 50, 16)
	c, r := MEB(pts, 0.1)
	if !c.IsFinite() {
		t.Fatal("non-finite center")
	}
	// Any point is a weak upper-bound anchor: r ≤ diameter.
	diam := geom.BoundingBox(pts).Diameter()
	if r > diam {
		t.Errorf("radius %g exceeds bbox diameter %g", r, diam)
	}
	// And r must be at least half the max pairwise distance.
	var maxPair float64
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := geom.Dist(pts[i], pts[j]); d > maxPair {
				maxPair = d
			}
		}
	}
	if r < maxPair/2-1e-9 {
		t.Errorf("radius %g below diameter/2 = %g", r, maxPair/2)
	}
}

func TestMEBPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":   func() { MEB(nil, 0.1) },
		"bad eps": func() { MEB([]geom.Vec{{0}}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRadius(t *testing.T) {
	pts := []geom.Vec{{0, 0}, {3, 4}}
	if got := Radius(pts, geom.Vec{0, 0}); got != 5 {
		t.Errorf("Radius = %g, want 5", got)
	}
	if got := Radius(nil, geom.Vec{0, 0}); got != 0 {
		t.Errorf("Radius of empty = %g, want 0", got)
	}
}

func TestGeometricMedianSingle(t *testing.T) {
	m := GeometricMedian([]geom.Vec{{3, 7}}, []float64{2}, MedianOptions{})
	if !m.Equal(geom.Vec{3, 7}, 1e-9) {
		t.Errorf("median of single point = %v", m)
	}
}

func TestGeometricMedianCollinear(t *testing.T) {
	// Unweighted median of {0, 1, 10} on a line is the middle point (1D
	// Fermat–Weber = median).
	pts := []geom.Vec{{0}, {1}, {10}}
	w := []float64{1, 1, 1}
	m := GeometricMedian(pts, w, MedianOptions{})
	if math.Abs(m[0]-1) > 1e-6 {
		t.Errorf("median = %v, want ≈(1)", m)
	}
}

func TestGeometricMedianWeightDominance(t *testing.T) {
	// A point holding the majority of the weight is the exact median.
	pts := []geom.Vec{{0, 0}, {1, 0}, {0, 1}}
	w := []float64{10, 1, 1}
	m := GeometricMedian(pts, w, MedianOptions{})
	if !m.Equal(geom.Vec{0, 0}, 1e-6) {
		t.Errorf("median = %v, want (0,0) by weight dominance", m)
	}
}

func TestGeometricMedianEquilateral(t *testing.T) {
	// The unweighted Fermat point of an equilateral triangle is its centroid.
	pts := []geom.Vec{{0, 0}, {1, 0}, {0.5, math.Sqrt(3) / 2}}
	w := []float64{1, 1, 1}
	m := GeometricMedian(pts, w, MedianOptions{})
	want := geom.Mean(pts)
	if !m.Equal(want, 1e-6) {
		t.Errorf("median = %v, want centroid %v", m, want)
	}
}

func TestGeometricMedianOptimality(t *testing.T) {
	// Property: the returned point beats random perturbations of itself.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		d := 1 + rng.Intn(4)
		pts := randomCloud(rng, n, d)
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.1 + rng.Float64()
		}
		m := GeometricMedian(pts, w, MedianOptions{})
		base := FermatWeberCost(pts, w, m)
		for p := 0; p < 20; p++ {
			pert := m.Clone()
			pert[rng.Intn(d)] += (rng.Float64() - 0.5) * 0.2
			if FermatWeberCost(pts, w, pert) < base-1e-6*(1+base) {
				t.Fatalf("trial %d: perturbation improved cost %g → %g",
					trial, base, FermatWeberCost(pts, w, pert))
			}
		}
	}
}

func TestGeometricMedianCoincidentPoints(t *testing.T) {
	// All points identical: the median is that point.
	pts := []geom.Vec{{2, 2}, {2, 2}, {2, 2}}
	m := GeometricMedian(pts, []float64{1, 1, 1}, MedianOptions{})
	if !m.Equal(geom.Vec{2, 2}, 1e-9) {
		t.Errorf("median = %v, want (2,2)", m)
	}
}

func TestGeometricMedianPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":           func() { GeometricMedian(nil, nil, MedianOptions{}) },
		"length mismatch": func() { GeometricMedian([]geom.Vec{{0}}, []float64{1, 2}, MedianOptions{}) },
		"zero weight":     func() { GeometricMedian([]geom.Vec{{0}, {1}}, []float64{0, 1}, MedianOptions{}) },
		"negative weight": func() { GeometricMedian([]geom.Vec{{0}, {1}}, []float64{-1, 1}, MedianOptions{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFermatWeberCost(t *testing.T) {
	pts := []geom.Vec{{0, 0}, {3, 4}}
	got := FermatWeberCost(pts, []float64{2, 1}, geom.Vec{0, 0})
	if math.Abs(got-5) > 1e-12 {
		t.Errorf("cost = %g, want 5", got)
	}
}

func BenchmarkMEB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomCloud(rng, 1000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MEB(pts, 0.1)
	}
}

func BenchmarkGeometricMedian(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomCloud(rng, 100, 4)
	w := make([]float64, len(pts))
	for i := range w {
		w[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GeometricMedian(pts, w, MedianOptions{})
	}
}
