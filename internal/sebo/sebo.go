// Package sebo implements the two single-point optimization primitives the
// paper's surrogate construction needs in Euclidean space:
//
//   - the (1+ε)-approximate minimum enclosing ball (Badoiu–Clarkson core-set
//     iteration), used as the certain 1-center reference and inside the
//     deterministic k-center solvers, and
//   - the weighted geometric median (Weiszfeld iteration with the
//     Vardi–Zhang fix for iterates landing on data points), which is exactly
//     the paper's 1-center surrogate P̃ of a single uncertain point in
//     Euclidean space: the minimizer of Σ_j p_j · d(P_j, q).
//
// Both work in arbitrary dimension and use only the standard library.
package sebo

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// MEB returns a center whose enclosing radius is at most (1+eps) times the
// optimal minimum enclosing ball radius of pts, via the Badoiu–Clarkson
// iteration (c ← c + (farthest − c)/(i+1), ⌈1/eps²⌉ rounds). It also returns
// the exact radius of the returned center. It panics if pts is empty or
// eps ≤ 0.
func MEB(pts []geom.Vec, eps float64) (geom.Vec, float64) {
	if len(pts) == 0 {
		panic("sebo: MEB of empty point set")
	}
	if !(eps > 0) {
		panic(fmt.Sprintf("sebo: MEB with eps = %g", eps))
	}
	c := pts[0].Clone()
	rounds := int(math.Ceil(1/(eps*eps))) + 1
	for i := 1; i <= rounds; i++ {
		far := farthest(pts, c)
		c.AxpyInPlace(1/float64(i+1), pts[far].Sub(c))
	}
	return c, Radius(pts, c)
}

// Radius returns max_p d(p, c), the enclosing radius of c over pts
// (0 for an empty set).
func Radius(pts []geom.Vec, c geom.Vec) float64 {
	var r float64
	for _, p := range pts {
		if d := geom.Dist(p, c); d > r {
			r = d
		}
	}
	return r
}

func farthest(pts []geom.Vec, c geom.Vec) int {
	best, bestD := 0, -1.0
	for i, p := range pts {
		if d := geom.DistSq(p, c); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// MedianOptions controls the Weiszfeld iteration.
type MedianOptions struct {
	// Tol is the movement threshold that terminates the iteration.
	// Defaults to 1e-10 (relative to the point-set scale).
	Tol float64
	// MaxIter bounds the number of iterations. Defaults to 1000.
	MaxIter int
}

func (o MedianOptions) withDefaults() MedianOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	return o
}

// GeometricMedian minimizes f(q) = Σ wᵢ·‖ptsᵢ − q‖ (the weighted Fermat–Weber
// objective) with the Weiszfeld iteration. Weights must be positive; the
// slices must have equal nonzero length. It panics on invalid input, matching
// the package's construction-time contract.
//
// When an iterate coincides with a data point the Vardi–Zhang (2000) rule is
// applied: the point either is the optimum (its weight dominates the pull of
// the others) or the iterate steps off it in the pull direction.
func GeometricMedian(pts []geom.Vec, weights []float64, opts MedianOptions) geom.Vec {
	if len(pts) == 0 {
		panic("sebo: GeometricMedian of empty point set")
	}
	if len(pts) != len(weights) {
		panic(fmt.Sprintf("sebo: %d points, %d weights", len(pts), len(weights)))
	}
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("sebo: weight %d = %g is not positive and finite", i, w))
		}
	}
	opts = opts.withDefaults()

	if len(pts) == 1 {
		return pts[0].Clone()
	}
	scale := geom.BoundingBox(pts).Diameter()
	if scale == 0 {
		return pts[0].Clone() // all points coincide
	}
	snapTol := 1e-12 * scale

	// Start from the weighted mean — a good interior initial iterate.
	q := geom.WeightedMean(pts, weights)
	for iter := 0; iter < opts.MaxIter; iter++ {
		num := geom.NewVec(q.Dim())
		var den float64
		coincident := -1
		for i, p := range pts {
			d := geom.Dist(p, q)
			if d <= snapTol {
				coincident = i
				continue
			}
			num.AxpyInPlace(weights[i]/d, p)
			den += weights[i] / d
		}
		var next geom.Vec
		if coincident >= 0 {
			// Vardi–Zhang: R is the pull of the non-coincident points at q.
			r := geom.NewVec(q.Dim())
			for i, p := range pts {
				if i == coincident {
					continue
				}
				d := geom.Dist(p, q)
				if d <= snapTol {
					continue
				}
				r.AxpyInPlace(weights[i]/d, p.Sub(q))
			}
			rnorm := r.Norm()
			w := weights[coincident]
			if rnorm <= w {
				return q // q is optimal: subgradient contains 0
			}
			if den == 0 {
				return q
			}
			t := math.Min(1, (rnorm-w)/ /* residual pull */ rnorm)
			tilde := num.Scale(1 / den)
			next = q.Lerp(tilde, t)
		} else {
			if den == 0 {
				return q
			}
			next = num.Scale(1 / den)
		}
		if geom.Dist(next, q) <= opts.Tol*scale {
			return next
		}
		q = next
	}
	return q
}

// FermatWeberCost evaluates the weighted Fermat–Weber objective
// Σ wᵢ·‖ptsᵢ − q‖ at q.
func FermatWeberCost(pts []geom.Vec, weights []float64, q geom.Vec) float64 {
	var s float64
	for i, p := range pts {
		s += weights[i] * geom.Dist(p, q)
	}
	return s
}
