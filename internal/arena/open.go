package arena

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"unsafe"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
	"repro/obs"
)

// Options controls Open.
type Options struct {
	// NoMmap forces the portable heap-read backend even where mmap is
	// available (the alloc-count and fuzz tests exercise both).
	NoMmap bool
	// SkipChecksum skips the payload CRC pass (the header CRC is always
	// verified). The structural and semantic validation still runs; use
	// only where the file is trusted and open latency matters more than
	// bit-rot detection.
	SkipChecksum bool
}

// File is an opened snapshot: the validated bytes (mapped or heap-held)
// plus the compiled instance whose arena aliases them. Keep the File alive
// — and unclosed — for as long as the instance is in use.
type File struct {
	kind   int
	size   int64
	data   []byte
	mapped bool

	eu  *core.Compiled[geom.Vec]
	fin *core.Compiled[int]

	closeOnce sync.Once
	closeErr  error
}

// Open validates the snapshot at path and reconstructs its compiled
// instance zero-copy: the arena columns alias the file bytes directly
// (mapped on platforms with mmap support, a word-aligned heap buffer
// otherwise), so open cost is O(validate) — no per-atom decode, no
// recompile. Every rejection wraps one of the typed errors (ErrMagic,
// ErrVersion, ErrEndianness, ErrTruncated, ErrChecksum, ErrLayout,
// ErrCorrupt).
func Open(ctx context.Context, path string, o Options) (*File, error) {
	sp := obs.StartSpan(obs.FromContext(ctx), "store.open")
	osf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer osf.Close()
	st, err := osf.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, size, headerSize)
	}
	if uint64(size) > uint64(math.MaxInt) {
		return nil, fmt.Errorf("%w: %d bytes exceeds the address space", ErrLayout, size)
	}
	data, isMapped, err := loadBytes(osf, size, o.NoMmap)
	if err != nil {
		return nil, err
	}
	f := &File{size: size, data: data, mapped: isMapped}
	ok := false
	defer func() {
		if !ok {
			f.release()
		}
	}()

	h, payloadCRC, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	if err := checkHeader(h); err != nil {
		return nil, err
	}
	stored := h.sec
	total, err := h.layout()
	if err != nil {
		return nil, err
	}
	if stored != h.sec {
		return nil, fmt.Errorf("%w: stored section table differs from the canonical layout", ErrLayout)
	}
	if uint64(size) != total {
		if uint64(size) < total {
			return nil, fmt.Errorf("%w: %d bytes, layout needs %d", ErrTruncated, size, total)
		}
		return nil, fmt.Errorf("%w: %d trailing bytes after the layout's %d", ErrLayout, uint64(size)-total, total)
	}
	if !o.SkipChecksum {
		if got := crc32.Checksum(data[headerSize:], castagnoli); got != payloadCRC {
			return nil, fmt.Errorf("%w: payload CRC %08x, want %08x", ErrChecksum, got, payloadCRC)
		}
	}
	f.kind = int(h.kind)
	switch h.kind {
	case KindEuclidean:
		err = f.buildEuclidean(h)
	default:
		err = f.buildFinite(h)
	}
	if err != nil {
		return nil, err
	}
	if isMapped {
		mapped.Add(size)
	}
	ok = true
	sp.Int("kind", f.kind)
	sp.Int("points", int(h.n))
	sp.Int("atoms", int(h.atoms))
	sp.Int64("bytes", size)
	sp.Int("mmap", boolInt(isMapped))
	sp.End()
	return f, nil
}

// Kind returns KindEuclidean or KindFinite.
func (f *File) Kind() int { return f.kind }

// KindName returns the dataset-kind string ("euclidean" / "finite"),
// matching internal/dataio's vocabulary.
func (f *File) KindName() string {
	if f.kind == KindEuclidean {
		return "euclidean"
	}
	return "finite"
}

// Size returns the snapshot file size in bytes — the resident cost of the
// arena while the File is open.
func (f *File) Size() int64 { return f.size }

// Mapped reports whether the bytes are mmap'd (versus heap-held).
func (f *File) Mapped() bool { return f.mapped }

// Euclidean returns the compiled Euclidean instance; it errors on a
// finite-kind snapshot.
func (f *File) Euclidean() (*core.Compiled[geom.Vec], error) {
	if f.eu == nil {
		return nil, fmt.Errorf("arena: snapshot kind is %s, not euclidean", f.KindName())
	}
	return f.eu, nil
}

// Finite returns the compiled finite-metric instance; it errors on a
// euclidean-kind snapshot.
func (f *File) Finite() (*core.Compiled[int], error) {
	if f.fin == nil {
		return nil, fmt.Errorf("arena: snapshot kind is %s, not finite", f.KindName())
	}
	return f.fin, nil
}

// Close releases the mapping (or heap reference). The compiled instance's
// arena aliases the mapped region, so Close must only be called once no
// instance returned by this File can be used again; long-lived servers
// simply keep snapshots open for the process lifetime. Idempotent.
func (f *File) Close() error {
	f.closeOnce.Do(func() {
		if f.mapped {
			mapped.Add(-f.size)
		}
		f.closeErr = f.release()
		f.eu, f.fin = nil, nil
	})
	return f.closeErr
}

// release frees the byte backing without touching the gauge (Open's error
// path runs before the gauge is bumped).
func (f *File) release() error {
	data := f.data
	f.data = nil
	if !f.mapped || data == nil {
		return nil
	}
	return unmapFile(data)
}

// loadBytes materializes the file's bytes: mmap where supported (unless
// disabled), otherwise a read into a word-aligned heap buffer — alignment
// the zero-copy reinterpretation requires and a plain []byte allocation
// does not guarantee.
func loadBytes(f *os.File, size int64, noMmap bool) (data []byte, isMapped bool, err error) {
	if !noMmap && mmapSupported {
		if data, err = mapFile(f, size); err == nil {
			return data, true, nil
		}
		// Fall through to the portable read on any mapping failure.
	}
	words := make([]uint64, (size+7)/8)
	data = unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(f, data); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return nil, false, fmt.Errorf("%w: file shrank while reading", ErrTruncated)
		}
		return nil, false, err
	}
	return data, false, nil
}

// checkHeader validates the header's counts and flags against the format's
// semantic invariants before any layout or column work trusts them.
func checkHeader(h *header) error {
	if h.kind != KindEuclidean && h.kind != KindFinite {
		return fmt.Errorf("%w: unknown kind %d", ErrCorrupt, h.kind)
	}
	if h.flags&^uint32(flagCands|flagAllLocsInline) != 0 {
		return fmt.Errorf("%w: unknown flag bits %#x", ErrCorrupt, h.flags)
	}
	for _, c := range [...]struct {
		name string
		v    uint64
	}{{"n", h.n}, {"atoms", h.atoms}, {"dim", h.dim}, {"maxZ", h.maxZ},
		{"nCands", h.nCands}, {"nAll", h.nAll}, {"spaceN", h.spaceN}} {
		if c.v > uint64(math.MaxInt)/8 {
			return fmt.Errorf("%w: %s = %d is not addressable", ErrCorrupt, c.name, c.v)
		}
	}
	if h.n < 1 {
		return fmt.Errorf("%w: zero points", ErrCorrupt)
	}
	if h.atoms < h.n {
		return fmt.Errorf("%w: %d atoms over %d points", ErrCorrupt, h.atoms, h.n)
	}
	if h.maxZ < 1 || h.maxZ > h.atoms {
		return fmt.Errorf("%w: maxZ = %d with %d atoms", ErrCorrupt, h.maxZ, h.atoms)
	}
	if h.flags&flagCands == 0 && h.nCands != 0 {
		return fmt.Errorf("%w: nCands = %d without the candidate flag", ErrCorrupt, h.nCands)
	}
	if h.flags&flagCands != 0 && h.nCands < 1 {
		return fmt.Errorf("%w: candidate flag with zero candidates", ErrCorrupt)
	}
	if h.flags&flagAllLocsInline != 0 && h.nAll != 0 {
		return fmt.Errorf("%w: nAll = %d with the inline flag", ErrCorrupt, h.nAll)
	}
	if h.flags&flagAllLocsInline == 0 && h.nAll < h.atoms {
		return fmt.Errorf("%w: nAll = %d below the %d-atom arena", ErrCorrupt, h.nAll, h.atoms)
	}
	switch h.kind {
	case KindEuclidean:
		if h.dim < 1 {
			return fmt.Errorf("%w: euclidean snapshot with dimension %d", ErrCorrupt, h.dim)
		}
		if h.spaceN != 0 {
			return fmt.Errorf("%w: euclidean snapshot with spaceN = %d", ErrCorrupt, h.spaceN)
		}
	case KindFinite:
		if h.dim != 0 {
			return fmt.Errorf("%w: finite snapshot with dimension %d", ErrCorrupt, h.dim)
		}
		if h.spaceN < 1 {
			return fmt.Errorf("%w: finite snapshot with no vertices", ErrCorrupt)
		}
	}
	return nil
}

// sectionBytes returns the section's raw bytes.
func (f *File) sectionBytes(h *header, sec int) []byte {
	s := h.sec[sec]
	return f.data[s.off : s.off+s.len : s.off+s.len]
}

// sharedColumns aliases and validates the kind-independent columns
// (probs, offsets, ptIdx): offsets strictly increasing from 0 to atoms
// with maxZ exact, ptIdx the inverse of offsets, probs positive, finite
// and summing to 1 per point within uncertain's tolerance.
func (f *File) sharedColumns(h *header) (probs []float64, offsets, ptIdx []int32, err error) {
	atoms, n := int(h.atoms), int(h.n)
	if probs, err = f64s(f.sectionBytes(h, secProbs), atoms, "probs"); err != nil {
		return nil, nil, nil, err
	}
	if offsets, err = i32s(f.sectionBytes(h, secOffsets), n+1, "offsets"); err != nil {
		return nil, nil, nil, err
	}
	if ptIdx, err = i32s(f.sectionBytes(h, secPtIdx), atoms, "ptIdx"); err != nil {
		return nil, nil, nil, err
	}
	if offsets[0] != 0 || int(offsets[n]) != atoms {
		return nil, nil, nil, fmt.Errorf("%w: offsets span [%d,%d], want [0,%d]", ErrCorrupt, offsets[0], offsets[n], atoms)
	}
	maxZ := 0
	for i := 0; i < n; i++ {
		if offsets[i] >= offsets[i+1] {
			return nil, nil, nil, fmt.Errorf("%w: offsets not strictly increasing at point %d", ErrCorrupt, i)
		}
		if z := int(offsets[i+1] - offsets[i]); z > maxZ {
			maxZ = z
		}
		sum := 0.0
		for a := offsets[i]; a < offsets[i+1]; a++ {
			if ptIdx[a] != int32(i) {
				return nil, nil, nil, fmt.Errorf("%w: ptIdx[%d] = %d inside point %d", ErrCorrupt, a, ptIdx[a], i)
			}
			p := probs[a]
			if !(p > 0) || p > 1 || math.IsInf(p, 0) || math.IsNaN(p) {
				return nil, nil, nil, fmt.Errorf("%w: probability %v at atom %d", ErrCorrupt, p, a)
			}
			sum += p
		}
		if math.Abs(sum-1) > uncertain.ProbSumTol {
			return nil, nil, nil, fmt.Errorf("%w: point %d probabilities sum to %v", ErrCorrupt, i, sum)
		}
	}
	if maxZ != int(h.maxZ) {
		return nil, nil, nil, fmt.Errorf("%w: header maxZ %d, columns say %d", ErrCorrupt, h.maxZ, maxZ)
	}
	return probs, offsets, ptIdx, nil
}

// buildEuclidean assembles the Euclidean instance: the flat coordinate
// column is aliased once and vector headers are sliced into it — a
// constant number of allocations regardless of atom count.
func (f *File) buildEuclidean(h *header) error {
	probs, offsets, ptIdx, err := f.sharedColumns(h)
	if err != nil {
		return err
	}
	dim := int(h.dim)
	locs, err := f.vecColumn(h, secLocs, int(h.atoms), dim, "locs")
	if err != nil {
		return err
	}
	allLocs := locs
	if h.flags&flagAllLocsInline == 0 {
		if allLocs, err = f.vecColumn(h, secAllLocs, int(h.nAll), dim, "allLocs"); err != nil {
			return err
		}
	}
	var cands []geom.Vec
	if h.flags&flagCands != 0 {
		if cands, err = f.vecColumn(h, secCands, int(h.nCands), dim, "cands"); err != nil {
			return err
		}
	}
	c, err := core.FromArena[geom.Vec](metricspace.Euclidean{}, locs, probs, offsets, ptIdx, allLocs, cands, dim, int(h.maxZ))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	f.eu = c
	return nil
}

// vecColumn aliases a coordinate section as count dim-dimensional vectors,
// rejecting non-finite coordinates.
func (f *File) vecColumn(h *header, sec, count, dim int, what string) ([]geom.Vec, error) {
	coords, err := f64s(f.sectionBytes(h, sec), count*dim, what)
	if err != nil {
		return nil, err
	}
	for i, x := range coords {
		if math.IsInf(x, 0) || math.IsNaN(x) {
			return nil, fmt.Errorf("%w: non-finite coordinate %v in %s row %d", ErrCorrupt, x, what, i/dim)
		}
	}
	out := make([]geom.Vec, count)
	for i := range out {
		out[i] = geom.Vec(coords[i*dim : (i+1)*dim : (i+1)*dim])
	}
	return out, nil
}

// buildFinite assembles the finite-metric instance: vertex columns are
// aliased in place on 64-bit hosts, and the distance matrix is validated
// by metricspace.NewFinite over row views into the mapped bytes.
func (f *File) buildFinite(h *header) error {
	probs, offsets, ptIdx, err := f.sharedColumns(h)
	if err != nil {
		return err
	}
	spaceN := int(h.spaceN)
	locs, err := f.vertexColumn(h, secLocs, int(h.atoms), spaceN, "locs")
	if err != nil {
		return err
	}
	allLocs := locs
	if h.flags&flagAllLocsInline == 0 {
		if allLocs, err = f.vertexColumn(h, secAllLocs, int(h.nAll), spaceN, "allLocs"); err != nil {
			return err
		}
	}
	var cands []int
	if h.flags&flagCands != 0 {
		if cands, err = f.vertexColumn(h, secCands, int(h.nCands), spaceN, "cands"); err != nil {
			return err
		}
	}
	matrix, err := f64s(f.sectionBytes(h, secMetric), spaceN*spaceN, "metric")
	if err != nil {
		return err
	}
	rows := make([][]float64, spaceN)
	for i := range rows {
		rows[i] = matrix[i*spaceN : (i+1)*spaceN : (i+1)*spaceN]
	}
	space, err := metricspace.NewFinite(rows)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	c, err := core.FromArena[int](space, locs, probs, offsets, ptIdx, allLocs, cands, 0, int(h.maxZ))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	f.fin = c
	return nil
}

// vertexColumn aliases an int64 vertex section as []int — in place on
// 64-bit hosts (int and int64 share layout), copy-converted on 32-bit —
// rejecting vertices outside [0, spaceN).
func (f *File) vertexColumn(h *header, sec, count, spaceN int, what string) ([]int, error) {
	vals, err := i64s(f.sectionBytes(h, sec), count, what)
	if err != nil {
		return nil, err
	}
	for i, v := range vals {
		if v < 0 || v >= int64(spaceN) {
			return nil, fmt.Errorf("%w: %s[%d] = %d outside the %d-vertex space", ErrCorrupt, what, i, v, spaceN)
		}
	}
	if strconv.IntSize == 64 {
		if count == 0 {
			return nil, nil
		}
		return unsafe.Slice((*int)(unsafe.Pointer(&vals[0])), count), nil
	}
	out := make([]int, count)
	for i, v := range vals {
		out[i] = int(v)
	}
	return out, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
