// Package arena is the binary snapshot codec behind the public store
// package: a versioned on-disk format that maps 1:1 onto the compiled
// instance arena (internal/core.Compiled), so opening a snapshot is a
// bounds/CRC validation plus slice reinterpretation — no per-atom decode,
// no recompilation.
//
// # File layout (version 1, little-endian)
//
//	offset  size  field
//	0       8     magic "UKCSNAP\0"
//	8       4     version (uint32, currently 1)
//	12      4     endianness marker (uint32 0x0A0B0C0D, written natively)
//	16      4     kind (1 = euclidean, 2 = finite)
//	20      4     flags (bit 0: explicit candidate set present;
//	              bit 1: allLocs aliases the locs column — nothing pruned)
//	24      8     n       — number of uncertain points
//	32      8     atoms   — N = Σ_i z_i after zero-probability pruning
//	40      8     dim     — coordinate dimension (euclidean; 0 for finite)
//	48      8     maxZ    — max support size over the pruned points
//	56      8     nCands  — explicit candidate count (0 without bit 0)
//	64      8     nAll    — allLocs count (0 with bit 1 set)
//	72      8     spaceN  — finite-space vertex count (0 for euclidean)
//	80      128   section table: 8 × (offset uint64, length uint64)
//	208     4     payload CRC-32C over file[216:]
//	212     4     header CRC-32C over file[0:212]
//	216     ...   payload: the sections, each 8-byte aligned
//
// Sections, in file order: locs, probs, offsets, ptIdx, allLocs, cands,
// metric, reserved. Column encodings: locations are float64 coordinate
// rows (euclidean, atoms×dim) or int64 vertex indices (finite); probs is
// float64[atoms]; offsets is int32[n+1]; ptIdx is int32[atoms]; allLocs
// and cands use the location encoding; metric is the finite space's
// float64[spaceN][spaceN] distance matrix. Sections are padded to 8-byte
// boundaries (the recorded length is the unpadded data length), so every
// column can be reinterpreted in place on any 64-bit platform. The
// reserved section is empty in version 1; freezing the memoized surrogate
// columns is the planned use, and occupying it bumps the version.
//
// The section table is redundant — the layout is fully determined by the
// header counts — and the decoder exploits that: it recomputes the
// expected table and requires byte equality, so no crafted table can make
// two sections overlap or escape the file.
//
// The format is little-endian only (every supported platform is);
// big-endian hosts are rejected at both ends with ErrEndianness rather
// than silently reinterpreting foreign bytes.
package arena

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
	"unsafe"

	"repro/obs"
)

// Magic is the 8-byte file signature every snapshot starts with.
const Magic = "UKCSNAP\x00"

// Version is the current snapshot format version. Any change to the byte
// layout — including occupying the reserved section — must bump it; the
// committed golden fixtures (store/testdata/golden_v1_*.ukc) enforce that
// older bytes keep opening or fail with ErrVersion, never misparse.
const Version = 1

// Instance kinds, mirroring internal/dataio.
const (
	KindEuclidean = 1
	KindFinite    = 2
)

// header flag bits.
const (
	flagCands         = 1 << 0 // explicit candidate set stored
	flagAllLocsInline = 1 << 1 // allLocs aliases the locs column (nothing pruned)
)

const (
	headerSize  = 216
	endianMark  = 0x0A0B0C0D
	crcOffset   = 208 // payload CRC field
	hdrCRCStart = 212 // header CRC field; header CRC covers [0, hdrCRCStart)
)

// Section indices of the table, in file order.
const (
	secLocs = iota
	secProbs
	secOffsets
	secPtIdx
	secAllLocs
	secCands
	secMetric
	secReserved
	numSections
)

// Typed decode errors; Open failures wrap exactly one of these, so callers
// (and the fuzz target) can classify every rejection with errors.Is.
var (
	// ErrMagic marks a file that is not a ukc snapshot at all.
	ErrMagic = errors.New("arena: bad magic (not a ukc snapshot)")
	// ErrVersion marks a snapshot written by an unknown format version.
	ErrVersion = errors.New("arena: unsupported snapshot version")
	// ErrEndianness marks a byte-order mismatch between file and host.
	ErrEndianness = errors.New("arena: endianness mismatch")
	// ErrTruncated marks a file shorter than its own layout requires.
	ErrTruncated = errors.New("arena: truncated snapshot")
	// ErrChecksum marks a header or payload CRC failure.
	ErrChecksum = errors.New("arena: checksum mismatch")
	// ErrLayout marks a section table that disagrees with the header
	// counts (overlapping, misaligned or out-of-bounds sections can only
	// arise this way — the decoder recomputes the canonical table).
	ErrLayout = errors.New("arena: section table disagrees with header")
	// ErrCorrupt marks semantically invalid column data: non-monotone
	// offsets, probabilities that are not a distribution, out-of-range
	// vertices, non-finite coordinates, a broken metric matrix.
	ErrCorrupt = errors.New("arena: corrupt snapshot data")
)

// castagnoli is the CRC-32C table both CRCs use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// nativeLittle reports whether the host is little-endian; the format (and
// its zero-copy reinterpretation) requires it.
var nativeLittle = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// mapped is the process-wide gauge of snapshot bytes currently mmap'd;
// cmd/ukserver exports it as ukc_store_mapped_bytes.
var mapped obs.Gauge

// MappedBytes returns the total bytes of snapshot files currently mapped
// into the process (mmap backend only; the portable read fallback holds
// its bytes on the Go heap and is not counted here).
func MappedBytes() int64 { return mapped.Load() }

// MmapSupported reports whether this build has a zero-copy mapping backend
// (it does on linux); without one Open always uses the aligned-read
// fallback and MappedBytes stays zero.
func MmapSupported() bool { return mmapSupported }

// header is the decoded fixed-size snapshot header.
type header struct {
	version uint32
	kind    uint32
	flags   uint32
	n       uint64
	atoms   uint64
	dim     uint64
	maxZ    uint64
	nCands  uint64
	nAll    uint64
	spaceN  uint64
	sec     [numSections]section
}

type section struct{ off, len uint64 }

// locBytes returns the encoded size of count locations under the header's
// kind (float64 coordinate rows for euclidean, int64 vertices for finite).
func (h *header) locBytes(count uint64) (uint64, bool) {
	if h.kind == KindEuclidean {
		return mulChain(count, h.dim, 8)
	}
	return mulChain(count, 1, 8)
}

// layout computes the canonical section table and total file size implied
// by the header counts, with overflow checks throughout. It is the single
// source of truth for both the writer (which lays sections out with it)
// and the reader (which requires the stored table to match it exactly).
func (h *header) layout() (total uint64, err error) {
	allCount := h.nAll
	if h.flags&flagAllLocsInline != 0 {
		allCount = 0
	}
	candCount := uint64(0)
	if h.flags&flagCands != 0 {
		candCount = h.nCands
	}
	metricBytes := uint64(0)
	if h.kind == KindFinite {
		var ok bool
		if metricBytes, ok = mulChain(h.spaceN, h.spaceN, 8); !ok {
			return 0, fmt.Errorf("%w: metric size overflows", ErrLayout)
		}
	}
	var sizes [numSections]uint64
	var ok bool
	if sizes[secLocs], ok = h.locBytes(h.atoms); !ok {
		return 0, fmt.Errorf("%w: locs size overflows", ErrLayout)
	}
	if sizes[secProbs], ok = mulChain(h.atoms, 1, 8); !ok {
		return 0, fmt.Errorf("%w: probs size overflows", ErrLayout)
	}
	if sizes[secOffsets], ok = mulChain(h.n+1, 1, 4); !ok || h.n+1 < h.n {
		return 0, fmt.Errorf("%w: offsets size overflows", ErrLayout)
	}
	if sizes[secPtIdx], ok = mulChain(h.atoms, 1, 4); !ok {
		return 0, fmt.Errorf("%w: ptIdx size overflows", ErrLayout)
	}
	if sizes[secAllLocs], ok = h.locBytes(allCount); !ok {
		return 0, fmt.Errorf("%w: allLocs size overflows", ErrLayout)
	}
	if sizes[secCands], ok = h.locBytes(candCount); !ok {
		return 0, fmt.Errorf("%w: cands size overflows", ErrLayout)
	}
	sizes[secMetric] = metricBytes
	sizes[secReserved] = 0

	off := uint64(headerSize)
	for i := range sizes {
		h.sec[i] = section{off: off, len: sizes[i]}
		padded := pad8(sizes[i])
		if padded < sizes[i] {
			return 0, fmt.Errorf("%w: section %d padding overflows", ErrLayout, i)
		}
		next := off + padded
		if next < off || next > 1<<62 {
			return 0, fmt.Errorf("%w: file size overflows", ErrLayout)
		}
		off = next
	}
	return off, nil
}

// encode serializes the header (with both CRC fields) into a fresh
// headerSize buffer; payloadCRC must already be computed over the payload
// bytes the writer produced.
func (h *header) encode(payloadCRC uint32) []byte {
	buf := make([]byte, headerSize)
	copy(buf, Magic)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], h.version)
	le.PutUint32(buf[12:], endianMark)
	le.PutUint32(buf[16:], h.kind)
	le.PutUint32(buf[20:], h.flags)
	le.PutUint64(buf[24:], h.n)
	le.PutUint64(buf[32:], h.atoms)
	le.PutUint64(buf[40:], h.dim)
	le.PutUint64(buf[48:], h.maxZ)
	le.PutUint64(buf[56:], h.nCands)
	le.PutUint64(buf[64:], h.nAll)
	le.PutUint64(buf[72:], h.spaceN)
	for i, s := range h.sec {
		le.PutUint64(buf[80+16*i:], s.off)
		le.PutUint64(buf[80+16*i+8:], s.len)
	}
	le.PutUint32(buf[crcOffset:], payloadCRC)
	le.PutUint32(buf[hdrCRCStart:], crc32.Checksum(buf[:hdrCRCStart], castagnoli))
	return buf
}

// decodeHeader parses and verifies the fixed header: magic, version,
// endianness, header CRC. It does NOT verify the section table against the
// layout or the payload CRC — Open layers those.
func decodeHeader(buf []byte) (*header, uint32, error) {
	if len(buf) < headerSize {
		return nil, 0, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(buf), headerSize)
	}
	if string(buf[:8]) != Magic {
		return nil, 0, ErrMagic
	}
	le := binary.LittleEndian
	h := &header{version: le.Uint32(buf[8:])}
	if h.version != Version {
		return nil, 0, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, h.version, Version)
	}
	if le.Uint32(buf[12:]) != endianMark || !nativeLittle {
		return nil, 0, ErrEndianness
	}
	if got, want := crc32.Checksum(buf[:hdrCRCStart], castagnoli), le.Uint32(buf[hdrCRCStart:]); got != want {
		return nil, 0, fmt.Errorf("%w: header CRC %08x, want %08x", ErrChecksum, got, want)
	}
	h.kind = le.Uint32(buf[16:])
	h.flags = le.Uint32(buf[20:])
	h.n = le.Uint64(buf[24:])
	h.atoms = le.Uint64(buf[32:])
	h.dim = le.Uint64(buf[40:])
	h.maxZ = le.Uint64(buf[48:])
	h.nCands = le.Uint64(buf[56:])
	h.nAll = le.Uint64(buf[64:])
	h.spaceN = le.Uint64(buf[72:])
	for i := range h.sec {
		h.sec[i] = section{off: le.Uint64(buf[80+16*i:]), len: le.Uint64(buf[80+16*i+8:])}
	}
	return h, le.Uint32(buf[crcOffset:]), nil
}

// pad8 rounds n up to the next multiple of 8.
func pad8(n uint64) uint64 { return (n + 7) &^ 7 }

// mulChain returns a·b·c, reporting overflow.
func mulChain(a, b, c uint64) (uint64, bool) {
	hi, p := bits.Mul64(a, b)
	if hi != 0 {
		return 0, false
	}
	hi, p = bits.Mul64(p, c)
	if hi != 0 {
		return 0, false
	}
	return p, true
}

// The zero-copy reinterpretation helpers. Every caller has already proved
// the slice lies on an 8-byte boundary (sections are 8-aligned within the
// file, the mmap base is page-aligned, and the heap fallback allocates a
// word-aligned buffer), but each helper re-checks and fails typed rather
// than aliasing a misaligned region.

func alignErr(what string) error {
	return fmt.Errorf("%w: %s column is not 8-byte aligned", ErrLayout, what)
}

// f64s reinterprets b as a []float64 of n elements.
func f64s(b []byte, n int, what string) ([]float64, error) {
	if n == 0 {
		return nil, nil
	}
	if len(b) < 8*n {
		return nil, fmt.Errorf("%w: %s column short", ErrTruncated, what)
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, alignErr(what)
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), nil
}

// i32s reinterprets b as a []int32 of n elements.
func i32s(b []byte, n int, what string) ([]int32, error) {
	if n == 0 {
		return nil, nil
	}
	if len(b) < 4*n {
		return nil, fmt.Errorf("%w: %s column short", ErrTruncated, what)
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil, alignErr(what)
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
}

// i64s reinterprets b as a []int64 of n elements.
func i64s(b []byte, n int, what string) ([]int64, error) {
	if n == 0 {
		return nil, nil
	}
	if len(b) < 8*n {
		return nil, fmt.Errorf("%w: %s column short", ErrTruncated, what)
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, alignErr(what)
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n), nil
}
