package arena_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	ukc "repro"
	"repro/internal/arena"
	"repro/internal/gen"
	"repro/internal/graphmetric"
)

// FuzzOpen: the snapshot decoder must never panic and never hand out an
// instance aliasing garbage, for arbitrary file bytes. Every failure must
// classify under exactly the typed error vocabulary (errors.Is), and every
// success must yield a structurally coherent compiled instance. Run with
// `go test -fuzz=FuzzOpen ./internal/arena` to explore; the seed corpus —
// two valid snapshots plus targeted corruptions of every validation layer —
// runs as part of `go test`.
func FuzzOpen(f *testing.F) {
	eu := snapshotBytes(f, true)
	fin := snapshotBytes(f, false)
	f.Add(eu)
	f.Add(fin)
	f.Add([]byte{})
	f.Add([]byte("UKCSNAP\x00"))
	f.Add([]byte("not a snapshot at all"))
	f.Add(flip(eu, 0))                                         // magic
	f.Add(flip(eu, 8))                                         // version
	f.Add(flip(eu, 12))                                        // endianness mark
	f.Add(flip(eu, 24))                                        // point count (header CRC catches it)
	f.Add(flip(eu, 80))                                        // section table
	f.Add(flip(eu, 212))                                       // header CRC itself
	f.Add(flip(eu, len(eu)-1))                                 // payload tail (payload CRC)
	f.Add(eu[:len(eu)-8])                                      // truncated payload
	f.Add(eu[:100])                                            // truncated header
	f.Add(append(flip(eu, len(eu)-1), 0, 0, 0, 0, 0, 0, 0, 0)) // trailing junk
	f.Add(flip(fin, len(fin)-4))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ukc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, opts := range []arena.Options{{}, {NoMmap: true}} {
			file, err := arena.Open(context.Background(), path, opts)
			if err != nil {
				if !typedOpenError(err) {
					t.Fatalf("untyped open error (opts %+v): %v", opts, err)
				}
				continue
			}
			checkOpened(t, file)
			if err := file.Close(); err != nil {
				t.Fatalf("closing accepted snapshot: %v", err)
			}
		}
	})
}

// typedOpenError reports whether err wraps one of the decoder's typed
// errors — the contract that lets callers classify any open failure.
func typedOpenError(err error) bool {
	for _, target := range []error{
		arena.ErrMagic, arena.ErrVersion, arena.ErrEndianness,
		arena.ErrTruncated, arena.ErrChecksum, arena.ErrLayout, arena.ErrCorrupt,
	} {
		if errors.Is(err, target) {
			return true
		}
	}
	return false
}

// checkOpened asserts an accepted snapshot is structurally coherent: the
// decoder's success path must only produce instances whose invariants hold.
func checkOpened(t *testing.T, file *arena.File) {
	t.Helper()
	switch file.KindName() {
	case "euclidean":
		c, err := file.Euclidean()
		if err != nil {
			t.Fatalf("euclidean snapshot refused its own kind: %v", err)
		}
		checkCompiledShape(t, c.NumPoints(), c.NumAtoms(), c.MaxZ(), len(c.CandidatesOrLocations()))
		if c.Dim() < 1 {
			t.Fatalf("accepted euclidean dim %d", c.Dim())
		}
	case "finite":
		c, err := file.Finite()
		if err != nil {
			t.Fatalf("finite snapshot refused its own kind: %v", err)
		}
		checkCompiledShape(t, c.NumPoints(), c.NumAtoms(), c.MaxZ(), len(c.CandidatesOrLocations()))
	default:
		t.Fatalf("accepted unknown kind %q", file.KindName())
	}
}

func checkCompiledShape(t *testing.T, n, atoms, maxZ, cands int) {
	t.Helper()
	if n < 1 || atoms < n || maxZ < 1 || maxZ > atoms || cands < 1 {
		t.Fatalf("accepted incoherent shape: n=%d atoms=%d maxZ=%d cands=%d", n, atoms, maxZ, cands)
	}
}

// snapshotBytes freezes a small deterministic instance of the given kind
// and returns the file bytes — the honest seeds the corruptions mutate.
func snapshotBytes(f *testing.F, euclidean bool) []byte {
	f.Helper()
	rng := rand.New(rand.NewSource(11))
	path := filepath.Join(f.TempDir(), "seed.ukc")
	ctx := context.Background()
	if euclidean {
		pts, err := gen.GaussianClusters(rng, 12, 3, 2, 3, 1, 0.4)
		if err != nil {
			f.Fatal(err)
		}
		c, err := ukc.NewEuclideanInstance(pts).Compile(ctx)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := arena.WriteEuclidean(ctx, path, c); err != nil {
			f.Fatal(err)
		}
	} else {
		g, _, err := graphmetric.RandomGeometric(10, 0.6, rng)
		if err != nil {
			f.Fatal(err)
		}
		space, err := g.Metric()
		if err != nil {
			f.Fatal(err)
		}
		pts, err := gen.OnVerticesLocal(rng, space, 8, 2)
		if err != nil {
			f.Fatal(err)
		}
		c, err := ukc.NewFiniteInstance(space, pts, nil).Compile(ctx)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := arena.WriteFinite(ctx, path, c); err != nil {
			f.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// flip returns a copy of b with one bit flipped at off.
func flip(b []byte, off int) []byte {
	out := append([]byte(nil), b...)
	out[off] ^= 0x01
	return out
}
