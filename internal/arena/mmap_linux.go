//go:build linux

package arena

import (
	"os"
	"syscall"
)

// mmapSupported selects the zero-copy mapping backend at build time; the
// module stays dependency-free by using raw syscall.Mmap rather than
// golang.org/x/sys.
const mmapSupported = true

// mapFile maps the file read-only and private: the snapshot is immutable
// by contract, and a private mapping guarantees our view cannot be changed
// by another writer racing the open (post-validation flips would otherwise
// bypass every CRC and bounds check).
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
}

// unmapFile releases a mapFile mapping.
func unmapFile(b []byte) error {
	return syscall.Munmap(b)
}
