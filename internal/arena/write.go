package arena

import (
	"bufio"
	"context"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"unsafe"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/obs"
)

// WriteEuclidean freezes a compiled Euclidean (L2) instance as a snapshot
// at path, returning the file size. The write is atomic: bytes stream into
// path+".tmp" and are renamed over path only after a successful sync, so a
// crashed or failed write never leaves a half-snapshot where a warm-start
// scan would find it. Only the arena (flat atoms, offsets, candidate sets)
// is frozen; the memoized caches rebuild lazily after Open, bit-identically.
func WriteEuclidean(ctx context.Context, path string, c *core.Compiled[geom.Vec]) (int64, error) {
	if c == nil {
		return 0, fmt.Errorf("arena: nil compiled instance")
	}
	if _, ok := c.Space().(metricspace.Euclidean); !ok {
		return 0, fmt.Errorf("arena: only the Euclidean L2 space is serializable (got %T)", c.Space())
	}
	locs, probs, offsets, ptIdx := c.FlatAtoms()
	h := &header{
		version: Version,
		kind:    KindEuclidean,
		n:       uint64(c.NumPoints()),
		atoms:   uint64(c.NumAtoms()),
		dim:     uint64(c.Dim()),
		maxZ:    uint64(c.MaxZ()),
	}
	cands := c.Candidates()
	allLocs := locationSections(h, locs, cands, c.CandidatesOrLocations())
	dim := c.Dim()
	return writeSnapshot(ctx, path, h, func(sw *sectionWriter) error {
		if err := sw.vecs(secLocs, locs, dim); err != nil {
			return err
		}
		if err := sw.f64(secProbs, probs); err != nil {
			return err
		}
		if err := sw.i32(secOffsets, offsets); err != nil {
			return err
		}
		if err := sw.i32(secPtIdx, ptIdx); err != nil {
			return err
		}
		if err := sw.vecs(secAllLocs, allLocs, dim); err != nil {
			return err
		}
		return sw.vecs(secCands, cands, dim)
	})
}

// WriteFinite freezes a compiled finite-metric instance — including its
// full distance matrix, so the snapshot is self-contained — as a snapshot
// at path. See WriteEuclidean for the atomicity contract.
func WriteFinite(ctx context.Context, path string, c *core.Compiled[int]) (int64, error) {
	if c == nil {
		return 0, fmt.Errorf("arena: nil compiled instance")
	}
	space, ok := c.Space().(*metricspace.Finite)
	if !ok {
		return 0, fmt.Errorf("arena: only explicit finite-matrix spaces are serializable (got %T)", c.Space())
	}
	locs, probs, offsets, ptIdx := c.FlatAtoms()
	h := &header{
		version: Version,
		kind:    KindFinite,
		n:       uint64(c.NumPoints()),
		atoms:   uint64(c.NumAtoms()),
		maxZ:    uint64(c.MaxZ()),
		spaceN:  uint64(space.N()),
	}
	cands := c.Candidates()
	allLocs := locationSections(h, locs, cands, c.CandidatesOrLocations())
	return writeSnapshot(ctx, path, h, func(sw *sectionWriter) error {
		if err := sw.ints(secLocs, locs); err != nil {
			return err
		}
		if err := sw.f64(secProbs, probs); err != nil {
			return err
		}
		if err := sw.i32(secOffsets, offsets); err != nil {
			return err
		}
		if err := sw.i32(secPtIdx, ptIdx); err != nil {
			return err
		}
		if err := sw.ints(secAllLocs, allLocs); err != nil {
			return err
		}
		if err := sw.ints(secCands, cands); err != nil {
			return err
		}
		return sw.metric(space)
	})
}

// locationSections fills the header's candidate/allLocs accounting and
// returns the allLocs slice to persist (nil when it aliases the arena).
// With an explicit candidate set the all-locations default is never
// consulted (CandidatesOrLocations prefers the explicit set), so it is not
// stored; without one, the default is stored only when pruning made it
// diverge from the arena column.
func locationSections[P any](h *header, locs, cands, candsOrLocs []P) (allLocs []P) {
	if len(cands) > 0 {
		h.flags |= flagCands | flagAllLocsInline
		h.nCands = uint64(len(cands))
		return nil
	}
	if sameView(candsOrLocs, locs) {
		h.flags |= flagAllLocsInline
		return nil
	}
	h.nAll = uint64(len(candsOrLocs))
	return candsOrLocs
}

// sameView reports whether a and b are the identical slice view.
func sameView[P any](a, b []P) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// writeSnapshot owns the file mechanics shared by both kinds: layout, the
// temp-file + rename atomicity, CRC accumulation, and the header patch.
func writeSnapshot(ctx context.Context, path string, h *header, emit func(*sectionWriter) error) (int64, error) {
	total, err := h.layout()
	if err != nil {
		return 0, err
	}
	sp := obs.StartSpan(obs.FromContext(ctx), "store.write")
	sp.Int("points", int(h.n))
	sp.Int("atoms", int(h.atoms))
	sp.Int("kind", int(h.kind))
	sp.Int64("bytes", int64(total))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	if _, err := f.Write(make([]byte, headerSize)); err != nil {
		return 0, err
	}
	crc := crc32.New(castagnoli)
	bw := bufio.NewWriterSize(f, 1<<16)
	sw := &sectionWriter{h: h, w: io.MultiWriter(bw, crc), crc: crc, written: headerSize}
	if err := emit(sw); err != nil {
		return 0, err
	}
	if sw.written != total {
		return 0, fmt.Errorf("arena: wrote %d payload bytes, layout says %d", sw.written, total)
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	if _, err := f.WriteAt(h.encode(crc.Sum32()), 0); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	if err := f.Close(); err != nil {
		f = nil
		os.Remove(tmp)
		return 0, err
	}
	f = nil
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	// Make the rename durable too, best-effort: fsync the directory.
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	sp.End()
	return int64(total), nil
}

// sectionWriter streams section payloads in file order, padding each to an
// 8-byte boundary and asserting every section lands exactly where the
// layout placed it.
type sectionWriter struct {
	h       *header
	w       io.Writer
	crc     hash.Hash32
	written uint64
}

var zeroPad [8]byte

func (sw *sectionWriter) begin(sec int) error {
	if sw.written != sw.h.sec[sec].off {
		return fmt.Errorf("arena: section %d starts at %d, layout says %d", sec, sw.written, sw.h.sec[sec].off)
	}
	return nil
}

func (sw *sectionWriter) raw(sec int, b []byte) error {
	if err := sw.begin(sec); err != nil {
		return err
	}
	if uint64(len(b)) != sw.h.sec[sec].len {
		return fmt.Errorf("arena: section %d is %d bytes, layout says %d", sec, len(b), sw.h.sec[sec].len)
	}
	if _, err := sw.w.Write(b); err != nil {
		return err
	}
	sw.written += uint64(len(b))
	return sw.pad()
}

func (sw *sectionWriter) pad() error {
	if p := pad8(sw.written) - sw.written; p > 0 {
		if _, err := sw.w.Write(zeroPad[:p]); err != nil {
			return err
		}
		sw.written += p
	}
	return nil
}

// f64 writes a float64 column by reinterpreting the slice in place (the
// format is native little-endian by construction).
func (sw *sectionWriter) f64(sec int, v []float64) error {
	return sw.raw(sec, f64Bytes(v))
}

// i32 writes an int32 column.
func (sw *sectionWriter) i32(sec int, v []int32) error {
	var b []byte
	if len(v) > 0 {
		b = unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
	}
	return sw.raw(sec, b)
}

// ints writes an []int column as int64 values.
func (sw *sectionWriter) ints(sec int, v []int) error {
	w := make([]int64, len(v))
	for i, x := range v {
		w[i] = int64(x)
	}
	var b []byte
	if len(w) > 0 {
		b = unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), 8*len(w))
	}
	return sw.raw(sec, b)
}

// vecs writes a coordinate-row column: every vector must carry the
// compile-time common dimension (Compile proved it; this guards the codec
// against an inconsistent caller rather than trusting it).
func (sw *sectionWriter) vecs(sec int, v []geom.Vec, dim int) error {
	if err := sw.begin(sec); err != nil {
		return err
	}
	want := sw.h.sec[sec].len
	var n uint64
	for i, row := range v {
		if len(row) != dim {
			return fmt.Errorf("arena: location %d has dimension %d, want %d", i, len(row), dim)
		}
		b := f64Bytes(row)
		if _, err := sw.w.Write(b); err != nil {
			return err
		}
		n += uint64(len(b))
	}
	if n != want {
		return fmt.Errorf("arena: section %d is %d bytes, layout says %d", sec, n, want)
	}
	sw.written += n
	return sw.pad()
}

// metric writes the finite space's full distance matrix row by row.
func (sw *sectionWriter) metric(space *metricspace.Finite) error {
	if err := sw.begin(secMetric); err != nil {
		return err
	}
	n := space.N()
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			row[j] = space.Dist(i, j)
		}
		if _, err := sw.w.Write(f64Bytes(row)); err != nil {
			return err
		}
	}
	sw.written += uint64(n) * uint64(n) * 8
	return sw.pad()
}

func f64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}
