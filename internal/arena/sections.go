package arena

import (
	"fmt"
	"os"
)

// SectionOffsets reads the header of the snapshot at path and returns every
// section boundary in file order: the header end (first section start),
// each subsequent section's padded start, and finally the total file size.
// The offsets come from the canonical layout recomputed from the header
// counts — the same source of truth Open validates the stored table
// against — so truncating a valid snapshot at any returned offset yields a
// file whose header is intact but whose payload is torn at a structural
// boundary. Torn-write torture tests (serve's quarantine suite) are the
// intended consumer; the serving path itself never needs this.
func SectionOffsets(path string) ([]int64, error) {
	buf := make([]byte, headerSize)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, fmt.Errorf("arena: reading header of %s: %w", path, err)
	}
	h, _, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	total, err := h.layout()
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, numSections+1)
	for i := range h.sec {
		out = append(out, int64(h.sec[i].off))
	}
	out = append(out, int64(total))
	return out, nil
}
