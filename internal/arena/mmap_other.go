//go:build !linux

package arena

import (
	"fmt"
	"os"
)

// mmapSupported is false off linux: Open uses the portable word-aligned
// heap read instead, with identical validation and aliasing semantics.
const mmapSupported = false

func mapFile(*os.File, int64) ([]byte, error) {
	return nil, fmt.Errorf("arena: mmap not supported on this platform")
}

func unmapFile([]byte) error { return nil }
