// Package gen generates synthetic uncertain-point workloads.
//
// The paper is a theory paper with no datasets, so the experiments need
// input families that exercise the regimes its theorems distinguish
// (DESIGN.md §4 documents this substitution):
//
//   - GaussianClusters: concentrated distributions around cluster centers —
//     the benign regime where surrogates are nearly lossless;
//   - BimodalAdversarial: each point splits its mass between two far-apart
//     modes, making the expected point land in empty space — the regime that
//     stresses the Euclidean surrogate bounds and separates EP from ED;
//   - UniformBox: unstructured noise;
//   - Mixture1D: one-dimensional mixtures for the R^1 experiments;
//   - OnVertices: uncertain points over the vertices of a finite metric
//     space (graph metrics) for the general-metric experiments.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// randProbs draws a random probability vector of length z with entries
// bounded away from zero (so enumeration oracles stay well conditioned).
func randProbs(rng *rand.Rand, z int) []float64 {
	probs := make([]float64, z)
	var sum float64
	for j := range probs {
		probs[j] = 0.05 + rng.Float64()
		sum += probs[j]
	}
	for j := range probs {
		probs[j] /= sum
	}
	return probs
}

func randVec(rng *rand.Rand, d int, scale float64) geom.Vec {
	v := geom.NewVec(d)
	for a := 0; a < d; a++ {
		v[a] = rng.NormFloat64() * scale
	}
	return v
}

// GaussianClusters generates n uncertain points in R^dim. True positions are
// drawn from `clusters` Gaussian clusters of spread clusterSpread placed
// uniformly in [0, 10]^dim; each point's z locations jitter around its true
// position with standard deviation jitter.
func GaussianClusters(rng *rand.Rand, n, z, dim, clusters int, clusterSpread, jitter float64) ([]uncertain.Point[geom.Vec], error) {
	if n <= 0 || z <= 0 || dim <= 0 || clusters <= 0 {
		return nil, fmt.Errorf("gen: invalid shape n=%d z=%d dim=%d clusters=%d", n, z, dim, clusters)
	}
	centers := make([]geom.Vec, clusters)
	for c := range centers {
		centers[c] = geom.NewVec(dim)
		for a := 0; a < dim; a++ {
			centers[c][a] = rng.Float64() * 10
		}
	}
	pts := make([]uncertain.Point[geom.Vec], n)
	for i := range pts {
		base := centers[rng.Intn(clusters)].Add(randVec(rng, dim, clusterSpread))
		locs := make([]geom.Vec, z)
		for j := range locs {
			locs[j] = base.Add(randVec(rng, dim, jitter))
		}
		p, err := uncertain.New(locs, randProbs(rng, z))
		if err != nil {
			return nil, err
		}
		pts[i] = p
	}
	return pts, nil
}

// BimodalAdversarial generates n uncertain points whose mass splits between
// two modes separated by `separation`: location A near the origin-side mode
// anchor, location B across the gap. The expected point lies mid-gap, far
// from every actual location — the adversarial case for expected-point
// surrogates. Each point gets z locations, alternating modes, so z ≥ 2
// produces genuine bimodality.
func BimodalAdversarial(rng *rand.Rand, n, z, dim int, separation float64) ([]uncertain.Point[geom.Vec], error) {
	if n <= 0 || z < 2 || dim <= 0 || !(separation > 0) {
		return nil, fmt.Errorf("gen: invalid shape n=%d z=%d dim=%d sep=%g", n, z, dim, separation)
	}
	pts := make([]uncertain.Point[geom.Vec], n)
	for i := range pts {
		anchor := randVec(rng, dim, 1)
		offset := geom.NewVec(dim)
		offset[rng.Intn(dim)] = separation
		locs := make([]geom.Vec, z)
		for j := range locs {
			side := anchor
			if j%2 == 1 {
				side = anchor.Add(offset)
			}
			locs[j] = side.Add(randVec(rng, dim, separation/50))
		}
		p, err := uncertain.New(locs, randProbs(rng, z))
		if err != nil {
			return nil, err
		}
		pts[i] = p
	}
	return pts, nil
}

// UniformBox generates n uncertain points with z locations each, all drawn
// uniformly from [0, side]^dim — the unstructured regime.
func UniformBox(rng *rand.Rand, n, z, dim int, side float64) ([]uncertain.Point[geom.Vec], error) {
	if n <= 0 || z <= 0 || dim <= 0 || !(side > 0) {
		return nil, fmt.Errorf("gen: invalid shape n=%d z=%d dim=%d side=%g", n, z, dim, side)
	}
	pts := make([]uncertain.Point[geom.Vec], n)
	for i := range pts {
		locs := make([]geom.Vec, z)
		for j := range locs {
			locs[j] = geom.NewVec(dim)
			for a := 0; a < dim; a++ {
				locs[j][a] = rng.Float64() * side
			}
		}
		p, err := uncertain.New(locs, randProbs(rng, z))
		if err != nil {
			return nil, err
		}
		pts[i] = p
	}
	return pts, nil
}

// Mixture1D generates n one-dimensional uncertain points: true positions
// from `modes` mixture components on [0, 100], locations jittered around
// them. Returned points have dim-1 geom.Vec locations (the repository's 1D
// convention).
func Mixture1D(rng *rand.Rand, n, z, modes int, jitter float64) ([]uncertain.Point[geom.Vec], error) {
	if n <= 0 || z <= 0 || modes <= 0 {
		return nil, fmt.Errorf("gen: invalid shape n=%d z=%d modes=%d", n, z, modes)
	}
	anchors := make([]float64, modes)
	for m := range anchors {
		anchors[m] = rng.Float64() * 100
	}
	pts := make([]uncertain.Point[geom.Vec], n)
	for i := range pts {
		base := anchors[rng.Intn(modes)] + rng.NormFloat64()*2
		locs := make([]geom.Vec, z)
		for j := range locs {
			locs[j] = geom.Vec{base + rng.NormFloat64()*jitter}
		}
		p, err := uncertain.New(locs, randProbs(rng, z))
		if err != nil {
			return nil, err
		}
		pts[i] = p
	}
	return pts, nil
}

// HeterogeneousZ generates n uncertain points whose location counts vary
// per point, z_i uniform in {1, …, zMax} — matching the paper's model where
// z = max z_i but points differ. Locations cluster like GaussianClusters.
func HeterogeneousZ(rng *rand.Rand, n, zMax, dim int) ([]uncertain.Point[geom.Vec], error) {
	if n <= 0 || zMax <= 0 || dim <= 0 {
		return nil, fmt.Errorf("gen: invalid shape n=%d zMax=%d dim=%d", n, zMax, dim)
	}
	pts := make([]uncertain.Point[geom.Vec], n)
	for i := range pts {
		z := 1 + rng.Intn(zMax)
		base := geom.NewVec(dim)
		for a := 0; a < dim; a++ {
			base[a] = rng.Float64() * 10
		}
		locs := make([]geom.Vec, z)
		for j := range locs {
			locs[j] = base.Add(randVec(rng, dim, 0.5))
		}
		p, err := uncertain.New(locs, randProbs(rng, z))
		if err != nil {
			return nil, err
		}
		pts[i] = p
	}
	return pts, nil
}

// OnVertices generates n uncertain points over the vertices of a finite
// metric space: each point's z locations are distinct random vertices.
// Locality can be induced by the space itself (e.g. grid metrics).
func OnVertices(rng *rand.Rand, space *metricspace.Finite, n, z int) ([]uncertain.Point[int], error) {
	if n <= 0 || z <= 0 {
		return nil, fmt.Errorf("gen: invalid shape n=%d z=%d", n, z)
	}
	if space.N() == 0 {
		return nil, fmt.Errorf("gen: empty finite space")
	}
	if z > space.N() {
		z = space.N()
	}
	pts := make([]uncertain.Point[int], n)
	for i := range pts {
		perm := rng.Perm(space.N())
		locs := append([]int(nil), perm[:z]...)
		p, err := uncertain.New(locs, randProbs(rng, z))
		if err != nil {
			return nil, err
		}
		pts[i] = p
	}
	return pts, nil
}

// OnVerticesLocal generates uncertain points over vertices where each
// point's locations are the z nearest vertices to a random anchor — the
// "GPS noise on a road network" model, localized rather than scattered.
func OnVerticesLocal(rng *rand.Rand, space *metricspace.Finite, n, z int) ([]uncertain.Point[int], error) {
	if n <= 0 || z <= 0 {
		return nil, fmt.Errorf("gen: invalid shape n=%d z=%d", n, z)
	}
	m := space.N()
	if m == 0 {
		return nil, fmt.Errorf("gen: empty finite space")
	}
	if z > m {
		z = m
	}
	pts := make([]uncertain.Point[int], n)
	for i := range pts {
		anchor := rng.Intn(m)
		// z nearest vertices to the anchor (anchor included).
		order := make([]int, m)
		for v := range order {
			order[v] = v
		}
		// Selection of the z smallest by distance — m is small, simple sort.
		for a := 0; a < z; a++ {
			best := a
			for b := a + 1; b < m; b++ {
				if space.Dist(anchor, order[b]) < space.Dist(anchor, order[best]) {
					best = b
				}
			}
			order[a], order[best] = order[best], order[a]
		}
		locs := append([]int(nil), order[:z]...)
		p, err := uncertain.New(locs, randProbs(rng, z))
		if err != nil {
			return nil, err
		}
		pts[i] = p
	}
	return pts, nil
}
