package gen

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graphmetric"
	"repro/internal/uncertain"
)

func TestGaussianClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, err := GaussianClusters(rng, 20, 4, 3, 2, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 {
		t.Fatalf("n = %d", len(pts))
	}
	if err := uncertain.ValidateSet(pts); err != nil {
		t.Fatal(err)
	}
	if uncertain.MaxZ(pts) != 4 {
		t.Errorf("MaxZ = %d", uncertain.MaxZ(pts))
	}
	for i, p := range pts {
		for _, loc := range p.Locs {
			if loc.Dim() != 3 {
				t.Fatalf("point %d has dim %d", i, loc.Dim())
			}
		}
	}
	if _, err := GaussianClusters(rng, 0, 4, 2, 2, 1, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestBimodalAdversarialSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const sep = 50.0
	pts, err := BimodalAdversarial(rng, 10, 4, 2, sep)
	if err != nil {
		t.Fatal(err)
	}
	if err := uncertain.ValidateSet(pts); err != nil {
		t.Fatal(err)
	}
	// The expected point must be far from every location for points with
	// roughly balanced masses — check the structural property that each
	// point has two location groups at distance ≈ sep.
	for i, p := range pts {
		var spread float64
		for a := 0; a < p.Z(); a++ {
			for b := a + 1; b < p.Z(); b++ {
				if d := geom.Dist(p.Locs[a], p.Locs[b]); d > spread {
					spread = d
				}
			}
		}
		if spread < sep/2 {
			t.Errorf("point %d: max location spread %g, want ≥ %g", i, spread, sep/2)
		}
	}
	if _, err := BimodalAdversarial(rng, 5, 1, 2, sep); err == nil {
		t.Error("z=1 accepted (cannot be bimodal)")
	}
}

func TestUniformBox(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, err := UniformBox(rng, 15, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := uncertain.ValidateSet(pts); err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		for _, loc := range p.Locs {
			for _, x := range loc {
				if x < 0 || x > 5 {
					t.Fatalf("location %v outside box", loc)
				}
			}
		}
	}
	if _, err := UniformBox(rng, 5, 3, 2, 0); err == nil {
		t.Error("side=0 accepted")
	}
}

func TestMixture1D(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, err := Mixture1D(rng, 12, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := uncertain.ValidateSet(pts); err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		for _, loc := range p.Locs {
			if loc.Dim() != 1 {
				t.Fatalf("1D generator produced dim %d", loc.Dim())
			}
		}
	}
}

func TestOnVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := graphmetric.GridGraph(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Metric()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := OnVertices(rng, m, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := uncertain.ValidateSet(pts); err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		seen := map[int]bool{}
		for _, v := range p.Locs {
			if v < 0 || v >= m.N() {
				t.Fatalf("vertex %d out of range", v)
			}
			if seen[v] {
				t.Fatal("duplicate location vertex")
			}
			seen[v] = true
		}
	}
	// z larger than the space clamps.
	pts, err = OnVertices(rng, m, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Z() != m.N() {
		t.Errorf("clamped z = %d, want %d", pts[0].Z(), m.N())
	}
}

func TestOnVerticesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := graphmetric.GridGraph(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Metric()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := OnVerticesLocal(rng, m, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := uncertain.ValidateSet(pts); err != nil {
		t.Fatal(err)
	}
	// Locality: the diameter of each point's location set must be at most
	// that of 4 mutually-nearest grid vertices (≤ 4 hops in a 5x5 grid, and
	// strictly less than the full grid diameter 8).
	for i, p := range pts {
		var spread float64
		for a := 0; a < p.Z(); a++ {
			for b := 0; b < p.Z(); b++ {
				if d := m.Dist(p.Locs[a], p.Locs[b]); d > spread {
					spread = d
				}
			}
		}
		if spread > 4 {
			t.Errorf("point %d: location spread %g, want ≤ 4 (local)", i, spread)
		}
	}
}

func TestHeterogeneousZ(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, err := HeterogeneousZ(rng, 50, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := uncertain.ValidateSet(pts); err != nil {
		t.Fatal(err)
	}
	// z must actually vary across points (with overwhelming probability).
	seen := map[int]bool{}
	for _, p := range pts {
		if p.Z() < 1 || p.Z() > 6 {
			t.Fatalf("z = %d outside [1,6]", p.Z())
		}
		seen[p.Z()] = true
	}
	if len(seen) < 3 {
		t.Errorf("only %d distinct z values across 50 points", len(seen))
	}
	if _, err := HeterogeneousZ(rng, 0, 3, 2); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := HeterogeneousZ(rng, 3, 0, 2); err == nil {
		t.Error("zMax=0 accepted")
	}
}

func TestRandProbsWellConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		probs := randProbs(rng, 5)
		var sum float64
		for _, p := range probs {
			if p <= 0 {
				t.Fatal("non-positive probability")
			}
			sum += p
		}
		if diff := sum - 1; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("probs sum to %g", sum)
		}
	}
}
