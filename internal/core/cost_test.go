package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

var euclid = metricspace.Euclidean{}

// smallInstance draws a random Euclidean instance small enough for the
// enumeration oracle.
func smallInstance(t testing.TB, rng *rand.Rand, n, z, dim int) []uncertain.Point[geom.Vec] {
	t.Helper()
	pts, err := gen.UniformBox(rng, n, z, dim, 10)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func randomCenters(rng *rand.Rand, k, dim int) []geom.Vec {
	out := make([]geom.Vec, k)
	for i := range out {
		out[i] = geom.NewVec(dim)
		for a := 0; a < dim; a++ {
			out[i][a] = rng.Float64() * 10
		}
	}
	return out
}

func TestEcostAssignedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		n, z := 1+rng.Intn(5), 1+rng.Intn(3)
		pts := smallInstance(t, rng, n, z, 2)
		k := 1 + rng.Intn(3)
		centers := randomCenters(rng, k, 2)
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		fast, err := EcostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := EcostAssignedNaive[geom.Vec](euclid, pts, centers, assign, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-slow) > 1e-9*(1+slow) {
			t.Fatalf("trial %d: fast %g vs naive %g", trial, fast, slow)
		}
	}
}

func TestEcostUnassignedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 100; trial++ {
		n, z := 1+rng.Intn(5), 1+rng.Intn(3)
		pts := smallInstance(t, rng, n, z, 2)
		centers := randomCenters(rng, 1+rng.Intn(3), 2)
		fast, err := EcostUnassigned[geom.Vec](euclid, pts, centers)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := EcostUnassignedNaive[geom.Vec](euclid, pts, centers, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-slow) > 1e-9*(1+slow) {
			t.Fatalf("trial %d: fast %g vs naive %g", trial, fast, slow)
		}
	}
}

func TestEcostMonteCarloAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo cross-check skipped in -short")
	}
	rng := rand.New(rand.NewSource(103))
	pts := smallInstance(t, rng, 20, 4, 2)
	centers := randomCenters(rng, 3, 2)
	assign, err := AssignED[geom.Vec](euclid, pts, centers)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := EcostAssigned[geom.Vec](euclid, pts, centers, assign)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := EcostMonteCarlo[geom.Vec](euclid, pts, centers, assign, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-mc)/exact > 0.02 {
		t.Errorf("exact %g vs Monte-Carlo %g", exact, mc)
	}
	// Unassigned flavor.
	exactU, err := EcostUnassigned[geom.Vec](euclid, pts, centers)
	if err != nil {
		t.Fatal(err)
	}
	mcU, err := EcostMonteCarlo[geom.Vec](euclid, pts, centers, nil, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exactU-mcU)/exactU > 0.02 {
		t.Errorf("unassigned exact %g vs Monte-Carlo %g", exactU, mcU)
	}
}

func TestEcostValidation(t *testing.T) {
	pts := []uncertain.Point[geom.Vec]{uncertain.NewDeterministic(geom.Vec{0, 0})}
	centers := []geom.Vec{{1, 1}}
	if _, err := EcostAssigned[geom.Vec](euclid, pts, centers, []int{5}); err == nil {
		t.Error("out-of-range assignment accepted")
	}
	if _, err := EcostAssigned[geom.Vec](euclid, pts, centers, []int{0, 0}); err == nil {
		t.Error("wrong-length assignment accepted")
	}
	if _, err := EcostAssigned[geom.Vec](euclid, pts, nil, []int{0}); err == nil {
		t.Error("no centers accepted")
	}
	if _, err := EcostUnassigned[geom.Vec](euclid, nil, centers); err == nil {
		t.Error("empty point set accepted")
	}
	if _, err := EcostUnassigned[geom.Vec](euclid, pts, nil); err == nil {
		t.Error("no centers accepted (unassigned)")
	}
	if _, err := EcostMonteCarlo[geom.Vec](euclid, pts, centers, nil, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("samples=0 accepted")
	}
}

// TestUnassignedLeqAssigned: snapping every realization to its nearest
// center can only beat any fixed assignment.
func TestUnassignedLeqAssigned(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 100; trial++ {
		pts := smallInstance(t, rng, 1+rng.Intn(6), 1+rng.Intn(4), 2)
		k := 1 + rng.Intn(3)
		centers := randomCenters(rng, k, 2)
		assign := make([]int, len(pts))
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		a, err := EcostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil {
			t.Fatal(err)
		}
		u, err := EcostUnassigned[geom.Vec](euclid, pts, centers)
		if err != nil {
			t.Fatal(err)
		}
		if u > a+1e-9 {
			t.Fatalf("trial %d: unassigned %g > assigned %g", trial, u, a)
		}
	}
}

// TestMaxExpLeqEcost verifies the documented objective inequality
// max_i E[d_i] ≤ E[max_i d_i] for both assigned and unassigned versions.
func TestMaxExpLeqEcost(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 100; trial++ {
		pts := smallInstance(t, rng, 1+rng.Intn(6), 1+rng.Intn(4), 2)
		k := 1 + rng.Intn(3)
		centers := randomCenters(rng, k, 2)
		assign := make([]int, len(pts))
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		me, err := MaxExpCostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil {
			t.Fatal(err)
		}
		ec, err := EcostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil {
			t.Fatal(err)
		}
		if me > ec+1e-9 {
			t.Fatalf("trial %d: maxE %g > Emax %g", trial, me, ec)
		}
		// The unassigned analogue needs care: min over centers of an
		// expectation is ≥ the expectation of the min, so MaxExpCostUnassigned
		// is NOT below EcostUnassigned in general. It is, however, exactly
		// MaxExpCostAssigned under the ED assignment, which Jensen bounds by
		// the ED-assigned Ecost.
		edAssign, err := AssignED[geom.Vec](euclid, pts, centers)
		if err != nil {
			t.Fatal(err)
		}
		meu, err := MaxExpCostUnassigned[geom.Vec](euclid, pts, centers)
		if err != nil {
			t.Fatal(err)
		}
		meED, err := MaxExpCostAssigned[geom.Vec](euclid, pts, centers, edAssign)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(meu-meED) > 1e-9 {
			t.Fatalf("trial %d: MaxExpCostUnassigned %g != ED-assigned %g", trial, meu, meED)
		}
		ecED, err := EcostAssigned[geom.Vec](euclid, pts, centers, edAssign)
		if err != nil {
			t.Fatal(err)
		}
		if meu > ecED+1e-9 {
			t.Fatalf("trial %d: maxE(ED) %g > Emax(ED) %g", trial, meu, ecED)
		}
	}
}

// TestLemma32 verifies Lemma 3.2: for every i,
// EcostA ≥ Σ_j prob(P̂_i)·d(P̂_i, A(P_i)).
func TestLemma32(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 100; trial++ {
		pts := smallInstance(t, rng, 1+rng.Intn(5), 1+rng.Intn(4), 2)
		k := 1 + rng.Intn(3)
		centers := randomCenters(rng, k, 2)
		assign := make([]int, len(pts))
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		ec, err := EcostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			lower := uncertain.ExpectedDist[geom.Vec](euclid, p, centers[assign[i]])
			if lower > ec+1e-9 {
				t.Fatalf("trial %d: Lemma 3.2 violated at point %d: %g > %g", trial, i, lower, ec)
			}
		}
	}
}

// TestLemma33 verifies Lemma 3.3: E[max_i d(P̂_i, P̄_i)] ≤ 2·EcostA for any
// centers and assignment (Euclidean).
func TestLemma33(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 100; trial++ {
		pts := smallInstance(t, rng, 1+rng.Intn(5), 1+rng.Intn(4), 2)
		k := 1 + rng.Intn(3)
		centers := randomCenters(rng, k, 2)
		assign := make([]int, len(pts))
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		ec, err := EcostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil {
			t.Fatal(err)
		}
		// E[max_i d(P̂_i, P̄_i)]: assign point i to "its own" surrogate, i.e.
		// treat surrogates as a center list with the identity assignment.
		surr := uncertain.ExpectedPoints(pts)
		ident := make([]int, len(pts))
		for i := range ident {
			ident[i] = i
		}
		lhs, err := EcostAssigned[geom.Vec](euclid, pts, surr, ident)
		if err != nil {
			t.Fatal(err)
		}
		if lhs > 2*ec+1e-9 {
			t.Fatalf("trial %d: Lemma 3.3 violated: %g > 2·%g", trial, lhs, ec)
		}
	}
}

// TestLemma34 verifies Lemma 3.4: the certain k-center cost of the expected
// points is at most EcostA for any centers and assignment.
func TestLemma34(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	for trial := 0; trial < 100; trial++ {
		pts := smallInstance(t, rng, 1+rng.Intn(5), 1+rng.Intn(4), 2)
		k := 1 + rng.Intn(3)
		centers := randomCenters(rng, k, 2)
		assign := make([]int, len(pts))
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		ec, err := EcostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil {
			t.Fatal(err)
		}
		surr := uncertain.ExpectedPoints(pts)
		var certain float64
		for _, s := range surr {
			best := math.Inf(1)
			for _, c := range centers {
				if d := geom.Dist(s, c); d < best {
					best = d
				}
			}
			if best > certain {
				certain = best
			}
		}
		if certain > ec+1e-9 {
			t.Fatalf("trial %d: Lemma 3.4 violated: cost %g > EcostA %g", trial, certain, ec)
		}
	}
}

// TestLemma35And36 verifies the metric-space lemmas with 1-center
// surrogates: E[max_i d(P̂_i, P̃_i)] ≤ 3·EcostA (Lemma 3.5) and
// cost(centers) over P̃ ≤ 2·EcostA (Lemma 3.6), on finite metrics.
func TestLemma35And36(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 60; trial++ {
		// Random Euclidean-induced finite metric (generic position).
		m := 5 + rng.Intn(6)
		vecs := make([]geom.Vec, m)
		for i := range vecs {
			vecs[i] = geom.Vec{rng.Float64() * 10, rng.Float64() * 10}
		}
		space := metricspace.FromPoints[geom.Vec](euclid, vecs)
		n, z := 1+rng.Intn(4), 1+rng.Intn(3)
		pts, err := gen.OnVertices(rng, space, n, z)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(2)
		centers := make([]int, k)
		for i := range centers {
			centers[i] = rng.Intn(m)
		}
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		ec, err := EcostAssigned[int](space, pts, centers, assign)
		if err != nil {
			t.Fatal(err)
		}
		surr := uncertain.OneCentersDiscrete[int](space, pts, space.Points())
		ident := make([]int, n)
		for i := range ident {
			ident[i] = i
		}
		lhs, err := EcostAssigned[int](space, pts, surr, ident)
		if err != nil {
			t.Fatal(err)
		}
		if lhs > 3*ec+1e-9 {
			t.Fatalf("trial %d: Lemma 3.5 violated: %g > 3·%g", trial, lhs, ec)
		}
		var certain float64
		for _, s := range surr {
			best := math.Inf(1)
			for _, c := range centers {
				if d := space.Dist(s, c); d < best {
					best = d
				}
			}
			if best > certain {
				certain = best
			}
		}
		if certain > 2*ec+1e-9 {
			t.Fatalf("trial %d: Lemma 3.6 violated: %g > 2·%g", trial, certain, ec)
		}
	}
}
