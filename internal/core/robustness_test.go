package core

// Failure-injection tests: malformed instances must surface as errors, not
// panics deep inside the geometry code.

import (
	"testing"

	"repro/internal/uncertain"

	"repro/internal/geom"
)

func mixedDimSet() []uncertain.Point[geom.Vec] {
	return []uncertain.Point[geom.Vec]{
		uncertain.NewDeterministic(geom.Vec{0, 0}),
		uncertain.NewDeterministic(geom.Vec{1}), // wrong dimension
	}
}

func TestSolveEuclideanRejectsMixedDimensions(t *testing.T) {
	if _, err := SolveEuclidean(mixedDimSet(), 1, EuclideanOptions{}); err == nil {
		t.Error("mixed-dimension set accepted")
	}
}

func TestOneCenterRejectsMixedDimensions(t *testing.T) {
	if _, _, err := OneCenterApprox(mixedDimSet()); err == nil {
		t.Error("OneCenterApprox accepted mixed dimensions")
	}
	if _, _, err := OneCenterFirstExpectedPoint(mixedDimSet()); err == nil {
		t.Error("OneCenterFirstExpectedPoint accepted mixed dimensions")
	}
	if _, _, err := Optimal1CenterEuclidean(mixedDimSet(), 1e-6); err == nil {
		t.Error("Optimal1CenterEuclidean accepted mixed dimensions")
	}
}

func TestCommonDim(t *testing.T) {
	pts := []uncertain.Point[geom.Vec]{
		uncertain.NewDeterministic(geom.Vec{0, 0}),
		uncertain.NewDeterministic(geom.Vec{1, 1}),
	}
	d, err := uncertain.CommonDim(pts)
	if err != nil || d != 2 {
		t.Errorf("CommonDim = %d, %v", d, err)
	}
	if _, err := uncertain.CommonDim(nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := uncertain.CommonDim(mixedDimSet()); err == nil {
		t.Error("mixed dims accepted")
	}
}

// TestSolveEuclideanHugeCoordinates: extreme but finite magnitudes must not
// produce NaN costs.
func TestSolveEuclideanHugeCoordinates(t *testing.T) {
	pts := []uncertain.Point[geom.Vec]{
		uncertain.NewDeterministic(geom.Vec{1e150, 0}),
		uncertain.NewDeterministic(geom.Vec{-1e150, 0}),
	}
	res, err := SolveEuclidean(pts, 1, EuclideanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ecost != res.Ecost { // NaN check
		t.Error("NaN cost on huge coordinates")
	}
}

// TestSolveEuclideanDuplicateLocations: points whose locations coincide are
// legitimate (a certain point written redundantly).
func TestSolveEuclideanDuplicateLocations(t *testing.T) {
	p, err := uncertain.New(
		[]geom.Vec{{1, 1}, {1, 1}, {1, 1}},
		[]float64{0.3, 0.3, 0.4},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveEuclidean([]uncertain.Point[geom.Vec]{p}, 1, EuclideanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ecost != 0 {
		t.Errorf("Ecost = %g, want 0 for a degenerate certain point", res.Ecost)
	}
}

// TestSolveEuclideanKLargerThanN: more centers than points is legal and
// drives the certain radius to zero.
func TestSolveEuclideanKLargerThanN(t *testing.T) {
	pts := []uncertain.Point[geom.Vec]{
		uncertain.NewDeterministic(geom.Vec{0, 0}),
		uncertain.NewDeterministic(geom.Vec{5, 5}),
	}
	res, err := SolveEuclidean(pts, 10, EuclideanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CertainRadius != 0 || res.Ecost != 0 {
		t.Errorf("radius=%g ecost=%g, want 0", res.CertainRadius, res.Ecost)
	}
}

// TestSolveEuclideanZeroProbabilityLocation: zero-probability atoms are
// valid and must not influence costs (they never realize) though they may
// shift surrogates of the OC kind is NOT allowed — the weighted median
// ignores them by construction.
func TestSolveEuclideanZeroProbabilityLocation(t *testing.T) {
	p, err := uncertain.New(
		[]geom.Vec{{0, 0}, {1000, 1000}},
		[]float64{1, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	pts := []uncertain.Point[geom.Vec]{p}
	res, err := SolveEuclidean(pts, 1, EuclideanOptions{
		Surrogate: SurrogateOneCenter, Rule: RuleOC,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ecost > 1e-9 {
		t.Errorf("Ecost = %g; the zero-probability outlier leaked into the cost", res.Ecost)
	}
}
