package core

import (
	"fmt"

	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// FromArena assembles a Compiled directly from an already-flattened atom
// arena — the zero-copy entry point of the snapshot store (internal/arena).
// The columns must satisfy every invariant Compile establishes: probs holds
// only positive finite masses summing to 1 per point, offsets is strictly
// increasing from 0 to len(locs), ptIdx inverts offsets, and maxZ/dim match
// the data. The snapshot decoder validates all of that against the on-disk
// bytes before calling here; FromArena itself performs only the structural
// length checks that keep an inconsistent call from building out-of-bounds
// point views.
//
// The returned Compiled aliases every slice it is given — for a mapped
// snapshot the arena columns point straight into the mapped region, so the
// mapping must outlive the instance. allLocs is the CandidatesOrLocations
// default (all input locations including zero-probability ones) and may be
// the locs slice itself when nothing was pruned; cands may be nil. The
// memoized caches (surrogates, swap evaluator) start empty and rebuild
// lazily exactly as after a Compile — which is what keeps a
// frozen-then-opened instance's solves bit-identical to the in-memory one.
func FromArena[P any](space metricspace.Space[P], locs []P, probs []float64, offsets, ptIdx []int32, allLocs, cands []P, dim, maxZ int) (*Compiled[P], error) {
	if space == nil {
		return nil, fmt.Errorf("core: nil space")
	}
	n := len(offsets) - 1
	if n < 1 {
		return nil, fmt.Errorf("core: arena offsets describe %d points", n)
	}
	if len(probs) != len(locs) || len(ptIdx) != len(locs) {
		return nil, fmt.Errorf("core: arena columns disagree: %d locs, %d probs, %d ptIdx", len(locs), len(probs), len(ptIdx))
	}
	if offsets[0] != 0 || int(offsets[n]) != len(locs) {
		return nil, fmt.Errorf("core: arena offsets span [%d,%d], want [0,%d]", offsets[0], offsets[n], len(locs))
	}
	_, isEu := any(space).(metricspace.Euclidean)
	c := &Compiled[P]{
		space:       space,
		cands:       cands,
		pts:         make([]uncertain.Point[P], n),
		locs:        locs,
		probs:       probs,
		offsets:     offsets,
		ptIdx:       ptIdx,
		allLocs:     allLocs,
		maxZ:        maxZ,
		dim:         dim,
		isEuclidean: isEu,
	}
	for i := 0; i < n; i++ {
		start, end := offsets[i], offsets[i+1]
		if start > end || int(end) > len(locs) {
			return nil, fmt.Errorf("core: arena offsets not monotone at point %d", i)
		}
		c.pts[i] = uncertain.Point[P]{
			Locs:  locs[start:end:end],
			Probs: probs[start:end:end],
		}
	}
	return c, nil
}
