package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/metricspace"
	"repro/internal/par"
	"repro/internal/uncertain"
	"repro/obs"
)

// LocalSearchOptions configures SolveUnassignedLS.
type LocalSearchOptions struct {
	// MaxIter bounds the swap rounds (default 100).
	MaxIter int
	// Parallelism gates the worker-pool evaluation of the candidate-swap
	// neighborhood, with the same convention and bit-identical guarantee as
	// Options.Parallelism: every candidate's exact cost is computed exactly
	// as in the sequential scan, and the winning swap is selected by the
	// same deterministic left-to-right rule over the computed costs.
	Parallelism int
	// DisableSwapCache turns off the incremental SwapEvaluator (the
	// n×m distance-RV cache plus per-position base precomputation) and
	// falls back to from-scratch evaluation of every candidate swap — the
	// cross-check oracle. The cache costs ~12 bytes per (candidate, support
	// atom) pair and, on a compiled instance, is memoized for the instance
	// lifetime; disable it when m·Σz_i is too large to hold in memory.
	// Costs agree with the cached path to ≤ 1e-12 relative and the swap
	// trajectories are identical (pinned by tests).
	DisableSwapCache bool
}

// Workers normalizes Parallelism to a worker count; see Options.Workers.
func (o LocalSearchOptions) Workers() int {
	return Options{Parallelism: o.Parallelism}.Workers()
}

// SolveUnassignedLocalSearch optimizes the paper's UNASSIGNED objective
// over centers drawn from a candidate set; see SolveUnassignedLS.
//
// Deprecated: SolveUnassignedLocalSearch is the legacy flat entry point,
// kept for compatibility. New code should call SolveUnassignedLS, which
// adds context cancellation and a parallel neighborhood scan.
func SolveUnassignedLocalSearch[P any](space metricspace.Space[P], pts []uncertain.Point[P], candidates []P, k, maxIter int) ([]P, float64, error) {
	return SolveUnassignedLS(context.Background(), space, pts, candidates, k, LocalSearchOptions{MaxIter: maxIter})
}

// SolveUnassignedLS optimizes the paper's unassigned objective over a raw
// point set, compiling it per call; see SolveUnassignedLSCompiled for the
// algorithm. Callers that solve one instance repeatedly should Compile once
// and use SolveUnassignedLSCompiled, which reuses the instance's memoized
// 1-center surrogates and distance-RV evaluator across solves.
func SolveUnassignedLS[P any](ctx context.Context, space metricspace.Space[P], pts []uncertain.Point[P], candidates []P, k int, opts LocalSearchOptions) ([]P, float64, error) {
	if len(candidates) == 0 {
		return nil, 0, fmt.Errorf("core: SolveUnassignedLS needs candidates")
	}
	c, err := Compile(ctx, space, pts, candidates)
	if err != nil {
		return nil, 0, err
	}
	return SolveUnassignedLSCompiled(ctx, c, k, opts)
}

// SolveUnassignedLSCompiled optimizes the paper's UNASSIGNED objective
//
//	Ecost(C) = E[max_i min_j d(X_i, c_j)]
//
// over centers drawn from the compiled instance's candidate set
// (CandidatesOrLocations()), by single-swap local search on the exact cost
// evaluator: start from the ED-surrogate pipeline's centers snapped to
// their nearest candidates, then repeatedly apply the best improving
// (center-out, candidate-in) swap until none improves by more than a
// relative 1e-9 or MaxIter rounds pass.
//
// The paper defines this version but provides no algorithm for it (it cites
// the Huang–Li PTAS); this is the practical heuristic the exact O(N log N)
// evaluator makes affordable: each candidate swap is one exact evaluation,
// never a Monte-Carlo estimate. The result is a local optimum with respect
// to single swaps; on brute-forceable instances the tests compare it
// against the global optimum.
//
// Repeated calls on one Compiled reuse its memoized 1-center surrogates
// (the seeds) and — unless DisableSwapCache — its memoized distance-RV
// evaluator, so only the descent itself is paid per solve. The neighborhood
// scan (one exact evaluation per candidate, the hot loop) checks ctx
// between chunks and aborts with ctx.Err(); Parallelism > 1 fans the scan
// out over a worker pool with bit-identical results.
func SolveUnassignedLSCompiled[P any](ctx context.Context, c *Compiled[P], k int, opts LocalSearchOptions) ([]P, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c == nil {
		return nil, 0, fmt.Errorf("core: nil compiled instance")
	}
	candidates := c.CandidatesOrLocations()
	if k <= 0 {
		return nil, 0, fmt.Errorf("core: k = %d", k)
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}

	// Multi-start: single-swap local optima can be poor from one seed, so
	// descend from two structurally different ones and keep the better —
	// (a) 1-center surrogates snapped to candidates, (b) farthest-first
	// directly over the candidate set. The surrogates come from the
	// instance's memoized cache.
	surr, err := c.Surrogates(ctx, SurrogateOneCenter, candidates, opts.Workers())
	if err != nil {
		return nil, 0, err
	}
	space := c.Space()
	seeds := [][]int{
		greedySeed(space, surr, candidates, k),
		farthestFirstSeed(space, candidates, k),
	}
	// The distance-RV cache depends only on (pts, candidates), so the
	// instance's memoized evaluator serves every seed's descent — and every
	// later solve of the same instance.
	var ev *SwapEvaluator[P]
	if !opts.DisableSwapCache {
		ev, err = c.Evaluator(ctx, opts.Workers())
		if err != nil {
			return nil, 0, err
		}
	}
	var bestCenters []P
	bestCost := math.Inf(1)
	for _, seed := range seeds {
		centers, cost, err := swapDescent(ctx, c, candidates, seed, maxIter, opts.Workers(), ev)
		if err != nil {
			return nil, 0, err
		}
		if cost < bestCost {
			bestCenters, bestCost = centers, cost
		}
	}
	return bestCenters, bestCost, nil
}

// swapDescent runs best-improvement single-swap local search on the exact
// unassigned cost from the given seed. Each neighborhood scan evaluates
// every out-of-set candidate on the worker pool, then applies the
// deterministic left-to-right selection rule over the computed costs, so
// any worker count yields the sequential trajectory.
//
// With a non-nil SwapEvaluator the scan runs on the incremental path: one
// PrepareBase per position, then a zero-metric-call, allocation-free
// EvalSwap per candidate. With ev == nil it evaluates every swap from
// scratch on the compiled flat layout (the cross-check oracle), reusing
// per-worker center/value/arena scratch across the whole descent.
// Instrumentation: each completed swap round reports an "ls.iter" span —
// swaps evaluated, improvements taken, and the round-end E-cost in
// micro-units, i.e. the cost trajectory — and the whole descent reports one
// "ls.descent" span with the totals. With no tracer on ctx every span is
// inert (zero allocations, no clock reads); the per-candidate inner loop is
// never instrumented at all.
func swapDescent[P any](ctx context.Context, cm *Compiled[P], candidates []P, seed []int, maxIter, workers int, ev *SwapEvaluator[P]) ([]P, float64, error) {
	if workers < 1 {
		workers = 1
	}
	tracer := obs.FromContext(ctx)
	dsp := obs.StartSpan(tracer, "ls.descent")
	chosen := append([]int(nil), seed...)
	sel := func(idx []int) []P {
		out := make([]P, len(idx))
		for i, c := range idx {
			out[i] = candidates[c]
		}
		return out
	}
	inSet := make(map[int]bool, len(chosen))
	for _, c := range chosen {
		inSet[c] = true
	}
	costs := make([]float64, len(candidates))

	// scanPos fills costs[c] with the exact cost of replacing chosen[pos]
	// by c, for every out-of-set c.
	var cost float64
	var scanPos func(pos int) error
	if ev != nil {
		base := ev.NewBase()
		scratches := make([]*SwapScratch, workers)
		for w := range scratches {
			scratches[w] = ev.NewScratch()
		}
		cost = ev.Cost(base, scratches[0], chosen)
		scanPos = func(pos int) error {
			ev.PrepareBase(base, chosen, pos)
			return par.ForWorker(ctx, len(candidates), workers, func(w, c int) {
				if inSet[c] {
					return
				}
				costs[c] = ev.EvalSwap(base, scratches[w], c)
			})
		}
	} else {
		scr := cm.newFlatScratches(len(chosen), workers)
		cost = cm.ecostUnassignedFlat(sel(chosen), scr[0].vals, &scr[0].arena)
		base := make([]P, len(chosen))
		scanPos = func(pos int) error {
			for i, c := range chosen {
				base[i] = candidates[c]
			}
			return par.ForWorker(ctx, len(candidates), workers, func(w, c int) {
				if inSet[c] {
					return
				}
				s := scr[w]
				copy(s.centers, base)
				s.centers[pos] = candidates[c]
				costs[c] = cm.ecostUnassignedFlat(s.centers, s.vals, &s.arena)
			})
		}
	}

	iters, totalSwaps, totalTaken := 0, 0, 0
	for iter := 0; iter < maxIter; iter++ {
		isp := obs.StartSpan(tracer, "ls.iter")
		improved := false
		swaps, taken := 0, 0
		for pos := 0; pos < len(chosen); pos++ {
			old := chosen[pos]
			// Scan the swap neighborhood: exact cost of replacing
			// chosen[pos] by each out-of-set candidate.
			if err := scanPos(pos); err != nil {
				return nil, 0, err
			}
			swaps += len(candidates) - len(chosen)
			bestC, bestCost := -1, cost
			for c := range candidates {
				if inSet[c] {
					continue
				}
				if costs[c] < bestCost*(1-1e-9) {
					bestC, bestCost = c, costs[c]
				}
			}
			if bestC >= 0 {
				chosen[pos] = bestC
				delete(inSet, old)
				inSet[bestC] = true
				cost = bestCost
				taken++
				improved = true
			}
		}
		iters++
		totalSwaps += swaps
		totalTaken += taken
		isp.Int("iter", iter)
		isp.Int("swaps", swaps)
		isp.Int("improvements", taken)
		isp.Micros("ecost", cost)
		isp.End()
		if !improved {
			break
		}
	}
	dsp.Int("k", len(chosen))
	dsp.Int("iters", iters)
	dsp.Int("swaps", totalSwaps)
	dsp.Int("improvements", totalTaken)
	dsp.Micros("ecost", cost)
	dsp.End()
	return sel(chosen), cost, nil
}

// farthestFirstSeed is Gonzalez over the candidate set itself.
func farthestFirstSeed[P any](space metricspace.Space[P], candidates []P, k int) []int {
	chosen := []int{0}
	dist := make([]float64, len(candidates))
	for i := range dist {
		dist[i] = space.Dist(candidates[i], candidates[0])
	}
	for len(chosen) < k {
		far, farD := -1, -1.0
		for i, d := range dist {
			if d > farD {
				far, farD = i, d
			}
		}
		if far < 0 || farD == 0 {
			break
		}
		chosen = append(chosen, far)
		for i := range dist {
			if d := space.Dist(candidates[i], candidates[far]); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return chosen
}

// greedySeed picks k candidate indices: each surrogate's nearest candidate,
// de-duplicated, topped up farthest-first.
func greedySeed[P any](space metricspace.Space[P], surr, candidates []P, k int) []int {
	snap := func(p P) int {
		best, bestD := 0, math.Inf(1)
		for c, cand := range candidates {
			if d := space.Dist(p, cand); d < bestD {
				best, bestD = c, d
			}
		}
		return best
	}
	seen := map[int]bool{}
	var chosen []int
	for _, s := range surr {
		if len(chosen) == k {
			break
		}
		c := snap(s)
		if !seen[c] {
			seen[c] = true
			chosen = append(chosen, c)
		}
	}
	// Top up farthest-first over candidates.
	for len(chosen) < k {
		far, farD := -1, -1.0
		for c := range candidates {
			if seen[c] {
				continue
			}
			d := math.Inf(1)
			for _, s := range chosen {
				if dd := space.Dist(candidates[c], candidates[s]); dd < d {
					d = dd
				}
			}
			if d > farD {
				far, farD = c, d
			}
		}
		if far < 0 {
			break // fewer distinct candidates than k
		}
		seen[far] = true
		chosen = append(chosen, far)
	}
	return chosen
}
