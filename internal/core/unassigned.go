package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/metricspace"
	"repro/internal/par"
	"repro/internal/uncertain"
	"repro/obs"
)

// LocalSearchOptions configures SolveUnassignedLS.
type LocalSearchOptions struct {
	// MaxIter bounds the swap rounds (default 100).
	MaxIter int
	// Parallelism gates the worker-pool evaluation of the candidate-swap
	// neighborhood, with the same convention and bit-identical guarantee as
	// Options.Parallelism: every candidate's exact cost is computed exactly
	// as in the sequential scan, and the winning swap is selected by the
	// same deterministic left-to-right rule over the computed costs.
	Parallelism int
	// DisableSwapCache turns off the incremental SwapEvaluator (the
	// n×m distance-RV cache plus per-position base precomputation) and
	// falls back to from-scratch evaluation of every candidate swap — the
	// cross-check oracle. The cache costs ~12 bytes per (candidate, support
	// atom) pair and, on a compiled instance, is memoized for the instance
	// lifetime; disable it when m·Σz_i is too large to hold in memory.
	// Costs agree with the cached path to ≤ 1e-12 relative and the swap
	// trajectories are identical (pinned by tests). Disabling the cache
	// also disables the candidate index (it consumes the cached columns),
	// so the oracle path stays pure.
	DisableSwapCache bool
	// CandidateIndex selects how the neighborhood scan uses the instance's
	// candidate index: CandIndexPrune (the default, reached through
	// CandIndexDefault) keeps the scan exact but skips candidates whose
	// triangle-inequality lower bound certifies they cannot beat the
	// incumbent — bit-identical trajectories at a fraction of the
	// evaluations; CandIndexApprox restricts the scan to the neighborhood
	// graph of the current centers (explicitly approximate);
	// CandIndexOff scans everything (the oracle).
	CandidateIndex CandidateIndexMode
	// IndexPivots sets the pivot count of the prune bound
	// (0 = DefaultIndexPivots; only the default is memoized).
	IndexPivots int
	// GraphDegree sets the per-node degree of the approximate neighborhood
	// graph (0 = DefaultGraphDegree; only the default is memoized).
	GraphDegree int
}

// Workers normalizes Parallelism to a worker count; see Options.Workers.
func (o LocalSearchOptions) Workers() int {
	return Options{Parallelism: o.Parallelism}.Workers()
}

// SolveUnassignedLocalSearch optimizes the paper's UNASSIGNED objective
// over centers drawn from a candidate set; see SolveUnassignedLS.
//
// Deprecated: SolveUnassignedLocalSearch is the legacy flat entry point,
// kept for compatibility. New code should call SolveUnassignedLS, which
// adds context cancellation and a parallel neighborhood scan.
func SolveUnassignedLocalSearch[P any](space metricspace.Space[P], pts []uncertain.Point[P], candidates []P, k, maxIter int) ([]P, float64, error) {
	return SolveUnassignedLS(context.Background(), space, pts, candidates, k, LocalSearchOptions{MaxIter: maxIter})
}

// SolveUnassignedLS optimizes the paper's unassigned objective over a raw
// point set, compiling it per call; see SolveUnassignedLSCompiled for the
// algorithm. Callers that solve one instance repeatedly should Compile once
// and use SolveUnassignedLSCompiled, which reuses the instance's memoized
// 1-center surrogates and distance-RV evaluator across solves.
func SolveUnassignedLS[P any](ctx context.Context, space metricspace.Space[P], pts []uncertain.Point[P], candidates []P, k int, opts LocalSearchOptions) ([]P, float64, error) {
	if len(candidates) == 0 {
		return nil, 0, fmt.Errorf("core: SolveUnassignedLS needs candidates")
	}
	c, err := Compile(ctx, space, pts, candidates)
	if err != nil {
		return nil, 0, err
	}
	return SolveUnassignedLSCompiled(ctx, c, k, opts)
}

// SolveUnassignedLSCompiled optimizes the paper's UNASSIGNED objective
//
//	Ecost(C) = E[max_i min_j d(X_i, c_j)]
//
// over centers drawn from the compiled instance's candidate set
// (CandidatesOrLocations()), by single-swap local search on the exact cost
// evaluator: start from the ED-surrogate pipeline's centers snapped to
// their nearest candidates, then repeatedly apply the best improving
// (center-out, candidate-in) swap until none improves by more than a
// relative 1e-9 or MaxIter rounds pass.
//
// The paper defines this version but provides no algorithm for it (it cites
// the Huang–Li PTAS); this is the practical heuristic the exact O(N log N)
// evaluator makes affordable: each candidate swap is one exact evaluation,
// never a Monte-Carlo estimate. The result is a local optimum with respect
// to single swaps; on brute-forceable instances the tests compare it
// against the global optimum.
//
// Repeated calls on one Compiled reuse its memoized 1-center surrogates
// (the seeds) and — unless DisableSwapCache — its memoized distance-RV
// evaluator, so only the descent itself is paid per solve. By default
// (CandidateIndex unset, i.e. CandIndexPrune) the scan additionally skips
// every candidate whose pivot lower bound certifies it cannot beat the
// incumbent — the trajectory is bit-identical to the unpruned scan (see
// CandIndex) while typically evaluating a small fraction of the
// neighborhood. The neighborhood scan checks ctx between chunks and aborts
// with ctx.Err(); Parallelism > 1 fans the scan out over a worker pool with
// bit-identical results.
func SolveUnassignedLSCompiled[P any](ctx context.Context, c *Compiled[P], k int, opts LocalSearchOptions) ([]P, float64, error) {
	chosen, cost, _, err := solveUnassignedLS(ctx, c, k, opts)
	if err != nil {
		return nil, 0, err
	}
	return selectCandidates(c.CandidatesOrLocations(), chosen), cost, nil
}

// SolveUnassignedLSSweepCompiled runs the local-search descent and then
// evaluates the full single-swap neighborhood of the winning centers — the
// EcostSweepCompiled matrix — reusing the descent's prepared scan state
// (the memoized evaluator plus the per-scan base and per-worker scratches
// the final round already has in hand) instead of allocating a fresh set.
// The combined call allocates only the k result rows beyond the solve
// itself (alloc-pinned by tests); the matrix is exact — the full sweep
// never prunes, whatever the solve's CandidateIndex mode. Returns the
// centers, their cost, the sweep matrix and the chosen candidate indices
// (sweep[pos][c] = cost of centers with position pos replaced by candidate
// c; chosen indexes CandidatesOrLocations()).
func SolveUnassignedLSSweepCompiled[P any](ctx context.Context, c *Compiled[P], k int, opts LocalSearchOptions) ([]P, float64, [][]float64, []int, error) {
	chosen, cost, ds, err := solveUnassignedLS(ctx, c, k, opts)
	if err != nil {
		return nil, 0, nil, nil, err
	}
	candidates := c.CandidatesOrLocations()
	sp := obs.StartSpan(obs.FromContext(ctx), "sweep")
	sp.Int("k", len(chosen))
	sp.Int("candidates", len(candidates))
	sp.Int("reused", 1)
	var sweep [][]float64
	if ds.ev != nil {
		sweep, err = ecostSweepRows(ctx, ds.ev, ds.base, ds.scratches, chosen, ds.workers)
	} else {
		sweep, err = ecostSweepFlatRows(ctx, c, candidates, ds.flat, chosen, ds.workers)
	}
	if err != nil {
		return nil, 0, nil, nil, err
	}
	sp.End()
	return selectCandidates(candidates, chosen), cost, sweep, chosen, nil
}

// selectCandidates materializes candidate indices as points.
func selectCandidates[P any](candidates []P, idx []int) []P {
	out := make([]P, len(idx))
	for i, c := range idx {
		out[i] = candidates[c]
	}
	return out
}

// descentState is the scan state shared by every descent of one solve (and
// by a trailing sweep on the SolveUnassignedLSSweepCompiled path): the
// evaluator with its per-scan base and per-worker scratches, the candidate
// index's pivot/graph layers with their per-position prune state, and — on
// the oracle path — the per-worker from-scratch scratches. Allocated once
// per solve; both seed descents and the final-round sweep reuse it.
type descentState[P any] struct {
	workers int

	// Cached path (ev != nil).
	ev        *SwapEvaluator[P]
	base      *SwapBase
	scratches []*SwapScratch

	// Candidate index (nil in CandIndexOff / oracle mode).
	ix       *CandIndex[P]
	st       *PruneState
	pivotOrd []int32    // candidate -> pivot ordinal, -1 when not a pivot
	gr       *CandGraph // non-nil only in CandIndexApprox
	mark     []bool     // approx scan set, rebuilt per position

	// Oracle path (ev == nil).
	flat []*flatScratch[P]
}

// pruneStats aggregates one descent's scan accounting: candidates scanned
// (in the scan set and not currently centers), candidates pruned by the
// lower bound without evaluation, and bound failures (bound computed but
// too weak — the candidate was evaluated exactly). Pivot evaluations count
// as scanned but neither pruned nor failed.
type pruneStats struct {
	scanned, pruned, boundFail int
}

// solveUnassignedLS is the shared engine behind SolveUnassignedLSCompiled
// and SolveUnassignedLSSweepCompiled: resolve the index mode, build the
// shared descent state, run the two seed descents, return the winner's
// candidate indices plus the state for a caller that wants to keep
// scanning with it.
func solveUnassignedLS[P any](ctx context.Context, c *Compiled[P], k int, opts LocalSearchOptions) ([]int, float64, *descentState[P], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c == nil {
		return nil, 0, nil, fmt.Errorf("core: nil compiled instance")
	}
	candidates := c.CandidatesOrLocations()
	if k <= 0 {
		return nil, 0, nil, fmt.Errorf("core: k = %d", k)
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}

	// Multi-start: single-swap local optima can be poor from one seed, so
	// descend from two structurally different ones and keep the better —
	// (a) 1-center surrogates snapped to candidates, (b) farthest-first
	// directly over the candidate set. The surrogates come from the
	// instance's memoized cache.
	surr, err := c.Surrogates(ctx, SurrogateOneCenter, candidates, opts.Workers())
	if err != nil {
		return nil, 0, nil, err
	}
	space := c.Space()
	seeds := [][]int{
		greedySeed(space, surr, candidates, k),
		farthestFirstSeed(space, candidates, k),
	}

	// The index modes all live on the cached evaluator (the pivot
	// surrogates are read off its columns), so DisableSwapCache forces the
	// pure oracle: no cache, no index, from-scratch evaluations only.
	mode := opts.CandidateIndex.resolve()
	ds := &descentState[P]{workers: opts.Workers()}
	if opts.DisableSwapCache {
		ds.flat = c.newFlatScratches(k, ds.workers)
	} else {
		// The distance-RV cache depends only on (pts, candidates), so the
		// instance's memoized evaluator serves every seed's descent — and
		// every later solve of the same instance.
		ds.ev, err = c.Evaluator(ctx, ds.workers)
		if err != nil {
			return nil, 0, nil, err
		}
		ds.base = ds.ev.NewBase()
		ds.scratches = make([]*SwapScratch, ds.workers)
		for w := range ds.scratches {
			ds.scratches[w] = ds.ev.NewScratch()
		}
		if mode != CandIndexOff {
			ds.ix, err = c.CandIndex(ctx, opts.IndexPivots, ds.workers)
			if err != nil {
				return nil, 0, nil, err
			}
			ds.st = ds.ix.NewPruneState()
			ds.pivotOrd = make([]int32, len(candidates))
			for i := range ds.pivotOrd {
				ds.pivotOrd[i] = -1
			}
			for ord, p := range ds.ix.Pivots() {
				ds.pivotOrd[p] = int32(ord)
			}
			if mode == CandIndexApprox {
				ds.gr, err = c.CandGraph(ctx, opts.GraphDegree, ds.workers)
				if err != nil {
					return nil, 0, nil, err
				}
				ds.mark = make([]bool, len(candidates))
			}
		}
	}

	var bestChosen []int
	bestCost := math.Inf(1)
	for _, seed := range seeds {
		chosen, cost, err := swapDescent(ctx, c, candidates, seed, maxIter, ds)
		if err != nil {
			return nil, 0, nil, err
		}
		if cost < bestCost {
			bestChosen, bestCost = chosen, cost
		}
	}
	return bestChosen, bestCost, ds, nil
}

// swapDescent runs best-improvement single-swap local search on the exact
// unassigned cost from the given seed. Each neighborhood scan evaluates the
// scan set on the worker pool, then applies the deterministic left-to-right
// selection rule over the computed costs, so any worker count yields the
// sequential trajectory.
//
// With a non-nil evaluator the scan runs on the incremental path: one
// PrepareBase per position, then a zero-metric-call, allocation-free
// EvalSwap per candidate. With a pivot index (CandIndexPrune, the default)
// each position first evaluates the P pivots exactly, then skips every
// candidate whose lower bound LowerBound(c) ≥ cost₀, where cost₀ is the
// current solution's cost at scan entry. That pruning is provably safe:
// the selection rule only accepts costs[c] < best·(1−1e-9) with best ≤
// cost₀, and the bound guarantees the exact cost of a pruned candidate is
// ≥ cost₀ up to ~1e-12 roundoff — three orders of magnitude inside the
// 1e-9 acceptance slack — so a pruned candidate could never have been
// selected. Pruned (and, in CandIndexApprox, out-of-neighborhood)
// candidates are marked +Inf, leaving the selection rule untouched;
// trajectories are therefore bit-identical to the unpruned scan,
// independent of worker count, pinned by tests. With ds.ev == nil it
// evaluates every swap from scratch on the compiled flat layout (the
// cross-check oracle), reusing per-worker center/value/arena scratch
// across the whole descent.
//
// Instrumentation: each completed swap round reports an "ls.iter" span —
// swaps evaluated, improvements taken, and the round-end E-cost in
// micro-units, i.e. the cost trajectory — and the whole descent reports one
// "ls.descent" span with the totals, plus one "ls.prune" span (pivot count,
// candidates scanned, pruned, bound failures) when an index is active. With
// no tracer on ctx every span is inert (zero allocations, no clock reads);
// the per-candidate inner loop is never instrumented at all.
func swapDescent[P any](ctx context.Context, cm *Compiled[P], candidates []P, seed []int, maxIter int, ds *descentState[P]) ([]int, float64, error) {
	workers := ds.workers
	if workers < 1 {
		workers = 1
	}
	tracer := obs.FromContext(ctx)
	dsp := obs.StartSpan(tracer, "ls.descent")
	chosen := append([]int(nil), seed...)
	inSet := make(map[int]bool, len(chosen))
	for _, c := range chosen {
		inSet[c] = true
	}
	costs := make([]float64, len(candidates))
	var stats pruneStats

	// scanPos fills costs[c] with the exact cost of replacing chosen[pos]
	// by c for every out-of-set c in the scan set, and +Inf for candidates
	// certified non-improving (prune) or outside the neighborhood (approx).
	var cost float64
	var scanPos func(pos int) error
	if ds.ev != nil {
		ev := ds.ev
		cost = ev.Cost(ds.base, ds.scratches[0], chosen)
		scanPos = func(pos int) error {
			ev.PrepareBase(ds.base, chosen, pos)
			if ds.ix != nil {
				// Pivot pass: exact costs for all P pivots — the bound's
				// anchors, and exact scan entries where they are candidates.
				ds.st.threshold = cost
				piv := ds.ix.Pivots()
				if err := par.ForWorker(ctx, len(piv), workers, func(w, p int) {
					v := ev.EvalSwap(ds.base, ds.scratches[w], int(piv[p]))
					ds.st.pivotCost[p] = v
					if !inSet[int(piv[p])] {
						costs[piv[p]] = v
					}
				}); err != nil {
					return err
				}
			}
			if ds.gr != nil {
				// Approx scan set: neighborhoods of the current centers,
				// plus the pivots as global probes.
				for i := range ds.mark {
					ds.mark[i] = false
				}
				for _, ch := range chosen {
					for _, nb := range ds.gr.Neighbors(ch) {
						ds.mark[nb] = true
					}
				}
				for _, p := range ds.ix.Pivots() {
					ds.mark[p] = true
				}
			}
			return par.ForWorker(ctx, len(candidates), workers, func(w, c int) {
				if inSet[c] {
					return
				}
				if ds.ix != nil && ds.pivotOrd[c] >= 0 {
					return // exact cost already written by the pivot pass
				}
				if ds.gr != nil && !ds.mark[c] {
					costs[c] = math.Inf(1)
					return
				}
				if ds.ix != nil && ds.ix.LowerBound(ds.base, ds.st, c) >= ds.st.threshold {
					costs[c] = math.Inf(1)
					return
				}
				costs[c] = ev.EvalSwap(ds.base, ds.scratches[w], c)
			})
		}
	} else {
		scr := ds.flat
		cent := scr[0].centers[:len(chosen)]
		for i, c := range chosen {
			cent[i] = candidates[c]
		}
		cost = cm.ecostUnassignedFlat(cent, scr[0].vals, &scr[0].arena)
		base := make([]P, len(chosen))
		scanPos = func(pos int) error {
			for i, c := range chosen {
				base[i] = candidates[c]
			}
			return par.ForWorker(ctx, len(candidates), workers, func(w, c int) {
				if inSet[c] {
					return
				}
				s := scr[w]
				cent := s.centers[:len(chosen)]
				copy(cent, base)
				cent[pos] = candidates[c]
				costs[c] = cm.ecostUnassignedFlat(cent, s.vals, &s.arena)
			})
		}
	}

	// countScan folds one position's outcome into the descent's prune
	// accounting — serially, after the parallel scan, so the numbers are
	// deterministic for any worker count.
	countScan := func() {
		if ds.ix == nil {
			return
		}
		for c := range candidates {
			if inSet[c] {
				continue
			}
			if ds.gr != nil && !ds.mark[c] {
				continue // outside the approx scan set: never considered
			}
			stats.scanned++
			if ds.pivotOrd[c] >= 0 {
				continue // pivot: evaluated exactly, no bound involved
			}
			if math.IsInf(costs[c], 1) {
				stats.pruned++
			} else {
				stats.boundFail++
			}
		}
	}

	iters, totalSwaps, totalTaken := 0, 0, 0
	for iter := 0; iter < maxIter; iter++ {
		isp := obs.StartSpan(tracer, "ls.iter")
		improved := false
		swaps, taken := 0, 0
		for pos := 0; pos < len(chosen); pos++ {
			old := chosen[pos]
			// Scan the swap neighborhood: exact cost of replacing
			// chosen[pos] by each out-of-set candidate.
			if err := scanPos(pos); err != nil {
				return nil, 0, err
			}
			countScan()
			swaps += len(candidates) - len(chosen)
			bestC, bestCost := -1, cost
			for c := range candidates {
				if inSet[c] {
					continue
				}
				if costs[c] < bestCost*(1-1e-9) {
					bestC, bestCost = c, costs[c]
				}
			}
			if bestC >= 0 {
				chosen[pos] = bestC
				delete(inSet, old)
				inSet[bestC] = true
				cost = bestCost
				taken++
				improved = true
			}
		}
		iters++
		totalSwaps += swaps
		totalTaken += taken
		isp.Int("iter", iter)
		isp.Int("swaps", swaps)
		isp.Int("improvements", taken)
		isp.Micros("ecost", cost)
		isp.End()
		if !improved {
			break
		}
	}
	if ds.ix != nil {
		psp := obs.StartSpan(tracer, "ls.prune")
		psp.Int("pivots", ds.ix.NumPivots())
		psp.Int("scanned", stats.scanned)
		psp.Int("pruned", stats.pruned)
		psp.Int("bound_failures", stats.boundFail)
		psp.End()
	}
	dsp.Int("k", len(chosen))
	dsp.Int("iters", iters)
	dsp.Int("swaps", totalSwaps)
	dsp.Int("improvements", totalTaken)
	dsp.Micros("ecost", cost)
	dsp.End()
	return chosen, cost, nil
}

// farthestFirstSeed is Gonzalez over the candidate set itself.
func farthestFirstSeed[P any](space metricspace.Space[P], candidates []P, k int) []int {
	chosen := []int{0}
	dist := make([]float64, len(candidates))
	for i := range dist {
		dist[i] = space.Dist(candidates[i], candidates[0])
	}
	for len(chosen) < k {
		far, farD := -1, -1.0
		for i, d := range dist {
			if d > farD {
				far, farD = i, d
			}
		}
		if far < 0 || farD == 0 {
			break
		}
		chosen = append(chosen, far)
		for i := range dist {
			if d := space.Dist(candidates[i], candidates[far]); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return chosen
}

// greedySeed picks k candidate indices: each surrogate's nearest candidate,
// de-duplicated, topped up farthest-first.
func greedySeed[P any](space metricspace.Space[P], surr, candidates []P, k int) []int {
	snap := func(p P) int {
		best, bestD := 0, math.Inf(1)
		for c, cand := range candidates {
			if d := space.Dist(p, cand); d < bestD {
				best, bestD = c, d
			}
		}
		return best
	}
	seen := map[int]bool{}
	var chosen []int
	for _, s := range surr {
		if len(chosen) == k {
			break
		}
		c := snap(s)
		if !seen[c] {
			seen[c] = true
			chosen = append(chosen, c)
		}
	}
	// Top up farthest-first over candidates.
	for len(chosen) < k {
		far, farD := -1, -1.0
		for c := range candidates {
			if seen[c] {
				continue
			}
			d := math.Inf(1)
			for _, s := range chosen {
				if dd := space.Dist(candidates[c], candidates[s]); dd < d {
					d = dd
				}
			}
			if d > farD {
				far, farD = c, d
			}
		}
		if far < 0 {
			break // fewer distinct candidates than k
		}
		seen[far] = true
		chosen = append(chosen, far)
	}
	return chosen
}
