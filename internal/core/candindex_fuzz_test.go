package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/metricspace"
)

// fuzzFiniteInstance compiles a random finite-metric instance (points on the
// vertices of a random point cloud's induced metric) for the bound fuzzer.
func fuzzFiniteInstance(t testing.TB, rng *rand.Rand) *Compiled[int] {
	t.Helper()
	mv := 4 + rng.Intn(10)
	vecs := make([]geom.Vec, mv)
	for i := range vecs {
		vecs[i] = geom.Vec{rng.Float64() * 10, rng.Float64() * 10}
	}
	space := metricspace.FromPoints[geom.Vec](metricspace.Euclidean{}, vecs)
	n := 2 + rng.Intn(4)
	z := 1 + rng.Intn(3)
	pts, err := gen.OnVertices(rng, space, n, z)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile[int](context.Background(), space, pts, space.Points())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// FuzzLowerBound fuzzes the pruning soundness invariant — for a random
// metric instance, every candidate's pivot lower bound must not exceed its
// exact swap cost beyond floating-point roundoff:
//
//	LowerBound(base, c) ≤ EvalSwap(base, c) + 1e-12·scale
//
// The fuzzer steers instance shape (sizes, support, metric kind, chosen
// set) through a seeded RNG, so every failure reproduces from its corpus
// entry. This is the safety net under CandIndexPrune's bit-identical
// trajectory claim: if this invariant held only usually, pruning would
// silently change answers.
//
//	go test ./internal/core -run=FuzzLowerBound -fuzz=FuzzLowerBound -fuzztime=30s
func FuzzLowerBound(f *testing.F) {
	f.Add(int64(1), false)
	f.Add(int64(2), true)
	f.Add(int64(1234567), false)
	f.Add(int64(-99), true)
	f.Fuzz(func(t *testing.T, seed int64, finite bool) {
		rng := rand.New(rand.NewSource(seed))
		pick := func(m int) []int {
			k := 1 + rng.Intn(3)
			if k > m {
				k = m
			}
			return rng.Perm(m)[:k]
		}
		if finite {
			cm := fuzzFiniteInstance(t, rng)
			checkLowerBound(t, cm, pick(len(cm.CandidatesOrLocations())))
			return
		}
		cm, _, cands := boundInstance(t, rng)
		checkLowerBound(t, cm, pick(len(cands)))
	})
}
