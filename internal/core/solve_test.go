package core_test

// Theorem-bound tests: every approximation factor in Table 1 is validated
// empirically. The reference optimum is the brute-force optimum over a
// discrete candidate set (all locations plus all expected points); since
// restricting centers can only increase the optimum, measured ratios are
// lower bounds on the true ratios, so every theorem bound must hold for
// them as well. On finite metric spaces the candidate set is the whole
// space and the checks are exact.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

var euclid = metricspace.Euclidean{}

const slack = 1e-9

// euclideanCandidates returns the discrete candidate set used by the
// brute-force reference: every location plus every expected point.
func euclideanCandidates(pts []uncertain.Point[geom.Vec]) []geom.Vec {
	return append(uncertain.AllLocations(pts), uncertain.ExpectedPoints(pts)...)
}

func smallEuclidean(t testing.TB, rng *rand.Rand, trial int) ([]uncertain.Point[geom.Vec], int) {
	t.Helper()
	n := 2 + rng.Intn(4)
	z := 1 + rng.Intn(3)
	var pts []uncertain.Point[geom.Vec]
	var err error
	if trial%3 == 0 {
		pts, err = gen.BimodalAdversarial(rng, n, max(z, 2), 2, 20)
	} else {
		pts, err = gen.GaussianClusters(rng, n, z, 2, 2, 1.0, 0.5)
	}
	if err != nil {
		t.Fatal(err)
	}
	k := 1 + rng.Intn(2)
	return pts, k
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestTheorem22 validates the restricted assigned bounds: 5+ε under ED and
// 3+ε under EP (and the Gonzalez specializations 6 and 4).
func TestTheorem22(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	for trial := 0; trial < 25; trial++ {
		pts, k := smallEuclidean(t, rng, trial)
		cands := euclideanCandidates(pts)
		for _, tc := range []struct {
			rule   core.Rule
			solver core.Solver
			factor func(eps float64) float64
		}{
			{core.RuleED, core.SolverEps, func(e float64) float64 { return 5 + e }},
			{core.RuleEP, core.SolverEps, func(e float64) float64 { return 3 + e }},
			{core.RuleED, core.SolverGonzalez, func(float64) float64 { return 6 }},
			{core.RuleEP, core.SolverGonzalez, func(float64) float64 { return 4 }},
		} {
			res, err := core.SolveEuclidean(pts, k, core.EuclideanOptions{
				Surrogate: core.SurrogateExpectedPoint,
				Rule:      tc.rule,
				Solver:    tc.solver,
				Eps:       0.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			opt, err := bruteforce.RestrictedAssignedEuclidean(pts, cands, k, tc.rule, 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if opt.Cost <= 0 {
				continue // degenerate zero-cost instance
			}
			bound := tc.factor(res.EffectiveEps)
			if ratio := res.Ecost / opt.Cost; ratio > bound+slack {
				t.Errorf("trial %d rule=%v solver=%v: ratio %.4f > bound %.2f",
					trial, tc.rule, tc.solver, ratio, bound)
			}
		}
	}
}

// TestTheorem24And25 validates the unrestricted assigned bounds in Euclidean
// space: 5+ε under ED and 3+ε under EP (4 and 6 for Gonzalez per Table 1).
func TestTheorem24And25(t *testing.T) {
	rng := rand.New(rand.NewSource(240))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(3) // keep k^n small
		z := 1 + rng.Intn(2)
		pts, err := gen.GaussianClusters(rng, n, z, 2, 2, 1.0, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if trial%3 == 0 {
			pts, err = gen.BimodalAdversarial(rng, n, 2, 2, 20)
			if err != nil {
				t.Fatal(err)
			}
		}
		k := 1 + rng.Intn(2)
		cands := euclideanCandidates(pts)
		opt, err := bruteforce.Unrestricted[geom.Vec](euclid, pts, cands, k, 2_000_000, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Cost <= 0 {
			continue
		}
		for _, tc := range []struct {
			rule   core.Rule
			solver core.Solver
			factor func(eps float64) float64
		}{
			{core.RuleED, core.SolverEps, func(e float64) float64 { return 5 + e }},
			{core.RuleEP, core.SolverEps, func(e float64) float64 { return 3 + e }},
			{core.RuleED, core.SolverGonzalez, func(float64) float64 { return 6 }},
			{core.RuleEP, core.SolverGonzalez, func(float64) float64 { return 4 }},
		} {
			res, err := core.SolveEuclidean(pts, k, core.EuclideanOptions{
				Surrogate: core.SurrogateExpectedPoint,
				Rule:      tc.rule,
				Solver:    tc.solver,
				Eps:       0.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			bound := tc.factor(res.EffectiveEps)
			if ratio := res.Ecost / opt.Cost; ratio > bound+slack {
				t.Errorf("trial %d rule=%v solver=%v: unrestricted ratio %.4f > bound %.2f",
					trial, tc.rule, tc.solver, ratio, bound)
			}
		}
	}
}

// finiteInstance builds a small random finite metric space with uncertain
// points over its vertices.
func finiteInstance(t testing.TB, rng *rand.Rand) (*metricspace.Finite, []uncertain.Point[int], int) {
	t.Helper()
	m := 6 + rng.Intn(5)
	vecs := make([]geom.Vec, m)
	for i := range vecs {
		vecs[i] = geom.Vec{rng.Float64() * 10, rng.Float64() * 10}
	}
	space := metricspace.FromPoints[geom.Vec](euclid, vecs)
	n := 2 + rng.Intn(3)
	z := 1 + rng.Intn(3)
	pts, err := gen.OnVertices(rng, space, n, z)
	if err != nil {
		t.Fatal(err)
	}
	k := 1 + rng.Intn(2)
	return space, pts, k
}

// TestTheorem26And27 validates the general-metric unrestricted bounds:
// 7+2ε under ED and 5+2ε under OC. On a finite space with all points as
// candidates the brute-force optimum is exact, so these checks are exact.
func TestTheorem26And27(t *testing.T) {
	rng := rand.New(rand.NewSource(260))
	for trial := 0; trial < 15; trial++ {
		space, pts, k := finiteInstance(t, rng)
		cands := space.Points()
		opt, err := bruteforce.Unrestricted[int](space, pts, cands, k, 2_000_000, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Cost <= 0 {
			continue
		}
		for _, tc := range []struct {
			rule   core.Rule
			solver core.Solver
			factor func(eps float64) float64
		}{
			{core.RuleED, core.SolverGonzalez, func(e float64) float64 { return 7 + 2*e }},
			{core.RuleOC, core.SolverGonzalez, func(e float64) float64 { return 5 + 2*e }},
			{core.RuleED, core.SolverExactDiscrete, func(e float64) float64 { return 7 + 2*e }},
			{core.RuleOC, core.SolverExactDiscrete, func(e float64) float64 { return 5 + 2*e }},
		} {
			res, err := core.SolveMetric[int](space, pts, cands, k, core.MetricOptions{
				Rule:   tc.rule,
				Solver: tc.solver,
			})
			if err != nil {
				t.Fatal(err)
			}
			bound := tc.factor(res.EffectiveEps)
			if ratio := res.Ecost / opt.Cost; ratio > bound+slack {
				t.Errorf("trial %d rule=%v solver=%v: metric ratio %.4f > bound %.2f",
					trial, tc.rule, tc.solver, ratio, bound)
			}
		}
	}
}

// TestTheorem23 validates that the restricted-ED optimum is within factor 3
// of the unrestricted optimum, exactly, on finite spaces.
func TestTheorem23(t *testing.T) {
	rng := rand.New(rand.NewSource(230))
	for trial := 0; trial < 15; trial++ {
		space, pts, k := finiteInstance(t, rng)
		cands := space.Points()
		optED, err := bruteforce.RestrictedAssigned[int](space, pts, cands, k, core.RuleED, cands, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		optUn, err := bruteforce.Unrestricted[int](space, pts, cands, k, 2_000_000, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if optUn.Cost <= 0 {
			continue
		}
		if optED.Cost > 3*optUn.Cost+slack {
			t.Errorf("trial %d: Theorem 2.3 violated: restricted-ED %g > 3×unrestricted %g",
				trial, optED.Cost, optUn.Cost)
		}
	}
}

// TestSolveEuclideanValidation exercises the error paths.
func TestSolveEuclideanValidation(t *testing.T) {
	pts := []uncertain.Point[geom.Vec]{uncertain.NewDeterministic(geom.Vec{0, 0})}
	if _, err := core.SolveEuclidean(nil, 1, core.EuclideanOptions{}); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := core.SolveEuclidean(pts, 0, core.EuclideanOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := core.SolveEuclidean(pts, 1, core.EuclideanOptions{Surrogate: 99}); err == nil {
		t.Error("unknown surrogate accepted")
	}
	if _, err := core.SolveEuclidean(pts, 1, core.EuclideanOptions{Solver: 99}); err == nil {
		t.Error("unknown solver accepted")
	}
	if _, err := core.SolveEuclidean(pts, 1, core.EuclideanOptions{Rule: 99}); err == nil {
		t.Error("unknown rule accepted")
	}
}

func TestSolveMetricValidation(t *testing.T) {
	space, _ := metricspace.NewFinite([][]float64{{0, 1}, {1, 0}})
	pts := []uncertain.Point[int]{uncertain.NewDeterministic(0)}
	cands := space.Points()
	if _, err := core.SolveMetric[int](space, nil, cands, 1, core.MetricOptions{}); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := core.SolveMetric[int](space, pts, nil, 1, core.MetricOptions{}); err == nil {
		t.Error("no candidates accepted")
	}
	if _, err := core.SolveMetric[int](space, pts, cands, 0, core.MetricOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := core.SolveMetric[int](space, pts, cands, 1, core.MetricOptions{Solver: core.SolverEps}); err == nil {
		t.Error("SolverEps accepted in metric space")
	}
	if _, err := core.SolveMetric[int](space, pts, cands, 1, core.MetricOptions{Rule: core.RuleEP}); err == nil {
		t.Error("RuleEP accepted in metric space")
	}
}

// TestSolveEuclideanResultConsistency checks internal consistency of the
// reported result fields.
func TestSolveEuclideanResultConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	pts, err := gen.GaussianClusters(rng, 12, 3, 2, 3, 1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SolveEuclidean(pts, 3, core.EuclideanOptions{Rule: core.RuleEP})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 || len(res.Assign) != len(pts) {
		t.Fatalf("malformed result: %d centers, %d assigns", len(res.Centers), len(res.Assign))
	}
	// Reported Ecost must match an independent evaluation.
	ec, err := core.EcostAssigned[geom.Vec](euclid, pts, res.Centers, res.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ec-res.Ecost) > 1e-9 {
		t.Errorf("reported Ecost %g, recomputed %g", res.Ecost, ec)
	}
	if res.EcostUnassigned > res.Ecost+1e-9 {
		t.Errorf("unassigned cost %g exceeds assigned %g", res.EcostUnassigned, res.Ecost)
	}
	if len(res.Surrogates) != len(pts) {
		t.Errorf("%d surrogates for %d points", len(res.Surrogates), len(pts))
	}
}

// TestSolveMetricOneCenterSurrogatesAreCandidates: the metric pipeline's
// centers must be actual space points.
func TestSolveMetricCentersAreSpacePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	space, pts, k := finiteInstance(t, rng)
	res, err := core.SolveMetric[int](space, pts, space.Points(), k, core.MetricOptions{Rule: core.RuleOC})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Centers {
		if c < 0 || c >= space.N() {
			t.Errorf("center %d is not a space point", c)
		}
	}
}
