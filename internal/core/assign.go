package core

import (
	"context"
	"fmt"

	"repro/internal/geom"
	"repro/internal/kcenter"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// Rule names the paper's three assignment rules for the restricted assigned
// problem versions.
type Rule int

const (
	// RuleED is the expected distance assignment: P_i goes to the center
	// minimizing Σ_j p_ij·d(P_ij, c) (introduced by Wang & Zhang).
	RuleED Rule = iota
	// RuleEP is the expected point assignment: P_i goes to the center
	// nearest to its expected point P̄_i (Euclidean only; new in the paper).
	RuleEP
	// RuleOC is the 1-center assignment: P_i goes to the center nearest to
	// the 1-center P̃_i of its own distribution (new in the paper).
	RuleOC
)

// String returns the paper's name for the rule.
func (r Rule) String() string {
	switch r {
	case RuleED:
		return "expected-distance"
	case RuleEP:
		return "expected-point"
	case RuleOC:
		return "one-center"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// AssignED computes the expected distance assignment: for each uncertain
// point, the index of the center with minimal expected distance. O(n·z·k).
func AssignED[P any](space metricspace.Space[P], pts []uncertain.Point[P], centers []P) ([]int, error) {
	return AssignCtx(context.Background(), space, pts, centers, RuleED, nil, 1)
}

// AssignBySurrogate assigns each point to the center nearest its surrogate
// (surrogates[i] stands in for point i). With surrogates = expected points
// this is the EP rule; with surrogates = 1-centers it is the OC rule.
func AssignBySurrogate[P any](space metricspace.Space[P], surrogates, centers []P) ([]int, error) {
	if len(centers) == 0 {
		return nil, fmt.Errorf("core: AssignBySurrogate with no centers")
	}
	return kcenter.AssignNearest(space, surrogates, centers), nil
}

// AssignEuclidean dispatches the named rule for Euclidean instances,
// computing the needed surrogates internally. It is a sequential
// background-context wrapper over AssignCtx, the single rule
// implementation.
func AssignEuclidean(pts []uncertain.Point[geom.Vec], centers []geom.Vec, rule Rule) ([]int, error) {
	return AssignCtx[geom.Vec](context.Background(), metricspace.Euclidean{}, pts, centers, rule, nil, 1)
}

// AssignMetric dispatches the named rule for general-metric instances.
// RuleEP is rejected: expected points do not exist outside linear spaces.
// candidates is the surrogate search space for RuleOC (typically all
// locations or all space points). It is a sequential background-context
// wrapper over AssignCtx, the single rule implementation.
func AssignMetric[P any](space metricspace.Space[P], pts []uncertain.Point[P], centers []P, rule Rule, candidates []P) ([]int, error) {
	return AssignCtx(context.Background(), space, pts, centers, rule, candidates, 1)
}
