package core
