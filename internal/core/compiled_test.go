package core_test

// Tests for the compiled-instance core: the compile boundary (validation,
// pruning, flattening), cache reuse observability, concurrency of first
// use, and the bit-identity of cached vs fresh-compile solves.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/uncertain"
)

// zeroAtomInstance is a small fixed Euclidean instance in which several
// points carry explicit zero-probability atoms — the compile-time-pruning
// regression fixture.
func zeroAtomInstance() []uncertain.Point[geom.Vec] {
	return []uncertain.Point[geom.Vec]{
		{Locs: []geom.Vec{{0, 0}, {9, 9}, {1, 0}}, Probs: []float64{0.5, 0, 0.5}},
		{Locs: []geom.Vec{{4, 4}}, Probs: []float64{1}},
		{Locs: []geom.Vec{{-3, 1}, {-2, 2}, {100, 100}, {-1, 0}}, Probs: []float64{0.25, 0.25, 0, 0.5}},
		{Locs: []geom.Vec{{2, 5}, {3, 5}}, Probs: []float64{0.75, 0.25}},
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	ctx := context.Background()
	if _, err := core.Compile[geom.Vec](ctx, nil, zeroAtomInstance(), nil); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := core.Compile[geom.Vec](ctx, euclid, nil, nil); err == nil {
		t.Error("empty point set accepted")
	}
	bad := []uncertain.Point[geom.Vec]{{Locs: []geom.Vec{{0, 0}}, Probs: []float64{0.4}}}
	if _, err := core.Compile[geom.Vec](ctx, euclid, bad, nil); err == nil {
		t.Error("probabilities summing to 0.4 accepted")
	}
	mism := []uncertain.Point[geom.Vec]{{Locs: []geom.Vec{{0, 0}, {1, 1}}, Probs: []float64{1}}}
	if _, err := core.Compile[geom.Vec](ctx, euclid, mism, nil); err == nil {
		t.Error("locs/probs length mismatch accepted")
	}
	// Heterogeneous coordinate dimensions must be rejected at the compile
	// boundary (CommonDim), even on zero-probability atoms.
	het := []uncertain.Point[geom.Vec]{
		{Locs: []geom.Vec{{0, 0}}, Probs: []float64{1}},
		{Locs: []geom.Vec{{1, 2, 3}}, Probs: []float64{1}},
	}
	if _, err := core.Compile[geom.Vec](ctx, euclid, het, nil); err == nil {
		t.Error("heterogeneous dimensions accepted")
	}
	hetZero := []uncertain.Point[geom.Vec]{
		{Locs: []geom.Vec{{0, 0}, {1, 2, 3}}, Probs: []float64{1, 0}},
	}
	if _, err := core.Compile[geom.Vec](ctx, euclid, hetZero, nil); err == nil {
		t.Error("heterogeneous dimension on a zero-probability atom accepted")
	}
}

func TestCompileFlattensAndPrunes(t *testing.T) {
	pts := zeroAtomInstance()
	c, err := core.Compile[geom.Vec](context.Background(), euclid, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.NumPoints(), 4; got != want {
		t.Fatalf("NumPoints = %d, want %d", got, want)
	}
	// 3+1+4+2 = 10 raw atoms, two with p = 0.
	if got, want := c.NumAtoms(), 8; got != want {
		t.Fatalf("NumAtoms = %d, want %d (zero atoms pruned)", got, want)
	}
	if got, want := c.MaxZ(), 3; got != want {
		t.Fatalf("MaxZ = %d, want %d (pruned supports)", got, want)
	}
	if got, want := c.Dim(), 2; got != want {
		t.Fatalf("Dim = %d, want %d", got, want)
	}
	if !c.IsEuclidean() {
		t.Fatal("IsEuclidean = false for Euclidean{}")
	}
	locs, probs, offsets, ptIdx := c.FlatAtoms()
	if len(locs) != 8 || len(probs) != 8 || len(ptIdx) != 8 || len(offsets) != 5 {
		t.Fatalf("flat lengths = %d/%d/%d/%d", len(locs), len(probs), len(ptIdx), len(offsets))
	}
	for f, pr := range probs {
		if pr <= 0 {
			t.Fatalf("atom %d has probability %g after pruning", f, pr)
		}
	}
	for i, p := range c.Points() {
		if int(offsets[i+1]-offsets[i]) != p.Z() {
			t.Fatalf("point %d: offsets span %d, Z %d", i, offsets[i+1]-offsets[i], p.Z())
		}
		for f := offsets[i]; f < offsets[i+1]; f++ {
			if int(ptIdx[f]) != i {
				t.Fatalf("atom %d: ptIdx %d, want %d", f, ptIdx[f], i)
			}
		}
		var sum float64
		for _, pr := range p.Probs {
			sum += pr
		}
		if relDiff(sum, 1) > 1e-9 {
			t.Fatalf("point %d: pruned probabilities sum to %g", i, sum)
		}
	}
	// With no explicit candidates, the default candidate set keeps every
	// input location — pruning removes probability mass, not center sites,
	// so a p = 0 location stays eligible as a center.
	if got := c.CandidatesOrLocations(); len(got) != 10 {
		t.Fatalf("CandidatesOrLocations len = %d, want 10 (zero-probability locations stay candidates)", len(got))
	}
}

// TestZeroProbAtomCostConsistency pins the satellite requirement: instances
// containing p = 0 atoms yield the same E-costs everywhere — compiled fast
// paths, the cached and from-scratch sweep paths, and the enumeration
// oracle (which keeps the zero atoms).
func TestZeroProbAtomCostConsistency(t *testing.T) {
	ctx := context.Background()
	pts := zeroAtomInstance()
	centers := []geom.Vec{{0, 0}, {3, 5}}
	assign := []int{0, 1, 0, 1}

	gotA, err := core.EcostAssigned[geom.Vec](euclid, pts, centers, assign)
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := core.EcostAssignedNaive[geom.Vec](euclid, pts, centers, assign, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(gotA, wantA) > 1e-12 {
		t.Fatalf("EcostAssigned with zero atoms = %g, oracle = %g", gotA, wantA)
	}

	gotU, err := core.EcostUnassigned[geom.Vec](euclid, pts, centers)
	if err != nil {
		t.Fatal(err)
	}
	wantU, err := core.EcostUnassignedNaive[geom.Vec](euclid, pts, centers, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(gotU, wantU) > 1e-12 {
		t.Fatalf("EcostUnassigned with zero atoms = %g, oracle = %g", gotU, wantU)
	}

	// Cached (distance-RV table) and from-scratch sweep paths must agree on
	// the pruned support.
	cands := uncertain.AllLocations(pts)
	chosen := []int{0, 4}
	cached, err := core.EcostSweepCtx[geom.Vec](ctx, euclid, pts, cands, chosen, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := core.EcostSweepCtx[geom.Vec](ctx, euclid, pts, cands, chosen, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	for pos := range cached {
		for cd := range cached[pos] {
			if relDiff(cached[pos][cd], scratch[pos][cd]) > 1e-12 {
				t.Fatalf("sweep[%d][%d]: cached %g vs scratch %g", pos, cd, cached[pos][cd], scratch[pos][cd])
			}
		}
	}

	// Local search: identical trajectories with and without the cache on the
	// zero-atom instance.
	for _, k := range []int{1, 2} {
		fast, fastCost, err := core.SolveUnassignedLS[geom.Vec](ctx, euclid, pts, cands, k, core.LocalSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		oracle, oracleCost, err := core.SolveUnassignedLS[geom.Vec](ctx, euclid, pts, cands, k, core.LocalSearchOptions{DisableSwapCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(fastCost, oracleCost) > 1e-12 {
			t.Fatalf("k=%d: cached cost %g vs oracle %g", k, fastCost, oracleCost)
		}
		for i := range fast {
			if geom.Dist(fast[i], oracle[i]) != 0 {
				t.Fatalf("k=%d: cached center %d = %v, oracle %v", k, i, fast[i], oracle[i])
			}
		}
	}
}

// TestCachedVsFreshSolveBitIdentical pins the tentpole contract: solving a
// compiled instance repeatedly (warm caches) returns results bit-identical
// to a fresh compile per solve, for workers ∈ {1, 4, 8}, across both
// regimes and both surrogate kinds.
func TestCachedVsFreshSolveBitIdentical(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(44))
	pts, err := gen.GaussianClusters(rng, 40, 3, 2, 3, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fspace, fpts, fk := finiteInstance(t, rng)
	fcands := fspace.Points()

	for _, workers := range []int{1, 4, 8} {
		for _, surr := range []core.Surrogate{core.SurrogateExpectedPoint, core.SurrogateOneCenter} {
			opts := core.Options{Surrogate: surr, Rule: core.RuleED, Parallelism: workers}
			cached, err := core.Compile[geom.Vec](ctx, euclid, pts, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 3, 2} { // revisit k=2 with warm caches
				warm, err := core.SolveCompiled(ctx, cached, k, opts)
				if err != nil {
					t.Fatal(err)
				}
				freshC, err := core.Compile[geom.Vec](ctx, euclid, pts, nil)
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := core.SolveCompiled(ctx, freshC, k, opts)
				if err != nil {
					t.Fatal(err)
				}
				if warm.Ecost != fresh.Ecost || warm.EcostUnassigned != fresh.EcostUnassigned || warm.CertainRadius != fresh.CertainRadius {
					t.Fatalf("workers=%d surr=%v k=%d: warm costs (%g,%g,%g) != fresh (%g,%g,%g)",
						workers, surr, k, warm.Ecost, warm.EcostUnassigned, warm.CertainRadius,
						fresh.Ecost, fresh.EcostUnassigned, fresh.CertainRadius)
				}
				for i := range warm.Centers {
					if geom.Dist(warm.Centers[i], fresh.Centers[i]) != 0 {
						t.Fatalf("workers=%d surr=%v k=%d: center %d differs", workers, surr, k, i)
					}
				}
				for i := range warm.Assign {
					if warm.Assign[i] != fresh.Assign[i] {
						t.Fatalf("workers=%d surr=%v k=%d: assign %d differs", workers, surr, k, i)
					}
				}
			}
		}

		// Finite regime, including the unassigned local search.
		fopts := core.Options{Surrogate: core.SurrogateOneCenter, Rule: core.RuleED, Parallelism: workers}
		cached, err := core.Compile[int](ctx, fspace, fpts, fcands)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ {
			warm, err := core.SolveCompiled(ctx, cached, fk, fopts)
			if err != nil {
				t.Fatal(err)
			}
			freshC, err := core.Compile[int](ctx, fspace, fpts, fcands)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := core.SolveCompiled(ctx, freshC, fk, fopts)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Ecost != fresh.Ecost || warm.EcostUnassigned != fresh.EcostUnassigned {
				t.Fatalf("workers=%d finite rep=%d: warm (%g,%g) != fresh (%g,%g)",
					workers, rep, warm.Ecost, warm.EcostUnassigned, fresh.Ecost, fresh.EcostUnassigned)
			}
			for i := range warm.Centers {
				if warm.Centers[i] != fresh.Centers[i] {
					t.Fatalf("workers=%d finite rep=%d: center %d differs", workers, rep, i)
				}
			}

			lsWarm, lsWarmCost, err := core.SolveUnassignedLSCompiled(ctx, cached, fk, core.LocalSearchOptions{Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			lsFresh, lsFreshCost, err := core.SolveUnassignedLSCompiled(ctx, freshC, fk, core.LocalSearchOptions{Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			if lsWarmCost != lsFreshCost {
				t.Fatalf("workers=%d finite rep=%d: LS warm cost %g != fresh %g", workers, rep, lsWarmCost, lsFreshCost)
			}
			for i := range lsWarm {
				if lsWarm[i] != lsFresh[i] {
					t.Fatalf("workers=%d finite rep=%d: LS center %d differs", workers, rep, i)
				}
			}
		}
	}
}

// countingSpace wraps an integer metric and counts Dist calls — the cache
// reuse observability probe.
type countingSpace struct {
	calls *atomic.Int64
}

func (s countingSpace) Dist(a, b int) float64 {
	s.calls.Add(1)
	d := a - b
	if d < 0 {
		d = -d
	}
	return float64(d)
}

// TestSurrogateAndEvaluatorCacheReuse pins the observability criterion: the
// second request for surrogates (and for the swap evaluator) on one
// compiled instance performs ZERO metric calls — everything is served from
// the memoized cache.
func TestSurrogateAndEvaluatorCacheReuse(t *testing.T) {
	ctx := context.Background()
	var calls atomic.Int64
	space := countingSpace{calls: &calls}
	pts := []uncertain.Point[int]{
		{Locs: []int{0, 3}, Probs: []float64{0.5, 0.5}},
		{Locs: []int{7}, Probs: []float64{1}},
		{Locs: []int{2, 9, 4}, Probs: []float64{0.2, 0.3, 0.5}},
	}
	cands := []int{0, 2, 4, 6, 8}
	c, err := core.Compile[int](ctx, space, pts, cands)
	if err != nil {
		t.Fatal(err)
	}

	s1, err := c.Surrogates(ctx, core.SurrogateOneCenter, c.CandidatesOrLocations(), 1)
	if err != nil {
		t.Fatal(err)
	}
	after := calls.Load()
	if after == 0 {
		t.Fatal("surrogate construction made no metric calls — probe broken")
	}
	s2, err := c.Surrogates(ctx, core.SurrogateOneCenter, c.CandidatesOrLocations(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != after {
		t.Fatalf("second surrogate request made %d metric calls, want 0", got-after)
	}
	if &s1[0] != &s2[0] {
		t.Fatal("second surrogate request returned a different slice")
	}

	if _, err := c.Evaluator(ctx, 2); err != nil {
		t.Fatal(err)
	}
	after = calls.Load()
	ev1, err := c.Evaluator(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := c.Evaluator(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != after {
		t.Fatalf("repeat evaluator requests made %d metric calls, want 0", got-after)
	}
	if ev1 != ev2 {
		t.Fatal("repeat evaluator requests returned different evaluators")
	}
}

// TestCompiledConcurrentFirstUse drives the memoized caches from many
// goroutines at once (run under -race by make check): one build must win,
// every caller must observe identical results.
func TestCompiledConcurrentFirstUse(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(45))
	space, pts, k := finiteInstance(t, rng)
	cands := space.Points()
	c, err := core.Compile[int](ctx, space, pts, cands)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.SolveCompiled(ctx, c, k, core.Options{Surrogate: core.SurrogateOneCenter})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Fresh compiled value per goroutine pair so first-use of every
			// cache is genuinely contended on the shared one.
			res, err := core.SolveCompiled(ctx, c, k, core.Options{Surrogate: core.SurrogateOneCenter, Parallelism: 1 + g%3})
			if err != nil {
				errs[g] = err
				return
			}
			if res.Ecost != ref.Ecost || res.EcostUnassigned != ref.EcostUnassigned {
				errs[g] = fmt.Errorf("costs (%g,%g) != reference (%g,%g)", res.Ecost, res.EcostUnassigned, ref.Ecost, ref.EcostUnassigned)
				return
			}
			if _, _, err := core.SolveUnassignedLSCompiled(ctx, c, k, core.LocalSearchOptions{Parallelism: 1 + g%3}); err != nil {
				errs[g] = err
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
