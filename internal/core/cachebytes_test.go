package core_test

// Tests for the cache byte accounting and eviction hooks behind the serving
// layer's byte-budget LRU: CacheBytes follows the DESIGN.md §4a formula
// exactly, DropCaches returns it to zero while keeping the arena, and a
// post-drop solve is bit-identical to the pre-drop one.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
)

// cacheTestInstance compiles a small random Euclidean instance with the
// default all-locations candidate set.
func cacheTestInstance(t *testing.T, n, z int) *core.Compiled[geom.Vec] {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	pts, err := gen.GaussianClusters(rng, n, z, 2, 3, 1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile[geom.Vec](context.Background(), euclid, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheBytesFormula(t *testing.T) {
	ctx := context.Background()
	c := cacheTestInstance(t, 30, 4)
	if got := c.CacheBytes(); got != 0 {
		t.Fatalf("fresh compile: CacheBytes = %d, want 0 (caches are lazy)", got)
	}

	// One surrogate slice: n elements of (slice header + 8·dim payload).
	if _, err := c.Surrogates(ctx, core.SurrogateExpectedPoint, nil, 1); err != nil {
		t.Fatal(err)
	}
	perElem := int64(24 + 8*c.Dim()) // Vec slice header + d float64 coordinates
	want := int64(c.NumPoints()) * perElem
	if got := c.CacheBytes(); got != want {
		t.Fatalf("after P̄ build: CacheBytes = %d, want %d", got, want)
	}

	// The evaluator adds exactly 12·m·N (8-byte distance + 4-byte sort index
	// per candidate/atom pair) — the dominant term DESIGN.md §4a calls out.
	if _, err := c.Evaluator(ctx, 1); err != nil {
		t.Fatal(err)
	}
	m := int64(len(c.CandidatesOrLocations()))
	want += 12 * m * int64(c.NumAtoms())
	if got := c.CacheBytes(); got != want {
		t.Fatalf("after evaluator build: CacheBytes = %d, want %d", got, want)
	}
}

func TestDropCachesReleasesAndRebuildsBitIdentical(t *testing.T) {
	ctx := context.Background()
	c := cacheTestInstance(t, 25, 3)
	k := 3

	// Warm every cache a solve exercises, then record reference results.
	opts := core.Options{Surrogate: core.SurrogateOneCenter, Rule: core.RuleOC}
	warm, err := core.SolveCompiled(ctx, c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	warmC, warmCost, err := core.SolveUnassignedLSCompiled(ctx, c, k, core.LocalSearchOptions{MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.CacheBytes() == 0 {
		t.Fatal("CacheBytes = 0 after solves that build surrogates and the evaluator")
	}

	c.DropCaches()
	if got := c.CacheBytes(); got != 0 {
		t.Fatalf("CacheBytes = %d after DropCaches, want 0", got)
	}
	// The arena survives the drop: no recompilation, same flat model.
	if c.NumAtoms() == 0 || c.NumPoints() != 25 {
		t.Fatalf("arena damaged by DropCaches: n=%d N=%d", c.NumPoints(), c.NumAtoms())
	}

	// Post-drop solves rebuild lazily and must be bit-identical.
	cold, err := core.SolveCompiled(ctx, c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Ecost != warm.Ecost || cold.EcostUnassigned != warm.EcostUnassigned || cold.CertainRadius != warm.CertainRadius {
		t.Fatalf("post-drop solve differs: ecost %v vs %v, unassigned %v vs %v",
			cold.Ecost, warm.Ecost, cold.EcostUnassigned, warm.EcostUnassigned)
	}
	for i := range warm.Centers {
		if cold.Centers[i] != nil && warm.Centers[i] != nil {
			for d := range warm.Centers[i] {
				if cold.Centers[i][d] != warm.Centers[i][d] {
					t.Fatalf("post-drop center %d differs: %v vs %v", i, cold.Centers[i], warm.Centers[i])
				}
			}
		}
	}
	for i := range warm.Assign {
		if cold.Assign[i] != warm.Assign[i] {
			t.Fatalf("post-drop assignment differs at %d", i)
		}
	}
	coldC, coldCost, err := core.SolveUnassignedLSCompiled(ctx, c, k, core.LocalSearchOptions{MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if coldCost != warmCost {
		t.Fatalf("post-drop unassigned cost %v, want %v", coldCost, warmCost)
	}
	for i := range warmC {
		for d := range warmC[i] {
			if coldC[i][d] != warmC[i][d] {
				t.Fatalf("post-drop unassigned center %d differs", i)
			}
		}
	}
	// And the caches are warm again after the rebuild.
	if c.CacheBytes() == 0 {
		t.Fatal("CacheBytes = 0 after post-drop solves")
	}
}

func TestDropCachesConcurrentWithSolves(t *testing.T) {
	// Eviction racing solves must never corrupt results: run solves on
	// several goroutines while another drops caches repeatedly, then check
	// the final answer against an undisturbed instance.
	ctx := context.Background()
	c := cacheTestInstance(t, 20, 3)
	ref := cacheTestInstance(t, 20, 3)
	opts := core.Options{Surrogate: core.SurrogateOneCenter, Rule: core.RuleOC}
	want, err := core.SolveCompiled(ctx, ref, 2, opts)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			c.DropCaches()
		}
	}()
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 10; i++ {
				res, err := core.SolveCompiled(ctx, c, 2, opts)
				if err != nil {
					errs <- err
					return
				}
				if res.Ecost != want.Ecost {
					errs <- errMismatch(res.Ecost, want.Ecost)
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

type mismatchError struct{ got, want float64 }

func (e mismatchError) Error() string { return "ecost mismatch under concurrent DropCaches" }

func errMismatch(got, want float64) error { return mismatchError{got, want} }
