package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/gen"
)

// TestTheorem22HeterogeneousZ re-validates the restricted-assigned bounds on
// instances where z_i varies per point — the paper's general model (z is
// only the maximum). Constant-z generators could in principle mask indexing
// bugs that conflate z_i with z.
func TestTheorem22HeterogeneousZ(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		pts, err := gen.HeterogeneousZ(rng, 3+rng.Intn(3), 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(2)
		for _, tc := range []struct {
			rule  core.Rule
			bound float64
		}{
			{core.RuleED, 6},
			{core.RuleEP, 4},
		} {
			res, err := core.SolveEuclidean(pts, k, core.EuclideanOptions{
				Rule: tc.rule, Solver: core.SolverGonzalez,
			})
			if err != nil {
				t.Fatal(err)
			}
			opt, err := bruteforce.RestrictedAssignedEuclidean(pts, euclideanCandidates(pts), k, tc.rule, 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if opt.Cost <= 0 {
				continue
			}
			if ratio := res.Ecost / opt.Cost; ratio > tc.bound+slack {
				t.Errorf("trial %d rule %v: ratio %.4f > %g on heterogeneous z",
					trial, tc.rule, ratio, tc.bound)
			}
		}
	}
}
