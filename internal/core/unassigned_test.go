package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/uncertain"
)

func TestUnassignedLocalSearchValidation(t *testing.T) {
	pts := []uncertain.Point[geom.Vec]{uncertain.NewDeterministic(geom.Vec{0})}
	cands := []geom.Vec{{0}}
	if _, _, err := core.SolveUnassignedLocalSearch[geom.Vec](euclid, nil, cands, 1, 0); err == nil {
		t.Error("empty set accepted")
	}
	if _, _, err := core.SolveUnassignedLocalSearch[geom.Vec](euclid, pts, nil, 1, 0); err == nil {
		t.Error("no candidates accepted")
	}
	if _, _, err := core.SolveUnassignedLocalSearch[geom.Vec](euclid, pts, cands, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestUnassignedLocalSearchNearOptimal compares against the brute-force
// unassigned optimum over the same candidates on small instances.
func TestUnassignedLocalSearchNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	worst := 1.0
	for trial := 0; trial < 15; trial++ {
		var pts []uncertain.Point[geom.Vec]
		var err error
		if trial%2 == 0 {
			pts, err = gen.GaussianClusters(rng, 3+rng.Intn(3), 2, 2, 2, 1, 0.5)
		} else {
			pts, err = gen.BimodalAdversarial(rng, 3+rng.Intn(3), 2, 2, 20)
		}
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(2)
		cands := uncertain.AllLocations(pts)
		_, lsCost, err := core.SolveUnassignedLocalSearch[geom.Vec](euclid, pts, cands, k, 50)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := bruteforce.Unassigned[geom.Vec](euclid, pts, cands, k, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Cost <= 0 {
			if lsCost > 1e-9 {
				t.Fatalf("trial %d: OPT=0 but local search %g", trial, lsCost)
			}
			continue
		}
		ratio := lsCost / opt.Cost
		if ratio < 1-1e-9 {
			t.Fatalf("trial %d: local search %g beat the optimum %g", trial, lsCost, opt.Cost)
		}
		if ratio > worst {
			worst = ratio
		}
		// Single-swap local optima of k-center-style objectives are within a
		// small constant in practice; flag anything worse than 3x as a bug.
		if ratio > 3 {
			t.Fatalf("trial %d: local search ratio %.3f", trial, ratio)
		}
	}
	t.Logf("worst local-search/optimum ratio over trials: %.4f", worst)
}

// TestUnassignedLocalSearchBeatsPipelineCost: the local search specifically
// optimizes the unassigned cost, so it should never be worse than the
// pipeline centers it was seeded from (snapped to the same candidate set).
func TestUnassignedLocalSearchImprovesOnSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 10; trial++ {
		pts, err := gen.BimodalAdversarial(rng, 8, 2, 2, 20)
		if err != nil {
			t.Fatal(err)
		}
		// Candidate parity with the pipeline: locations AND expected points,
		// since the pipeline's centers are unconstrained expected points.
		cands := euclideanCandidates(pts)
		_, lsCost, err := core.SolveUnassignedLocalSearch[geom.Vec](euclid, pts, cands, 2, 50)
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := core.SolveEuclidean(pts, 2, core.EuclideanOptions{Rule: core.RuleEP})
		if err != nil {
			t.Fatal(err)
		}
		// The pipeline's centers are unconstrained (not snapped), so allow a
		// tiny slack; the local search should still win or tie on the
		// unassigned objective for bimodal instances.
		if lsCost > pipe.EcostUnassigned*1.25+1e-9 {
			t.Errorf("trial %d: local search %g much worse than pipeline unassigned %g",
				trial, lsCost, pipe.EcostUnassigned)
		}
	}
}

func TestUnassignedLocalSearchOnFiniteMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	space, pts, k := finiteInstance(t, rng)
	centers, cost, err := core.SolveUnassignedLocalSearch[int](space, pts, space.Points(), k, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) == 0 || len(centers) > k {
		t.Fatalf("centers = %v", centers)
	}
	opt, err := bruteforce.Unassigned[int](space, pts, space.Points(), k, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost > 0 && cost/opt.Cost > 3 {
		t.Errorf("finite-metric local search ratio %.3f", cost/opt.Cost)
	}
}
