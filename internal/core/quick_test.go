package core

// Property-based tests with testing/quick: structural invariants of the
// cost evaluators and assignment rules under randomized instances encoded
// from quick's primitive generators.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/uncertain"
)

// decodeInstance deterministically expands a seed into a small random
// instance; quick drives the seed.
func decodeInstance(seed int64) ([]uncertain.Point[geom.Vec], []geom.Vec, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(5)
	k := 1 + rng.Intn(3)
	pts := make([]uncertain.Point[geom.Vec], n)
	for i := range pts {
		z := 1 + rng.Intn(4)
		locs := make([]geom.Vec, z)
		probs := make([]float64, z)
		var sum float64
		for j := range locs {
			locs[j] = geom.Vec{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
			probs[j] = rng.Float64() + 0.02
			sum += probs[j]
		}
		for j := range probs {
			probs[j] /= sum
		}
		pts[i] = uncertain.Point[geom.Vec]{Locs: locs, Probs: probs}
	}
	centers := make([]geom.Vec, k)
	for i := range centers {
		centers[i] = geom.Vec{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.Intn(k)
	}
	return pts, centers, assign
}

// TestQuickEcostNonNegativeAndMonotone: costs are non-negative, and adding a
// center never increases the unassigned cost.
func TestQuickEcostNonNegativeAndMonotone(t *testing.T) {
	f := func(seed int64) bool {
		pts, centers, assign := decodeInstance(seed)
		a, err := EcostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil || a < 0 {
			return false
		}
		u, err := EcostUnassigned[geom.Vec](euclid, pts, centers)
		if err != nil || u < 0 || u > a+1e-9 {
			return false
		}
		// Add one more center: unassigned cost cannot increase.
		more := append(append([]geom.Vec(nil), centers...), geom.Vec{0, 0})
		u2, err := EcostUnassigned[geom.Vec](euclid, pts, more)
		return err == nil && u2 <= u+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickEDAssignmentIsBestPerPoint: among all assignments, ED minimizes
// each point's expected distance, hence the max-of-expectations cost.
func TestQuickEDAssignmentIsBestPerPoint(t *testing.T) {
	f := func(seed int64) bool {
		pts, centers, assign := decodeInstance(seed)
		ed, err := AssignED[geom.Vec](euclid, pts, centers)
		if err != nil {
			return false
		}
		edCost, err := MaxExpCostAssigned[geom.Vec](euclid, pts, centers, ed)
		if err != nil {
			return false
		}
		other, err := MaxExpCostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil {
			return false
		}
		return edCost <= other+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickScaleInvariance: scaling every location and center by s > 0
// scales every cost by s.
func TestQuickScaleInvariance(t *testing.T) {
	f := func(seed int64, sRaw uint8) bool {
		s := 0.1 + float64(sRaw)/32 // s in [0.1, 8.07]
		pts, centers, assign := decodeInstance(seed)
		base, err := EcostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil {
			return false
		}
		scaled := make([]uncertain.Point[geom.Vec], len(pts))
		for i, p := range pts {
			locs := make([]geom.Vec, p.Z())
			for j, l := range p.Locs {
				locs[j] = l.Scale(s)
			}
			scaled[i] = uncertain.Point[geom.Vec]{Locs: locs, Probs: p.Probs}
		}
		sCenters := make([]geom.Vec, len(centers))
		for i, c := range centers {
			sCenters[i] = c.Scale(s)
		}
		got, err := EcostAssigned[geom.Vec](euclid, scaled, sCenters, assign)
		if err != nil {
			return false
		}
		return math.Abs(got-s*base) <= 1e-9*(1+s*base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickTranslationInvariance: translating everything leaves costs
// unchanged.
func TestQuickTranslationInvariance(t *testing.T) {
	f := func(seed int64, txRaw, tyRaw int16) bool {
		tx, ty := float64(txRaw)/100, float64(tyRaw)/100
		pts, centers, assign := decodeInstance(seed)
		base, err := EcostAssigned[geom.Vec](euclid, pts, centers, assign)
		if err != nil {
			return false
		}
		shift := geom.Vec{tx, ty}
		moved := make([]uncertain.Point[geom.Vec], len(pts))
		for i, p := range pts {
			locs := make([]geom.Vec, p.Z())
			for j, l := range p.Locs {
				locs[j] = l.Add(shift)
			}
			moved[i] = uncertain.Point[geom.Vec]{Locs: locs, Probs: p.Probs}
		}
		mCenters := make([]geom.Vec, len(centers))
		for i, c := range centers {
			mCenters[i] = c.Add(shift)
		}
		got, err := EcostAssigned[geom.Vec](euclid, moved, mCenters, assign)
		if err != nil {
			return false
		}
		return math.Abs(got-base) <= 1e-9*(1+base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterministicPointsReduceToCertainKCenter: when every point is
// deterministic, EcostUnassigned equals the certain covering radius.
func TestQuickDeterministicPointsReduceToCertainKCenter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		k := 1 + rng.Intn(3)
		pts := make([]uncertain.Point[geom.Vec], n)
		locs := make([]geom.Vec, n)
		for i := range pts {
			locs[i] = geom.Vec{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
			pts[i] = uncertain.NewDeterministic(locs[i])
		}
		centers := make([]geom.Vec, k)
		for i := range centers {
			centers[i] = geom.Vec{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		}
		u, err := EcostUnassigned[geom.Vec](euclid, pts, centers)
		if err != nil {
			return false
		}
		var radius float64
		for _, l := range locs {
			best := math.Inf(1)
			for _, c := range centers {
				if d := geom.Dist(l, c); d < best {
					best = d
				}
			}
			if best > radius {
				radius = best
			}
		}
		return math.Abs(u-radius) <= 1e-9*(1+radius)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
