package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/kcenter"
	"repro/internal/metricspace"
	"repro/internal/uncertain"
)

// Surrogate selects which certain stand-in replaces each uncertain point
// before the deterministic k-center step.
type Surrogate int

const (
	// SurrogateExpectedPoint uses P̄_i = Σ_j p_ij·P_ij (Euclidean only).
	SurrogateExpectedPoint Surrogate = iota
	// SurrogateOneCenter uses P̃_i, the 1-center (weighted 1-median) of the
	// point's own distribution (any metric).
	SurrogateOneCenter
)

// String names the surrogate.
func (s Surrogate) String() string {
	switch s {
	case SurrogateExpectedPoint:
		return "expected-point"
	case SurrogateOneCenter:
		return "one-center"
	default:
		return fmt.Sprintf("Surrogate(%d)", int(s))
	}
}

// Solver selects the deterministic k-center algorithm run on the surrogates.
type Solver int

const (
	// SolverGonzalez is the greedy 2-approximation (ε = 1 in the theorems):
	// the paper's O(nz + n·log k) pipelines.
	SolverGonzalez Solver = iota
	// SolverEps is the Euclidean (1+ε) grid scheme (kcenter.EpsApprox).
	SolverEps
	// SolverExactDiscrete is the exact discrete k-center over the surrogate
	// set (kcenter.DiscreteBnB) — in a finite metric space with all points
	// as candidates this realizes ε = 0.
	SolverExactDiscrete
)

// String names the solver.
func (s Solver) String() string {
	switch s {
	case SolverGonzalez:
		return "gonzalez"
	case SolverEps:
		return "eps-approx"
	case SolverExactDiscrete:
		return "exact-discrete"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// Result is the output of a surrogate pipeline.
type Result[P any] struct {
	// Centers are the k chosen centers.
	Centers []P
	// Assign maps each input point to its center index under the requested
	// assignment rule.
	Assign []int
	// Ecost is the exact expected-max cost of (Centers, Assign).
	Ecost float64
	// EcostUnassigned is the exact unassigned expected cost of Centers
	// (every realization snaps to its nearest center); always ≤ Ecost.
	EcostUnassigned float64
	// Surrogates are the certain stand-ins the pipeline clustered.
	Surrogates []P
	// CertainRadius is the deterministic k-center radius achieved on the
	// surrogates (the paper's cost(c_1…c_k)).
	CertainRadius float64
	// EffectiveEps is the ε certified by the certain solver (1 for
	// Gonzalez, 0 for exact discrete, the grid value for SolverEps).
	EffectiveEps float64
}

// EuclideanOptions configures SolveEuclidean. The zero value is the paper's
// recommended fast pipeline: expected-point surrogates, Gonzalez, EP rule
// (Table 1 row "k-center, Euclidean, O(nz + n log k), expected point, 4").
type EuclideanOptions struct {
	Surrogate Surrogate
	Rule      Rule
	Solver    Solver
	// Eps is the ε for SolverEps (default 0.5).
	Eps float64
	// EpsOptions tunes the grid solver.
	EpsOptions kcenter.EpsOptions
	// Start is the Gonzalez start index (default 0).
	Start int
	// CoresetEps, when positive, shrinks the surrogate set with an
	// additive-error k-center coreset (kcenter.Coreset) before the certain
	// solver runs. The deterministic radius degrades by at most
	// CoresetEps·r_k, i.e. O(CoresetEps)·OPT. Worth it only when the solver
	// is super-linear (SolverEps, SolverExactDiscrete) — Gonzalez is already
	// O(nk) and the coreset construction costs as much as running it.
	CoresetEps float64
	// CoresetMaxSize caps the coreset size (0 = no cap).
	CoresetMaxSize int
}

// SolveEuclidean runs the paper's Euclidean surrogate pipeline:
//
//  1. replace each uncertain point by its surrogate (P̄ in O(nz), or P̃ by
//     Weiszfeld);
//  2. run the chosen deterministic k-center solver on the surrogates;
//  3. assign points to centers by the chosen rule;
//  4. report the exact expected cost.
//
// Approximation guarantees (vs the optimum of the corresponding problem
// version) with expected-point surrogates: Gonzalez+ED 6, Gonzalez+EP 4,
// (1+ε)+ED 5+ε, (1+ε)+EP 3+ε (Theorems 2.2, 2.4, 2.5).
func SolveEuclidean(pts []uncertain.Point[geom.Vec], k int, opts EuclideanOptions) (Result[geom.Vec], error) {
	if err := uncertain.ValidateSet(pts); err != nil {
		return Result[geom.Vec]{}, err
	}
	if _, err := uncertain.CommonDim(pts); err != nil {
		return Result[geom.Vec]{}, err
	}
	if k <= 0 {
		return Result[geom.Vec]{}, fmt.Errorf("core: k = %d", k)
	}
	space := metricspace.Euclidean{}

	var surrogates []geom.Vec
	switch opts.Surrogate {
	case SurrogateExpectedPoint:
		surrogates = uncertain.ExpectedPoints(pts)
	case SurrogateOneCenter:
		surrogates = uncertain.OneCentersEuclidean(pts)
	default:
		return Result[geom.Vec]{}, fmt.Errorf("core: unknown surrogate %v", opts.Surrogate)
	}

	// Optional large-n path: run the certain solver on a coreset of the
	// surrogates instead of all of them.
	solveSet := surrogates
	if opts.CoresetEps > 0 {
		cs, err := kcenter.Coreset[geom.Vec](space, surrogates, k, opts.CoresetEps, opts.CoresetMaxSize)
		if err != nil {
			return Result[geom.Vec]{}, err
		}
		solveSet = kcenter.Select(surrogates, cs.Indices)
	}

	var centers []geom.Vec
	var radius, effEps float64
	switch opts.Solver {
	case SolverGonzalez:
		idx, r, err := kcenter.Gonzalez[geom.Vec](space, solveSet, k, opts.Start)
		if err != nil {
			return Result[geom.Vec]{}, err
		}
		centers, radius, effEps = kcenter.Select(solveSet, idx), r, 1
	case SolverEps:
		eps := opts.Eps
		if eps <= 0 {
			eps = 0.5
		}
		res, err := kcenter.EpsApprox(solveSet, k, eps, opts.EpsOptions)
		if err != nil {
			return Result[geom.Vec]{}, err
		}
		centers, radius, effEps = res.Centers, res.Radius, res.EffectiveEps
	case SolverExactDiscrete:
		idx, r, err := kcenter.DiscreteBnB[geom.Vec](space, solveSet, solveSet, k, opts.EpsOptions.MaxNodes)
		if err != nil {
			return Result[geom.Vec]{}, err
		}
		// Restricting centers to surrogate points is itself a
		// 2-approximation of the continuous surrogate optimum, so ε = 1.
		centers, radius, effEps = kcenter.Select(solveSet, idx), r, 1
	default:
		return Result[geom.Vec]{}, fmt.Errorf("core: unknown solver %v", opts.Solver)
	}

	if opts.CoresetEps > 0 {
		// Report the radius over ALL surrogates, not just the coreset.
		radius = kcenter.Radius[geom.Vec](space, surrogates, centers)
	}
	assign, err := AssignEuclidean(pts, centers, opts.Rule)
	if err != nil {
		return Result[geom.Vec]{}, err
	}
	return finishResult(space, pts, centers, assign, surrogates, radius, effEps)
}

// MetricOptions configures SolveMetric. The zero value is Gonzalez with the
// ED rule (Theorem 2.6: factor 7+2ε for the unrestricted optimum).
type MetricOptions struct {
	Rule   Rule
	Solver Solver
	// MaxNodes bounds SolverExactDiscrete's branch-and-bound.
	MaxNodes int
	// Start is the Gonzalez start index (default 0).
	Start int
}

// SolveMetric runs the paper's general-metric pipeline (Theorems 2.6, 2.7):
// surrogates are the 1-centers P̃_i computed over the candidate set (usually
// all space points, or all locations), the deterministic k-center runs on
// the surrogates, and points are assigned by RuleED (factor 7+2ε) or RuleOC
// (factor 5+2ε). RuleEP is rejected outside Euclidean space.
func SolveMetric[P any](space metricspace.Space[P], pts []uncertain.Point[P], candidates []P, k int, opts MetricOptions) (Result[P], error) {
	if err := uncertain.ValidateSet(pts); err != nil {
		return Result[P]{}, err
	}
	if k <= 0 {
		return Result[P]{}, fmt.Errorf("core: k = %d", k)
	}
	if len(candidates) == 0 {
		return Result[P]{}, fmt.Errorf("core: SolveMetric needs a candidate set")
	}
	surrogates := uncertain.OneCentersDiscrete(space, pts, candidates)

	var centers []P
	var radius, effEps float64
	switch opts.Solver {
	case SolverGonzalez:
		idx, r, err := kcenter.Gonzalez(space, surrogates, k, opts.Start)
		if err != nil {
			return Result[P]{}, err
		}
		centers, radius, effEps = kcenter.Select(surrogates, idx), r, 1
	case SolverExactDiscrete:
		idx, r, err := kcenter.DiscreteBnB(space, surrogates, candidates, k, opts.MaxNodes)
		if err != nil {
			return Result[P]{}, err
		}
		centers = make([]P, len(idx))
		for i, c := range idx {
			centers[i] = candidates[c]
		}
		// Exact over the candidate set; if candidates = all space points
		// this is the true certain optimum (ε = 0).
		radius, effEps = r, 0
	case SolverEps:
		return Result[P]{}, fmt.Errorf("core: SolverEps requires a Euclidean space; use SolverExactDiscrete")
	default:
		return Result[P]{}, fmt.Errorf("core: unknown solver %v", opts.Solver)
	}

	assign, err := AssignMetric(space, pts, centers, opts.Rule, candidates)
	if err != nil {
		return Result[P]{}, err
	}
	return finishResult(space, pts, centers, assign, surrogates, radius, effEps)
}

func finishResult[P any](space metricspace.Space[P], pts []uncertain.Point[P], centers []P, assign []int, surrogates []P, radius, effEps float64) (Result[P], error) {
	ecost, err := EcostAssigned(space, pts, centers, assign)
	if err != nil {
		return Result[P]{}, err
	}
	un, err := EcostUnassigned(space, pts, centers)
	if err != nil {
		return Result[P]{}, err
	}
	return Result[P]{
		Centers:         centers,
		Assign:          assign,
		Ecost:           ecost,
		EcostUnassigned: un,
		Surrogates:      surrogates,
		CertainRadius:   radius,
		EffectiveEps:    effEps,
	}, nil
}
